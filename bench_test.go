package sqlpp_test

// One benchmark per paper artifact and per claim, regenerating the
// measurements recorded in EXPERIMENTS.md:
//
//	BenchmarkListingXX      — every query listing of the paper
//	BenchmarkGroupAs*       — claim C4 (§V-B efficiency of GROUP AS)
//	BenchmarkCompat*        — claim C1 (SQL compatibility is compile-time)
//	BenchmarkTypingModes*   — claim C6 (permissive vs stop-on-error)
//	BenchmarkNullMissing*   — claim C3's performance corollary
//	BenchmarkUnnestVsJoin*  — first-class-nesting ablation
//	BenchmarkPivot/Unpivot  — §VI reshaping at scale
//	BenchmarkDecode*        — claim C5 decode throughput per format
//	BenchmarkCompile        — parse+rewrite cost in both modes

import (
	"context"
	"fmt"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/compat"
	"sqlpp/internal/server"
)

// paperDB builds one engine with every paper fixture registered.
func paperDB(b *testing.B, compatMode bool) *sqlpp.Engine {
	b.Helper()
	db := sqlpp.New(&sqlpp.Options{Compat: compatMode})
	fixtures := map[string]string{
		"hr.emp_nest_tuples":  compat.EmpNestTuples,
		"hr.emp_nest_scalars": compat.EmpNestScalars,
		"hr.emp_null":         compat.EmpNull,
		"hr.emp_missing":      compat.EmpMissing,
		"hr.emp":              compat.EmpFlat,
		"closing_prices":      compat.ClosingPrices,
		"today_stock_prices":  compat.TodayStockPrices,
		"stock_prices":        compat.StockPrices,
		"emp_mixed":           compat.EmpMixed,
	}
	for name, src := range fixtures {
		if err := db.RegisterSION(name, src); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// benchQuery measures executing a prepared query.
func benchQuery(b *testing.B, db *sqlpp.Engine, query string) {
	b.Helper()
	p, err := db.Prepare(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

// The paper listings, one benchmark each (Listing number = paper table/
// figure identifier).

func BenchmarkListing02NestedTuples(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT e.name AS emp_name, p.name AS proj_name
		FROM hr.emp_nest_tuples AS e, e.projects AS p
		WHERE p.name LIKE '%Security%'`)
}

func BenchmarkListing04NestedScalars(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT e.name AS emp_name, p AS proj_name
		FROM hr.emp_nest_scalars AS e, e.projects AS p
		WHERE p LIKE '%Security%'`)
}

func BenchmarkListing08MissingWhere(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT e.id, e.name AS emp_name, e.title AS title
		FROM hr.emp_missing AS e
		WHERE e.title = 'Manager'`)
}

func BenchmarkListing09CaseMissing(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT e.id, e.name AS emp_name,
		       CASE WHEN e.title LIKE 'Chief %' THEN 'Executive'
		            ELSE 'Worker' END AS category
		FROM hr.emp_missing AS e`)
}

func BenchmarkListing10NestedSelectValue(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT e.id AS id, e.name AS emp_name, e.title AS emp_title,
		       (SELECT VALUE p FROM e.projects AS p
		        WHERE p LIKE '%Security%') AS security_proj
		FROM hr.emp_nest_scalars AS e`)
}

func BenchmarkListing12GroupAs(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		FROM hr.emp_nest_scalars AS e, e.projects AS p
		WHERE p LIKE '%Security%'
		GROUP BY LOWER(p) AS p GROUP AS g
		SELECT p AS proj_name,
		       (FROM g AS v SELECT VALUE v.e.name) AS employees`)
}

func BenchmarkListing15SQLAggregate(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'`)
}

func BenchmarkListing16CoreAggregate(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		{{ {'avgsal': COLL_AVG(SELECT VALUE e.salary
		                       FROM hr.emp AS e
		                       WHERE e.title = 'Engineer')} }}`)
}

func BenchmarkListing17SQLGroupedAggregate(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno`)
}

func BenchmarkListing18CoreGroupedAggregate(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno AS d GROUP AS g
		SELECT VALUE {'deptno': d,
		              'avgsal': COLL_AVG(FROM g AS gi SELECT gi.e.salary)}`)
}

func BenchmarkListing20Unpivot(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT c."date" AS "date", sym AS symbol, price AS price
		FROM closing_prices AS c, UNPIVOT c AS price AT sym
		WHERE NOT sym = 'date'`)
}

func BenchmarkListing22UnpivotAggregate(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT sym AS symbol, AVG(price) AS avg_price
		FROM closing_prices c, UNPIVOT c AS price AT sym
		WHERE NOT sym = 'date'
		GROUP BY sym`)
}

func BenchmarkListing24Pivot(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		PIVOT sp.price AT sp.symbol FROM today_stock_prices sp`)
}

func BenchmarkListing26GroupPivot(b *testing.B) {
	benchQuery(b, paperDB(b, false), `
		SELECT sp."date" AS "date",
		       (PIVOT dp.sp.price AT dp.sp.symbol
		        FROM dates_prices AS dp) AS prices
		FROM stock_prices AS sp
		GROUP BY sp."date" GROUP AS dates_prices`)
}

// Claim benchmarks.

func benchVariant(b *testing.B, v bench.Variant) {
	b.Helper()
	p, err := v.DB.Prepare(v.Query)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := p.Exec()
		if v.ExpectError {
			if err == nil {
				b.Fatal("expected the query to fail")
			}
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchExperiment(b *testing.B, exp bench.Experiment) {
	b.Helper()
	for _, v := range exp.Variants {
		variant := v
		b.Run(v.Name, func(b *testing.B) { benchVariant(b, variant) })
	}
}

func BenchmarkGroupAsVsNestedSubquery(b *testing.B) {
	for _, n := range []int{100, 300, 1000} {
		exp := bench.GroupAsExperiment(n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { benchExperiment(b, exp) })
	}
}

func BenchmarkCompatOverhead(b *testing.B) {
	benchExperiment(b, bench.CompatOverheadExperiment(10000))
}

func BenchmarkTypingModes(b *testing.B) {
	benchExperiment(b, bench.TypingModesExperiment(10000, 20))
}

func BenchmarkNullVsMissing(b *testing.B) {
	benchExperiment(b, bench.NullMissingExperiment(10000))
}

func BenchmarkUnnestVsJoin(b *testing.B) {
	benchExperiment(b, bench.UnnestVsJoinExperiment(300))
}

func BenchmarkPivotUnpivotScale(b *testing.B) {
	benchExperiment(b, bench.PivotUnpivotExperiment(100, 50))
}

// Physical-optimizer benchmarks: each experiment's first variant is the
// naive/sequential baseline (see EXPERIMENTS.md and BENCH_joins.json).

func BenchmarkHashJoin(b *testing.B) {
	benchExperiment(b, bench.HashJoinExperiment(1000))
}

func BenchmarkPushdown(b *testing.B) {
	benchExperiment(b, bench.PushdownExperiment(5000))
}

func BenchmarkParallelScan(b *testing.B) {
	benchExperiment(b, bench.ParallelScanExperiment(100000))
}

// Claim C5: decode throughput per format over identical data.
func BenchmarkDecode(b *testing.B) {
	payload, err := bench.BuildFormatPayload(50, 20)
	if err != nil {
		b.Fatal(err)
	}
	sizes := map[string]int{
		"sion": len(payload.SION), "json": len(payload.JSON),
		"cbor": len(payload.CBOR), "csv": len(payload.CSV),
	}
	for _, format := range []string{"sion", "json", "cbor", "csv"} {
		f := format
		b.Run(f, func(b *testing.B) {
			b.SetBytes(int64(sizes[f]))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.DecodeFormat(payload, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Execution-strategy ablation: the streaming clause pipeline against
// full clause-boundary materialization (semantics identical; see
// DESIGN.md §4). LIMIT shows the pushdown difference; the full scan
// shows the intermediate-list overhead.
func BenchmarkPipelineVsMaterialized(b *testing.B) {
	data := bench.FlatEmp(20000, 10, 42)
	queries := map[string]string{
		"scan-filter": `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100000`,
		"early-limit": `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100000 LIMIT 10`,
		"group":       `SELECT e.deptno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno`,
	}
	for _, strategy := range []string{"pipeline", "materialized"} {
		db := sqlpp.New(&sqlpp.Options{MaterializeClauses: strategy == "materialized"})
		if err := db.Register("emp", data); err != nil {
			b.Fatal(err)
		}
		for qname, q := range queries {
			p, err := db.Prepare(q)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(strategy+"/"+qname, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Exec(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Window functions at scale (the §V-B compatibility claim).
func BenchmarkWindowFunctions(b *testing.B) {
	db := sqlpp.New(nil)
	if err := db.Register("emp", bench.FlatEmp(10000, 20, 42)); err != nil {
		b.Fatal(err)
	}
	p, err := db.Prepare(`
		SELECT e.name AS name,
		       RANK() OVER (PARTITION BY e.deptno ORDER BY e.salary DESC) AS r
		FROM emp AS e`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

// Plan cache: the query service's hot path. "cold" pays the full
// lex/parse/rewrite/resolve compile on every execution; "hit" fetches
// the compiled plan from the LRU cache and only executes. The gap is
// what the cache buys every repeated API query.
func BenchmarkPlanCache(b *testing.B) {
	db := paperDB(b, false)
	query := `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno`
	opts := db.Options()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := db.Prepare(query)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		cache := server.NewPlanCache(16)
		key := server.CacheKey(opts, nil, query)
		p, err := db.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		cache.Put(key, server.Plan{Prepared: p})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan, ok := cache.Get(key)
			if !ok {
				b.Fatal("cache miss")
			}
			if _, err := plan.Prepared.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// EXPLAIN ANALYZE overhead: the same prepared queries executed plain
// (nil stats sink — the fast path every normal query takes) and
// instrumented (a full per-operator stats tree). The disabled variants
// must stay within noise of the pre-instrumentation numbers: every
// instrumentation site is one pointer test when the sink is nil.
func BenchmarkExplainOverhead(b *testing.B) {
	db := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	if err := db.Register("emp", bench.FlatEmp(20000, 20, 42)); err != nil {
		b.Fatal(err)
	}
	if err := db.Register("dept", bench.Departments(20, 42)); err != nil {
		b.Fatal(err)
	}
	queries := []struct{ name, q string }{
		{"scan-filter", `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100000`},
		{"hash-join", `SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`},
		{"group", `SELECT e.deptno AS dno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno`},
		{"top-k", `SELECT VALUE e.name FROM emp AS e ORDER BY e.salary DESC LIMIT 10`},
	}
	for _, tc := range queries {
		p, err := db.Prepare(tc.q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("disabled/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("analyze/"+tc.name, func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := p.ExplainAnalyze(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Compile cost: parsing + rewriting, the only place the compatibility
// flag is allowed to cost anything (claim C1).
// BenchmarkSemaOverhead prices the static analyzer along the three
// paths a caller can hit: plain Prepare (vet off — must cost exactly
// what it did before the analyzer existed), Prepare under Options.Vet
// (analysis folded into compilation), and Diagnostics() on an
// already-analyzed query (the plan-cache hit path, a slice copy).
func BenchmarkSemaOverhead(b *testing.B) {
	query := `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno
		ORDER BY avgsal DESC LIMIT 5`
	plain := paperDB(b, true)
	opts := plain.Options()
	opts.Vet = true
	vetted := plain.WithOptions(opts)

	b.Run("prepare-novet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plain.Prepare(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepare-vet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := vetted.Prepare(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("diagnostics-cached", func(b *testing.B) {
		p, err := vetted.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Diagnostics()
		}
	})
}

func BenchmarkCompile(b *testing.B) {
	query := `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno
		ORDER BY avgsal DESC LIMIT 5`
	for _, mode := range []string{"core", "compat"} {
		db := paperDB(b, mode == "compat")
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Prepare(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
