//go:build faultinject

package sqlpp_test

// Chaos battery (build with -tags faultinject, run with -race). Every
// injection point is swept with error, panic, and stall actions; each
// fault must degrade into a clean, typed, per-query error — never a
// process exit, a goroutine leak, or a changed result on retry. The
// server battery drives the paper listings concurrently through an
// httptest server with faults armed at the plan-cache and ingest
// points: un-faulted responses must stay byte-identical to the
// fault-free baseline.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/compat"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/server"
)

// chaosEngine builds an engine over enough rows to cross the parallel
// scan threshold, plus a small join side.
func chaosEngine(t testing.TB, lim sqlpp.Limits) *sqlpp.Engine {
	t.Helper()
	db := sqlpp.New(&sqlpp.Options{Parallelism: 4, Limits: lim})
	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < 3000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'id': %d, 'deptno': %d}", i, i%16)
	}
	sb.WriteString("}}")
	if err := db.RegisterSION("emp", sb.String()); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	sb.WriteString("{{")
	for i := 0; i < 16; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'dno': %d, 'dn': 'D%d'}", i, i)
	}
	sb.WriteString("}}")
	if err := db.RegisterSION("dept", sb.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// waitGoroutines polls until the goroutine count drops back to base (or
// the reap window closes).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > base {
		t.Errorf("goroutines leaked: %d before, %d after", base, after)
	}
}

// TestChaosEngineSweep arms each engine-side injection point with an
// error and then a panic action. Every faulted run must fail with the
// right typed error, and after disarming the same query must reproduce
// its baseline byte-for-byte.
func TestChaosEngineSweep(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	cases := []struct {
		point string
		query string
	}{
		// Parallelism 4 over 3000 rows: a plain scan runs partitioned, so
		// scan-next fires inside workers; the correlated filter below keeps
		// the join sequential for the hash-build point.
		{faultinject.ScanNext, `SELECT VALUE COUNT(*) FROM dept AS d`},
		{faultinject.HashBuildInsert, `SELECT e.id AS id, d.dn AS dn FROM dept AS d, emp AS e WHERE e.deptno = d.dno AND e.id < 40`},
		{faultinject.WorkerStart, `SELECT VALUE COUNT(*) FROM emp AS e`},
	}
	db := chaosEngine(t, sqlpp.Limits{})
	base := runtime.NumGoroutine()
	for _, tc := range cases {
		faultinject.Reset()
		baseline, err := db.Query(tc.query)
		if err != nil {
			t.Fatalf("%s baseline: %v", tc.point, err)
		}

		// Error action: the injected error propagates as this query's
		// ordinary failure, rooted in ErrInjected.
		faultinject.Set(tc.point, 0, 1, 1, faultinject.Action{Err: faultinject.ErrInjected})
		if _, err := db.Query(tc.query); !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("%s error action: want ErrInjected, got %v", tc.point, err)
		}
		if faultinject.Fired(tc.point) == 0 {
			t.Errorf("%s error action: point never fired — query does not reach it", tc.point)
		}

		// Panic action: contained into a *PanicError, process intact.
		faultinject.Reset()
		faultinject.Set(tc.point, 0, 1, 1, faultinject.Action{Panic: "chaos"})
		_, err = db.Query(tc.query)
		var pe *sqlpp.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("%s panic action: want PanicError, got %v", tc.point, err)
		}

		// Disarmed retry: bit-identical to the baseline.
		faultinject.Reset()
		again, err := db.Query(tc.query)
		if err != nil {
			t.Fatalf("%s retry after reset: %v", tc.point, err)
		}
		if baseline.String() != again.String() {
			t.Errorf("%s: retry diverges from baseline:\n  before %s\n  after  %s",
				tc.point, baseline, again)
		}
	}
	waitGoroutines(t, base)
}

// TestChaosIndexSweep arms the index-probe injection point under
// indexed equality and range queries, and the index-build point under
// CreateIndex. Probe faults must surface as this query's typed error
// (or a contained panic) and vanish on disarmed retry; a build fault
// must fail CreateIndex cleanly while queries keep producing the
// baseline via the scan path, and a disarmed rebuild must restore
// byte-identical indexed results.
func TestChaosIndexSweep(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	db := chaosEngine(t, sqlpp.Limits{})
	base := runtime.NumGoroutine()

	queries := []struct {
		name, query string
	}{
		{"equality", `SELECT VALUE e.deptno FROM emp AS e WHERE e.id = 1234`},
		{"range", `SELECT VALUE e.id FROM emp AS e WHERE e.id >= 100 AND e.id < 140`},
	}
	// Fault-free scan baselines, taken before any index exists.
	baseline := make(map[string]string, len(queries))
	for _, q := range queries {
		v, err := db.Query(q.query)
		if err != nil {
			t.Fatalf("%s baseline: %v", q.name, err)
		}
		baseline[q.name] = v.String()
	}

	// Build fault: CreateIndex fails typed, no index is installed, and
	// the queries keep answering from the scan path unchanged.
	faultinject.Set(faultinject.IndexBuildInsert, 0, 1, 1, faultinject.Action{Err: faultinject.ErrInjected})
	if err := db.CreateIndex("ix_id", "emp", "id", "hash"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("build error action: want ErrInjected, got %v", err)
	}
	if faultinject.Fired(faultinject.IndexBuildInsert) == 0 {
		t.Error("build error action: point never fired")
	}
	if n := len(db.Indexes()); n != 0 {
		t.Errorf("failed build left %d indexes installed", n)
	}
	faultinject.Reset()
	for _, q := range queries {
		v, err := db.Query(q.query)
		if err != nil {
			t.Fatalf("%s after failed build: %v", q.name, err)
		}
		if v.String() != baseline[q.name] {
			t.Errorf("%s after failed build diverges from baseline", q.name)
		}
	}

	// Disarmed rebuild succeeds; indexed results stay byte-identical.
	if err := db.CreateIndex("ix_id", "emp", "id", "ordered"); err != nil {
		t.Fatalf("disarmed CreateIndex: %v", err)
	}
	for _, q := range queries {
		baselineRun, err := db.Query(q.query)
		if err != nil {
			t.Fatalf("%s indexed baseline: %v", q.name, err)
		}
		if baselineRun.String() != baseline[q.name] {
			t.Fatalf("%s: indexed result diverges from scan baseline:\n  scan  %s\n  index %s",
				q.name, baseline[q.name], baselineRun)
		}

		// Probe error action: typed, attributable failure.
		faultinject.Set(faultinject.IndexProbeNext, 0, 1, 1, faultinject.Action{Err: faultinject.ErrInjected})
		if _, err := db.Query(q.query); !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("%s probe error action: want ErrInjected, got %v", q.name, err)
		}
		if faultinject.Fired(faultinject.IndexProbeNext) == 0 {
			t.Errorf("%s probe error action: point never fired — query is not using the index", q.name)
		}

		// Probe panic action: contained into a *PanicError.
		faultinject.Reset()
		faultinject.Set(faultinject.IndexProbeNext, 0, 1, 1, faultinject.Action{Panic: "chaos"})
		_, err = db.Query(q.query)
		var pe *sqlpp.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("%s probe panic action: want PanicError, got %v", q.name, err)
		}

		// Disarmed retry: bit-identical to the scan baseline.
		faultinject.Reset()
		again, err := db.Query(q.query)
		if err != nil {
			t.Fatalf("%s retry after reset: %v", q.name, err)
		}
		if again.String() != baseline[q.name] {
			t.Errorf("%s: disarmed retry diverges from baseline:\n  before %s\n  after  %s",
				q.name, baseline[q.name], again)
		}
	}
	waitGoroutines(t, base)
}

// TestChaosStallHitsWallBudget: a stall injected into the scan must be
// caught by the governor's wall-time budget, not hang the query.
func TestChaosStallHitsWallBudget(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	db := chaosEngine(t, sqlpp.Limits{MaxWallTime: 30 * time.Millisecond})
	faultinject.Set(faultinject.ScanNext, 0, 1, 1, faultinject.Action{Sleep: 100 * time.Millisecond})
	start := time.Now()
	_, err := db.Query(`SELECT e.id AS id, d.dn AS dn FROM dept AS d, emp AS e WHERE e.deptno = d.dno AND e.id < 2000`)
	var re *sqlpp.ResourceError
	if !errors.As(err, &re) || re.Kind != sqlpp.ResourceTime {
		t.Fatalf("want wall-time ResourceError after injected stall, got %v", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("stalled query not stopped promptly: %v", e)
	}
}

type chaosResp struct {
	status int
	result string
	errMsg string
}

func postQuery(t *testing.T, client *http.Client, url string, body map[string]any) chaosResp {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded struct {
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("bad response body %q: %v", raw, err)
	}
	return chaosResp{status: resp.StatusCode, result: string(decoded.Result), errMsg: decoded.Error}
}

// paperRuns expands the paper listings into (case, compat-mode) runs.
func paperRuns() []struct {
	c      *compat.Case
	compat bool
} {
	var runs []struct {
		c      *compat.Case
		compat bool
	}
	for _, c := range compat.PaperCases() {
		for _, flag := range []bool{false, true} {
			if (c.Mode == compat.Core && flag) || (c.Mode == compat.Compat && !flag) {
				continue
			}
			runs = append(runs, struct {
				c      *compat.Case
				compat bool
			}{c, flag})
		}
	}
	return runs
}

// TestChaosServerPaperBattery drives every paper listing concurrently
// through an httptest server while seeded fault schedules fire at the
// plan-cache-get and ingest-decode points. Each response must be either
// a clean injected-fault error or byte-identical to the fault-free
// baseline; after disarming, a full retry must reproduce the baseline.
func TestChaosServerPaperBattery(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	db := sqlpp.New(nil)
	for _, r := range paperRuns() {
		for name, src := range r.c.Data {
			if err := db.RegisterSION(name, src); err != nil {
				t.Fatal(err)
			}
		}
	}
	svc := server.New(db, server.Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	runs := paperRuns()
	reqFor := func(i int) map[string]any {
		r := runs[i]
		return map[string]any{
			"query": r.c.Query,
			"options": map[string]any{
				"compat": r.compat,
				"strict": r.c.Strict,
			},
		}
	}

	// Fault-free baseline, one response per run.
	baseline := make([]chaosResp, len(runs))
	for i := range runs {
		baseline[i] = postQuery(t, client, ts.URL, reqFor(i))
	}

	base := runtime.NumGoroutine()
	faultinject.Schedule(20260805, faultinject.PlanCacheGet, faultinject.IngestDecode)

	var wg sync.WaitGroup
	const workers = 8
	errCh := make(chan string, workers*len(runs)*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := range runs {
					got := postQuery(t, client, ts.URL, reqFor(i))
					switch {
					case got == baseline[i]:
						// Un-faulted request: identical to the baseline.
					case strings.Contains(got.errMsg, "injected fault"):
						// Faulted request: clean, attributable error.
					default:
						errCh <- fmt.Sprintf("%s(compat=%v): unexpected response %+v (baseline %+v)",
							runs[i].c.Name, runs[i].compat, got, baseline[i])
					}
				}
				// Interleave ingests so ingest-decode faults fire under load;
				// names are private to this worker, so queries never see them.
				body := strings.NewReader(`{{ {'w': 1} }}`)
				resp, err := client.Post(
					fmt.Sprintf("%s/v1/collections/chaos_w%d?format=sion", ts.URL, w),
					"application/sion", body)
				if err != nil {
					errCh <- fmt.Sprintf("ingest: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 300 && !strings.Contains(string(raw), "injected fault") {
					errCh <- fmt.Sprintf("ingest: status %d body %s", resp.StatusCode, raw)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Error(msg)
	}
	if faultinject.Fired(faultinject.PlanCacheGet) == 0 {
		t.Error("plan-cache-get never fired: the battery exercised nothing")
	}

	// Disarmed: every run reproduces its fault-free baseline exactly.
	faultinject.Reset()
	for i := range runs {
		if got := postQuery(t, client, ts.URL, reqFor(i)); got != baseline[i] {
			t.Errorf("%s(compat=%v): post-chaos retry diverges: %+v vs %+v",
				runs[i].c.Name, runs[i].compat, got, baseline[i])
		}
	}
	// Pooled keep-alive connections are the client's, not the server's —
	// drop them before the leak check so only server goroutines count.
	client.CloseIdleConnections()
	waitGoroutines(t, base)
}

// TestChaosStatsSweep arms the statistics-build injection point. A
// failed statistics build must never fail registration or ingest —
// the collection lands, the snapshot simply carries no statistics —
// and planning must degrade to the heuristic order with results
// byte-identical to a statistics-driven engine's. Disarmed re-ingest
// restores cost-based planning.
func TestChaosStatsSweep(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	mkRows := func(n int, key string) string {
		var sb strings.Builder
		sb.WriteString("{{")
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "{'%s': %d}", key, i)
		}
		sb.WriteString("}}")
		return sb.String()
	}
	load := func(t *testing.T, db *sqlpp.Engine) {
		t.Helper()
		for _, c := range []struct {
			name, key string
			n         int
		}{{"l", "x", 3000}, {"m", "y", 300}, {"s", "j", 10}} {
			if err := db.RegisterSION(c.name, mkRows(c.n, c.key)); err != nil {
				t.Fatalf("register %s: %v", c.name, err)
			}
		}
	}
	query := `SELECT VALUE {'x': l.x, 'y': m.y} FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j`
	hasNote := func(p *sqlpp.Prepared, prefix string) bool {
		for _, n := range p.PlanNotes() {
			if strings.HasPrefix(n, prefix) {
				return true
			}
		}
		return false
	}

	// Fault-free baseline: statistics present, join reordered.
	healthy := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	load(t, healthy)
	if len(healthy.Stats()) != 3 {
		t.Fatalf("healthy engine tracks %d stats snapshots, want 3", len(healthy.Stats()))
	}
	hp, err := healthy.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(hp, "join-order(") {
		t.Fatalf("healthy plan not reordered: %v", hp.PlanNotes())
	}
	baseline, err := hp.Exec()
	if err != nil {
		t.Fatal(err)
	}

	// Armed at every sketch add: registration must still succeed, with
	// the statistics dropped and planning back on the heuristic order.
	faultinject.Set(faultinject.StatsSketchAdd, 0, 1, 1<<40, faultinject.Action{Err: faultinject.ErrInjected})
	degraded := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	load(t, degraded)
	if faultinject.Fired(faultinject.StatsSketchAdd) == 0 {
		t.Fatal("stats-sketch-add never fired during registration")
	}
	if got := len(degraded.Stats()); got != 0 {
		t.Fatalf("faulted engine still tracks %d stats snapshots, want 0", got)
	}
	dp, err := degraded.Prepare(query)
	if err != nil {
		t.Fatalf("prepare without statistics: %v", err)
	}
	if hasNote(dp, "join-order(") || hasNote(dp, "est-rows(") {
		t.Fatalf("stats-less plan carries cost notes: %v", dp.PlanNotes())
	}
	dres, err := dp.Exec()
	if err != nil {
		t.Fatalf("exec without statistics: %v", err)
	}
	if dres.String() != baseline.String() {
		t.Fatalf("stats-less result diverges from baseline:\n  baseline %s\n  degraded %s", baseline, dres)
	}

	// A faulted incremental extend must keep the append (rows land) and
	// drop the snapshot, not corrupt it.
	faultinject.Reset()
	appendee := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	load(t, appendee)
	faultinject.Set(faultinject.StatsSketchAdd, 0, 1, 1<<40, faultinject.Action{Err: faultinject.ErrInjected})
	if err := appendee.AppendSION("s", "{{{'j': 10}}}"); err != nil {
		t.Fatalf("append under stats fault: %v", err)
	}
	if got := len(appendee.Stats()); got != 2 {
		t.Fatalf("after faulted append: %d stats snapshots, want 2 (s dropped)", got)
	}
	v, err := appendee.Query(`SELECT VALUE COUNT(*) FROM s AS s`)
	if err != nil || v.String() != "{{11}}" {
		t.Fatalf("faulted append lost rows: %s, %v", v, err)
	}

	// Disarmed: a fresh ingest is statistics-driven again and agrees
	// with the baseline byte-for-byte.
	faultinject.Reset()
	recovered := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	load(t, recovered)
	rp, err := recovered.Prepare(query)
	if err != nil {
		t.Fatal(err)
	}
	if !hasNote(rp, "join-order(") {
		t.Fatalf("recovered plan not reordered: %v", rp.PlanNotes())
	}
	rres, err := rp.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if rres.String() != baseline.String() {
		t.Fatalf("recovered result diverges:\n  baseline  %s\n  recovered %s", baseline, rres)
	}
}
