package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/bench"
)

// governorReport is the machine-readable artifact of -governor.
type governorReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Scale      int `json:"scale"`
	// Overhead compares ungoverned execution (nil governor, the fast
	// path) with execution under generous budgets that never trip.
	Overhead []governorOverhead `json:"overhead"`
	// Enforcement records each budget kind tripping on a query built to
	// exceed it: the observed error kind must match the budget set.
	Enforcement []governorEnforcement `json:"enforcement"`
}

type governorOverhead struct {
	Name         string  `json:"name"`
	UngovernedNs float64 `json:"ungoverned_ns_per_op"`
	GovernedNs   float64 `json:"governed_ns_per_op"`
	// Overhead is governed-ns / ungoverned-ns: the cost of charging the
	// budgets relative to the nil-governor fast path.
	Overhead float64 `json:"overhead"`
}

type governorEnforcement struct {
	Budget   string `json:"budget"`
	Query    string `json:"query"`
	Kind     string `json:"observed_kind"`
	Limit    int64  `json:"limit"`
	Observed int64  `json:"observed"`
	Pass     bool   `json:"pass"`
}

// runGovernor measures the resource governor: its overhead at budgets
// that never trip (results must be identical to ungoverned runs), and
// each budget kind aborting a query built to exceed it with the right
// typed error. The numbers land in outPath.
func runGovernor(scale int, outPath string) bool {
	fmt.Println("== Resource governor (overhead at generous budgets; enforcement per budget kind) ==")
	mk := func(lim sqlpp.Limits) *sqlpp.Engine {
		db := sqlpp.New(&sqlpp.Options{Parallelism: 1, Limits: lim})
		if err := db.Register("emp", bench.FlatEmp(20000*scale, 20, 42)); err != nil {
			panic(err)
		}
		if err := db.Register("dept", bench.Departments(20, 42)); err != nil {
			panic(err)
		}
		return db
	}
	plain := mk(sqlpp.Limits{})
	generous := mk(sqlpp.Limits{
		MaxOutputRows:        1 << 40,
		MaxMaterializedBytes: 1 << 50,
		MaxDepth:             1 << 20,
		MaxWallTime:          time.Hour,
	})

	report := governorReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale}
	failed := false
	queries := []struct{ name, q string }{
		{"scan-filter", `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100000`},
		{"hash-join", `SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`},
		{"group", `SELECT e.deptno AS dno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno`},
		{"top-k", `SELECT VALUE e.name FROM emp AS e ORDER BY e.salary DESC LIMIT 10`},
	}
	for _, tc := range queries {
		pPlain, err := plain.Prepare(tc.q)
		if err != nil {
			fmt.Printf("  %-12s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		pGov, err := generous.Prepare(tc.q)
		if err != nil {
			fmt.Printf("  %-12s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		vPlain, err1 := pPlain.Exec()
		vGov, err2 := pGov.Exec()
		if err1 != nil || err2 != nil {
			fmt.Printf("  %-12s ERROR plain=%v governed=%v\n", tc.name, err1, err2)
			failed = true
			continue
		}
		if vPlain.String() != vGov.String() {
			fmt.Printf("  %-12s RESULT MISMATCH: governed run changed the result\n", tc.name)
			failed = true
			continue
		}
		runtime.GC()
		ungovRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pPlain.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.GC()
		govRes := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pGov.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
		uNs, gNs := float64(ungovRes.NsPerOp()), float64(govRes.NsPerOp())
		overhead := 0.0
		if uNs > 0 {
			overhead = gNs / uNs
		}
		report.Overhead = append(report.Overhead, governorOverhead{
			Name: tc.name, UngovernedNs: uNs, GovernedNs: gNs, Overhead: overhead,
		})
		fmt.Printf("  %-12s ungoverned %12.0f ns/op   governed %12.0f ns/op   (%.3fx)\n",
			tc.name, uNs, gNs, overhead)
	}

	fmt.Println("\n  enforcement:")
	cases := []struct {
		budget string
		lim    sqlpp.Limits
		query  string
	}{
		{"output-rows", sqlpp.Limits{MaxOutputRows: 100},
			`SELECT e.name AS n FROM emp AS e`},
		{"materialized-values", sqlpp.Limits{MaxMaterializedValues: 100},
			`SELECT e.deptno AS dno, COUNT(*) AS n FROM emp AS e GROUP BY e.deptno`},
		{"materialized-bytes", sqlpp.Limits{MaxMaterializedBytes: 4096},
			`SELECT e.deptno AS dno, COUNT(*) AS n FROM emp AS e GROUP BY e.deptno`},
		{"nesting-depth", sqlpp.Limits{MaxDepth: 1},
			`SELECT e.name AS n, (SELECT VALUE d.name FROM dept AS d WHERE d.dno = e.deptno) AS dn FROM emp AS e`},
		{"wall-time", sqlpp.Limits{MaxWallTime: time.Millisecond},
			`SELECT COUNT(*) AS n FROM emp AS a, emp AS b WHERE a.salary = b.salary`},
	}
	for _, tc := range cases {
		db := mk(tc.lim)
		_, err := db.Query(tc.query)
		var re *sqlpp.ResourceError
		e := governorEnforcement{Budget: tc.budget, Query: tc.query}
		if errors.As(err, &re) {
			e.Kind = string(re.Kind)
			e.Limit = re.Limit
			e.Observed = re.Observed
			e.Pass = e.Kind == tc.budget
		}
		if !e.Pass {
			failed = true
		}
		status := "PASS"
		if !e.Pass {
			status = fmt.Sprintf("FAIL (err=%v)", err)
		}
		fmt.Printf("  %-22s %s\n", tc.budget, status)
		report.Enforcement = append(report.Enforcement, e)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}
