package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sqlpp"
	"sqlpp/internal/value"
)

// indexReport is the machine-readable artifact of -index.
type indexReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Scale      int         `json:"scale"`
	Sizes      []indexSize `json:"sizes"`
}

// indexSize holds the numbers for one collection size: index build cost
// and the scan-vs-probe comparison per probe shape.
type indexSize struct {
	Rows           int          `json:"rows"`
	BuildHashNs    float64      `json:"build_hash_ns"`
	BuildOrderedNs float64      `json:"build_ordered_ns"`
	Probes         []indexProbe `json:"probes"`
}

type indexProbe struct {
	Name       string  `json:"name"`
	ResultRows int     `json:"result_rows"`
	ScanNs     float64 `json:"scan_ns_per_op"`
	IndexNs    float64 `json:"index_ns_per_op"`
	// Speedup is scan-ns / index-ns.
	Speedup float64 `json:"speedup"`
	// Operator is the index operator observed in EXPLAIN ANALYZE on the
	// indexed engine ("" means no index operator appeared — a failure).
	Operator string `json:"operator"`
}

// indexRows generates n rows {id, grp, pad}: id unique (the equality
// and range key), grp low-cardinality, pad ballast so rows are not
// trivially small.
func indexRows(n int) value.Bag {
	out := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := value.EmptyTuple()
		t.Put("id", value.Int(int64(i)))
		t.Put("grp", value.Int(int64(i%100)))
		t.Put("pad", value.String(fmt.Sprintf("row-%08d", i)))
		out = append(out, t)
	}
	return out
}

// runIndexBench measures secondary-index build cost and equality/range
// probe latency against the full scans they replace, at 10k and 100k
// rows, and writes the numbers to outPath. Both engines run with
// Parallelism 1 so the comparison is probe-vs-sequential-scan, not
// probe-vs-worker-pool. It reports failure when any variant errors,
// when the indexed results are not byte-identical to the scans, when
// EXPLAIN ANALYZE shows no index operator, or when a 100k-row probe is
// under 10x faster than its scan.
func runIndexBench(scale int, outPath string) bool {
	fmt.Println("== Secondary indexes (build cost, equality probe, range scan vs full scan) ==")
	fmt.Println("(Parallelism=1; indexed results diffed byte-for-byte against scans)")
	report := indexReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale}
	failed := false
	for _, rows := range []int{10000 * scale, 100000 * scale} {
		fmt.Printf("\n%d rows\n", rows)
		data := indexRows(rows)
		size := indexSize{Rows: rows}

		scanDB := sqlpp.New(&sqlpp.Options{Parallelism: 1})
		idxDB := sqlpp.New(&sqlpp.Options{Parallelism: 1})
		if err := scanDB.Register("rows", data); err != nil {
			fmt.Println("  ERROR:", err)
			return true
		}
		if err := idxDB.Register("rows", data); err != nil {
			fmt.Println("  ERROR:", err)
			return true
		}

		// Build cost: drop + recreate per iteration.
		runtime.GC()
		buildHash := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idxDB.DropIndex("bh")
				if err := idxDB.CreateIndex("bh", "rows", "id", "hash"); err != nil {
					b.Fatal(err)
				}
			}
		})
		idxDB.DropIndex("bh")
		runtime.GC()
		buildOrdered := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idxDB.DropIndex("bo")
				if err := idxDB.CreateIndex("bo", "rows", "id", "ordered"); err != nil {
					b.Fatal(err)
				}
			}
		})
		idxDB.DropIndex("bo")
		size.BuildHashNs = float64(buildHash.NsPerOp())
		size.BuildOrderedNs = float64(buildOrdered.NsPerOp())
		fmt.Printf("  %-16s %12.0f ns/build\n", "build-hash", size.BuildHashNs)
		fmt.Printf("  %-16s %12.0f ns/build\n", "build-ordered", size.BuildOrderedNs)

		if err := idxDB.CreateIndex("ix_eq", "rows", "id", "hash"); err != nil {
			fmt.Println("  ERROR:", err)
			return true
		}
		if err := idxDB.CreateIndex("ix_rng", "rows", "id", "ordered"); err != nil {
			fmt.Println("  ERROR:", err)
			return true
		}

		lo := rows / 2
		probes := []struct{ name, query, wantOp string }{
			{"equality", fmt.Sprintf(`SELECT VALUE r.pad FROM rows AS r WHERE r.id = %d`, lo), "index_probe"},
			{"range", fmt.Sprintf(`SELECT VALUE r.pad FROM rows AS r WHERE r.id >= %d AND r.id < %d`, lo, lo+100), "index_range"},
		}
		for _, tc := range probes {
			p := indexProbe{Name: tc.name}
			scanNs, scanRes, err := benchQuery(scanDB, tc.query)
			if err != nil {
				fmt.Printf("  %-16s scan ERROR %v\n", tc.name, err)
				failed = true
				continue
			}
			idxNs, idxRes, err := benchQuery(idxDB, tc.query)
			if err != nil {
				fmt.Printf("  %-16s index ERROR %v\n", tc.name, err)
				failed = true
				continue
			}
			if scanRes.String() != idxRes.String() {
				fmt.Printf("  %-16s RESULT MISMATCH: indexed result differs from scan\n", tc.name)
				failed = true
				continue
			}
			p.ResultRows = int(resultRows(idxRes))
			p.ScanNs, p.IndexNs = scanNs, idxNs
			if idxNs > 0 {
				p.Speedup = scanNs / idxNs
			}
			p.Operator = explainOperator(idxDB, tc.query, tc.wantOp)
			status := ""
			if p.Operator == "" {
				status = "  NO INDEX OPERATOR IN EXPLAIN"
				failed = true
			}
			if rows >= 100000 && p.Speedup < 10 {
				status += fmt.Sprintf("  UNDER 10x (%.1fx)", p.Speedup)
				failed = true
			}
			fmt.Printf("  %-16s scan %12.0f ns/op   index %12.0f ns/op   %7.1fx   %4d rows  [%s]%s\n",
				tc.name, p.ScanNs, p.IndexNs, p.Speedup, p.ResultRows, p.Operator, status)
			size.Probes = append(size.Probes, p)
		}
		report.Sizes = append(report.Sizes, size)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}

// benchQuery prepares and times one query, returning ns/op and the
// result value.
func benchQuery(db *sqlpp.Engine, query string) (float64, value.Value, error) {
	p, err := db.Prepare(query)
	if err != nil {
		return 0, nil, err
	}
	res, err := p.Exec()
	if err != nil {
		return 0, nil, err
	}
	runtime.GC()
	bres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(bres.NsPerOp()), res, nil
}

// explainOperator runs the query under EXPLAIN ANALYZE and returns
// wantOp if that operator appears in the stats tree, else "".
func explainOperator(db *sqlpp.Engine, query, wantOp string) string {
	p, err := db.Prepare(query)
	if err != nil {
		return ""
	}
	_, st, err := p.ExplainAnalyze(context.Background())
	if err != nil {
		return ""
	}
	if statsHasOp(st, wantOp) {
		return wantOp
	}
	return ""
}

// statsHasOp walks a stats tree looking for an operator name.
func statsHasOp(st *sqlpp.OpStats, op string) bool {
	if st == nil {
		return false
	}
	if st.Op == op {
		return true
	}
	for _, c := range st.Children {
		if statsHasOp(c, op) {
			return true
		}
	}
	return false
}

// resultRows is the cardinality of a query result.
func resultRows(v value.Value) int64 {
	if els, ok := value.Elements(v); ok {
		return int64(len(els))
	}
	return 1
}
