package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"sqlpp/tools/analyzers/lint"
)

// lintBudget is the wall-clock ceiling for one full-repo analysis run.
// The suite is part of the inner development loop (CI runs it on every
// push, TestRepoClean runs it on every `go test`), so it has a latency
// budget like any other query: if a whole-program pass grows past this,
// it needs memoization work, not a bigger timeout.
const lintBudget = 30 * time.Second

// lintReport is the machine-readable artifact of -lint.
type lintReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	BudgetSec  float64        `json:"budget_sec"`
	LoadSec    float64        `json:"load_sec"`
	TotalSec   float64        `json:"total_sec"`
	Files      int            `json:"files"`
	Packages   int            `json:"packages"`
	Findings   int            `json:"findings"`
	Analyzers  []lintAnalyzer `json:"analyzers"`
}

type lintAnalyzer struct {
	Name     string  `json:"name"`
	Sec      float64 `json:"sec"`
	Findings int     `json:"findings"`
}

// runLintBench times the full static-analysis suite over this repo —
// parse + type-check (the load) and then each analyzer separately — and
// fails if the end-to-end run exceeds lintBudget or any analyzer
// reports a finding. It is a smoke test for the analysis itself: the
// suite must stay fast enough to run on every push and the tree must
// stay clean under it.
func runLintBench(root, outPath string) bool {
	fmt.Println("== Static-analysis suite (full-repo load + all passes) ==")
	report := lintReport{GOMAXPROCS: runtime.GOMAXPROCS(0), BudgetSec: lintBudget.Seconds()}
	start := time.Now()
	host, err := lint.NewHost(root)
	if err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	repo, err := host.LoadRepo()
	if err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	load := time.Since(start)
	report.LoadSec = load.Seconds()
	report.Files = len(repo.Files)
	report.Packages = len(repo.Pkgs)
	fmt.Printf("  %-12s %8.2fs   (%d files, %d typed packages)\n",
		"load", load.Seconds(), len(repo.Files), len(repo.Pkgs))
	failed := false
	for _, a := range lint.All {
		t0 := time.Now()
		findings := lint.Dedup(a.Run(repo))
		d := time.Since(t0)
		report.Analyzers = append(report.Analyzers, lintAnalyzer{
			Name: a.Name, Sec: d.Seconds(), Findings: len(findings),
		})
		report.Findings += len(findings)
		status := ""
		if len(findings) > 0 {
			status = fmt.Sprintf("   %d FINDING(S)", len(findings))
			failed = true
			for _, f := range findings {
				fmt.Printf("    %s\n", f)
			}
		}
		fmt.Printf("  %-12s %8.2fs%s\n", a.Name, d.Seconds(), status)
	}
	total := time.Since(start)
	report.TotalSec = total.Seconds()
	fmt.Printf("  %-12s %8.2fs   (budget %.0fs)\n", "total", total.Seconds(), lintBudget.Seconds())
	if total > lintBudget {
		fmt.Printf("  OVER BUDGET: full analysis took %.2fs, budget is %.0fs\n",
			total.Seconds(), lintBudget.Seconds())
		failed = true
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}
