// Command sqlpp-bench regenerates the paper's artifacts:
//
//	sqlpp-bench -listings    re-execute every paper listing and diff the results
//	sqlpp-bench -kit         run the full Core SQL++ compatibility kit
//	sqlpp-bench -perf        run the performance experiments (claims C1/C3/C4/C6 + ablations)
//	sqlpp-bench -formats     run the format-independence experiment (claim C5)
//	sqlpp-bench -serve       run the served-vs-embedded query latency comparison
//	sqlpp-bench -joins       run the physical-optimizer experiments and write BENCH_joins.json
//	sqlpp-bench -explain     measure EXPLAIN ANALYZE overhead and write BENCH_explain.json
//	sqlpp-bench -governor    measure resource-governor overhead and enforcement and
//	                         write BENCH_governor.json
//	sqlpp-bench -vet         measure static-analysis (sema) cost and write BENCH_vet.json
//	sqlpp-bench -index       measure secondary-index build and probe cost vs full scans
//	                         and write BENCH_index.json
//	sqlpp-bench -vector      measure the compiled-expression execution core against
//	                         the tree-walking interpreter and write BENCH_vector.json
//	sqlpp-bench -planner     run identical queries through the heuristic and the
//	                         cost-based planner (one shared executor) and write
//	                         BENCH_planner.json
//	sqlpp-bench -shard       measure fault-tolerant scatter-gather over in-process
//	                         shards (4-shard speedup, byte identity, failure
//	                         policies) and write BENCH_shard.json
//	sqlpp-bench -lint        time the full static-analysis suite over this repo,
//	                         fail if it exceeds its 30s budget or finds anything,
//	                         and write BENCH_lint.json
//	sqlpp-bench              all of the above
//
// The output tables are the ones recorded in EXPERIMENTS.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/compat"
	"sqlpp/internal/value"
)

func main() {
	listings := flag.Bool("listings", false, "reproduce the paper listings")
	kit := flag.Bool("kit", false, "run the compatibility kit")
	perf := flag.Bool("perf", false, "run the performance experiments")
	formats := flag.Bool("formats", false, "run the format-independence experiment")
	serve := flag.Bool("serve", false, "run the served-vs-embedded latency comparison")
	joins := flag.Bool("joins", false, "run the physical-optimizer experiments")
	joinsOut := flag.String("joins-out", "BENCH_joins.json", "machine-readable output of -joins")
	explain := flag.Bool("explain", false, "measure EXPLAIN ANALYZE instrumentation overhead")
	explainOut := flag.String("explain-out", "BENCH_explain.json", "machine-readable output of -explain")
	governor := flag.Bool("governor", false, "measure resource-governor overhead and enforcement")
	governorOut := flag.String("governor-out", "BENCH_governor.json", "machine-readable output of -governor")
	vet := flag.Bool("vet", false, "measure static-analysis (sema) cost per query")
	vetOut := flag.String("vet-out", "BENCH_vet.json", "machine-readable output of -vet")
	indexBench := flag.Bool("index", false, "measure secondary-index build and probe cost vs full scans")
	indexOut := flag.String("index-out", "BENCH_index.json", "machine-readable output of -index")
	vector := flag.Bool("vector", false, "measure compiled-expression execution vs the interpreter")
	vectorOut := flag.String("vector-out", "BENCH_vector.json", "machine-readable output of -vector")
	planner := flag.Bool("planner", false, "run the planner-quality differential harness")
	plannerOut := flag.String("planner-out", "BENCH_planner.json", "machine-readable output of -planner")
	shardBench := flag.Bool("shard", false, "measure fault-tolerant scatter-gather over in-process shards")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "machine-readable output of -shard")
	lintBench := flag.Bool("lint", false, "time the full static-analysis suite; fail if over budget")
	lintOut := flag.String("lint-out", "BENCH_lint.json", "machine-readable output of -lint")
	lintRoot := flag.String("lint-root", ".", "module root the -lint suite analyzes")
	scale := flag.Int("scale", 1, "scale factor for the performance experiments")
	flag.Parse()

	all := !*listings && !*kit && !*perf && !*formats && !*serve && !*joins && !*explain && !*governor && !*vet && !*indexBench && !*vector && !*planner && !*shardBench && !*lintBench
	failed := false
	if *listings || all {
		failed = runListings() || failed
	}
	if *kit || all {
		failed = runKit() || failed
	}
	if *perf || all {
		runPerf(*scale)
	}
	if *formats || all {
		failed = runFormats(*scale) || failed
	}
	if *serve || all {
		failed = runServe(*scale) || failed
	}
	if *joins || all {
		failed = runJoins(*scale, *joinsOut) || failed
	}
	if *explain || all {
		failed = runExplain(*scale, *explainOut) || failed
	}
	if *governor || all {
		failed = runGovernor(*scale, *governorOut) || failed
	}
	if *vet || all {
		failed = runVetBench(*scale, *vetOut) || failed
	}
	if *indexBench || all {
		failed = runIndexBench(*scale, *indexOut) || failed
	}
	if *vector || all {
		failed = runVector(*scale, *vectorOut) || failed
	}
	if *planner || all {
		failed = runPlanner(*scale, *plannerOut) || failed
	}
	if *shardBench || all {
		failed = runShard(*scale, *shardOut) || failed
	}
	if *lintBench || all {
		failed = runLintBench(*lintRoot, *lintOut) || failed
	}
	if failed {
		os.Exit(1)
	}
}

// runListings re-executes every paper listing; it reports whether any
// failed.
func runListings() bool {
	fmt.Println("== Paper listings (queries re-executed, results diffed against the paper) ==")
	fmt.Printf("%-36s %-7s %s\n", "LISTING", "MODE", "STATUS")
	failed := false
	for _, c := range compat.PaperCases() {
		for _, r := range compat.Run(c) {
			status := "PASS"
			if !r.Pass {
				status = "FAIL: " + r.Detail
				failed = true
			}
			fmt.Printf("%-36s %-7s %s\n", c.Name, r.ModeName, status)
		}
	}
	fmt.Println()
	return failed
}

func runKit() bool {
	fmt.Println("== Core SQL++ compatibility kit ==")
	all, failures := compat.RunSuite(compat.Suite())
	fmt.Printf("%d checks, %d failures\n\n", len(all), len(failures))
	for _, f := range failures {
		fmt.Printf("FAIL %s [%s]: %s\n", f.Case.Name, f.ModeName, f.Detail)
	}
	return len(failures) > 0
}

func runPerf(scale int) {
	fmt.Println("== Performance experiments ==")
	fmt.Println("(ns/op measured via testing.Benchmark; rows = result cardinality)")
	for _, exp := range bench.StandardExperiments(scale) {
		fmt.Printf("\n%s\n  claim: %s\n", exp.ID, exp.Claim)
		var base float64
		for i, v := range exp.Variants {
			if v.ExpectError {
				_, err := v.Run()
				status := "did not fail"
				if err != nil {
					status = "fails fast: " + firstLine(err.Error())
				}
				fmt.Printf("  %-20s %s\n", v.Name, status)
				continue
			}
			rows, err := v.Run()
			if err != nil {
				fmt.Printf("  %-20s ERROR %v\n", v.Name, err)
				continue
			}
			prepared, err := v.Prepare()
			if err != nil {
				fmt.Printf("  %-20s ERROR %v\n", v.Name, err)
				continue
			}
			runtime.GC() // isolate variants from one another's garbage
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := prepared.Exec(); err != nil {
						b.Fatal(err)
					}
				}
			})
			perOp := float64(res.NsPerOp())
			if i == 0 {
				base = perOp
			}
			rel := ""
			if i > 0 && base > 0 {
				rel = fmt.Sprintf("  (%.2fx of %s)", perOp/base, exp.Variants[0].Name)
			}
			fmt.Printf("  %-20s %12.0f ns/op  %6d rows%s\n", v.Name, perOp, rows, rel)
		}
	}
	fmt.Println()
}

// joinsReport is the machine-readable artifact of -joins.
type joinsReport struct {
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Scale       int               `json:"scale"`
	Experiments []joinsExperiment `json:"experiments"`
}

type joinsExperiment struct {
	ID       string         `json:"id"`
	Claim    string         `json:"claim"`
	Variants []joinsVariant `json:"variants"`
}

type joinsVariant struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Rows    int     `json:"rows"`
	// Speedup is baseline-ns / this-ns; 1.0 for the baseline (first)
	// variant itself.
	Speedup float64 `json:"speedup_vs_baseline"`
}

// runJoins measures the physical-optimizer experiments (hash join,
// predicate pushdown, parallel scan) against the naive/sequential
// baselines and writes the numbers to outPath. It reports failure when
// any variant errors or produces a different row count than its
// baseline — the optimizations must be invisible in the results.
func runJoins(scale int, outPath string) bool {
	fmt.Println("== Physical optimizer (hash joins, pushdown, parallel scan) ==")
	fmt.Printf("(GOMAXPROCS=%d; baseline = first variant of each experiment)\n", runtime.GOMAXPROCS(0))
	report := joinsReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale}
	failed := false
	for _, exp := range bench.PhysicalExperiments(scale) {
		fmt.Printf("\n%s\n  claim: %s\n", exp.ID, exp.Claim)
		je := joinsExperiment{ID: exp.ID, Claim: exp.Claim}
		var base float64
		baseRows := -1
		for i, v := range exp.Variants {
			rows, err := v.Run()
			if err != nil {
				fmt.Printf("  %-20s ERROR %v\n", v.Name, err)
				failed = true
				continue
			}
			if i == 0 {
				baseRows = rows
			} else if rows != baseRows {
				fmt.Printf("  %-20s ROW MISMATCH: %d vs baseline %d\n", v.Name, rows, baseRows)
				failed = true
			}
			prepared, err := v.Prepare()
			if err != nil {
				fmt.Printf("  %-20s ERROR %v\n", v.Name, err)
				failed = true
				continue
			}
			runtime.GC()
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := prepared.Exec(); err != nil {
						b.Fatal(err)
					}
				}
			})
			perOp := float64(res.NsPerOp())
			if i == 0 {
				base = perOp
			}
			speedup := 1.0
			if i > 0 && perOp > 0 {
				speedup = base / perOp
			}
			je.Variants = append(je.Variants, joinsVariant{
				Name: v.Name, NsPerOp: perOp, Rows: rows, Speedup: speedup,
			})
			rel := ""
			if i > 0 {
				rel = fmt.Sprintf("  (%.1fx vs %s)", speedup, exp.Variants[0].Name)
			}
			fmt.Printf("  %-20s %12.0f ns/op  %6d rows%s\n", v.Name, perOp, rows, rel)
		}
		report.Experiments = append(report.Experiments, je)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}

// explainReport is the machine-readable artifact of -explain.
type explainReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Scale      int             `json:"scale"`
	Queries    []explainResult `json:"queries"`
}

type explainResult struct {
	Name       string  `json:"name"`
	DisabledNs float64 `json:"disabled_ns_per_op"`
	AnalyzeNs  float64 `json:"analyze_ns_per_op"`
	// Overhead is analyze-ns / disabled-ns: the full cost of collecting
	// the per-operator stats tree relative to the nil-sink fast path.
	Overhead float64 `json:"overhead"`
}

// runExplain measures the cost of EXPLAIN ANALYZE instrumentation: each
// query runs plain (nil stats sink, the fast path) and instrumented, and
// the results must render identically — instrumentation is observation,
// never behavior. The numbers land in outPath.
func runExplain(scale int, outPath string) bool {
	fmt.Println("== EXPLAIN ANALYZE overhead (nil-sink fast path vs instrumented) ==")
	db := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	if err := db.Register("emp", bench.FlatEmp(20000*scale, 20, 42)); err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	if err := db.Register("dept", bench.Departments(20, 42)); err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	queries := []struct{ name, q string }{
		{"scan-filter", `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100000`},
		{"hash-join", `SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`},
		{"group", `SELECT e.deptno AS dno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno`},
		{"top-k", `SELECT VALUE e.name FROM emp AS e ORDER BY e.salary DESC LIMIT 10`},
	}
	report := explainReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale}
	failed := false
	ctx := context.Background()
	for _, tc := range queries {
		p, err := db.Prepare(tc.q)
		if err != nil {
			fmt.Printf("  %-12s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		plain, err := p.Exec()
		if err != nil {
			fmt.Printf("  %-12s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		inst, _, err := p.ExplainAnalyze(ctx)
		if err != nil {
			fmt.Printf("  %-12s instrumented ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		if plain.String() != inst.String() {
			fmt.Printf("  %-12s RESULT MISMATCH: instrumentation changed the result\n", tc.name)
			failed = true
			continue
		}
		runtime.GC()
		disabled := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.GC()
		analyze := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := p.ExplainAnalyze(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		dNs, aNs := float64(disabled.NsPerOp()), float64(analyze.NsPerOp())
		overhead := 0.0
		if dNs > 0 {
			overhead = aNs / dNs
		}
		report.Queries = append(report.Queries, explainResult{
			Name: tc.name, DisabledNs: dNs, AnalyzeNs: aNs, Overhead: overhead,
		})
		fmt.Printf("  %-12s disabled %12.0f ns/op   analyze %12.0f ns/op   (%.3fx)\n",
			tc.name, dNs, aNs, overhead)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}

// runFormats checks claim C5: the same query over the same data in four
// formats returns identical results, and reports decode throughput.
func runFormats(scale int) bool {
	fmt.Println("== Format independence (C5) ==")
	payload, err := bench.BuildFormatPayload(50*scale, 20)
	if err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	query := `SELECT sp.symbol AS symbol, AVG(sp.price) AS avg_price
	          FROM stock_prices AS sp GROUP BY sp.symbol`
	var reference value.Value
	failed := false
	sizes := map[string]int{
		"sion": len(payload.SION), "json": len(payload.JSON),
		"cbor": len(payload.CBOR), "csv": len(payload.CSV),
	}
	for _, format := range []string{"sion", "json", "cbor", "csv"} {
		f := format
		v, err := bench.DecodeFormat(payload, f)
		if err != nil {
			fmt.Printf("  %-5s decode ERROR: %v\n", f, err)
			failed = true
			continue
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(sizes[f]))
			for i := 0; i < b.N; i++ {
				if _, err := bench.DecodeFormat(payload, f); err != nil {
					b.Fatal(err)
				}
			}
		})
		got, err := compatQuery(v, query)
		if err != nil {
			fmt.Printf("  %-5s query ERROR: %v\n", f, err)
			failed = true
			continue
		}
		same := "reference"
		if reference == nil {
			reference = got
		} else if value.Equivalent(reference, got) {
			same = "identical result"
		} else {
			same = "RESULT MISMATCH"
			failed = true
		}
		mbps := float64(sizes[f]) / (float64(res.NsPerOp()) / 1e9) / (1 << 20)
		fmt.Printf("  %-5s %8d bytes  decode %10.0f ns/op (%7.1f MiB/s)  %s\n",
			f, sizes[f], float64(res.NsPerOp()), mbps, same)
	}
	fmt.Println()
	return failed
}

func compatQuery(data value.Value, query string) (value.Value, error) {
	return compat.ExecuteValues(map[string]value.Value{"stock_prices": data}, query, false, false)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
