package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sqlpp"
	"sqlpp/internal/value"
)

// Planner-quality differential harness (-planner). Every query runs
// twice through the SAME executor: once on an engine with statistics
// disabled (the heuristic planner) and once with statistics enabled
// (the cost-based planner). The only degree of freedom is the physical
// plan, so any result difference is a planner bug and any wall-time
// difference is plan quality. The headline is an adversarial worst-
// first 3-way comma-join whose written order cross-products the two
// large relations before the small one that links them; the cost-based
// planner must win it by at least 5x with byte-identical results.

// plannerReport is the machine-readable artifact of -planner.
type plannerReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scale      int            `json:"scale"`
	Queries    []plannerQuery `json:"queries"`
}

// plannerQuery records one differential run: both plan shapes (the
// optimizer notes, including join-order and est-rows annotations), the
// actual result cardinality, and the wall time of one execution per
// planner.
type plannerQuery struct {
	Name       string   `json:"name"`
	Query      string   `json:"query"`
	Headline   bool     `json:"headline"`
	PlanHeur   []string `json:"plan_heuristic"`
	PlanCost   []string `json:"plan_cost_based"`
	EstRows    string   `json:"est_rows"`
	ActualRows int64    `json:"actual_rows"`
	Identical  bool     `json:"identical"`
	HeurNs     float64  `json:"heuristic_ns"`
	CostNs     float64  `json:"cost_based_ns"`
	// Speedup is heuristic-ns / cost-based-ns; > 1 means the cost-based
	// plan won.
	Speedup float64 `json:"speedup"`
}

// plannerData builds the three relations of the adversarial join:
// l is large with a unique key, m is mid-sized with a unique key, and
// s is tiny and links the two (l.x = s.j AND m.y = s.j). Written
// worst-first (l, m, s), the first two relations share no predicate, so
// a syntax-order planner cross-products |l| x |m| rows before s prunes
// them; ordering s first keeps every intermediate at |s| rows.
func plannerData(scale int) (l, m, s value.Bag) {
	nl, nm, ns := 100000*scale, 1000*scale, 10
	l = make(value.Bag, 0, nl)
	for i := 0; i < nl; i++ {
		t := value.EmptyTuple()
		t.Put("x", value.Int(int64(i)))
		t.Put("pl", value.String(fmt.Sprintf("l-%06d", i)))
		l = append(l, t)
	}
	m = make(value.Bag, 0, nm)
	for i := 0; i < nm; i++ {
		t := value.EmptyTuple()
		t.Put("y", value.Int(int64(i)))
		t.Put("pm", value.String(fmt.Sprintf("m-%06d", i)))
		m = append(m, t)
	}
	s = make(value.Bag, 0, ns)
	for i := 0; i < ns; i++ {
		t := value.EmptyTuple()
		t.Put("j", value.Int(int64(i)))
		s = append(s, t)
	}
	return l, m, s
}

// timedExec runs one prepared query once and returns its result and
// wall time. The adversarial heuristic plans are far too slow to
// repeat, so both sides are measured the same way: a single cold
// execution after a GC.
func timedExec(p *sqlpp.Prepared) (value.Value, float64, error) {
	runtime.GC()
	start := time.Now()
	res, err := p.Exec()
	return res, float64(time.Since(start).Nanoseconds()), err
}

// estRowsNote extracts the est-rows(...) annotation from a plan's
// notes, "" when the plan has none.
func estRowsNote(notes []string) string {
	for _, n := range notes {
		if strings.HasPrefix(n, "est-rows(") {
			return n
		}
	}
	return ""
}

// runPlanner runs the planner-quality differential harness and writes
// BENCH_planner.json. It reports failure when any variant errors, when
// the two planners' results are not byte-identical, or when the
// cost-based planner loses a headline query (the adversarial 3-way
// must improve by at least 5x; no headline may regress at all).
func runPlanner(scale int, outPath string) bool {
	fmt.Println("== Planner quality (heuristic vs cost-based, one shared executor) ==")
	fmt.Println("(Parallelism=1; results diffed byte-for-byte between planners)")
	report := plannerReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale}
	failed := false

	heurDB := sqlpp.New(&sqlpp.Options{Parallelism: 1, NoStats: true})
	costDB := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	l, m, s := plannerData(scale)
	for _, db := range []*sqlpp.Engine{heurDB, costDB} {
		for name, data := range map[string]value.Bag{"l": l, "m": m, "s": s} {
			if err := db.Register(name, data); err != nil {
				fmt.Println("  ERROR:", err)
				return true
			}
		}
	}

	queries := []struct {
		name     string
		query    string
		headline bool
		minGain  float64
	}{
		{
			// The acceptance headline: worst-first comma-join. l and m
			// share no predicate, so written order is |l| x |m| = 10^8
			// intermediates; cost-based order (s first) never exceeds |s|.
			name:     "3way-worst-first",
			query:    `SELECT VALUE {'x': l.x, 'y': m.y} FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j`,
			headline: true,
			minGain:  5,
		},
		{
			// Large-before-small with a link: the heuristic already hash-
			// joins, so this records that statistics do not regress the
			// easy case rather than a dramatic win.
			name:  "2way-large-small",
			query: `SELECT VALUE {'x': l.x} FROM l AS l, s AS s WHERE l.x = s.j`,
		},
		{
			// Mid relation first by syntax, large relation filtered hard
			// by a range predicate the statistics can see.
			name:  "3way-filtered",
			query: `SELECT VALUE {'x': l.x, 'y': m.y} FROM m AS m, l AS l, s AS s WHERE l.x = s.j AND m.y = s.j AND l.x < 500000`,
		},
	}

	for _, tc := range queries {
		q := plannerQuery{Name: tc.name, Query: tc.query, Headline: tc.headline}
		hp, err := heurDB.Prepare(tc.query)
		if err != nil {
			fmt.Printf("  %-18s heuristic ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		cp, err := costDB.Prepare(tc.query)
		if err != nil {
			fmt.Printf("  %-18s cost-based ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		q.PlanHeur = hp.PlanNotes()
		q.PlanCost = cp.PlanNotes()
		q.EstRows = estRowsNote(q.PlanCost)

		hres, hns, err := timedExec(hp)
		if err != nil {
			fmt.Printf("  %-18s heuristic ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		cres, cns, err := timedExec(cp)
		if err != nil {
			fmt.Printf("  %-18s cost-based ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		q.Identical = hres.String() == cres.String()
		q.ActualRows = resultRows(cres)
		q.HeurNs, q.CostNs = hns, cns
		if cns > 0 {
			q.Speedup = hns / cns
		}

		status := ""
		if !q.Identical {
			status = "  RESULT MISMATCH"
			failed = true
		}
		if tc.headline && q.Speedup < tc.minGain {
			status += fmt.Sprintf("  HEADLINE LOST (want >= %.0fx, got %.2fx)", tc.minGain, q.Speedup)
			failed = true
		}
		fmt.Printf("  %-18s heuristic %14.0f ns   cost-based %12.0f ns   %8.1fx   %5d rows%s\n",
			tc.name, q.HeurNs, q.CostNs, q.Speedup, q.ActualRows, status)
		if n := q.EstRows; n != "" {
			fmt.Printf("  %-18s %s\n", "", n)
		}
		report.Queries = append(report.Queries, q)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}
