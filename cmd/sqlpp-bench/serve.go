package main

// The served-query experiment: what does putting the engine behind the
// HTTP API cost per query, and how much of the service-side overhead
// does the plan cache recover? Four variants of the same query:
//
//	embedded/prepared   Prepared.Exec on the in-process engine (floor)
//	embedded/cold       Engine.Query — compile on every execution
//	served/cache-hit    HTTP round-trip, plan cache warm
//	served/cache-miss   HTTP round-trip, cache purged each request
//
// served − embedded is the HTTP+JSON tax; cache-miss − cache-hit is
// what the plan cache saves the server per repeated query.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/server"
)

func runServe(scale int) bool {
	fmt.Println("== Served vs embedded query latency ==")

	db := sqlpp.New(nil)
	if err := db.Register("emp", bench.FlatEmp(1000*scale, 10, 42)); err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	query := `SELECT e.deptno, AVG(e.salary) AS avgsal FROM emp AS e GROUP BY e.deptno`

	prepared, err := db.Prepare(query)
	if err != nil {
		fmt.Println("ERROR:", err)
		return true
	}

	svc := server.New(db, server.Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()
	body, _ := json.Marshal(map[string]any{"query": query})

	roundTrip := func() error {
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var reply struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, reply.Error)
		}
		return nil
	}
	// Smoke-check and warm the plan cache before timing.
	if err := roundTrip(); err != nil {
		fmt.Println("ERROR:", err)
		return true
	}

	variants := []struct {
		name string
		run  func() error
	}{
		{"embedded/prepared", func() error { _, err := prepared.Exec(); return err }},
		{"embedded/cold", func() error { _, err := db.Query(query); return err }},
		{"served/cache-hit", roundTrip},
		{"served/cache-miss", func() error {
			svc.Cache().Purge()
			return roundTrip()
		}},
	}

	var base float64
	failed := false
	for i, v := range variants {
		run := v.run
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		perOp := float64(res.NsPerOp())
		if i == 0 {
			base = perOp
		}
		rel := ""
		if i > 0 && base > 0 {
			rel = fmt.Sprintf("  (%.2fx of %s)", perOp/base, variants[0].name)
		}
		fmt.Printf("  %-20s %12.0f ns/op%s\n", v.name, perOp, rel)
	}
	fmt.Printf("  plan cache: %d hits, %d misses over the run\n\n", svc.Cache().Hits(), svc.Cache().Misses())
	return failed
}
