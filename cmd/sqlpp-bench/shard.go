package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/shard"
	"sqlpp/internal/value"
)

// shardSpeedupGate is the acceptance floor for 4-shard scatter-gather
// over the single-shard baseline on the GROUP BY workload. It is only
// enforced when the host has enough cores for shard parallelism to
// exist at all.
const shardSpeedupGate = 2.5

// shardReport is the machine-readable artifact of -shard.
type shardReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      int    `json:"scale"`
	Rows       int    `json:"rows"`
	Query      string `json:"query"`
	// SingleNodeNs is a plain engine with no coordinator in the path.
	SingleNodeNs float64 `json:"single_node_ns_per_op"`
	// OneShardNs is a 1-shard coordinator: scatter overhead, no
	// parallelism — the baseline the speedup is measured against.
	OneShardNs  float64 `json:"one_shard_ns_per_op"`
	FourShardNs float64 `json:"four_shard_ns_per_op"`
	// Speedup is one-shard-ns / four-shard-ns.
	Speedup       float64 `json:"speedup_4x_vs_1x"`
	ByteIdentical bool    `json:"byte_identical"`
	SpeedupGate   float64 `json:"speedup_gate"`
	// GateEnforced is false on hosts with fewer than 4 cores, where the
	// four shard workers serialize and the gate is unmeetable by
	// construction.
	GateEnforced bool             `json:"gate_enforced"`
	Partial      shardFaultResult `json:"partial_policy"`
	FailFast     shardFaultResult `json:"fail_policy"`
}

// shardFaultResult records one fault-injected scenario: a 4-shard
// fleet with one shard hard-down.
type shardFaultResult struct {
	OK            bool     `json:"ok"`
	MissingShards []string `json:"missing_shards,omitempty"`
	Error         string   `json:"error,omitempty"`
	ElapsedUS     int64    `json:"elapsed_us"`
	DeadlineUS    int64    `json:"deadline_us"`
}

// downExecutor wraps a shard executor and fails every call with a
// transient error — a hard-down data node, as the retry loop sees one.
type downExecutor struct {
	shard.Executor
}

func (d downExecutor) Exec(ctx context.Context, req shard.Request) (*shard.Response, error) {
	return nil, shard.Transient(fmt.Errorf("shard %s: injected outage", d.Name()))
}

func (d downExecutor) Ready(ctx context.Context) error {
	return fmt.Errorf("shard %s: injected outage", d.Name())
}

// newShardBench builds an n-shard coordinator over sequential
// (Parallelism=1) engines holding the scaled emp workload, so measured
// speedup comes from sharding alone. faultIdx >= 0 replaces that shard
// with a hard-down executor after distribution.
func newShardBench(emp value.Value, n int, pol shard.Policy, faultIdx int) (*shard.Coordinator, error) {
	opts := &sqlpp.Options{Parallelism: 1}
	execs := make([]shard.Executor, n)
	for i := range execs {
		execs[i] = shard.NewLocal(fmt.Sprintf("s%d", i), sqlpp.New(opts))
	}
	if faultIdx >= 0 {
		// Registration still lands (downExecutor only overrides Exec and
		// Ready), so the dead shard holds its part — it just never answers.
		execs[faultIdx] = downExecutor{execs[faultIdx]}
	}
	co := shard.NewCoordinator(sqlpp.New(opts), pol, execs...)
	if err := co.Distribute("emp", emp, shard.Spec{}); err != nil {
		return nil, err
	}
	return co, nil
}

// runShard measures fault-tolerant scatter-gather: 4-shard vs
// single-shard throughput on a 100k-row GROUP BY (byte-identity
// enforced against a plain engine), then both partial-failure policies
// with one shard hard-down, which must settle within the query deadline.
func runShard(scale int, outPath string) bool {
	fmt.Println("== Sharded scatter-gather (fault-tolerant scatter, partial aggregation merge) ==")
	rows := 100000 * scale
	emp := bench.FlatEmp(rows, 20, 42)
	const query = `SELECT e.deptno AS dno, COUNT(*) AS c, SUM(e.salary) AS s, AVG(e.salary) AS a
	               FROM emp AS e GROUP BY e.deptno ORDER BY dno`
	report := shardReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       scale,
		Rows:        rows,
		Query:       query,
		SpeedupGate: shardSpeedupGate,
	}
	failed := false
	ctx := context.Background()

	single := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	if err := single.Register("emp", emp); err != nil {
		fmt.Println("ERROR:", err)
		return true
	}
	want, err := single.Query(query)
	if err != nil {
		fmt.Println("ERROR:", err)
		return true
	}

	pol := shard.Policy{BreakerThreshold: -1}
	co1, err := newShardBench(emp, 1, pol, -1)
	if err == nil {
		var co4 *shard.Coordinator
		co4, err = newShardBench(emp, 4, pol, -1)
		if err == nil {
			res4, err4 := co4.Exec(ctx, query)
			res1, err1 := co1.Exec(ctx, query)
			switch {
			case err4 != nil:
				err = err4
			case err1 != nil:
				err = err1
			default:
				report.ByteIdentical = res4.Value.String() == want.String() &&
					res1.Value.String() == want.String()
				if !report.ByteIdentical {
					fmt.Println("  RESULT MISMATCH: sharded result diverged from single-node")
					failed = true
				}
				runtime.GC()
				bs := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := single.Query(query); err != nil {
							b.Fatal(err)
						}
					}
				})
				runtime.GC()
				b1 := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := co1.Exec(ctx, query); err != nil {
							b.Fatal(err)
						}
					}
				})
				runtime.GC()
				b4 := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := co4.Exec(ctx, query); err != nil {
							b.Fatal(err)
						}
					}
				})
				report.SingleNodeNs = float64(bs.NsPerOp())
				report.OneShardNs = float64(b1.NsPerOp())
				report.FourShardNs = float64(b4.NsPerOp())
				if report.FourShardNs > 0 {
					report.Speedup = report.OneShardNs / report.FourShardNs
				}
				report.GateEnforced = report.GOMAXPROCS >= 4
				fmt.Printf("  %-22s %12.0f ns/op\n", "single-node", report.SingleNodeNs)
				fmt.Printf("  %-22s %12.0f ns/op\n", "coordinator-1-shard", report.OneShardNs)
				fmt.Printf("  %-22s %12.0f ns/op  (%.2fx vs 1 shard)\n", "coordinator-4-shards", report.FourShardNs, report.Speedup)
				if report.GateEnforced && report.Speedup < shardSpeedupGate {
					fmt.Printf("  SPEEDUP GATE FAILED: %.2fx < %.2fx\n", report.Speedup, shardSpeedupGate)
					failed = true
				} else if !report.GateEnforced {
					fmt.Printf("  (speedup gate not enforced: GOMAXPROCS=%d < 4)\n", report.GOMAXPROCS)
				}
			}
		}
	}
	if err != nil {
		fmt.Println("ERROR:", err)
		return true
	}

	// Fault scenarios: one of four shards hard-down; both policies must
	// settle inside the query deadline instead of hanging on the dead
	// shard.
	deadline := 10 * time.Second
	faultPol := shard.Policy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond, BreakerThreshold: -1, OnFailure: shard.Partial}
	if coP, err := newShardBench(emp, 4, faultPol, 2); err != nil {
		fmt.Println("ERROR:", err)
		failed = true
	} else {
		fctx, cancel := context.WithTimeout(ctx, deadline)
		start := time.Now()
		res, perr := coP.Exec(fctx, query)
		elapsed := time.Since(start)
		cancel()
		r := shardFaultResult{ElapsedUS: elapsed.Microseconds(), DeadlineUS: deadline.Microseconds()}
		if perr == nil && len(res.MissingShards) == 1 && elapsed < deadline {
			r.OK = true
			r.MissingShards = res.MissingShards
			fmt.Printf("  %-22s partial result, missing %v, %s\n", "policy=partial", res.MissingShards, elapsed.Round(time.Millisecond))
		} else {
			if perr != nil {
				r.Error = perr.Error()
			}
			fmt.Printf("  policy=partial FAILED: err=%v missing=%v elapsed=%s\n", perr, resMissing(res), elapsed)
			failed = true
		}
		report.Partial = r
	}

	failPol := faultPol
	failPol.OnFailure = shard.FailFast
	if coF, err := newShardBench(emp, 4, failPol, 2); err != nil {
		fmt.Println("ERROR:", err)
		failed = true
	} else {
		fctx, cancel := context.WithTimeout(ctx, deadline)
		start := time.Now()
		_, ferr := coF.Exec(fctx, query)
		elapsed := time.Since(start)
		cancel()
		r := shardFaultResult{ElapsedUS: elapsed.Microseconds(), DeadlineUS: deadline.Microseconds()}
		var serr *shard.ShardError
		if errors.As(ferr, &serr) && elapsed < deadline {
			r.OK = true
			r.Error = ferr.Error()
			fmt.Printf("  %-22s typed error from %s after %d attempts, %s\n", "policy=fail", serr.Shard, serr.Attempts, elapsed.Round(time.Millisecond))
		} else {
			if ferr != nil {
				r.Error = ferr.Error()
			}
			fmt.Printf("  policy=fail FAILED: err=%v elapsed=%s\n", ferr, elapsed)
			failed = true
		}
		report.FailFast = r
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}

// resMissing extracts the missing-shards list from a possibly-nil
// result for failure messages.
func resMissing(res *shard.Result) []string {
	if res == nil {
		return nil
	}
	return res.MissingShards
}
