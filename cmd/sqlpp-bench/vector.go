package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
)

// vectorReport is the machine-readable artifact of -vector: the
// compiled-expression execution core (closure compilation + batched
// scans) measured against the tree-walking interpreter on the same
// prepared queries over the same data.
type vectorReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scale      int            `json:"scale"`
	Rows       int            `json:"rows"`
	Queries    []vectorResult `json:"queries"`
}

type vectorResult struct {
	Name          string  `json:"name"`
	Query         string  `json:"query"`
	InterpretedNs float64 `json:"interpreted_ns_per_op"`
	CompiledNs    float64 `json:"compiled_ns_per_op"`
	// Speedup is interpreted-ns / compiled-ns: >1 means the compiled
	// path is faster.
	Speedup float64 `json:"speedup"`
	Rows    int     `json:"rows"`
	// Operators break the end-to-end numbers down per plan operator,
	// from one instrumented (EXPLAIN ANALYZE) run of each engine. Times
	// are inclusive wall nanoseconds of a single instrumented run —
	// noisier than the end-to-end benchmark, but enough to localize
	// where the compiled path wins.
	Operators []vectorOperator `json:"operators,omitempty"`
}

type vectorOperator struct {
	Op            string `json:"op"`
	Label         string `json:"label,omitempty"`
	RowsOut       int64  `json:"rows_out"`
	InterpretedNs int64  `json:"interpreted_ns"`
	CompiledNs    int64  `json:"compiled_ns"`
}

// runVector measures the compiled-expression core: each query runs on
// an interpreter-only engine (NoCompile) and on the default compiled
// engine, results must render identically, and the headline
// scan-filter-project query must not regress — a compiled path slower
// than the interpreter on the workload it exists for fails the run.
// Both engines run sequentially so the numbers isolate expression
// evaluation from parallel-scan effects.
func runVector(scale int, outPath string) bool {
	rows := 100000 * scale
	fmt.Println("== Compiled-expression core (closure compilation + batched scans) ==")
	fmt.Printf("(rows=%d, sequential; interpreted = -no-compile, compiled = default)\n", rows)

	interp := sqlpp.New(&sqlpp.Options{NoCompile: true, Parallelism: 1})
	comp := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	emp := bench.FlatEmp(rows, 40, 42)
	dept := bench.Departments(40, 42)
	for _, db := range []*sqlpp.Engine{interp, comp} {
		if err := db.Register("emp", emp); err != nil {
			fmt.Println("ERROR:", err)
			return true
		}
		if err := db.Register("dept", dept); err != nil {
			fmt.Println("ERROR:", err)
			return true
		}
	}

	queries := []struct{ name, q string }{
		{"scan-filter-project", `SELECT e.name AS n, e.salary AS s FROM emp AS e WHERE e.salary > 100000`},
		{"arith-case", `SELECT e.name AS n, e.salary * 12 + 500 AS annual,
		                       CASE WHEN e.salary > 150000 THEN 'high' WHEN e.salary > 80000 THEN 'mid' ELSE 'low' END AS band
		                FROM emp AS e WHERE e.salary BETWEEN 40000 AND 180000`},
		{"like-filter", `SELECT VALUE e.name FROM emp AS e WHERE e.name LIKE 'emp1%'`},
		{"order-topk", `SELECT VALUE e.name FROM emp AS e ORDER BY e.salary DESC LIMIT 25`},
		{"group-agg", `SELECT e.deptno AS dno, AVG(e.salary) AS avg_sal FROM emp AS e GROUP BY e.deptno`},
		{"hash-join", `SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno WHERE e.salary > 120000`},
	}

	report := vectorReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale, Rows: rows}
	failed := false
	ctx := context.Background()
	for _, tc := range queries {
		pi, err := interp.Prepare(tc.q)
		if err != nil {
			fmt.Printf("  %-20s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		pc, err := comp.Prepare(tc.q)
		if err != nil {
			fmt.Printf("  %-20s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		vi, err := pi.Exec()
		if err != nil {
			fmt.Printf("  %-20s interpreted ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		vc, err := pc.Exec()
		if err != nil {
			fmt.Printf("  %-20s compiled ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		if vi.String() != vc.String() {
			fmt.Printf("  %-20s RESULT MISMATCH: compilation changed the result\n", tc.name)
			failed = true
			continue
		}
		_, si, err := pi.ExplainAnalyze(ctx)
		if err != nil {
			fmt.Printf("  %-20s interpreted analyze ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		_, sc, err := pc.ExplainAnalyze(ctx)
		if err != nil {
			fmt.Printf("  %-20s compiled analyze ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		runtime.GC()
		ri := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pi.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.GC()
		rc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pc.Exec(); err != nil {
					b.Fatal(err)
				}
			}
		})
		iNs, cNs := float64(ri.NsPerOp()), float64(rc.NsPerOp())
		speedup := 0.0
		if cNs > 0 {
			speedup = iNs / cNs
		}
		report.Queries = append(report.Queries, vectorResult{
			Name: tc.name, Query: tc.q,
			InterpretedNs: iNs, CompiledNs: cNs, Speedup: speedup,
			Rows:      int(resultRows(vi)),
			Operators: zipOperators(si, sc),
		})
		fmt.Printf("  %-20s interpreted %12.0f ns/op   compiled %12.0f ns/op   (%.2fx)\n",
			tc.name, iNs, cNs, speedup)
		if tc.name == "scan-filter-project" && speedup < 1.0 {
			fmt.Printf("  %-20s REGRESSION: compiled slower than interpreted on the headline query\n", tc.name)
			failed = true
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}

// zipOperators pairs the interpreted and compiled EXPLAIN ANALYZE trees
// operator-by-operator. Compilation never changes plan shape — the same
// skeleton is built either way — so a preorder walk of both trees
// aligns; if shapes ever diverge, the shorter prefix is reported.
func zipOperators(interp, comp *sqlpp.OpStats) []vectorOperator {
	fi := flattenStats(interp, nil)
	fc := flattenStats(comp, nil)
	n := len(fi)
	if len(fc) < n {
		n = len(fc)
	}
	out := make([]vectorOperator, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, vectorOperator{
			Op:            fi[i].Op,
			Label:         fi[i].Label,
			RowsOut:       fi[i].RowsOut,
			InterpretedNs: fi[i].TimeNS,
			CompiledNs:    fc[i].TimeNS,
		})
	}
	return out
}

func flattenStats(s *sqlpp.OpStats, out []*sqlpp.OpStats) []*sqlpp.OpStats {
	if s == nil {
		return out
	}
	out = append(out, s)
	for _, c := range s.Children {
		out = flattenStats(c, out)
	}
	return out
}
