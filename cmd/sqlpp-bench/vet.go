package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
)

// vetReport is the machine-readable artifact of -vet.
type vetReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Scale      int         `json:"scale"`
	Queries    []vetResult `json:"queries"`
}

type vetResult struct {
	Name string `json:"name"`
	// PrepareNs is compilation with Options.Vet off — the default path,
	// which must not pay for analysis it was not asked for.
	PrepareNs float64 `json:"prepare_ns_per_op"`
	// PrepareVetNs is compilation with Options.Vet on: parse, rewrite,
	// optimize, and the full semantic analysis (scope + abstract typing).
	PrepareVetNs float64 `json:"prepare_vet_ns_per_op"`
	// VetNs is the analysis cost itself (the difference).
	VetNs float64 `json:"vet_ns_per_op"`
	// Overhead is prepare-vet-ns / prepare-ns.
	Overhead    float64 `json:"overhead"`
	Diagnostics int     `json:"diagnostics"`
	// CachedNs is Diagnostics() on an already-analyzed query — the plan
	// cache hit path, which must be a copy, not a re-analysis.
	CachedNs float64 `json:"cached_diagnostics_ns_per_op"`
}

// runVetBench measures what static analysis costs and — just as
// important — what it costs when *not* requested: diagnostics are
// computed only under Options.Vet or an explicit Diagnostics() call, so
// the default Prepare path must be byte-for-byte the pre-analyzer one.
func runVetBench(scale int, outPath string) bool {
	fmt.Println("== Static analysis (sema) overhead ==")
	fmt.Println("(prepare = parse+rewrite+optimize; vet adds scope + abstract typing)")

	mk := func(vet bool) (*sqlpp.Engine, bool) {
		db := sqlpp.New(&sqlpp.Options{Vet: vet})
		if err := db.Register("emp", bench.FlatEmp(1000*scale, 20, 42)); err != nil {
			fmt.Println("ERROR:", err)
			return nil, false
		}
		if err := db.Register("dept", bench.Departments(20, 42)); err != nil {
			fmt.Println("ERROR:", err)
			return nil, false
		}
		// Infer schemas so the analyzer has maximum static knowledge —
		// the worst (most expensive) case for vetting.
		for _, name := range []string{"emp", "dept"} {
			if _, err := db.InferSchema(name); err != nil {
				fmt.Println("ERROR:", err)
				return nil, false
			}
		}
		return db, true
	}
	plain, ok := mk(false)
	if !ok {
		return true
	}
	vetted, ok := mk(true)
	if !ok {
		return true
	}

	queries := []struct{ name, q string }{
		{"scan-filter", `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100000`},
		{"hash-join", `SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`},
		{"group", `SELECT e.deptno AS dno, AVG(e.salary) AS a FROM emp AS e GROUP BY e.deptno`},
		{"nested", `SELECT VALUE {'n': e.name, 'peers': (FROM emp AS p WHERE p.deptno = e.deptno SELECT VALUE p.name)} FROM emp AS e WHERE e.salary > 200000`},
		// A deliberate typo ("e.id" does not exist in the inferred
		// schema): the analyzer must flag it, and the flagging must not
		// change the cost profile.
		{"typo", `SELECT e.name AS n FROM emp AS e WHERE e.id < 10`},
	}
	report := vetReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: scale}
	failed := false
	for _, tc := range queries {
		p, err := vetted.Prepare(tc.q)
		if err != nil {
			fmt.Printf("  %-12s ERROR %v\n", tc.name, err)
			failed = true
			continue
		}
		diags := p.Diagnostics()

		runtime.GC()
		prep := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plain.Prepare(tc.q); err != nil {
					b.Fatal(err)
				}
			}
		})
		runtime.GC()
		prepVet := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q, err := vetted.Prepare(tc.q)
				if err != nil {
					b.Fatal(err)
				}
				if q.Diagnostics() == nil && len(diags) > 0 {
					b.Fatal("diagnostics vanished")
				}
			}
		})
		runtime.GC()
		cached := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Diagnostics()
			}
		})
		pNs, vNs, cNs := float64(prep.NsPerOp()), float64(prepVet.NsPerOp()), float64(cached.NsPerOp())
		overhead := 0.0
		if pNs > 0 {
			overhead = vNs / pNs
		}
		report.Queries = append(report.Queries, vetResult{
			Name: tc.name, PrepareNs: pNs, PrepareVetNs: vNs, VetNs: vNs - pNs,
			Overhead: overhead, Diagnostics: len(diags), CachedNs: cNs,
		})
		fmt.Printf("  %-12s prepare %10.0f ns/op   +vet %10.0f ns/op   (%.2fx, %d finding(s), cached %4.0f ns)\n",
			tc.name, pNs, vNs, overhead, len(diags), cNs)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Println("ERROR encoding report:", err)
		return true
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Println("ERROR writing report:", err)
		return true
	}
	fmt.Printf("\nwrote %s\n\n", outPath)
	return failed
}
