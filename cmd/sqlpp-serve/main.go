// Command sqlpp-serve runs the SQL++ query service: an HTTP JSON API
// over an in-memory engine, with a prepared-plan cache, bounded
// concurrency, per-request deadlines, and plain-text metrics.
//
// Usage:
//
//	sqlpp-serve [flags]
//
// Flags:
//
//	-addr addr          listen address (default :8642)
//	-data name=path     preload a data file as a named collection (repeatable);
//	                    format inferred from the extension as in cmd/sqlpp
//	-compat             enable SQL compatibility mode
//	-strict             enable stop-on-error typing
//	-cache n            plan cache capacity (default 256; -1 disables)
//	-max-concurrent n   queries executing at once (default 4×GOMAXPROCS)
//	-timeout d          default per-query timeout (default 30s)
//	-max-timeout d      cap on client-requested timeouts (default 5m)
//	-no-opt             disable the physical optimizer (naive clause pipeline)
//	-no-compile         disable closure compilation (tree-walking interpreter)
//	-no-stats           disable statistics-driven cost-based planning
//	-parallel n         parallel-scan workers: 0 = GOMAXPROCS, 1 = sequential
//	-max-rows n         server-wide cap on per-query output rows (0 = unlimited)
//	-max-bytes n        server-wide cap on per-query materialized bytes (0 = unlimited)
//	-queue-wait d       max admission-queue wait before shedding with 429 (default 2s)
//	-drain d            graceful-shutdown drain window for in-flight queries (default 10s)
//	-pprof              expose net/http/pprof profiling under /debug/pprof/
//
// Coordinator mode (scatter-gather over a shard fleet):
//
//	-shards n           run a coordinator over n in-process shard engines
//	-shard-node url     add a remote sqlpp-serve data node (repeatable;
//	                    implies coordinator mode, combines with -shards)
//	-shard-coll spec    partitioning for a preloaded collection:
//	                    name=range or name=hash:keypath (repeatable);
//	                    unlisted collections shard by range, scalars broadcast
//	-on-failure mode    partial-failure policy: fail (default) or partial
//	-shard-attempts n   attempts per shard call (default 3)
//	-shard-backoff d    base retry backoff, doubling per retry (default 25ms)
//	-shard-hedge d      hedge a straggler shard call after d (default off)
//	-shard-breaker n    open a shard's circuit breaker after n consecutive
//	                    failures (default 5; -1 disables)
//	-shard-cooldown d   breaker cooldown before a half-open probe (default 1s)
//
// On SIGINT/SIGTERM the server flips /readyz to "draining", stops
// accepting new queries, and gives in-flight queries the -drain window
// to finish; a second signal exits immediately.
//
// Example session:
//
//	sqlpp-serve -addr :8642 &
//	curl -s -X POST localhost:8642/v1/collections/hr.emp --data-binary \
//	    "{{ {'name':'Ada','salary':120}, {'name':'Bob','salary':90} }}"
//	curl -s -X POST localhost:8642/v1/query \
//	    -d '{"query":"SELECT e.name FROM hr.emp AS e WHERE e.salary > 100"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sqlpp"
	"sqlpp/internal/server"
	"sqlpp/internal/shard"
	"sqlpp/internal/value"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sqlpp-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var data dataFlags
	addr := flag.String("addr", ":8642", "listen address")
	flag.Var(&data, "data", "name=path of a data file to preload (repeatable)")
	compat := flag.Bool("compat", false, "enable SQL compatibility mode")
	strict := flag.Bool("strict", false, "enable stop-on-error typing")
	cacheSize := flag.Int("cache", 256, "plan cache capacity (-1 disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries executing at once (0 = 4×GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts")
	noOpt := flag.Bool("no-opt", false, "disable the physical optimizer")
	noCompile := flag.Bool("no-compile", false, "disable closure compilation (evaluate through the interpreter)")
	noStats := flag.Bool("no-stats", false, "disable statistics-driven cost-based planning")
	parallel := flag.Int("parallel", 0, "parallel-scan workers (0 = GOMAXPROCS, 1 = sequential)")
	maxRows := flag.Int64("max-rows", 0, "server-wide cap on per-query output rows (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "server-wide cap on per-query materialized bytes (0 = unlimited)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max admission-queue wait before shedding with 429")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight queries")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	var shardNodes, shardColls dataFlags
	shards := flag.Int("shards", 0, "run a coordinator over n in-process shard engines")
	flag.Var(&shardNodes, "shard-node", "remote sqlpp-serve data node URL (repeatable)")
	flag.Var(&shardColls, "shard-coll", "partitioning spec name=range or name=hash:keypath (repeatable)")
	onFailure := flag.String("on-failure", "fail", "partial-failure policy: fail or partial")
	shardAttempts := flag.Int("shard-attempts", 3, "attempts per shard call")
	shardBackoff := flag.Duration("shard-backoff", 25*time.Millisecond, "base retry backoff, doubling per retry")
	shardHedge := flag.Duration("shard-hedge", 0, "hedge a straggler shard call after this delay (0 = off)")
	shardBreaker := flag.Int("shard-breaker", 5, "open a shard's breaker after n consecutive failures (-1 disables)")
	shardCooldown := flag.Duration("shard-cooldown", time.Second, "breaker cooldown before a half-open probe")
	flag.Parse()

	opts := sqlpp.Options{
		Compat:           *compat,
		StopOnError:      *strict,
		DisableOptimizer: *noOpt,
		NoCompile:        *noCompile,
		NoStats:          *noStats,
		Parallelism:      *parallel,
	}
	db := sqlpp.New(&opts)
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-data wants name=path, got %q", spec)
		}
		if err := loadFile(db, name, path); err != nil {
			return err
		}
	}

	var co *shard.Coordinator
	if *shards > 0 || len(shardNodes) > 0 {
		var err error
		co, err = buildCoordinator(db, opts, coordinatorConfig{
			shards:    *shards,
			nodes:     shardNodes,
			colls:     shardColls,
			onFailure: *onFailure,
			attempts:  *shardAttempts,
			backoff:   *shardBackoff,
			hedge:     *shardHedge,
			breaker:   *shardBreaker,
			cooldown:  *shardCooldown,
		})
		if err != nil {
			return err
		}
	}

	svc := server.New(db, server.Config{
		MaxConcurrent:        *maxConcurrent,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		PlanCacheSize:        *cacheSize,
		MaxQueueWait:         *queueWait,
		MaxOutputRows:        *maxRows,
		MaxMaterializedBytes: *maxBytes,
		Coordinator:          co,
	})
	var handler http.Handler = svc
	if *enablePprof {
		// Profiling rides on the service mux only when asked for: the
		// endpoints expose stacks and heap contents, so they are opt-in
		// and should stay off internet-facing deployments.
		mux := http.NewServeMux()
		mux.Handle("/", svc)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		if co != nil {
			fmt.Fprintf(os.Stderr, "sqlpp-serve: coordinator listening on %s (%d shards, %d collections preloaded)\n",
				*addr, len(co.Shards()), len(db.Names()))
		} else {
			fmt.Fprintf(os.Stderr, "sqlpp-serve: listening on %s (%d collections preloaded)\n", *addr, len(db.Names()))
		}
		errc <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "sqlpp-serve: %s, draining for up to %s\n", sig, *drain)
		// Flip readiness first so load balancers stop routing here and
		// new queries get a clean 503, then let the HTTP server drain
		// in-flight requests inside the window.
		svc.BeginShutdown()
		// Hold the listener open briefly before Shutdown closes it, so
		// readiness probes on fresh connections can observe the draining
		// 503 instead of a connection refusal.
		grace := *drain / 4
		if grace > time.Second {
			grace = time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done := make(chan error, 1)
		go func() {
			time.Sleep(grace)
			done <- httpSrv.Shutdown(ctx)
		}()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
		case sig := <-stop:
			// A second signal means "now": skip the drain.
			fmt.Fprintf(os.Stderr, "sqlpp-serve: %s again, exiting immediately\n", sig)
			os.Exit(130)
		}
	}
	return nil
}

// coordinatorConfig gathers the coordinator-mode flag values.
type coordinatorConfig struct {
	shards    int
	nodes     []string
	colls     []string
	onFailure string
	attempts  int
	backoff   time.Duration
	hedge     time.Duration
	breaker   int
	cooldown  time.Duration
}

// buildCoordinator assembles the shard fleet (in-process engines first,
// then remote data nodes), wraps it in the fault-tolerance policy, and
// distributes the preloaded catalog: collections partition per their
// -shard-coll spec (range by default), scalars broadcast.
func buildCoordinator(db *sqlpp.Engine, opts sqlpp.Options, cfg coordinatorConfig) (*shard.Coordinator, error) {
	mode, ok := shard.ParseFailMode(cfg.onFailure)
	if !ok {
		return nil, fmt.Errorf("-on-failure wants fail or partial, got %q", cfg.onFailure)
	}
	var execs []shard.Executor
	for i := 0; i < cfg.shards; i++ {
		execs = append(execs, shard.NewLocal(fmt.Sprintf("s%d", i), sqlpp.New(&opts)))
	}
	for i, u := range cfg.nodes {
		execs = append(execs, shard.NewHTTP(fmt.Sprintf("n%d", i), u, nil))
	}
	co := shard.NewCoordinator(db, shard.Policy{
		MaxAttempts:      cfg.attempts,
		BaseBackoff:      cfg.backoff,
		HedgeAfter:       cfg.hedge,
		BreakerThreshold: cfg.breaker,
		BreakerCooldown:  cfg.cooldown,
		OnFailure:        mode,
	}, execs...)

	specs := map[string]shard.Spec{}
	for _, sc := range cfg.colls {
		name, val, ok := strings.Cut(sc, "=")
		if !ok {
			return nil, fmt.Errorf("-shard-coll wants name=range or name=hash:keypath, got %q", sc)
		}
		kindStr, key, _ := strings.Cut(val, ":")
		kind, err := shard.ParseKind(kindStr)
		if err != nil {
			return nil, err
		}
		if kind == shard.Hash && key == "" {
			return nil, fmt.Errorf("-shard-coll %q: hash partitioning needs a key path", sc)
		}
		specs[name] = shard.Spec{Kind: kind, Key: key}
	}
	for _, name := range db.Names() {
		v, found := db.Lookup(name)
		if !found {
			continue
		}
		spec, listed := specs[name]
		if _, isColl := value.Elements(v); isColl || listed {
			if err := co.Distribute(name, v, spec); err != nil {
				return nil, fmt.Errorf("distribute %s: %w", name, err)
			}
		} else if err := co.Broadcast(name, v); err != nil {
			return nil, fmt.Errorf("broadcast %s: %w", name, err)
		}
	}
	return co, nil
}

// loadFile registers path under name, inferring the format from the
// extension (mirrors cmd/sqlpp).
func loadFile(db *sqlpp.Engine, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return db.RegisterJSON(name, f)
	case ".jsonl", ".ndjson":
		return db.RegisterJSONLines(name, f)
	case ".csv":
		return db.RegisterCSV(name, f)
	case ".cbor":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterCBOR(name, data)
	case ".sion", ".sqlpp", ".txt":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterSION(name, string(data))
	}
	return fmt.Errorf("unknown data format for %s (want .json, .jsonl, .csv, .cbor, or .sion)", path)
}
