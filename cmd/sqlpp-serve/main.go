// Command sqlpp-serve runs the SQL++ query service: an HTTP JSON API
// over an in-memory engine, with a prepared-plan cache, bounded
// concurrency, per-request deadlines, and plain-text metrics.
//
// Usage:
//
//	sqlpp-serve [flags]
//
// Flags:
//
//	-addr addr          listen address (default :8642)
//	-data name=path     preload a data file as a named collection (repeatable);
//	                    format inferred from the extension as in cmd/sqlpp
//	-compat             enable SQL compatibility mode
//	-strict             enable stop-on-error typing
//	-cache n            plan cache capacity (default 256; -1 disables)
//	-max-concurrent n   queries executing at once (default 4×GOMAXPROCS)
//	-timeout d          default per-query timeout (default 30s)
//	-max-timeout d      cap on client-requested timeouts (default 5m)
//	-no-opt             disable the physical optimizer (naive clause pipeline)
//	-no-compile         disable closure compilation (tree-walking interpreter)
//	-no-stats           disable statistics-driven cost-based planning
//	-parallel n         parallel-scan workers: 0 = GOMAXPROCS, 1 = sequential
//	-max-rows n         server-wide cap on per-query output rows (0 = unlimited)
//	-max-bytes n        server-wide cap on per-query materialized bytes (0 = unlimited)
//	-queue-wait d       max admission-queue wait before shedding with 429 (default 2s)
//	-drain d            graceful-shutdown drain window for in-flight queries (default 10s)
//	-pprof              expose net/http/pprof profiling under /debug/pprof/
//
// On SIGINT/SIGTERM the server flips /readyz to "draining", stops
// accepting new queries, and gives in-flight queries the -drain window
// to finish; a second signal exits immediately.
//
// Example session:
//
//	sqlpp-serve -addr :8642 &
//	curl -s -X POST localhost:8642/v1/collections/hr.emp --data-binary \
//	    "{{ {'name':'Ada','salary':120}, {'name':'Bob','salary':90} }}"
//	curl -s -X POST localhost:8642/v1/query \
//	    -d '{"query":"SELECT e.name FROM hr.emp AS e WHERE e.salary > 100"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sqlpp"
	"sqlpp/internal/server"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sqlpp-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var data dataFlags
	addr := flag.String("addr", ":8642", "listen address")
	flag.Var(&data, "data", "name=path of a data file to preload (repeatable)")
	compat := flag.Bool("compat", false, "enable SQL compatibility mode")
	strict := flag.Bool("strict", false, "enable stop-on-error typing")
	cacheSize := flag.Int("cache", 256, "plan cache capacity (-1 disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "queries executing at once (0 = 4×GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeouts")
	noOpt := flag.Bool("no-opt", false, "disable the physical optimizer")
	noCompile := flag.Bool("no-compile", false, "disable closure compilation (evaluate through the interpreter)")
	noStats := flag.Bool("no-stats", false, "disable statistics-driven cost-based planning")
	parallel := flag.Int("parallel", 0, "parallel-scan workers (0 = GOMAXPROCS, 1 = sequential)")
	maxRows := flag.Int64("max-rows", 0, "server-wide cap on per-query output rows (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 0, "server-wide cap on per-query materialized bytes (0 = unlimited)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max admission-queue wait before shedding with 429")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight queries")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	flag.Parse()

	db := sqlpp.New(&sqlpp.Options{
		Compat:           *compat,
		StopOnError:      *strict,
		DisableOptimizer: *noOpt,
		NoCompile:        *noCompile,
		NoStats:          *noStats,
		Parallelism:      *parallel,
	})
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-data wants name=path, got %q", spec)
		}
		if err := loadFile(db, name, path); err != nil {
			return err
		}
	}

	svc := server.New(db, server.Config{
		MaxConcurrent:        *maxConcurrent,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		PlanCacheSize:        *cacheSize,
		MaxQueueWait:         *queueWait,
		MaxOutputRows:        *maxRows,
		MaxMaterializedBytes: *maxBytes,
	})
	var handler http.Handler = svc
	if *enablePprof {
		// Profiling rides on the service mux only when asked for: the
		// endpoints expose stacks and heap contents, so they are opt-in
		// and should stay off internet-facing deployments.
		mux := http.NewServeMux()
		mux.Handle("/", svc)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sqlpp-serve: listening on %s (%d collections preloaded)\n", *addr, len(db.Names()))
		errc <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "sqlpp-serve: %s, draining for up to %s\n", sig, *drain)
		// Flip readiness first so load balancers stop routing here and
		// new queries get a clean 503, then let the HTTP server drain
		// in-flight requests inside the window.
		svc.BeginShutdown()
		// Hold the listener open briefly before Shutdown closes it, so
		// readiness probes on fresh connections can observe the draining
		// 503 instead of a connection refusal.
		grace := *drain / 4
		if grace > time.Second {
			grace = time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		done := make(chan error, 1)
		go func() {
			time.Sleep(grace)
			done <- httpSrv.Shutdown(ctx)
		}()
		select {
		case err := <-done:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
		case sig := <-stop:
			// A second signal means "now": skip the drain.
			fmt.Fprintf(os.Stderr, "sqlpp-serve: %s again, exiting immediately\n", sig)
			os.Exit(130)
		}
	}
	return nil
}

// loadFile registers path under name, inferring the format from the
// extension (mirrors cmd/sqlpp).
func loadFile(db *sqlpp.Engine, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return db.RegisterJSON(name, f)
	case ".jsonl", ".ndjson":
		return db.RegisterJSONLines(name, f)
	case ".csv":
		return db.RegisterCSV(name, f)
	case ".cbor":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterCBOR(name, data)
	case ".sion", ".sqlpp", ".txt":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterSION(name, string(data))
	}
	return fmt.Errorf("unknown data format for %s (want .json, .jsonl, .csv, .cbor, or .sion)", path)
}
