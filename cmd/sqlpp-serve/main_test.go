package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/server"
)

// TestServeEndToEnd wires the binary's pieces — preloaded data files,
// engine, service — behind a real TCP listener on an ephemeral port and
// walks the ingest → query → cached-query → metrics path over HTTP.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "emp.sion")
	if err := os.WriteFile(path, []byte(`{{
		{'name':'Ada','salary':120}, {'name':'Bob','salary':90}
	}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	db := sqlpp.New(nil)
	if err := loadFile(db, "hr.emp", path); err != nil {
		t.Fatal(err)
	}
	svc := server.New(db, server.Config{DefaultTimeout: 10 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	go httpSrv.Serve(ln)
	t.Cleanup(func() { httpSrv.Close() })
	base := "http://" + ln.Addr().String()

	// The preloaded collection is served.
	req := `{"query": "SELECT VALUE e.name FROM hr.emp AS e WHERE e.salary > 100"}`
	for i, wantCached := range []bool{false, true} {
		resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var reply struct {
			Result json.RawMessage `json:"result"`
			Cached bool            `json:"cached"`
		}
		if err := json.Unmarshal(body, &reply); err != nil {
			t.Fatal(err)
		}
		if reply.Cached != wantCached {
			t.Errorf("run %d: cached = %v, want %v", i, reply.Cached, wantCached)
		}
		var names []string
		if err := json.Unmarshal(reply.Result, &names); err != nil {
			t.Fatalf("run %d: result %s: %v", i, reply.Result, err)
		}
		if len(names) != 1 || names[0] != "Ada" {
			t.Errorf("run %d: result = %v", i, names)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "sqlpp_plan_cache_hits_total 1") {
		t.Errorf("metrics missing the cache hit:\n%s", metrics)
	}
}

// TestLoadFileFormats checks extension-based format inference.
func TestLoadFileFormats(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.json":  `[{"n":1}]`,
		"b.jsonl": `{"n":1}` + "\n" + `{"n":2}`,
		"c.csv":   "n\n1\n2\n",
		"d.sion":  `{{ {'n': 1} }}`,
	}
	db := sqlpp.New(nil)
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := loadFile(db, strings.TrimSuffix(name, filepath.Ext(name)), path); err != nil {
			t.Errorf("loadFile(%s): %v", name, err)
		}
	}
	if got := len(db.Names()); got != len(files) {
		t.Errorf("registered %d collections, want %d", got, len(files))
	}
	if err := loadFile(db, "x", filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.xml")
	os.WriteFile(bad, []byte("<x/>"), 0o644)
	if err := loadFile(db, "x", bad); err == nil {
		t.Error("unknown extension should error")
	}
}
