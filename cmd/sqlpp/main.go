// Command sqlpp is an interactive SQL++ shell and script runner.
//
// Usage:
//
//	sqlpp [flags] [query]
//
// Flags:
//
//	-data name=path   register a data file as a named value (repeatable);
//	                  the format is inferred from the extension:
//	                  .json, .jsonl/.ndjson, .csv, .cbor, .sion (object notation)
//	-ddl path         declare schemas from a DDL file (CREATE TABLE ...)
//	-f path           execute the query in the file and exit
//	-compat           enable SQL compatibility mode
//	-strict           enable stop-on-error typing
//	-timeout d        abort a query after d (e.g. 500ms, 10s); 0 = no limit
//	-max-rows n       abort a query once it has produced n output rows (0 = no limit)
//	-max-bytes n      abort a query once its materialized state (hash-join
//	                  builds, GROUP BY groups, ORDER BY buffers) exceeds n
//	                  bytes (0 = no limit)
//	-out format       output format: sion (default), json, pretty
//	-core             print the SQL++ Core rewriting instead of executing
//	-vet              static analysis: print the semantic analyzer's
//	                  diagnostics for the query (or for each .sqlpp file
//	                  given as an argument) instead of executing.
//	                  Schemas are inferred for -data values without a
//	                  -ddl declaration, so vetting is schema-aware out of
//	                  the box. Exit codes follow the repo's analyzer
//	                  convention (tools/analyzers uses the same one):
//	                  0 when every query is clean, 1 when any query has
//	                  an error-severity diagnostic, 2 when the analysis
//	                  itself could not run (unreadable file, schema
//	                  inference failure, bad usage) — so CI can tell
//	                  "the queries are wrong" from "the vet is broken".
//	-explain          execute with EXPLAIN ANALYZE: print the per-operator
//	                  stats tree (rows in/out, wall time, counters) after
//	                  the result
//	-no-opt           disable the physical optimizer (naive clause pipeline)
//	-no-compile       disable closure compilation (tree-walking interpreter)
//	-no-stats         disable statistics-driven cost-based planning
//	-parallel n       parallel-scan workers: 0 = GOMAXPROCS, 1 = sequential
//
// With no query and no -f, sqlpp starts a REPL. REPL commands:
//
//	\names            list registered named values
//	\schema <name>    show the declared or inferred schema of a value
//	\core <query>     show the SQL++ Core form of a query
//	\vet <query>      show the static analyzer's diagnostics for a query
//	\plan <query>     show the physical optimizations a query would use
//	\stats [c [path]] show the optimizer statistics for one or all collections
//	\index create <name> <collection> <path> [hash|ordered]
//	                  build a secondary index over a key path
//	\index drop <name>
//	\index list       list secondary indexes with key/slot statistics
//	\explain analyze <query>
//	                  execute the query and show the per-operator stats tree
//	\mode             show the current modes
//	\q                quit
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sqlpp"
	"sqlpp/internal/datafmt"
	"sqlpp/internal/types"
	"sqlpp/internal/value"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sqlpp:", err)
		os.Exit(exitCode(err))
	}
}

// exitError carries an explicit process exit code. -vet uses it to
// distinguish "the queries are wrong" (1) from "the analysis could not
// run" (2); everything else keeps the traditional exit 1.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

func exitCode(err error) int {
	var xe *exitError
	if errors.As(err, &xe) {
		return xe.code
	}
	return 1
}

func run() error {
	var data dataFlags
	flag.Var(&data, "data", "name=path of a data file to register (repeatable)")
	ddlPath := flag.String("ddl", "", "path to a DDL file of CREATE TABLE schema declarations")
	queryFile := flag.String("f", "", "path to a query file to execute")
	compat := flag.Bool("compat", false, "enable SQL compatibility mode")
	strict := flag.Bool("strict", false, "enable stop-on-error typing")
	timeout := flag.Duration("timeout", 0, "abort a query after this duration (0 = no limit)")
	maxRows := flag.Int64("max-rows", 0, "abort a query after this many output rows (0 = no limit)")
	maxBytes := flag.Int64("max-bytes", 0, "abort a query once materialized state exceeds this many bytes (0 = no limit)")
	outFormat := flag.String("out", "sion", "output format: sion, json, or pretty")
	showCore := flag.Bool("core", false, "print the SQL++ Core rewriting instead of executing")
	vet := flag.Bool("vet", false, "print static-analysis diagnostics instead of executing; exit 1 on error-severity diagnostics, 2 if the analysis itself fails")
	explain := flag.Bool("explain", false, "execute with EXPLAIN ANALYZE and print the per-operator stats tree")
	noOpt := flag.Bool("no-opt", false, "disable the physical optimizer")
	noCompile := flag.Bool("no-compile", false, "disable closure compilation (evaluate through the interpreter)")
	noStats := flag.Bool("no-stats", false, "disable statistics-driven cost-based planning")
	parallel := flag.Int("parallel", 0, "parallel-scan workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	db := sqlpp.New(&sqlpp.Options{
		Compat:           *compat,
		StopOnError:      *strict,
		DisableOptimizer: *noOpt,
		NoCompile:        *noCompile,
		NoStats:          *noStats,
		Parallelism:      *parallel,
		Limits: sqlpp.Limits{
			MaxOutputRows:        *maxRows,
			MaxMaterializedBytes: *maxBytes,
		},
	})
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-data wants name=path, got %q", spec)
		}
		if err := loadFile(db, name, path); err != nil {
			return err
		}
	}
	if *ddlPath != "" {
		src, err := os.ReadFile(*ddlPath)
		if err != nil {
			return err
		}
		for _, stmt := range splitStatements(string(src)) {
			if _, err := db.DeclareSchema(stmt); err != nil {
				return err
			}
		}
	}

	if *vet {
		return runVet(db, flag.Args(), *queryFile)
	}
	query := strings.Join(flag.Args(), " ")
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		query = string(src)
	}
	if strings.TrimSpace(query) != "" {
		return runOne(db, query, *outFormat, *showCore, *explain, *timeout)
	}
	return repl(db, *outFormat, *timeout)
}

// runVet is the batch static-analysis mode. Arguments that name files
// are vetted file by file (splitting on ';'); otherwise the arguments
// are one query. Compile failures (parse and resolution errors) are
// reported as error-severity findings rather than aborting the batch.
// Infrastructure failures — an unreadable file, a schema inference
// error, no input at all — exit 2 instead of 1: they mean the analysis
// never ran, not that the queries are wrong.
func runVet(db *sqlpp.Engine, args []string, queryFile string) error {
	internal := func(err error) error {
		if err == nil {
			return nil
		}
		return &exitError{code: 2, err: err}
	}
	// Vetting wants maximum static knowledge: infer a schema for every
	// registered value that has no declared one.
	for _, name := range db.Names() {
		if _, ok := db.SchemaOf(name); !ok {
			if _, err := db.InferSchema(name); err != nil {
				return internal(err)
			}
		}
	}

	type unit struct {
		label string
		query string
	}
	var units []unit
	addFile := func(path string) error {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, stmt := range splitStatements(string(src)) {
			units = append(units, unit{label: path, query: strings.TrimSuffix(stmt, ";")})
		}
		return nil
	}
	if queryFile != "" {
		if err := addFile(queryFile); err != nil {
			return internal(err)
		}
	}
	allFiles := len(args) > 0
	for _, a := range args {
		if _, err := os.Stat(a); err != nil {
			allFiles = false
			break
		}
	}
	switch {
	case allFiles:
		for _, a := range args {
			if err := addFile(a); err != nil {
				return internal(err)
			}
		}
	case len(args) > 0:
		units = append(units, unit{label: "<query>", query: strings.Join(args, " ")})
	}
	if len(units) == 0 {
		return internal(fmt.Errorf("-vet wants a query, -f file, or .sqlpp file arguments"))
	}

	errs := 0
	for _, u := range units {
		diags, err := vetQuery(db, u.query)
		if err != nil {
			fmt.Printf("%s: error: %v\n", u.label, err)
			errs++
			continue
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", u.label, d)
			if d.Severity == sqlpp.SevError {
				errs++
			}
		}
	}
	if errs > 0 {
		return &exitError{code: 1, err: fmt.Errorf("vet found %d error(s)", errs)}
	}
	return nil
}

// vetQuery compiles and analyzes one query, returning its diagnostics.
func vetQuery(db *sqlpp.Engine, query string) ([]sqlpp.Diagnostic, error) {
	p, err := db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return p.Diagnostics(), nil
}

// loadFile registers path under name, inferring the format from the
// extension.
func loadFile(db *sqlpp.Engine, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return db.RegisterJSON(name, f)
	case ".jsonl", ".ndjson":
		return db.RegisterJSONLines(name, f)
	case ".csv":
		return db.RegisterCSV(name, f)
	case ".cbor":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterCBOR(name, data)
	case ".sion", ".sqlpp", ".txt":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterSION(name, string(data))
	}
	return fmt.Errorf("unknown data format for %s (want .json, .jsonl, .csv, .cbor, or .sion)", path)
}

// splitStatements splits a script on ';' terminators, ignoring
// semicolons inside string literals, quoted identifiers, and comments.
// Pieces that hold only comments and whitespace are dropped.
func splitStatements(src string) []string {
	var out []string
	flush := func(part string) {
		if !onlyTrivia(part) {
			out = append(out, part+";")
		}
	}
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case ';':
			flush(src[start:i])
			start = i + 1
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			}
		case '/':
			if i+1 < len(src) && src[i+1] == '*' {
				i += 2
				for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
					i++
				}
				i++
			}
		case '\'', '"', '`':
			q := src[i]
			for i++; i < len(src) && src[i] != q; i++ {
			}
		}
	}
	if !onlyTrivia(src[start:]) {
		out = append(out, src[start:])
	}
	return out
}

// onlyTrivia reports whether the piece contains nothing but whitespace
// and comments.
func onlyTrivia(part string) bool {
	for i := 0; i < len(part); i++ {
		switch c := part[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
		case c == '-' && i+1 < len(part) && part[i+1] == '-':
			for i < len(part) && part[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(part) && part[i+1] == '*':
			i += 2
			for i+1 < len(part) && !(part[i] == '*' && part[i+1] == '/') {
				i++
			}
			i++
		default:
			return false
		}
	}
	return true
}

func runOne(db *sqlpp.Engine, query, outFormat string, showCore, explain bool, timeout time.Duration) error {
	if showCore {
		p, err := db.Prepare(query)
		if err != nil {
			return err
		}
		fmt.Println(p.Core())
		return nil
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if explain {
		p, err := db.Prepare(query)
		if err != nil {
			return err
		}
		v, stats, err := p.ExplainAnalyze(ctx)
		if err != nil {
			return err
		}
		if err := emit(v, outFormat); err != nil {
			return err
		}
		fmt.Println("-- explain analyze --")
		fmt.Print(stats.Render(false))
		return nil
	}
	v, err := db.QueryContext(ctx, query)
	if err != nil {
		return err
	}
	return emit(v, outFormat)
}

func emit(v value.Value, format string) error {
	switch format {
	case "json":
		s, err := datafmt.JSONString(v)
		if err != nil {
			return err
		}
		fmt.Println(s)
	case "pretty":
		fmt.Println(value.Pretty(v))
	default:
		fmt.Println(v.String())
	}
	return nil
}

func repl(db *sqlpp.Engine, outFormat string, timeout time.Duration) error {
	fmt.Println("sqlpp shell — SQL++ per Carey et al., ICDE 2024. \\q quits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "sqlpp> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := sc.Text()
		if pending.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), "\\") {
			if done := command(db, strings.TrimSpace(line), outFormat); done {
				return nil
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		text := pending.String()
		// Execute on ';' or on a blank line.
		if !strings.Contains(text, ";") && strings.TrimSpace(line) != "" {
			prompt = "   ... "
			continue
		}
		pending.Reset()
		prompt = "sqlpp> "
		q := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), ";"))
		if q == "" {
			continue
		}
		if err := runOne(db, q, outFormat, false, false, timeout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// command handles a backslash REPL command; it reports whether the REPL
// should exit.
func command(db *sqlpp.Engine, line, outFormat string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "\\q", "\\quit":
		return true
	case "\\names":
		for _, n := range db.Names() {
			fmt.Println(n)
		}
	case "\\schema":
		if rest == "" {
			fmt.Fprintln(os.Stderr, "usage: \\schema <name>")
			return false
		}
		if t, ok := db.SchemaOf(rest); ok {
			fmt.Println(t)
			return false
		}
		if v, ok := db.Lookup(rest); ok {
			fmt.Println(types.Infer(v), "(inferred)")
			return false
		}
		fmt.Fprintf(os.Stderr, "no named value %q\n", rest)
	case "\\core":
		if err := runOne(db, rest, outFormat, true, false, 0); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case "\\vet":
		if rest == "" {
			fmt.Fprintln(os.Stderr, "usage: \\vet <query>")
			return false
		}
		diags, err := vetQuery(db, rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		if len(diags) == 0 {
			fmt.Println("no findings")
			return false
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	case "\\explain":
		sub, q, _ := strings.Cut(rest, " ")
		if !strings.EqualFold(sub, "analyze") || strings.TrimSpace(q) == "" {
			fmt.Fprintln(os.Stderr, "usage: \\explain analyze <query>")
			return false
		}
		if err := runOne(db, strings.TrimSpace(q), outFormat, false, true, 0); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case "\\plan":
		p, err := db.Prepare(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		notes := p.PlanNotes()
		if len(notes) == 0 {
			fmt.Println("naive pipeline (no physical rewrites)")
			return false
		}
		for _, n := range notes {
			fmt.Println(n)
		}
	case "\\index":
		indexCommand(db, rest)
	case "\\stats":
		statsCommand(db, rest)
	case "\\mode":
		o := db.Options()
		fmt.Printf("compat=%v strict=%v optimizer=%v compile=%v stats=%v parallel=%d\n",
			o.Compat, o.StopOnError, !o.DisableOptimizer, !o.NoCompile, !o.NoStats, o.Parallelism)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s\n", cmd)
	}
	return false
}

// indexCommand handles the \index REPL subcommands.
func indexCommand(db *sqlpp.Engine, rest string) {
	args := strings.Fields(rest)
	usage := func() {
		fmt.Fprintln(os.Stderr, "usage: \\index create <name> <collection> <path> [hash|ordered] | \\index drop <name> | \\index list")
	}
	if len(args) == 0 {
		usage()
		return
	}
	switch args[0] {
	case "create":
		if len(args) < 4 || len(args) > 5 {
			usage()
			return
		}
		kind := ""
		if len(args) == 5 {
			kind = args[4]
		}
		if err := db.CreateIndex(args[1], args[2], args[3], kind); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Printf("index %s created\n", args[1])
	case "drop":
		if len(args) != 2 {
			usage()
			return
		}
		if !db.DropIndex(args[1]) {
			fmt.Fprintf(os.Stderr, "no index %q\n", args[1])
			return
		}
		fmt.Printf("index %s dropped\n", args[1])
	case "list":
		infos := db.Indexes()
		if len(infos) == 0 {
			fmt.Println("no indexes")
			return
		}
		for _, info := range infos {
			fmt.Printf("%s\t%s(%s)\t%s\tentries=%d keys=%d missing=%d null=%d\n",
				info.Name, info.Collection, info.Path, info.Kind,
				info.Entries, info.Keys, info.Missing, info.Null)
		}
	default:
		usage()
	}
}

// statsCommand prints the optimizer statistics for one collection (or
// one path within it), or a one-line summary per collection when no
// name is given.
func statsCommand(db *sqlpp.Engine, rest string) {
	args := strings.Fields(rest)
	if len(args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: \\stats [collection [path]]")
		return
	}
	coll, path := "", ""
	if len(args) > 0 {
		coll = args[0]
	}
	if len(args) > 1 {
		path = args[1]
	}
	all := db.Stats()
	if len(all) == 0 {
		fmt.Println("no statistics (only registered collections are profiled)")
		return
	}
	pathSeen := false
	for _, cs := range all {
		if coll != "" && cs.Collection != coll {
			continue
		}
		s := cs.Stats
		fmt.Printf("%s\trows=%d paths=%d", cs.Collection, s.Rows, len(s.Paths))
		if s.Truncated {
			fmt.Print(" (path set truncated)")
		}
		fmt.Println()
		if coll == "" {
			continue
		}
		for _, p := range s.Paths {
			if path != "" && p.Path != path {
				continue
			}
			pathSeen = true
			exact := "~"
			if p.NDVExact {
				exact = "="
			}
			fmt.Printf("  %s\tpresent=%d null=%d missing=%d ndv%s%.0f\n",
				p.Path, p.Present, p.Null, p.Missing, exact, p.NDV)
			for _, c := range p.Classes {
				fmt.Printf("    %s\trows=%d min=%s max=%s buckets=%d\n",
					c.Class, c.Rows, c.Min, c.Max, len(c.Histogram))
			}
		}
	}
	if coll != "" {
		for _, cs := range all {
			if cs.Collection == coll {
				if path != "" && !pathSeen {
					fmt.Fprintf(os.Stderr, "no statistics for path %q in %q\n", path, coll)
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "no statistics for %q\n", coll)
	}
}
