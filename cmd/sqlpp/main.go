// Command sqlpp is an interactive SQL++ shell and script runner.
//
// Usage:
//
//	sqlpp [flags] [query]
//
// Flags:
//
//	-data name=path   register a data file as a named value (repeatable);
//	                  the format is inferred from the extension:
//	                  .json, .jsonl/.ndjson, .csv, .cbor, .sion (object notation)
//	-ddl path         declare schemas from a DDL file (CREATE TABLE ...)
//	-f path           execute the query in the file and exit
//	-compat           enable SQL compatibility mode
//	-strict           enable stop-on-error typing
//	-timeout d        abort a query after d (e.g. 500ms, 10s); 0 = no limit
//	-max-rows n       abort a query once it has produced n output rows (0 = no limit)
//	-max-bytes n      abort a query once its materialized state (hash-join
//	                  builds, GROUP BY groups, ORDER BY buffers) exceeds n
//	                  bytes (0 = no limit)
//	-out format       output format: sion (default), json, pretty
//	-core             print the SQL++ Core rewriting instead of executing
//	-explain          execute with EXPLAIN ANALYZE: print the per-operator
//	                  stats tree (rows in/out, wall time, counters) after
//	                  the result
//	-no-opt           disable the physical optimizer (naive clause pipeline)
//	-parallel n       parallel-scan workers: 0 = GOMAXPROCS, 1 = sequential
//
// With no query and no -f, sqlpp starts a REPL. REPL commands:
//
//	\names            list registered named values
//	\schema <name>    show the declared or inferred schema of a value
//	\core <query>     show the SQL++ Core form of a query
//	\plan <query>     show the physical optimizations a query would use
//	\explain analyze <query>
//	                  execute the query and show the per-operator stats tree
//	\mode             show the current modes
//	\q                quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sqlpp"
	"sqlpp/internal/datafmt"
	"sqlpp/internal/types"
	"sqlpp/internal/value"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(s string) error {
	*d = append(*d, s)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sqlpp:", err)
		os.Exit(1)
	}
}

func run() error {
	var data dataFlags
	flag.Var(&data, "data", "name=path of a data file to register (repeatable)")
	ddlPath := flag.String("ddl", "", "path to a DDL file of CREATE TABLE schema declarations")
	queryFile := flag.String("f", "", "path to a query file to execute")
	compat := flag.Bool("compat", false, "enable SQL compatibility mode")
	strict := flag.Bool("strict", false, "enable stop-on-error typing")
	timeout := flag.Duration("timeout", 0, "abort a query after this duration (0 = no limit)")
	maxRows := flag.Int64("max-rows", 0, "abort a query after this many output rows (0 = no limit)")
	maxBytes := flag.Int64("max-bytes", 0, "abort a query once materialized state exceeds this many bytes (0 = no limit)")
	outFormat := flag.String("out", "sion", "output format: sion, json, or pretty")
	showCore := flag.Bool("core", false, "print the SQL++ Core rewriting instead of executing")
	explain := flag.Bool("explain", false, "execute with EXPLAIN ANALYZE and print the per-operator stats tree")
	noOpt := flag.Bool("no-opt", false, "disable the physical optimizer")
	parallel := flag.Int("parallel", 0, "parallel-scan workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	db := sqlpp.New(&sqlpp.Options{
		Compat:           *compat,
		StopOnError:      *strict,
		DisableOptimizer: *noOpt,
		Parallelism:      *parallel,
		Limits: sqlpp.Limits{
			MaxOutputRows:        *maxRows,
			MaxMaterializedBytes: *maxBytes,
		},
	})
	for _, spec := range data {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-data wants name=path, got %q", spec)
		}
		if err := loadFile(db, name, path); err != nil {
			return err
		}
	}
	if *ddlPath != "" {
		src, err := os.ReadFile(*ddlPath)
		if err != nil {
			return err
		}
		for _, stmt := range splitStatements(string(src)) {
			if _, err := db.DeclareSchema(stmt); err != nil {
				return err
			}
		}
	}

	query := strings.Join(flag.Args(), " ")
	if *queryFile != "" {
		src, err := os.ReadFile(*queryFile)
		if err != nil {
			return err
		}
		query = string(src)
	}
	if strings.TrimSpace(query) != "" {
		return runOne(db, query, *outFormat, *showCore, *explain, *timeout)
	}
	return repl(db, *outFormat, *timeout)
}

// loadFile registers path under name, inferring the format from the
// extension.
func loadFile(db *sqlpp.Engine, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return db.RegisterJSON(name, f)
	case ".jsonl", ".ndjson":
		return db.RegisterJSONLines(name, f)
	case ".csv":
		return db.RegisterCSV(name, f)
	case ".cbor":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterCBOR(name, data)
	case ".sion", ".sqlpp", ".txt":
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return db.RegisterSION(name, string(data))
	}
	return fmt.Errorf("unknown data format for %s (want .json, .jsonl, .csv, .cbor, or .sion)", path)
}

func splitStatements(src string) []string {
	var out []string
	for _, part := range strings.Split(src, ";") {
		if strings.TrimSpace(part) != "" {
			out = append(out, part+";")
		}
	}
	return out
}

func runOne(db *sqlpp.Engine, query, outFormat string, showCore, explain bool, timeout time.Duration) error {
	if showCore {
		p, err := db.Prepare(query)
		if err != nil {
			return err
		}
		fmt.Println(p.Core())
		return nil
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if explain {
		p, err := db.Prepare(query)
		if err != nil {
			return err
		}
		v, stats, err := p.ExplainAnalyze(ctx)
		if err != nil {
			return err
		}
		if err := emit(v, outFormat); err != nil {
			return err
		}
		fmt.Println("-- explain analyze --")
		fmt.Print(stats.Render(false))
		return nil
	}
	v, err := db.QueryContext(ctx, query)
	if err != nil {
		return err
	}
	return emit(v, outFormat)
}

func emit(v value.Value, format string) error {
	switch format {
	case "json":
		s, err := datafmt.JSONString(v)
		if err != nil {
			return err
		}
		fmt.Println(s)
	case "pretty":
		fmt.Println(value.Pretty(v))
	default:
		fmt.Println(v.String())
	}
	return nil
}

func repl(db *sqlpp.Engine, outFormat string, timeout time.Duration) error {
	fmt.Println("sqlpp shell — SQL++ per Carey et al., ICDE 2024. \\q quits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := "sqlpp> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := sc.Text()
		if pending.Len() == 0 && strings.HasPrefix(strings.TrimSpace(line), "\\") {
			if done := command(db, strings.TrimSpace(line), outFormat); done {
				return nil
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		text := pending.String()
		// Execute on ';' or on a blank line.
		if !strings.Contains(text, ";") && strings.TrimSpace(line) != "" {
			prompt = "   ... "
			continue
		}
		pending.Reset()
		prompt = "sqlpp> "
		q := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), ";"))
		if q == "" {
			continue
		}
		if err := runOne(db, q, outFormat, false, false, timeout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// command handles a backslash REPL command; it reports whether the REPL
// should exit.
func command(db *sqlpp.Engine, line, outFormat string) bool {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "\\q", "\\quit":
		return true
	case "\\names":
		for _, n := range db.Names() {
			fmt.Println(n)
		}
	case "\\schema":
		if rest == "" {
			fmt.Fprintln(os.Stderr, "usage: \\schema <name>")
			return false
		}
		if t, ok := db.SchemaOf(rest); ok {
			fmt.Println(t)
			return false
		}
		if v, ok := db.Lookup(rest); ok {
			fmt.Println(types.Infer(v), "(inferred)")
			return false
		}
		fmt.Fprintf(os.Stderr, "no named value %q\n", rest)
	case "\\core":
		if err := runOne(db, rest, outFormat, true, false, 0); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case "\\explain":
		sub, q, _ := strings.Cut(rest, " ")
		if !strings.EqualFold(sub, "analyze") || strings.TrimSpace(q) == "" {
			fmt.Fprintln(os.Stderr, "usage: \\explain analyze <query>")
			return false
		}
		if err := runOne(db, strings.TrimSpace(q), outFormat, false, true, 0); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	case "\\plan":
		p, err := db.Prepare(rest)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		notes := p.PlanNotes()
		if len(notes) == 0 {
			fmt.Println("naive pipeline (no physical rewrites)")
			return false
		}
		for _, n := range notes {
			fmt.Println(n)
		}
	case "\\mode":
		o := db.Options()
		fmt.Printf("compat=%v strict=%v optimizer=%v parallel=%d\n",
			o.Compat, o.StopOnError, !o.DisableOptimizer, o.Parallelism)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s\n", cmd)
	}
	return false
}
