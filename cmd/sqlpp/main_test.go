package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/value"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFileFormats(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.json":  `[{"x": 1}, {"x": 2}]`,
		"b.jsonl": "{\"x\": 1}\n{\"x\": 2}\n",
		"c.csv":   "x\n1\n2\n",
		"d.sion":  "{{ {'x': 1}, {'x': 2} }}",
	}
	db := sqlpp.New(nil)
	for name, content := range files {
		path := write(t, dir, name, content)
		key := strings.TrimSuffix(name, filepath.Ext(name))
		if err := loadFile(db, key, path); err != nil {
			t.Fatalf("loadFile(%s): %v", name, err)
		}
		v, err := db.Query("SELECT VALUE SUM(r.x) FROM " + key + " AS r")
		if err != nil {
			t.Fatal(err)
		}
		if v.String() != "{{3}}" {
			t.Errorf("%s: sum = %s", name, v)
		}
	}
	if err := loadFile(db, "bad", write(t, dir, "e.xyz", "")); err == nil {
		t.Error("unknown extension should fail")
	}
	if err := loadFile(db, "ghost", filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRepoTestdata(t *testing.T) {
	db := sqlpp.New(nil)
	for name, path := range map[string]string{
		"emp":         "../../testdata/emp.json",
		"prices":      "../../testdata/prices.csv",
		"emp_missing": "../../testdata/emp.sion",
	} {
		if err := loadFile(db, name, path); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	v, err := db.Query(`SELECT e.name AS n FROM emp AS e, e.projects AS p
	                    WHERE p.name LIKE '%Security%' GROUP BY e.name AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.String(), "Bob Smith") {
		t.Errorf("query over testdata = %s", v)
	}
}

func TestSplitStatements(t *testing.T) {
	stmts := splitStatements("CREATE TABLE a (x INT);\nCREATE TABLE b (y INT);\n")
	if len(stmts) != 2 {
		t.Fatalf("statements = %v", stmts)
	}
	if len(splitStatements("  \n ")) != 0 {
		t.Error("blank input should have no statements")
	}
}

func TestCommandDispatch(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("t", "{{1}}"); err != nil {
		t.Fatal(err)
	}
	if command(db, "\\q", "sion") != true {
		t.Error("\\q should quit")
	}
	for _, line := range []string{"\\names", "\\schema t", "\\schema ghost", "\\schema", "\\core SELECT VALUE 1", "\\mode", "\\bogus"} {
		if command(db, line, "sion") {
			t.Errorf("%q should not quit", line)
		}
	}
}

func TestRunOneOutputs(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("t", "{{ {'a': 1} }}"); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"sion", "json", "pretty"} {
		if err := runOne(db, "SELECT VALUE r.a FROM t AS r", format, false, false, 0); err != nil {
			t.Errorf("runOne(%s): %v", format, err)
		}
	}
	if err := runOne(db, "SELECT r.a FROM t AS r", "sion", true, false, 0); err != nil {
		t.Errorf("runOne core: %v", err)
	}
	if err := runOne(db, "SELEC nope", "sion", false, false, 0); err == nil {
		t.Error("bad query should error")
	}
	if err := runOne(db, "SELECT VALUE r.a FROM t AS r", "sion", false, true, 0); err != nil {
		t.Errorf("runOne explain: %v", err)
	}
}

// TestRunOneTimeout: the -timeout flag's path cancels a runaway cross
// join instead of letting it run to completion.
func TestRunOneTimeout(t *testing.T) {
	db := sqlpp.New(nil)
	big := make(value.Bag, 3000)
	for i := range big {
		big[i] = value.Int(int64(i))
	}
	if err := db.Register("big1", big); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("big2", big); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := runOne(db, "SELECT VALUE a + b FROM big1 AS a, big2 AS b WHERE a + b < 0", "sion", false, false, 50*time.Millisecond)
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}
