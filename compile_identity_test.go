package sqlpp_test

// Differential battery for the compiled-expression execution core:
// closure compilation (and the batched scans it enables) may only
// change how expressions are evaluated, never what they evaluate to.
// Every test here runs the same query with compilation on and off and
// requires byte-identical renderings (or identical errors) — alone,
// mixed with parallel scans, and mixed with secondary indexes.

import (
	"fmt"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/compat"
)

// compileEngines builds an interpreter-only engine and a compiled one
// over the same generated data. parallelism applies to both, so the
// compiled closures are also exercised inside parallel-scan workers.
func compileEngines(t *testing.T, seed int64, parallelism int) (interp, compiled *sqlpp.Engine) {
	t.Helper()
	interp = sqlpp.New(&sqlpp.Options{NoCompile: true, Parallelism: parallelism})
	compiled = sqlpp.New(&sqlpp.Options{Parallelism: parallelism})
	for _, db := range []*sqlpp.Engine{interp, compiled} {
		if err := db.Register("emp", bench.FlatEmp(1500, 40, seed)); err != nil {
			t.Fatal(err)
		}
		if err := db.Register("dept", bench.Departments(40, seed)); err != nil {
			t.Fatal(err)
		}
		if err := db.Register("hr", bench.HR(bench.HROptions{N: 200, ScalarProjects: true, Seed: seed})); err != nil {
			t.Fatal(err)
		}
	}
	return interp, compiled
}

// TestCompilationEquivalenceProperty: over several random datasets, the
// optimizer battery renders byte-identically with compilation on and
// off, sequentially and with parallel scans enabled.
func TestCompilationEquivalenceProperty(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		for seed := int64(0); seed < 3; seed++ {
			interp, compiled := compileEngines(t, seed, parallelism)
			for i, q := range optimizerBattery {
				want, err := interp.Query(q)
				if err != nil {
					t.Fatalf("p=%d seed %d query %d interpreted: %v", parallelism, seed, i, err)
				}
				got, err := compiled.Query(q)
				if err != nil {
					t.Fatalf("p=%d seed %d query %d compiled: %v", parallelism, seed, i, err)
				}
				if want.String() != got.String() {
					t.Errorf("p=%d seed %d: compilation changed query %d (%s):\n  interpreted %s\n  compiled    %s",
						parallelism, seed, i, q, want, got)
				}
			}
		}
	}
}

// TestCompilationEquivalenceWithIndexes: compiled index-probe keys
// (equality and range) and compiled verify filters return exactly what
// the interpreted probes return, with the same index complement
// declared on both engines.
func TestCompilationEquivalenceWithIndexes(t *testing.T) {
	interp, compiled := compileEngines(t, 7, 1)
	for _, db := range []*sqlpp.Engine{interp, compiled} {
		if err := db.CreateIndex("ix_sal", "emp", "salary", "ordered"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("ix_dept", "emp", "deptno", "hash"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("ix_dno", "dept", "dno", "hash"); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		`SELECT VALUE e.name FROM emp AS e WHERE e.salary = 120000`,
		`SELECT VALUE e.name FROM emp AS e WHERE e.salary >= 100000 AND e.salary < 140000 ORDER BY e.name`,
		`SELECT e.name AS n FROM emp AS e WHERE e.salary BETWEEN 90000 AND 110000 AND e.deptno = 3`,
		`SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno WHERE e.salary > 150000`,
	}
	for i, q := range queries {
		want, err := interp.Query(q)
		if err != nil {
			t.Fatalf("query %d interpreted: %v", i, err)
		}
		got, err := compiled.Query(q)
		if err != nil {
			t.Fatalf("query %d compiled: %v", i, err)
		}
		if want.String() != got.String() {
			t.Errorf("compilation changed indexed query %d (%s):\n  interpreted %s\n  compiled    %s",
				i, q, want, got)
		}
	}
}

// TestPaperListingsUnchangedByCompilation: every paper listing renders
// byte-identically with compilation on and off, in each mode the
// listing declares.
func TestPaperListingsUnchangedByCompilation(t *testing.T) {
	for _, c := range compat.PaperCases() {
		for _, compatMode := range []bool{false, true} {
			if c.Mode == compat.Core && compatMode {
				continue
			}
			if c.Mode == compat.Compat && !compatMode {
				continue
			}
			run := func(noCompile bool) (string, error) {
				db := sqlpp.New(&sqlpp.Options{
					Compat:      compatMode,
					StopOnError: c.Strict,
					NoCompile:   noCompile,
				})
				for name, src := range c.Data {
					if err := db.RegisterSION(name, src); err != nil {
						return "", fmt.Errorf("register %s: %w", name, err)
					}
				}
				v, err := db.Query(c.Query)
				if err != nil {
					return "", err
				}
				return v.String(), nil
			}
			interp, ierr := run(true)
			comp, cerr := run(false)
			if (ierr == nil) != (cerr == nil) {
				t.Errorf("%s (compat=%v): error behavior diverges: interpreted=%v compiled=%v",
					c.Name, compatMode, ierr, cerr)
				continue
			}
			if ierr != nil && ierr.Error() != cerr.Error() {
				t.Errorf("%s (compat=%v): error text diverges:\n  interpreted %v\n  compiled    %v",
					c.Name, compatMode, ierr, cerr)
				continue
			}
			if interp != comp {
				t.Errorf("%s (compat=%v): compilation changed the listing:\n  interpreted %s\n  compiled    %s",
					c.Name, compatMode, interp, comp)
			}
		}
	}
}
