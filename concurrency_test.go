package sqlpp_test

// Concurrency guarantees the query service relies on, all meaningful
// under -race:
//
//   - one cached Prepared may execute from many goroutines at once
//     (fresh eval.Context and Env per execution, immutable Core AST)
//   - catalog mutation may interleave with running queries (a query
//     observes the values registered when it resolves each name)
//   - cancellation and deadlines reach the plan row-production loops

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/value"
)

// TestPreparedConcurrentExec executes one shared compiled plan from 8
// goroutines and checks every result is the expected one — the
// soundness requirement for the server's plan cache.
func TestPreparedConcurrentExec(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("hr.emp", `{{
		{'name':'Ada','salary':120,'projects':['OLAP Security','Serverless Query']},
		{'name':'Bob','salary':90,'projects':['OLTP Security']},
		{'name':'Cyd','salary':150,'projects':[]}
	}}`); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare(`
		SELECT e.name AS name, pr AS project
		FROM hr.emp AS e, e.projects AS pr
		WHERE e.salary > 100 ORDER BY e.name, pr`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				got, err := p.Exec()
				if err != nil {
					errs <- err
					return
				}
				if !value.Equivalent(want, got) {
					errs <- fmt.Errorf("result diverged: got %s, want %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPreparedParamsConcurrentExec does the same for parameterized
// plans, with each goroutine supplying different parameter values.
func TestPreparedParamsConcurrentExec(t *testing.T) {
	db := sqlpp.New(nil)
	big := make(value.Bag, 100)
	for i := range big {
		t_ := value.EmptyTuple()
		t_.Put("n", value.Int(int64(i)))
		big[i] = t_
	}
	if err := db.Register("nums", big); err != nil {
		t.Fatal(err)
	}
	p, err := db.PrepareParams(`SELECT VALUE x.n FROM nums AS x WHERE x.n < $cap`, "$cap")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(cap int64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				got, err := p.Exec(map[string]value.Value{"$cap": value.Int(cap)})
				if err != nil {
					errs <- err
					return
				}
				els, ok := value.Elements(got)
				if !ok || int64(len(els)) != cap {
					errs <- fmt.Errorf("cap %d: got %d rows", cap, len(els))
					return
				}
			}
		}(int64(w * 10))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCatalogConcurrentMutation mixes Register/Drop/Query across
// goroutines: no panics, and every query result is either a well-formed
// answer or a clean resolution error.
func TestCatalogConcurrentMutation(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("stable", `{{ {'n': 1}, {'n': 2}, {'n': 3} }}`); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers churn transient names.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("churn_%d", id)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					if err := db.Register(name, value.Bag{value.Int(int64(i))}); err != nil {
						t.Error(err)
						return
					}
				} else {
					db.Drop(name)
				}
			}
		}(w)
	}

	// Readers query the stable collection and occasionally a churning
	// one; the latter may cleanly fail to resolve, never panic.
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				v, err := db.Query(`SELECT VALUE s.n FROM stable AS s WHERE s.n >= 2`)
				if err != nil {
					t.Errorf("stable query failed: %v", err)
					return
				}
				if els, ok := value.Elements(v); !ok || len(els) != 2 {
					t.Errorf("stable query returned %s", v)
					return
				}
				if i%10 == 0 {
					churn := fmt.Sprintf("churn_%d", id%3)
					if v, err := db.Query(`SELECT VALUE c FROM ` + churn + ` AS c`); err == nil {
						if _, ok := value.Elements(v); !ok {
							t.Errorf("churn query returned malformed %s", v)
							return
						}
					} else if !strings.Contains(err.Error(), "unresolved name") &&
						!strings.Contains(err.Error(), churn) {
						t.Errorf("unexpected churn error: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Let the readers finish, then stop the writers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: goroutines did not finish")
	}
}

// registerCross registers two n-element bags for cross-join blowups.
func registerCross(t testing.TB, db *sqlpp.Engine, n int) {
	t.Helper()
	big := make(value.Bag, n)
	for i := range big {
		big[i] = value.Int(int64(i))
	}
	if err := db.Register("big1", big); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("big2", big); err != nil {
		t.Fatal(err)
	}
}

const crossJoinQuery = `SELECT VALUE a + b FROM big1 AS a, big2 AS b WHERE a + b < 0`

// TestQueryContextDeadline: a deadline stops a multi-million-row cross
// join in the plan loops, promptly and with a wrapped context error.
func TestQueryContextDeadline(t *testing.T) {
	db := sqlpp.New(nil)
	registerCross(t, db, 3000)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.QueryContext(ctx, crossJoinQuery)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed >= time.Second {
		t.Errorf("cancellation took %s, want well under 1s", elapsed)
	}
}

// TestQueryContextCancel: explicit cancellation from another goroutine
// also stops execution.
func TestQueryContextCancel(t *testing.T) {
	db := sqlpp.New(nil)
	registerCross(t, db, 3000)
	p, err := db.Prepare(crossJoinQuery)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.ExecContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}

// TestQueryContextCompletes: an ample deadline changes nothing about
// the result.
func TestQueryContextCompletes(t *testing.T) {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("xs", `{{ 1, 2, 3 }}`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	v, err := db.QueryContext(ctx, `SELECT VALUE x * 2 FROM xs AS x ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	want := sqlpp.MustParseValue(`[2, 4, 6]`)
	if !value.Equivalent(want, v) {
		t.Errorf("got %s, want %s", v, want)
	}
}
