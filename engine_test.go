package sqlpp

import (
	"testing"

	"sqlpp/internal/value"
)

const empNestTuples = `{{
  {'id': 3, 'name': 'Bob Smith', 'title': null,
   'projects': [{'name': 'Serverless Query'},
                {'name': 'OLAP Security'},
                {'name': 'OLTP Security'}]},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
   'projects': [{'name': 'OLTP Security'}]}
}}`

func TestSmokeListing2(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("hr.emp_nest_tuples", empNestTuples); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(`
		SELECT e.name AS emp_name, p.name AS proj_name
		FROM hr.emp_nest_tuples AS e, e.projects AS p
		WHERE p.name LIKE '%Security%'`)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseValue(`{{
	  {'emp_name': 'Bob Smith', 'proj_name': 'OLAP Security'},
	  {'emp_name': 'Bob Smith', 'proj_name': 'OLTP Security'},
	  {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
	}}`)
	if !value.Equivalent(got, want) {
		t.Fatalf("got %s\nwant %s", value.Pretty(got), value.Pretty(want))
	}
}

func TestSmokeGroupAs(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("hr.emp_nest_scalars", `{{
	  {'id': 3, 'name': 'Bob Smith', 'title': null,
	   'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security']},
	  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
	  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
	   'projects': ['OLTP Security']}
	}}`); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(`
		FROM hr.emp_nest_scalars AS e, e.projects AS p
		WHERE p LIKE '%Security%'
		GROUP BY LOWER(p) AS p GROUP AS g
		SELECT p AS proj_name,
		       (FROM g AS v SELECT VALUE v.e.name) AS employees`)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseValue(`{{
	  {'proj_name': 'olap security', 'employees': {{'Bob Smith'}}},
	  {'proj_name': 'oltp security', 'employees': {{'Bob Smith', 'Jane Smith'}}}
	}}`)
	if !value.Equivalent(got, want) {
		t.Fatalf("got %s\nwant %s", value.Pretty(got), value.Pretty(want))
	}
}

func TestSmokeAggregates(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("hr.emp", `{{
	  {'name': 'a', 'deptno': 1, 'title': 'Engineer', 'salary': 100},
	  {'name': 'b', 'deptno': 1, 'title': 'Engineer', 'salary': 200},
	  {'name': 'c', 'deptno': 2, 'title': 'Engineer', 'salary': 400},
	  {'name': 'd', 'deptno': 2, 'title': 'Manager',  'salary': 900}
	}}`); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(`
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno`)
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseValue(`{{
	  {'deptno': 1, 'avgsal': 150.0},
	  {'deptno': 2, 'avgsal': 400.0}
	}}`)
	if !value.Equivalent(got, want) {
		t.Fatalf("got %s\nwant %s", value.Pretty(got), value.Pretty(want))
	}
}
