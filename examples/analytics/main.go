// The analytics scenario exercises the paper's compatibility claims for
// SQL's analytical features (§V-B): window functions over nested,
// unnested, and grouped data, WITH common table expressions, and the
// static checker that optional schemas enable.
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlpp"
	"sqlpp/internal/value"
)

const trades = `{{
  {'day': 1, 'symbol': 'amzn', 'fills': [{'qty': 10, 'px': 1900.0}, {'qty': 5, 'px': 1901.0}]},
  {'day': 1, 'symbol': 'goog', 'fills': [{'qty': 8, 'px': 1120.0}]},
  {'day': 2, 'symbol': 'amzn', 'fills': [{'qty': 2, 'px': 1902.5}]},
  {'day': 2, 'symbol': 'goog', 'fills': [{'qty': 4, 'px': 1119.0}, {'qty': 6, 'px': 1118.5}]},
  {'day': 3, 'symbol': 'amzn', 'fills': []},
  {'day': 3, 'symbol': 'goog', 'fills': [{'qty': 1, 'px': 1125.0}]}
}}`

func main() {
	db := sqlpp.New(nil)
	if err := db.RegisterSION("trades", trades); err != nil {
		log.Fatal(err)
	}

	// 1. WITH + unnesting: daily notional per symbol from nested fills.
	daily := `
		WITH notional AS (
		  SELECT t.day AS day, t.symbol AS symbol,
		         COALESCE(COLL_SUM(SELECT VALUE f.qty * f.px FROM t.fills AS f), 0) AS amount
		  FROM trades AS t)
		SELECT VALUE n FROM notional AS n ORDER BY n.symbol, n.day`
	show(db, "WITH + nested fills -> daily notional", daily)

	// 2. Window functions over the CTE: running totals and day-over-day
	// movement per symbol.
	show(db, "Running totals and LAG over partitions", `
		WITH notional AS (
		  SELECT t.day AS day, t.symbol AS symbol,
		         COALESCE(COLL_SUM(SELECT VALUE f.qty * f.px FROM t.fills AS f), 0) AS amount
		  FROM trades AS t)
		SELECT n.symbol AS symbol, n.day AS day, n.amount AS amount,
		       SUM(n.amount) OVER (PARTITION BY n.symbol ORDER BY n.day) AS running,
		       n.amount - LAG(n.amount, 1, 0) OVER (PARTITION BY n.symbol ORDER BY n.day) AS delta
		FROM notional AS n
		ORDER BY n.symbol, n.day`)

	// 3. Ranking across partitions, composed with grouping.
	show(db, "RANK over grouped totals", `
		SELECT symbol AS symbol, total AS total,
		       RANK() OVER (ORDER BY total DESC) AS r
		FROM (SELECT t.symbol AS symbol,
		             SUM((SELECT VALUE f.qty FROM t.fills AS f)[0]) AS first_fill_qty,
		             COALESCE(SUM(CARDINALITY(t.fills)), 0) AS total
		      FROM trades AS t GROUP BY t.symbol) AS g`)

	// 4. Optional schema + static checking: declare the shape, then let
	// the checker flag a typo'd attribute before running anything.
	if _, err := db.DeclareSchema(`CREATE TABLE trades (
	    day INT,
	    symbol STRING,
	    fills ARRAY<STRUCT<qty: INT, px: DOUBLE>>
	)`); err != nil {
		log.Fatal(err)
	}
	p, err := db.Prepare(`SELECT t.symbol, 2 * t.dya AS doubled FROM trades AS t`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- Static checker findings for a typo'd attribute (t.dya):")
	for _, problem := range p.Check() {
		fmt.Println("   warning:", problem)
	}
	fmt.Println()

	// 5. The same query still runs — findings are advisory, and the
	// permissive semantics keep the healthy attributes flowing.
	show(db, "The typo'd query still executes permissively", `
		SELECT t.symbol, 2 * t.dya AS doubled FROM trades AS t WHERE t.day = 1`)
}

func show(db *sqlpp.Engine, title, query string) {
	fmt.Println("--", title)
	v, err := db.Query(query)
	if err != nil {
		log.Fatalf("query failed: %v\nquery: %s", err, strings.Join(strings.Fields(query), " "))
	}
	fmt.Println("=>", value.Pretty(v))
	fmt.Println()
}
