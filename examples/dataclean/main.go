// The dataclean scenario shows Section IV in practice: querying
// heterogeneous, schema-optional sensor readings in permissive mode
// (healthy data flows, type errors become MISSING), failing fast in
// stop-on-error mode, declaring a union-typed schema for the
// heterogeneity (the paper's Listing 5 pattern), and checking query
// stability: imposing the schema does not change the query's result.
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlpp"
	"sqlpp/internal/value"
)

// readings mixes shapes the way real ingestion pipelines do: numeric
// temperatures, string temperatures from a misconfigured sensor, missing
// fields, and a nested batch reading.
const readings = `{{
  {'sensor': 'a', 'temp': 21.5},
  {'sensor': 'b', 'temp': '22.1'},
  {'sensor': 'c'},
  {'sensor': 'd', 'temp': null},
  {'sensor': 'e', 'temp': [20.9, 21.3]},
  {'sensor': 'f', 'temp': 23.0}
}}`

func main() {
	permissive := sqlpp.New(nil)
	if err := permissive.RegisterSION("readings", readings); err != nil {
		log.Fatal(err)
	}

	// 1. Permissive mode: the mistyped rows lose their derived
	// attribute; the healthy rows flow through (§IV).
	analyze := `
		SELECT r.sensor AS sensor, r.temp * 1.8 + 32 AS fahrenheit
		FROM readings AS r`
	fmt.Println("-- Permissive mode: type errors become MISSING, healthy data flows")
	show(permissive, analyze)

	// 2. Cleaning pass: use TYPE and CAST to normalize the mess, turning
	// string temperatures back into numbers and averaging batches.
	clean := `
		SELECT r.sensor AS sensor,
		       CASE TYPE(r.temp)
		         WHEN 'float'   THEN r.temp
		         WHEN 'integer' THEN r.temp
		         WHEN 'string'  THEN CAST(r.temp AS DOUBLE)
		         WHEN 'array'   THEN COLL_AVG(r.temp)
		         ELSE MISSING
		       END AS temp
		FROM readings AS r`
	fmt.Println("-- Cleaning pass: normalize heterogeneous temp values")
	show(permissive, clean)

	// 3. Stop-on-error mode: the same analysis query fails fast instead.
	strict := permissive.WithOptions(sqlpp.Options{StopOnError: true})
	fmt.Println("-- Stop-on-error mode: the same query fails fast")
	if _, err := strict.Query(analyze); err != nil {
		fmt.Println("=> error:", firstLine(err.Error()))
	} else {
		fmt.Println("=> unexpectedly succeeded")
	}
	fmt.Println()

	// 4. Declare the heterogeneity with a union type (Listing 5's
	// pattern) — the schema documents reality instead of rejecting it.
	ddl := `CREATE TABLE readings (
	          sensor STRING,
	          temp UNIONTYPE<DOUBLE, STRING, ARRAY<DOUBLE>, NULL>?
	        );`
	before, err := permissive.Query(clean)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := permissive.DeclareSchema(ddl); err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- Declared schema:", mustSchema(permissive, "readings"))

	// 5. Query stability (§I tenet): the cleaned result is identical
	// with the schema imposed.
	after, err := permissive.Query(clean)
	if err != nil {
		log.Fatal(err)
	}
	if value.Equivalent(before, after) {
		fmt.Println("-- Query stability holds: same result before and after imposing the schema")
	} else {
		log.Fatal("query stability violated!")
	}
}

func show(db *sqlpp.Engine, query string) {
	v, err := db.Query(query)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	fmt.Println("=>", value.Pretty(v))
	fmt.Println()
}

func mustSchema(db *sqlpp.Engine, name string) string {
	t, ok := db.SchemaOf(name)
	if !ok {
		log.Fatalf("no schema for %s", name)
	}
	return t.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
