// The HR scenario walks through Sections III–V of the paper end to end
// on one engine: nested tuples and scalars, NULL versus MISSING, result
// construction with SELECT VALUE, GROUP AS, and the SQL-to-Core
// aggregate rewriting (shown live via Prepared.Core).
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlpp"
	"sqlpp/internal/value"
)

func main() {
	db := sqlpp.New(nil)
	mustRegister(db, "hr.emp_nest_tuples", `{{
	  {'id': 3, 'name': 'Bob Smith', 'title': null,
	   'projects': [{'name': 'Serverless Query'},
	                {'name': 'OLAP Security'},
	                {'name': 'OLTP Security'}]},
	  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
	  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
	   'projects': [{'name': 'OLTP Security'}]}
	}}`)
	mustRegister(db, "hr.emp_nest_scalars", `{{
	  {'id': 3, 'name': 'Bob Smith', 'title': null,
	   'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security']},
	  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
	  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
	   'projects': ['OLAP Security']}
	}}`)
	mustRegister(db, "hr.emp_missing", `{{
	  {'id': 3, 'name': 'Bob Smith'},
	  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
	  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer'}
	}}`)
	mustRegister(db, "hr.emp", `{{
	  {'name': 'Alice', 'deptno': 1, 'title': 'Engineer', 'salary': 100000},
	  {'name': 'Bob',   'deptno': 1, 'title': 'Engineer', 'salary': 90000},
	  {'name': 'Clara', 'deptno': 2, 'title': 'Engineer', 'salary': 110000},
	  {'name': 'Dan',   'deptno': 2, 'title': 'Manager',  'salary': 150000}
	}}`)

	// §III: accessing nested data via left correlation (Listing 2).
	show(db, "Listing 2 — joining employees with their nested projects", `
		SELECT e.name AS emp_name, p.name AS proj_name
		FROM hr.emp_nest_tuples AS e, e.projects AS p
		WHERE p.name LIKE '%Security%'`)

	// §III-A: variables bind to scalars just as well (Listing 4).
	show(db, "Listing 4 — variables range over scalar arrays", `
		SELECT e.name AS emp_name, p AS proj_name
		FROM hr.emp_nest_scalars AS e, e.projects AS p
		WHERE p LIKE '%Security%'`)

	// §IV-B: MISSING flows through queries and vanishes from output
	// tuples (Listing 8/9).
	show(db, "Listing 8 — a missing title is filtered, not an error", `
		SELECT e.id, e.name AS emp_name, e.title AS title
		FROM hr.emp_missing AS e
		WHERE e.title = 'Manager'`)
	show(db, "Listing 9 — CASE over MISSING propagates MISSING", `
		SELECT e.id, e.name AS emp_name,
		       CASE WHEN e.title LIKE 'Chief %' THEN 'Executive'
		            ELSE 'Worker' END AS category
		FROM hr.emp_missing AS e`)

	// §V-A: nested results with SELECT VALUE (Listing 10).
	show(db, "Listing 10 — projecting a filtered nested collection", `
		SELECT e.id AS id, e.name AS emp_name, e.title AS emp_title,
		       (SELECT VALUE p FROM e.projects AS p
		        WHERE p LIKE '%Security%') AS security_proj
		FROM hr.emp_nest_scalars AS e`)

	// §V-B: GROUP AS inverts the hierarchy (Listing 12).
	show(db, "Listing 12 — inverting the hierarchy with GROUP AS", `
		FROM hr.emp_nest_scalars AS e, e.projects AS p
		WHERE p LIKE '%Security%'
		GROUP BY LOWER(p) AS p GROUP AS g
		SELECT p AS proj_name,
		       (FROM g AS v SELECT VALUE v.e.name) AS employees`)

	// §V-C: watch the SQL aggregate become a composable COLL_AVG.
	sql := `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno`
	p, err := db.Prepare(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- Listing 17 — and its SQL++ Core rewriting (Listing 18):")
	fmt.Println("   ", p.Core())
	v, err := p.Exec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=>", value.Pretty(v))
}

func mustRegister(db *sqlpp.Engine, name, src string) {
	if err := db.RegisterSION(name, src); err != nil {
		log.Fatal(err)
	}
}

func show(db *sqlpp.Engine, title, query string) {
	fmt.Println("--", title)
	fmt.Println("   ", strings.Join(strings.Fields(query), " "))
	v, err := db.Query(query)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	fmt.Println("=>", value.Pretty(v))
	fmt.Println()
}
