// Quickstart: load JSON documents, run SQL++ over them, and see how the
// same query handles flat and nested data without a schema.
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlpp"
	"sqlpp/internal/value"
)

const ordersJSON = `[
  {"id": 1, "customer": "Ada",
   "items": [{"sku": "chair", "qty": 2, "price": 120.0},
             {"sku": "desk",  "qty": 1, "price": 300.0}]},
  {"id": 2, "customer": "Linus",
   "items": [{"sku": "lamp", "qty": 3, "price": 40.0}]},
  {"id": 3, "customer": "Grace", "items": []}
]`

func main() {
	db := sqlpp.New(nil)
	if err := db.RegisterJSON("orders", strings.NewReader(ordersJSON)); err != nil {
		log.Fatal(err)
	}

	// 1. Plain SQL keeps working: SQL++ is a backward-compatible
	// extension.
	run(db, "Plain SQL over the top level", `
		SELECT o.id, o.customer
		FROM orders AS o
		WHERE o.id < 3`)

	// 2. Left correlation unnests the line items — the paper's key FROM
	// relaxation: a FROM item can range over an earlier variable's data.
	run(db, "Unnesting nested line items", `
		SELECT o.customer, i.sku, i.qty * i.price AS line_total
		FROM orders AS o, o.items AS i
		WHERE i.qty * i.price >= 100`)

	// 3. SELECT VALUE constructs results of any shape, here one nested
	// document per customer with a computed total.
	run(db, "Constructing nested results", `
		SELECT VALUE {
		  'customer': o.customer,
		  'total': COALESCE(COLL_SUM(SELECT VALUE i.qty * i.price
		                             FROM o.items AS i), 0),
		  'skus': (SELECT VALUE i.sku FROM o.items AS i)
		}
		FROM orders AS o`)

	// 4. Grouping with GROUP AS exposes the group itself, not just
	// aggregates of it.
	run(db, "GROUP AS: groups as first-class collections", `
		FROM orders AS o, o.items AS i
		GROUP BY i.sku AS sku GROUP AS g
		SELECT sku AS sku,
		       COLL_SUM(SELECT VALUE v.i.qty FROM g AS v) AS units,
		       (SELECT VALUE v.o.customer FROM g AS v) AS buyers`)
}

func run(db *sqlpp.Engine, title, query string) {
	fmt.Printf("-- %s\n%s\n", title, strings.TrimSpace(dedent(query)))
	v, err := db.Query(query)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	fmt.Println("=>", value.Pretty(v))
	fmt.Println()
}

func dedent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n  ")
}
