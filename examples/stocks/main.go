// The stocks scenario exercises Section VI: PIVOT and UNPIVOT turn
// attribute names into data and back, over data loaded from CSV — the
// same queries the paper writes over its object-notation listings run
// unchanged over a different format (format independence).
package main

import (
	"fmt"
	"log"
	"strings"

	"sqlpp"
	"sqlpp/internal/value"
)

const closingPricesCSV = `date,amzn,goog,fb
4/1/2019,1900,1120,180
4/2/2019,1902,1119,183
4/3/2019,1910,1125,179
`

const tallPricesCSV = `date,symbol,price
4/1/2019,amzn,1900
4/1/2019,goog,1120
4/1/2019,fb,180
4/2/2019,amzn,1902
4/2/2019,goog,1119
4/2/2019,fb,183
`

func main() {
	db := sqlpp.New(nil)
	if err := db.RegisterCSV("closing_prices", strings.NewReader(closingPricesCSV)); err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterCSV("stock_prices", strings.NewReader(tallPricesCSV)); err != nil {
		log.Fatal(err)
	}

	// Listing 20: UNPIVOT makes the ticker attribute names data.
	show(db, "UNPIVOT — wide rows become (date, symbol, price) triples", `
		SELECT c."date" AS "date", sym AS symbol, price AS price
		FROM closing_prices AS c, UNPIVOT c AS price AT sym
		WHERE NOT sym = 'date'`)

	// Listing 22: once unpivoted, ordinary grouping applies.
	show(db, "Average price per symbol over the unpivoted data", `
		SELECT sym AS symbol, AVG(price) AS avg_price
		FROM closing_prices c, UNPIVOT c AS price AT sym
		WHERE NOT sym = 'date'
		GROUP BY sym`)

	// Listing 24: PIVOT builds a tuple from a collection.
	show(db, "PIVOT — one day's rows become a single tuple", `
		PIVOT sp.price AT sp.symbol
		FROM stock_prices AS sp
		WHERE sp."date" = '4/1/2019'`)

	// Listing 26: grouping composed with pivoting: one price tuple per
	// date.
	show(db, "GROUP BY + nested PIVOT — a price tuple per date", `
		SELECT sp."date" AS "date",
		       (PIVOT dp.sp.price AT dp.sp.symbol
		        FROM dates_prices AS dp) AS prices
		FROM stock_prices AS sp
		GROUP BY sp."date" GROUP AS dates_prices`)

	// Round trip: unpivot the pivoted-by-date result back into triples
	// and check we recover the original rows.
	show(db, "Round trip — pivot then unpivot recovers the triples", `
		SELECT d."date" AS "date", sym AS symbol, price AS price
		FROM (SELECT sp."date" AS "date",
		             (PIVOT dp.sp.price AT dp.sp.symbol
		              FROM dates_prices AS dp) AS prices
		      FROM stock_prices AS sp
		      GROUP BY sp."date" GROUP AS dates_prices) AS d,
		     UNPIVOT d.prices AS price AT sym`)
}

func show(db *sqlpp.Engine, title, query string) {
	fmt.Println("--", title)
	v, err := db.Query(query)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	fmt.Println("=>", value.Pretty(v))
	fmt.Println()
}
