package sqlpp_test

// Golden tests for the cost-based planner's EXPLAIN surface: over
// pinned catalogs, the exact operator tree including join-order
// grouping, est_rows/est_build counters, and build-side choices. The
// misestimate case pins the contract that estimates are annotations,
// not promises: a skewed join whose actual cardinality dwarfs the
// NDV-uniform estimate still renders both numbers honestly.

import (
	"context"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/value"
)

// costGoldenEngine pins a three-relation catalog small enough that
// every per-path sketch stays exact (and therefore every estimate is
// deterministic by construction, not just by fixed hashing): l has 200
// unique keys, m has 100, s has 5.
func costGoldenEngine(t *testing.T) *sqlpp.Engine {
	t.Helper()
	db := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	for _, c := range []struct {
		name string
		n    int
		key  string
	}{{"l", 200, "x"}, {"m", 100, "y"}, {"s", 5, "j"}} {
		elems := make(value.Bag, 0, c.n)
		for i := 0; i < c.n; i++ {
			tup := value.EmptyTuple()
			tup.Put(c.key, value.Int(int64(i)))
			elems = append(elems, tup)
		}
		if err := db.Register(c.name, elems); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// skewEngine pins the misestimate catalog: both join keys are heavily
// skewed toward z=1 (half of L, half of R), so the NDV-uniform
// estimate |L|x|R|/max-NDV is off by two orders of magnitude against
// the actual join cardinality.
func skewEngine(t *testing.T) *sqlpp.Engine {
	t.Helper()
	db := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	mk := func(rows, hot, tail int) value.Bag {
		elems := make(value.Bag, 0, rows)
		for i := 0; i < hot; i++ {
			tup := value.EmptyTuple()
			tup.Put("z", value.Int(1))
			elems = append(elems, tup)
		}
		for i := 0; i < tail; i++ {
			tup := value.EmptyTuple()
			tup.Put("z", value.Int(int64(i+2)))
			elems = append(elems, tup)
		}
		return elems
	}
	if err := db.Register("L", mk(1000, 500, 500)); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("R", mk(100, 50, 50)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainCostGolden locks the exact instrumented tree of a
// reordered comma-join: the join-order node groups the reordered
// steps, scans carry est_rows, and the hash-join builds carry
// est_build beside the actual counters.
func TestExplainCostGolden(t *testing.T) {
	db := costGoldenEngine(t)
	cases := []struct {
		name  string
		query string
		want  string
	}{
		{
			name:  "reordered-comma-join",
			query: `SELECT VALUE {'x': l.x} FROM l AS l, m AS m, s AS s WHERE l.x = s.j AND m.y = s.j`,
			want: `query in=0 out=0
  select(1:1) in=0 out=5
    join-order(s,m,l) in=5 out=5
      scan(s) in=5 out=5 est_rows=5
      hash-join(inner) in=5 out=5 buckets=100 build_rows=100 candidates=5 est_build=100 verified=5
        scan(m) in=100 out=100
      hash-join(inner) in=5 out=5 buckets=200 build_rows=200 candidates=5 est_build=200 verified=5
        scan(l) in=200 out=200
`,
		},
		{
			name:  "build-side-explicit-join",
			query: `SELECT VALUE a.x FROM l AS a JOIN s AS b ON a.x = b.j`,
			want: `query in=0 out=0
  select(1:1) in=0 out=5
    hash-join(inner) in=200 out=5 buckets=5 build_rows=5 candidates=5 est_build=5 est_rows=5 verified=5
      scan(a) in=200 out=200
      scan(b) in=5 out=5
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := db.Prepare(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			_, st, err := p.ExplainAnalyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := st.Render(true); got != tc.want {
				t.Errorf("stats tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestExplainCostGoldenMisestimate: the skew catalog's join estimate
// (NDV-uniform) is ~200 rows while the actual output is 25050 —
// EXPLAIN ANALYZE must show both, and the misestimate must be at least
// two orders of magnitude so this golden keeps guarding a genuinely
// wrong estimate rather than a near miss.
func TestExplainCostGoldenMisestimate(t *testing.T) {
	db := skewEngine(t)
	p, err := db.Prepare(`SELECT VALUE {'z': a.z} FROM L AS a JOIN R AS b ON a.z = b.z`)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := p.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := st.Render(true)
	want := `query in=0 out=0
  select(1:1) in=0 out=25050
    hash-join(inner) in=1000 out=25050 buckets=51 build_rows=100 candidates=25050 est_build=100 est_rows=203 verified=25050
      scan(a) in=1000 out=1000
      scan(b) in=100 out=100
`
	if got != want {
		t.Errorf("stats tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !strings.Contains(got, "out=25050") {
		t.Errorf("actual join cardinality missing from tree:\n%s", got)
	}
}
