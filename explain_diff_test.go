package sqlpp_test

// Differential property tests for the EXPLAIN ANALYZE layer: collecting
// per-operator statistics must be observationally inert. Every execution
// strategy — optimized sequential, optimized parallel, and instrumented —
// must render byte-identically to the naive sequential pipeline.

import (
	"context"
	"fmt"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
	"sqlpp/internal/compat"
)

// TestInstrumentationInertProperty runs the optimizer battery over
// several random datasets on four strategies and requires identical
// rendering: naive, optimized sequential, optimized parallel, and
// optimized parallel under EXPLAIN ANALYZE. It also checks the stats
// tree itself is well formed (a rooted tree with at least one operator
// that saw rows).
func TestInstrumentationInertProperty(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		naive := sqlpp.New(&sqlpp.Options{DisableOptimizer: true, Parallelism: 1})
		optSeq := sqlpp.New(&sqlpp.Options{Parallelism: 1})
		optPar := sqlpp.New(&sqlpp.Options{Parallelism: 8})
		for _, db := range []*sqlpp.Engine{naive, optSeq, optPar} {
			if err := db.Register("emp", bench.FlatEmp(1500, 40, seed)); err != nil {
				t.Fatal(err)
			}
			if err := db.Register("dept", bench.Departments(40, seed)); err != nil {
				t.Fatal(err)
			}
			if err := db.Register("hr", bench.HR(bench.HROptions{N: 200, ScalarProjects: true, Seed: seed})); err != nil {
				t.Fatal(err)
			}
		}
		for i, q := range optimizerBattery {
			want, err := naive.Query(q)
			if err != nil {
				t.Fatalf("seed %d query %d naive: %v", seed, i, err)
			}
			for name, db := range map[string]*sqlpp.Engine{"opt-seq": optSeq, "opt-par": optPar} {
				got, err := db.Query(q)
				if err != nil {
					t.Fatalf("seed %d query %d %s: %v", seed, i, name, err)
				}
				if want.String() != got.String() {
					t.Errorf("seed %d query %d: %s diverges from naive:\n  naive %s\n  %s   %s",
						seed, i, name, want, name, got)
				}
				p, err := db.Prepare(q)
				if err != nil {
					t.Fatalf("seed %d query %d %s prepare: %v", seed, i, name, err)
				}
				inst, stats, err := p.ExplainAnalyze(context.Background())
				if err != nil {
					t.Fatalf("seed %d query %d %s instrumented: %v", seed, i, name, err)
				}
				if want.String() != inst.String() {
					t.Errorf("seed %d query %d: instrumentation changed the %s result:\n  plain        %s\n  instrumented %s",
						seed, i, name, want, inst)
				}
				if stats == nil {
					t.Fatalf("seed %d query %d %s: nil stats tree", seed, i, name)
				}
				var sawRows bool
				stats.Walk(func(s *sqlpp.OpStats) {
					if s.RowsIn > 0 || s.RowsOut > 0 {
						sawRows = true
					}
				})
				if !sawRows {
					t.Errorf("seed %d query %d %s: stats tree recorded no rows:\n%s",
						seed, i, name, stats.Render(true))
				}
			}
		}
	}
}

// TestPaperListingsUnchangedByInstrumentation: every paper listing
// renders byte-identically with and without EXPLAIN ANALYZE, in each
// mode the listing declares. Error behavior must agree too.
func TestPaperListingsUnchangedByInstrumentation(t *testing.T) {
	for _, c := range compat.PaperCases() {
		for _, compatMode := range []bool{false, true} {
			if c.Mode == compat.Core && compatMode {
				continue
			}
			if c.Mode == compat.Compat && !compatMode {
				continue
			}
			db := sqlpp.New(&sqlpp.Options{Compat: compatMode, StopOnError: c.Strict})
			for name, src := range c.Data {
				if err := db.RegisterSION(name, src); err != nil {
					t.Fatalf("%s: register %s: %v", c.Name, name, err)
				}
			}
			plain, perr := db.Query(c.Query)
			var inst fmt.Stringer
			var ierr error
			if p, err := db.Prepare(c.Query); err != nil {
				ierr = err
			} else {
				inst, _, ierr = p.ExplainAnalyze(context.Background())
			}
			if (perr == nil) != (ierr == nil) {
				t.Errorf("%s (compat=%v): error behavior diverges: plain=%v instrumented=%v",
					c.Name, compatMode, perr, ierr)
				continue
			}
			if perr != nil {
				continue
			}
			if plain.String() != inst.String() {
				t.Errorf("%s (compat=%v): instrumentation changed the listing:\n  plain        %s\n  instrumented %s",
					c.Name, compatMode, plain, inst)
			}
		}
	}
}
