package sqlpp_test

// Golden tests for the EXPLAIN ANALYZE stats tree: over a fixed catalog,
// each query must produce an exact operator tree — shape, labels, row
// in/out counts, and operator-specific counters. Wall times are redacted
// (Render(true)) since they vary run to run. These lock the observable
// contract of the instrumentation layer: a plan change that alters the
// tree must update the goldens deliberately.

import (
	"context"
	"testing"

	"sqlpp"
	"sqlpp/internal/bench"
)

func goldenEngine(t *testing.T) *sqlpp.Engine {
	t.Helper()
	db := sqlpp.New(&sqlpp.Options{Parallelism: 1})
	if err := db.RegisterSION("emp", `{{
		{'id': 1, 'name': 'Ada',  'deptno': 10, 'salary': 120, 'title': 'Engineer'},
		{'id': 2, 'name': 'Bob',  'deptno': 20, 'salary': 95,  'title': 'Engineer'},
		{'id': 3, 'name': 'Cyd',  'deptno': 10, 'salary': 140, 'title': 'Manager'},
		{'id': 4, 'name': 'Dee',  'deptno': 30, 'salary': 80},
		{'id': 5, 'name': 'Eve',  'deptno': 10, 'salary': 150, 'title': 'Manager'},
		{'id': 6, 'name': 'Fay',  'deptno': 20, 'salary': 110, 'title': 'Analyst'}
	}}`); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterSION("dept", `{{
		{'dno': 10, 'name': 'Eng',   'budget': 900},
		{'dno': 20, 'name': 'Sales', 'budget': 500},
		{'dno': 40, 'name': 'Ops',   'budget': 300}
	}}`); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterSION("hr", `{{
		{'name': 'Ada', 'projects': ['Security', 'Infra']},
		{'name': 'Bob', 'projects': ['Search']},
		{'name': 'Cyd', 'projects': ['Security Audit']}
	}}`); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainAnalyzeGolden checks the exact stats tree of representative
// sequential plans: pushdown filters, hash joins (inner and left with
// padding), grouping with HAVING, DISTINCT, Top-K with heap evictions,
// correlated unnesting, a correlated subquery (whose operators accumulate
// across outer rows), and a set operation.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := goldenEngine(t)
	cases := []struct {
		name  string
		query string
		want  string
	}{
		{
			name:  "pushdown-filter",
			query: `SELECT e.name AS n FROM emp AS e WHERE e.salary > 100`,
			want: `query in=0 out=0
  select(1:1) in=0 out=4
    scan(e) in=6 out=6 est_rows=6
      filter(pushed) in=6 out=4 est_rows=4
`,
		},
		{
			name:  "hash-join-inner",
			query: `SELECT e.name AS n, d.name AS dn FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`,
			want: `query in=0 out=0
  select(1:1) in=0 out=5
    hash-join(inner) in=6 out=5 buckets=3 build_rows=3 candidates=5 est_build=3 est_rows=6 verified=5
      scan(e) in=6 out=6
      scan(d) in=3 out=3
`,
		},
		{
			name:  "hash-join-left-pads",
			query: `SELECT e.name AS n, d.name AS dn FROM emp AS e LEFT JOIN dept AS d ON e.deptno = d.dno`,
			want: `query in=0 out=0
  select(1:1) in=0 out=6
    hash-join(left) in=6 out=6 buckets=3 build_rows=3 candidates=5 est_build=3 est_rows=6 left_pads=1 verified=5
      scan(e) in=6 out=6
      scan(d) in=3 out=3
`,
		},
		{
			name:  "group-having",
			query: `SELECT e.title AS title, COUNT(*) AS n FROM emp AS e GROUP BY e.title HAVING COUNT(*) > 1`,
			want: `query in=0 out=0
  select(1:1) in=0 out=2
    scan(e) in=6 out=6 est_rows=6
    group-by in=6 out=4
    filter(having) in=4 out=2
`,
		},
		{
			name:  "distinct",
			query: `SELECT DISTINCT e.deptno AS dno FROM emp AS e`,
			want: `query in=0 out=0
  select(1:1) in=0 out=3
    scan(e) in=6 out=6 est_rows=6
    distinct in=6 out=3
`,
		},
		{
			name:  "top-k",
			query: `SELECT VALUE e.name FROM emp AS e ORDER BY e.salary DESC LIMIT 3`,
			want: `query in=0 out=0
  select(1:1) in=0 out=3
    scan(e) in=6 out=6 est_rows=6
    top-k in=6 out=3 heap_evictions=1
    limit in=3 out=3
`,
		},
		{
			name:  "correlated-unnest",
			query: `SELECT h.name AS n, p AS proj FROM hr AS h, h.projects AS p WHERE p LIKE '%Security%'`,
			want: `query in=0 out=0
  select(1:1) in=0 out=2
    scan(h) in=3 out=3 est_rows=3
    scan(p) in=4 out=4
      filter(pushed) in=4 out=2
`,
		},
		{
			// The inner block's operators accumulate across the six outer
			// rows: scan(d) sees 3 departments per evaluation.
			name:  "correlated-subquery-accumulates",
			query: `SELECT e.name AS n FROM emp AS e WHERE e.deptno IN (SELECT VALUE d.dno FROM dept AS d WHERE d.budget > 400)`,
			want: `query in=0 out=0
  select(1:1) in=0 out=5
    scan(e) in=6 out=6 est_rows=6
      filter(pushed) in=6 out=5 est_rows=2
    select(1:53) in=0 out=2
      scan(d) in=18 out=18 est_rows=3
        filter(pushed) in=18 out=12 est_rows=2
`,
		},
		{
			name: "union-all",
			query: `SELECT VALUE e.name FROM emp AS e WHERE e.salary > 100
 UNION ALL SELECT VALUE d.name FROM dept AS d`,
			want: `query in=0 out=0
  set-op(UNION ALL) in=7 out=7
    select(1:1) in=0 out=4
      scan(e) in=6 out=6 est_rows=6
        filter(pushed) in=6 out=4 est_rows=4
    select(2:12) in=0 out=3
      scan(d) in=3 out=3 est_rows=3
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := db.Prepare(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			_, stats, err := p.ExplainAnalyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := stats.Render(true); got != tc.want {
				t.Errorf("stats tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestExplainAnalyzeGoldenParallel locks the parallel-scan shape: the
// workers of a chunked scan fold into one shared node, so the tree looks
// like the sequential one plus a chunks counter, and the row counts are
// globally correct (not per worker).
func TestExplainAnalyzeGoldenParallel(t *testing.T) {
	db := sqlpp.New(&sqlpp.Options{Parallelism: 4})
	if err := db.Register("emp", bench.FlatEmp(1500, 40, 7)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		query string
		want  string
	}{
		{
			name:  "parallel-filter",
			query: `SELECT e.name AS n FROM emp AS e WHERE e.salary > 150000`,
			want: `query in=0 out=0
  select(1:1) in=0 out=507
    scan(e) in=1500 out=1500 chunks=4 est_rows=1500
      filter(pushed) in=1500 out=507 est_rows=552
`,
		},
		{
			name:  "parallel-group-having",
			query: `SELECT e.deptno AS dno, COUNT(*) AS n FROM emp AS e GROUP BY e.deptno HAVING COUNT(*) > 40`,
			want: `query in=0 out=0
  select(1:1) in=0 out=15
    scan(e) in=1500 out=1500 chunks=4 est_rows=1500
    group-by in=1500 out=40
    filter(having) in=40 out=15
`,
		},
		{
			name:  "parallel-distinct",
			query: `SELECT DISTINCT e.title AS t FROM emp AS e`,
			want: `query in=0 out=0
  select(1:1) in=0 out=4
    scan(e) in=1500 out=1500 chunks=4 est_rows=1500
    distinct in=1500 out=4
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := db.Prepare(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			_, stats, err := p.ExplainAnalyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := stats.Render(true); got != tc.want {
				t.Errorf("stats tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}
