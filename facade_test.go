package sqlpp

import (
	"strings"
	"testing"

	"sqlpp/internal/types"
	"sqlpp/internal/value"
)

func TestEngineRegistration(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("a", "{{1}}"); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("ns.b", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "ns.b" {
		t.Errorf("Names = %v", names)
	}
	if v, ok := db.Lookup("ns.b"); !ok || v != value.Int(2) {
		t.Errorf("Lookup = %v, %v", v, ok)
	}
	db.Drop("a")
	if _, ok := db.Lookup("a"); ok {
		t.Error("Drop failed")
	}
	if err := db.RegisterSION("bad", "{{"); err == nil {
		t.Error("bad object notation should fail registration")
	}
}

func TestEngineFormatLoaders(t *testing.T) {
	db := New(nil)
	if err := db.RegisterJSON("j", strings.NewReader(`[{"a":1},{"a":2}]`)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterJSONLines("jl", strings.NewReader("{\"a\":1}\n{\"a\":2}\n")); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterCSV("c", strings.NewReader("a\n1\n2\n")); err != nil {
		t.Fatal(err)
	}
	// CBOR: [{"a":1},{"a":2}] as 0x82 a1 61 61 01 a1 61 61 02.
	cbor := []byte{0x82, 0xa1, 0x61, 'a', 0x01, 0xa1, 0x61, 'a', 0x02}
	if err := db.RegisterCBOR("cb", cbor); err != nil {
		t.Fatal(err)
	}
	sum := func(name string) value.Value {
		return db.MustQuery("SELECT VALUE SUM(r.a) FROM " + name + " AS r")
	}
	want := MustParseValue("{{3}}")
	for _, name := range []string{"j", "jl", "c", "cb"} {
		if got := sum(name); !value.Equivalent(got, want) {
			t.Errorf("sum over %s = %s, want %s", name, got, want)
		}
	}
}

func TestPreparedCore(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("t", "{{ {'a': 1} }}"); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare("SELECT r.a FROM t AS r")
	if err != nil {
		t.Fatal(err)
	}
	core := p.Core()
	if !strings.Contains(core, "SELECT VALUE {'a': r.a}") {
		t.Errorf("Core() = %s", core)
	}
	v, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(v, MustParseValue("{{ {'a': 1} }}")) {
		t.Errorf("Exec = %s", v)
	}
}

func TestWithOptionsSharesCatalog(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("t", "{{ {'x': 'bad'} }}"); err != nil {
		t.Fatal(err)
	}
	strict := db.WithOptions(Options{StopOnError: true})
	if _, err := strict.Query("SELECT VALUE 2 * r.x FROM t AS r"); err == nil {
		t.Error("strict view should fail on the shared data")
	}
	// The original engine is unaffected and permissive.
	if _, err := db.Query("SELECT VALUE 2 * r.x FROM t AS r"); err != nil {
		t.Errorf("permissive engine failed: %v", err)
	}
	if strict.Options().StopOnError == db.Options().StopOnError {
		t.Error("options should differ between views")
	}
}

func TestMustQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuery should panic on error")
		}
	}()
	New(nil).MustQuery("SELECT VALUE nowhere")
}

func TestSchemaDeclarationAndValidation(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("t", "{{ {'a': 1} }}"); err != nil {
		t.Fatal(err)
	}
	name, err := db.DeclareSchema("CREATE TABLE t (a INT)")
	if err != nil || name != "t" {
		t.Fatalf("DeclareSchema = %q, %v", name, err)
	}
	if _, ok := db.SchemaOf("t"); !ok {
		t.Error("SchemaOf should find the declaration")
	}
	// Declaring a schema the current data violates reports it.
	if _, err := db.DeclareSchema("CREATE TABLE t (a STRING)"); err == nil {
		t.Error("conflicting schema should be reported")
	}
	// RegisterChecked validates.
	if err := db.RegisterChecked("u", MustParseValue("{{ {'b': 1} }}")); err != nil {
		t.Fatalf("undeclared name passes: %v", err)
	}
	if _, err := db.DeclareSchema("CREATE TABLE u (b INT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterChecked("u", MustParseValue("{{ {'b': 'x'} }}")); err == nil {
		t.Error("RegisterChecked should reject non-conforming data")
	}
	// DeclareType directly.
	if err := db.DeclareType("v", types.IntType); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterChecked("v", value.Int(3)); err != nil {
		t.Errorf("conforming scalar rejected: %v", err)
	}
}

func TestPreparedStaticCheck(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("t", "{{ {'a': 1} }}"); err != nil {
		t.Fatal(err)
	}
	// No schema: nothing to find.
	p, err := db.Prepare("SELECT 2 * r.nope AS x FROM t AS r")
	if err != nil {
		t.Fatal(err)
	}
	if problems := p.Check(); len(problems) != 0 {
		t.Errorf("schemaless check should be silent, got %v", problems)
	}
	// With a closed schema the impossible navigation is flagged, and the
	// query still runs (findings are advisory).
	if _, err := db.DeclareSchema("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	p2, err := db.Prepare("SELECT 2 * r.nope AS x FROM t AS r")
	if err != nil {
		t.Fatal(err)
	}
	problems := p2.Check()
	if len(problems) == 0 {
		t.Fatal("closed schema should flag the impossible attribute")
	}
	if !strings.Contains(problems[0].String(), "nope") {
		t.Errorf("finding should name the attribute: %v", problems[0])
	}
	if _, err := p2.Exec(); err != nil {
		t.Errorf("advisory findings must not block execution: %v", err)
	}
}

func TestInferSchemaUnknownName(t *testing.T) {
	if _, err := New(nil).InferSchema("ghost"); err == nil {
		t.Error("InferSchema of an unknown name should fail")
	}
}

func TestMaxCollectionSizeOption(t *testing.T) {
	db := New(&Options{MaxCollectionSize: 5})
	if err := db.RegisterSION("t", "{{1,2,3,4,5,6,7}}"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT VALUE x FROM t AS x"); err == nil {
		t.Error("size guard should trip")
	}
	if _, err := db.Query("SELECT VALUE x FROM t AS x LIMIT 3"); err != nil {
		t.Errorf("limit under the guard should pass: %v", err)
	}
}

func TestQueryErrorsSurface(t *testing.T) {
	db := New(nil)
	cases := []string{
		"SELEC 1",                        // parse error
		"SELECT VALUE ghost",             // unresolved name
		"SELECT VALUE NO_FN(1)",          // unknown function
		"SELECT VALUE x FROM ghost AS x", // unknown named value
	}
	for _, q := range cases {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := New(nil)
	if err := db.RegisterSION("t", "{{ {'a': 1}, {'a': 2}, {'a': 3} }}"); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare("SELECT VALUE SUM(r.a) FROM t AS r")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				v, err := p.Exec()
				if err != nil {
					done <- err
					return
				}
				if !value.Equivalent(v, MustParseValue("{{6}}")) {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
