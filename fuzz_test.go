package sqlpp_test

import (
	"context"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/compat"
)

// FuzzEvalPermissive drives the whole engine end to end: parse arbitrary
// input and, when it parses, execute it in permissive mode against a
// small fixed catalog. The engine must never panic — type mismatches
// become MISSING/NULL per the paper's permissive semantics, and anything
// else surfaces as an error value.
//
// MaxCollectionSize bounds materialized intermediates and the deadline
// bounds wall time, so fuzz-invented cross joins fail fast instead of
// stalling the fuzz loop.
func FuzzEvalPermissive(f *testing.F) {
	for _, c := range compat.Suite() {
		f.Add(c.Query)
	}
	f.Add(`SELECT VALUE t FROM t AS t WHERE t.a + 'x' > 0`)
	f.Add(`SELECT COUNT(*) AS n FROM t AS x GROUP BY x.a HAVING COUNT(*) > 0`)
	f.Add(`SELECT VALUE v FROM t AS x, UNPIVOT x AS v AT n ORDER BY v LIMIT 3`)

	db := sqlpp.New(&sqlpp.Options{MaxCollectionSize: 4096})
	if err := db.RegisterSION("t", `{{ {'a': 1, 'b': 'one'}, {'a': 2}, {'a': null, 'b': 3.5}, 7, 'str', [1, 2] }}`); err != nil {
		f.Fatal(err)
	}
	if err := db.RegisterSION("u", `[ {'k': 'x', 'v': 1}, {'k': 'y', 'v': 2} ]`); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, src string) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, _ = db.QueryContext(ctx, src) // errors fine; panics are not
	})
}
