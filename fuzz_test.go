package sqlpp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sqlpp"
	"sqlpp/internal/compat"
)

// FuzzEvalPermissive drives the whole engine end to end: parse arbitrary
// input and, when it parses, execute it in permissive mode against a
// small fixed catalog — once on the default compiled engine and once on
// the interpreter-only engine. Neither may panic, and the two must
// agree: same rendering when both succeed, and never a success on one
// side paired with a real failure on the other (deadline expiry is
// timing, not semantics, and is exempt).
//
// MaxCollectionSize bounds materialized intermediates and the deadline
// bounds wall time, so fuzz-invented cross joins fail fast instead of
// stalling the fuzz loop.
func FuzzEvalPermissive(f *testing.F) {
	for _, c := range compat.Suite() {
		f.Add(c.Query)
	}
	f.Add(`SELECT VALUE t FROM t AS t WHERE t.a + 'x' > 0`)
	f.Add(`SELECT COUNT(*) AS n FROM t AS x GROUP BY x.a HAVING COUNT(*) > 0`)
	f.Add(`SELECT VALUE v FROM t AS x, UNPIVOT x AS v AT n ORDER BY v LIMIT 3`)
	// Compiled-fallback boundaries: forms the compiler specializes
	// (LIKE/BETWEEN/IN/CASE/constructors) mixed with forms it lowers to
	// the interpreter (subqueries, WITH), absent inputs, and malformed
	// patterns — the seams where the two paths could drift.
	f.Add(`SELECT VALUE x.a FROM t AS x WHERE x.b LIKE 'o%' AND x.a BETWEEN 1 AND 2`)
	f.Add(`SELECT VALUE x.b FROM t AS x WHERE x.b LIKE 'o!' ESCAPE '!'`)
	f.Add(`WITH w AS (SELECT VALUE x.a FROM t AS x) SELECT VALUE v FROM w AS v WHERE v IN [1, null, 3]`)
	f.Add(`SELECT CASE WHEN x.a > 1 THEN {'hi': [x.a, missing]} ELSE {{x.b}} END AS c FROM t AS x`)
	f.Add(`SELECT VALUE x.a FROM t AS x WHERE x.a = ANY (SELECT VALUE u.v FROM u AS u)`)

	db := sqlpp.New(&sqlpp.Options{MaxCollectionSize: 4096})
	interp := sqlpp.New(&sqlpp.Options{MaxCollectionSize: 4096, NoCompile: true})
	for _, e := range []*sqlpp.Engine{db, interp} {
		if err := e.RegisterSION("t", `{{ {'a': 1, 'b': 'one'}, {'a': 2}, {'a': null, 'b': 3.5}, 7, 'str', [1, 2] }}`); err != nil {
			f.Fatal(err)
		}
		if err := e.RegisterSION("u", `[ {'k': 'x', 'v': 1}, {'k': 'y', 'v': 2} ]`); err != nil {
			f.Fatal(err)
		}
	}

	f.Fuzz(func(t *testing.T, src string) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		cv, cerr := db.QueryContext(ctx, src) // errors fine; panics are not
		iv, ierr := interp.QueryContext(ctx, src)
		timedOut := errors.Is(cerr, context.DeadlineExceeded) || errors.Is(ierr, context.DeadlineExceeded)
		if timedOut {
			return
		}
		if (cerr == nil) != (ierr == nil) {
			t.Fatalf("compiled/interpreted error divergence on %q:\n  compiled    err=%v\n  interpreted err=%v",
				src, cerr, ierr)
		}
		if cerr == nil && cv.String() != iv.String() {
			t.Fatalf("compiled/interpreted result divergence on %q:\n  compiled    %s\n  interpreted %s",
				src, cv, iv)
		}
	})
}
