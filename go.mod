module sqlpp

go 1.22
