package sqlpp

// The resource-governance and fault-tolerance layer, exercised through
// the public facade: typed ResourceErrors per budget kind, panic
// containment at the Exec boundary, result-identity under generous
// budgets (including every paper listing), and the nil-governor
// fast-path overhead benchmark.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sqlpp/internal/compat"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// govEngine builds an engine over n {'id', 'k'} rows with the given
// limits.
func govEngine(t testing.TB, n int, lim Limits) *Engine {
	t.Helper()
	db := New(&Options{Limits: lim, Parallelism: 1})
	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'id': %d, 'k': %d}", i, i%53)
	}
	sb.WriteString("}}")
	if err := db.RegisterSION("rows", sb.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

func wantResource(t *testing.T, err error, kind eval.ResourceKind) *ResourceError {
	t.Helper()
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want ResourceError(%s), got %v", kind, err)
	}
	if re.Kind != kind {
		t.Fatalf("want kind %s, got %s (site %s)", kind, re.Kind, re.Site)
	}
	return re
}

func TestGovernorOutputRows(t *testing.T) {
	db := govEngine(t, 1000, Limits{MaxOutputRows: 10})
	_, err := db.Query(`SELECT r.id AS id FROM rows AS r`)
	re := wantResource(t, err, ResourceRows)
	if re.Limit != 10 {
		t.Errorf("limit %d", re.Limit)
	}
	// Under the budget the same engine still works.
	v, err := db.Query(`SELECT r.id AS id FROM rows AS r LIMIT 5`)
	if err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if els, _ := value.Elements(v); len(els) != 5 {
		t.Errorf("want 5 rows, got %d", len(els))
	}
}

func TestGovernorMaterializedValues(t *testing.T) {
	db := govEngine(t, 1000, Limits{MaxMaterializedValues: 50})
	_, err := db.Query(`SELECT r.k AS k, COUNT(*) AS n FROM rows AS r GROUP BY r.k`)
	wantResource(t, err, ResourceValues)
}

func TestGovernorMaterializedBytes(t *testing.T) {
	db := govEngine(t, 1000, Limits{MaxMaterializedBytes: 2048})
	_, err := db.Query(`SELECT r.k AS k, COUNT(*) AS n FROM rows AS r GROUP BY r.k`)
	wantResource(t, err, ResourceBytes)
}

func TestGovernorDepth(t *testing.T) {
	db := govEngine(t, 100, Limits{MaxDepth: 1})
	_, err := db.Query(`SELECT r.id AS id, (SELECT VALUE x.k FROM rows AS x WHERE x.id = r.id) AS ks FROM rows AS r`)
	wantResource(t, err, ResourceDepth)

	// Depth restores after each block: sibling blocks at the same level
	// must not accumulate.
	db2 := govEngine(t, 100, Limits{MaxDepth: 2})
	if _, err := db2.Query(`SELECT r.id AS id, (SELECT VALUE x.k FROM rows AS x WHERE x.id = r.id) AS ks FROM rows AS r LIMIT 3`); err != nil {
		t.Fatalf("depth 2 must admit one level of nesting: %v", err)
	}
}

func TestGovernorWallTime(t *testing.T) {
	db := govEngine(t, 2000, Limits{MaxWallTime: time.Millisecond})
	start := time.Now()
	_, err := db.Query(`SELECT COUNT(*) AS n FROM rows AS a, rows AS b, rows AS c WHERE a.k = b.k AND b.k = c.k`)
	wantResource(t, err, ResourceTime)
	if e := time.Since(start); e > 5*time.Second {
		t.Errorf("wall budget honoured too slowly: %v", e)
	}
}

// TestGovernorErrorThroughHTTPShape: the typed error survives errors.As
// through the library surface (what the server's handler relies on).
func TestGovernorErrorTyped(t *testing.T) {
	db := govEngine(t, 100, Limits{MaxOutputRows: 3})
	p, err := db.Prepare(`SELECT r.id AS id FROM rows AS r`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.ExecContext(context.Background())
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("ResourceError lost through Prepared.ExecContext: %v", err)
	}
}

// TestPanicContainedAtExec: a panicking builtin must become a
// *PanicError on the panicking query only; the engine keeps serving.
func TestPanicContainedAtExec(t *testing.T) {
	db := govEngine(t, 100, Limits{})
	db.funcs.Register("ALWAYS_PANICS", 0, 0, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		panic("builtin bug")
	})
	_, err := db.Query(`SELECT VALUE ALWAYS_PANICS() FROM rows AS r`)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if !strings.Contains(err.Error(), "builtin bug") {
		t.Errorf("panic value lost: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("stack trace not captured")
	}
	// The engine survives and the next query is unaffected.
	if _, err := db.Query(`SELECT VALUE COUNT(*) FROM rows AS r`); err != nil {
		t.Fatalf("engine broken after contained panic: %v", err)
	}
}

// TestPanicContainedInParams: the parameterized path shares the barrier.
func TestPanicContainedInParams(t *testing.T) {
	db := govEngine(t, 10, Limits{})
	db.funcs.Register("PANICS_TOO", 0, 0, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		panic("params bug")
	})
	p, err := db.PrepareParams(`SELECT VALUE PANICS_TOO() FROM rows AS r WHERE r.id < $n`, "$n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Exec(map[string]value.Value{"$n": value.Int(3)})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError via PreparedParams, got %v", err)
	}
}

// generousLimits never trip on test-sized data but keep every charge
// site live.
var generousLimits = Limits{
	MaxOutputRows:         1 << 40,
	MaxMaterializedValues: 1 << 40,
	MaxMaterializedBytes:  1 << 50,
	MaxDepth:              1 << 20,
	MaxWallTime:           time.Hour,
}

// TestPaperListingsUnderGovernor: all 28 paper listings produce
// byte-identical results with the governor charging generous budgets —
// governance observes, it never changes semantics.
func TestPaperListingsUnderGovernor(t *testing.T) {
	for _, c := range compat.PaperCases() {
		for _, compatFlag := range []bool{false, true} {
			switch c.Mode {
			case compat.Core:
				if compatFlag {
					continue
				}
			case compat.Compat:
				if !compatFlag {
					continue
				}
			}
			run := func(lim Limits) (value.Value, error) {
				db := New(&Options{Compat: compatFlag, StopOnError: c.Strict, Limits: lim})
				for name, src := range c.Data {
					if err := db.RegisterSION(name, src); err != nil {
						t.Fatal(err)
					}
				}
				return db.Query(c.Query)
			}
			plain, errPlain := run(Limits{})
			gov, errGov := run(generousLimits)
			if (errPlain == nil) != (errGov == nil) {
				t.Errorf("%s(compat=%v): error parity broken: plain=%v governed=%v",
					c.Name, compatFlag, errPlain, errGov)
				continue
			}
			if errPlain != nil {
				continue
			}
			if plain.String() != gov.String() {
				t.Errorf("%s(compat=%v): governed result diverges:\n  plain    %s\n  governed %s",
					c.Name, compatFlag, plain, gov)
			}
		}
	}
}

// BenchmarkGovernorOverhead compares ungoverned execution (nil
// governor: one pointer test per charge site) against execution under
// generous budgets. The ungoverned number is the regression guard — it
// must stay at the seed's level.
func BenchmarkGovernorOverhead(b *testing.B) {
	const n = 20000
	q := `SELECT r.k AS k, COUNT(*) AS c FROM rows AS r GROUP BY r.k`
	b.Run("ungoverned", func(b *testing.B) {
		db := govEngine(b, n, Limits{})
		p, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("governed", func(b *testing.B) {
		db := govEngine(b, n, generousLimits)
		p, err := db.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
