package sqlpp_test

// Differential battery for the secondary-index subsystem: under the
// paper's permissive semantics, an index may only change how rows are
// found, never which rows are found. Every test here runs the same
// query with and without indexes and requires byte-identical renderings
// (or identical errors) — including the MISSING/NULL/mixed-type key
// populations where a naive index would silently diverge.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/compat"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// randValue produces a heterogeneous key: ints and floats that collide
// under grouping equality, short strings, bools, NULL, or no value at
// all (MISSING).
func randKey(rng *rand.Rand) (value.Value, bool) {
	switch rng.Intn(8) {
	case 0:
		return value.Int(int64(rng.Intn(12))), true
	case 1:
		return value.Float(float64(rng.Intn(12))), true
	case 2:
		return value.Float(float64(rng.Intn(12)) + 0.5), true
	case 3:
		return value.String(string(rune('a' + rng.Intn(8)))), true
	case 4:
		return value.Bool(rng.Intn(2) == 0), true
	case 5:
		return value.Null, true
	case 6: // nested tuple key — indexable only through a deeper path
		t := value.EmptyTuple()
		t.Put("z", value.Int(int64(rng.Intn(5))))
		return t, true
	default:
		return nil, false // attribute absent → MISSING
	}
}

// randPredicate builds a WHERE clause over path (either "k" or the
// nested "n.z") with a random shape: equality, a one-sided or
// two-sided range, or BETWEEN.
func randPredicate(rng *rand.Rand, path string) string {
	lit := func() string {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(12))
		case 1:
			return fmt.Sprintf("%d.5", rng.Intn(12))
		case 2:
			return fmt.Sprintf("'%c'", 'a'+rune(rng.Intn(8)))
		default:
			return "null"
		}
	}
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("e.%s = %s", path, lit())
	case 1:
		return fmt.Sprintf("e.%s >= %s", path, lit())
	case 2:
		return fmt.Sprintf("e.%s < %s", path, lit())
	case 3:
		return fmt.Sprintf("e.%s >= %s AND e.%s < %s", path, lit(), path, lit())
	default:
		return fmt.Sprintf("e.%s BETWEEN %s AND %s", path, lit(), lit())
	}
}

// TestIndexedScanIdentityProperty: randomized collections × randomized
// predicates, evaluated with and without a full complement of indexes.
// The rendering (canonical form, order included) must match exactly.
func TestIndexedScanIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 200; trial++ {
		n := 20 + rng.Intn(60)
		elems := make([]value.Value, 0, n)
		for i := 0; i < n; i++ {
			tup := value.EmptyTuple()
			tup.Put("pos", value.Int(int64(i)))
			if k, ok := randKey(rng); ok {
				tup.Put("k", k)
			}
			if rng.Intn(3) == 0 {
				nested := value.EmptyTuple()
				nested.Put("z", value.Int(int64(rng.Intn(6))))
				tup.Put("n", nested)
			}
			elems = append(elems, tup)
		}
		var src value.Value
		if rng.Intn(2) == 0 {
			src = value.Bag(elems)
		} else {
			src = value.Array(elems)
		}

		plain := sqlpp.New(&sqlpp.Options{Parallelism: 1})
		indexed := sqlpp.New(&sqlpp.Options{Parallelism: 1})
		if err := plain.Register("emp", src); err != nil {
			t.Fatal(err)
		}
		if err := indexed.Register("emp", src); err != nil {
			t.Fatal(err)
		}
		for i, spec := range [][2]string{{"k", "hash"}, {"k", "ordered"}, {"n.z", "hash"}, {"n.z", "ordered"}} {
			if err := indexed.CreateIndex(fmt.Sprintf("ix%d", i), "emp", spec[0], spec[1]); err != nil {
				t.Fatal(err)
			}
		}

		path := "k"
		if rng.Intn(3) == 0 {
			path = "n.z"
		}
		query := fmt.Sprintf("SELECT VALUE e.pos FROM emp AS e WHERE %s", randPredicate(rng, path))
		pv, perr := plain.Query(query)
		iv, ierr := indexed.Query(query)
		if (perr == nil) != (ierr == nil) {
			t.Fatalf("trial %d: error divergence on %q: %v vs %v", trial, query, perr, ierr)
		}
		if perr != nil {
			continue
		}
		if pv.String() != iv.String() {
			t.Fatalf("trial %d: divergence on %q over %s:\n  scan  %s\n  index %s",
				trial, query, src, pv, iv)
		}
	}
}

// topLevelPaths lists the attribute names of a collection's first
// tuple element — the paths the paper-listing invariance test indexes.
func topLevelPaths(src string) []string {
	v, err := sion.Parse(src)
	if err != nil {
		return nil
	}
	els, ok := value.Elements(v)
	if !ok || len(els) == 0 {
		return nil
	}
	tup, ok := els[0].(*value.Tuple)
	if !ok {
		return nil
	}
	var out []string
	for _, f := range tup.Fields() {
		out = append(out, f.Name)
	}
	return out
}

// TestPaperListingsUnchangedByIndexes re-runs every paper listing with
// hash and ordered indexes declared on every top-level attribute of
// every input collection. The paper's query-stability tenet extends to
// physical design: declaring indexes must never change (or break) a
// working query.
func TestPaperListingsUnchangedByIndexes(t *testing.T) {
	for _, c := range compat.PaperCases() {
		for _, compatMode := range []bool{false, true} {
			if (c.Mode == compat.Core && compatMode) || (c.Mode == compat.Compat && !compatMode) {
				continue
			}
			name := fmt.Sprintf("%s/compat=%v", c.Name, compatMode)
			t.Run(name, func(t *testing.T) {
				opts := &sqlpp.Options{Compat: compatMode, StopOnError: c.Strict, Parallelism: 1}
				plain := sqlpp.New(opts)
				indexed := sqlpp.New(opts)
				for dn, srcText := range c.Data {
					if err := plain.RegisterSION(dn, srcText); err != nil {
						t.Fatal(err)
					}
					if err := indexed.RegisterSION(dn, srcText); err != nil {
						t.Fatal(err)
					}
				}
				i := 0
				for dn, srcText := range c.Data {
					for _, p := range topLevelPaths(srcText) {
						for _, kind := range []string{"hash", "ordered"} {
							if err := indexed.CreateIndex(fmt.Sprintf("ix%d", i), dn, p, kind); err != nil {
								t.Fatalf("CreateIndex %s.%s (%s): %v", dn, p, kind, err)
							}
							i++
						}
					}
				}
				if i == 0 {
					t.Skip("no indexable collection attributes")
				}

				pv, perr := plain.Query(c.Query)
				iv, ierr := indexed.Query(c.Query)
				if (perr == nil) != (ierr == nil) {
					t.Fatalf("error divergence: %v vs %v", perr, ierr)
				}
				if perr != nil {
					if c.ExpectError {
						return // both fail, as the listing expects
					}
					t.Fatalf("listing failed in both engines: %v", perr)
				}
				if pv.String() != iv.String() {
					t.Fatalf("listing result changed by indexes:\n  plain   %s\n  indexed %s", pv, iv)
				}
				if c.Expect != "" && !c.ExpectError {
					want := sion.MustParse(c.Expect)
					if !value.Equivalent(want, iv) {
						t.Fatalf("indexed result diverges from the paper:\n  got  %s\n  want %s", iv, want)
					}
				}
			})
		}
	}
}

// TestIndexedIdentityUnderParallelScans: with Parallelism > 1 the
// un-indexed engine runs partitioned scans while the indexed engine
// probes sequentially; results must still be identical because bags
// render canonically.
func TestIndexedIdentityUnderParallelScans(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'id': %d, 'grp': %d}", i, i%7)
	}
	sb.WriteString("}}")

	plain := sqlpp.New(&sqlpp.Options{Parallelism: 4})
	indexed := sqlpp.New(&sqlpp.Options{Parallelism: 4})
	if err := plain.RegisterSION("rows", sb.String()); err != nil {
		t.Fatal(err)
	}
	if err := indexed.RegisterSION("rows", sb.String()); err != nil {
		t.Fatal(err)
	}
	if err := indexed.CreateIndex("ix", "rows", "id", "ordered"); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT VALUE r.grp FROM rows AS r WHERE r.id = 4321`,
		`SELECT VALUE r.id FROM rows AS r WHERE r.id >= 100 AND r.id < 180`,
		`SELECT r.grp AS g, COUNT(*) AS n FROM rows AS r WHERE r.id < 700 GROUP BY r.grp`,
	} {
		pv, perr := plain.Query(q)
		iv, ierr := indexed.Query(q)
		if perr != nil || ierr != nil {
			t.Fatalf("%q: %v / %v", q, perr, ierr)
		}
		if pv.String() != iv.String() {
			t.Fatalf("%q diverges:\n  plain   %s\n  indexed %s", q, pv, iv)
		}
	}
}
