// Package ast declares the abstract syntax tree for SQL++ queries.
//
// SQL++ is fully composable: a query block (select-from-where) is itself
// an expression, so every query form implements Expr and subqueries can
// appear anywhere an expression can. The parser produces this tree; the
// rewrite package lowers SQL "syntactic sugar" onto SQL++ Core forms; the
// plan package compiles the Core tree to an executable clause pipeline.
package ast

import (
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// Node is any syntax-tree node.
type Node interface {
	// Pos returns the source position where the node begins.
	Pos() lexer.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// position embeds a source position into nodes.
type position struct {
	P lexer.Pos
}

// Pos returns the node's source position.
func (p position) Pos() lexer.Pos { return p.P }

// SetPos records the node's source position; used by the parser and by
// rewrites that synthesize nodes.
func (p *position) SetPos(pos lexer.Pos) { p.P = pos }

// Literal is a constant value: a number, string, boolean, NULL, or
// MISSING.
type Literal struct {
	position
	Val value.Value
}

// VarRef is a bare identifier: a query variable, or the head of a
// namespaced name such as hr in hr.emp.
type VarRef struct {
	position
	Name string
}

// NamedRef is a reference to a catalog named value, produced by the
// resolver from a dotted identifier chain (e.g. hr.emp_nest_tuples).
// Name is the full dotted name.
type NamedRef struct {
	position
	Name string
}

// FieldAccess is dot navigation: Base.Name.
type FieldAccess struct {
	position
	Base Expr
	Name string
}

// IndexAccess is bracket navigation: Base[Index].
type IndexAccess struct {
	position
	Base  Expr
	Index Expr
}

// Unary is a prefix operator: "-" or "NOT".
type Unary struct {
	position
	Op      string
	Operand Expr
}

// Binary is an infix operator: arithmetic, comparison, "||", AND, OR.
type Binary struct {
	position
	Op   string
	L, R Expr
}

// Like is "Target [NOT] LIKE Pattern [ESCAPE Escape]". Escape is nil when
// absent.
type Like struct {
	position
	Target, Pattern, Escape Expr
	Negate                  bool
}

// Between is "Target [NOT] BETWEEN Lo AND Hi".
type Between struct {
	position
	Target, Lo, Hi Expr
	Negate         bool
}

// In is "Target [NOT] IN rhs". Exactly one of List (parenthesized
// expression list) and Set (collection-valued expression or subquery) is
// used: List when non-nil.
type In struct {
	position
	Target Expr
	List   []Expr
	Set    Expr
	Negate bool
}

// Quantified is a SQL quantified comparison:
// "Target op ANY|SOME|ALL (collection)". All distinguishes ALL from
// ANY/SOME.
type Quantified struct {
	position
	Op     string // "=", "<>", "<", "<=", ">", ">="
	All    bool
	Target Expr
	Set    Expr
}

// Is is "Target IS [NOT] NULL|MISSING|UNKNOWN".
type Is struct {
	position
	Target Expr
	What   string // "NULL", "MISSING", or "UNKNOWN"
	Negate bool
}

// When is one WHEN/THEN arm of a CASE expression.
type When struct {
	Cond, Result Expr
}

// Case is a simple (Operand non-nil) or searched CASE expression. Else is
// nil when no ELSE branch was written; SQL semantics then supply NULL.
type Case struct {
	position
	Operand Expr
	Whens   []When
	Else    Expr
}

// Call is a function application. Star marks COUNT(*); Distinct marks
// aggregate DISTINCT arguments.
type Call struct {
	position
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool
}

// TupleField is one attribute of a tuple constructor. Name is an
// expression so attribute names can be computed (it is a string literal
// in the common case).
type TupleField struct {
	Name  Expr
	Value Expr
}

// TupleCtor is a tuple constructor {'a': e1, 'b': e2}.
type TupleCtor struct {
	position
	Fields []TupleField
}

// ArrayCtor is an array constructor [e1, e2].
type ArrayCtor struct {
	position
	Elems []Expr
}

// BagCtor is a bag constructor <<e1, e2>> or {{e1, e2}}.
type BagCtor struct {
	position
	Elems []Expr
}

// Exists is EXISTS(expr): true when expr is a non-empty collection.
type Exists struct {
	position
	Operand Expr
}

func (*Literal) exprNode()     {}
func (*VarRef) exprNode()      {}
func (*NamedRef) exprNode()    {}
func (*FieldAccess) exprNode() {}
func (*IndexAccess) exprNode() {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Like) exprNode()        {}
func (*Between) exprNode()     {}
func (*In) exprNode()          {}
func (*Is) exprNode()          {}
func (*Quantified) exprNode()  {}
func (*Case) exprNode()        {}
func (*Call) exprNode()        {}
func (*TupleCtor) exprNode()   {}
func (*ArrayCtor) exprNode()   {}
func (*BagCtor) exprNode()     {}
func (*Exists) exprNode()      {}
func (*SFW) exprNode()         {}
func (*With) exprNode()        {}
func (*Window) exprNode()      {}
func (*PivotQuery) exprNode()  {}
func (*SetOp) exprNode()       {}

// SelectItem is one projection of a SQL-style SELECT list. StarOf non-nil
// means "expr.*"; a nil Expr with nil StarOf is invalid.
type SelectItem struct {
	Expr     Expr
	Alias    string
	HasAlias bool
	StarOf   Expr
}

// SelectClause is the SELECT clause. Exactly one of Value (SELECT VALUE
// expr), Star (SELECT *), or Items is set.
type SelectClause struct {
	Distinct bool
	Value    Expr
	Star     bool
	Items    []SelectItem
}

// FromItem is one range source in the FROM clause.
type FromItem interface {
	Node
	fromItem()
}

// FromExpr ranges a variable over the value of Expr, with optional AT
// ordinal variable. Left correlation is permitted: Expr may reference
// variables of earlier FROM items.
type FromExpr struct {
	position
	Expr  Expr
	As    string
	AtVar string
}

// FromUnpivot is "UNPIVOT Expr AS ValueVar AT NameVar": it ranges over
// the attributes of a tuple, binding the attribute value and name.
type FromUnpivot struct {
	position
	Expr     Expr
	ValueVar string
	NameVar  string
}

// JoinKind distinguishes join flavors.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

// FromJoin is an explicit JOIN between two FROM items with an ON
// condition (nil for CROSS JOIN). OnPos is the position of the ON
// keyword (zero for CROSS JOIN), so diagnostics about the join
// condition can point at the clause rather than the whole join.
type FromJoin struct {
	position
	Kind  JoinKind
	Left  FromItem
	Right FromItem
	On    Expr
	OnPos lexer.Pos
}

func (*FromExpr) fromItem()    {}
func (*FromUnpivot) fromItem() {}
func (*FromJoin) fromItem()    {}

// LetBinding is "LET name = expr", an extension that names intermediate
// results between clauses. NamePos is the position of the bound name.
type LetBinding struct {
	Name    string
	NamePos lexer.Pos
	Expr    Expr
}

// GroupKey is one grouping expression with its binding alias. AliasPos
// is the position of the alias identifier (zero when the alias is
// implicit).
type GroupKey struct {
	Expr     Expr
	Alias    string
	AliasPos lexer.Pos
}

// GroupBy is "GROUP BY key [AS alias], ... [GROUP AS g]". GroupAs is the
// empty string when no GROUP AS was written; GroupAsPos is the position
// of the GROUP AS variable when one was.
type GroupBy struct {
	position
	Keys       []GroupKey
	GroupAs    string
	GroupAsPos lexer.Pos
}

// OrderItem is one ORDER BY expression. NullsFirst is nil for the SQL
// default (NULLS LAST ascending, NULLS FIRST descending over the SQL++
// total order, where absent values sort lowest).
type OrderItem struct {
	Expr       Expr
	Desc       bool
	NullsFirst *bool
}

// SFW is a select-from-where query block, the heart of SQL++. The SELECT
// clause may be written first (SQL style) or last (pipeline style);
// SelectLast records which, for round-trip printing only.
type SFW struct {
	position
	Select     SelectClause
	From       []FromItem
	Lets       []LetBinding
	Where      Expr
	GroupBy    *GroupBy
	Having     Expr
	OrderBy    []OrderItem
	Limit      Expr
	Offset     Expr
	SelectLast bool
	// Windows are the lowered window-function computations of this
	// block, filled by the rewriter; empty for blocks without OVER.
	Windows []NamedWindow
	// Phys is the physical-plan annotation attached by the optimizer
	// (plan.Optimize). It is opaque to this package and ignored by
	// printing, cloning, and type checking; nil means the block executes
	// with the naive clause pipeline.
	Phys any
}

// PivotQuery is "PIVOT valueExpr AT nameExpr FROM ... WHERE ... GROUP BY
// ...": it evaluates like an SFW block but constructs a single tuple,
// one attribute per binding.
type PivotQuery struct {
	position
	Value   Expr
	Name    Expr
	From    []FromItem
	Lets    []LetBinding
	Where   Expr
	GroupBy *GroupBy
	Having  Expr
}

// SetOp combines two query expressions with UNION/INTERSECT/EXCEPT.
type SetOp struct {
	position
	Op   string // "UNION", "INTERSECT", "EXCEPT"
	All  bool
	L, R Expr
}

// WithBinding names one common table expression. NamePos is the
// position of the binding name.
type WithBinding struct {
	Name    string
	NamePos lexer.Pos
	Expr    Expr
}

// With is "WITH name AS (query), ... body": the bindings are visible to
// each other (in order) and to the body.
type With struct {
	position
	Bindings []WithBinding
	Body     Expr
}

// WindowSpec is the OVER clause of a window function application.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// Window is a window-function application fn(args) OVER (spec). The
// paper notes SQL's window functions compose with SQL++ unchanged
// (§V-B); the rewriter lowers Window nodes onto per-binding computed
// variables.
type Window struct {
	position
	Fn   *Call
	Spec WindowSpec
}

// NamedWindow is a lowered window computation attached to a query block:
// the fresh variable Name carries the value of Fn over Spec for each
// binding. Pos is the source position of the OVER application the
// rewriter lowered, so diagnostics about the window report the clause
// the user wrote rather than a synthesized variable.
type NamedWindow struct {
	Name string
	Pos  lexer.Pos
	Fn   *Call
	Spec WindowSpec
}
