package ast

import (
	"testing"

	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

func lit(v value.Value) *Literal { return &Literal{Val: v} }

func TestFormatQuoting(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&VarRef{Name: "plain"}, "plain"},
		{&VarRef{Name: "select"}, `"select"`}, // reserved word
		{&VarRef{Name: "with space"}, `"with space"`},
		{&VarRef{Name: `has"quote`}, `"has""quote"`},
		{&VarRef{Name: "_ok1"}, "_ok1"},
		{&VarRef{Name: "1bad"}, `"1bad"`}, // leading digit
		{&VarRef{Name: ""}, `""`},
		{&FieldAccess{Base: &VarRef{Name: "e"}, Name: "date"}, "e.date"},
		{&NamedRef{Name: "hr.emp"}, "hr.emp"},
		{&NamedRef{Name: "hr.sales table"}, `hr."sales table"`},
	}
	for _, c := range cases {
		if got := Format(c.e); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

func TestFormatLiterals(t *testing.T) {
	if got := Format(lit(value.String("o'clock"))); got != "'o''clock'" {
		t.Errorf("string literal = %q", got)
	}
	if got := Format(lit(value.Missing)); got != "MISSING" {
		t.Errorf("missing literal = %q", got)
	}
}

func TestSetPos(t *testing.T) {
	v := &VarRef{Name: "x"}
	p := lexer.Pos{Offset: 3, Line: 2, Column: 1}
	v.SetPos(p)
	if v.Pos() != p {
		t.Errorf("Pos = %v", v.Pos())
	}
}

func TestInspectVisitsSubqueries(t *testing.T) {
	inner := &SFW{Select: SelectClause{Value: &Call{Name: "AVG", Args: []Expr{lit(value.Int(1))}}}}
	outer := &Binary{Op: "+", L: inner, R: lit(value.Int(2))}
	found := false
	Inspect(outer, func(e Expr) bool {
		if c, ok := e.(*Call); ok && c.Name == "AVG" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("Inspect should descend into nested query blocks")
	}
	// Early cutoff.
	count := 0
	Inspect(outer, func(e Expr) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("returning false should stop descent, visited %d", count)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := &Binary{
		Op: "AND",
		L:  &FieldAccess{Base: &VarRef{Name: "e"}, Name: "a"},
		R: &In{
			Target: &VarRef{Name: "x"},
			List:   []Expr{lit(value.Int(1)), lit(value.Int(2))},
		},
	}
	cl := CloneExpr(orig).(*Binary)
	if Format(orig) != Format(cl) {
		t.Fatal("clone should format identically")
	}
	cl.L.(*FieldAccess).Name = "changed"
	cl.R.(*In).List[0] = lit(value.Int(99))
	if Format(orig) == Format(cl) {
		t.Error("mutating the clone must not affect the original")
	}
	if orig.L.(*FieldAccess).Name != "a" {
		t.Error("original mutated through clone")
	}
}

func TestCloneNil(t *testing.T) {
	if CloneExpr(nil) != nil {
		t.Error("clone of nil is nil")
	}
}

func TestCloneFullQuery(t *testing.T) {
	yes := true
	q := &SFW{
		Select: SelectClause{Items: []SelectItem{{Expr: &VarRef{Name: "a"}, Alias: "a", HasAlias: true}}},
		From: []FromItem{
			&FromJoin{
				Kind:  JoinLeft,
				Left:  &FromExpr{Expr: &NamedRef{Name: "t"}, As: "x"},
				Right: &FromUnpivot{Expr: &VarRef{Name: "x"}, ValueVar: "v", NameVar: "n"},
				On:    lit(value.True),
			},
		},
		Lets:    []LetBinding{{Name: "l", Expr: lit(value.Int(1))}},
		Where:   lit(value.True),
		GroupBy: &GroupBy{Keys: []GroupKey{{Expr: &VarRef{Name: "a"}, Alias: "a"}}, GroupAs: "g"},
		Having:  lit(value.True),
		OrderBy: []OrderItem{{Expr: &VarRef{Name: "a"}, Desc: true, NullsFirst: &yes}},
		Limit:   lit(value.Int(5)),
		Offset:  lit(value.Int(1)),
	}
	cl := CloneExpr(q)
	if Format(q) != Format(cl) {
		t.Errorf("full query clone mismatch:\n%s\n%s", Format(q), Format(cl))
	}
	pivot := &PivotQuery{
		Value: &VarRef{Name: "v"},
		Name:  &VarRef{Name: "n"},
		From:  []FromItem{&FromExpr{Expr: &NamedRef{Name: "t"}, As: "r"}},
	}
	if Format(CloneExpr(pivot)) != Format(pivot) {
		t.Error("pivot clone mismatch")
	}
	setop := &SetOp{Op: "UNION", All: true, L: q, R: pivot}
	if Format(CloneExpr(setop)) != Format(setop) {
		t.Error("set-op clone mismatch")
	}
}
