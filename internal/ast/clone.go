package ast

// CloneExpr returns a deep copy of e. The rewriter substitutes
// subexpressions into multiple positions; cloning keeps each occurrence
// independently rewritable.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *NamedRef:
		c := *x
		return &c
	case *FieldAccess:
		c := *x
		c.Base = CloneExpr(x.Base)
		return &c
	case *IndexAccess:
		c := *x
		c.Base = CloneExpr(x.Base)
		c.Index = CloneExpr(x.Index)
		return &c
	case *Unary:
		c := *x
		c.Operand = CloneExpr(x.Operand)
		return &c
	case *Binary:
		c := *x
		c.L = CloneExpr(x.L)
		c.R = CloneExpr(x.R)
		return &c
	case *Like:
		c := *x
		c.Target = CloneExpr(x.Target)
		c.Pattern = CloneExpr(x.Pattern)
		c.Escape = CloneExpr(x.Escape)
		return &c
	case *Between:
		c := *x
		c.Target = CloneExpr(x.Target)
		c.Lo = CloneExpr(x.Lo)
		c.Hi = CloneExpr(x.Hi)
		return &c
	case *In:
		c := *x
		c.Target = CloneExpr(x.Target)
		c.Set = CloneExpr(x.Set)
		c.List = cloneExprs(x.List)
		return &c
	case *Is:
		c := *x
		c.Target = CloneExpr(x.Target)
		return &c
	case *Quantified:
		c := *x
		c.Target = CloneExpr(x.Target)
		c.Set = CloneExpr(x.Set)
		return &c
	case *Case:
		c := *x
		c.Operand = CloneExpr(x.Operand)
		c.Whens = make([]When, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = When{Cond: CloneExpr(w.Cond), Result: CloneExpr(w.Result)}
		}
		c.Else = CloneExpr(x.Else)
		return &c
	case *Call:
		c := *x
		c.Args = cloneExprs(x.Args)
		return &c
	case *TupleCtor:
		c := *x
		c.Fields = make([]TupleField, len(x.Fields))
		for i, f := range x.Fields {
			c.Fields[i] = TupleField{Name: CloneExpr(f.Name), Value: CloneExpr(f.Value)}
		}
		return &c
	case *ArrayCtor:
		c := *x
		c.Elems = cloneExprs(x.Elems)
		return &c
	case *BagCtor:
		c := *x
		c.Elems = cloneExprs(x.Elems)
		return &c
	case *Exists:
		c := *x
		c.Operand = CloneExpr(x.Operand)
		return &c
	case *SFW:
		return cloneSFW(x)
	case *PivotQuery:
		c := *x
		c.Value = CloneExpr(x.Value)
		c.Name = CloneExpr(x.Name)
		c.From = cloneFromItems(x.From)
		c.Lets = cloneLets(x.Lets)
		c.Where = CloneExpr(x.Where)
		c.GroupBy = cloneGroupBy(x.GroupBy)
		c.Having = CloneExpr(x.Having)
		return &c
	case *SetOp:
		c := *x
		c.L = CloneExpr(x.L)
		c.R = CloneExpr(x.R)
		return &c
	case *With:
		c := *x
		c.Bindings = make([]WithBinding, len(x.Bindings))
		for i, b := range x.Bindings {
			cb := b
			cb.Expr = CloneExpr(b.Expr)
			c.Bindings[i] = cb
		}
		c.Body = CloneExpr(x.Body)
		return &c
	case *Window:
		c := *x
		c.Fn = CloneExpr(x.Fn).(*Call)
		c.Spec = cloneWindowSpec(x.Spec)
		return &c
	}
	panic("ast: CloneExpr of unknown node type")
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

func cloneSFW(q *SFW) *SFW {
	c := *q
	c.Phys = nil // physical annotations never survive a clone
	c.Select.Value = CloneExpr(q.Select.Value)
	c.Select.Items = make([]SelectItem, len(q.Select.Items))
	for i, it := range q.Select.Items {
		c.Select.Items[i] = SelectItem{
			Expr:     CloneExpr(it.Expr),
			Alias:    it.Alias,
			HasAlias: it.HasAlias,
			StarOf:   CloneExpr(it.StarOf),
		}
	}
	c.From = cloneFromItems(q.From)
	c.Lets = cloneLets(q.Lets)
	c.Where = CloneExpr(q.Where)
	c.GroupBy = cloneGroupBy(q.GroupBy)
	c.Having = CloneExpr(q.Having)
	c.OrderBy = make([]OrderItem, len(q.OrderBy))
	for i, o := range q.OrderBy {
		c.OrderBy[i] = OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc, NullsFirst: o.NullsFirst}
	}
	c.Limit = CloneExpr(q.Limit)
	c.Offset = CloneExpr(q.Offset)
	c.Windows = make([]NamedWindow, len(q.Windows))
	for i, w := range q.Windows {
		cw := w
		cw.Fn = CloneExpr(w.Fn).(*Call)
		cw.Spec = cloneWindowSpec(w.Spec)
		c.Windows[i] = cw
	}
	return &c
}

func cloneFromItems(items []FromItem) []FromItem {
	if items == nil {
		return nil
	}
	out := make([]FromItem, len(items))
	for i, f := range items {
		out[i] = cloneFromItem(f)
	}
	return out
}

func cloneFromItem(f FromItem) FromItem {
	switch x := f.(type) {
	case *FromExpr:
		c := *x
		c.Expr = CloneExpr(x.Expr)
		return &c
	case *FromUnpivot:
		c := *x
		c.Expr = CloneExpr(x.Expr)
		return &c
	case *FromJoin:
		c := *x
		c.Left = cloneFromItem(x.Left)
		c.Right = cloneFromItem(x.Right)
		c.On = CloneExpr(x.On)
		return &c
	}
	panic("ast: cloneFromItem of unknown node type")
}

func cloneLets(ls []LetBinding) []LetBinding {
	if ls == nil {
		return nil
	}
	out := make([]LetBinding, len(ls))
	for i, l := range ls {
		cl := l
		cl.Expr = CloneExpr(l.Expr)
		out[i] = cl
	}
	return out
}

func cloneWindowSpec(w WindowSpec) WindowSpec {
	out := WindowSpec{}
	out.PartitionBy = cloneExprs(w.PartitionBy)
	out.OrderBy = make([]OrderItem, len(w.OrderBy))
	for i, o := range w.OrderBy {
		out.OrderBy[i] = OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc, NullsFirst: o.NullsFirst}
	}
	return out
}

func cloneGroupBy(g *GroupBy) *GroupBy {
	if g == nil {
		return nil
	}
	c := *g
	c.Keys = make([]GroupKey, len(g.Keys))
	for i, k := range g.Keys {
		ck := k
		ck.Expr = CloneExpr(k.Expr)
		c.Keys[i] = ck
	}
	return &c
}
