package ast

import "strconv"

// Free-variable analysis for the physical optimizer. A variable occurs
// free in an expression when it is not bound by an enclosing query-block
// construct inside that expression: FROM item aliases, LET names, group
// key aliases, GROUP AS, and lowered window names all bind. NamedRef
// nodes are catalog references resolved by the rewriter and are never
// free. The analysis is conservative: over-reporting a name as free only
// disables an optimization, never changes semantics, so constructs with
// subtle scoping err on the side of reporting more.

// FreeVars returns the set of variable names occurring free in e. The
// result is freshly allocated and owned by the caller. A nil expression
// has no free variables.
func FreeVars(e Expr) map[string]bool {
	w := &fvWalker{free: map[string]bool{}, bound: map[string]int{}}
	w.expr(e)
	return w.free
}

// FreeVarsOver reports whether any name in vars occurs free in e.
func FreeVarsOver(e Expr, vars map[string]bool) bool {
	if len(vars) == 0 {
		return false
	}
	for name := range FreeVars(e) {
		if vars[name] {
			return true
		}
	}
	return false
}

// fvWalker accumulates free variables. bound counts active bindings per
// name so shadowed re-bindings nest correctly.
type fvWalker struct {
	free  map[string]bool
	bound map[string]int
}

func (w *fvWalker) bind(name string) {
	if name != "" {
		w.bound[name]++
	}
}

func (w *fvWalker) unbind(name string) {
	if name != "" {
		w.bound[name]--
	}
}

// scope tracks a batch of bindings so they can be popped together.
type fvScope struct {
	w     *fvWalker
	names []string
}

func (s *fvScope) bind(name string) {
	if name == "" {
		return
	}
	s.w.bind(name)
	s.names = append(s.names, name)
}

func (s *fvScope) pop() {
	for i := len(s.names) - 1; i >= 0; i-- {
		s.w.unbind(s.names[i])
	}
	s.names = s.names[:0]
}

func (w *fvWalker) expr(e Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *Literal, *NamedRef:
	case *VarRef:
		if w.bound[x.Name] == 0 {
			w.free[x.Name] = true
		}
	case *FieldAccess:
		w.expr(x.Base)
	case *IndexAccess:
		w.expr(x.Base)
		w.expr(x.Index)
	case *Unary:
		w.expr(x.Operand)
	case *Binary:
		w.expr(x.L)
		w.expr(x.R)
	case *Like:
		w.expr(x.Target)
		w.expr(x.Pattern)
		w.expr(x.Escape)
	case *Between:
		w.expr(x.Target)
		w.expr(x.Lo)
		w.expr(x.Hi)
	case *In:
		w.expr(x.Target)
		for _, e := range x.List {
			w.expr(e)
		}
		w.expr(x.Set)
	case *Is:
		w.expr(x.Target)
	case *Quantified:
		w.expr(x.Target)
		w.expr(x.Set)
	case *Case:
		w.expr(x.Operand)
		for _, arm := range x.Whens {
			w.expr(arm.Cond)
			w.expr(arm.Result)
		}
		w.expr(x.Else)
	case *Call:
		for _, a := range x.Args {
			w.expr(a)
		}
	case *TupleCtor:
		for _, f := range x.Fields {
			w.expr(f.Name)
			w.expr(f.Value)
		}
	case *ArrayCtor:
		for _, e := range x.Elems {
			w.expr(e)
		}
	case *BagCtor:
		for _, e := range x.Elems {
			w.expr(e)
		}
	case *Exists:
		w.expr(x.Operand)
	case *SFW:
		w.sfw(x)
	case *PivotQuery:
		w.pivot(x)
	case *SetOp:
		w.expr(x.L)
		w.expr(x.R)
	case *With:
		var s fvScope
		s.w = w
		for _, b := range x.Bindings {
			w.expr(b.Expr)
			s.bind(b.Name)
		}
		w.expr(x.Body)
		s.pop()
	case *Window:
		w.expr(x.Fn)
		for _, e := range x.Spec.PartitionBy {
			w.expr(e)
		}
		for _, o := range x.Spec.OrderBy {
			w.expr(o.Expr)
		}
	}
}

// sfw walks a query block with its scoping rules: FROM items bind left to
// right (a join's right side sees the left side's variables), LETs bind
// after FROM, and GROUP BY replaces the pre-group variables with the key
// aliases plus GROUP AS for every post-group clause. LIMIT/OFFSET are
// evaluated in the outer environment and are walked outside all block
// bindings, matching evalLimitOffset.
func (w *fvWalker) sfw(q *SFW) {
	w.expr(q.Limit)
	w.expr(q.Offset)

	var pre fvScope
	pre.w = w
	for _, item := range q.From {
		w.fromItem(item, &pre)
	}
	for _, l := range q.Lets {
		w.expr(l.Expr)
		pre.bind(l.Name)
	}
	w.expr(q.Where)

	if q.GroupBy == nil {
		// Window names bind only for SELECT and ORDER BY; HAVING runs
		// before windows are computed.
		w.expr(q.Having)
		var win fvScope
		win.w = w
		w.windows(q.Windows, &win)
		w.expr(q.Select.Value)
		w.selectItems(q.Select.Items)
		for _, o := range q.OrderBy {
			w.expr(o.Expr)
		}
		win.pop()
		pre.pop()
		return
	}

	// Group keys see the pre-group variables; everything after GROUP BY
	// sees only the key aliases, GROUP AS, and the enclosing scope.
	for _, key := range q.GroupBy.Keys {
		w.expr(key.Expr)
	}
	pre.pop()

	var post fvScope
	post.w = w
	for i, key := range q.GroupBy.Keys {
		alias := key.Alias
		if alias == "" {
			alias = implicitKeyAlias(i)
		}
		post.bind(alias)
	}
	post.bind(q.GroupBy.GroupAs)
	w.expr(q.Having)
	var win fvScope
	win.w = w
	w.windows(q.Windows, &win)
	w.expr(q.Select.Value)
	w.selectItems(q.Select.Items)
	for _, o := range q.OrderBy {
		w.expr(o.Expr)
	}
	win.pop()
	post.pop()
}

func (w *fvWalker) pivot(q *PivotQuery) {
	var pre fvScope
	pre.w = w
	for _, item := range q.From {
		w.fromItem(item, &pre)
	}
	for _, l := range q.Lets {
		w.expr(l.Expr)
		pre.bind(l.Name)
	}
	w.expr(q.Where)
	if q.GroupBy == nil {
		w.expr(q.Having)
		w.expr(q.Value)
		w.expr(q.Name)
		pre.pop()
		return
	}
	for _, key := range q.GroupBy.Keys {
		w.expr(key.Expr)
	}
	pre.pop()
	var post fvScope
	post.w = w
	for i, key := range q.GroupBy.Keys {
		alias := key.Alias
		if alias == "" {
			alias = implicitKeyAlias(i)
		}
		post.bind(alias)
	}
	post.bind(q.GroupBy.GroupAs)
	w.expr(q.Having)
	w.expr(q.Value)
	w.expr(q.Name)
	post.pop()
}

// fromItem walks one FROM item's source expressions under the bindings
// accumulated so far and then adds the item's own variables to s.
func (w *fvWalker) fromItem(item FromItem, s *fvScope) {
	switch x := item.(type) {
	case *FromExpr:
		w.expr(x.Expr)
		s.bind(x.As)
		s.bind(x.AtVar)
	case *FromUnpivot:
		w.expr(x.Expr)
		s.bind(x.ValueVar)
		s.bind(x.NameVar)
	case *FromJoin:
		w.fromItem(x.Left, s)
		w.fromItem(x.Right, s)
		w.expr(x.On)
	}
}

func (w *fvWalker) windows(ws []NamedWindow, s *fvScope) {
	for _, nw := range ws {
		w.expr(nw.Fn)
		for _, e := range nw.Spec.PartitionBy {
			w.expr(e)
		}
		for _, o := range nw.Spec.OrderBy {
			w.expr(o.Expr)
		}
		s.bind(nw.Name)
	}
}

func (w *fvWalker) selectItems(items []SelectItem) {
	for _, it := range items {
		w.expr(it.Expr)
		w.expr(it.StarOf)
	}
}

// implicitKeyAlias is the alias a group key without an explicit AS binds
// under; it must match the executor's groupState.flush.
func implicitKeyAlias(i int) string { return "$k" + strconv.Itoa(i+1) }

// ItemVars returns the variable names a FROM item introduces, in binding
// order.
func ItemVars(item FromItem) []string {
	switch x := item.(type) {
	case *FromExpr:
		vars := []string{x.As}
		if x.AtVar != "" {
			vars = append(vars, x.AtVar)
		}
		return vars
	case *FromUnpivot:
		return []string{x.ValueVar, x.NameVar}
	case *FromJoin:
		return append(ItemVars(x.Left), ItemVars(x.Right)...)
	}
	return nil
}
