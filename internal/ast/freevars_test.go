package ast_test

// Free-variable analysis tests drive the walker through the parser so
// the scoping cases read as the queries they model. The parser leaves
// every identifier a VarRef (resolution to NamedRef happens in
// rewrite), so unresolved collection names count as free here.

import (
	"sort"
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
)

func freeOf(t *testing.T, query string) []string {
	t.Helper()
	e, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	var names []string
	for n := range ast.FreeVars(e) {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func TestFreeVarsScoping(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		// FROM binds its alias for the rest of the block.
		{`SELECT VALUE e.name FROM emp AS e`, []string{"emp"}},
		// A later comma item sees earlier aliases (correlation).
		{`SELECT VALUE p FROM emp AS e, e.projects AS p`, []string{"emp"}},
		// A join's right side and ON see the left side's alias.
		{`SELECT VALUE 1 FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`,
			[]string{"dept", "emp"}},
		// LET binds after FROM.
		{`FROM emp AS e LET s = e.salary WHERE s > 100 SELECT VALUE s`,
			[]string{"emp"}},
		// A correlated subquery in SELECT leaks only its outer references.
		{`SELECT VALUE (SELECT VALUE d FROM dept AS d WHERE d.dno = e.deptno) FROM emp AS e`,
			[]string{"dept", "emp"}},
		// An inner alias shadows the outer one.
		{`SELECT VALUE (FROM e.kids AS e SELECT VALUE e) FROM emp AS e`,
			[]string{"emp"}},
		// GROUP BY replaces pre-group variables: e is no longer bound in
		// SELECT, so referencing it there is a free occurrence.
		{`FROM emp AS e GROUP BY e.deptno AS dno SELECT VALUE {'d': dno, 'n': e.name}`,
			[]string{"e", "emp"}},
		// The key alias and GROUP AS are the post-group bindings.
		{`FROM emp AS e GROUP BY e.deptno AS dno GROUP AS g
		  SELECT VALUE {'d': dno, 'names': (FROM g AS v SELECT VALUE v.e.name)}`,
			[]string{"emp"}},
		// LIMIT/OFFSET evaluate in the outer environment, outside the
		// block's bindings.
		{`SELECT VALUE e FROM emp AS e LIMIT n`, []string{"emp", "n"}},
		// UNPIVOT binds its value and name variables.
		{`SELECT VALUE [v, a] FROM UNPIVOT t AS v AT a`, []string{"t"}},
	}
	for _, c := range cases {
		got := freeOf(t, c.query)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("FreeVars(%s)\n  got  %v\n  want %v", c.query, got, c.want)
		}
	}
}

func TestFreeVarsOver(t *testing.T) {
	e, err := parser.Parse(`SELECT VALUE d FROM dept AS d WHERE d.dno = e.deptno`)
	if err != nil {
		t.Fatal(err)
	}
	if !ast.FreeVarsOver(e, map[string]bool{"e": true}) {
		t.Error("e should occur free in the correlated block")
	}
	if ast.FreeVarsOver(e, map[string]bool{"d": true}) {
		t.Error("d is bound by its own FROM and must not be reported free")
	}
	if ast.FreeVarsOver(nil, map[string]bool{"x": true}) {
		t.Error("a nil expression has no free variables")
	}
}

func TestItemVars(t *testing.T) {
	join := &ast.FromJoin{
		Left:  &ast.FromExpr{As: "e", AtVar: "i"},
		Right: &ast.FromExpr{As: "d"},
	}
	got := ast.ItemVars(join)
	want := []string{"e", "i", "d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ItemVars(join) = %v, want %v", got, want)
	}
	unpivot := &ast.FromUnpivot{ValueVar: "v", NameVar: "a"}
	got = ast.ItemVars(unpivot)
	want = []string{"v", "a"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ItemVars(unpivot) = %v, want %v", got, want)
	}
}
