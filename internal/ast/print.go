package ast

import (
	"fmt"
	"strings"

	"sqlpp/internal/lexer"
)

// Format renders an expression (including query blocks) back to SQL++
// text. The output is valid SQL++ that parses to an equivalent tree; it
// is used by error messages, the rewriter's tests, and EXPLAIN in the
// CLI.
func Format(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		sb.WriteString("<nil>")
	case *Literal:
		sb.WriteString(x.Val.String())
	case *VarRef:
		sb.WriteString(quoteIdent(x.Name))
	case *NamedRef:
		for i, part := range strings.Split(x.Name, ".") {
			if i > 0 {
				sb.WriteByte('.')
			}
			sb.WriteString(quoteIdent(part))
		}
	case *FieldAccess:
		printExpr(sb, x.Base)
		sb.WriteByte('.')
		sb.WriteString(quoteIdent(x.Name))
	case *IndexAccess:
		printExpr(sb, x.Base)
		sb.WriteByte('[')
		printExpr(sb, x.Index)
		sb.WriteByte(']')
	case *Unary:
		sb.WriteString(x.Op)
		if x.Op == "NOT" {
			sb.WriteByte(' ')
		}
		printExpr(sb, x.Operand)
	case *Binary:
		sb.WriteByte('(')
		printExpr(sb, x.L)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		printExpr(sb, x.R)
		sb.WriteByte(')')
	case *Like:
		printExpr(sb, x.Target)
		if x.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" LIKE ")
		printExpr(sb, x.Pattern)
		if x.Escape != nil {
			sb.WriteString(" ESCAPE ")
			printExpr(sb, x.Escape)
		}
	case *Between:
		printExpr(sb, x.Target)
		if x.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		printExpr(sb, x.Lo)
		sb.WriteString(" AND ")
		printExpr(sb, x.Hi)
	case *In:
		printExpr(sb, x.Target)
		if x.Negate {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN ")
		if x.List != nil {
			sb.WriteByte('(')
			for i, e := range x.List {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, e)
			}
			sb.WriteByte(')')
		} else {
			printExpr(sb, x.Set)
		}
	case *Quantified:
		printExpr(sb, x.Target)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		if x.All {
			sb.WriteString(" ALL ")
		} else {
			sb.WriteString(" ANY ")
		}
		printExpr(sb, x.Set)
	case *Is:
		printExpr(sb, x.Target)
		sb.WriteString(" IS ")
		if x.Negate {
			sb.WriteString("NOT ")
		}
		sb.WriteString(x.What)
	case *Case:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteByte(' ')
			printExpr(sb, x.Operand)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			printExpr(sb, w.Cond)
			sb.WriteString(" THEN ")
			printExpr(sb, w.Result)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			printExpr(sb, x.Else)
		}
		sb.WriteString(" END")
	case *Call:
		// CAST has dedicated syntax: CAST(expr AS TYPE).
		if x.Name == "CAST" && len(x.Args) == 2 {
			if lit, ok := x.Args[1].(*Literal); ok {
				sb.WriteString("CAST(")
				printExpr(sb, x.Args[0])
				sb.WriteString(" AS ")
				sb.WriteString(strings.Trim(lit.Val.String(), "'"))
				sb.WriteByte(')')
				return
			}
		}
		sb.WriteString(x.Name)
		sb.WriteByte('(')
		if x.Star {
			sb.WriteByte('*')
		}
		if x.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
	case *TupleCtor:
		sb.WriteByte('{')
		for i, f := range x.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, f.Name)
			sb.WriteString(": ")
			printExpr(sb, f.Value)
		}
		sb.WriteByte('}')
	case *ArrayCtor:
		sb.WriteByte('[')
		for i, e := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, e)
		}
		sb.WriteByte(']')
	case *BagCtor:
		sb.WriteString("<<")
		for i, e := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, e)
		}
		sb.WriteString(">>")
	case *Exists:
		sb.WriteString("EXISTS ")
		printExpr(sb, x.Operand)
	case *SFW:
		sb.WriteByte('(')
		printSFW(sb, x)
		sb.WriteByte(')')
	case *PivotQuery:
		sb.WriteString("(PIVOT ")
		printExpr(sb, x.Value)
		sb.WriteString(" AT ")
		printExpr(sb, x.Name)
		printFromWhere(sb, x.From, x.Lets, x.Where)
		printGroupHaving(sb, x.GroupBy, x.Having)
		sb.WriteByte(')')
	case *With:
		sb.WriteString("WITH ")
		for i, b := range x.Bindings {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteIdent(b.Name))
			sb.WriteString(" AS ")
			printExpr(sb, b.Expr)
		}
		sb.WriteByte(' ')
		printExpr(sb, x.Body)
	case *Window:
		printExpr(sb, x.Fn)
		sb.WriteString(" OVER (")
		printWindowSpec(sb, x.Spec)
		sb.WriteByte(')')
	case *SetOp:
		sb.WriteByte('(')
		printExpr(sb, x.L)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		if x.All {
			sb.WriteString(" ALL")
		}
		sb.WriteByte(' ')
		printExpr(sb, x.R)
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "<unknown %T>", e)
	}
}

func printSFW(sb *strings.Builder, q *SFW) {
	printSelect := func() {
		sb.WriteString("SELECT ")
		if q.Select.Distinct {
			sb.WriteString("DISTINCT ")
		}
		switch {
		case q.Select.Value != nil:
			sb.WriteString("VALUE ")
			printExpr(sb, q.Select.Value)
		case q.Select.Star:
			sb.WriteByte('*')
		default:
			for i, it := range q.Select.Items {
				if i > 0 {
					sb.WriteString(", ")
				}
				if it.StarOf != nil {
					printExpr(sb, it.StarOf)
					sb.WriteString(".*")
					continue
				}
				printExpr(sb, it.Expr)
				if it.HasAlias {
					sb.WriteString(" AS ")
					sb.WriteString(quoteIdent(it.Alias))
				}
			}
		}
	}
	if !q.SelectLast {
		printSelect()
	}
	printFromWhere(sb, q.From, q.Lets, q.Where)
	printGroupHaving(sb, q.GroupBy, q.Having)
	if q.SelectLast {
		sb.WriteByte(' ')
		printSelect()
	}
	for i, o := range q.OrderBy {
		if i == 0 {
			sb.WriteString(" ORDER BY ")
		} else {
			sb.WriteString(", ")
		}
		printExpr(sb, o.Expr)
		if o.Desc {
			sb.WriteString(" DESC")
		}
		if o.NullsFirst != nil {
			if *o.NullsFirst {
				sb.WriteString(" NULLS FIRST")
			} else {
				sb.WriteString(" NULLS LAST")
			}
		}
	}
	if q.Limit != nil {
		sb.WriteString(" LIMIT ")
		printExpr(sb, q.Limit)
	}
	if q.Offset != nil {
		sb.WriteString(" OFFSET ")
		printExpr(sb, q.Offset)
	}
}

func printFromWhere(sb *strings.Builder, from []FromItem, lets []LetBinding, where Expr) {
	for i, f := range from {
		if i == 0 {
			sb.WriteString(" FROM ")
		} else {
			sb.WriteString(", ")
		}
		printFromItem(sb, f)
	}
	for _, l := range lets {
		sb.WriteString(" LET ")
		sb.WriteString(quoteIdent(l.Name))
		sb.WriteString(" = ")
		printExpr(sb, l.Expr)
	}
	if where != nil {
		sb.WriteString(" WHERE ")
		printExpr(sb, where)
	}
}

func printGroupHaving(sb *strings.Builder, g *GroupBy, having Expr) {
	if g != nil {
		sb.WriteString(" GROUP BY ")
		for i, k := range g.Keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, k.Expr)
			if k.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(quoteIdent(k.Alias))
			}
		}
		if g.GroupAs != "" {
			sb.WriteString(" GROUP AS ")
			sb.WriteString(quoteIdent(g.GroupAs))
		}
	}
	if having != nil {
		sb.WriteString(" HAVING ")
		printExpr(sb, having)
	}
}

func printFromItem(sb *strings.Builder, f FromItem) {
	switch x := f.(type) {
	case *FromExpr:
		printExpr(sb, x.Expr)
		if x.As != "" {
			sb.WriteString(" AS ")
			sb.WriteString(quoteIdent(x.As))
		}
		if x.AtVar != "" {
			sb.WriteString(" AT ")
			sb.WriteString(quoteIdent(x.AtVar))
		}
	case *FromUnpivot:
		sb.WriteString("UNPIVOT ")
		printExpr(sb, x.Expr)
		sb.WriteString(" AS ")
		sb.WriteString(quoteIdent(x.ValueVar))
		sb.WriteString(" AT ")
		sb.WriteString(quoteIdent(x.NameVar))
	case *FromJoin:
		printFromItem(sb, x.Left)
		switch x.Kind {
		case JoinInner:
			sb.WriteString(" JOIN ")
		case JoinLeft:
			sb.WriteString(" LEFT JOIN ")
		case JoinCross:
			sb.WriteString(" CROSS JOIN ")
		}
		printFromItem(sb, x.Right)
		if x.On != nil {
			sb.WriteString(" ON ")
			printExpr(sb, x.On)
		}
	}
}

func printWindowSpec(sb *strings.Builder, w WindowSpec) {
	for i, e := range w.PartitionBy {
		if i == 0 {
			sb.WriteString("PARTITION BY ")
		} else {
			sb.WriteString(", ")
		}
		printExpr(sb, e)
	}
	for i, o := range w.OrderBy {
		if i == 0 {
			if len(w.PartitionBy) > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("ORDER BY ")
		} else {
			sb.WriteString(", ")
		}
		printExpr(sb, o.Expr)
		if o.Desc {
			sb.WriteString(" DESC")
		}
		if o.NullsFirst != nil {
			if *o.NullsFirst {
				sb.WriteString(" NULLS FIRST")
			} else {
				sb.WriteString(" NULLS LAST")
			}
		}
	}
}

// quoteIdent renders an identifier, double-quoting it when it is a
// reserved word or contains characters that would not re-lex as a bare
// identifier.
func quoteIdent(name string) string {
	if name == "" {
		return `""`
	}
	plain := true
	for i, r := range name {
		ok := r == '_' || r == '$' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			plain = false
			break
		}
	}
	if plain && !lexer.IsKeyword(name) {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}
