package ast

// Visitor is called by Inspect for every expression node. Returning false
// stops descent into the node's children.
type Visitor func(Expr) bool

// Inspect walks the expression tree rooted at e in depth-first order,
// calling v for every expression node. Subquery bodies are visited too:
// the rewriter relies on seeing aggregate calls inside nested blocks.
func Inspect(e Expr, v Visitor) {
	if e == nil || !v(e) {
		return
	}
	switch x := e.(type) {
	case *Literal, *VarRef, *NamedRef:
	case *FieldAccess:
		Inspect(x.Base, v)
	case *IndexAccess:
		Inspect(x.Base, v)
		Inspect(x.Index, v)
	case *Unary:
		Inspect(x.Operand, v)
	case *Binary:
		Inspect(x.L, v)
		Inspect(x.R, v)
	case *Like:
		Inspect(x.Target, v)
		Inspect(x.Pattern, v)
		Inspect(x.Escape, v)
	case *Between:
		Inspect(x.Target, v)
		Inspect(x.Lo, v)
		Inspect(x.Hi, v)
	case *In:
		Inspect(x.Target, v)
		for _, e := range x.List {
			Inspect(e, v)
		}
		Inspect(x.Set, v)
	case *Is:
		Inspect(x.Target, v)
	case *Quantified:
		Inspect(x.Target, v)
		Inspect(x.Set, v)
	case *Case:
		Inspect(x.Operand, v)
		for _, w := range x.Whens {
			Inspect(w.Cond, v)
			Inspect(w.Result, v)
		}
		Inspect(x.Else, v)
	case *Call:
		for _, a := range x.Args {
			Inspect(a, v)
		}
	case *TupleCtor:
		for _, f := range x.Fields {
			Inspect(f.Name, v)
			Inspect(f.Value, v)
		}
	case *ArrayCtor:
		for _, e := range x.Elems {
			Inspect(e, v)
		}
	case *BagCtor:
		for _, e := range x.Elems {
			Inspect(e, v)
		}
	case *Exists:
		Inspect(x.Operand, v)
	case *SFW:
		inspectSFW(x, v)
	case *PivotQuery:
		Inspect(x.Value, v)
		Inspect(x.Name, v)
		for _, f := range x.From {
			inspectFrom(f, v)
		}
		for _, l := range x.Lets {
			Inspect(l.Expr, v)
		}
		Inspect(x.Where, v)
		inspectGroupBy(x.GroupBy, v)
		Inspect(x.Having, v)
	case *SetOp:
		Inspect(x.L, v)
		Inspect(x.R, v)
	case *With:
		for _, b := range x.Bindings {
			Inspect(b.Expr, v)
		}
		Inspect(x.Body, v)
	case *Window:
		Inspect(x.Fn, v)
		for _, e := range x.Spec.PartitionBy {
			Inspect(e, v)
		}
		for _, o := range x.Spec.OrderBy {
			Inspect(o.Expr, v)
		}
	}
}

func inspectSFW(q *SFW, v Visitor) {
	if q.Select.Value != nil {
		Inspect(q.Select.Value, v)
	}
	for _, it := range q.Select.Items {
		Inspect(it.Expr, v)
		Inspect(it.StarOf, v)
	}
	for _, f := range q.From {
		inspectFrom(f, v)
	}
	for _, l := range q.Lets {
		Inspect(l.Expr, v)
	}
	Inspect(q.Where, v)
	inspectGroupBy(q.GroupBy, v)
	Inspect(q.Having, v)
	for _, o := range q.OrderBy {
		Inspect(o.Expr, v)
	}
	Inspect(q.Limit, v)
	Inspect(q.Offset, v)
}

func inspectFrom(f FromItem, v Visitor) {
	switch x := f.(type) {
	case *FromExpr:
		Inspect(x.Expr, v)
	case *FromUnpivot:
		Inspect(x.Expr, v)
	case *FromJoin:
		inspectFrom(x.Left, v)
		inspectFrom(x.Right, v)
		Inspect(x.On, v)
	}
}

func inspectGroupBy(g *GroupBy, v Visitor) {
	if g == nil {
		return
	}
	for _, k := range g.Keys {
		Inspect(k.Expr, v)
	}
}
