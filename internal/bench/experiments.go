package bench

import (
	"bytes"
	"fmt"
	"strings"

	"sqlpp"
	"sqlpp/internal/datafmt"
	"sqlpp/internal/value"
)

// Variant is one measured configuration of an experiment: an engine
// preloaded with data plus the query to execute.
type Variant struct {
	Name  string
	DB    *sqlpp.Engine
	Query string
	// ExpectError marks variants that are supposed to fail (stop-on-error
	// over dirty data): the measurement then times the failure path and
	// the harness reports it as such.
	ExpectError bool
}

// Run executes the variant once, returning the result size (for
// plausibility checks in the harness).
func (v Variant) Run() (int, error) {
	res, err := v.DB.Query(v.Query)
	if err != nil {
		return 0, err
	}
	if elems, ok := value.Elements(res); ok {
		return len(elems), nil
	}
	return 1, nil
}

// Prepare compiles the variant's query once, so harness measurements
// time execution only (the compatibility rewritings are deliberately
// compile-time; see claim C1).
func (v Variant) Prepare() (*sqlpp.Prepared, error) {
	return v.DB.Prepare(v.Query)
}

// Experiment is a named set of variants measured against each other.
type Experiment struct {
	ID       string
	Claim    string
	Variants []Variant
}

func newEngine(compat, strict bool, data map[string]value.Value) *sqlpp.Engine {
	return newEngineOpts(sqlpp.Options{Compat: compat, StopOnError: strict}, data)
}

func newEngineOpts(opts sqlpp.Options, data map[string]value.Value) *sqlpp.Engine {
	db := sqlpp.New(&opts)
	for name, v := range data {
		if err := db.Register(name, v); err != nil {
			panic(err)
		}
	}
	return db
}

// naiveOpts is the physical-layer baseline: optimizer off, one worker.
var naiveOpts = sqlpp.Options{DisableOptimizer: true, Parallelism: 1}

// GroupAsExperiment measures claim C4 (§V-B): inverting a nested
// hierarchy with GROUP BY ... GROUP AS versus the equivalent nested
// correlated SELECT VALUE subquery. The nested form rescans the whole
// collection once per distinct group, so GROUP AS should win and the gap
// should widen with collection size.
func GroupAsExperiment(n int) Experiment {
	data := map[string]value.Value{
		"emp": HR(HROptions{N: n, ScalarProjects: true, Seed: 42}),
	}
	groupAs := `
		FROM emp AS e, e.projects AS p
		GROUP BY p AS p GROUP AS g
		SELECT p AS proj_name,
		       (FROM g AS v SELECT VALUE v.e.name) AS employees`
	nested := `
		SELECT DISTINCT p AS proj_name,
		       (SELECT VALUE e2.name
		        FROM emp AS e2, e2.projects AS p2
		        WHERE p2 = p) AS employees
		FROM emp AS e, e.projects AS p`
	return Experiment{
		ID:    fmt.Sprintf("C4/invert-hierarchy/N=%d", n),
		Claim: "GROUP AS is more efficient than nested correlated SELECT VALUE (§V-B)",
		Variants: []Variant{
			{Name: "group-as", DB: newEngine(false, false, data), Query: groupAs},
			{Name: "nested-subquery", DB: newEngine(false, false, data), Query: nested},
		},
	}
}

// CompatOverheadExperiment measures claim C1: the SQL-compatibility
// rewritings are compile-time only, so the same SQL query costs the same
// per row with the flag on or off.
func CompatOverheadExperiment(n int) Experiment {
	data := map[string]value.Value{"emp": FlatEmp(n, 10, 42)}
	q := `
		SELECT e.deptno, AVG(e.salary) AS avgsal, COUNT(*) AS cnt
		FROM emp AS e
		WHERE e.title = 'Engineer'
		GROUP BY e.deptno`
	return Experiment{
		ID:    fmt.Sprintf("C1/sql-query/N=%d", n),
		Claim: "SQL compatibility costs nothing at execution time",
		Variants: []Variant{
			{Name: "core-mode", DB: newEngine(false, false, data), Query: q},
			{Name: "compat-mode", DB: newEngine(true, false, data), Query: q},
		},
	}
}

// TypingModesExperiment measures claim C6: permissive typing keeps
// processing healthy data at a modest cost, while stop-on-error fails
// fast on dirty data.
func TypingModesExperiment(n, dirtyRate int) Experiment {
	clean := map[string]value.Value{"d": Dirty(n, 0, 42)}
	dirty := map[string]value.Value{"d": Dirty(n, dirtyRate, 42)}
	q := `SELECT r.id AS id, 2 * r.x AS double_x FROM d AS r`
	return Experiment{
		ID:    fmt.Sprintf("C6/typing-modes/N=%d/dirty=%d%%", n, dirtyRate),
		Claim: "permissive mode processes healthy data past type errors; stop-on-error fails fast",
		Variants: []Variant{
			{Name: "permissive-clean", DB: newEngine(false, false, clean), Query: q},
			{Name: "strict-clean", DB: newEngine(false, true, clean), Query: q},
			{Name: "permissive-dirty", DB: newEngine(false, false, dirty), Query: q},
			{Name: "strict-dirty", DB: newEngine(false, true, dirty), Query: q, ExpectError: true},
		},
	}
}

// NullMissingExperiment measures claim C3's performance corollary:
// missing-style data (Listing 7) is no slower to scan and project than
// null-style data (Listing 6).
func NullMissingExperiment(n int) Experiment {
	nullStyle := map[string]value.Value{
		"emp": HR(HROptions{N: n, ScalarProjects: true, AbsentTitleRate: 30, Seed: 42}),
	}
	missingStyle := map[string]value.Value{
		"emp": HR(HROptions{N: n, ScalarProjects: true, AbsentTitleRate: 30, MissingStyle: true, Seed: 42}),
	}
	q := `SELECT e.id, e.name AS emp_name, e.title AS title FROM emp AS e`
	return Experiment{
		ID:    fmt.Sprintf("C3/null-vs-missing/N=%d", n),
		Claim: "missing-style data is at least as cheap as null-style data",
		Variants: []Variant{
			{Name: "null-style", DB: newEngine(true, false, nullStyle), Query: q},
			{Name: "missing-style", DB: newEngine(true, false, missingStyle), Query: q},
		},
	}
}

// UnnestVsJoinExperiment is the first-class-nesting ablation: reading
// parent/child data as nested documents with left-correlated unnesting
// versus the normalized two-table form with an explicit join. The
// substrate executes joins as nested loops, so the join side scales
// quadratically — the shape, not the constant, is the point.
func UnnestVsJoinExperiment(n int) Experiment {
	nested := HR(HROptions{N: n, Seed: 42})
	emps, memberships := FlatEmpProjects(nested)
	nestedData := map[string]value.Value{"emp": nested}
	flatData := map[string]value.Value{"emp": emps, "membership": memberships}
	unnestQ := `
		SELECT e.name AS emp_name, p.name AS proj_name
		FROM emp AS e, e.projects AS p
		WHERE p.name LIKE '%Security%'`
	joinQ := `
		SELECT e.name AS emp_name, m.project AS proj_name
		FROM emp AS e JOIN membership AS m ON m.emp_id = e.id
		WHERE m.project LIKE '%Security%'`
	return Experiment{
		ID:    fmt.Sprintf("ablation/unnest-vs-join/N=%d", n),
		Claim: "first-class nesting avoids the join a normalized schema forces",
		Variants: []Variant{
			{Name: "nested-unnest", DB: newEngine(false, false, nestedData), Query: unnestQ},
			{Name: "flat-join", DB: newEngine(false, false, flatData), Query: joinQ},
		},
	}
}

// PivotUnpivotExperiment measures §VI's reshaping operators at scale:
// unpivoting a wide table into triples and pivoting it back.
func PivotUnpivotExperiment(days, symbols int) Experiment {
	wide := map[string]value.Value{"closing_prices": ClosingPrices(days, symbols, 42)}
	tall := map[string]value.Value{"stock_prices": StockPrices(days, symbols, 42)}
	unpivotQ := `
		SELECT c."date" AS "date", sym AS symbol, price AS price
		FROM closing_prices AS c, UNPIVOT c AS price AT sym
		WHERE NOT sym = 'date'`
	pivotQ := `
		SELECT sp."date" AS "date",
		       (PIVOT dp.sp.price AT dp.sp.symbol
		        FROM dates_prices AS dp) AS prices
		FROM stock_prices AS sp
		GROUP BY sp."date" GROUP AS dates_prices`
	return Experiment{
		ID:    fmt.Sprintf("L20+L26/pivot-unpivot/days=%d/symbols=%d", days, symbols),
		Claim: "attribute names convert to data and back at collection scale (§VI)",
		Variants: []Variant{
			{Name: "unpivot", DB: newEngine(false, false, wide), Query: unpivotQ},
			{Name: "pivot", DB: newEngine(false, false, tall), Query: pivotQ},
		},
	}
}

// HashJoinExperiment measures the physical layer's equi-join rewrite:
// an uncorrelated equi-join of two n-element collections runs as a
// nested loop (O(n^2) predicate evaluations) on the naive pipeline and
// as a build/probe hash join (O(n)) with the optimizer on. Both comma
// syntax (WHERE carries the equi-conjunct) and explicit JOIN ... ON are
// measured; parallelism is pinned to 1 so the gap is the join algorithm
// alone.
func HashJoinExperiment(n int) Experiment {
	data := map[string]value.Value{
		"emp":  FlatEmp(n, n, 42),
		"dept": Departments(n, 42),
	}
	comma := `
		SELECT e.name AS emp_name, d.name AS dept_name
		FROM emp AS e, dept AS d
		WHERE e.deptno = d.dno`
	joinOn := `
		SELECT e.name AS emp_name, d.name AS dept_name
		FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`
	seq := sqlpp.Options{Parallelism: 1}
	return Experiment{
		ID:    fmt.Sprintf("phys/hash-join/N=%d", n),
		Claim: "uncorrelated equi-joins run as hash build/probe instead of nested loops",
		Variants: []Variant{
			{Name: "naive-nested-loop", DB: newEngineOpts(naiveOpts, data), Query: comma},
			{Name: "hash-comma", DB: newEngineOpts(seq, data), Query: comma},
			{Name: "hash-join-on", DB: newEngineOpts(seq, data), Query: joinOn},
		},
	}
}

// PushdownExperiment measures predicate pushdown in isolation: a
// selective filter on the outer variable of a correlated unnest. The
// naive pipeline unnests every employee's projects and filters the
// joined rows; with pushdown the filter runs before the unnest, so
// filtered-out employees never pay for it. The inner source is
// correlated, so no hash join can fire — the gap is pushdown alone.
func PushdownExperiment(n int) Experiment {
	data := map[string]value.Value{
		"emp": HR(HROptions{N: n, Seed: 42}),
	}
	q := fmt.Sprintf(`
		SELECT e.name AS emp_name, p.name AS proj_name
		FROM emp AS e, e.projects AS p
		WHERE e.id <= %d`, n/20)
	return Experiment{
		ID:    fmt.Sprintf("phys/pushdown/N=%d", n),
		Claim: "WHERE conjuncts apply at the earliest FROM-chain point they can",
		Variants: []Variant{
			{Name: "naive-late-filter", DB: newEngineOpts(naiveOpts, data), Query: q},
			{Name: "pushdown", DB: newEngineOpts(sqlpp.Options{Parallelism: 1}, data), Query: q},
		},
	}
}

// ParallelScanExperiment measures the partitioned outer scan: a
// grouped aggregation over a large flat collection, sequential versus
// the worker-pool scan. The "parallel" variant uses Parallelism 0
// (= GOMAXPROCS), so on a single-core host it falls back to sequential
// by design; "parallel-4" forces four workers regardless, which
// measures the partition/merge overhead there and the full win on
// multicore. Results are byte-identical in every variant.
func ParallelScanExperiment(n int) Experiment {
	data := map[string]value.Value{"emp": FlatEmp(n, 100, 42)}
	q := `
		SELECT e.deptno, AVG(e.salary) AS avgsal, COUNT(*) AS cnt
		FROM emp AS e
		WHERE e.salary > 60000
		GROUP BY e.deptno`
	return Experiment{
		ID:    fmt.Sprintf("phys/parallel-scan/N=%d", n),
		Claim: "the outermost scan partitions across a worker pool with a deterministic merge",
		Variants: []Variant{
			{Name: "sequential", DB: newEngineOpts(sqlpp.Options{Parallelism: 1}, data), Query: q},
			{Name: "parallel", DB: newEngineOpts(sqlpp.Options{Parallelism: 0}, data), Query: q},
			{Name: "parallel-4", DB: newEngineOpts(sqlpp.Options{Parallelism: 4}, data), Query: q},
		},
	}
}

// PhysicalExperiments returns the physical-optimization experiment set
// (the BENCH_joins.json artifact) at the given scale factor.
func PhysicalExperiments(scale int) []Experiment {
	if scale < 1 {
		scale = 1
	}
	return []Experiment{
		HashJoinExperiment(1000 * scale),
		PushdownExperiment(5000 * scale),
		ParallelScanExperiment(200000 * scale),
	}
}

// FormatPayload carries one dataset encoded in every supported format,
// for the format-independence experiment (C5).
type FormatPayload struct {
	SION []byte
	JSON []byte
	CBOR []byte
	CSV  []byte
}

// BuildFormatPayload encodes the tall stock dataset in all formats.
func BuildFormatPayload(days, symbols int) (FormatPayload, error) {
	data := StockPrices(days, symbols, 42)
	var p FormatPayload
	p.SION = []byte(data.String())
	js, err := datafmt.JSONString(data)
	if err != nil {
		return p, err
	}
	p.JSON = []byte(js)
	cb, err := datafmt.EncodeCBOR(data)
	if err != nil {
		return p, err
	}
	p.CBOR = cb
	var csvBuf bytes.Buffer
	if err := datafmt.EncodeCSV(&csvBuf, data); err != nil {
		return p, err
	}
	p.CSV = csvBuf.Bytes()
	return p, nil
}

// DecodeFormat decodes one payload format back into the data model.
func DecodeFormat(p FormatPayload, format string) (value.Value, error) {
	switch format {
	case "sion":
		return sqlpp.ParseValue(string(p.SION))
	case "json":
		return datafmt.DecodeJSONBag(bytes.NewReader(p.JSON))
	case "cbor":
		return datafmt.DecodeCBOR(p.CBOR)
	case "csv":
		return datafmt.DecodeCSV(strings.NewReader(string(p.CSV)), datafmt.CSVOptions{})
	}
	return nil, fmt.Errorf("bench: unknown format %q", format)
}

// StandardExperiments returns the full performance-experiment set at the
// given scale factor (1 = the defaults used in EXPERIMENTS.md).
func StandardExperiments(scale int) []Experiment {
	if scale < 1 {
		scale = 1
	}
	var out []Experiment
	// The nested-subquery baseline is O(N^2) — that gap is the claim —
	// so its sweep stays modest to keep the harness interactive.
	for _, n := range []int{100 * scale, 300 * scale, 1000 * scale} {
		out = append(out, GroupAsExperiment(n))
	}
	out = append(out,
		CompatOverheadExperiment(10000*scale),
		TypingModesExperiment(10000*scale, 20),
		NullMissingExperiment(10000*scale),
		UnnestVsJoinExperiment(300*scale),
		PivotUnpivotExperiment(100*scale, 50),
	)
	return out
}
