// Package bench generates the deterministic synthetic workloads behind
// the benchmark harness: scalable versions of the paper's HR and stock
// datasets in their nested, flat, null-style, missing-style, and dirty
// (heterogeneous) shapes. All generators are pure functions of their
// arguments — the same inputs always produce the same data, so benchmark
// runs are reproducible.
package bench

import (
	"fmt"
	"math/rand"

	"sqlpp/internal/value"
)

// projectPool is the project-name vocabulary; about half the names
// contain "Security" so the paper's LIKE '%Security%' queries select a
// meaningful fraction.
var projectPool = []string{
	"Serverless Query", "OLAP Security", "OLTP Security",
	"Query Compiler", "Index Security", "Storage Engine",
	"Network Security", "Cloud Console", "Data Security",
	"Stream Runtime",
}

var titles = []string{"Engineer", "Manager", "Analyst", "Chief Architect"}

var nameFirst = []string{"Bob", "Susan", "Jane", "Ada", "Grace", "Alan", "Edgar", "Barbara"}
var nameLast = []string{"Smith", "Codd", "Hopper", "Turing", "Liskov", "Gray"}

func personName(r *rand.Rand, id int) string {
	return fmt.Sprintf("%s %s %d", nameFirst[r.Intn(len(nameFirst))], nameLast[r.Intn(len(nameLast))], id)
}

// HROptions shapes the generated employee collection.
type HROptions struct {
	// N is the number of employees.
	N int
	// ScalarProjects nests projects as arrays of strings (Listing 3)
	// instead of arrays of {'name': ...} tuples (Listing 1).
	ScalarProjects bool
	// MissingStyle drops absent titles entirely (Listing 7 style)
	// instead of writing null (Listing 6 style).
	MissingStyle bool
	// AbsentTitleRate is the fraction of employees without a title,
	// in percent (0..100).
	AbsentTitleRate int
	// MaxProjects bounds the nested project count per employee; 0 means
	// the default of 4.
	MaxProjects int
	// Seed varies the data; the same seed reproduces it.
	Seed int64
}

// HR generates a nested employee bag in the shape of the paper's
// hr.emp_nest_tuples / hr.emp_nest_scalars collections.
func HR(opts HROptions) value.Bag {
	r := rand.New(rand.NewSource(opts.Seed + 1))
	maxProjects := opts.MaxProjects
	if maxProjects == 0 {
		maxProjects = 4
	}
	out := make(value.Bag, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		t := value.EmptyTuple()
		t.Put("id", value.Int(int64(i+1)))
		t.Put("name", value.String(personName(r, i+1)))
		if r.Intn(100) < opts.AbsentTitleRate {
			if !opts.MissingStyle {
				t.Put("title", value.Null)
			}
		} else {
			t.Put("title", value.String(titles[r.Intn(len(titles))]))
		}
		nProj := r.Intn(maxProjects + 1)
		projects := make(value.Array, 0, nProj)
		for p := 0; p < nProj; p++ {
			name := projectPool[r.Intn(len(projectPool))]
			if opts.ScalarProjects {
				projects = append(projects, value.String(name))
			} else {
				pt := value.EmptyTuple()
				pt.Put("name", value.String(name))
				projects = append(projects, pt)
			}
		}
		t.Put("projects", projects)
		out = append(out, t)
	}
	return out
}

// FlatEmp generates the flat hr.emp table of §V-C: name, deptno, title,
// salary over the requested number of departments.
func FlatEmp(n, depts int, seed int64) value.Bag {
	r := rand.New(rand.NewSource(seed + 2))
	if depts < 1 {
		depts = 1
	}
	out := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := value.EmptyTuple()
		t.Put("name", value.String(personName(r, i+1)))
		t.Put("deptno", value.Int(int64(r.Intn(depts)+1)))
		t.Put("title", value.String(titles[r.Intn(len(titles))]))
		t.Put("salary", value.Int(int64(50000+r.Intn(150000))))
		out = append(out, t)
	}
	return out
}

// Departments generates a dept table {dno, name, budget} with one row
// per department number, pairing with FlatEmp's deptno for equi-joins.
func Departments(n int, seed int64) value.Bag {
	r := rand.New(rand.NewSource(seed + 3))
	out := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := value.EmptyTuple()
		t.Put("dno", value.Int(int64(i+1)))
		t.Put("name", value.String(fmt.Sprintf("Dept %d", i+1)))
		t.Put("budget", value.Int(int64(100000+r.Intn(900000))))
		out = append(out, t)
	}
	return out
}

// FlatEmpProjects flattens the nested HR data into the join-table shape
// a SQL database would use: one (emp_id, project) row per membership.
// It pairs with HR for the unnest-versus-join comparison.
func FlatEmpProjects(nested value.Bag) (emps, memberships value.Bag) {
	emps = make(value.Bag, 0, len(nested))
	for _, e := range nested {
		t := e.(*value.Tuple)
		flat := value.EmptyTuple()
		for _, f := range t.Fields() {
			if f.Name == "projects" {
				continue
			}
			flat.Put(f.Name, f.Value)
		}
		emps = append(emps, flat)
		id, _ := t.Get("id")
		projects, _ := t.Get("projects")
		if elems, ok := value.Elements(projects); ok {
			for _, p := range elems {
				m := value.EmptyTuple()
				m.Put("emp_id", id)
				switch pv := p.(type) {
				case *value.Tuple:
					name, _ := pv.Get("name")
					m.Put("project", name)
				default:
					m.Put("project", p)
				}
				memberships = append(memberships, m)
			}
		}
	}
	return emps, memberships
}

// StockSymbols returns n deterministic ticker symbols.
func StockSymbols(n int) []string {
	base := []string{"amzn", "goog", "fb", "aapl", "msft", "nflx", "ibm", "orcl"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			out = append(out, base[i])
			continue
		}
		out = append(out, fmt.Sprintf("t%03d", i))
	}
	return out
}

// ClosingPrices generates the wide (pivoted) format of Listing 19: one
// tuple per day whose attribute names are ticker symbols.
func ClosingPrices(days, symbols int, seed int64) value.Bag {
	r := rand.New(rand.NewSource(seed + 3))
	syms := StockSymbols(symbols)
	out := make(value.Bag, 0, days)
	for d := 0; d < days; d++ {
		t := value.EmptyTuple()
		t.Put("date", value.String(dateString(d)))
		for _, s := range syms {
			t.Put(s, value.Int(int64(100+r.Intn(2000))))
		}
		out = append(out, t)
	}
	return out
}

// StockPrices generates the tall (unpivoted) format of Listing 27: one
// (date, symbol, price) tuple per observation.
func StockPrices(days, symbols int, seed int64) value.Bag {
	r := rand.New(rand.NewSource(seed + 4))
	syms := StockSymbols(symbols)
	out := make(value.Bag, 0, days*symbols)
	for d := 0; d < days; d++ {
		date := value.String(dateString(d))
		for _, s := range syms {
			t := value.EmptyTuple()
			t.Put("date", date)
			t.Put("symbol", value.String(s))
			t.Put("price", value.Int(int64(100+r.Intn(2000))))
			out = append(out, t)
		}
	}
	return out
}

func dateString(day int) string {
	// A simple synthetic calendar: 30-day months, 12-month years.
	y := 2019 + day/360
	m := (day/30)%12 + 1
	d := day%30 + 1
	return fmt.Sprintf("%d/%d/%d", m, d, y)
}

// Dirty generates a heterogeneous collection for the typing-mode
// experiments: each tuple has an id and an x attribute whose type varies
// — integer (healthy), string, array, null, or absent — with dirtyRate
// percent of rows non-integer.
func Dirty(n, dirtyRate int, seed int64) value.Bag {
	r := rand.New(rand.NewSource(seed + 5))
	out := make(value.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := value.EmptyTuple()
		t.Put("id", value.Int(int64(i+1)))
		if r.Intn(100) >= dirtyRate {
			t.Put("x", value.Int(int64(r.Intn(1000))))
		} else {
			switch r.Intn(4) {
			case 0:
				t.Put("x", value.String("not a number"))
			case 1:
				t.Put("x", value.Array{value.Int(1), value.Int(2)})
			case 2:
				t.Put("x", value.Null)
			case 3:
				// absent entirely
			}
		}
		out = append(out, t)
	}
	return out
}
