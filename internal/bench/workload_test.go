package bench

import (
	"testing"

	"sqlpp/internal/value"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := HR(HROptions{N: 50, ScalarProjects: true, AbsentTitleRate: 30, Seed: 1})
	b := HR(HROptions{N: 50, ScalarProjects: true, AbsentTitleRate: 30, Seed: 1})
	if !value.Equivalent(a, b) {
		t.Error("HR generator must be deterministic for a fixed seed")
	}
	c := HR(HROptions{N: 50, ScalarProjects: true, AbsentTitleRate: 30, Seed: 2})
	if value.Equivalent(a, c) {
		t.Error("different seeds should differ")
	}
	if !value.Equivalent(FlatEmp(20, 3, 7), FlatEmp(20, 3, 7)) {
		t.Error("FlatEmp must be deterministic")
	}
	if !value.Equivalent(StockPrices(5, 4, 7), StockPrices(5, 4, 7)) {
		t.Error("StockPrices must be deterministic")
	}
}

func TestHRShapes(t *testing.T) {
	tuples := HR(HROptions{N: 30, Seed: 3, AbsentTitleRate: 100})
	if len(tuples) != 30 {
		t.Fatalf("N = %d", len(tuples))
	}
	for _, e := range tuples {
		tup := e.(*value.Tuple)
		// Null-style: absent titles are nulls.
		title, present := tup.Get("title")
		if !present || title.Kind() != value.KindNull {
			t.Fatalf("null-style title = %v (present=%v)", title, present)
		}
		projects, _ := tup.Get("projects")
		elems, ok := value.Elements(projects)
		if !ok {
			t.Fatal("projects should be a collection")
		}
		for _, p := range elems {
			if _, ok := p.(*value.Tuple); !ok {
				t.Fatal("tuple-style projects expected")
			}
		}
	}
	missing := HR(HROptions{N: 30, Seed: 3, AbsentTitleRate: 100, MissingStyle: true, ScalarProjects: true})
	for _, e := range missing {
		tup := e.(*value.Tuple)
		if _, present := tup.Get("title"); present {
			t.Fatal("missing-style should omit the title attribute")
		}
	}
}

func TestFlatEmpProjects(t *testing.T) {
	nested := HR(HROptions{N: 40, Seed: 5})
	emps, memberships := FlatEmpProjects(nested)
	if len(emps) != 40 {
		t.Fatalf("emps = %d", len(emps))
	}
	// Membership count equals total nested project count.
	total := 0
	for _, e := range nested {
		projects, _ := e.(*value.Tuple).Get("projects")
		elems, _ := value.Elements(projects)
		total += len(elems)
	}
	if len(memberships) != total {
		t.Errorf("memberships = %d, want %d", len(memberships), total)
	}
	// Flat employees carry no projects attribute.
	for _, e := range emps {
		if _, ok := e.(*value.Tuple).Get("projects"); ok {
			t.Fatal("flat employees should not embed projects")
		}
	}
}

func TestDirtyRates(t *testing.T) {
	clean := Dirty(200, 0, 1)
	for _, e := range clean {
		x, present := e.(*value.Tuple).Get("x")
		if !present || x.Kind() != value.KindInt {
			t.Fatal("0% dirty data must be all integers")
		}
	}
	dirty := Dirty(400, 50, 1)
	nonInt := 0
	for _, e := range dirty {
		if x, present := e.(*value.Tuple).Get("x"); !present || x.Kind() != value.KindInt {
			nonInt++
		}
	}
	if nonInt < 120 || nonInt > 280 {
		t.Errorf("50%% dirty rate produced %d/400 dirty rows", nonInt)
	}
}

func TestStockGenerators(t *testing.T) {
	wide := ClosingPrices(3, 4, 1)
	if len(wide) != 3 {
		t.Fatalf("days = %d", len(wide))
	}
	// Each wide row: date + one attribute per symbol.
	if wide[0].(*value.Tuple).Len() != 5 {
		t.Errorf("wide row fields = %d", wide[0].(*value.Tuple).Len())
	}
	tall := StockPrices(3, 4, 1)
	if len(tall) != 12 {
		t.Errorf("tall rows = %d", len(tall))
	}
	syms := StockSymbols(10)
	if len(syms) != 10 || syms[0] != "amzn" || syms[9] != "t009" {
		t.Errorf("symbols = %v", syms)
	}
}

// The two GROUP AS experiment formulations must agree on results — the
// benchmark compares equivalent queries or it compares nothing.
func TestGroupAsVariantsAgree(t *testing.T) {
	exp := GroupAsExperiment(60)
	a, err := exp.Variants[0].DB.Query(exp.Variants[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.Variants[1].DB.Query(exp.Variants[1].Query)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(a, b) {
		t.Errorf("GROUP AS and nested-subquery formulations disagree:\n  %s\n  %s", a, b)
	}
}

func TestUnnestVsJoinVariantsAgree(t *testing.T) {
	exp := UnnestVsJoinExperiment(50)
	a, err := exp.Variants[0].DB.Query(exp.Variants[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.Variants[1].DB.Query(exp.Variants[1].Query)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(a, b) {
		t.Errorf("unnest and join formulations disagree")
	}
}

func TestCompatVariantsAgree(t *testing.T) {
	exp := CompatOverheadExperiment(500)
	a, err := exp.Variants[0].DB.Query(exp.Variants[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.Variants[1].DB.Query(exp.Variants[1].Query)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(a, b) {
		t.Error("the SQL query must give the same result in both modes (claim C1)")
	}
}

func TestFormatPayloadEquivalence(t *testing.T) {
	p, err := BuildFormatPayload(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := DecodeFormat(p, "sion")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"json", "cbor", "csv"} {
		v, err := DecodeFormat(p, f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !value.Equivalent(ref, v) {
			t.Errorf("%s decoding differs from sion", f)
		}
	}
	if _, err := DecodeFormat(p, "nope"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestPivotUnpivotExperimentRuns(t *testing.T) {
	exp := PivotUnpivotExperiment(5, 4)
	for _, v := range exp.Variants {
		if _, err := v.Run(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
}

func TestTypingModesExperimentShape(t *testing.T) {
	exp := TypingModesExperiment(200, 30)
	for _, v := range exp.Variants {
		_, err := v.Run()
		if v.ExpectError && err == nil {
			t.Errorf("%s should fail", v.Name)
		}
		if !v.ExpectError && err != nil {
			t.Errorf("%s failed: %v", v.Name, err)
		}
	}
}

func TestNullMissingExperimentAgree(t *testing.T) {
	// Under the C3 guarantee (compat mode), the two styles agree up to
	// dropped null attributes; spot-check row counts.
	exp := NullMissingExperiment(300)
	a, err := exp.Variants[0].DB.Query(exp.Variants[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exp.Variants[1].DB.Query(exp.Variants[1].Query)
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := value.Elements(a)
	eb, _ := value.Elements(b)
	if len(ea) != len(eb) {
		t.Errorf("row counts differ: %d vs %d", len(ea), len(eb))
	}
}
