// Package catalog manages SQL++ named values: top-level bindings of
// (possibly dotted/namespaced) identifiers to values, as in the paper's
// hr.emp_nest_tuples. It is safe for concurrent readers with exclusive
// writers, matching the read-mostly usage of a query engine.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sqlpp/internal/value"
)

// Catalog is a set of named values. The zero value is not usable; call
// New.
type Catalog struct {
	mu    sync.RWMutex
	named map[string]value.Value
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{named: make(map[string]value.Value)}
}

// Register binds name (which may be dotted, e.g. "hr.emp") to v,
// replacing any existing binding. A nil value panics: the data plane is
// nil-free.
func (c *Catalog) Register(name string, v value.Value) error {
	if v == nil {
		panic("catalog: nil value for " + name)
	}
	if name == "" {
		return fmt.Errorf("catalog: empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.named[name] = v
	return nil
}

// Drop removes a named value; dropping an unknown name is a no-op.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.named, name)
}

// LookupValue implements eval.NameSource.
func (c *Catalog) LookupValue(name string) (value.Value, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.named[name]
	return v, ok
}

// HasName reports whether name is registered; the resolver uses it to
// match dotted identifier chains.
func (c *Catalog) HasName(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.named[name]
	return ok
}

// Names returns all registered names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.named))
	for n := range c.named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Namespaces returns the distinct dotted prefixes in use (e.g. "hr" for
// "hr.emp"), sorted; useful for CLI completion and listing.
func (c *Catalog) Namespaces() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for n := range c.named {
		if i := strings.LastIndex(n, "."); i > 0 {
			seen[n[:i]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
