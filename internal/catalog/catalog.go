// Package catalog manages SQL++ named values: top-level bindings of
// (possibly dotted/namespaced) identifiers to values, as in the paper's
// hr.emp_nest_tuples. It is safe for concurrent readers with exclusive
// writers, matching the read-mostly usage of a query engine.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sqlpp/internal/eval"
	"sqlpp/internal/index"
	"sqlpp/internal/stats"
	"sqlpp/internal/value"
)

// ShardMeta records how a collection is partitioned across a
// coordinator's shards. It lives in the catalog so topology changes
// bump the epoch — every plan fingerprint that folds the epoch in
// (server plan cache, coordinator scatter-plan cache) invalidates
// automatically when a collection is distributed or re-distributed.
type ShardMeta struct {
	// Kind is "range" or "hash".
	Kind string
	// Key is the hash key path ("" for range).
	Key string
	// Shards is the shard count the collection was partitioned into.
	Shards int
}

// Catalog is a set of named values plus the secondary indexes and
// statistics declared over them. The zero value is not usable; call New.
type Catalog struct {
	mu      sync.RWMutex
	named   map[string]value.Value
	indexes map[string]*index.Index      // by index name
	byColl  map[string][]string          // collection name -> sorted index names
	stats   map[string]*stats.Collection // collection name -> statistics snapshot
	shards  map[string]ShardMeta         // collection name -> shard topology

	// epoch counts catalog mutations. The server folds it into plan
	// fingerprints so plans compiled before an index existed (or before
	// its collection or statistics changed) cannot be replayed after.
	epoch atomic.Int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		named:   make(map[string]value.Value),
		indexes: make(map[string]*index.Index),
		byColl:  make(map[string][]string),
		stats:   make(map[string]*stats.Collection),
		shards:  make(map[string]ShardMeta),
	}
}

// Register binds name (which may be dotted, e.g. "hr.emp") to v,
// replacing any existing binding. A nil value panics: the data plane is
// nil-free.
//
// Indexes declared over name are rebuilt against the new value so they
// can never serve positions from a stale snapshot. If v is not a
// collection, or a rebuild fails, the affected indexes are dropped and
// the first rebuild error is returned — the binding itself always takes
// effect, and queries fall back to scans, so results stay correct.
func (c *Catalog) Register(name string, v value.Value) error {
	if v == nil {
		panic("catalog: nil value for " + name)
	}
	if name == "" {
		return fmt.Errorf("catalog: empty name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.named[name] = v
	c.epoch.Add(1)
	// Statistics are advisory: a failed build (resource budget, injected
	// fault) drops them and planning falls back to heuristics, never
	// failing the registration itself.
	if st, err := stats.Build(v, nil); err == nil {
		c.stats[name] = st
	} else {
		delete(c.stats, name)
	}
	var firstErr error
	for _, iname := range append([]string(nil), c.byColl[name]...) {
		ix := c.indexes[iname]
		nx, err := index.Build(ix.Spec(), v, nil)
		if err != nil {
			c.dropIndexLocked(iname)
			if firstErr == nil {
				firstErr = fmt.Errorf("catalog: rebuilding index %s: %w", iname, err)
			}
			continue
		}
		c.indexes[iname] = nx
	}
	return firstErr
}

// Append adds elems to the collection bound to name (preserving its
// array/bag kind) and extends its indexes incrementally instead of
// rebuilding them. An index whose extension fails is dropped and the
// first error returned; the appended value always takes effect.
func (c *Catalog) Append(name string, elems []value.Value, gov *eval.Governor) error {
	if len(elems) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.named[name]
	if !ok {
		return fmt.Errorf("catalog: append to unknown name %q", name)
	}
	old, ok := value.Elements(cur)
	if !ok {
		return fmt.Errorf("catalog: append to %q: %v is not a collection", name, cur.Kind())
	}
	merged := make([]value.Value, 0, len(old)+len(elems))
	merged = append(merged, old...)
	merged = append(merged, elems...)
	var nv value.Value
	if cur.Kind() == value.KindArray {
		nv = value.Array(merged)
	} else {
		nv = value.Bag(merged)
	}
	c.named[name] = nv
	c.epoch.Add(1)
	// Extend statistics copy-on-write, like indexes. The extend charges
	// gov at the "stats-build" site; on failure the statistics are
	// dropped (planning falls back to heuristics) and the append itself
	// still takes effect.
	if st, ok := c.stats[name]; ok {
		if nst, err := st.Extended(elems, gov); err == nil {
			c.stats[name] = nst
		} else {
			delete(c.stats, name)
		}
	}
	var firstErr error
	for _, iname := range append([]string(nil), c.byColl[name]...) {
		nx, err := c.indexes[iname].Extended(nv, elems, gov)
		if err != nil {
			c.dropIndexLocked(iname)
			if firstErr == nil {
				firstErr = fmt.Errorf("catalog: extending index %s: %w", iname, err)
			}
			continue
		}
		c.indexes[iname] = nx
	}
	return firstErr
}

// Drop removes a named value and any indexes over it; dropping an
// unknown name is a no-op.
func (c *Catalog) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.named, name)
	delete(c.stats, name)
	delete(c.shards, name)
	for _, iname := range append([]string(nil), c.byColl[name]...) {
		c.dropIndexLocked(iname)
	}
	c.epoch.Add(1)
}

// StatsFor returns the current statistics snapshot for a registered
// collection, or nil when none exist (stats build failed, or the name
// is unknown). Snapshots are immutable; the caller may hold one across
// the lock. It implements the planner's stats source.
func (c *Catalog) StatsFor(name string) *stats.Collection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats[name]
}

// LookupValue implements eval.NameSource.
func (c *Catalog) LookupValue(name string) (value.Value, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.named[name]
	return v, ok
}

// HasName reports whether name is registered; the resolver uses it to
// match dotted identifier chains.
func (c *Catalog) HasName(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.named[name]
	return ok
}

// Names returns all registered names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.named))
	for n := range c.named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Namespaces returns the distinct dotted prefixes in use (e.g. "hr" for
// "hr.emp"), sorted; useful for CLI completion and listing.
func (c *Catalog) Namespaces() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for n := range c.named {
		if i := strings.LastIndex(n, "."); i > 0 {
			seen[n[:i]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Epoch returns the catalog mutation counter.
func (c *Catalog) Epoch() int64 { return c.epoch.Load() }

// SetShardMeta records the shard topology of a distributed collection
// and bumps the epoch, invalidating cached plans that predate the
// distribution. Shards < 1 is rejected.
func (c *Catalog) SetShardMeta(name string, m ShardMeta) error {
	if name == "" {
		return fmt.Errorf("catalog: empty name")
	}
	if m.Shards < 1 {
		return fmt.Errorf("catalog: shard meta for %q: %d shards", name, m.Shards)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards[name] = m
	c.epoch.Add(1)
	return nil
}

// ShardMetaFor reports the shard topology recorded for name.
func (c *Catalog) ShardMetaFor(name string) (ShardMeta, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.shards[name]
	return m, ok
}

// ShardMetas returns all recorded shard topologies, keyed by collection
// name, sorted iteration being the caller's concern.
func (c *Catalog) ShardMetas() map[string]ShardMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]ShardMeta, len(c.shards))
	for k, v := range c.shards {
		out[k] = v
	}
	return out
}

// CreateIndex builds spec over its (already registered) collection and
// installs it. gov, when non-nil, bounds the build's memory.
func (c *Catalog) CreateIndex(spec index.Spec, gov *eval.Governor) error {
	if spec.Name == "" {
		return fmt.Errorf("catalog: empty index name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.indexes[spec.Name]; dup {
		return fmt.Errorf("catalog: index %q already exists", spec.Name)
	}
	src, ok := c.named[spec.Collection]
	if !ok {
		return fmt.Errorf("catalog: index %q: unknown collection %q", spec.Name, spec.Collection)
	}
	ix, err := index.Build(spec, src, gov)
	if err != nil {
		return err
	}
	c.indexes[spec.Name] = ix
	names := append(c.byColl[spec.Collection], spec.Name)
	sort.Strings(names)
	c.byColl[spec.Collection] = names
	c.epoch.Add(1)
	return nil
}

// DropIndex removes an index by name, reporting whether it existed.
func (c *Catalog) DropIndex(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return false
	}
	c.dropIndexLocked(name)
	c.epoch.Add(1)
	return true
}

// dropIndexLocked removes an index under the write lock.
func (c *Catalog) dropIndexLocked(name string) {
	ix, ok := c.indexes[name]
	if !ok {
		return
	}
	delete(c.indexes, name)
	coll := ix.Spec().Collection
	names := c.byColl[coll]
	for i, n := range names {
		if n == name {
			c.byColl[coll] = append(names[:i:i], names[i+1:]...)
			break
		}
	}
	if len(c.byColl[coll]) == 0 {
		delete(c.byColl, coll)
	}
}

// Indexes returns all installed indexes, sorted by name.
func (c *Catalog) Indexes() []*index.Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.indexes))
	for n := range c.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*index.Index, len(names))
	for i, n := range names {
		out[i] = c.indexes[n]
	}
	return out
}

// LookupIndex resolves an index by name; the plan runtime uses it (via
// an interface assertion on eval.NameSource) to bind a planned index
// choice to the current snapshot at execution time.
func (c *Catalog) LookupIndex(name string) (*index.Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	return ix, ok
}

// IndexFor reports an index over collection keyed by path, preferring
// the cheapest kind that supports the probe: hash for pure equality,
// ordered otherwise. Ties break to the lexicographically smallest name
// so planning is deterministic.
func (c *Catalog) IndexFor(collection string, path []string, needOrdered bool) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best := ""
	bestOrdered := false
	for _, name := range c.byColl[collection] {
		ix := c.indexes[name]
		sp := ix.Spec()
		if !pathEqual(sp.Path, path) {
			continue
		}
		ordered := sp.Kind == index.Ordered
		if needOrdered && !ordered {
			continue
		}
		switch {
		case best == "":
		case !needOrdered && bestOrdered && !ordered:
			// A hash index beats an ordered one for equality probes.
		default:
			continue
		}
		best, bestOrdered = name, ordered
	}
	return best, best != ""
}

// pathEqual compares key paths step-wise.
func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
