package catalog_test

import (
	"testing"

	"sqlpp/internal/catalog"
	"sqlpp/internal/index"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func spec(name, coll, path string, kind index.Kind) index.Spec {
	return index.Spec{Name: name, Collection: coll, Path: []string{path}, Kind: kind}
}

// TestCatalogIndexLifecycle: create, lookup, list, drop, and the
// duplicate/unknown error paths.
func TestCatalogIndexLifecycle(t *testing.T) {
	c := catalog.New()
	if err := c.Register("emp", sion.MustParse(`{{ {'id': 1}, {'id': 2} }}`)); err != nil {
		t.Fatal(err)
	}

	if err := c.CreateIndex(spec("ix", "emp", "id", index.Hash), nil); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if err := c.CreateIndex(spec("ix", "emp", "id", index.Hash), nil); err == nil {
		t.Error("duplicate index name accepted")
	}
	if err := c.CreateIndex(spec("ix2", "nope", "id", index.Hash), nil); err == nil {
		t.Error("index over unknown collection accepted")
	}

	ix, ok := c.LookupIndex("ix")
	if !ok || ix.Spec().Name != "ix" || ix.Len() != 2 {
		t.Fatalf("LookupIndex: ok=%v ix=%+v", ok, ix)
	}
	if got := len(c.Indexes()); got != 1 {
		t.Errorf("Indexes() = %d entries, want 1", got)
	}

	if !c.DropIndex("ix") {
		t.Error("DropIndex returned false for a live index")
	}
	if c.DropIndex("ix") {
		t.Error("DropIndex returned true for a dropped index")
	}
	if _, ok := c.LookupIndex("ix"); ok {
		t.Error("dropped index still resolvable")
	}
}

// TestCatalogEpochBumps: every mutation that can invalidate a plan
// bumps the epoch — registrations, appends, drops, and index DDL.
func TestCatalogEpochBumps(t *testing.T) {
	c := catalog.New()
	last := c.Epoch()
	step := func(what string) {
		t.Helper()
		if now := c.Epoch(); now <= last {
			t.Errorf("%s did not bump the epoch (%d -> %d)", what, last, now)
		} else {
			last = now
		}
	}

	if err := c.Register("emp", sion.MustParse(`{{ {'id': 1} }}`)); err != nil {
		t.Fatal(err)
	}
	step("Register")
	if err := c.CreateIndex(spec("ix", "emp", "id", index.Hash), nil); err != nil {
		t.Fatal(err)
	}
	step("CreateIndex")
	if err := c.Append("emp", []value.Value{sion.MustParse(`{'id': 2}`)}, nil); err != nil {
		t.Fatal(err)
	}
	step("Append")
	c.DropIndex("ix")
	step("DropIndex")
	c.Drop("emp")
	step("Drop")
}

// TestIndexForPreference: equality probes prefer hash over ordered on
// the same path; range probes only ever get ordered indexes.
func TestIndexForPreference(t *testing.T) {
	c := catalog.New()
	if err := c.Register("emp", sion.MustParse(`{{ {'id': 1, 'dept': 2} }}`)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(spec("ord", "emp", "id", index.Ordered), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(spec("hsh", "emp", "id", index.Hash), nil); err != nil {
		t.Fatal(err)
	}

	if name, ok := c.IndexFor("emp", []string{"id"}, false); !ok || name != "hsh" {
		t.Errorf("equality IndexFor = %q,%v; want hsh (hash preferred)", name, ok)
	}
	if name, ok := c.IndexFor("emp", []string{"id"}, true); !ok || name != "ord" {
		t.Errorf("range IndexFor = %q,%v; want ord", name, ok)
	}
	if _, ok := c.IndexFor("emp", []string{"dept"}, false); ok {
		t.Error("IndexFor matched a path with no index")
	}
	if _, ok := c.IndexFor("nope", []string{"id"}, false); ok {
		t.Error("IndexFor matched an unknown collection")
	}

	c.DropIndex("hsh")
	if name, ok := c.IndexFor("emp", []string{"id"}, false); !ok || name != "ord" {
		t.Errorf("equality IndexFor after hash drop = %q,%v; want ord (ordered serves equality)", name, ok)
	}
	c.DropIndex("ord")
	if _, ok := c.IndexFor("emp", []string{"id"}, false); ok {
		t.Error("IndexFor matched after all indexes dropped")
	}
}

// TestRegisterRebuildsIndexes: re-registering a collection rebuilds
// its indexes over the new snapshot; registering a non-collection in
// its place drops them rather than leaving stale indexes behind.
func TestRegisterRebuildsIndexes(t *testing.T) {
	c := catalog.New()
	if err := c.Register("emp", sion.MustParse(`{{ {'id': 1} }}`)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(spec("ix", "emp", "id", index.Hash), nil); err != nil {
		t.Fatal(err)
	}

	if err := c.Register("emp", sion.MustParse(`{{ {'id': 7}, {'id': 7}, {'id': 8} }}`)); err != nil {
		t.Fatal(err)
	}
	ix, ok := c.LookupIndex("ix")
	if !ok {
		t.Fatal("index vanished on re-register")
	}
	if ix.Len() != 3 {
		t.Errorf("rebuilt index covers %d elements, want 3", ix.Len())
	}
	if got := ix.Lookup(value.Int(7)); len(got) != 2 {
		t.Errorf("rebuilt Lookup(7) = %v, want two positions", got)
	}
	if got := ix.Lookup(value.Int(1)); got != nil {
		t.Errorf("rebuilt index still knows the old snapshot: %v", got)
	}

	// A scalar re-registration cannot carry an index: the binding takes
	// effect, the index is dropped, and the error says why.
	if err := c.Register("emp", value.Int(42)); err == nil {
		t.Error("re-register with a scalar: want index-rebuild error, got nil")
	}
	if v, ok := c.LookupValue("emp"); !ok || !value.Equivalent(v, value.Int(42)) {
		t.Errorf("binding did not take effect: %v %v", v, ok)
	}
	if _, ok := c.LookupIndex("ix"); ok {
		t.Error("stale index survived a non-collection re-register")
	}
}

// TestAppendExtendsIndexes: Append merges elements into the collection
// and extends its indexes incrementally.
func TestAppendExtendsIndexes(t *testing.T) {
	c := catalog.New()
	if err := c.Register("emp", sion.MustParse(`[ {'id': 1}, {'id': 2} ]`)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex(spec("ix", "emp", "id", index.Ordered), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("emp", []value.Value{sion.MustParse(`{'id': 2}`), sion.MustParse(`{'id': 9}`)}, nil); err != nil {
		t.Fatal(err)
	}

	v, _ := c.LookupValue("emp")
	if _, ok := v.(value.Array); !ok {
		t.Errorf("Append changed the collection kind: %T", v)
	}
	els, _ := value.Elements(v)
	if len(els) != 4 {
		t.Fatalf("appended collection has %d elements, want 4", len(els))
	}

	ix, ok := c.LookupIndex("ix")
	if !ok {
		t.Fatal("index vanished on append")
	}
	if ix.Len() != 4 {
		t.Errorf("extended index covers %d elements, want 4", ix.Len())
	}
	if got := ix.Lookup(value.Int(2)); len(got) != 2 {
		t.Errorf("Lookup(2) = %v, want two positions", got)
	}
	if r, err := ix.Range(value.Int(2), value.Int(9), true, true, nil); err != nil || len(r) != 3 {
		t.Errorf("Range(2..9) = %v (%v), want three positions", r, err)
	}

	if err := c.Append("nope", []value.Value{value.Int(1)}, nil); err == nil {
		t.Error("Append to unknown collection accepted")
	}
}
