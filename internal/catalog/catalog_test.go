package catalog

import (
	"sync"
	"testing"

	"sqlpp/internal/value"
)

func TestRegisterLookup(t *testing.T) {
	c := New()
	if err := c.Register("hr.emp", value.Bag{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	v, ok := c.LookupValue("hr.emp")
	if !ok || v.Kind() != value.KindBag {
		t.Errorf("lookup = %v, %v", v, ok)
	}
	if !c.HasName("hr.emp") || c.HasName("hr") {
		t.Error("HasName should match exact names only")
	}
	// Replace.
	if err := c.Register("hr.emp", value.Int(2)); err != nil {
		t.Fatal(err)
	}
	v, _ = c.LookupValue("hr.emp")
	if v != value.Int(2) {
		t.Error("Register should replace")
	}
	// Drop.
	c.Drop("hr.emp")
	if c.HasName("hr.emp") {
		t.Error("Drop failed")
	}
	c.Drop("never-existed") // no-op
}

func TestEmptyNameRejected(t *testing.T) {
	if err := New().Register("", value.Null); err == nil {
		t.Error("empty name should be rejected")
	}
}

func TestNilValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil value should panic")
		}
	}()
	_ = New().Register("x", nil)
}

func TestNamesAndNamespaces(t *testing.T) {
	c := New()
	for _, n := range []string{"b", "hr.emp", "hr.dept", "sales.q1.eu"} {
		if err := c.Register(n, value.Null); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	want := []string{"b", "hr.dept", "hr.emp", "sales.q1.eu"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	ns := c.Namespaces()
	if len(ns) != 2 || ns[0] != "hr" || ns[1] != "sales.q1" {
		t.Errorf("Namespaces = %v", ns)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i%4))
			for j := 0; j < 200; j++ {
				_ = c.Register(name, value.Int(int64(j)))
				c.LookupValue(name)
				c.HasName(name)
			}
		}(i)
	}
	wg.Wait()
}
