package compat

// ExtensionCases cover the features the paper names as composing with
// SQL++ beyond its core walkthrough: window functions (§V-B notes OVER
// "wholly compatible" with SQL++, operating over nested and
// heterogeneous data) and WITH common table expressions.

// ExtensionCases returns the extension conformance cases.
func ExtensionCases() []*Case {
	sales := map[string]string{"sales": `{{
	  {'region': 'east', 'rep': 'a', 'amount': 100},
	  {'region': 'east', 'rep': 'b', 'amount': 300},
	  {'region': 'west', 'rep': 'c', 'amount': 500},
	  {'region': 'west', 'rep': 'd', 'amount': 500}
	}}`}
	return []*Case{
		{
			Name: "ext/window-row-number",
			Data: sales,
			Query: `SELECT s.rep AS rep,
			               ROW_NUMBER() OVER (PARTITION BY s.region ORDER BY s.amount DESC) AS rn
			        FROM sales AS s`,
			Mode: Both,
			Expect: `{{ {'rep':'a','rn':2}, {'rep':'b','rn':1},
			            {'rep':'c','rn':1}, {'rep':'d','rn':2} }}`,
			Notes: "§V-B: window functions compose with SQL++ unchanged.",
		},
		{
			Name: "ext/window-rank-ties",
			Data: sales,
			Query: `SELECT s.rep AS rep,
			               RANK() OVER (ORDER BY s.amount DESC) AS r
			        FROM sales AS s`,
			Mode: Both,
			Expect: `{{ {'rep':'c','r':1}, {'rep':'d','r':1},
			            {'rep':'b','r':3}, {'rep':'a','r':4} }}`,
		},
		{
			Name: "ext/window-partition-aggregate",
			Data: sales,
			Query: `SELECT s.rep AS rep,
			               s.amount / SUM(s.amount) OVER (PARTITION BY s.region) AS share
			        FROM sales AS s WHERE s.region = 'west'`,
			Mode:   Both,
			Expect: `{{ {'rep':'c','share':0}, {'rep':'d','share':0} }}`,
			Notes:  "Integer division; the point is the partition total (1000) in the denominator.",
		},
		{
			Name: "ext/window-over-nested-data",
			Data: hrData(),
			Query: `SELECT e.name AS name, p AS proj,
			               COUNT(*) OVER (PARTITION BY p) AS popularity
			        FROM hr.emp_nest_scalars AS e, e.projects AS p
			        WHERE p LIKE '%Security%'`,
			Mode: Both,
			Expect: `{{
			  {'name': 'Bob Smith', 'proj': 'OLAP Security', 'popularity': 2},
			  {'name': 'Bob Smith', 'proj': 'OLTP Security', 'popularity': 1},
			  {'name': 'Jane Smith', 'proj': 'OLAP Security', 'popularity': 2}
			}}`,
			Notes: "The §V-B claim in action: a window over unnested (originally nested) bindings.",
		},
		{
			Name: "ext/with-cte",
			Data: hrData(),
			Query: `WITH sec AS (SELECT e.name AS name, p AS proj
			                     FROM hr.emp_nest_scalars AS e, e.projects AS p
			                     WHERE p LIKE '%Security%')
			        SELECT s.proj AS proj, COUNT(*) AS n
			        FROM sec AS s GROUP BY s.proj`,
			Mode: Both,
			Expect: `{{ {'proj': 'OLAP Security', 'n': 2},
			            {'proj': 'OLTP Security', 'n': 1} }}`,
		},
		{
			Name: "ext/with-chained",
			Data: map[string]string{"t": "{{1, 2, 3, 4}}"},
			Query: `WITH evens AS (SELECT VALUE x FROM t AS x WHERE x % 2 = 0),
			             doubled AS (SELECT VALUE e * 2 FROM evens AS e)
			        SELECT VALUE d FROM doubled AS d`,
			Mode:   Both,
			Expect: `{{4, 8}}`,
			Notes:  "Later CTEs see earlier ones.",
		},
	}
}
