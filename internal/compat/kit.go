// Package compat is the Core SQL++ "compatibility kit" the paper's
// conclusion calls for: a vendor-neutral suite of declarative conformance
// cases — data, query, mode, expected result — that checks an
// implementation's compliance with Core SQL++ in both its composability
// mode and its SQL compatibility mode.
//
// The built-in suite covers every listing of the paper (the Paper cases),
// a plain-SQL battery for the SQL-compatibility tenet (the SQLCompat
// cases), the null/missing guarantee of §IV-B (the NullMissing cases),
// and targeted semantics cases for MISSING propagation, typing modes,
// and heterogeneous data.
package compat

import (
	"fmt"
	"runtime"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/funcs"
	"sqlpp/internal/parser"
	"sqlpp/internal/plan"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// Mode selects which engine modes a case runs under.
type Mode uint8

// Case modes. Core is the paper's flexible default (full composability);
// Compat is the SQL compatibility mode; Both runs the case in each and
// requires the same expectation to hold.
const (
	Both Mode = iota
	Core
	Compat
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Core:
		return "core"
	case Compat:
		return "compat"
	default:
		return "both"
	}
}

// Case is one conformance check.
type Case struct {
	// Name identifies the case, e.g. "paper/L02".
	Name string
	// Data maps named values to their object-notation source.
	Data map[string]string
	// Query is the SQL++ text under test.
	Query string
	// Mode selects the engine mode(s).
	Mode Mode
	// Strict runs the case under stop-on-error typing.
	Strict bool
	// Expect is the expected result in object notation; ignored when
	// ExpectError is set. Comparison uses data-model equivalence (bags
	// unordered, tuples attribute-order-insensitive).
	Expect string
	// ExpectError requires the query to fail (at compile or run time).
	ExpectError bool
	// Notes records provenance (paper listing numbers, deviations).
	Notes string
}

// Result is the outcome of running a case in one mode.
type Result struct {
	Case     *Case
	ModeName string
	Got      value.Value
	Err      error
	Pass     bool
	Detail   string
}

// Run executes the case in each of its modes and reports per-mode
// results.
func Run(c *Case) []Result {
	var out []Result
	modes := []bool{false, true} // compat flag values
	for _, compat := range modes {
		if c.Mode == Core && compat {
			continue
		}
		if c.Mode == Compat && !compat {
			continue
		}
		out = append(out, runIn(c, compat))
	}
	return out
}

func runIn(c *Case, compatMode bool) Result {
	name := "core"
	if compatMode {
		name = "compat"
	}
	res := Result{Case: c, ModeName: name}
	got, err := Execute(c.Data, c.Query, compatMode, c.Strict)
	res.Got, res.Err = got, err
	if c.ExpectError {
		res.Pass = err != nil
		if !res.Pass {
			res.Detail = fmt.Sprintf("expected an error, got %s", render(got))
		}
		return res
	}
	if err != nil {
		res.Detail = "query failed: " + err.Error()
		return res
	}
	want, perr := sion.Parse(c.Expect)
	if perr != nil {
		res.Detail = "bad expectation: " + perr.Error()
		return res
	}
	if value.Equivalent(got, want) {
		res.Pass = true
		return res
	}
	res.Detail = fmt.Sprintf("result mismatch:\n  got  %s\n  want %s", render(got), render(want))
	return res
}

func render(v value.Value) string {
	if v == nil {
		return "<nil>"
	}
	return v.String()
}

// Execute runs a query over object-notation data with a standalone
// engine wired from the internal packages; the kit must not depend on
// any particular vendor facade.
func Execute(data map[string]string, query string, compatMode, strict bool) (value.Value, error) {
	cat := catalog.New()
	for name, src := range data {
		v, err := sion.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("compat: data %s: %w", name, err)
		}
		if err := cat.Register(name, v); err != nil {
			return nil, err
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Compat: compatMode, Names: cat})
	if err != nil {
		return nil, err
	}
	mode := eval.Permissive
	if strict {
		mode = eval.StopOnError
	}
	// The kit exercises the optimized physical plans: listing results
	// must be identical with every rewrite enabled.
	plan.Optimize(core, plan.OptOptions{Mode: mode})
	ctx := &eval.Context{
		Mode:        mode,
		Compat:      compatMode,
		Names:       cat,
		Funcs:       sharedFuncs,
		Run:         plan.Run,
		Parallelism: runtime.GOMAXPROCS(0),
	}
	return plan.Run(ctx, eval.NewEnv(), core)
}

// ExecuteValues is Execute over already-decoded values, used by the
// format-independence experiment where the data arrives from different
// codecs.
func ExecuteValues(data map[string]value.Value, query string, compatMode, strict bool) (value.Value, error) {
	cat := catalog.New()
	for name, v := range data {
		if err := cat.Register(name, v); err != nil {
			return nil, err
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Compat: compatMode, Names: cat})
	if err != nil {
		return nil, err
	}
	mode := eval.Permissive
	if strict {
		mode = eval.StopOnError
	}
	plan.Optimize(core, plan.OptOptions{Mode: mode})
	ctx := &eval.Context{
		Mode:        mode,
		Compat:      compatMode,
		Names:       cat,
		Funcs:       sharedFuncs,
		Run:         plan.Run,
		Parallelism: runtime.GOMAXPROCS(0),
	}
	return plan.Run(ctx, eval.NewEnv(), core)
}

// CoreForm returns the SQL++ Core rewriting of a query, for inspection.
func CoreForm(data map[string]string, query string, compatMode bool) (string, error) {
	cat := catalog.New()
	for name, src := range data {
		v, err := sion.Parse(src)
		if err != nil {
			return "", err
		}
		if err := cat.Register(name, v); err != nil {
			return "", err
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		return "", err
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Compat: compatMode, Names: cat})
	if err != nil {
		return "", err
	}
	return ast.Format(core), nil
}

var sharedFuncs = funcs.NewRegistry()

// Suite returns the full built-in conformance suite.
func Suite() []*Case {
	var out []*Case
	out = append(out, PaperCases()...)
	out = append(out, SQLCompatCases()...)
	out = append(out, NullMissingCases()...)
	out = append(out, SemanticsCases()...)
	out = append(out, ExtensionCases()...)
	return out
}

// RunSuite runs every case and returns all results plus the failures.
func RunSuite(cases []*Case) (all, failures []Result) {
	for _, c := range cases {
		for _, r := range Run(c) {
			all = append(all, r)
			if !r.Pass {
				failures = append(failures, r)
			}
		}
	}
	return all, failures
}

// Report renders results as fixed-width text rows (the harness output).
func Report(all, failures []Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %-7s %s\n", "CASE", "MODE", "STATUS")
	for _, r := range all {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "%-36s %-7s %s\n", r.Case.Name, r.ModeName, status)
	}
	fmt.Fprintf(&sb, "\n%d checks, %d failures\n", len(all), len(failures))
	for _, r := range failures {
		fmt.Fprintf(&sb, "\nFAIL %s [%s]\n  query: %s\n  %s\n", r.Case.Name, r.ModeName,
			strings.Join(strings.Fields(r.Case.Query), " "), r.Detail)
	}
	return sb.String()
}
