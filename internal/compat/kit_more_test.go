package compat

import (
	"strings"
	"testing"

	"sqlpp/internal/value"
)

func TestCoreForm(t *testing.T) {
	core, err := CoreForm(hrData(), `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e GROUP BY e.deptno`, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"SELECT VALUE", "COLL_AVG(", "GROUP AS"} {
		if !strings.Contains(core, frag) {
			t.Errorf("core form should contain %q: %s", frag, core)
		}
	}
	if _, err := CoreForm(nil, "SELEC", false); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := CoreForm(map[string]string{"t": "{{"}, "SELECT VALUE 1", false); err == nil {
		t.Error("bad data should fail")
	}
}

func TestExecuteErrors(t *testing.T) {
	if _, err := Execute(map[string]string{"t": "{{"}, "SELECT VALUE 1", false, false); err == nil {
		t.Error("bad fixture should fail")
	}
	if _, err := Execute(nil, "SELECT VALUE ghost", false, false); err == nil {
		t.Error("unresolved name should fail")
	}
}

func TestExecuteValuesMatchesExecute(t *testing.T) {
	data := map[string]string{"t": "{{1, 2, 3}}"}
	a, err := Execute(data, "SELECT VALUE SUM(x) FROM t AS x", false, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]value.Value{"t": value.Bag{value.Int(1), value.Int(2), value.Int(3)}}
	b, err := ExecuteValues(vals, "SELECT VALUE SUM(x) FROM t AS x", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(a, b) {
		t.Errorf("Execute (%s) and ExecuteValues (%s) disagree", a, b)
	}
}

func TestRunModesAndFailures(t *testing.T) {
	// A case marked Core runs once; Both runs twice.
	c := &Case{Name: "x", Data: map[string]string{"t": "{{1}}"},
		Query: "SELECT VALUE v FROM t AS v", Mode: Core, Expect: "{{1}}"}
	if rs := Run(c); len(rs) != 1 || !rs[0].Pass || rs[0].ModeName != "core" {
		t.Errorf("Core mode run = %+v", rs)
	}
	c.Mode = Both
	if rs := Run(c); len(rs) != 2 {
		t.Errorf("Both mode should run twice, got %d", len(rs))
	}
	// A failing expectation is reported with a diff.
	bad := &Case{Name: "bad", Data: c.Data, Query: c.Query, Mode: Core, Expect: "{{2}}"}
	rs := Run(bad)
	if rs[0].Pass || !strings.Contains(rs[0].Detail, "mismatch") {
		t.Errorf("failing case = %+v", rs[0])
	}
	// ExpectError inverted.
	errCase := &Case{Name: "err", Data: c.Data, Query: "SELECT VALUE ghost", Mode: Core, ExpectError: true}
	if rs := Run(errCase); !rs[0].Pass {
		t.Errorf("expected-error case should pass: %+v", rs[0])
	}
	notErr := &Case{Name: "noterr", Data: c.Data, Query: c.Query, Mode: Core, ExpectError: true}
	if rs := Run(notErr); rs[0].Pass {
		t.Error("expected-error case that succeeds should fail")
	}
	// Malformed expectation.
	broken := &Case{Name: "broken", Data: c.Data, Query: c.Query, Mode: Core, Expect: "{{"}
	if rs := Run(broken); rs[0].Pass || !strings.Contains(rs[0].Detail, "bad expectation") {
		t.Errorf("broken expectation = %+v", rs[0])
	}
}

func TestReportFormat(t *testing.T) {
	cases := []*Case{
		{Name: "a", Data: map[string]string{"t": "{{1}}"}, Query: "SELECT VALUE v FROM t AS v", Mode: Core, Expect: "{{1}}"},
		{Name: "b", Data: map[string]string{"t": "{{1}}"}, Query: "SELECT VALUE v FROM t AS v", Mode: Core, Expect: "{{9}}"},
	}
	all, failures := RunSuite(cases)
	text := Report(all, failures)
	if !strings.Contains(text, "2 checks, 1 failures") {
		t.Errorf("report summary wrong:\n%s", text)
	}
	if !strings.Contains(text, "FAIL b") {
		t.Errorf("report should name the failing case:\n%s", text)
	}
}

func TestModeString(t *testing.T) {
	if Both.String() != "both" || Core.String() != "core" || Compat.String() != "compat" {
		t.Error("mode names wrong")
	}
}
