package compat

import "testing"

// TestSuite runs the complete built-in conformance suite; every case
// must pass in every mode it declares.
func TestSuite(t *testing.T) {
	all, failures := RunSuite(Suite())
	if len(all) == 0 {
		t.Fatal("empty suite")
	}
	for _, f := range failures {
		t.Errorf("%s [%s]: %s", f.Case.Name, f.ModeName, f.Detail)
	}
	t.Logf("%d conformance checks, %d failures", len(all), len(failures))
}
