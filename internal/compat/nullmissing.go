package compat

import "fmt"

// NullMissingCases check the §IV-B compatibility guarantee: given a
// working SQL query q over a collection d with null values, and d' where
// some nulls were replaced by missing attributes, SQL++ (in SQL
// compatibility mode) delivers q(d') equal to q(d) except that attributes
// that would be null in q(d) are simply absent in q(d'). Each pair of
// cases below runs the same query over the null-style and missing-style
// collections of Listings 6 and 7.

// NullMissingCases returns the guarantee cases.
func NullMissingCases() []*Case {
	query := `SELECT e.id, e.name AS emp_name, e.title AS title
	          FROM %s AS e`
	filter := `SELECT e.id FROM %s AS e WHERE e.title IS NULL`
	caseQ := `SELECT e.id,
	                 CASE WHEN e.title LIKE 'Chief %%' THEN 'Executive'
	                      ELSE 'Worker' END AS category
	          FROM %s AS e`
	return []*Case{
		{
			Name:  "nullmissing/project-null",
			Data:  hrData(),
			Query: sprintf(query, "hr.emp_null"),
			Mode:  Both,
			Expect: `{{
			  {'id': 3, 'emp_name': 'Bob Smith', 'title': null},
			  {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'},
			  {'id': 6, 'emp_name': 'Jane Smith', 'title': 'Engineer'}
			}}`,
			Notes: "q(d): Bob's title is null.",
		},
		{
			Name:  "nullmissing/project-missing",
			Data:  hrData(),
			Query: sprintf(query, "hr.emp_missing"),
			Mode:  Both,
			Expect: `{{
			  {'id': 3, 'emp_name': 'Bob Smith'},
			  {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'},
			  {'id': 6, 'emp_name': 'Jane Smith', 'title': 'Engineer'}
			}}`,
			Notes: "q(d'): identical to q(d) except the null-valued title attribute is absent — the guarantee verbatim.",
		},
		{
			Name:   "nullmissing/is-null-null",
			Data:   hrData(),
			Query:  sprintf(filter, "hr.emp_null"),
			Mode:   Both,
			Expect: `{{ {'id': 3} }}`,
		},
		{
			Name:   "nullmissing/is-null-missing-compat",
			Data:   hrData(),
			Query:  sprintf(filter, "hr.emp_missing"),
			Mode:   Compat,
			Expect: `{{ {'id': 3} }}`,
			Notes:  "In compatibility mode IS NULL matches MISSING, so the missing-style data gives the same rows.",
		},
		{
			Name:   "nullmissing/is-null-missing-core",
			Data:   hrData(),
			Query:  sprintf(filter, "hr.emp_missing"),
			Mode:   Core,
			Expect: `{{ }}`,
			Notes:  "In flexible mode the two absent values are distinguishable: IS NULL does not match MISSING.",
		},
		{
			Name:   "nullmissing/is-missing",
			Data:   hrData(),
			Query:  `SELECT e.id FROM hr.emp_missing AS e WHERE e.title IS MISSING`,
			Mode:   Both,
			Expect: `{{ {'id': 3} }}`,
			Notes:  "IS MISSING retains the distinction in both modes.",
		},
		{
			Name:   "nullmissing/case-null",
			Data:   hrData(),
			Query:  sprintf(caseQ, "hr.emp_null"),
			Mode:   Both,
			Expect: `{{ {'id':3,'category':'Worker'}, {'id':4,'category':'Worker'}, {'id':6,'category':'Worker'} }}`,
			Notes:  "SQL semantics: NULL LIKE ... is UNKNOWN, the arm is not taken, ELSE applies.",
		},
		{
			Name:   "nullmissing/case-missing-compat",
			Data:   hrData(),
			Query:  sprintf(caseQ, "hr.emp_missing"),
			Mode:   Compat,
			Expect: `{{ {'id':3,'category':'Worker'}, {'id':4,'category':'Worker'}, {'id':6,'category':'Worker'} }}`,
			Notes:  "The guarantee for CASE: the missing-style data gives the same rows in compatibility mode.",
		},
		{
			Name:   "nullmissing/coalesce-exception",
			Data:   map[string]string{"t": `{{ {'a': 1} }}`},
			Query:  `SELECT VALUE COALESCE(r.nope, 2) FROM t AS r`,
			Mode:   Compat,
			Expect: `{{ 2 }}`,
			Notes:  "§IV-B rule 3's one exception: COALESCE(MISSING, 2) = 2 in compatibility mode because COALESCE(NULL, 2) = 2 in SQL.",
		},
		{
			Name:   "nullmissing/coalesce-flexible",
			Data:   map[string]string{"t": `{{ {'a': 1} }}`},
			Query:  `SELECT VALUE COALESCE(r.nope, 2) FROM t AS r`,
			Mode:   Core,
			Expect: `{{ }}`,
			Notes:  "In flexible mode rule 3 applies unbroken: a MISSING input yields MISSING, which vanishes from the constructed bag.",
		},
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
