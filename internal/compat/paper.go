package compat

// The paper cases reproduce every listing of "SQL++: We Can Finally
// Relax!": each query listing runs against its data listing and the
// result is diffed against the result listing. Where the paper leaves a
// dataset implicit (hr.emp for §V-C) or contains an editorial
// inconsistency (noted per case), the Notes field records the decision;
// EXPERIMENTS.md carries the full discussion.

// Listing 1: hr.emp_nest_tuples.
const EmpNestTuples = `{{
  {'id': 3, 'name': 'Bob Smith', 'title': null,
   'projects': [{'name': 'Serverless Query'},
                {'name': 'OLAP Security'},
                {'name': 'OLTP Security'}]},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
   'projects': [{'name': 'OLTP Security'}]}
}}`

// Listing 3: hr.emp_nest_scalars. Bob's projects are spelled out in the
// listing; Susan's and Jane's are elided ("...") there, and are fixed
// here to the values implied by the results of Listings 11 and 13
// (Susan: none; Jane: OLAP Security).
const EmpNestScalars = `{{
  {'id': 3, 'name': 'Bob Smith', 'title': null,
   'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security']},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager', 'projects': []},
  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
   'projects': ['OLAP Security']}
}}`

// Listing 6: hr.emp_null (null-style absence).
const EmpNull = `{{
  {'id': 3, 'name': 'Bob Smith', 'title': null},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer'}
}}`

// Listing 7: hr.emp_missing (missing-attribute-style absence).
const EmpMissing = `{{
  {'id': 3, 'name': 'Bob Smith'},
  {'id': 4, 'name': 'Susan Smith', 'title': 'Manager'},
  {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer'}
}}`

// hr.emp for the aggregation examples of §V-C. The paper uses the
// collection without listing it; this fixture has the columns the paper
// names (name, deptno, title, salary).
const EmpFlat = `{{
  {'name': 'Alice', 'deptno': 1, 'title': 'Engineer', 'salary': 100000},
  {'name': 'Bob',   'deptno': 1, 'title': 'Engineer', 'salary': 90000},
  {'name': 'Clara', 'deptno': 2, 'title': 'Engineer', 'salary': 110000},
  {'name': 'Dan',   'deptno': 2, 'title': 'Manager',  'salary': 150000},
  {'name': 'Eve',   'deptno': 3, 'title': 'Manager',  'salary': 160000}
}}`

// Listing 19: closing_prices.
const ClosingPrices = `{{
  {'date': '4/1/2019', 'amzn': 1900, 'goog': 1120, 'fb': 180},
  {'date': '4/2/2019', 'amzn': 1902, 'goog': 1119, 'fb': 183}
}}`

// Listing 23: today_stock_prices.
const TodayStockPrices = `{{
  {'symbol': 'amzn', 'price': 1900},
  {'symbol': 'goog', 'price': 1120},
  {'symbol': 'fb', 'price': 180}
}}`

// Listing 27: stock_prices.
const StockPrices = `{{
  {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
  {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
  {'date': '4/1/2019', 'symbol': 'fb',   'price': 180},
  {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
  {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
  {'date': '4/2/2019', 'symbol': 'fb',   'price': 183}
}}`

// Data for the Listing 5 heterogeneous table (the DDL declares projects
// UNIONTYPE<STRING, ARRAY<STRING>>; this is matching data).
const EmpMixed = `{{
  {'id': 1, 'name': 'Uma', 'title': 'Engineer', 'projects': 'OLAP Security'},
  {'id': 2, 'name': 'Vic', 'title': 'Engineer',
   'projects': ['OLTP Security', 'Serverless Query']}
}}`

func hrData() map[string]string {
	return map[string]string{
		"hr.emp_nest_tuples":  EmpNestTuples,
		"hr.emp_nest_scalars": EmpNestScalars,
		"hr.emp_null":         EmpNull,
		"hr.emp_missing":      EmpMissing,
		"hr.emp":              EmpFlat,
	}
}

func stockData() map[string]string {
	return map[string]string{
		"closing_prices":     ClosingPrices,
		"today_stock_prices": TodayStockPrices,
		"stock_prices":       StockPrices,
	}
}

// PaperCases returns the conformance cases for Listings 1–28.
func PaperCases() []*Case {
	return []*Case{
		{
			Name: "paper/L02-nested-tuples",
			Data: hrData(),
			Query: `SELECT e.name AS emp_name, p.name AS proj_name
			        FROM hr.emp_nest_tuples AS e, e.projects AS p
			        WHERE p.name LIKE '%Security%'`,
			Mode: Both,
			Expect: `{{
			  {'emp_name': 'Bob Smith', 'proj_name': 'OLAP Security'},
			  {'emp_name': 'Bob Smith', 'proj_name': 'OLTP Security'},
			  {'emp_name': 'Jane Smith', 'proj_name': 'OLTP Security'}
			}}`,
			Notes: "Listing 2 over Listing 1; expected rows per Pseudocode 1.",
		},
		{
			Name: "paper/L04-nested-scalars",
			Data: hrData(),
			Query: `SELECT e.name AS emp_name, p AS proj_name
			        FROM hr.emp_nest_scalars AS e, e.projects AS p
			        WHERE p LIKE '%Security%'`,
			Mode: Both,
			Expect: `{{
			  {'emp_name': 'Bob Smith', 'proj_name': 'OLAP Security'},
			  {'emp_name': 'Bob Smith', 'proj_name': 'OLTP Security'},
			  {'emp_name': 'Jane Smith', 'proj_name': 'OLAP Security'}
			}}`,
			Notes: "Listing 4 over Listing 3; variables bind to scalars (Pseudocode 2).",
		},
		{
			Name: "paper/L08-where-on-missing",
			Data: hrData(),
			Query: `SELECT e.id, e.name AS emp_name, e.title AS title
			        FROM hr.emp_missing AS e
			        WHERE e.title = 'Manager'`,
			Mode: Both,
			Expect: `{{
			  {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'}
			}}`,
			Notes: "Listing 8: MISSING = 'Manager' is not TRUE, so Bob's tuple is filtered, not an error.",
		},
		{
			Name: "paper/L08-missing-propagates",
			Data: hrData(),
			Query: `SELECT e.id, e.name AS emp_name, e.title AS title
			        FROM hr.emp_missing AS e`,
			Mode: Both,
			Expect: `{{
			  {'id': 3, 'emp_name': 'Bob Smith'},
			  {'id': 4, 'emp_name': 'Susan Smith', 'title': 'Manager'},
			  {'id': 6, 'emp_name': 'Jane Smith', 'title': 'Engineer'}
			}}`,
			Notes: "§IV-B: e.title evaluates to MISSING for Bob and the output tuple has no title attribute.",
		},
		{
			Name: "paper/L09-case-missing-core",
			Data: hrData(),
			Query: `SELECT e.id, e.name AS emp_name,
			               CASE WHEN e.title LIKE 'Chief %' THEN 'Executive'
			                    ELSE 'Worker' END AS category
			        FROM hr.emp_missing AS e`,
			Mode: Core,
			Expect: `{{
			  {'id': 3, 'emp_name': 'Bob Smith'},
			  {'id': 4, 'emp_name': 'Susan Smith', 'category': 'Worker'},
			  {'id': 6, 'emp_name': 'Jane Smith', 'category': 'Worker'}
			}}`,
			Notes: "Listing 9, flexible mode: CASE WHEN MISSING ... END evaluates to MISSING (§IV-B rule 3), so Bob has no category.",
		},
		{
			Name: "paper/L09-case-missing-compat",
			Data: hrData(),
			Query: `SELECT e.id, e.name AS emp_name,
			               CASE WHEN e.title LIKE 'Chief %' THEN 'Executive'
			                    ELSE 'Worker' END AS category
			        FROM hr.emp_missing AS e`,
			Mode: Compat,
			Expect: `{{
			  {'id': 3, 'emp_name': 'Bob Smith', 'category': 'Worker'},
			  {'id': 4, 'emp_name': 'Susan Smith', 'category': 'Worker'},
			  {'id': 6, 'emp_name': 'Jane Smith', 'category': 'Worker'}
			}}`,
			Notes: "Listing 9 under the SQL compatibility flag: MISSING behaves like NULL, the WHEN arm is simply not taken, ELSE applies — matching SQL over the null-style data of Listing 6.",
		},
		{
			Name: "paper/L10-nested-select-value",
			Data: hrData(),
			Query: `SELECT e.id AS id, e.name AS emp_name, e.title AS emp_title,
			               (SELECT VALUE p FROM e.projects AS p
			                WHERE p LIKE '%Security%') AS security_proj
			        FROM hr.emp_nest_scalars AS e`,
			Mode: Both,
			Expect: `{{
			  {'id': 3, 'emp_name': 'Bob Smith', 'emp_title': null,
			   'security_proj': {{'OLAP Security', 'OLTP Security'}}},
			  {'id': 4, 'emp_name': 'Susan Smith', 'emp_title': 'Manager',
			   'security_proj': {{}}},
			  {'id': 6, 'emp_name': 'Jane Smith', 'emp_title': 'Engineer',
			   'security_proj': {{'OLAP Security'}}}
			}}`,
			Notes: "Listing 10 -> Listing 11. The listing's result text shows attribute names 'name'/'title' although the query aliases them emp_name/emp_title; the aliases in the query text are authoritative here.",
		},
		{
			Name: "paper/L12-group-as",
			Data: hrData(),
			Query: `FROM hr.emp_nest_scalars AS e, e.projects AS p
			        WHERE p LIKE '%Security%'
			        GROUP BY LOWER(p) AS p GROUP AS g
			        SELECT p AS proj_name,
			               (FROM g AS v SELECT VALUE v.e.name) AS employees`,
			Mode: Both,
			Expect: `{{
			  {'proj_name': 'oltp security', 'employees': {{'Bob Smith'}}},
			  {'proj_name': 'olap security', 'employees': {{'Bob Smith', 'Jane Smith'}}}
			}}`,
			Notes: "Listing 12 -> Listing 13. The listing's result shows proj_name in original capitalization, but the group key is LOWER(p) (Listing 14's bindings agree it is lower-cased); lower-case is authoritative.",
		},
		{
			Name: "paper/L14-group-bindings",
			Data: hrData(),
			Query: `FROM hr.emp_nest_scalars AS e, e.projects AS p
			        WHERE p LIKE '%Security%'
			        GROUP BY LOWER(p) AS p GROUP AS g
			        SELECT p AS p, g AS g`,
			Mode: Both,
			Expect: `{{
			  {'p': 'olap security', 'g': {{
			     {'e': {'id': 3, 'name': 'Bob Smith', 'title': null,
			            'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security']},
			      'p': 'OLAP Security'},
			     {'e': {'id': 6, 'name': 'Jane Smith', 'title': 'Engineer',
			            'projects': ['OLAP Security']},
			      'p': 'OLAP Security'}
			  }}},
			  {'p': 'oltp security', 'g': {{
			     {'e': {'id': 3, 'name': 'Bob Smith', 'title': null,
			            'projects': ['Serverless Querying', 'OLAP Security', 'OLTP Security']},
			      'p': 'OLTP Security'}
			  }}}
			}}`,
			Notes: "Listing 14: GROUP AS exposes one e/p content tuple per input binding.",
		},
		{
			Name: "paper/L15-sql-aggregate",
			Data: hrData(),
			Query: `SELECT AVG(e.salary) AS avgsal
			        FROM hr.emp AS e
			        WHERE e.title = 'Engineer'`,
			Mode:   Both,
			Expect: `{{ {'avgsal': 100000.0} }}`,
			Notes:  "Listing 15 over the synthesized hr.emp fixture.",
		},
		{
			Name: "paper/L16-core-aggregate",
			Data: hrData(),
			Query: `{{ {'avgsal':
			         COLL_AVG(SELECT VALUE e.salary
			                  FROM hr.emp AS e
			                  WHERE e.title = 'Engineer')} }}`,
			Mode:   Both,
			Expect: `{{ {'avgsal': 100000.0} }}`,
			Notes:  "Listing 16: the Core equivalent of Listing 15 gives the identical result.",
		},
		{
			Name: "paper/L17-sql-grouped-aggregate",
			Data: hrData(),
			Query: `SELECT e.deptno, AVG(e.salary) AS avgsal
			        FROM hr.emp AS e
			        WHERE e.title = 'Engineer'
			        GROUP BY e.deptno`,
			Mode: Both,
			Expect: `{{
			  {'deptno': 1, 'avgsal': 95000.0},
			  {'deptno': 2, 'avgsal': 110000.0}
			}}`,
			Notes: "Listing 17.",
		},
		{
			Name: "paper/L18-core-grouped-aggregate",
			Data: hrData(),
			Query: `FROM hr.emp AS e
			        WHERE e.title = 'Engineer'
			        GROUP BY e.deptno AS d GROUP AS g
			        SELECT VALUE
			          {'deptno': d,
			           'avgsal': COLL_AVG(FROM g AS gi SELECT gi.e.salary)}`,
			Mode: Both,
			Expect: `{{
			  {'deptno': 1, 'avgsal': 95000.0},
			  {'deptno': 2, 'avgsal': 110000.0}
			}}`,
			Notes: "Listing 18, SELECT-clause-last style. The inner SELECT produces single-attribute tuples; numeric COLL_* aggregates unwrap them, reproducing the listing as printed.",
		},
		{
			Name: "paper/L20-unpivot",
			Data: stockData(),
			Query: `SELECT c."date" AS "date", sym AS symbol, price AS price
			        FROM closing_prices AS c, UNPIVOT c AS price AT sym
			        WHERE NOT sym = 'date'`,
			Mode: Both,
			Expect: `{{
			  {'date': '4/1/2019', 'symbol': 'amzn', 'price': 1900},
			  {'date': '4/1/2019', 'symbol': 'goog', 'price': 1120},
			  {'date': '4/1/2019', 'symbol': 'fb', 'price': 180},
			  {'date': '4/2/2019', 'symbol': 'amzn', 'price': 1902},
			  {'date': '4/2/2019', 'symbol': 'goog', 'price': 1119},
			  {'date': '4/2/2019', 'symbol': 'fb', 'price': 183}
			}}`,
			Notes: "Listing 20 -> Listing 21.",
		},
		{
			Name: "paper/L22-unpivot-aggregate",
			Data: stockData(),
			Query: `SELECT sym AS symbol, AVG(price) AS avg_price
			        FROM closing_prices c, UNPIVOT c AS price AT sym
			        WHERE NOT sym = 'date'
			        GROUP BY sym`,
			Mode: Both,
			Expect: `{{
			  {'symbol': 'amzn', 'avg_price': 1901.0},
			  {'symbol': 'goog', 'avg_price': 1119.5},
			  {'symbol': 'fb', 'avg_price': 181.5}
			}}`,
			Notes: "Listing 22: attribute names used as data, then aggregated.",
		},
		{
			Name: "paper/L24-pivot",
			Data: stockData(),
			Query: `PIVOT sp.price AT sp.symbol
			        FROM today_stock_prices sp`,
			Mode:   Both,
			Expect: `{'amzn': 1900, 'goog': 1120, 'fb': 180}`,
			Notes:  "Listing 24 -> Listing 25: a collection becomes a single tuple.",
		},
		{
			Name: "paper/L26-group-pivot",
			Data: stockData(),
			Query: `SELECT sp."date" AS "date",
			               (PIVOT dp.sp.price AT dp.sp.symbol
			                FROM dates_prices AS dp) AS prices
			        FROM stock_prices AS sp
			        GROUP BY sp."date" GROUP AS dates_prices`,
			Mode: Both,
			Expect: `{{
			  {'date': '4/1/2019',
			   'prices': {'amzn': 1900, 'goog': 1120, 'fb': 180}},
			  {'date': '4/2/2019',
			   'prices': {'amzn': 1902, 'goog': 1119, 'fb': 183}}
			}}`,
			Notes: "Listing 26 -> Listing 28: grouping composed with pivoting.",
		},
		{
			Name: "paper/L05-union-type-data",
			Data: map[string]string{"emp_mixed": EmpMixed},
			Query: `FROM emp_mixed AS e,
			             (CASE WHEN TYPE(e.projects) = 'string'
			                   THEN [e.projects] ELSE e.projects END) AS p
			        SELECT e.name AS name, p AS project`,
			Mode: Both,
			Expect: `{{
			  {'name': 'Uma', 'project': 'OLAP Security'},
			  {'name': 'Vic', 'project': 'OLTP Security'},
			  {'name': 'Vic', 'project': 'Serverless Query'}
			}}`,
			Notes: "Listing 5's UNIONTYPE column queried uniformly over both shapes (§IV heterogeneity).",
		},
	}
}
