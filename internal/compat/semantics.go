package compat

// SemanticsCases pin down the relaxations the paper enumerates in §I and
// the MISSING production rules of §IV-B: navigation into absent
// attributes, mistyped operations, propagation through operators,
// FROM-variable binding to arbitrary values, full composability of
// subqueries, and the stop-on-error typing mode.

// SemanticsCases returns the targeted semantics cases.
func SemanticsCases() []*Case {
	hetero := map[string]string{"mixed": `{{
	  {'id': 1, 'x': 10},
	  {'id': 2, 'x': 'ten'},
	  {'id': 3},
	  {'id': 4, 'x': [1, 2]},
	  {'id': 5, 'x': null}
	}}`}
	return []*Case{
		{
			Name:   "semantics/missing-rule1-navigation",
			Data:   map[string]string{"t": `{{ {'id': 3, 'name': 'Bob Smith'} }}`},
			Query:  `SELECT VALUE r.title IS MISSING FROM t AS r`,
			Mode:   Both,
			Expect: `{{ true }}`,
			Notes:  "§IV-B case 1: {'id':3,'name':'Bob Smith'}.title is MISSING.",
		},
		{
			Name:   "semantics/missing-rule2-mistyped",
			Data:   map[string]string{"t": `{{ {'s': 'some string'} }}`},
			Query:  `SELECT VALUE (2 * r.s) IS MISSING FROM t AS r`,
			Mode:   Both,
			Expect: `{{ true }}`,
			Notes:  "§IV-B case 2: 2 * 'some string' yields MISSING rather than a dynamic type error.",
		},
		{
			Name:   "semantics/missing-rule3-propagation",
			Data:   map[string]string{"t": `{{ {'id': 1} }}`},
			Query:  `SELECT VALUE (UPPER(r.nope) || '!') IS MISSING FROM t AS r`,
			Mode:   Core,
			Expect: `{{ true }}`,
			Notes:  "§IV-B case 3: MISSING propagates through a series of transformations.",
		},
		{
			Name:        "semantics/stop-on-error",
			Data:        map[string]string{"t": `{{ {'s': 'some string'} }}`},
			Query:       `SELECT VALUE 2 * r.s FROM t AS r`,
			Mode:        Both,
			Strict:      true,
			ExpectError: true,
			Notes:       "§IV: stop-on-error mode turns the mistyped operation into a query failure.",
		},
		{
			Name:   "semantics/permissive-keeps-healthy-rows",
			Data:   hetero,
			Query:  `SELECT r.id AS id, 2 * r.x AS double_x FROM mixed AS r`,
			Mode:   Core,
			Expect: `{{ {'id':1,'double_x':20}, {'id':2}, {'id':3}, {'id':4}, {'id':5,'double_x':null} }}`,
			Notes:  "§IV: processing continues for healthy data; type errors surface as absent attributes.",
		},
		{
			Name:   "semantics/filter-heterogeneous",
			Data:   hetero,
			Query:  `SELECT VALUE r.id FROM mixed AS r WHERE r.x = 10`,
			Mode:   Both,
			Expect: `{{ 1 }}`,
			Notes:  "Equality across type classes is FALSE, not an error, so heterogeneous collections filter cleanly.",
		},
		{
			Name:   "semantics/from-binds-scalars",
			Data:   map[string]string{"nums": `[1, 2, 3]`},
			Query:  `SELECT VALUE n * n FROM nums AS n`,
			Mode:   Both,
			Expect: `{{ 1, 4, 9 }}`,
			Notes:  "Relaxation 3: FROM variables bind to any value, not just tuples.",
		},
		{
			Name:   "semantics/from-binds-heterogeneous",
			Data:   map[string]string{"anything": `['a', 1, [2], {'b': 3}]`},
			Query:  `SELECT VALUE TYPE(v) FROM anything AS v`,
			Mode:   Both,
			Expect: `{{ 'string', 'integer', 'array', 'tuple' }}`,
			Notes:  "Collections need not be homogeneous (relaxation 1).",
		},
		{
			Name:   "semantics/at-ordinals",
			Data:   map[string]string{"letters": `['a', 'b', 'c']`},
			Query:  `SELECT VALUE {'i': i, 'v': v} FROM letters AS v AT i`,
			Mode:   Both,
			Expect: `{{ {'i':0,'v':'a'}, {'i':1,'v':'b'}, {'i':2,'v':'c'} }}`,
			Notes:  "AT binds array ordinals, aligned with 0-based indexing v[0].",
		},
		{
			Name:   "semantics/deep-nesting-left-correlation",
			Data:   map[string]string{"t": `{{ {'rows': [{'cells': [1, 2]}, {'cells': [3]}]} }}`},
			Query:  `SELECT VALUE c FROM t AS m, m.rows AS r, r.cells AS c`,
			Mode:   Both,
			Expect: `{{ 1, 2, 3 }}`,
			Notes:  "Left correlation chains through multiple nesting levels.",
		},
		{
			Name:   "semantics/select-value-scalar-result",
			Data:   map[string]string{"t": `{{ {'a': 1}, {'a': 2} }}`},
			Query:  `SELECT VALUE r.a + 1 FROM t AS r`,
			Mode:   Both,
			Expect: `{{ 2, 3 }}`,
			Notes:  "Relaxation 4/5: results are collections of any value, not only tuples.",
		},
		{
			Name:   "semantics/subquery-in-from",
			Data:   map[string]string{"t": `{{ {'a': 1}, {'a': 2}, {'a': 3} }}`},
			Query:  `SELECT VALUE x FROM (SELECT VALUE r.a FROM t AS r WHERE r.a > 1) AS x`,
			Mode:   Both,
			Expect: `{{ 2, 3 }}`,
			Notes:  "Composability: a subquery is a FROM source like any collection.",
		},
		{
			Name:   "semantics/select-clause-last",
			Data:   map[string]string{"t": `{{ {'a': 1}, {'a': 2} }}`},
			Query:  `FROM t AS r WHERE r.a > 1 SELECT VALUE r.a`,
			Mode:   Both,
			Expect: `{{ 2 }}`,
			Notes:  "§V-B: the SELECT clause may be written at the end of the query block.",
		},
		{
			Name:   "semantics/tuple-constructor-drops-missing",
			Data:   map[string]string{"t": `{{ {'id': 1} }}`},
			Query:  `SELECT VALUE {'id': r.id, 'gone': r.nope} FROM t AS r`,
			Mode:   Both,
			Expect: `{{ {'id': 1} }}`,
			Notes:  "§II: MISSING may not appear as an attribute's value.",
		},
		{
			Name:   "semantics/missing-vs-null-grouping",
			Data:   map[string]string{"t": `{{ {'k': null, 'v': 1}, {'v': 2}, {'k': null, 'v': 3}, {'v': 4} }}`},
			Query:  `SELECT g_cnt AS n FROM (SELECT COUNT(*) AS g_cnt FROM t AS r GROUP BY r.k) AS grp`,
			Mode:   Core,
			Expect: `{{ {'n': 2}, {'n': 2} }}`,
			Notes:  "NULL keys group together; MISSING keys form their own group, distinct from NULL.",
		},
		{
			Name:   "semantics/group-as-without-aggregation",
			Data:   map[string]string{"t": `{{ {'k': 1, 'v': 'a'}, {'k': 1, 'v': 'b'}, {'k': 2, 'v': 'c'} }}`},
			Query:  `FROM t AS r GROUP BY r.k AS k GROUP AS g SELECT k AS k, (FROM g AS x SELECT VALUE x.r.v) AS vs`,
			Mode:   Both,
			Expect: `{{ {'k': 1, 'vs': {{'a','b'}}}, {'k': 2, 'vs': {{'c'}}} }}`,
			Notes:  "Relaxation 5: groups are directly usable in nested queries, not only inside aggregate functions.",
		},
		{
			Name:   "semantics/unpivot-non-tuple",
			Data:   map[string]string{"t": `{{ 42 }}`},
			Query:  `SELECT VALUE {'name': n, 'val': v} FROM t AS r, UNPIVOT r AS v AT n`,
			Mode:   Core,
			Expect: `{{ {'name': '_1', 'val': 42} }}`,
			Notes:  "Permissive UNPIVOT of a non-tuple behaves as UNPIVOT {'_1': v}.",
		},
		{
			Name:   "semantics/bag-and-array-literals",
			Data:   map[string]string{"t": `{{ 1 }}`},
			Query:  `SELECT VALUE [ {{1, 2}}, <<3>>, [4] ] FROM t AS r`,
			Mode:   Both,
			Expect: `{{ [ {{1, 2}}, {{3}}, [4] ] }}`,
			Notes:  "Constructors compose: arrays of bags of scalars.",
		},
		{
			Name:   "semantics/order-by-total-order",
			Data:   map[string]string{"t": `{{ {'v': 'b'}, {'v': 2}, {'v': null}, {'v': true}, {'v': 1.5} }}`},
			Query:  `SELECT VALUE r.v FROM t AS r ORDER BY r.v`,
			Mode:   Both,
			Expect: `[ null, true, 1.5, 2, 'b' ]`,
			Notes:  "ORDER BY uses the SQL++ total order across type classes: absent < booleans < numbers < strings.",
		},
	}
}
