package compat

// SQLCompatCases is the plain-SQL battery behind the paper's first tenet:
// existing SQL queries keep working with identical syntax and semantics
// in a SQL++ processor. Every case here is standard SQL-92 (plus LIMIT/
// OFFSET) over flat, homogeneous tables, and each is expected to produce
// the textbook SQL answer in BOTH engine modes — composability must not
// break compatibility on tabular data.

const deptTable = `{{
  {'deptno': 1, 'dname': 'Engineering', 'budget': 500},
  {'deptno': 2, 'dname': 'Research',    'budget': 900},
  {'deptno': 3, 'dname': 'Sales',       'budget': 250}
}}`

const workerTable = `{{
  {'empno': 1, 'ename': 'Ada',  'deptno': 1, 'sal': 100, 'comm': null},
  {'empno': 2, 'ename': 'Bert', 'deptno': 1, 'sal': 80,  'comm': 10},
  {'empno': 3, 'ename': 'Cleo', 'deptno': 2, 'sal': 120, 'comm': null},
  {'empno': 4, 'ename': 'Dina', 'deptno': 2, 'sal': 95,  'comm': 5},
  {'empno': 5, 'ename': 'Evan', 'deptno': 3, 'sal': 60,  'comm': 20}
}}`

func sqlData() map[string]string {
	return map[string]string{"dept": deptTable, "worker": workerTable}
}

// SQLCompatCases returns the battery.
func SQLCompatCases() []*Case {
	return []*Case{
		{
			Name:  "sqlcompat/projection-filter",
			Data:  sqlData(),
			Query: `SELECT w.ename, w.sal FROM worker AS w WHERE w.sal >= 95`,
			Mode:  Both,
			Expect: `{{ {'ename': 'Ada', 'sal': 100},
			            {'ename': 'Cleo', 'sal': 120},
			            {'ename': 'Dina', 'sal': 95} }}`,
		},
		{
			Name:  "sqlcompat/unqualified-columns",
			Data:  sqlData(),
			Query: `SELECT ename, sal FROM worker WHERE sal >= 95`,
			Mode:  Both,
			Expect: `{{ {'ename': 'Ada', 'sal': 100},
			            {'ename': 'Cleo', 'sal': 120},
			            {'ename': 'Dina', 'sal': 95} }}`,
			Notes: "Implicit FROM alias and unqualified column references, disambiguated by the single range variable.",
		},
		{
			Name: "sqlcompat/inner-join",
			Data: sqlData(),
			Query: `SELECT w.ename, d.dname
			        FROM worker AS w JOIN dept AS d ON w.deptno = d.deptno
			        WHERE d.budget > 400`,
			Mode: Both,
			Expect: `{{ {'ename': 'Ada', 'dname': 'Engineering'},
			            {'ename': 'Bert', 'dname': 'Engineering'},
			            {'ename': 'Cleo', 'dname': 'Research'},
			            {'ename': 'Dina', 'dname': 'Research'} }}`,
		},
		{
			Name: "sqlcompat/left-join",
			Data: sqlData(),
			Query: `SELECT d.dname, w.ename
			        FROM dept AS d LEFT JOIN worker AS w
			             ON w.deptno = d.deptno AND w.sal > 90`,
			Mode: Both,
			Expect: `{{ {'dname': 'Engineering', 'ename': 'Ada'},
			            {'dname': 'Research', 'ename': 'Cleo'},
			            {'dname': 'Research', 'ename': 'Dina'},
			            {'dname': 'Sales', 'ename': null} }}`,
		},
		{
			Name: "sqlcompat/group-by-having",
			Data: sqlData(),
			Query: `SELECT w.deptno, COUNT(*) AS n, SUM(w.sal) AS total
			        FROM worker AS w
			        GROUP BY w.deptno
			        HAVING COUNT(*) > 1`,
			Mode: Both,
			Expect: `{{ {'deptno': 1, 'n': 2, 'total': 180},
			            {'deptno': 2, 'n': 2, 'total': 215} }}`,
		},
		{
			Name:   "sqlcompat/aggregate-null-handling",
			Data:   sqlData(),
			Query:  `SELECT COUNT(w.comm) AS n, AVG(w.comm) AS avgc FROM worker AS w`,
			Mode:   Both,
			Expect: `{{ {'n': 3, 'avgc': 11.666666666666666} }}`,
			Notes:  "SQL aggregates ignore NULL inputs; COUNT(col) counts non-nulls.",
		},
		{
			Name:   "sqlcompat/count-distinct",
			Data:   sqlData(),
			Query:  `SELECT COUNT(DISTINCT w.deptno) AS depts FROM worker AS w`,
			Mode:   Both,
			Expect: `{{ {'depts': 3} }}`,
		},
		{
			Name: "sqlcompat/order-limit-offset",
			Data: sqlData(),
			Query: `SELECT w.ename FROM worker AS w
			        ORDER BY w.sal DESC LIMIT 2 OFFSET 1`,
			Mode:   Both,
			Expect: `[ {'ename': 'Ada'}, {'ename': 'Dina'} ]`,
			Notes:  "ORDER BY makes the result an array.",
		},
		{
			Name: "sqlcompat/order-by-alias",
			Data: sqlData(),
			Query: `SELECT w.ename, w.sal * 2 AS double_sal FROM worker AS w
			        ORDER BY double_sal LIMIT 1`,
			Mode:   Both,
			Expect: `[ {'ename': 'Evan', 'double_sal': 120} ]`,
		},
		{
			Name: "sqlcompat/in-subquery",
			Data: sqlData(),
			Query: `SELECT w.ename FROM worker AS w
			        WHERE w.deptno IN (SELECT d.deptno FROM dept AS d WHERE d.budget > 400)`,
			Mode: Compat,
			Expect: `{{ {'ename': 'Ada'}, {'ename': 'Bert'},
			            {'ename': 'Cleo'}, {'ename': 'Dina'} }}`,
			Notes: "SQL coerces the sugar subquery to a collection of scalars in IN context (§V-A); compatibility mode only.",
		},
		{
			Name: "sqlcompat/scalar-subquery",
			Data: sqlData(),
			Query: `SELECT d.dname FROM dept AS d
			        WHERE d.budget = (SELECT MAX(d2.budget) FROM dept AS d2)`,
			Mode:   Compat,
			Expect: `{{ {'dname': 'Research'} }}`,
			Notes:  "Scalar coercion of a single-row single-column subquery (§V-A).",
		},
		{
			Name: "sqlcompat/quantified-all",
			Data: sqlData(),
			Query: `SELECT d.dname FROM dept AS d
			        WHERE d.budget >= ALL (SELECT d2.budget FROM dept AS d2)`,
			Mode:   Compat,
			Expect: `{{ {'dname': 'Research'} }}`,
			Notes:  "Quantified comparison with subquery coercion.",
		},
		{
			Name: "sqlcompat/quantified-any",
			Data: sqlData(),
			Query: `SELECT w.ename FROM worker AS w
			        WHERE w.sal < ANY (SELECT w2.sal FROM worker AS w2 WHERE w2.deptno = 3)`,
			Mode:   Compat,
			Expect: `{{}}`,
			Notes:  "No worker earns less than the single dept-3 salary of 60.",
		},
		{
			Name: "sqlcompat/exists-subquery",
			Data: sqlData(),
			Query: `SELECT d.dname FROM dept AS d
			        WHERE EXISTS (SELECT w.empno FROM worker AS w
			                      WHERE w.deptno = d.deptno AND w.sal > 110)`,
			Mode:   Both,
			Expect: `{{ {'dname': 'Research'} }}`,
		},
		{
			Name: "sqlcompat/case-when",
			Data: sqlData(),
			Query: `SELECT w.ename,
			               CASE WHEN w.sal >= 100 THEN 'senior'
			                    WHEN w.sal >= 80 THEN 'mid'
			                    ELSE 'junior' END AS band
			        FROM worker AS w`,
			Mode: Both,
			Expect: `{{ {'ename': 'Ada', 'band': 'senior'},
			            {'ename': 'Bert', 'band': 'mid'},
			            {'ename': 'Cleo', 'band': 'senior'},
			            {'ename': 'Dina', 'band': 'mid'},
			            {'ename': 'Evan', 'band': 'junior'} }}`,
		},
		{
			Name: "sqlcompat/between-and-in-list",
			Data: sqlData(),
			Query: `SELECT w.ename FROM worker AS w
			        WHERE w.sal BETWEEN 80 AND 100 AND w.deptno IN (1, 2)`,
			Mode: Both,
			Expect: `{{ {'ename': 'Ada'}, {'ename': 'Bert'},
			            {'ename': 'Dina'} }}`,
		},
		{
			Name:   "sqlcompat/three-valued-logic",
			Data:   sqlData(),
			Query:  `SELECT w.ename FROM worker AS w WHERE w.comm > 5 OR w.sal > 110`,
			Mode:   Both,
			Expect: `{{ {'ename': 'Bert'}, {'ename': 'Cleo'}, {'ename': 'Evan'} }}`,
			Notes:  "NULL comm makes the comparison UNKNOWN; OR still recovers rows via the second disjunct.",
		},
		{
			Name:   "sqlcompat/is-null",
			Data:   sqlData(),
			Query:  `SELECT w.ename FROM worker AS w WHERE w.comm IS NULL`,
			Mode:   Both,
			Expect: `{{ {'ename': 'Ada'}, {'ename': 'Cleo'} }}`,
		},
		{
			Name:   "sqlcompat/coalesce-nullif",
			Data:   sqlData(),
			Query:  `SELECT w.ename, COALESCE(w.comm, 0) AS comm FROM worker AS w WHERE NULLIF(w.deptno, 3) IS NOT NULL`,
			Mode:   Both,
			Expect: `{{ {'ename':'Ada','comm':0}, {'ename':'Bert','comm':10}, {'ename':'Cleo','comm':0}, {'ename':'Dina','comm':5} }}`,
		},
		{
			Name:   "sqlcompat/union-distinct",
			Data:   sqlData(),
			Query:  `SELECT w.deptno FROM worker AS w UNION SELECT d.deptno FROM dept AS d`,
			Mode:   Both,
			Expect: `{{ {'deptno': 1}, {'deptno': 2}, {'deptno': 3} }}`,
		},
		{
			Name:   "sqlcompat/select-star",
			Data:   map[string]string{"t": `{{ {'a': 1, 'b': 2} }}`},
			Query:  `SELECT * FROM t AS r`,
			Mode:   Both,
			Expect: `{{ {'a': 1, 'b': 2} }}`,
		},
		{
			Name:   "sqlcompat/select-distinct",
			Data:   sqlData(),
			Query:  `SELECT DISTINCT w.deptno FROM worker AS w`,
			Mode:   Both,
			Expect: `{{ {'deptno': 1}, {'deptno': 2}, {'deptno': 3} }}`,
		},
		{
			Name:   "sqlcompat/implicit-group",
			Data:   sqlData(),
			Query:  `SELECT MIN(w.sal) AS lo, MAX(w.sal) AS hi FROM worker AS w WHERE w.deptno <> 3`,
			Mode:   Both,
			Expect: `{{ {'lo': 80, 'hi': 120} }}`,
		},
		{
			Name:   "sqlcompat/string-functions",
			Data:   sqlData(),
			Query:  `SELECT UPPER(w.ename) AS u, SUBSTRING(w.ename, 1, 2) AS pre, w.ename || '!' AS bang FROM worker AS w WHERE w.empno = 1`,
			Mode:   Both,
			Expect: `{{ {'u': 'ADA', 'pre': 'Ad', 'bang': 'Ada!'} }}`,
		},
	}
}
