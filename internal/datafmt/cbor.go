package datafmt

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqlpp/internal/value"
)

// This file implements a from-scratch CBOR (RFC 8949) codec for the
// subset the SQL++ logical model needs: unsigned/negative integers (major
// types 0/1), byte strings (2), text strings (3), arrays (4), maps with
// text keys (5), and the simple values false/true/null plus float64
// (major type 7). Tag 258 ("mathematical finite set") marks bags on
// encode and is honored on decode; other tags (major type 6) are skipped
// transparently.

const cborBagTag = 258

// DecodeCBOR decodes a single CBOR data item.
func DecodeCBOR(data []byte) (value.Value, error) {
	d := &cborDecoder{buf: data}
	v, err := d.value()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("datafmt: %d trailing bytes after CBOR item", len(d.buf)-d.pos)
	}
	return v, nil
}

type cborDecoder struct {
	buf []byte
	pos int
}

func (d *cborDecoder) errf(format string, args ...any) error {
	return fmt.Errorf("datafmt: cbor offset %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *cborDecoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.errf("unexpected end of input")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *cborDecoder) take(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.buf) {
		return nil, d.errf("truncated item (need %d bytes)", n)
	}
	out := d.buf[d.pos : d.pos+n]
	d.pos += n
	return out, nil
}

// head reads a major type, its additional-info bits, and its argument.
// Indefinite lengths are not supported (RFC 8949 deterministic encoding
// forbids them too).
func (d *cborDecoder) head() (major, info byte, arg uint64, err error) {
	b, err := d.byte()
	if err != nil {
		return 0, 0, 0, err
	}
	major = b >> 5
	info = b & 0x1f
	switch {
	case info < 24:
		return major, info, uint64(info), nil
	case info == 24:
		c, err := d.byte()
		return major, info, uint64(c), err
	case info == 25:
		bs, err := d.take(2)
		if err != nil {
			return 0, 0, 0, err
		}
		return major, info, uint64(binary.BigEndian.Uint16(bs)), nil
	case info == 26:
		bs, err := d.take(4)
		if err != nil {
			return 0, 0, 0, err
		}
		return major, info, uint64(binary.BigEndian.Uint32(bs)), nil
	case info == 27:
		bs, err := d.take(8)
		if err != nil {
			return 0, 0, 0, err
		}
		return major, info, binary.BigEndian.Uint64(bs), nil
	}
	return 0, 0, 0, d.errf("unsupported additional info %d (indefinite lengths are not supported)", info)
}

func (d *cborDecoder) value() (value.Value, error) {
	major, info, arg, err := d.head()
	if err != nil {
		return nil, err
	}
	switch major {
	case 0: // unsigned int
		if arg > math.MaxInt64 {
			return value.Float(float64(arg)), nil
		}
		return value.Int(int64(arg)), nil
	case 1: // negative int: -1 - arg
		if arg > math.MaxInt64 {
			return value.Float(-1 - float64(arg)), nil
		}
		return value.Int(-1 - int64(arg)), nil
	case 2: // byte string
		bs, err := d.take(int(arg))
		if err != nil {
			return nil, err
		}
		out := make(value.Bytes, len(bs))
		copy(out, bs)
		return out, nil
	case 3: // text string
		bs, err := d.take(int(arg))
		if err != nil {
			return nil, err
		}
		return value.String(bs), nil
	case 4: // array
		out := make(value.Array, 0, min(int(arg), 1024))
		for i := uint64(0); i < arg; i++ {
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case 5: // map
		t := value.EmptyTuple()
		for i := uint64(0); i < arg; i++ {
			k, err := d.value()
			if err != nil {
				return nil, err
			}
			ks, ok := k.(value.String)
			if !ok {
				return nil, d.errf("map key is %s; only text keys map to tuples", k.Kind())
			}
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			t.Put(string(ks), v)
		}
		return t, nil
	case 6: // tag
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		if arg == cborBagTag {
			if a, ok := v.(value.Array); ok {
				return value.Bag(a), nil
			}
		}
		return v, nil
	case 7: // simple / float
		if info < 24 {
			switch arg {
			case 20:
				return value.False, nil
			case 21:
				return value.True, nil
			case 22, 23: // null, undefined — undefined maps to NULL too
				return value.Null, nil
			}
			return nil, d.errf("unsupported simple value %d", arg)
		}
		switch info {
		case 25: // half-precision float
			return value.Float(float16ToFloat64(uint16(arg))), nil
		case 26: // single-precision float
			return value.Float(float64(math.Float32frombits(uint32(arg)))), nil
		case 27: // double-precision float
			return value.Float(math.Float64frombits(arg)), nil
		}
		return nil, d.errf("unsupported simple value %d", arg)
	}
	return nil, d.errf("unsupported major type %d", major)
}

// float16ToFloat64 decodes an IEEE-754 half-precision value.
func float16ToFloat64(h uint16) float64 {
	sign := uint64(h>>15) & 1
	exp := uint64(h>>10) & 0x1f
	frac := uint64(h) & 0x3ff
	var bits uint64
	switch exp {
	case 0:
		if frac == 0 {
			bits = sign << 63
		} else {
			// subnormal: normalize
			e := uint64(1022 - 14)
			for frac&0x400 == 0 {
				frac <<= 1
				e--
			}
			frac &= 0x3ff
			bits = sign<<63 | (e+1)<<52 | frac<<42
		}
	case 31:
		bits = sign<<63 | 0x7ff<<52 | frac<<42
	default:
		bits = sign<<63 | (exp+1023-15)<<52 | frac<<42
	}
	return math.Float64frombits(bits)
}

// EncodeCBOR encodes v as a single CBOR item. Bags carry tag 258 so they
// round-trip; MISSING is not encodable.
func EncodeCBOR(v value.Value) ([]byte, error) {
	return appendCBOR(nil, v)
}

func appendCBOR(dst []byte, v value.Value) ([]byte, error) {
	switch x := v.(type) {
	case value.Bool:
		if x {
			return append(dst, 0xf5), nil
		}
		return append(dst, 0xf4), nil
	case value.Int:
		if x >= 0 {
			return appendCBORHead(dst, 0, uint64(x)), nil
		}
		return appendCBORHead(dst, 1, uint64(-1-int64(x))), nil
	case value.Float:
		dst = append(dst, 0xfb)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(float64(x)))
		return append(dst, buf[:]...), nil
	case value.String:
		dst = appendCBORHead(dst, 3, uint64(len(x)))
		return append(dst, x...), nil
	case value.Bytes:
		dst = appendCBORHead(dst, 2, uint64(len(x)))
		return append(dst, x...), nil
	case value.Array:
		dst = appendCBORHead(dst, 4, uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = appendCBOR(dst, e); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case value.Bag:
		dst = appendCBORHead(dst, 6, cborBagTag)
		dst = appendCBORHead(dst, 4, uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = appendCBOR(dst, e); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case *value.Tuple:
		dst = appendCBORHead(dst, 5, uint64(x.Len()))
		var err error
		for _, f := range x.Fields() {
			dst = appendCBORHead(dst, 3, uint64(len(f.Name)))
			dst = append(dst, f.Name...)
			if dst, err = appendCBOR(dst, f.Value); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		switch v.Kind() {
		case value.KindNull:
			return append(dst, 0xf6), nil
		case value.KindMissing:
			return nil, fmt.Errorf("datafmt: MISSING cannot be encoded as CBOR")
		}
	}
	return nil, fmt.Errorf("datafmt: cannot encode %s as CBOR", v.Kind())
}

func appendCBORHead(dst []byte, major byte, arg uint64) []byte {
	mb := major << 5
	switch {
	case arg < 24:
		return append(dst, mb|byte(arg))
	case arg <= math.MaxUint8:
		return append(dst, mb|24, byte(arg))
	case arg <= math.MaxUint16:
		var buf [2]byte
		binary.BigEndian.PutUint16(buf[:], uint16(arg))
		return append(append(dst, mb|25), buf[:]...)
	case arg <= math.MaxUint32:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(arg))
		return append(append(dst, mb|26), buf[:]...)
	default:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], arg)
		return append(append(dst, mb|27), buf[:]...)
	}
}
