package datafmt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sqlpp/internal/value"
)

// CSVOptions configures CSV decoding.
type CSVOptions struct {
	// Comma is the field delimiter; 0 means ','.
	Comma rune
	// NoHeader synthesizes column names _1, _2, ... instead of reading
	// the first row as a header.
	NoHeader bool
	// Strings disables type inference: every field stays a string.
	Strings bool
	// EmptyAsMissing drops empty fields entirely (the missing-attribute
	// style of §IV-A) instead of keeping them as empty strings.
	EmptyAsMissing bool
}

// DecodeCSV reads CSV rows as a bag of tuples. By default the first row
// names the attributes and fields are inferred as integers, floats,
// booleans, or null; anything else stays a string.
func DecodeCSV(r io.Reader, opts CSVOptions) (value.Value, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	var header []string
	if !opts.NoHeader {
		rec, err := cr.Read()
		if err == io.EOF {
			return value.Bag{}, nil
		}
		if err != nil {
			return nil, err
		}
		header = append(header, rec...)
	}
	var out value.Bag
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		t := value.EmptyTuple()
		for i, field := range rec {
			name := columnName(header, i)
			if field == "" && opts.EmptyAsMissing {
				continue
			}
			if opts.Strings {
				t.Put(name, value.String(field))
				continue
			}
			t.Put(name, inferCSVValue(field))
		}
		out = append(out, t)
	}
}

// ParseCSV decodes a CSV string.
func ParseCSV(src string, opts CSVOptions) (value.Value, error) {
	return DecodeCSV(strings.NewReader(src), opts)
}

func columnName(header []string, i int) string {
	if i < len(header) && header[i] != "" {
		return header[i]
	}
	return fmt.Sprintf("_%d", i+1)
}

// inferCSVValue maps a CSV field to the narrowest SQL++ scalar.
func inferCSVValue(field string) value.Value {
	switch field {
	case "":
		return value.String("")
	case "null", "NULL":
		return value.Null
	case "true", "TRUE":
		return value.True
	case "false", "FALSE":
		return value.False
	}
	if i, err := strconv.ParseInt(field, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(field, 64); err == nil {
		return value.Float(f)
	}
	return value.String(field)
}

// EncodeCSV writes a collection of tuples as CSV with a header of the
// union of attribute names (in first-seen order). Nested values encode
// as their object-notation text; absent attributes encode as empty
// fields.
func EncodeCSV(w io.Writer, v value.Value) error {
	elems, ok := value.Elements(v)
	if !ok {
		return fmt.Errorf("datafmt: CSV encoding requires a collection, got %s", v.Kind())
	}
	var header []string
	index := map[string]int{}
	for _, e := range elems {
		t, ok := e.(*value.Tuple)
		if !ok {
			return fmt.Errorf("datafmt: CSV encoding requires tuples, got %s", e.Kind())
		}
		for _, f := range t.Fields() {
			if _, seen := index[f.Name]; !seen {
				index[f.Name] = len(header)
				header = append(header, f.Name)
			}
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, e := range elems {
		t := e.(*value.Tuple)
		for i := range row {
			row[i] = ""
		}
		for _, f := range t.Fields() {
			row[index[f.Name]] = csvField(f.Value)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvField(v value.Value) string {
	switch x := v.(type) {
	case value.String:
		return string(x)
	case value.Int, value.Float, value.Bool:
		s := v.String()
		return s
	default:
		if v.Kind() == value.KindNull {
			return "null"
		}
		return v.String()
	}
}
