package datafmt

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func TestDecodeJSONScalars(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"null", value.Null},
		{"true", value.True},
		{"42", value.Int(42)},
		{"-7", value.Int(-7)},
		{"2.5", value.Float(2.5)},
		{"1e30", value.Float(1e30)},
		{`"hi"`, value.String("hi")},
		{`"é"`, value.String("é")},
		{"[]", value.Array{}},
		{"[1,[2]]", value.Array{value.Int(1), value.Array{value.Int(2)}}},
	}
	for _, c := range cases {
		got, err := ParseJSON(c.src)
		if err != nil {
			t.Errorf("ParseJSON(%q): %v", c.src, err)
			continue
		}
		if !value.DeepEqual(got, c.want) {
			t.Errorf("ParseJSON(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestDecodeJSONObjects(t *testing.T) {
	got, err := ParseJSON(`{"b": 1, "a": 2, "b": 3}`)
	if err != nil {
		t.Fatal(err)
	}
	tup := got.(*value.Tuple)
	// Member order and duplicate names survive (JSON is "non-strict"
	// data in the paper's sense).
	fs := tup.Fields()
	if len(fs) != 3 || fs[0].Name != "b" || fs[1].Name != "a" || fs[2].Name != "b" {
		t.Errorf("fields = %v", fs)
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	for _, src := range []string{"", "{", "[1,]", `{"a":}`, "1 2"} {
		if _, err := ParseJSON(src); err == nil {
			t.Errorf("ParseJSON(%q) should fail", src)
		}
	}
}

func TestDecodeJSONBagAndLines(t *testing.T) {
	v, err := DecodeJSONBag(strings.NewReader(`[{"a":1},{"a":2}]`))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind() != value.KindBag {
		t.Errorf("top-level array should register as a bag, got %s", v.Kind())
	}
	lines, err := DecodeJSONLines(strings.NewReader("{\"a\":1}\n{\"a\":2}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if elems, _ := value.Elements(lines); len(elems) != 2 {
		t.Errorf("JSONL = %v", lines)
	}
}

func TestEncodeJSON(t *testing.T) {
	v := sion.MustParse(`{'a': 1, 'b': [1.5, null, true], 's': 'x"y'}`)
	got, err := JSONString(v)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":1,"b":[1.5,null,true],"s":"x\"y"}`
	if got != want {
		t.Errorf("JSONString = %s, want %s", got, want)
	}
	// MISSING refuses to encode.
	if _, err := JSONString(value.Missing); err == nil {
		t.Error("MISSING must not encode")
	}
	// Bags encode canonically ordered.
	bag, _ := JSONString(value.Bag{value.Int(2), value.Int(1)})
	if bag != "[1,2]" {
		t.Errorf("bag encoding = %s", bag)
	}
	// NaN/Inf degrade to null (JSON cannot express them).
	nan, _ := JSONString(value.Float(math.NaN()))
	if nan != "null" {
		t.Errorf("NaN encoding = %s", nan)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		v := randomJSONValue(r, 3)
		s, err := JSONString(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := ParseJSON(s)
		if err != nil {
			t.Fatalf("decode %q: %v", s, err)
		}
		if !value.Equivalent(jsonNormalize(v), back) {
			t.Fatalf("round trip of %v via %q gave %v", v, s, back)
		}
	}
}

// randomJSONValue avoids bytes (hex-string mapping is lossy by design)
// and bags (ordered as arrays).
func randomJSONValue(r *rand.Rand, depth int) value.Value {
	max := 7
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return value.Null
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Int(r.Int63n(1e12) - 5e11)
	case 3:
		return value.Float(float64(r.Int63n(1e9)) / 256)
	case 4:
		return value.String(strings.Repeat("aé\"\\", r.Intn(3)))
	case 5:
		out := make(value.Array, r.Intn(4))
		for i := range out {
			out[i] = randomJSONValue(r, depth-1)
		}
		if out == nil {
			out = value.Array{}
		}
		return out
	default:
		t := value.EmptyTuple()
		for i, n := 0, r.Intn(4); i < n; i++ {
			t.Set(string(rune('a'+i)), randomJSONValue(r, depth-1))
		}
		return t
	}
}

// jsonNormalize maps values onto their JSON-representable image (nil
// transformation here since the generator avoids lossy cases).
func jsonNormalize(v value.Value) value.Value { return v }

func TestCSVDecode(t *testing.T) {
	src := "id,name,score,ok\n1,Ada,9.5,true\n2,Bob,,false\n"
	v, err := ParseCSV(src, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := sion.MustParse(`{{
	  {'id': 1, 'name': 'Ada', 'score': 9.5, 'ok': true},
	  {'id': 2, 'name': 'Bob', 'score': '', 'ok': false}
	}}`)
	if !value.Equivalent(v, want) {
		t.Errorf("CSV = %s, want %s", v, want)
	}
}

func TestCSVOptions(t *testing.T) {
	// EmptyAsMissing drops empty fields: the missing-attribute style.
	v, err := ParseCSV("a,b\n1,\n", CSVOptions{EmptyAsMissing: true})
	if err != nil {
		t.Fatal(err)
	}
	tup := v.(value.Bag)[0].(*value.Tuple)
	if _, ok := tup.Get("b"); ok {
		t.Error("empty field should be a missing attribute")
	}
	// NoHeader synthesizes positional names.
	v2, err := ParseCSV("7,x\n", CSVOptions{NoHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	tup2 := v2.(value.Bag)[0].(*value.Tuple)
	if got, _ := tup2.Get("_1"); got != value.Int(7) {
		t.Errorf("_1 = %s", got)
	}
	// Strings disables inference.
	v3, _ := ParseCSV("a\n42\n", CSVOptions{Strings: true})
	if got, _ := v3.(value.Bag)[0].(*value.Tuple).Get("a"); got != value.String("42") {
		t.Errorf("strings mode a = %s", got)
	}
	// Custom delimiter, null/NULL inference.
	v4, err := ParseCSV("a;b\nnull;NULL\n", CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	t4 := v4.(value.Bag)[0].(*value.Tuple)
	a, _ := t4.Get("a")
	b, _ := t4.Get("b")
	if a.Kind() != value.KindNull || b.Kind() != value.KindNull {
		t.Errorf("null inference = %s, %s", a, b)
	}
}

func TestCSVEncodeRoundTrip(t *testing.T) {
	orig := sion.MustParse(`{{
	  {'id': 1, 'name': 'Ada'},
	  {'id': 2, 'name': 'Bob', 'extra': true}
	}}`)
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(buf.String(), CSVOptions{EmptyAsMissing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equivalent(orig, back) {
		t.Errorf("CSV round trip:\n  orig %s\n  back %s", orig, back)
	}
	// Non-tuple collections refuse to encode.
	if err := EncodeCSV(&buf, value.Bag{value.Int(1)}); err == nil {
		t.Error("CSV of non-tuples should fail")
	}
	if err := EncodeCSV(&buf, value.Int(1)); err == nil {
		t.Error("CSV of a scalar should fail")
	}
}

func TestCBORKnownVectors(t *testing.T) {
	// Hand-checked RFC 8949 encodings.
	cases := []struct {
		bytes []byte
		want  value.Value
	}{
		{[]byte{0x00}, value.Int(0)},
		{[]byte{0x17}, value.Int(23)},
		{[]byte{0x18, 0x18}, value.Int(24)},
		{[]byte{0x19, 0x01, 0x00}, value.Int(256)},
		{[]byte{0x20}, value.Int(-1)},
		{[]byte{0x38, 0x63}, value.Int(-100)},
		{[]byte{0xf4}, value.False},
		{[]byte{0xf5}, value.True},
		{[]byte{0xf6}, value.Null},
		{[]byte{0xf7}, value.Null}, // undefined -> NULL
		{[]byte{0x63, 'a', 'b', 'c'}, value.String("abc")},
		{[]byte{0x42, 0x01, 0x02}, value.Bytes{1, 2}},
		{[]byte{0x82, 0x01, 0x02}, value.Array{value.Int(1), value.Int(2)}},
		{[]byte{0xfb, 0x3f, 0xf1, 0x99, 0x99, 0x99, 0x99, 0x99, 0x9a}, value.Float(1.1)},
		{[]byte{0xf9, 0x3c, 0x00}, value.Float(1.0)}, // half precision
		{[]byte{0xf9, 0x00, 0x00}, value.Float(0.0)}, // half zero
		{[]byte{0xf9, 0x7c, 0x00}, value.Float(math.Inf(1))},
		{[]byte{0xfa, 0x40, 0x49, 0x0f, 0xdb}, value.Float(float64(float32(3.14159274)))},
		{[]byte{0xa1, 0x61, 'k', 0x05}, value.NewTuple(value.Field{Name: "k", Value: value.Int(5)})},
	}
	for _, c := range cases {
		got, err := DecodeCBOR(c.bytes)
		if err != nil {
			t.Errorf("DecodeCBOR(% x): %v", c.bytes, err)
			continue
		}
		if !value.Equivalent(got, c.want) {
			t.Errorf("DecodeCBOR(% x) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestCBORHalfPrecisionSubnormalAndNaN(t *testing.T) {
	// Subnormal half: 0x0001 = 2^-24.
	got, err := DecodeCBOR([]byte{0xf9, 0x00, 0x01})
	if err != nil {
		t.Fatal(err)
	}
	if f := float64(got.(value.Float)); f != math.Pow(2, -24) {
		t.Errorf("subnormal half = %g", f)
	}
	nan, err := DecodeCBOR([]byte{0xf9, 0x7e, 0x00})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(nan.(value.Float))) {
		t.Errorf("half NaN = %v", nan)
	}
}

func TestCBORErrors(t *testing.T) {
	cases := [][]byte{
		{},                 // empty
		{0x19, 0x01},       // truncated argument
		{0x62, 'a'},        // truncated string
		{0x82, 0x01},       // truncated array
		{0x5f},             // indefinite length
		{0x01, 0x02},       // trailing bytes
		{0xa1, 0x01, 0x02}, // non-text map key
	}
	for _, src := range cases {
		if _, err := DecodeCBOR(src); err == nil {
			t.Errorf("DecodeCBOR(% x) should fail", src)
		}
	}
}

func TestCBORRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		v := randomCBORValue(r, 3)
		enc, err := EncodeCBOR(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := DecodeCBOR(enc)
		if err != nil {
			t.Fatalf("decode % x (of %v): %v", enc, v, err)
		}
		if !value.Equivalent(v, back) {
			t.Fatalf("round trip of %v gave %v", v, back)
		}
	}
}

func randomCBORValue(r *rand.Rand, depth int) value.Value {
	max := 9
	if depth <= 0 {
		max = 6
	}
	switch r.Intn(max) {
	case 0:
		return value.Null
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Int(r.Int63() - (1 << 62))
	case 3:
		return value.Float(r.NormFloat64() * 1e6)
	case 4:
		return value.String(strings.Repeat("xé", r.Intn(4)))
	case 5:
		b := make(value.Bytes, r.Intn(6))
		r.Read(b)
		return b
	case 6:
		out := make(value.Array, r.Intn(4))
		for i := range out {
			out[i] = randomCBORValue(r, depth-1)
		}
		return out
	case 7:
		out := make(value.Bag, r.Intn(4))
		for i := range out {
			out[i] = randomCBORValue(r, depth-1)
		}
		return out
	default:
		t := value.EmptyTuple()
		for i, n := 0, r.Intn(4); i < n; i++ {
			t.Put(string(rune('a'+i)), randomCBORValue(r, depth-1))
		}
		return t
	}
}

func TestCBORMissingRefuses(t *testing.T) {
	if _, err := EncodeCBOR(value.Missing); err == nil {
		t.Error("MISSING must not encode as CBOR")
	}
}

// Format independence in miniature: the same logical value decoded from
// every format is equivalent.
func TestCrossFormatEquivalence(t *testing.T) {
	jsonSrc := `[{"id":1,"name":"Ada","score":9.5},{"id":2,"name":"Bob","score":3}]`
	csvSrc := "id,name,score\n1,Ada,9.5\n2,Bob,3\n"
	sionSrc := `{{ {'id':1,'name':'Ada','score':9.5}, {'id':2,'name':'Bob','score':3} }}`

	fromJSON, err := DecodeJSONBag(strings.NewReader(jsonSrc))
	if err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ParseCSV(csvSrc, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fromSION := sion.MustParse(sionSrc)
	cb, err := EncodeCBOR(fromSION)
	if err != nil {
		t.Fatal(err)
	}
	fromCBOR, err := DecodeCBOR(cb)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]value.Value{"csv": fromCSV, "sion": fromSION, "cbor": fromCBOR} {
		if !value.Equivalent(fromJSON, v) {
			t.Errorf("%s decoding differs from JSON:\n  json %s\n  %s %s", name, fromJSON, name, v)
		}
	}
}
