package datafmt

import (
	"bytes"
	"testing"

	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func TestEncodeJSONWriter(t *testing.T) {
	var buf bytes.Buffer
	v := sion.MustParse(`{'a': [1, x'ff'], 'b': {{2, 1}}}`)
	if err := EncodeJSON(&buf, v); err != nil {
		t.Fatal(err)
	}
	want := `{"a":[1,"ff"],"b":[1,2]}`
	if buf.String() != want {
		t.Errorf("EncodeJSON = %s, want %s", buf.String(), want)
	}
	if err := EncodeJSON(&buf, value.Missing); err == nil {
		t.Error("MISSING must not encode")
	}
	// Nested MISSING inside a constructed value cannot occur (tuple
	// construction drops it), but a hand-built array can carry it.
	if err := EncodeJSON(&buf, value.Array{value.Missing}); err == nil {
		t.Error("nested MISSING must fail")
	}
}

func TestCSVFieldRendering(t *testing.T) {
	row := sion.MustParse(`{{ {'s': 'plain', 'i': 7, 'f': 1.5, 'b': true, 'n': null, 'nested': [1, 2]} }}`)
	var buf bytes.Buffer
	if err := EncodeCSV(&buf, row); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "s,i,f,b,n,nested\nplain,7,1.5,true,null,\"[1, 2]\"\n"
	if got != want {
		t.Errorf("EncodeCSV = %q, want %q", got, want)
	}
}

func TestCBORLargeArguments(t *testing.T) {
	// Lengths crossing the 1-byte/2-byte/4-byte head boundaries.
	for _, n := range []int{23, 24, 255, 256, 65535, 65536} {
		s := value.String(bytes.Repeat([]byte{'a'}, n))
		enc, err := EncodeCBOR(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeCBOR(enc)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !value.DeepEqual(s, back) {
			t.Fatalf("n=%d round trip failed", n)
		}
	}
	// Negative and large integers at head boundaries.
	for _, i := range []int64{-1, -24, -25, -256, -257, 1 << 40, -(1 << 40)} {
		enc, err := EncodeCBOR(value.Int(i))
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeCBOR(enc)
		if err != nil || !value.DeepEqual(value.Int(i), back) {
			t.Fatalf("int %d round trip: %v, %v", i, back, err)
		}
	}
}
