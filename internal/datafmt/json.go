// Package datafmt maps external data formats onto the SQL++ data model,
// realizing the paper's format-independence tenet: a query is written
// identically over JSON, CSV, CBOR, or the paper's object notation,
// because every format decodes to the same logical values.
//
// Mapping notes:
//   - JSON objects become tuples (preserving member order and permitting
//     duplicate names), arrays become arrays, and top-level arrays can be
//     read as bags for collection registration.
//   - CSV rows become tuples named by the header line; fields parse as
//     numbers or booleans when unambiguous, else strings.
//   - CBOR (RFC 8949) is implemented from scratch for the major types;
//     maps with text keys become tuples, arrays become arrays.
package datafmt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"sqlpp/internal/value"
)

// DecodeJSON reads one JSON value from r into the SQL++ data model.
// Numbers become Int when they are integral and fit int64, else Float.
func DecodeJSON(r io.Reader) (value.Value, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	v, err := decodeJSONValue(dec)
	if err != nil {
		return nil, err
	}
	// Disallow trailing content beyond whitespace.
	if dec.More() {
		return nil, fmt.Errorf("datafmt: trailing content after JSON value")
	}
	return v, nil
}

// ParseJSON decodes a JSON string.
func ParseJSON(src string) (value.Value, error) {
	return DecodeJSON(strings.NewReader(src))
}

// DecodeJSONBag reads a JSON value and converts a top-level array into a
// bag, the natural registration shape for a collection of documents.
func DecodeJSONBag(r io.Reader) (value.Value, error) {
	v, err := DecodeJSON(r)
	if err != nil {
		return nil, err
	}
	if a, ok := v.(value.Array); ok {
		return value.Bag(a), nil
	}
	return v, nil
}

// DecodeJSONLines reads newline-delimited JSON documents as a bag.
func DecodeJSONLines(r io.Reader) (value.Value, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var out value.Bag
	for dec.More() {
		v, err := decodeJSONValue(dec)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func decodeJSONValue(dec *json.Decoder) (value.Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	return decodeJSONToken(dec, tok)
}

func decodeJSONToken(dec *json.Decoder, tok json.Token) (value.Value, error) {
	switch t := tok.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.Bool(t), nil
	case string:
		return value.String(t), nil
	case json.Number:
		return jsonNumber(t), nil
	case json.Delim:
		switch t {
		case '[':
			var out value.Array
			for dec.More() {
				v, err := decodeJSONValue(dec)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, err
			}
			if out == nil {
				out = value.Array{}
			}
			return out, nil
		case '{':
			tup := value.EmptyTuple()
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("datafmt: non-string JSON object key %v", keyTok)
				}
				v, err := decodeJSONValue(dec)
				if err != nil {
					return nil, err
				}
				tup.Put(key, v)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, err
			}
			return tup, nil
		}
	}
	return nil, fmt.Errorf("datafmt: unexpected JSON token %v", tok)
}

func jsonNumber(n json.Number) value.Value {
	if i, err := n.Int64(); err == nil {
		return value.Int(i)
	}
	f, err := n.Float64()
	if err != nil {
		return value.Null
	}
	return value.Float(f)
}

// EncodeJSON writes v as JSON. MISSING cannot be encoded (it denotes
// absence); encountering it anywhere is an error — construct results
// first, where tuple construction drops MISSING attributes. Bags encode
// as arrays (JSON has no unordered collection), in canonical order for
// determinism.
func EncodeJSON(w io.Writer, v value.Value) error {
	var buf bytes.Buffer
	if err := appendJSON(&buf, v); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// JSONString renders v as a JSON string.
func JSONString(v value.Value) (string, error) {
	var buf bytes.Buffer
	if err := appendJSON(&buf, v); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func appendJSON(buf *bytes.Buffer, v value.Value) error {
	switch x := v.(type) {
	case value.Bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case value.Int:
		buf.WriteString(strconv.FormatInt(int64(x), 10))
	case value.Float:
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			buf.WriteString("null") // JSON cannot express them
			return nil
		}
		buf.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	case value.String:
		b, err := json.Marshal(string(x))
		if err != nil {
			return err
		}
		buf.Write(b)
	case value.Bytes:
		// Bytes encode as a hex string, the closest JSON-safe mapping.
		const hex = "0123456789abcdef"
		buf.WriteByte('"')
		for _, c := range x {
			buf.WriteByte(hex[c>>4])
			buf.WriteByte(hex[c&0xf])
		}
		buf.WriteByte('"')
	case value.Array:
		return appendJSONSeq(buf, x)
	case value.Bag:
		sorted := make([]value.Value, len(x))
		copy(sorted, x)
		sort.SliceStable(sorted, func(i, j int) bool { return value.Compare(sorted[i], sorted[j]) < 0 })
		return appendJSONSeq(buf, sorted)
	case *value.Tuple:
		buf.WriteByte('{')
		for i, f := range x.Fields() {
			if i > 0 {
				buf.WriteByte(',')
			}
			b, err := json.Marshal(f.Name)
			if err != nil {
				return err
			}
			buf.Write(b)
			buf.WriteByte(':')
			if err := appendJSON(buf, f.Value); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		switch v.Kind() {
		case value.KindNull:
			buf.WriteString("null")
		case value.KindMissing:
			return fmt.Errorf("datafmt: MISSING cannot be encoded as JSON")
		default:
			return fmt.Errorf("datafmt: cannot encode %s as JSON", v.Kind())
		}
	}
	return nil
}

func appendJSONSeq(buf *bytes.Buffer, vs []value.Value) error {
	buf.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			buf.WriteByte(',')
		}
		if err := appendJSON(buf, v); err != nil {
			return err
		}
	}
	buf.WriteByte(']')
	return nil
}
