package eval

import (
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
	"sqlpp/internal/sion"
)

func benchEval(b *testing.B, src string, vars map[string]string) {
	b.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	env := NewEnv()
	for name, vsrc := range vars {
		env.Bind(name, sion.MustParse(vsrc))
	}
	ctx := &Context{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(ctx, env, e); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCompiled is benchEval's twin on the compiled path: the same
// expression lowered once by Compile, then executed as a closure. The
// Benchmark{Eval,Compiled}X pairs measure exactly the per-evaluation
// saving closure compilation buys — parse and compile cost is outside
// the timer in both.
func benchCompiled(b *testing.B, src string, vars map[string]string) {
	b.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	env := NewEnv()
	for name, vsrc := range vars {
		env.Bind(name, sion.MustParse(vsrc))
	}
	ctx := &Context{}
	c := Compile(e, CompileOpts{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c(ctx, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalArithmetic(b *testing.B) {
	benchEval(b, "(x + 3) * 2 - x % 7", map[string]string{"x": "41"})
}

func BenchmarkCompiledArithmetic(b *testing.B) {
	benchCompiled(b, "(x + 3) * 2 - x % 7", map[string]string{"x": "41"})
}

func BenchmarkEvalNavigation(b *testing.B) {
	benchEval(b, "t.a.b[1].c", map[string]string{
		"t": `{'a': {'b': [{'c': 0}, {'c': 42}]}}`,
	})
}

func BenchmarkCompiledNavigation(b *testing.B) {
	benchCompiled(b, "t.a.b[1].c", map[string]string{
		"t": `{'a': {'b': [{'c': 0}, {'c': 42}]}}`,
	})
}

func BenchmarkEvalMissingNavigation(b *testing.B) {
	benchEval(b, "t.nope.deeper.still", map[string]string{"t": `{'a': 1}`})
}

func BenchmarkEvalLike(b *testing.B) {
	benchEval(b, "s LIKE '%Security%'", map[string]string{"s": "'OLAP Security Engineering'"})
}

func BenchmarkCompiledLike(b *testing.B) {
	benchCompiled(b, "s LIKE '%Security%'", map[string]string{"s": "'OLAP Security Engineering'"})
}

func BenchmarkEvalLikeComplex(b *testing.B) {
	benchEval(b, "s LIKE '%a_b%c__d%'", map[string]string{"s": "'xxaybzzcqqdww'"})
}

func BenchmarkCompiledLikeComplex(b *testing.B) {
	benchCompiled(b, "s LIKE '%a_b%c__d%'", map[string]string{"s": "'xxaybzzcqqdww'"})
}

func BenchmarkEvalPredicate(b *testing.B) {
	benchEval(b, "x > 10 AND x < 100 OR x = 42", map[string]string{"x": "42"})
}

func BenchmarkCompiledPredicate(b *testing.B) {
	benchCompiled(b, "x > 10 AND x < 100 OR x = 42", map[string]string{"x": "42"})
}

func BenchmarkEvalCase(b *testing.B) {
	benchEval(b, "CASE WHEN x > 100 THEN 'hi' WHEN x > 10 THEN 'mid' ELSE 'lo' END",
		map[string]string{"x": "42"})
}

func BenchmarkCompiledCase(b *testing.B) {
	benchCompiled(b, "CASE WHEN x > 100 THEN 'hi' WHEN x > 10 THEN 'mid' ELSE 'lo' END",
		map[string]string{"x": "42"})
}

func BenchmarkEvalTupleCtor(b *testing.B) {
	benchEval(b, "{'a': x, 'b': x + 1, 'c': 'lit'}", map[string]string{"x": "1"})
}

func BenchmarkCompiledTupleCtor(b *testing.B) {
	benchCompiled(b, "{'a': x, 'b': x + 1, 'c': 'lit'}", map[string]string{"x": "1"})
}

func BenchmarkEnvLookup(b *testing.B) {
	env := NewEnv()
	env.Bind("a", sion.MustParse("1"))
	child := env.Child()
	child.Bind("b", sion.MustParse("2"))
	grand := child.Child()
	grand.Bind("c", sion.MustParse("3"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grand.Lookup("a") // deepest walk
	}
}

var sinkExpr ast.Expr

func BenchmarkEnvChildBind(b *testing.B) {
	root := NewEnv()
	root.Bind("e", sion.MustParse("{'id': 1}"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := root.Child()
		c.Bind("p", sion.MustParse("1"))
	}
	_ = sinkExpr
}
