package eval

import (
	"fmt"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// Closure compilation: each AST node is lowered once, at prepare time,
// to a CompiledExpr closure. The per-row work then runs without the
// tree-walk dispatch of Eval — literals are captured constants, the
// typing-mode and compat branches are resolved to captured bits,
// function definitions and LIKE matchers for literal patterns are
// looked up once, and argument/element buffers are the only per-row
// allocations that remain.
//
// Identity with the interpreter is held by construction: every compiled
// closure delegates to the same value-level helpers Eval uses (Arith,
// Comparison, Navigate, likeValue, inValues, ...), evaluates operands
// in the same order, and produces the same error values. Node kinds the
// compiler does not lower — nested query blocks chiefly — fall back to
// a closure around Eval, so compiled and interpreted subtrees mix
// freely.
//
// A CompiledExpr is only valid under a Context whose Mode and Compat
// match the CompileOpts it was compiled with; the planner guarantees
// that by compiling with the engine's own option bits.
//
// Discipline, enforced by the compilepure linter: closures are
// allocated at compile time only. No compiled closure body may allocate
// another closure per row, so no func literal nests inside another func
// literal in this file.

// CompiledExpr is a prepared expression: Eval specialized to one AST
// node, ready to run against a row environment.
type CompiledExpr func(*Context, *Env) (value.Value, error)

// CompileOpts are the semantics bits a compilation specializes on. They
// must match the Context the compiled expression later runs under.
type CompileOpts struct {
	// Mode is the typing mode (permissive vs stop-on-error) baked into
	// the compiled closures.
	Mode TypingMode
	// Compat is the SQL-compatibility bit baked into the compiled
	// closures.
	Compat bool
	// Funcs resolves function calls at compile time. Nil leaves calls
	// on the interpreted path.
	Funcs FuncSource
}

// Compile lowers e to a closure. A nil expression compiles to nil.
func Compile(e ast.Expr, o CompileOpts) CompiledExpr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ast.Literal:
		return compileLiteral(x)
	case *ast.VarRef:
		return compileVarRef(x)
	case *ast.NamedRef:
		return compileNamedRef(x)
	case *ast.FieldAccess:
		return compileFieldAccess(x, o)
	case *ast.IndexAccess:
		return compileIndexAccess(x, o)
	case *ast.Unary:
		return compileUnary(x, o)
	case *ast.Binary:
		return compileBinary(x, o)
	case *ast.Like:
		return compileLikeExpr(x, o)
	case *ast.Between:
		return compileBetween(x, o)
	case *ast.In:
		return compileIn(x, o)
	case *ast.Is:
		return compileIs(x, o)
	case *ast.Quantified:
		return compileQuantified(x, o)
	case *ast.Case:
		return compileCase(x, o)
	case *ast.Call:
		return compileCall(x, o)
	case *ast.TupleCtor:
		return compileTupleCtor(x, o)
	case *ast.ArrayCtor:
		return compileArrayCtor(x, o)
	case *ast.BagCtor:
		return compileBagCtor(x, o)
	case *ast.Exists:
		return compileExists(x, o)
	}
	// Query blocks (SFW, PIVOT, set ops) and any future node kinds run
	// through the interpreter; their sub-blocks get their own compiled
	// physical plans when they execute.
	return compileFallback(e)
}

// CompileAll compiles a slice of expressions; nil in, nil out.
func CompileAll(es []ast.Expr, o CompileOpts) []CompiledExpr {
	if es == nil {
		return nil
	}
	out := make([]CompiledExpr, len(es))
	for i, e := range es {
		out[i] = Compile(e, o)
	}
	return out
}

func compileFallback(e ast.Expr) CompiledExpr {
	return func(ctx *Context, env *Env) (value.Value, error) {
		return Eval(ctx, env, e)
	}
}

// compileErr lowers a prepare-time failure (unknown function, bad
// arity) to a closure returning it, preserving the interpreter's
// behavior of reporting such errors before evaluating any operand.
func compileErr(err error) CompiledExpr {
	return func(*Context, *Env) (value.Value, error) {
		return nil, err
	}
}

func compileLiteral(x *ast.Literal) CompiledExpr {
	v := x.Val
	return func(*Context, *Env) (value.Value, error) {
		return v, nil
	}
}

func compileVarRef(x *ast.VarRef) CompiledExpr {
	name := x.Name
	errUnresolved := &NameError{Pos: x.Pos(), Name: name}
	return func(ctx *Context, env *Env) (value.Value, error) {
		if v, ok := env.Lookup(name); ok {
			return v, nil
		}
		if ctx.Names != nil {
			if v, ok := ctx.Names.LookupValue(name); ok {
				return v, nil
			}
		}
		return nil, errUnresolved
	}
}

func compileNamedRef(x *ast.NamedRef) CompiledExpr {
	name := x.Name
	errUnresolved := &NameError{Pos: x.Pos(), Name: name}
	return func(ctx *Context, env *Env) (value.Value, error) {
		if ctx.Names != nil {
			if v, ok := ctx.Names.LookupValue(name); ok {
				return v, nil
			}
		}
		return nil, errUnresolved
	}
}

func compileFieldAccess(x *ast.FieldAccess, o CompileOpts) CompiledExpr {
	base := Compile(x.Base, o)
	name, pos := x.Name, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		v, err := base(ctx, env)
		if err != nil {
			return nil, err
		}
		return Navigate(ctx, v, name, pos)
	}
}

func compileIndexAccess(x *ast.IndexAccess, o CompileOpts) CompiledExpr {
	base := Compile(x.Base, o)
	idx := Compile(x.Index, o)
	pos := x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		bv, err := base(ctx, env)
		if err != nil {
			return nil, err
		}
		iv, err := idx(ctx, env)
		if err != nil {
			return nil, err
		}
		return indexValue(ctx, bv, iv, pos)
	}
}

func compileUnary(x *ast.Unary, o CompileOpts) CompiledExpr {
	switch x.Op {
	case "-", "NOT":
	default:
		return compileFallback(x)
	}
	operand := Compile(x.Operand, o)
	op, pos := x.Op, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		v, err := operand(ctx, env)
		if err != nil {
			return nil, err
		}
		return unaryValue(ctx, op, v, pos)
	}
}

func compileBinary(x *ast.Binary, o CompileOpts) CompiledExpr {
	switch x.Op {
	case "AND", "OR":
		return compileLogical(x, o)
	case "+", "-", "*", "/", "%":
		return compileArith(x, o)
	case "||":
		return compileConcat(x, o)
	case "=", "<>", "<", "<=", ">", ">=":
		return compileComparison(x, o)
	}
	return compileFallback(x)
}

func compileArith(x *ast.Binary, o CompileOpts) CompiledExpr {
	l := Compile(x.L, o)
	r := Compile(x.R, o)
	op, pos := x.Op, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		lv, err := l(ctx, env)
		if err != nil {
			return nil, err
		}
		rv, err := r(ctx, env)
		if err != nil {
			return nil, err
		}
		return Arith(ctx, op, lv, rv, pos)
	}
}

func compileConcat(x *ast.Binary, o CompileOpts) CompiledExpr {
	l := Compile(x.L, o)
	r := Compile(x.R, o)
	pos := x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		lv, err := l(ctx, env)
		if err != nil {
			return nil, err
		}
		rv, err := r(ctx, env)
		if err != nil {
			return nil, err
		}
		return evalConcat(ctx, lv, rv, pos)
	}
}

func compileComparison(x *ast.Binary, o CompileOpts) CompiledExpr {
	l := Compile(x.L, o)
	r := Compile(x.R, o)
	op, pos := x.Op, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		lv, err := l(ctx, env)
		if err != nil {
			return nil, err
		}
		rv, err := r(ctx, env)
		if err != nil {
			return nil, err
		}
		return Comparison(ctx, op, lv, rv, pos)
	}
}

// compileLogical lowers AND/OR. Laziness is preserved: a determining
// left operand skips the right closure, exactly as evalLogical skips
// the right subtree.
func compileLogical(x *ast.Binary, o CompileOpts) CompiledExpr {
	l := Compile(x.L, o)
	r := Compile(x.R, o)
	isAnd := x.Op == "AND"
	strict := o.Mode == StopOnError
	compat := o.Compat
	op, pos := x.Op, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		lv, err := l(ctx, env)
		if err != nil {
			return nil, err
		}
		lt, ok := truthOf(lv)
		if !ok {
			if strict {
				return nil, &TypeError{Pos: pos, Op: op, Detail: "left operand is " + lv.Kind().String()}
			}
			return value.Missing, nil
		}
		if isAnd && lt == truthFalse {
			return value.False, nil
		}
		if !isAnd && lt == truthTrue {
			return value.True, nil
		}
		rv, err := r(ctx, env)
		if err != nil {
			return nil, err
		}
		rt, ok := truthOf(rv)
		if !ok {
			if strict {
				return nil, &TypeError{Pos: pos, Op: op, Detail: "right operand is " + rv.Kind().String()}
			}
			return value.Missing, nil
		}
		if isAnd {
			return and3(lt, rt).valc(compat), nil
		}
		return or3(lt, rt).valc(compat), nil
	}
}

// compileLikeExpr lowers LIKE. When the pattern (and the ESCAPE
// operand, if any) is a literal, the matcher is compiled once here and
// the per-row work is a single match call; otherwise the generic
// closure mirrors evalLike's operand order exactly.
func compileLikeExpr(x *ast.Like, o CompileOpts) CompiledExpr {
	target := Compile(x.Target, o)
	negate, pos := x.Negate, x.Pos()
	strict := o.Mode == StopOnError
	compat := o.Compat

	plit, pIsLit := x.Pattern.(*ast.Literal)
	elit, eIsLit := x.Escape.(*ast.Literal)
	if pIsLit && (x.Escape == nil || eIsLit) {
		if ps, isStr := plit.Val.(value.String); isStr {
			escape := rune(0)
			escOK := true
			if x.Escape != nil {
				es, isEscStr := elit.Val.(value.String)
				if !isEscStr || len([]rune(string(es))) != 1 {
					escOK = false
				} else {
					escape = []rune(string(es))[0]
				}
			}
			var m *likeMatcher
			mOK := false
			if escOK {
				m, mOK = compileLike(string(ps), escape)
			}
			patStr := ps.String()
			return compileLikeLiteral(target, m, mOK, escOK, patStr, negate, strict, compat, pos)
		}
	}

	pattern := Compile(x.Pattern, o)
	var escapeC CompiledExpr
	if x.Escape != nil {
		escapeC = Compile(x.Escape, o)
	}
	return compileLikeGeneric(target, pattern, escapeC, negate, pos)
}

// compileLikeLiteral is the literal-pattern LIKE closure. The checks
// mirror evalLike's order for a literal pattern: target evaluates
// first, then the ESCAPE validation verdict, then absent propagation,
// then the string check, then the (precompiled) pattern verdict.
func compileLikeLiteral(target CompiledExpr, m *likeMatcher, mOK, escOK bool, patStr string, negate, strict, compat bool, pos lexer.Pos) CompiledExpr {
	return func(ctx *Context, env *Env) (value.Value, error) {
		tv, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		if !escOK {
			if strict {
				return nil, &TypeError{Pos: pos, Op: "LIKE", Detail: "ESCAPE must be a single-character string"}
			}
			return value.Missing, nil
		}
		if value.IsAbsent(tv) {
			return absentVal(compat, tv.Kind() == value.KindMissing), nil
		}
		ts, isStr := tv.(value.String)
		if !isStr {
			if strict {
				return nil, &TypeError{Pos: pos, Op: "LIKE", Detail: "operands are " + tv.Kind().String() + " and string"}
			}
			return value.Missing, nil
		}
		if !mOK {
			if strict {
				return nil, &TypeError{Pos: pos, Op: "LIKE", Detail: "malformed pattern " + patStr}
			}
			return value.Missing, nil
		}
		result := m.match(string(ts))
		if negate {
			result = !result
		}
		return value.Bool(result), nil
	}
}

func compileLikeGeneric(target, pattern, escapeC CompiledExpr, negate bool, pos lexer.Pos) CompiledExpr {
	return func(ctx *Context, env *Env) (value.Value, error) {
		tv, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		pv, err := pattern(ctx, env)
		if err != nil {
			return nil, err
		}
		var escape rune
		if escapeC != nil {
			ev, err := escapeC(ctx, env)
			if err != nil {
				return nil, err
			}
			var bad value.Value
			escape, bad, err = likeEscapeRune(ctx, ev, pos)
			if bad != nil || err != nil {
				return bad, err
			}
		}
		return likeValue(ctx, tv, pv, escape, negate, pos)
	}
}

func compileBetween(x *ast.Between, o CompileOpts) CompiledExpr {
	target := Compile(x.Target, o)
	lo := Compile(x.Lo, o)
	hi := Compile(x.Hi, o)
	negate, pos := x.Negate, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		tv, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		lov, err := lo(ctx, env)
		if err != nil {
			return nil, err
		}
		hiv, err := hi(ctx, env)
		if err != nil {
			return nil, err
		}
		return betweenValues(ctx, tv, lov, hiv, negate, pos)
	}
}

func compileIn(x *ast.In, o CompileOpts) CompiledExpr {
	target := Compile(x.Target, o)
	negate, pos := x.Negate, x.Pos()
	if x.List != nil {
		list := CompileAll(x.List, o)
		return compileInList(target, list, negate, pos)
	}
	set := Compile(x.Set, o)
	return compileInSet(target, set, negate, pos)
}

func compileInList(target CompiledExpr, list []CompiledExpr, negate bool, pos lexer.Pos) CompiledExpr {
	return func(ctx *Context, env *Env) (value.Value, error) {
		tv, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		elems := make([]value.Value, len(list))
		for i, le := range list {
			v, err := le(ctx, env)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		return inValues(ctx, tv, elems, negate, pos)
	}
}

func compileInSet(target, set CompiledExpr, negate bool, pos lexer.Pos) CompiledExpr {
	return func(ctx *Context, env *Env) (value.Value, error) {
		tv, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		sv, err := set(ctx, env)
		if err != nil {
			return nil, err
		}
		elems, short, err := collectionElems(ctx, sv, "IN", pos)
		if short != nil || err != nil {
			return short, err
		}
		return inValues(ctx, tv, elems, negate, pos)
	}
}

func compileIs(x *ast.Is, o CompileOpts) CompiledExpr {
	target := Compile(x.Target, o)
	what, negate, pos := x.What, x.Negate, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		v, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		return isValue(ctx, v, what, negate, pos)
	}
}

func compileQuantified(x *ast.Quantified, o CompileOpts) CompiledExpr {
	target := Compile(x.Target, o)
	set := Compile(x.Set, o)
	op, all, pos := x.Op, x.All, x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		tv, err := target(ctx, env)
		if err != nil {
			return nil, err
		}
		sv, err := set(ctx, env)
		if err != nil {
			return nil, err
		}
		elems, short, err := collectionElems(ctx, sv, "quantified comparison", pos)
		if short != nil || err != nil {
			return short, err
		}
		return quantifiedValues(ctx, op, all, tv, elems, pos)
	}
}

func compileCase(x *ast.Case, o CompileOpts) CompiledExpr {
	var operand CompiledExpr
	if x.Operand != nil {
		operand = Compile(x.Operand, o)
	}
	conds := make([]CompiledExpr, len(x.Whens))
	results := make([]CompiledExpr, len(x.Whens))
	for i, w := range x.Whens {
		conds[i] = Compile(w.Cond, o)
		results[i] = Compile(w.Result, o)
	}
	var els CompiledExpr
	if x.Else != nil {
		els = Compile(x.Else, o)
	}
	compat := o.Compat
	pos := x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		var opv value.Value
		if operand != nil {
			var err error
			opv, err = operand(ctx, env)
			if err != nil {
				return nil, err
			}
			if !compat && opv.Kind() == value.KindMissing {
				return value.Missing, nil
			}
		}
		for i := range conds {
			var cond value.Value
			var err error
			if operand != nil {
				wv, werr := conds[i](ctx, env)
				if werr != nil {
					return nil, werr
				}
				cond, err = Comparison(ctx, "=", opv, wv, pos)
			} else {
				cond, err = conds[i](ctx, env)
			}
			if err != nil {
				return nil, err
			}
			if !compat && cond.Kind() == value.KindMissing {
				return value.Missing, nil
			}
			if IsTrue(cond) {
				return results[i](ctx, env)
			}
		}
		if els != nil {
			return els(ctx, env)
		}
		return value.Null, nil
	}
}

// compileCall resolves the function definition and checks arity once at
// compile time; resolution failures compile to error closures so they
// surface at the same point the interpreter reports them — before any
// argument evaluates.
func compileCall(x *ast.Call, o CompileOpts) CompiledExpr {
	if o.Funcs == nil {
		return compileFallback(x)
	}
	def, ok := o.Funcs.LookupFunc(x.Name)
	if !ok {
		return compileErr(&NameError{Pos: x.Pos(), Name: x.Name + "()"})
	}
	if len(x.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(x.Args) > def.MaxArgs) {
		return compileErr(fmt.Errorf("eval: %s expects %d..%d arguments, got %d at %s",
			x.Name, def.MinArgs, def.MaxArgs, len(x.Args), x.Pos()))
	}
	args := CompileAll(x.Args, o)
	pos := x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		vals := make([]value.Value, len(args))
		for i, a := range args {
			v, err := a(ctx, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return callFunc(ctx, def, vals, pos)
	}
}

func compileTupleCtor(x *ast.TupleCtor, o CompileOpts) CompiledExpr {
	names := make([]CompiledExpr, len(x.Fields))
	vals := make([]CompiledExpr, len(x.Fields))
	for i, f := range x.Fields {
		names[i] = Compile(f.Name, o)
		vals[i] = Compile(f.Value, o)
	}
	pos := x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		t := value.EmptyTuple()
		for i := range names {
			nameV, err := names[i](ctx, env)
			if err != nil {
				return nil, err
			}
			name, ok, err := tupleFieldName(ctx, nameV, pos)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			v, err := vals[i](ctx, env)
			if err != nil {
				return nil, err
			}
			t.Put(name, v)
		}
		return t, nil
	}
}

func compileArrayCtor(x *ast.ArrayCtor, o CompileOpts) CompiledExpr {
	elems := CompileAll(x.Elems, o)
	return func(ctx *Context, env *Env) (value.Value, error) {
		out := make(value.Array, len(elems))
		for i, el := range elems {
			v, err := el(ctx, env)
			if err != nil {
				return nil, err
			}
			// Arrays are positional: a MISSING element becomes NULL so
			// later elements keep their ordinals.
			if v.Kind() == value.KindMissing {
				v = value.Null
			}
			out[i] = v
		}
		return out, nil
	}
}

// compileBagCtor lowers a bag constructor. The closure's append loop is
// bounded by the constructor's literal element count — AST size, not
// data size.
//
// governor: accumulation bounded by len(x.Elems), a parse-time constant.
func compileBagCtor(x *ast.BagCtor, o CompileOpts) CompiledExpr {
	elems := CompileAll(x.Elems, o)
	return func(ctx *Context, env *Env) (value.Value, error) {
		out := make(value.Bag, 0, len(elems))
		for _, el := range elems {
			v, err := el(ctx, env)
			if err != nil {
				return nil, err
			}
			// Bags have no positions; MISSING elements vanish.
			if v.Kind() == value.KindMissing {
				continue
			}
			out = append(out, v)
		}
		return out, nil
	}
}

func compileExists(x *ast.Exists, o CompileOpts) CompiledExpr {
	operand := Compile(x.Operand, o)
	pos := x.Pos()
	return func(ctx *Context, env *Env) (value.Value, error) {
		v, err := operand(ctx, env)
		if err != nil {
			return nil, err
		}
		return existsValue(ctx, v, pos)
	}
}
