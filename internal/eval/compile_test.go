package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sqlpp/internal/parser"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// The compiled-expression contract: for every expression, under every
// (typing mode × compat) configuration, Compile's closure returns
// exactly what Eval returns — same value rendering, same error text.
// The closures delegate to the interpreter's value-level helpers, so
// these tests are the guard that keeps that delegation honest as either
// side evolves.

// identityFuncs is a minimal function source (testFuncs comes from
// expr_test.go) for exercising the compiled call path without
// importing internal/funcs, which would invert the package layering.
func identityFuncs() FuncSource {
	return testFuncs{
		"LEN": {Name: "LEN", MinArgs: 1, MaxArgs: 1, Fn: func(ctx *Context, args []value.Value) (value.Value, error) {
			s, ok := args[0].(value.String)
			if !ok {
				return nil, &TypeError{Op: "LEN", Detail: "argument is " + args[0].Kind().String()}
			}
			return value.Int(int64(len(s))), nil
		}},
		"PICK": {Name: "PICK", MinArgs: 2, MaxArgs: -1, Fn: func(ctx *Context, args []value.Value) (value.Value, error) {
			return args[len(args)-1], nil
		}},
	}
}

// identityEnv binds the variables the generated expressions reference.
func identityEnv(t testing.TB) *Env {
	t.Helper()
	env := NewEnv()
	bind := func(name, src string) {
		v, err := sion.Parse(src)
		if err != nil {
			t.Fatalf("bind %s: %v", name, err)
		}
		env.Bind(name, v)
	}
	bind("x", "41")
	bind("y", "2.5")
	bind("s", "'hello world'")
	bind("flag", "true")
	bind("t", "{'a': 1, 'b': {'c': 'deep'}, 'arr': [10, 20, 30]}")
	bind("arr", "[1, 2, 3]")
	bind("coll", "{{ 4, 'five', null }}")
	return env
}

// checkIdentity parses src, runs it through the interpreter and the
// compiled closure under the given configuration, and requires
// identical outcomes.
func checkIdentity(t *testing.T, src string, mode TypingMode, compat bool) {
	t.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	fs := identityFuncs()
	env := identityEnv(t)
	ictx := &Context{Mode: mode, Compat: compat, Funcs: fs}
	cctx := &Context{Mode: mode, Compat: compat, Funcs: fs}
	want, werr := Eval(ictx, env, e)
	c := Compile(e, CompileOpts{Mode: mode, Compat: compat, Funcs: fs})
	got, gerr := c(cctx, env)
	if (werr == nil) != (gerr == nil) {
		t.Errorf("%q (mode=%v compat=%v): error behavior diverges:\n  interpreted err=%v\n  compiled    err=%v",
			src, mode, compat, werr, gerr)
		return
	}
	if werr != nil {
		if werr.Error() != gerr.Error() {
			t.Errorf("%q (mode=%v compat=%v): error text diverges:\n  interpreted %v\n  compiled    %v",
				src, mode, compat, werr, gerr)
		}
		return
	}
	if want.Kind() != got.Kind() || want.String() != got.String() {
		t.Errorf("%q (mode=%v compat=%v): value diverges:\n  interpreted %s (%v)\n  compiled    %s (%v)",
			src, mode, compat, want, want.Kind(), got, got.Kind())
	}
}

// identityConfigs is the mode × compat matrix every expression runs
// under.
var identityConfigs = []struct {
	mode   TypingMode
	compat bool
}{
	{Permissive, false},
	{Permissive, true},
	{StopOnError, false},
	{StopOnError, true},
}

// TestCompiledEvalIdentityTable pins the forms the compiler specializes:
// every compiled node kind, its absent-input behavior, and its error
// text, including the deliberate fault cases.
func TestCompiledEvalIdentityTable(t *testing.T) {
	exprs := []string{
		// Literals and references.
		`42`, `3.25`, `'lit'`, `true`, `null`, `missing`,
		`x`, `s`, `unbound_name`,
		// Navigation and indexing.
		`t.a`, `t.b.c`, `t.nope`, `t.nope.deeper`, `x.field`,
		`arr[0]`, `arr[2]`, `arr[9]`, `arr[-1]`, `t.arr[1]`, `t['a']`, `arr['zero']`, `s[0]`,
		// Arithmetic, concat, unary.
		`x + 1`, `x - y`, `x * 2`, `x / 0`, `x % 7`, `-x`, `-s`, `x + s`, `x + missing`, `x + null`,
		`s || ' there'`, `s || x`, `s || missing`,
		// Comparisons and logic.
		`x = 41`, `x <> 41`, `x < y`, `x >= 40`, `x = s`, `x = null`, `x = missing`,
		`flag AND x > 10`, `flag OR s`, `NOT flag`, `NOT s`, `x > 10 AND x < 100 OR x = 42`,
		// LIKE: literal pattern (specialized), dynamic pattern, escapes,
		// malformed pattern, non-string operands.
		`s LIKE 'hello%'`, `s LIKE '%world'`, `s NOT LIKE 'h_llo%'`,
		`s LIKE s`, `s LIKE 'hel' || '%'`, `x LIKE 'a%'`, `s LIKE x`,
		`s LIKE '100!%' ESCAPE '!'`, `s LIKE '100!%' ESCAPE '!!'`, `s LIKE 'a!' ESCAPE '!'`,
		`missing LIKE 'a%'`, `null LIKE 'a%'`,
		// BETWEEN / IN / quantified.
		`x BETWEEN 40 AND 50`, `x NOT BETWEEN 40 AND 50`, `x BETWEEN s AND 50`, `x BETWEEN null AND 50`,
		`x IN [41, 2, 3]`, `x NOT IN [1, 2]`, `x IN [null, 41]`, `x IN [null, 2]`, `x IN arr`, `x IN s`, `'five' IN coll`,
		`x = ANY arr`, `x > ALL arr`, `x = ANY s`, `missing = ANY arr`,
		// IS predicates.
		`null IS NULL`, `missing IS NULL`, `missing IS MISSING`, `x IS NOT NULL`,
		`flag IS UNKNOWN`, `null IS UNKNOWN`, `x IS UNKNOWN`, `t.nope IS MISSING`,
		// CASE, searched and simple.
		`CASE WHEN x > 100 THEN 'hi' WHEN x > 10 THEN 'mid' ELSE 'lo' END`,
		`CASE WHEN x > 100 THEN 'hi' END`,
		`CASE WHEN s THEN 'bad' ELSE 'else' END`,
		`CASE x WHEN 41 THEN 'yes' WHEN 42 THEN 'no' END`,
		`CASE t.nope WHEN 1 THEN 'one' ELSE 'none' END`,
		// Constructors, including absent-value normalization.
		`{'a': x, 'b': s || '!', 'c': missing}`,
		`[x, missing, null, t.nope]`,
		`{{ x, missing, s }}`,
		// Function calls: hit, arity error, unknown function, permissive
		// argument fault.
		`LEN(s)`, `LEN(x)`, `LEN()`, `LEN('a', 'b')`, `NOPE(1)`, `PICK(x, s, t.a)`,
		// Subquery fallback: no runner is installed in this package, so
		// both paths must fail with the same error.
		`EXISTS (SELECT VALUE v FROM arr AS v WHERE v > 1)`,
		`(SELECT VALUE v FROM arr AS v)`,
	}
	for _, src := range exprs {
		for _, cfg := range identityConfigs {
			checkIdentity(t, src, cfg.mode, cfg.compat)
		}
	}
}

// genExpr emits a random expression over the identityEnv bindings:
// terminals at depth 0, every compiled form above it. The grammar only
// emits parseable strings; faults (unbound names, mistyped operands,
// absent inputs) are reached through the bound data, not through
// syntax errors.
func genExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(12) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(100))
		case 1:
			return fmt.Sprintf("%d.5", rng.Intn(10))
		case 2:
			return "'w" + string(rune('a'+rng.Intn(8))) + "'"
		case 3:
			return "true"
		case 4:
			return "null"
		case 5:
			return "missing"
		case 6:
			return "x"
		case 7:
			return "y"
		case 8:
			return "s"
		case 9:
			return "t"
		case 10:
			return "arr"
		default:
			return "flag"
		}
	}
	sub := func() string { return genExpr(rng, depth-1) }
	switch rng.Intn(24) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%"}
		return "(" + sub() + " " + ops[rng.Intn(len(ops))] + " " + sub() + ")"
	case 1:
		return "(" + sub() + " || " + sub() + ")"
	case 2:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return "(" + sub() + " " + ops[rng.Intn(len(ops))] + " " + sub() + ")"
	case 3:
		return "(" + sub() + " AND " + sub() + ")"
	case 4:
		return "(" + sub() + " OR " + sub() + ")"
	case 5:
		return "(NOT (" + sub() + "))"
	case 6:
		return "-(" + sub() + ")"
	case 7:
		pats := []string{"'h%'", "'%ld'", "'w_r%'", "'100!%' ESCAPE '!'"}
		return "(" + sub() + " LIKE " + pats[rng.Intn(len(pats))] + ")"
	case 8:
		return "(" + sub() + " NOT LIKE (" + sub() + "))"
	case 9:
		return "(" + sub() + " BETWEEN " + sub() + " AND " + sub() + ")"
	case 10:
		return "(" + sub() + " IN [" + sub() + ", " + sub() + "])"
	case 11:
		return "(" + sub() + " IN arr)"
	case 12:
		whats := []string{"NULL", "NOT NULL", "MISSING", "NOT MISSING", "UNKNOWN"}
		return "(" + sub() + " IS " + whats[rng.Intn(len(whats))] + ")"
	case 13:
		return "CASE WHEN " + sub() + " THEN " + sub() + " ELSE " + sub() + " END"
	case 14:
		return "CASE " + sub() + " WHEN " + sub() + " THEN " + sub() + " END"
	case 15:
		return "{'k1': " + sub() + ", 'k2': " + sub() + "}"
	case 16:
		return "[" + sub() + ", " + sub() + "]"
	case 17:
		return "{{ " + sub() + ", " + sub() + " }}"
	case 18:
		paths := []string{"t.a", "t.b.c", "t.nope", "t.arr[1]", "arr[0]", "arr[5]", "t['a']"}
		return paths[rng.Intn(len(paths))]
	case 19:
		quants := []string{"= ANY", "<> ANY", "> ALL", "<= ALL"}
		return "(" + sub() + " " + quants[rng.Intn(len(quants))] + " arr)"
	case 20:
		return "LEN(" + sub() + ")"
	case 21:
		return "PICK(" + sub() + ", " + sub() + ")"
	case 22:
		return "unbound_name"
	default:
		return "(" + sub() + ")"
	}
}

// TestCompiledEvalIdentityProperty: randomized expressions over every
// compiled form, each checked under the full mode × compat matrix.
func TestCompiledEvalIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20240817))
	for i := 0; i < 400; i++ {
		src := genExpr(rng, 1+rng.Intn(3))
		for _, cfg := range identityConfigs {
			checkIdentity(t, src, cfg.mode, cfg.compat)
		}
		if t.Failed() && i > 20 {
			t.Fatalf("stopping after expression %d; earlier failures above", i)
		}
	}
}

// TestCompileNilAndFallback pins the compiler's edges: Compile(nil) is
// nil (optional clauses stay optional), CompileAll preserves nil-ness,
// and an unknown node kind falls back to the interpreter rather than
// failing.
func TestCompileNilAndFallback(t *testing.T) {
	if Compile(nil, CompileOpts{}) != nil {
		t.Error("Compile(nil) must return nil")
	}
	if CompileAll(nil, CompileOpts{}) != nil {
		t.Error("CompileAll(nil) must return nil")
	}
	e, err := parser.Parse(`x + 1`)
	if err != nil {
		t.Fatal(err)
	}
	c := Compile(e, CompileOpts{})
	if c == nil {
		t.Fatal("Compile returned nil for a compilable expression")
	}
	env := identityEnv(t)
	v, err := c(&Context{}, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "42" {
		t.Errorf("compiled x+1 = %s, want 42", got)
	}
}

// TestCompiledLiteralPatternCache: the LIKE literal-pattern
// specialization must agree with the interpreter on strict-mode error
// text for malformed patterns, which is the path where a compile-time
// verdict is replayed per row.
func TestCompiledMalformedLikePattern(t *testing.T) {
	for _, cfg := range identityConfigs {
		checkIdentity(t, `s LIKE 'abc!' ESCAPE '!'`, cfg.mode, cfg.compat)
		checkIdentity(t, `s LIKE 'a' ESCAPE 'xy'`, cfg.mode, cfg.compat)
	}
}

// sanity: the battery corpus parses — a generator regression should
// fail loudly here, not silently skip coverage.
func TestIdentityCorpusParses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		src := genExpr(rng, 2)
		if _, err := parser.Parse(src); err != nil {
			t.Fatalf("generated expression does not parse: %q: %v", src, err)
		}
	}
	if !strings.Contains(genExpr(rand.New(rand.NewSource(1)), 0), "") {
		t.Fatal("unreachable")
	}
}
