// Package eval implements SQL++ expression evaluation: environments,
// typing modes, MISSING/NULL propagation, and the operator semantics of
// the paper's Section IV. Query-block execution (the clause pipeline)
// lives in package plan, which plugs itself into the Context so that
// subqueries nested inside expressions evaluate through it.
package eval

import (
	"context"
	"fmt"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// TypingMode selects how dynamic type errors are handled (paper §I
// relaxation 2 and §IV).
type TypingMode uint8

const (
	// Permissive is the flexible default: a mistyped operation yields
	// MISSING and processing of healthy data continues.
	Permissive TypingMode = iota
	// StopOnError fails the query on the first dynamic type error, for
	// applications that want to catch type errors early.
	StopOnError
)

// String names the mode.
func (m TypingMode) String() string {
	if m == StopOnError {
		return "stop-on-error"
	}
	return "permissive"
}

// NameSource resolves catalog named values.
type NameSource interface {
	// LookupValue returns the named value, if registered.
	LookupValue(name string) (value.Value, bool)
}

// Func is a scalar or collection function implementation.
type Func func(ctx *Context, args []value.Value) (value.Value, error)

// FuncDef describes one registered function.
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 for variadic
	Fn      Func
}

// FuncSource resolves function names (upper-cased) to definitions.
type FuncSource interface {
	// LookupFunc returns the function definition, if registered.
	LookupFunc(name string) (*FuncDef, bool)
}

// QueryRunner executes a query-block expression (SFW, PIVOT, set
// operation) in an environment; installed by package plan.
type QueryRunner func(ctx *Context, env *Env, q ast.Expr) (value.Value, error)

// Context carries per-query evaluation state: modes, catalog, functions,
// and the query-block runner.
type Context struct {
	// Mode selects permissive or stop-on-error typing.
	Mode TypingMode
	// Compat enables SQL compatibility semantics: MISSING is treated
	// like NULL wherever SQL assigns a non-null result to NULL inputs
	// (COALESCE, CASE arms, ...), and sugar subqueries coerce.
	Compat bool
	// Names resolves named values; may be nil.
	Names NameSource
	// Funcs resolves functions; must be set before evaluating calls.
	Funcs FuncSource
	// Run executes nested query blocks; installed by package plan.
	Run QueryRunner
	// MaxCollectionSize bounds materialized intermediate collections as
	// a resource guard; zero means unlimited.
	MaxCollectionSize int
	// MaterializeClauses disables the streaming clause pipeline and
	// materializes every clause boundary instead. It exists only for the
	// ablation benchmark comparing the two execution strategies; the
	// semantics are identical.
	MaterializeClauses bool
	// Parallelism bounds the worker pool a parallel outer scan may use;
	// values below 2 keep execution fully sequential.
	Parallelism int
	// Ctx carries the query's deadline/cancellation signal for
	// cooperative interruption. Nil (or a context that can never be
	// cancelled) means the query runs to completion; the facade only
	// installs contexts that actually carry a Done channel, so the
	// uncancellable path pays nothing.
	Ctx context.Context
	// Stats, when non-nil, turns on EXPLAIN ANALYZE instrumentation:
	// physical operators record rows in/out, wall time, and per-operator
	// counters into its tree. Nil is the fast path — each site pays one
	// pointer test and nothing else.
	Stats *StatsSink
	// Gov, when non-nil, enforces per-query resource budgets: the plan's
	// materialization and output sites charge it, and an exceeded budget
	// aborts the query with a *ResourceError. Nil is the fast path —
	// one pointer test per site, exactly like Stats.
	Gov *Governor
	// Depth is the current query-block nesting depth, maintained by the
	// plan runner and checked against Gov's depth budget.
	Depth int
	// PlanPos is the source position of the innermost query block being
	// executed; panic recovery stamps it into the PanicError.
	PlanPos lexer.Pos
	// StatsParent is the tree node new operator nodes attach under; the
	// plan saves/restores it around nested query blocks so subquery
	// operators nest under the enclosing block.
	StatsParent *StatsNode
	// polls counts Interrupted calls so the cancellation signal is
	// checked once every pollInterval produced rows rather than on every
	// row. A Context is used by a single goroutine, so a plain counter
	// suffices.
	polls uint
}

// pollInterval is the number of produced rows between real checks of the
// cancellation signal — a power of two so the fast path is a mask, small
// enough that a runaway cross join stops within microseconds of its
// deadline.
const pollInterval = 64

// Interrupted reports a non-nil error once the query's context is
// cancelled or past its deadline, or once the governor's wall-time
// budget is spent. The plan row-production and materialization loops
// call it per row; the fast path is one increment and one mask.
func (c *Context) Interrupted() error {
	if c.Ctx == nil && c.Gov == nil {
		return nil
	}
	c.polls++
	if c.polls&(pollInterval-1) != 0 {
		return nil
	}
	return c.pollNow()
}

// InterruptedN is Interrupted for a batch of n rows: it advances the
// poll counter by n in one step and performs a real check only when the
// batch crossed a pollInterval boundary, so batched scan loops keep the
// cancellation cadence of the row-at-a-time path without a per-row call.
func (c *Context) InterruptedN(n int) error {
	if c.Ctx == nil && c.Gov == nil {
		return nil
	}
	before := c.polls
	c.polls += uint(n)
	if before&^(pollInterval-1) == c.polls&^(pollInterval-1) {
		return nil
	}
	return c.pollNow()
}

// pollNow is the real cancellation/time-budget check behind the
// Interrupted fast paths.
func (c *Context) pollNow() error {
	if c.Ctx != nil {
		if err := c.Ctx.Err(); err != nil {
			return fmt.Errorf("sqlpp: query interrupted: %w", err)
		}
	}
	if c.Gov != nil {
		if err := c.Gov.CheckTime(); err != nil {
			return err
		}
	}
	return nil
}

// Fork returns a copy of c for one worker of a parallel scan. All the
// shared fields (catalog, functions, runner, deadline context) are safe
// for concurrent reads; only the poll counter is per-goroutine state,
// and each fork gets its own.
func (c *Context) Fork() *Context {
	cp := *c
	cp.polls = 0
	return &cp
}

// TypeError is a dynamic typing error. In permissive mode it is converted
// to MISSING at the operation that raised it; in stop-on-error mode it
// aborts the query.
type TypeError struct {
	Pos    lexer.Pos
	Op     string
	Detail string
}

// Error implements the error interface.
func (e *TypeError) Error() string {
	return fmt.Sprintf("type error at %s in %s: %s", e.Pos, e.Op, e.Detail)
}

// NameError reports an unbound variable or unknown named value.
type NameError struct {
	Pos  lexer.Pos
	Name string
}

// Error implements the error interface.
func (e *NameError) Error() string {
	return fmt.Sprintf("unresolved name %q at %s", e.Name, e.Pos)
}

// mistyped applies the mode policy to a would-be type error: MISSING in
// permissive mode, the error in stop-on-error mode.
func (c *Context) mistyped(pos lexer.Pos, op, detail string) (value.Value, error) {
	if c.Mode == StopOnError {
		return nil, &TypeError{Pos: pos, Op: op, Detail: detail}
	}
	return value.Missing, nil
}

// Env is a chain of variable bindings. Each query-block clause extends
// the environment; subqueries see their enclosing bindings through the
// parent chain (correlation).
type Env struct {
	parent *Env
	names  []string
	vals   []value.Value
}

// NewEnv returns an empty root environment.
func NewEnv() *Env { return &Env{} }

// Child returns a new environment scope whose lookups fall back to e.
func (e *Env) Child() *Env { return &Env{parent: e} }

// Bind adds or replaces a binding in this scope (not in parents).
func (e *Env) Bind(name string, v value.Value) {
	if v == nil {
		panic("eval: binding nil Value to " + name)
	}
	for i, n := range e.names {
		if n == name {
			e.vals[i] = v
			return
		}
	}
	e.names = append(e.names, name)
	e.vals = append(e.vals, v)
}

// Lookup finds the innermost binding of name.
func (e *Env) Lookup(name string) (value.Value, bool) {
	for s := e; s != nil; s = s.parent {
		for i := len(s.names) - 1; i >= 0; i-- {
			if s.names[i] == name {
				return s.vals[i], true
			}
		}
	}
	return nil, false
}

// Names returns the names bound in this scope only (not parents), in
// binding order.
func (e *Env) Names() []string { return e.names }

// Snapshot captures this scope's bindings (not parents') as a tuple, the
// group-content shape used by GROUP AS.
func (e *Env) Snapshot() *value.Tuple {
	t := value.EmptyTuple()
	for i, n := range e.names {
		t.Put(n, e.vals[i])
	}
	return t
}

// RechainBelow rebuilds the scope chain between e (inclusive) and stop
// (exclusive) in a new nesting order, returning the innermost scope of
// the rebuilt chain. order maps new nesting position (0 = outermost of
// the rebuilt scopes) to the scope's current position, also counted
// outermost-first. The scopes' binding storage is shared, not copied,
// so the caller must not rebind the originals afterwards. The plan's
// join-reorder buffer uses it to restore written nesting order over
// scopes that were produced in a cost-chosen execution order.
func (e *Env) RechainBelow(stop *Env, order []int) *Env {
	var scopes []*Env
	for s := e; s != nil && s != stop; s = s.parent {
		scopes = append(scopes, s)
	}
	n := len(scopes) // scopes is innermost-first
	cur := stop
	for _, pos := range order {
		s := scopes[n-1-pos]
		cur = &Env{parent: cur, names: s.names, vals: s.vals}
	}
	return cur
}

// SnapshotBelow captures every binding introduced between e (inclusive)
// and stop (exclusive) as a tuple: the FROM/LET variables of a query
// block, which is exactly the group content the paper's GROUP AS exposes
// (Listing 14). Inner bindings shadow outer ones of the same name;
// within the tuple, outermost bindings come first.
func (e *Env) SnapshotBelow(stop *Env) *value.Tuple {
	var scopes []*Env
	for s := e; s != nil && s != stop; s = s.parent {
		scopes = append(scopes, s)
	}
	t := value.EmptyTuple()
	for i := len(scopes) - 1; i >= 0; i-- {
		s := scopes[i]
		for j, n := range s.names {
			t.Set(n, s.vals[j])
		}
	}
	return t
}
