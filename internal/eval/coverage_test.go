package eval

import (
	"testing"

	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func TestIndexingEdgeCases(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	vars := map[string]string{
		"t":   `{'a': [10, 20], 'm': {'k': 1}}`,
		"arr": `[1, 2, 3]`,
	}
	cases := []struct {
		src, want string
	}{
		{"arr[1]", "2"},
		{"arr[1.0]", "2"},       // integral float index works
		{"arr['x']", "missing"}, // non-numeric index on array
		{"arr[null]", "null"},   // absent index propagates
		{"arr[missing]", "missing"},
		{"arr[1.5]", "missing"}, // fractional index
		{"t.m[5]", "missing"},   // numeric index on tuple
		{"t.m[null]", "null"},
		{"t.nope[0]", "missing"}, // indexing MISSING base
		{"5[0]", "missing"},      // indexing a scalar
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, vars)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
	strict := newTestCtx(false, StopOnError)
	for _, src := range []string{"arr['x']", "5[0]", "t.m[5]"} {
		if _, err := evalStr(t, strict, src, vars); err == nil {
			t.Errorf("%s should error in strict mode", src)
		}
	}
}

func TestNullIndexOnNullBase(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	got := mustEval(t, ctx, "t.n[0]", map[string]string{"t": `{'n': null}`})
	if got.Kind() != value.KindNull {
		t.Errorf("null[0] = %s, want null", got)
	}
}

func TestTypingModeString(t *testing.T) {
	if Permissive.String() != "permissive" || StopOnError.String() != "stop-on-error" {
		t.Error("mode names wrong")
	}
}

func TestErrorMessages(t *testing.T) {
	te := &TypeError{Op: "test", Detail: "boom"}
	if te.Error() == "" {
		t.Error("TypeError message empty")
	}
	ne := &NameError{Name: "ghost"}
	if ne.Error() == "" {
		t.Error("NameError message empty")
	}
}

func TestEnvNamesAndSnapshot(t *testing.T) {
	env := NewEnv()
	env.Bind("a", value.Int(1))
	env.Bind("b", value.Int(2))
	env.Bind("a", value.Int(3)) // rebind replaces
	names := env.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	snap := env.Snapshot()
	if v, _ := snap.Get("a"); v != value.Int(3) {
		t.Errorf("Snapshot a = %s", v)
	}
	if snap.Len() != 2 {
		t.Errorf("Snapshot len = %d", snap.Len())
	}
}

func TestBindNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("binding nil must panic")
		}
	}()
	NewEnv().Bind("x", nil)
}

func TestConcatAndUnaryEdge(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct{ src, want string }{
		{"'a' || 'b' || 'c'", "'abc'"},
		{"'a' || 5", "missing"},
		{"5 || 'a'", "missing"},
		{"null || 'a'", "null"},
		{"missing || 'a'", "missing"},
		{"-null", "null"},
		{"-missing", "missing"},
		{"-'x'", "missing"},
		{"+5", "5"},
		{"NOT 5", "missing"}, // NOT over non-boolean
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestLogicalMistypedOperands(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	for _, src := range []string{"5 AND true", "true AND 5", "5 OR false", "false OR 5"} {
		got := mustEval(t, ctx, src, nil)
		if got.Kind() != value.KindMissing {
			t.Errorf("%s = %s, want MISSING (mistyped operand)", src, got)
		}
	}
	// But a short-circuit-decided result never looks at the right side.
	if got := mustEval(t, ctx, "false AND 5", nil); got != value.False {
		t.Errorf("false AND 5 = %s, want false", got)
	}
	if got := mustEval(t, ctx, "true OR 5", nil); got != value.True {
		t.Errorf("true OR 5 = %s, want true", got)
	}
}

func TestLikeEscapeValidation(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	// Multi-character escape strings are malformed.
	if got := mustEval(t, ctx, "'a' LIKE 'a' ESCAPE 'xy'", nil); got.Kind() != value.KindMissing {
		t.Errorf("bad escape = %s, want MISSING", got)
	}
	// Escape at pattern end is malformed.
	if got := mustEval(t, ctx, "'a' LIKE 'a!' ESCAPE '!'", nil); got.Kind() != value.KindMissing {
		t.Errorf("trailing escape = %s, want MISSING", got)
	}
	// Escaping a non-wildcard is malformed.
	if got := mustEval(t, ctx, "'ab' LIKE 'a!b' ESCAPE '!'", nil); got.Kind() != value.KindMissing {
		t.Errorf("escape of literal = %s, want MISSING", got)
	}
	// Escaping the escape char itself is fine.
	if got := mustEval(t, ctx, "'a!' LIKE 'a!!' ESCAPE '!'", nil); got != value.True {
		t.Errorf("doubled escape = %s, want true", got)
	}
}
