package eval

import (
	"fmt"
	"math"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// Eval evaluates an expression in env under ctx. Dynamic type errors
// yield MISSING in permissive mode and an error in stop-on-error mode;
// all other errors (unresolved names, resource limits) are returned in
// both modes.
func Eval(ctx *Context, env *Env, e ast.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, nil
	case *ast.VarRef:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		if ctx.Names != nil {
			if v, ok := ctx.Names.LookupValue(x.Name); ok {
				return v, nil
			}
		}
		return nil, &NameError{Pos: x.Pos(), Name: x.Name}
	case *ast.NamedRef:
		if ctx.Names != nil {
			if v, ok := ctx.Names.LookupValue(x.Name); ok {
				return v, nil
			}
		}
		return nil, &NameError{Pos: x.Pos(), Name: x.Name}
	case *ast.FieldAccess:
		base, err := Eval(ctx, env, x.Base)
		if err != nil {
			return nil, err
		}
		return Navigate(ctx, base, x.Name, x.Pos())
	case *ast.IndexAccess:
		return evalIndex(ctx, env, x)
	case *ast.Unary:
		return evalUnary(ctx, env, x)
	case *ast.Binary:
		return evalBinary(ctx, env, x)
	case *ast.Like:
		return evalLike(ctx, env, x)
	case *ast.Between:
		return evalBetween(ctx, env, x)
	case *ast.In:
		return evalIn(ctx, env, x)
	case *ast.Is:
		return evalIs(ctx, env, x)
	case *ast.Quantified:
		return evalQuantified(ctx, env, x)
	case *ast.Case:
		return evalCase(ctx, env, x)
	case *ast.Call:
		return evalCall(ctx, env, x)
	case *ast.TupleCtor:
		return evalTupleCtor(ctx, env, x)
	case *ast.ArrayCtor:
		out := make(value.Array, 0, len(x.Elems))
		for _, el := range x.Elems {
			v, err := Eval(ctx, env, el)
			if err != nil {
				return nil, err
			}
			// Arrays are positional: a MISSING element becomes NULL so
			// later elements keep their ordinals.
			if v.Kind() == value.KindMissing {
				v = value.Null
			}
			out = append(out, v)
		}
		return out, nil
	case *ast.BagCtor:
		out := make(value.Bag, 0, len(x.Elems))
		for _, el := range x.Elems {
			v, err := Eval(ctx, env, el)
			if err != nil {
				return nil, err
			}
			// Bags have no positions; MISSING elements vanish.
			if v.Kind() == value.KindMissing {
				continue
			}
			out = append(out, v)
		}
		return out, nil
	case *ast.Exists:
		v, err := Eval(ctx, env, x.Operand)
		if err != nil {
			return nil, err
		}
		return existsValue(ctx, v, x.Pos())
	case *ast.SFW, *ast.PivotQuery, *ast.SetOp:
		if ctx.Run == nil {
			return nil, fmt.Errorf("eval: no query runner installed for nested query at %s", e.Pos())
		}
		return ctx.Run(ctx, env, e)
	}
	return nil, fmt.Errorf("eval: unknown expression node %T at %s", e, e.Pos())
}

// Navigate performs dot navigation base.name with SQL++ semantics:
// tuples navigate (absent attribute gives MISSING), MISSING gives
// MISSING, NULL gives NULL, and anything else is a type fault.
func Navigate(ctx *Context, base value.Value, name string, pos lexer.Pos) (value.Value, error) {
	switch b := base.(type) {
	case *value.Tuple:
		v, _ := b.Get(name)
		return v, nil
	default:
		switch base.Kind() {
		case value.KindMissing:
			return value.Missing, nil
		case value.KindNull:
			return value.Null, nil
		}
		return ctx.mistyped(pos, "navigation", fmt.Sprintf("cannot navigate into %s with .%s", base.Kind(), name))
	}
}

func existsValue(ctx *Context, v value.Value, pos lexer.Pos) (value.Value, error) {
	if elems, ok := value.Elements(v); ok {
		return value.Bool(len(elems) > 0), nil
	}
	if value.IsAbsent(v) {
		return value.False, nil
	}
	return ctx.mistyped(pos, "EXISTS", "operand is "+v.Kind().String()+", not a collection")
}

func evalIndex(ctx *Context, env *Env, x *ast.IndexAccess) (value.Value, error) {
	base, err := Eval(ctx, env, x.Base)
	if err != nil {
		return nil, err
	}
	idx, err := Eval(ctx, env, x.Index)
	if err != nil {
		return nil, err
	}
	return indexValue(ctx, base, idx, x.Pos())
}

// indexValue applies base[idx] to already-evaluated operands.
func indexValue(ctx *Context, base, idx value.Value, pos lexer.Pos) (value.Value, error) {
	switch b := base.(type) {
	case value.Array:
		i, ok := value.AsInt(idx)
		if !ok {
			if value.IsAbsent(idx) {
				return absentOut(ctx, idx.Kind() == value.KindMissing), nil
			}
			return ctx.mistyped(pos, "indexing", "array index is "+idx.Kind().String())
		}
		if i < 0 || i >= int64(len(b)) {
			return value.Missing, nil
		}
		return b[i], nil
	case *value.Tuple:
		s, ok := idx.(value.String)
		if !ok {
			if value.IsAbsent(idx) {
				return absentOut(ctx, idx.Kind() == value.KindMissing), nil
			}
			return ctx.mistyped(pos, "indexing", "tuple index is "+idx.Kind().String()+", not a string")
		}
		v, _ := b.Get(string(s))
		return v, nil
	default:
		switch base.Kind() {
		case value.KindMissing:
			return value.Missing, nil
		case value.KindNull:
			return value.Null, nil
		}
		return ctx.mistyped(pos, "indexing", "cannot index into "+base.Kind().String())
	}
}

func evalUnary(ctx *Context, env *Env, x *ast.Unary) (value.Value, error) {
	v, err := Eval(ctx, env, x.Operand)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-", "NOT":
		return unaryValue(ctx, x.Op, v, x.Pos())
	}
	return nil, fmt.Errorf("eval: unknown unary operator %q at %s", x.Op, x.Pos())
}

// unaryValue applies a unary operator to an already-evaluated operand.
func unaryValue(ctx *Context, op string, v value.Value, pos lexer.Pos) (value.Value, error) {
	if op == "-" {
		switch n := v.(type) {
		case value.Int:
			return value.Int(-n), nil
		case value.Float:
			return value.Float(-n), nil
		}
		if value.IsAbsent(v) {
			return absentOut(ctx, v.Kind() == value.KindMissing), nil
		}
		return ctx.mistyped(pos, "unary -", "operand is "+v.Kind().String())
	}
	t, ok := truthOf(v)
	if !ok {
		return ctx.mistyped(pos, "NOT", "operand is "+v.Kind().String())
	}
	return not3(t).val(ctx), nil
}

func evalBinary(ctx *Context, env *Env, x *ast.Binary) (value.Value, error) {
	switch x.Op {
	case "AND", "OR":
		return evalLogical(ctx, env, x)
	}
	l, err := Eval(ctx, env, x.L)
	if err != nil {
		return nil, err
	}
	r, err := Eval(ctx, env, x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return Arith(ctx, x.Op, l, r, x.Pos())
	case "||":
		return evalConcat(ctx, l, r, x.Pos())
	case "=", "<>", "<", "<=", ">", ">=":
		return Comparison(ctx, x.Op, l, r, x.Pos())
	}
	return nil, fmt.Errorf("eval: unknown binary operator %q at %s", x.Op, x.Pos())
}

// evalLogical implements AND/OR with SQL three-valued logic, evaluating
// lazily so a determining left operand skips the right side.
func evalLogical(ctx *Context, env *Env, x *ast.Binary) (value.Value, error) {
	l, err := Eval(ctx, env, x.L)
	if err != nil {
		return nil, err
	}
	lt, ok := truthOf(l)
	if !ok {
		return ctx.mistyped(x.Pos(), x.Op, "left operand is "+l.Kind().String())
	}
	if x.Op == "AND" && lt == truthFalse {
		return value.False, nil
	}
	if x.Op == "OR" && lt == truthTrue {
		return value.True, nil
	}
	r, err := Eval(ctx, env, x.R)
	if err != nil {
		return nil, err
	}
	rt, ok := truthOf(r)
	if !ok {
		return ctx.mistyped(x.Pos(), x.Op, "right operand is "+r.Kind().String())
	}
	if x.Op == "AND" {
		return and3(lt, rt).val(ctx), nil
	}
	return or3(lt, rt).val(ctx), nil
}

// Arith evaluates an arithmetic operator with SQL++ typing: integer
// arithmetic stays integral (with integer division), any float operand
// promotes to float, absent values propagate, and non-numeric operands
// are a type fault (the paper's 2 * 'some string' example).
func Arith(ctx *Context, op string, l, r value.Value, pos lexer.Pos) (value.Value, error) {
	if value.IsAbsent(l) || value.IsAbsent(r) {
		return absentOut(ctx, l.Kind() == value.KindMissing || r.Kind() == value.KindMissing), nil
	}
	li, lIsInt := l.(value.Int)
	ri, rIsInt := r.(value.Int)
	if lIsInt && rIsInt {
		a, b := int64(li), int64(ri)
		switch op {
		case "+":
			return value.Int(a + b), nil
		case "-":
			return value.Int(a - b), nil
		case "*":
			return value.Int(a * b), nil
		case "/":
			if b == 0 {
				return ctx.mistyped(pos, op, "division by zero")
			}
			return value.Int(a / b), nil
		case "%":
			if b == 0 {
				return ctx.mistyped(pos, op, "modulo by zero")
			}
			return value.Int(a % b), nil
		}
	}
	lf, lOK := value.AsFloat(l)
	rf, rOK := value.AsFloat(r)
	if !lOK || !rOK {
		return ctx.mistyped(pos, op, fmt.Sprintf("operands are %s and %s", l.Kind(), r.Kind()))
	}
	switch op {
	case "+":
		return value.Float(lf + rf), nil
	case "-":
		return value.Float(lf - rf), nil
	case "*":
		return value.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return ctx.mistyped(pos, op, "division by zero")
		}
		return value.Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return ctx.mistyped(pos, op, "modulo by zero")
		}
		return value.Float(math.Mod(lf, rf)), nil
	}
	return nil, fmt.Errorf("eval: unknown arithmetic operator %q", op)
}

func evalConcat(ctx *Context, l, r value.Value, pos lexer.Pos) (value.Value, error) {
	if value.IsAbsent(l) || value.IsAbsent(r) {
		return absentOut(ctx, l.Kind() == value.KindMissing || r.Kind() == value.KindMissing), nil
	}
	ls, lOK := l.(value.String)
	rs, rOK := r.(value.String)
	if !lOK || !rOK {
		return ctx.mistyped(pos, "||", fmt.Sprintf("operands are %s and %s", l.Kind(), r.Kind()))
	}
	return ls + rs, nil
}

// Comparison evaluates a comparison operator. Absent operands propagate.
// Equality between values of different type classes is FALSE (never an
// error), so heterogeneous data can be filtered without tripping the
// typing mode; ordering comparisons across classes or on non-scalar
// operands are a type fault.
func Comparison(ctx *Context, op string, l, r value.Value, pos lexer.Pos) (value.Value, error) {
	if value.IsAbsent(l) || value.IsAbsent(r) {
		return absentOut(ctx, l.Kind() == value.KindMissing || r.Kind() == value.KindMissing), nil
	}
	comparable := sameComparisonClass(l, r)
	switch op {
	case "=":
		if !comparable {
			return value.False, nil
		}
		return value.Bool(value.Equivalent(l, r)), nil
	case "<>":
		if !comparable {
			return value.True, nil
		}
		return value.Bool(!value.Equivalent(l, r)), nil
	}
	if !comparable || !isScalar(l) {
		return ctx.mistyped(pos, op, fmt.Sprintf("cannot order %s and %s", l.Kind(), r.Kind()))
	}
	c := value.Compare(l, r)
	switch op {
	case "<":
		return value.Bool(c < 0), nil
	case "<=":
		return value.Bool(c <= 0), nil
	case ">":
		return value.Bool(c > 0), nil
	case ">=":
		return value.Bool(c >= 0), nil
	}
	return nil, fmt.Errorf("eval: unknown comparison operator %q", op)
}

func sameComparisonClass(l, r value.Value) bool {
	if value.IsNumeric(l) && value.IsNumeric(r) {
		return true
	}
	return l.Kind() == r.Kind()
}

func isScalar(v value.Value) bool {
	switch v.Kind() {
	case value.KindBool, value.KindInt, value.KindFloat, value.KindString, value.KindBytes:
		return true
	}
	return false
}

func evalLike(ctx *Context, env *Env, x *ast.Like) (value.Value, error) {
	target, err := Eval(ctx, env, x.Target)
	if err != nil {
		return nil, err
	}
	pattern, err := Eval(ctx, env, x.Pattern)
	if err != nil {
		return nil, err
	}
	var escape rune
	if x.Escape != nil {
		ev, err := Eval(ctx, env, x.Escape)
		if err != nil {
			return nil, err
		}
		var bad value.Value
		escape, bad, err = likeEscapeRune(ctx, ev, x.Pos())
		if bad != nil || err != nil {
			return bad, err
		}
	}
	return likeValue(ctx, target, pattern, escape, x.Negate, x.Pos())
}

// likeEscapeRune validates an evaluated ESCAPE operand. On a type fault
// the non-nil bad value (permissive) or error (strict) short-circuits
// the whole LIKE.
func likeEscapeRune(ctx *Context, ev value.Value, pos lexer.Pos) (escape rune, bad value.Value, err error) {
	es, ok := ev.(value.String)
	if !ok || len([]rune(string(es))) != 1 {
		bad, err = ctx.mistyped(pos, "LIKE", "ESCAPE must be a single-character string")
		return 0, bad, err
	}
	return []rune(string(es))[0], nil, nil
}

// likeValue applies LIKE to already-evaluated target and pattern with a
// validated escape rune (0 when no ESCAPE clause).
func likeValue(ctx *Context, target, pattern value.Value, escape rune, negate bool, pos lexer.Pos) (value.Value, error) {
	if value.IsAbsent(target) || value.IsAbsent(pattern) {
		return absentOut(ctx, target.Kind() == value.KindMissing || pattern.Kind() == value.KindMissing), nil
	}
	ts, tOK := target.(value.String)
	ps, pOK := pattern.(value.String)
	if !tOK || !pOK {
		return ctx.mistyped(pos, "LIKE", fmt.Sprintf("operands are %s and %s", target.Kind(), pattern.Kind()))
	}
	m, ok := compileLike(string(ps), escape)
	if !ok {
		return ctx.mistyped(pos, "LIKE", "malformed pattern "+ps.String())
	}
	result := m.match(string(ts))
	if negate {
		result = !result
	}
	return value.Bool(result), nil
}

func evalBetween(ctx *Context, env *Env, x *ast.Between) (value.Value, error) {
	target, err := Eval(ctx, env, x.Target)
	if err != nil {
		return nil, err
	}
	lo, err := Eval(ctx, env, x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := Eval(ctx, env, x.Hi)
	if err != nil {
		return nil, err
	}
	return betweenValues(ctx, target, lo, hi, x.Negate, x.Pos())
}

// betweenValues applies BETWEEN to already-evaluated operands.
func betweenValues(ctx *Context, target, lo, hi value.Value, negate bool, pos lexer.Pos) (value.Value, error) {
	ge, err := Comparison(ctx, ">=", target, lo, pos)
	if err != nil {
		return nil, err
	}
	le, err := Comparison(ctx, "<=", target, hi, pos)
	if err != nil {
		return nil, err
	}
	gt, ok1 := truthOf(ge)
	lt, ok2 := truthOf(le)
	if !ok1 || !ok2 {
		return ctx.mistyped(pos, "BETWEEN", "bounds comparison did not produce a boolean")
	}
	result := and3(gt, lt)
	if negate {
		result = not3(result)
	}
	return result.val(ctx), nil
}

func evalIn(ctx *Context, env *Env, x *ast.In) (value.Value, error) {
	target, err := Eval(ctx, env, x.Target)
	if err != nil {
		return nil, err
	}
	var elems []value.Value
	if x.List != nil {
		elems = make([]value.Value, 0, len(x.List))
		for _, le := range x.List {
			v, err := Eval(ctx, env, le)
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
		}
	} else {
		set, err := Eval(ctx, env, x.Set)
		if err != nil {
			return nil, err
		}
		var short value.Value
		elems, short, err = collectionElems(ctx, set, "IN", x.Pos())
		if short != nil || err != nil {
			return short, err
		}
	}
	return inValues(ctx, target, elems, x.Negate, x.Pos())
}

// collectionElems extracts the element list of an evaluated right-hand
// collection operand. On absent or mistyped input the non-nil short
// value (or error) short-circuits the enclosing predicate.
func collectionElems(ctx *Context, set value.Value, op string, pos lexer.Pos) (elems []value.Value, short value.Value, err error) {
	elems, ok := value.Elements(set)
	if ok {
		return elems, nil, nil
	}
	if value.IsAbsent(set) {
		return nil, absentOut(ctx, set.Kind() == value.KindMissing), nil
	}
	short, err = ctx.mistyped(pos, op, "right operand is "+set.Kind().String()+", not a collection")
	return nil, short, err
}

// inValues applies IN to an already-evaluated target and element list.
func inValues(ctx *Context, target value.Value, elems []value.Value, negate bool, pos lexer.Pos) (value.Value, error) {
	result := truthFalse
	for _, e := range elems {
		eq, err := Comparison(ctx, "=", target, e, pos)
		if err != nil {
			return nil, err
		}
		t, ok := truthOf(eq)
		if !ok {
			continue
		}
		result = or3(result, t)
		if result == truthTrue {
			break
		}
	}
	if negate {
		result = not3(result)
	}
	return result.val(ctx), nil
}

// evalQuantified implements SQL quantified comparisons: op ALL over an
// empty collection is TRUE, op ANY/SOME over an empty collection is
// FALSE, and unknowns combine with three-valued logic.
func evalQuantified(ctx *Context, env *Env, x *ast.Quantified) (value.Value, error) {
	target, err := Eval(ctx, env, x.Target)
	if err != nil {
		return nil, err
	}
	set, err := Eval(ctx, env, x.Set)
	if err != nil {
		return nil, err
	}
	elems, short, err := collectionElems(ctx, set, "quantified comparison", x.Pos())
	if short != nil || err != nil {
		return short, err
	}
	return quantifiedValues(ctx, x.Op, x.All, target, elems, x.Pos())
}

// quantifiedValues applies op ALL / op ANY to an already-evaluated
// target and element list.
func quantifiedValues(ctx *Context, op string, all bool, target value.Value, elems []value.Value, pos lexer.Pos) (value.Value, error) {
	result := truthTrue
	if !all {
		result = truthFalse
	}
	for _, e := range elems {
		cmp, err := Comparison(ctx, op, target, e, pos)
		if err != nil {
			return nil, err
		}
		t, ok := truthOf(cmp)
		if !ok {
			continue
		}
		if all {
			result = and3(result, t)
			if result == truthFalse {
				break
			}
		} else {
			result = or3(result, t)
			if result == truthTrue {
				break
			}
		}
	}
	return result.val(ctx), nil
}

func evalIs(ctx *Context, env *Env, x *ast.Is) (value.Value, error) {
	v, err := Eval(ctx, env, x.Target)
	if err != nil {
		return nil, err
	}
	return isValue(ctx, v, x.What, x.Negate, x.Pos())
}

// isValue applies an IS predicate to an already-evaluated operand.
func isValue(ctx *Context, v value.Value, what string, negate bool, pos lexer.Pos) (value.Value, error) {
	var result bool
	switch what {
	case "NULL":
		// In SQL-compatibility mode MISSING satisfies IS NULL, which is
		// what makes the null/missing guarantee of §IV-B hold for
		// WHERE x IS NULL predicates. In flexible mode the two absent
		// values are distinguishable.
		result = v.Kind() == value.KindNull || (ctx.Compat && v.Kind() == value.KindMissing)
	case "MISSING":
		result = v.Kind() == value.KindMissing
	case "UNKNOWN":
		t, ok := truthOf(v)
		if !ok {
			return ctx.mistyped(pos, "IS UNKNOWN", "operand is "+v.Kind().String())
		}
		result = t.isUnknown()
	default:
		return nil, fmt.Errorf("eval: unknown IS predicate %q at %s", what, pos)
	}
	if negate {
		result = !result
	}
	return value.Bool(result), nil
}

// evalCase implements CASE with the paper's §IV-B semantics: in flexible
// mode a MISSING WHEN condition propagates MISSING through the whole
// CASE ("CASE WHEN MISSING ... END evaluates to MISSING"); in SQL
// compatibility mode MISSING behaves like NULL, i.e. the arm simply does
// not match. An absent simple-CASE operand likewise propagates.
func evalCase(ctx *Context, env *Env, x *ast.Case) (value.Value, error) {
	var operand value.Value
	if x.Operand != nil {
		var err error
		operand, err = Eval(ctx, env, x.Operand)
		if err != nil {
			return nil, err
		}
		if !ctx.Compat && operand.Kind() == value.KindMissing {
			return value.Missing, nil
		}
	}
	for _, w := range x.Whens {
		var cond value.Value
		var err error
		if x.Operand != nil {
			wv, err := Eval(ctx, env, w.Cond)
			if err != nil {
				return nil, err
			}
			cond, err = Comparison(ctx, "=", operand, wv, x.Pos())
			if err != nil {
				return nil, err
			}
		} else {
			cond, err = Eval(ctx, env, w.Cond)
			if err != nil {
				return nil, err
			}
		}
		if !ctx.Compat && cond.Kind() == value.KindMissing {
			return value.Missing, nil
		}
		if IsTrue(cond) {
			return Eval(ctx, env, w.Result)
		}
	}
	if x.Else != nil {
		return Eval(ctx, env, x.Else)
	}
	return value.Null, nil
}

func evalCall(ctx *Context, env *Env, x *ast.Call) (value.Value, error) {
	if ctx.Funcs == nil {
		return nil, fmt.Errorf("eval: no function source configured (call to %s at %s)", x.Name, x.Pos())
	}
	def, ok := ctx.Funcs.LookupFunc(x.Name)
	if !ok {
		return nil, &NameError{Pos: x.Pos(), Name: x.Name + "()"}
	}
	if len(x.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(x.Args) > def.MaxArgs) {
		return nil, fmt.Errorf("eval: %s expects %d..%d arguments, got %d at %s",
			x.Name, def.MinArgs, def.MaxArgs, len(x.Args), x.Pos())
	}
	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(ctx, env, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return callFunc(ctx, def, args, x.Pos())
}

// callFunc invokes a resolved function on already-evaluated arguments,
// applying the mode policy to type errors it raises.
func callFunc(ctx *Context, def *FuncDef, args []value.Value, pos lexer.Pos) (value.Value, error) {
	v, err := def.Fn(ctx, args)
	if err != nil {
		if te, ok := err.(*TypeError); ok {
			if te.Pos == (lexer.Pos{}) {
				te.Pos = pos
			}
			if ctx.Mode == Permissive {
				return value.Missing, nil
			}
		}
		return nil, err
	}
	return v, nil
}

func evalTupleCtor(ctx *Context, env *Env, x *ast.TupleCtor) (value.Value, error) {
	t := value.EmptyTuple()
	for _, f := range x.Fields {
		nameV, err := Eval(ctx, env, f.Name)
		if err != nil {
			return nil, err
		}
		name, ok, err := tupleFieldName(ctx, nameV, x.Pos())
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		v, err := Eval(ctx, env, f.Value)
		if err != nil {
			return nil, err
		}
		t.Put(name, v)
	}
	return t, nil
}

// tupleFieldName validates an evaluated attribute-name operand. A
// non-string name is a type fault; in permissive mode the attribute is
// skipped (ok=false, MISSING attribute name => missing attribute)
// without evaluating its value.
func tupleFieldName(ctx *Context, nameV value.Value, pos lexer.Pos) (string, bool, error) {
	name, ok := nameV.(value.String)
	if !ok {
		if _, err := ctx.mistyped(pos, "tuple constructor", "attribute name is "+nameV.Kind().String()); err != nil {
			return "", false, err
		}
		return "", false, nil
	}
	return string(name), true, nil
}
