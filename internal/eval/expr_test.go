package eval

import (
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// testFuncs is a tiny function source adequate for expression tests
// (package funcs has the full library; depending on it here would invert
// the package layering).
type testFuncs map[string]*FuncDef

func (t testFuncs) LookupFunc(name string) (*FuncDef, bool) {
	d, ok := t[strings.ToUpper(name)]
	return d, ok
}

func newTestCtx(compat bool, mode TypingMode) *Context {
	return &Context{
		Mode:   mode,
		Compat: compat,
		Funcs: testFuncs{
			"UPPER": {Name: "UPPER", MinArgs: 1, MaxArgs: 1, Fn: func(ctx *Context, args []value.Value) (value.Value, error) {
				if value.IsAbsent(args[0]) {
					return absentOut(ctx, args[0].Kind() == value.KindMissing), nil
				}
				s, ok := args[0].(value.String)
				if !ok {
					return nil, &TypeError{Op: "UPPER", Detail: "not a string"}
				}
				return value.String(strings.ToUpper(string(s))), nil
			}},
		},
	}
}

// evalStr parses and evaluates an expression with variables bound from
// object-notation sources.
func evalStr(t *testing.T, ctx *Context, src string, vars map[string]string) (value.Value, error) {
	t.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	env := NewEnv()
	for name, vsrc := range vars {
		env.Bind(name, sion.MustParse(vsrc))
	}
	return Eval(ctx, env, e)
}

func mustEval(t *testing.T, ctx *Context, src string, vars map[string]string) value.Value {
	t.Helper()
	v, err := evalStr(t, ctx, src, vars)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct {
		src, want string
	}{
		{"1 + 2", "3"},
		{"7 - 9", "-2"},
		{"3 * 4", "12"},
		{"7 / 2", "3"}, // integer division
		{"7 % 3", "1"},
		{"7.0 / 2", "3.5"},
		{"1 + 2.5", "3.5"},
		{"-(3)", "-3"},
		{"-2.5", "-2.5"},
		{"1 + null", "null"},
		{"null * null", "null"},
		{"1 + missing", "missing"},
		{"2 * 'some string'", "missing"}, // the paper's §IV example
		{"1 / 0", "missing"},
		{"1 % 0", "missing"},
		{"1.5 / 0.0", "missing"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestArithmeticStrictErrors(t *testing.T) {
	ctx := newTestCtx(false, StopOnError)
	for _, src := range []string{"2 * 'x'", "1 / 0", "-'x'", "'a' || 1"} {
		if _, err := evalStr(t, ctx, src, nil); err == nil {
			t.Errorf("%s should error in stop-on-error mode", src)
		}
	}
	// Absent propagation is not a type error even in strict mode.
	if v, err := evalStr(t, ctx, "1 + null", nil); err != nil || v.Kind() != value.KindNull {
		t.Errorf("1 + null in strict mode = %v, %v", v, err)
	}
}

func TestComparisons(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct {
		src, want string
	}{
		{"1 = 1", "true"},
		{"1 = 1.0", "true"},
		{"1 <> 2", "true"},
		{"1 < 2", "true"},
		{"2 <= 2", "true"},
		{"'a' < 'b'", "true"},
		{"'a' >= 'b'", "false"},
		{"true = true", "true"},
		{"[1, 2] = [1, 2]", "true"},
		{"[1, 2] = [2, 1]", "false"},
		{"{{1, 2}} = {{2, 1}}", "true"},
		{"{'a': 1} = {'a': 1}", "true"},
		{"1 = 'a'", "false"}, // cross-class equality is FALSE
		{"1 <> 'a'", "true"},
		{"1 < 'a'", "missing"},   // cross-class ordering is a type fault
		{"[1] < [2]", "missing"}, // ordering on non-scalars too
		{"1 = null", "null"},
		{"null = null", "null"},
		{"missing = 1", "missing"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct {
		src, want string
	}{
		{"true AND true", "true"},
		{"true AND false", "false"},
		{"false AND null", "false"}, // FALSE dominates
		{"null AND true", "null"},
		{"true OR null", "true"},
		{"null OR false", "null"},
		{"NOT true", "false"},
		{"NOT null", "null"},
		{"NOT missing", "missing"}, // flexible: MISSING propagates
		{"missing AND true", "missing"},
		{"missing OR true", "true"},
		{"missing AND false", "false"},
		{"missing OR null", "missing"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
	// In compat mode missing-unknowns surface as NULL.
	compatCtx := newTestCtx(true, Permissive)
	if got := mustEval(t, compatCtx, "NOT missing", nil); got.Kind() != value.KindNull {
		t.Errorf("compat NOT missing = %s, want null", got)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	// The right operand must not be evaluated when the left decides:
	// 1/0 would be a type fault in strict mode.
	ctx := newTestCtx(false, StopOnError)
	if v, err := evalStr(t, ctx, "false AND (1 / 0 = 1)", nil); err != nil || v != value.False {
		t.Errorf("short-circuit AND failed: %v, %v", v, err)
	}
	if v, err := evalStr(t, ctx, "true OR (1 / 0 = 1)", nil); err != nil || v != value.True {
		t.Errorf("short-circuit OR failed: %v, %v", v, err)
	}
}

func TestNavigation(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	vars := map[string]string{
		"t": `{'a': 1, 'b': {'c': [10, 20]}, 'n': null}`,
	}
	cases := []struct {
		src, want string
	}{
		{"t.a", "1"},
		{"t.b.c[0]", "10"},
		{"t.b.c[1]", "20"},
		{"t.b.c[2]", "missing"}, // out of bounds
		{"t.b.c[-1]", "missing"},
		{"t.nope", "missing"}, // rule 1
		{"t.nope.deeper", "missing"},
		{"t.n.x", "null"},    // navigation on NULL stays NULL
		{"t.a.x", "missing"}, // navigation into a scalar
		{"t['a']", "1"},      // tuple indexing by string
		{"t.b['c']", "[10, 20]"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, vars)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct {
		src, want string
	}{
		{"'OLAP Security' LIKE '%Security%'", "true"},
		{"'OLAP Security' LIKE 'OLAP%'", "true"},
		{"'OLAP Security' LIKE '%security%'", "false"}, // case-sensitive
		{"'abc' LIKE 'a_c'", "true"},
		{"'abc' LIKE 'a_d'", "false"},
		{"'abc' LIKE 'abc'", "true"},
		{"'abc' NOT LIKE 'x%'", "true"},
		{"'' LIKE '%'", "true"},
		{"'' LIKE '_'", "false"},
		{"'100%' LIKE '100\\%' ESCAPE '\\'", "true"},
		{"'100x' LIKE '100\\%' ESCAPE '\\'", "false"},
		{"'a_b' LIKE 'a!_b' ESCAPE '!'", "true"},
		{"'aXb' LIKE 'a!_b' ESCAPE '!'", "false"},
		{"'δζ' LIKE '_ζ'", "true"}, // rune-wise, not byte-wise
		{"null LIKE 'a'", "null"},
		{"'a' LIKE missing", "missing"},
		{"5 LIKE 'a'", "missing"},
		{"'abcde' LIKE '%b%d%'", "true"},
		{"'ab' LIKE '%%%'", "true"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestBetweenInIs(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct {
		src, want string
	}{
		{"5 BETWEEN 1 AND 10", "true"},
		{"0 NOT BETWEEN 1 AND 10", "true"},
		{"null BETWEEN 1 AND 10", "null"},
		{"5 BETWEEN missing AND 10", "missing"},
		{"2 IN (1, 2, 3)", "true"},
		{"5 IN (1, 2, 3)", "false"},
		{"5 NOT IN (1, 2, 3)", "true"},
		{"null IN (1, 2)", "null"},
		{"1 IN (null, 1)", "true"}, // TRUE wins over UNKNOWN
		{"2 IN (null, 1)", "null"}, // UNKNOWN wins over FALSE
		{"2 IN [1, 2]", "true"},    // collection RHS
		{"2 IN {{3}}", "false"},
		{"2 IN 7", "missing"}, // non-collection RHS
		{"null IS NULL", "true"},
		{"missing IS NULL", "false"}, // flexible mode distinguishes
		{"missing IS MISSING", "true"},
		{"null IS MISSING", "false"},
		{"1 IS NOT NULL", "true"},
		{"null IS UNKNOWN", "true"},
		{"false IS UNKNOWN", "false"},
		{"missing IS UNKNOWN", "true"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
	compatCtx := newTestCtx(true, Permissive)
	if got := mustEval(t, compatCtx, "missing IS NULL", nil); got != value.True {
		t.Errorf("compat missing IS NULL = %s, want true", got)
	}
}

func TestCaseSemantics(t *testing.T) {
	flexible := newTestCtx(false, Permissive)
	compat := newTestCtx(true, Permissive)
	vars := map[string]string{"t": `{'a': 1}`}

	// Searched CASE with a MISSING condition: flexible propagates
	// MISSING (the paper's Listing 9 reading); compat takes ELSE.
	src := "CASE WHEN t.nope = 1 THEN 'x' ELSE 'y' END"
	if got := mustEval(t, flexible, src, vars); got.Kind() != value.KindMissing {
		t.Errorf("flexible CASE = %s, want MISSING", got)
	}
	if got := mustEval(t, compat, src, vars); got != value.String("y") {
		t.Errorf("compat CASE = %s, want 'y'", got)
	}

	// NULL conditions take ELSE in both modes (SQL semantics).
	srcNull := "CASE WHEN null THEN 'x' ELSE 'y' END"
	for _, ctx := range []*Context{flexible, compat} {
		if got := mustEval(t, ctx, srcNull, vars); got != value.String("y") {
			t.Errorf("CASE WHEN null = %s, want 'y'", got)
		}
	}

	// Simple CASE, no ELSE -> NULL.
	if got := mustEval(t, flexible, "CASE 2 WHEN 1 THEN 'a' END", nil); got.Kind() != value.KindNull {
		t.Errorf("unmatched simple CASE = %s, want null", got)
	}
	if got := mustEval(t, flexible, "CASE 1 WHEN 1 THEN 'a' END", nil); got != value.String("a") {
		t.Errorf("simple CASE = %s", got)
	}
	// Simple CASE over a MISSING operand propagates in flexible mode.
	if got := mustEval(t, flexible, "CASE t.nope WHEN 1 THEN 'a' ELSE 'b' END", vars); got.Kind() != value.KindMissing {
		t.Errorf("simple CASE on MISSING = %s, want MISSING", got)
	}
}

func TestConstructors(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	vars := map[string]string{"t": `{'a': 1}`}
	// Tuple constructor drops MISSING values.
	got := mustEval(t, ctx, "{'x': t.a, 'y': t.nope}", vars)
	if !value.Equivalent(got, sion.MustParse("{'x': 1}")) {
		t.Errorf("tuple ctor = %s", got)
	}
	// Bag constructor drops MISSING elements; array keeps position as
	// NULL.
	if got := mustEval(t, ctx, "<<t.a, t.nope>>", vars); !value.Equivalent(got, sion.MustParse("{{1}}")) {
		t.Errorf("bag ctor = %s", got)
	}
	if got := mustEval(t, ctx, "[t.a, t.nope, 3]", vars); !value.Equivalent(got, sion.MustParse("[1, null, 3]")) {
		t.Errorf("array ctor = %s", got)
	}
	// Computed attribute names.
	if got := mustEval(t, ctx, "{'k' || '1': 2}", nil); !value.Equivalent(got, sion.MustParse("{'k1': 2}")) {
		t.Errorf("computed name = %s", got)
	}
}

func TestExists(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	cases := []struct {
		src, want string
	}{
		{"EXISTS [1]", "true"},
		{"EXISTS []", "false"},
		{"EXISTS {{}}", "false"},
		{"EXISTS null", "false"},
		{"EXISTS 5", "missing"},
	}
	for _, c := range cases {
		got := mustEval(t, ctx, c.src, nil)
		if !value.Equivalent(got, sion.MustParse(c.want)) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestCallDispatch(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	if got := mustEval(t, ctx, "UPPER('abc')", nil); got != value.String("ABC") {
		t.Errorf("UPPER = %s", got)
	}
	// Unknown function is a name error, not a type fault.
	if _, err := evalStr(t, ctx, "NO_SUCH_FN(1)", nil); err == nil {
		t.Error("unknown function should error")
	}
	// Wrong arity.
	if _, err := evalStr(t, ctx, "UPPER('a', 'b')", nil); err == nil {
		t.Error("arity violation should error")
	}
	// Type fault inside a function: MISSING in permissive mode.
	if got := mustEval(t, ctx, "UPPER(5)", nil); got.Kind() != value.KindMissing {
		t.Errorf("UPPER(5) = %s, want MISSING", got)
	}
	strict := newTestCtx(false, StopOnError)
	if _, err := evalStr(t, strict, "UPPER(5)", nil); err == nil {
		t.Error("UPPER(5) should error in stop-on-error mode")
	}
}

func TestUnboundVariable(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	_, err := evalStr(t, ctx, "nowhere", nil)
	ne, ok := err.(*NameError)
	if !ok {
		t.Fatalf("got %T (%v), want *NameError", err, err)
	}
	if ne.Name != "nowhere" {
		t.Errorf("NameError.Name = %q", ne.Name)
	}
}

func TestEnvScoping(t *testing.T) {
	root := NewEnv()
	root.Bind("x", value.Int(1))
	child := root.Child()
	child.Bind("y", value.Int(2))
	if v, ok := child.Lookup("x"); !ok || v != value.Int(1) {
		t.Error("child should see parent bindings")
	}
	child.Bind("x", value.Int(9))
	if v, _ := child.Lookup("x"); v != value.Int(9) {
		t.Error("child binding should shadow parent")
	}
	if v, _ := root.Lookup("x"); v != value.Int(1) {
		t.Error("parent must be unaffected by child shadowing")
	}
	if _, ok := root.Lookup("y"); ok {
		t.Error("parent must not see child bindings")
	}
}

func TestSnapshotBelow(t *testing.T) {
	outer := NewEnv()
	outer.Bind("o", value.Int(0))
	e1 := outer.Child()
	e1.Bind("e", value.Int(1))
	e2 := e1.Child()
	e2.Bind("p", value.Int(2))
	snap := e2.SnapshotBelow(outer)
	want := value.NewTuple(
		value.Field{Name: "e", Value: value.Int(1)},
		value.Field{Name: "p", Value: value.Int(2)},
	)
	if !value.Equivalent(snap, want) {
		t.Errorf("SnapshotBelow = %s, want %s", snap, want)
	}
	// Shadowed names keep the innermost value.
	e3 := e2.Child()
	e3.Bind("e", value.Int(7))
	snap2 := e3.SnapshotBelow(outer)
	if v, _ := snap2.Get("e"); v != value.Int(7) {
		t.Errorf("shadowed snapshot e = %s", v)
	}
}

func TestSubqueryNeedsRunner(t *testing.T) {
	ctx := newTestCtx(false, Permissive)
	e := parser.MustParse("(SELECT VALUE 1)")
	if _, ok := e.(*ast.SFW); !ok {
		t.Fatalf("got %T", e)
	}
	if _, err := Eval(ctx, NewEnv(), e); err == nil {
		t.Error("evaluating a query block without a runner should error")
	}
}
