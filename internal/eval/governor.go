package eval

import (
	"fmt"
	"sync/atomic"
	"time"

	"sqlpp/internal/value"
)

// The per-query resource governor. The paper's permissive vs.
// stop-on-error modes (§IV) turn dynamic *type* errors into well-defined
// per-query outcomes; the governor extends the same discipline to
// *resource* errors. Every site that materializes state — hash-join
// builds, GROUP BY content, ORDER BY buffers, window partitions,
// DISTINCT keys, hoisted sources — and every site that emits an output
// row charges its budget here, and exceeding a budget aborts that one
// query with a typed ResourceError instead of exhausting the process.
//
// The nil-governor fast path mirrors the StatsSink contract: each charge
// site is guarded by a single pointer test, so an ungoverned execution
// pays one predictable branch and nothing else. Counters are atomics —
// the workers of a parallel scan share one Governor through Context.Fork
// and charge it concurrently.

// Limits configures the per-query budgets; zero fields are unlimited,
// and the zero value disables the governor entirely.
type Limits struct {
	// MaxOutputRows bounds rows materialized into result sinks, summed
	// over every query block (subqueries included).
	MaxOutputRows int64
	// MaxMaterializedValues bounds intermediate values buffered by
	// blocking operators: hash-join build rows, GROUP BY content tuples,
	// window partitions, DISTINCT keys, set-operation inputs, hoisted
	// sources.
	MaxMaterializedValues int64
	// MaxMaterializedBytes bounds the approximate bytes (value.ApproxSize)
	// of output rows plus materialized intermediate values.
	MaxMaterializedBytes int64
	// MaxDepth bounds query-block nesting (subqueries, GROUP AS
	// re-querying, WITH bodies).
	MaxDepth int
	// MaxWallTime bounds execution wall time, checked at the same
	// cooperative poll sites as cancellation.
	MaxWallTime time.Duration
}

// Unlimited reports whether every budget is absent.
func (l Limits) Unlimited() bool { return l == Limits{} }

// ResourceKind names which budget a ResourceError exceeded.
type ResourceKind string

// The budget kinds, machine-readable through ResourceError.Kind.
const (
	ResourceRows   ResourceKind = "output-rows"
	ResourceValues ResourceKind = "materialized-values"
	ResourceBytes  ResourceKind = "materialized-bytes"
	ResourceDepth  ResourceKind = "nesting-depth"
	ResourceTime   ResourceKind = "wall-time"
)

// ResourceError reports a query aborted by the governor. It is a
// per-query failure: the engine and any other in-flight queries are
// unaffected. Match it with errors.As.
type ResourceError struct {
	// Kind is the exceeded budget.
	Kind ResourceKind
	// Site names the operator that charged past the budget ("select",
	// "hash-build", "group-by", "order-by", "window", "distinct",
	// "set-op", "hoist", "block").
	Site string
	// Limit is the configured budget; Observed the amount that tripped
	// it (for wall time, nanoseconds).
	Limit, Observed int64
}

// Error implements the error interface.
func (e *ResourceError) Error() string {
	if e.Kind == ResourceTime {
		return fmt.Sprintf("sqlpp: resource limit exceeded: %s at %s: %s over budget %s",
			e.Kind, e.Site, time.Duration(e.Observed), time.Duration(e.Limit))
	}
	return fmt.Sprintf("sqlpp: resource limit exceeded: %s at %s: %d over budget %d",
		e.Kind, e.Site, e.Observed, e.Limit)
}

// Governor enforces one query execution's Limits. Create one per
// execution with NewGovernor and install it in the Context; nil (the
// result for unlimited Limits) disables all accounting.
type Governor struct {
	lim Limits
	// deadline is the wall-time budget's expiry; zero when unbudgeted.
	deadline time.Time
	start    time.Time

	rows   atomic.Int64
	values atomic.Int64
	bytes  atomic.Int64
}

// NewGovernor returns a governor enforcing lim, or nil when lim is
// unlimited — callers install the result directly and every charge site
// takes the fast path.
func NewGovernor(lim Limits) *Governor {
	if lim.Unlimited() {
		return nil
	}
	g := &Governor{lim: lim, start: time.Now()}
	if lim.MaxWallTime > 0 {
		g.deadline = g.start.Add(lim.MaxWallTime)
	}
	return g
}

// ChargeOutput charges n output rows plus, when a byte budget is set,
// the approximate size of v (which may be nil for row-count-only
// charges).
func (g *Governor) ChargeOutput(site string, n int64, v value.Value) error {
	if g.lim.MaxOutputRows > 0 {
		if got := g.rows.Add(n); got > g.lim.MaxOutputRows {
			return &ResourceError{Kind: ResourceRows, Site: site, Limit: g.lim.MaxOutputRows, Observed: got}
		}
	}
	return g.chargeBytes(site, v)
}

// ChargeValues charges n materialized intermediate values plus, when a
// byte budget is set, the approximate size of v (nil for count-only
// charges).
func (g *Governor) ChargeValues(site string, n int64, v value.Value) error {
	if g.lim.MaxMaterializedValues > 0 {
		if got := g.values.Add(n); got > g.lim.MaxMaterializedValues {
			return &ResourceError{Kind: ResourceValues, Site: site, Limit: g.lim.MaxMaterializedValues, Observed: got}
		}
	}
	return g.chargeBytes(site, v)
}

// ChargeBindings charges one materialized row holding vals (a hash-join
// build row's variables).
func (g *Governor) ChargeBindings(site string, vals []value.Value) error {
	if g.lim.MaxMaterializedValues > 0 {
		if got := g.values.Add(1); got > g.lim.MaxMaterializedValues {
			return &ResourceError{Kind: ResourceValues, Site: site, Limit: g.lim.MaxMaterializedValues, Observed: got}
		}
	}
	if g.lim.MaxMaterializedBytes > 0 {
		var sz int64
		// ctxpoll: vals is one row's bindings — bounded by the query's
		// variable count, not the data; the byte charge below is the poll.
		for _, v := range vals {
			sz += value.ApproxSize(v)
		}
		if got := g.bytes.Add(sz); got > g.lim.MaxMaterializedBytes {
			return &ResourceError{Kind: ResourceBytes, Site: site, Limit: g.lim.MaxMaterializedBytes, Observed: got}
		}
	}
	return nil
}

// chargeBytes accrues v's approximate size against the byte budget.
// Sizing walks the value, so it runs only when a byte budget exists.
func (g *Governor) chargeBytes(site string, v value.Value) error {
	if g.lim.MaxMaterializedBytes <= 0 || v == nil {
		return nil
	}
	if got := g.bytes.Add(value.ApproxSize(v)); got > g.lim.MaxMaterializedBytes {
		return &ResourceError{Kind: ResourceBytes, Site: site, Limit: g.lim.MaxMaterializedBytes, Observed: got}
	}
	return nil
}

// CheckDepth verifies a query block may open at the given nesting depth.
func (g *Governor) CheckDepth(depth int) error {
	if g.lim.MaxDepth > 0 && depth > g.lim.MaxDepth {
		return &ResourceError{Kind: ResourceDepth, Site: "block", Limit: int64(g.lim.MaxDepth), Observed: int64(depth)}
	}
	return nil
}

// CheckTime verifies the wall-time budget; polled at the same sites as
// cancellation (Context.Interrupted).
func (g *Governor) CheckTime() error {
	if g.deadline.IsZero() {
		return nil
	}
	if now := time.Now(); now.After(g.deadline) {
		return &ResourceError{Kind: ResourceTime, Site: "query",
			Limit: int64(g.lim.MaxWallTime), Observed: int64(now.Sub(g.start))}
	}
	return nil
}

// Usage reports the charged totals (tests and diagnostics).
func (g *Governor) Usage() (rows, values, bytes int64) {
	return g.rows.Load(), g.values.Load(), g.bytes.Load()
}
