package eval

import (
	"errors"
	"strings"
	"testing"
	"time"

	"sqlpp/internal/value"
)

func TestNewGovernorNilForUnlimited(t *testing.T) {
	if g := NewGovernor(Limits{}); g != nil {
		t.Fatal("zero Limits must yield a nil governor (the fast path)")
	}
	if g := NewGovernor(Limits{MaxOutputRows: 1}); g == nil {
		t.Fatal("a set budget must yield a governor")
	}
}

func TestChargeOutputRows(t *testing.T) {
	g := NewGovernor(Limits{MaxOutputRows: 3})
	for i := 0; i < 3; i++ {
		if err := g.ChargeOutput("select", 1, nil); err != nil {
			t.Fatalf("charge %d within budget: %v", i, err)
		}
	}
	err := g.ChargeOutput("select", 1, nil)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want ResourceError, got %v", err)
	}
	if re.Kind != ResourceRows || re.Site != "select" || re.Limit != 3 || re.Observed != 4 {
		t.Errorf("bad error fields: %+v", re)
	}
}

func TestChargeValuesAndBindings(t *testing.T) {
	g := NewGovernor(Limits{MaxMaterializedValues: 2})
	if err := g.ChargeValues("group-by", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.ChargeBindings("hash-build", []value.Value{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	err := g.ChargeValues("group-by", 1, nil)
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceValues {
		t.Fatalf("want materialized-values error, got %v", err)
	}
}

func TestChargeBytes(t *testing.T) {
	g := NewGovernor(Limits{MaxMaterializedBytes: 64})
	err := g.ChargeOutput("select", 1, value.String(strings.Repeat("x", 256)))
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceBytes {
		t.Fatalf("want materialized-bytes error, got %v", err)
	}
	if re.Observed <= re.Limit {
		t.Errorf("observed %d should exceed limit %d", re.Observed, re.Limit)
	}

	// Without a byte budget, values are never sized.
	g2 := NewGovernor(Limits{MaxOutputRows: 1 << 30})
	if err := g2.ChargeOutput("select", 1, value.String(strings.Repeat("x", 1<<20))); err != nil {
		t.Fatalf("no byte budget must not charge bytes: %v", err)
	}
	if _, _, b := g2.Usage(); b != 0 {
		t.Errorf("bytes charged without a byte budget: %d", b)
	}
}

func TestCheckDepth(t *testing.T) {
	g := NewGovernor(Limits{MaxDepth: 2})
	if err := g.CheckDepth(2); err != nil {
		t.Fatalf("depth at budget: %v", err)
	}
	err := g.CheckDepth(3)
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceDepth {
		t.Fatalf("want nesting-depth error, got %v", err)
	}
}

func TestCheckTime(t *testing.T) {
	g := NewGovernor(Limits{MaxWallTime: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := g.CheckTime()
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceTime {
		t.Fatalf("want wall-time error, got %v", err)
	}
	if !strings.Contains(re.Error(), "wall-time") {
		t.Errorf("message should name the budget: %q", re.Error())
	}

	g2 := NewGovernor(Limits{MaxWallTime: time.Hour})
	if err := g2.CheckTime(); err != nil {
		t.Fatalf("within wall budget: %v", err)
	}
}

// TestInterruptedChecksGovernorTime: the cooperative poll must notice a
// spent wall budget even with no cancellation context installed.
func TestInterruptedChecksGovernorTime(t *testing.T) {
	c := &Context{Gov: NewGovernor(Limits{MaxWallTime: time.Nanosecond})}
	time.Sleep(time.Millisecond)
	var err error
	for i := 0; i < pollInterval+1 && err == nil; i++ {
		err = c.Interrupted()
	}
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != ResourceTime {
		t.Fatalf("want wall-time error from the poll, got %v", err)
	}
}

func TestRecoveredPanicError(t *testing.T) {
	c := &Context{}
	pe := c.Recovered("boom")
	if pe.Val != "boom" || len(pe.Stack) == 0 {
		t.Errorf("bad PanicError: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "internal error") {
		t.Errorf("message should mark the bug as internal: %q", pe.Error())
	}
}
