package eval

import "sync"

// likeCache memoizes compiled LIKE patterns process-wide; patterns are
// almost always literals repeated across rows.
var likeCache sync.Map // string(pattern + "\x00" + escape) -> *likeMatcher

const (
	likeLit uint8 = iota // match this exact rune
	likeOne              // '_' : match any single rune
	likeAny              // '%' : match any rune sequence
)

type likeRune struct {
	r    rune
	kind uint8
}

// likeMatcher is a compiled SQL LIKE pattern.
type likeMatcher struct {
	pat []likeRune
}

// compileLike builds (or fetches from cache) the matcher for pattern with
// the given escape rune (0 for none). It reports ok=false when the
// pattern is malformed: an escape character at the end of the pattern, or
// escaping anything other than '%', '_', or the escape character itself.
func compileLike(pattern string, escape rune) (*likeMatcher, bool) {
	key := pattern + "\x00" + string(escape)
	if m, ok := likeCache.Load(key); ok {
		return m.(*likeMatcher), true
	}
	runes := []rune(pattern)
	m := &likeMatcher{pat: make([]likeRune, 0, len(runes))}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case escape != 0 && r == escape:
			if i+1 >= len(runes) {
				return nil, false
			}
			next := runes[i+1]
			if next != '%' && next != '_' && next != escape {
				return nil, false
			}
			m.pat = append(m.pat, likeRune{r: next, kind: likeLit})
			i++
		case r == '%':
			// Consecutive '%' collapse to one.
			if n := len(m.pat); n == 0 || m.pat[n-1].kind != likeAny {
				m.pat = append(m.pat, likeRune{kind: likeAny})
			}
		case r == '_':
			m.pat = append(m.pat, likeRune{kind: likeOne})
		default:
			m.pat = append(m.pat, likeRune{r: r, kind: likeLit})
		}
	}
	likeCache.Store(key, m)
	return m, true
}

// match reports whether s matches the pattern, using the standard
// backtracking wildcard algorithm over runes.
func (m *likeMatcher) match(s string) bool {
	rs := []rune(s)
	pat := m.pat
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(rs) {
		switch {
		case pi < len(pat) && (pat[pi].kind == likeOne ||
			(pat[pi].kind == likeLit && pat[pi].r == rs[si])):
			pi++
			si++
		case pi < len(pat) && pat[pi].kind == likeAny:
			star, starSi = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi].kind == likeAny {
		pi++
	}
	return pi == len(pat)
}
