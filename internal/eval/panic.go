package eval

import (
	"fmt"
	"runtime/debug"

	"sqlpp/internal/lexer"
)

// Panic containment. An operator bug (or an injected fault) that panics
// must fail the one query that hit it, never the process: the facade
// recovers at the Exec boundary and each parallel-scan worker recovers
// in its own goroutine, both converting the panic into a *PanicError
// carrying the plan position of the block that was executing.

// PanicError is a query failure recovered from a panic during plan
// execution. It is an internal-error report, not a user mistake: the
// query text was valid, an operator implementation failed. Match it
// with errors.As; Stack carries the goroutine stack captured at the
// recovery point.
type PanicError struct {
	// Val is the value the panic carried.
	Val any
	// Pos is the source position of the innermost query block that was
	// executing when the panic fired.
	Pos lexer.Pos
	// Stack is the recovered goroutine's stack trace.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sqlpp: internal error executing query block at %s: recovered panic: %v", e.Pos, e.Val)
}

// Recovered converts a recovered panic value into a *PanicError stamped
// with the context's current plan position. Call it only from a
// deferred recover handler.
func (c *Context) Recovered(p any) *PanicError {
	return &PanicError{Val: p, Pos: c.PlanPos, Stack: debug.Stack()}
}
