package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EXPLAIN ANALYZE instrumentation. When Context.Stats is non-nil, the
// plan's physical operators record rows in/out, wall time, and
// operator-specific counters into a tree of StatsNodes that mirrors the
// plan shape: query blocks nest for subqueries, and within a block the
// operators appear in pipeline order (FROM steps with their pushed
// filters, residual WHERE, GROUP BY, HAVING, windows, DISTINCT,
// ORDER BY / top-K, LIMIT).
//
// The nil-sink fast path: every instrumentation site is guarded by a
// single pointer test, so an uninstrumented execution pays one
// predictable branch per site and allocates nothing. When instrumentation
// is on, the hot-path counters are atomics — the workers of a parallel
// scan share one node per operator and fold into it concurrently.

// StatsNode is one operator's live counters in the stats tree.
type StatsNode struct {
	// Op names the physical operator: "scan", "unpivot", "join",
	// "hash-join", "filter", "group-by", "distinct", "order-by", "top-k",
	// "limit", "window", "select", "set-op", "pivot", "query".
	Op string
	// Label distinguishes instances: the binding variable of a scan, the
	// role of a filter ("pushed", "where", "residual", "pre", "having"),
	// the position of a block.
	Label string

	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	nanos   atomic.Int64

	mu       sync.Mutex
	extras   []statsCounter
	children []*StatsNode
}

type statsCounter struct {
	name string
	val  *atomic.Int64
}

// AddIn counts rows flowing into the operator.
func (n *StatsNode) AddIn(d int64) { n.rowsIn.Add(d) }

// AddOut counts rows the operator emitted.
func (n *StatsNode) AddOut(d int64) { n.rowsOut.Add(d) }

// SetOut overwrites the emitted-row count; the parallel merge uses it to
// replace per-worker sums with the globally correct value.
func (n *StatsNode) SetOut(v int64) { n.rowsOut.Store(v) }

// AddNanos accrues wall time attributed to the operator.
func (n *StatsNode) AddNanos(d int64) { n.nanos.Add(d) }

// Timer starts attributing wall time to n; call the returned stop
// function when the timed phase ends.
func (n *StatsNode) Timer() func() {
	start := time.Now()
	return func() { n.nanos.Add(int64(time.Since(start))) }
}

// Counter returns the operator-specific counter with the given name,
// creating it on first use. Hot paths should resolve the pointer once
// and keep it; the lookup takes the node lock.
func (n *StatsNode) Counter(name string) *atomic.Int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, c := range n.extras {
		if c.name == name {
			return c.val
		}
	}
	v := new(atomic.Int64)
	n.extras = append(n.extras, statsCounter{name: name, val: v})
	return v
}

// StatsSink collects the stats tree of one instrumented execution. Nodes
// are keyed by plan position (an AST or physical-plan pointer plus a
// role), so repeated invocations of the same operator — a correlated
// subquery re-run per outer row, the workers of a parallel scan — all
// accumulate into one node.
type StatsSink struct {
	// Root anchors the tree; the top-level query expression's node is its
	// first child.
	Root *StatsNode

	mu    sync.Mutex
	index map[sinkKey]*StatsNode
}

type sinkKey struct {
	owner any
	role  string
}

// NewStatsSink returns an empty sink ready to be installed in a Context.
func NewStatsSink() *StatsSink {
	return &StatsSink{Root: &StatsNode{Op: "query"}, index: map[sinkKey]*StatsNode{}}
}

// Node returns the tree node for (owner, role), creating it as a child
// of parent on first use. On a hit the parent argument is ignored, which
// is what lets the plan pre-create a block's skeleton in pipeline order
// and have the execution-time lookups land on the same nodes.
func (s *StatsSink) Node(parent *StatsNode, owner any, role, op, label string) *StatsNode {
	k := sinkKey{owner: owner, role: role}
	s.mu.Lock()
	if n, ok := s.index[k]; ok {
		s.mu.Unlock()
		return n
	}
	n := &StatsNode{Op: op, Label: label}
	s.index[k] = n
	s.mu.Unlock()
	parent.mu.Lock()
	parent.children = append(parent.children, n)
	parent.mu.Unlock()
	return n
}

// StatsSnapshot is an immutable copy of a stats tree: the JSON/wire form
// of EXPLAIN ANALYZE.
type StatsSnapshot struct {
	Op       string           `json:"op"`
	Label    string           `json:"label,omitempty"`
	RowsIn   int64            `json:"rows_in"`
	RowsOut  int64            `json:"rows_out"`
	TimeNS   int64            `json:"time_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*StatsSnapshot `json:"children,omitempty"`
}

// Snapshot copies the subtree rooted at n.
func (n *StatsNode) Snapshot() *StatsSnapshot {
	s := &StatsSnapshot{
		Op:      n.Op,
		Label:   n.Label,
		RowsIn:  n.rowsIn.Load(),
		RowsOut: n.rowsOut.Load(),
		TimeNS:  n.nanos.Load(),
	}
	n.mu.Lock()
	if len(n.extras) > 0 {
		s.Counters = make(map[string]int64, len(n.extras))
		for _, c := range n.extras {
			s.Counters[c.name] = c.val.Load()
		}
	}
	children := make([]*StatsNode, len(n.children))
	copy(children, n.children)
	n.mu.Unlock()
	for _, c := range children {
		s.Children = append(s.Children, c.Snapshot())
	}
	return s
}

// Walk visits s and every descendant in depth-first order.
func (s *StatsSnapshot) Walk(fn func(*StatsSnapshot)) {
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Render formats the tree as indented text, one operator per line.
// redactTimes omits the wall-time column, which is what lets golden
// tests assert the exact tree while times vary run to run.
func (s *StatsSnapshot) Render(redactTimes bool) string {
	var sb strings.Builder
	s.render(&sb, 0, redactTimes)
	return sb.String()
}

func (s *StatsSnapshot) render(sb *strings.Builder, depth int, redactTimes bool) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(s.Op)
	if s.Label != "" {
		fmt.Fprintf(sb, "(%s)", s.Label)
	}
	fmt.Fprintf(sb, " in=%d out=%d", s.RowsIn, s.RowsOut)
	if !redactTimes {
		fmt.Fprintf(sb, " time=%s", time.Duration(s.TimeNS))
	}
	if len(s.Counters) > 0 {
		names := make([]string, 0, len(s.Counters))
		for name := range s.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(sb, " %s=%d", name, s.Counters[name])
		}
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		c.render(sb, depth+1, redactTimes)
	}
}
