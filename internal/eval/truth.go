package eval

import "sqlpp/internal/value"

// truth is the four-valued logic lattice SQL++ evaluates predicates in:
// SQL's TRUE/FALSE/UNKNOWN, with UNKNOWN split by provenance into
// null-unknown and missing-unknown so that the flexible mode can
// propagate MISSING through boolean operators (paper §IV-B rule 3) while
// SQL-compatibility mode collapses both unknowns to NULL.
type truth uint8

const (
	truthFalse truth = iota
	truthTrue
	truthNull
	truthMissing
)

// truthOf classifies a value as a predicate input. Non-boolean,
// non-absent values are not valid truth inputs; callers handle that case
// via mistyped.
func truthOf(v value.Value) (truth, bool) {
	switch x := v.(type) {
	case value.Bool:
		if x {
			return truthTrue, true
		}
		return truthFalse, true
	default:
		switch v.Kind() {
		case value.KindNull:
			return truthNull, true
		case value.KindMissing:
			return truthMissing, true
		}
	}
	return truthFalse, false
}

// val converts a truth back to a value under the context's mode:
// missing-unknown stays MISSING in flexible mode and becomes NULL in
// SQL-compatibility mode.
func (t truth) val(ctx *Context) value.Value { return t.valc(ctx.Compat) }

// valc is val with the compat bit passed directly, for compiled closures
// that captured the bit at compile time.
func (t truth) valc(compat bool) value.Value {
	switch t {
	case truthTrue:
		return value.True
	case truthFalse:
		return value.False
	case truthMissing:
		if compat {
			return value.Null
		}
		return value.Missing
	default:
		return value.Null
	}
}

func (t truth) isUnknown() bool { return t == truthNull || t == truthMissing }

// and3 is three-valued AND with missing-provenance: FALSE dominates, then
// unknowns combine (missing-unknown wins over null-unknown so that pure
// MISSING inputs keep propagating MISSING).
func and3(a, b truth) truth {
	if a == truthFalse || b == truthFalse {
		return truthFalse
	}
	if a == truthTrue && b == truthTrue {
		return truthTrue
	}
	if a == truthMissing || b == truthMissing {
		return truthMissing
	}
	return truthNull
}

// or3 is three-valued OR with missing-provenance.
func or3(a, b truth) truth {
	if a == truthTrue || b == truthTrue {
		return truthTrue
	}
	if a == truthFalse && b == truthFalse {
		return truthFalse
	}
	if a == truthMissing || b == truthMissing {
		return truthMissing
	}
	return truthNull
}

// not3 is three-valued NOT.
func not3(a truth) truth {
	switch a {
	case truthTrue:
		return truthFalse
	case truthFalse:
		return truthTrue
	default:
		return a
	}
}

// IsTrue reports whether v is exactly TRUE; WHERE, HAVING, and join ON
// conditions keep a binding only when the predicate is TRUE.
func IsTrue(v value.Value) bool {
	b, ok := v.(value.Bool)
	return ok && bool(b)
}

// absentOut combines the absent-propagation rule for scalar operators:
// given that at least one operand is absent, the result is MISSING when
// any operand is MISSING (flexible mode), NULL otherwise. In compat mode
// MISSING is treated as NULL.
func absentOut(ctx *Context, hasMissing bool) value.Value {
	return absentVal(ctx.Compat, hasMissing)
}

// absentVal is absentOut with the compat bit passed directly, for
// compiled closures that captured the bit at compile time.
func absentVal(compat, hasMissing bool) value.Value {
	if hasMissing && !compat {
		return value.Missing
	}
	return value.Null
}
