//go:build !faultinject

package faultinject

// Enabled reports whether the binary was built with the faultinject
// tag. As a constant false here, every guarded call site is eliminated
// at compile time.
const Enabled = false

// Fire is a no-op in normal builds.
func Fire(point string) error { return nil }
