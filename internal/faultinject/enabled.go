//go:build faultinject

package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether the binary was built with the faultinject
// tag.
const Enabled = true

// ErrInjected is the root of every injected error; match the query
// error with errors.Is to distinguish injected faults from organic
// failures.
var ErrInjected = errors.New("faultinject: injected fault")

// Action is what an armed point does when its schedule triggers.
// Exactly one of the fields should be set; Sleep may combine with
// either to model a slow failure.
type Action struct {
	// Err, when non-nil, is wrapped with ErrInjected context and
	// returned from Fire — the fault propagates as an ordinary error.
	Err error
	// Panic, when non-empty, panics with this message — the fault
	// exercises the panic-containment layer.
	Panic string
	// Sleep delays Fire before it acts — the fault models a stall, which
	// deadlines and wall-time budgets must catch.
	Sleep time.Duration
}

// rule is one armed point's deterministic schedule: skip the first
// `after` calls, then trigger every `every` calls, at most `times`
// times. Counting is atomic so concurrent queries share the schedule
// race-free (the trigger totals stay exact even when the interleaving
// varies).
type rule struct {
	after  uint64
	every  uint64
	times  uint64
	action Action
	calls  atomic.Uint64
	fired  atomic.Uint64
}

var (
	mu    sync.RWMutex
	rules = map[string]*rule{}
)

// Set arms point: skip the first `after` Fire calls, then trigger every
// `every`-th call (every <= 1 means every call), at most `times` times
// (0 = unlimited).
func Set(point string, after, every, times uint64, action Action) {
	if every == 0 {
		every = 1
	}
	mu.Lock()
	rules[point] = &rule{after: after, every: every, times: times, action: action}
	mu.Unlock()
}

// Schedule arms every named point with an error-returning schedule
// derived deterministically from seed: pseudo-random after/every phases
// so repeated chaos runs with one seed reproduce the same trigger
// pattern relative to each point's call count.
func Schedule(seed int64, points ...string) {
	rng := rand.New(rand.NewSource(seed))
	for _, p := range points {
		Set(p, uint64(rng.Intn(16)), uint64(1+rng.Intn(8)), 0, Action{Err: ErrInjected})
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	rules = map[string]*rule{}
	mu.Unlock()
}

// Fired reports how many times point's rule has triggered.
func Fired(point string) uint64 {
	mu.RLock()
	r := rules[point]
	mu.RUnlock()
	if r == nil {
		return 0
	}
	return r.fired.Load()
}

// Fire consults point's schedule: nil when unarmed or the schedule does
// not trigger on this call; otherwise the rule's action runs (sleep,
// panic, or error return).
func Fire(point string) error {
	mu.RLock()
	r := rules[point]
	mu.RUnlock()
	if r == nil {
		return nil
	}
	n := r.calls.Add(1)
	if n <= r.after {
		return nil
	}
	if (n-r.after-1)%r.every != 0 {
		return nil
	}
	if r.times > 0 {
		// CAS so fired counts actual triggers exactly, even when
		// concurrent calls race past the cap.
		for {
			f := r.fired.Load()
			if f >= r.times {
				return nil
			}
			if r.fired.CompareAndSwap(f, f+1) {
				break
			}
		}
	} else {
		r.fired.Add(1)
	}
	if r.action.Sleep > 0 {
		time.Sleep(r.action.Sleep)
	}
	if r.action.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s at %s", r.action.Panic, point))
	}
	if r.action.Err != nil {
		if errors.Is(r.action.Err, ErrInjected) {
			return fmt.Errorf("%w at %s", r.action.Err, point)
		}
		return fmt.Errorf("%w at %s: %w", ErrInjected, point, r.action.Err)
	}
	return nil
}
