// Package faultinject is a build-tag-gated fault-injection harness for
// the chaos test battery. Engine and server hot paths carry named
// injection points; a binary built with the `faultinject` tag can arm
// any point with a deterministic schedule that returns errors, panics,
// or sleeps, proving that every injected fault degrades into a clean
// per-query error — never a process exit or a goroutine leak.
//
// In a normal build (no tag) Enabled is a constant false and Fire is an
// inlineable no-op, so every call site
//
//	if faultinject.Enabled {
//	    if err := faultinject.Fire(faultinject.ScanNext); err != nil { ... }
//	}
//
// is dead code the compiler deletes: production binaries pay nothing
// for the harness's existence.
package faultinject

// The named injection points. Each is a specific hot-path site chosen
// so the fault lands in a distinct recovery domain: row production,
// blocking-operator build, plan-cache lookup, ingest decoding, and
// parallel-worker startup.
const (
	// ScanNext fires per row produced by a FROM scan.
	ScanNext = "scan-next"
	// HashBuildInsert fires per row inserted into a hash-join build table.
	HashBuildInsert = "hash-build-insert"
	// PlanCacheGet fires per server plan-cache lookup.
	PlanCacheGet = "plan-cache-get"
	// IngestDecode fires per server collection-ingest decode.
	IngestDecode = "ingest-decode"
	// WorkerStart fires once per parallel-scan worker goroutine, before
	// it processes its first chunk row.
	WorkerStart = "worker-start"
	// IndexBuildInsert fires per element inserted into a secondary index
	// during a build or an incremental extend.
	IndexBuildInsert = "index-build-insert"
	// IndexProbeNext fires per candidate row produced by an index probe.
	IndexProbeNext = "index-probe-next"
	// StatsSketchAdd fires per element folded into a collection-statistics
	// sketch during a build or an incremental extend.
	StatsSketchAdd = "stats-sketch-add"
	// ShardExec fires per shard execution attempt, before the shard runs
	// its query — the scatter-gather layer's RPC boundary. Injected
	// errors are classified transient, exercising retries, hedging, the
	// circuit breaker, and the partial-failure policy.
	ShardExec = "shard-exec"
	// ShardGatherNext fires per row folded into the coordinator's
	// gather/merge accumulator.
	ShardGatherNext = "shard-gather-next"
)

// Points lists every injection point, for harness sweeps.
func Points() []string {
	return []string{ScanNext, HashBuildInsert, PlanCacheGet, IngestDecode, WorkerStart, IndexBuildInsert, IndexProbeNext, StatsSketchAdd, ShardExec, ShardGatherNext}
}
