//go:build faultinject

package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFireUnarmedIsNil(t *testing.T) {
	Reset()
	for _, p := range Points() {
		if err := Fire(p); err != nil {
			t.Errorf("%s unarmed: %v", p, err)
		}
	}
}

func TestScheduleAfterEveryTimes(t *testing.T) {
	Reset()
	defer Reset()
	// Skip 3 calls, then every 2nd call, at most 2 times.
	Set(ScanNext, 3, 2, 2, Action{Err: ErrInjected})
	var errAt []int
	for i := 1; i <= 12; i++ {
		if err := Fire(ScanNext); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: error not rooted in ErrInjected: %v", i, err)
			}
			errAt = append(errAt, i)
		}
	}
	// Triggers at call 4 (first past `after`) and call 6; `times` stops it
	// there.
	if len(errAt) != 2 || errAt[0] != 4 || errAt[1] != 6 {
		t.Errorf("want triggers at [4 6], got %v", errAt)
	}
	if f := Fired(ScanNext); f != 2 {
		t.Errorf("Fired = %d, want 2", f)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	defer Reset()
	run := func() []int {
		Reset()
		Schedule(42, HashBuildInsert)
		var errAt []int
		for i := 1; i <= 64; i++ {
			if Fire(HashBuildInsert) != nil {
				errAt = append(errAt, i)
			}
		}
		return errAt
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded schedule never triggered in 64 calls")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic schedule: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic schedule: %v vs %v", a, b)
		}
	}
}

func TestPanicAction(t *testing.T) {
	Reset()
	defer Reset()
	Set(WorkerStart, 0, 1, 1, Action{Panic: "chaos"})
	defer func() {
		if recover() == nil {
			t.Error("panic action did not panic")
		}
	}()
	Fire(WorkerStart)
}

func TestSleepAction(t *testing.T) {
	Reset()
	defer Reset()
	Set(IngestDecode, 0, 1, 1, Action{Sleep: 20 * time.Millisecond, Err: ErrInjected})
	start := time.Now()
	err := Fire(IngestDecode)
	if err == nil {
		t.Fatal("sleep+err action must still return the error")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("sleep action returned too fast")
	}
}

func TestConcurrentFireCountsExact(t *testing.T) {
	Reset()
	defer Reset()
	// every 4th call, unlimited times: 400 calls → exactly 100 triggers,
	// regardless of goroutine interleaving.
	Set(PlanCacheGet, 0, 4, 0, Action{Err: ErrInjected})
	var wg sync.WaitGroup
	errs := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if Fire(PlanCacheGet) != nil {
					errs[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range errs {
		total += n
	}
	if total != 100 {
		t.Errorf("400 concurrent calls at every=4: %d triggers, want 100", total)
	}
	if f := Fired(PlanCacheGet); f != 100 {
		t.Errorf("Fired = %d, want 100", f)
	}
}
