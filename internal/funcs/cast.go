package funcs

import (
	"strconv"
	"strings"

	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// castFunc implements CAST(v AS type). The parser passes the type name as
// a string literal second argument. Supported logical targets: INT /
// INTEGER / BIGINT, FLOAT / DOUBLE / REAL, STRING / VARCHAR / CHAR / TEXT,
// BOOLEAN / BOOL. Absent inputs propagate; an unconvertible value is a
// type fault.
func castFunc(ctx *eval.Context, args []value.Value) (value.Value, error) {
	typeName, ok := args[1].(value.String)
	if !ok {
		return nil, typeErr("CAST", "type name must be a string")
	}
	v := args[0]
	if value.IsAbsent(v) {
		if v.Kind() == value.KindMissing && !ctx.Compat {
			return value.Missing, nil
		}
		return value.Null, nil
	}
	switch canonicalType(string(typeName)) {
	case "INT":
		return castInt(v)
	case "FLOAT":
		return castFloat(v)
	case "STRING":
		return castString(v)
	case "BOOLEAN":
		return castBool(v)
	}
	return nil, typeErr("CAST", "unsupported target type "+string(typeName))
}

func canonicalType(name string) string {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return "INT"
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return "FLOAT"
	case "STRING", "VARCHAR", "CHAR", "TEXT":
		return "STRING"
	case "BOOLEAN", "BOOL":
		return "BOOLEAN"
	}
	return strings.ToUpper(name)
}

func castInt(v value.Value) (value.Value, error) {
	switch x := v.(type) {
	case value.Int:
		return x, nil
	case value.Float:
		if i, ok := value.AsInt(x); ok {
			return value.Int(i), nil
		}
		return nil, typeErr("CAST", "float value does not fit an integer")
	case value.Bool:
		if x {
			return value.Int(1), nil
		}
		return value.Int(0), nil
	case value.String:
		if i, err := strconv.ParseInt(strings.TrimSpace(string(x)), 10, 64); err == nil {
			return value.Int(i), nil
		}
		return nil, typeErr("CAST", "string "+x.String()+" is not an integer")
	}
	return nil, typeErr("CAST", "cannot cast "+v.Kind().String()+" to INT")
}

func castFloat(v value.Value) (value.Value, error) {
	switch x := v.(type) {
	case value.Float:
		return x, nil
	case value.Int:
		return value.Float(float64(x)), nil
	case value.String:
		if f, err := strconv.ParseFloat(strings.TrimSpace(string(x)), 64); err == nil {
			return value.Float(f), nil
		}
		return nil, typeErr("CAST", "string "+x.String()+" is not a number")
	}
	return nil, typeErr("CAST", "cannot cast "+v.Kind().String()+" to FLOAT")
}

func castString(v value.Value) (value.Value, error) {
	switch x := v.(type) {
	case value.String:
		return x, nil
	case value.Int:
		return value.String(strconv.FormatInt(int64(x), 10)), nil
	case value.Float:
		return value.String(strconv.FormatFloat(float64(x), 'g', -1, 64)), nil
	case value.Bool:
		if x {
			return value.String("true"), nil
		}
		return value.String("false"), nil
	}
	return nil, typeErr("CAST", "cannot cast "+v.Kind().String()+" to STRING")
}

func castBool(v value.Value) (value.Value, error) {
	switch x := v.(type) {
	case value.Bool:
		return x, nil
	case value.String:
		switch strings.ToLower(strings.TrimSpace(string(x))) {
		case "true":
			return value.True, nil
		case "false":
			return value.False, nil
		}
		return nil, typeErr("CAST", "string "+x.String()+" is not a boolean")
	case value.Int:
		return value.Bool(x != 0), nil
	}
	return nil, typeErr("CAST", "cannot cast "+v.Kind().String()+" to BOOLEAN")
}
