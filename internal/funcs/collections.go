package funcs

import (
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

func (r *Registry) registerCollections() {
	r.Register("CARDINALITY", 1, 1, scalar("CARDINALITY", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		if elems, ok := value.Elements(args[0]); ok {
			return value.Int(int64(len(elems))), nil
		}
		if t, ok := args[0].(*value.Tuple); ok {
			return value.Int(int64(t.Len())), nil
		}
		return nil, typeErr("CARDINALITY", "argument is "+args[0].Kind().String())
	}))
	r.Register("ARRAY_LENGTH", 1, 1, scalar("ARRAY_LENGTH", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		a, ok := args[0].(value.Array)
		if !ok {
			return nil, typeErr("ARRAY_LENGTH", "argument is "+args[0].Kind().String())
		}
		return value.Int(int64(len(a))), nil
	}))
	r.Register("ARRAY_CONCAT", 2, -1, scalar("ARRAY_CONCAT", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		var out value.Array
		for _, a := range args {
			elems, ok := value.Elements(a)
			if !ok {
				return nil, typeErr("ARRAY_CONCAT", "argument is "+a.Kind().String())
			}
			out = append(out, elems...)
		}
		return out, nil
	}))
	r.Register("ARRAY_CONTAINS", 2, 2, scalar("ARRAY_CONTAINS", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		elems, ok := value.Elements(args[0])
		if !ok {
			return nil, typeErr("ARRAY_CONTAINS", "first argument is "+args[0].Kind().String())
		}
		return value.Bool(value.ContainsEquivalent(elems, args[1])), nil
	}))
	r.Register("ARRAY_DISTINCT", 1, 1, scalar("ARRAY_DISTINCT", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		elems, ok := value.Elements(args[0])
		if !ok {
			return nil, typeErr("ARRAY_DISTINCT", "argument is "+args[0].Kind().String())
		}
		return value.Array(distinct(elems)), nil
	}))
	// TO_ARRAY imposes an (arbitrary but deterministic) order on a bag;
	// arrays pass through. It is how ORDER-BY-less results can be
	// compared stably.
	r.Register("TO_ARRAY", 1, 1, scalar("TO_ARRAY", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		switch c := args[0].(type) {
		case value.Array:
			return c, nil
		case value.Bag:
			out := make(value.Array, len(c))
			copy(out, c)
			value.SortValues(out)
			return out, nil
		}
		return value.Array{args[0]}, nil
	}))
	r.Register("TO_BAG", 1, 1, scalar("TO_BAG", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		switch c := args[0].(type) {
		case value.Bag:
			return c, nil
		case value.Array:
			out := make(value.Bag, len(c))
			copy(out, c)
			return out, nil
		}
		return value.Bag{args[0]}, nil
	}))
	// ATTRIBUTE_NAMES returns the attribute names of a tuple as an array
	// of strings, supporting schema-discovery queries.
	r.Register("ATTRIBUTE_NAMES", 1, 1, scalar("ATTRIBUTE_NAMES", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		t, ok := args[0].(*value.Tuple)
		if !ok {
			return nil, typeErr("ATTRIBUTE_NAMES", "argument is "+args[0].Kind().String())
		}
		out := make(value.Array, 0, t.Len())
		for _, f := range t.Fields() {
			out = append(out, value.String(f.Name))
		}
		return out, nil
	}))
}

func distinct(elems []value.Value) []value.Value {
	seen := make(map[string]bool, len(elems))
	out := make([]value.Value, 0, len(elems))
	for _, e := range elems {
		k := value.Key(e)
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// aggregate input handling: COLL_* functions take one collection-valued
// argument. Absent collection arguments propagate; non-collection
// arguments are a type fault.
func aggInput(op string, args []value.Value) ([]value.Value, error) {
	elems, ok := value.Elements(args[0])
	if !ok {
		return nil, typeErr(op, "argument is "+args[0].Kind().String()+", not a collection")
	}
	return elems, nil
}

// unwrapAggElem lets aggregates accept elements produced by a SQL-style
// single-column SELECT: a one-attribute tuple stands for its value. The
// paper's Listing 18 writes COLL_AVG(FROM g AS gi SELECT gi.e.salary) —
// a sugar SELECT whose rows are {'salary': v} tuples.
func unwrapAggElem(e value.Value) value.Value {
	if t, ok := e.(*value.Tuple); ok && t.Len() == 1 {
		return t.Fields()[0].Value
	}
	return e
}

func (r *Registry) registerAggregates() {
	// COLL_COUNT counts the non-absent elements of a collection. The SQL
	// COUNT(*) rewrite passes the GROUP AS collection, whose elements
	// are never absent, so it yields the group size.
	r.Register("COLL_COUNT", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		if v, done := propagateAbsent(ctx, args); done {
			return v, nil
		}
		elems, err := aggInput("COLL_COUNT", args)
		if err != nil {
			return nil, err
		}
		n := int64(0)
		for _, e := range elems {
			if !value.IsAbsent(e) {
				n++
			}
		}
		return value.Int(n), nil
	})

	sum := func(op string, avg bool) eval.Func {
		return func(ctx *eval.Context, args []value.Value) (value.Value, error) {
			if v, done := propagateAbsent(ctx, args); done {
				return v, nil
			}
			elems, err := aggInput(op, args)
			if err != nil {
				return nil, err
			}
			var sumI int64
			var sumF float64
			isFloat := false
			n := 0
			for _, e := range elems {
				e = unwrapAggElem(e)
				if value.IsAbsent(e) {
					continue // SQL aggregates ignore absent inputs
				}
				switch x := e.(type) {
				case value.Int:
					sumI += int64(x)
					sumF += float64(x)
				case value.Float:
					isFloat = true
					sumF += float64(x)
				default:
					return nil, typeErr(op, "element is "+e.Kind().String())
				}
				n++
			}
			if n == 0 {
				return value.Null, nil // SQL: aggregate of empty input is NULL
			}
			if avg {
				return value.Float(sumF / float64(n)), nil
			}
			if isFloat {
				return value.Float(sumF), nil
			}
			return value.Int(sumI), nil
		}
	}
	r.Register("COLL_SUM", 1, 1, sum("COLL_SUM", false))
	r.Register("COLL_AVG", 1, 1, sum("COLL_AVG", true))

	extreme := func(op string, wantMax bool) eval.Func {
		return func(ctx *eval.Context, args []value.Value) (value.Value, error) {
			if v, done := propagateAbsent(ctx, args); done {
				return v, nil
			}
			elems, err := aggInput(op, args)
			if err != nil {
				return nil, err
			}
			var best value.Value
			for _, e := range elems {
				e = unwrapAggElem(e)
				if value.IsAbsent(e) {
					continue
				}
				if best == nil {
					best = e
					continue
				}
				c := value.Compare(e, best)
				if (wantMax && c > 0) || (!wantMax && c < 0) {
					best = e
				}
			}
			if best == nil {
				return value.Null, nil
			}
			return best, nil
		}
	}
	r.Register("COLL_MIN", 1, 1, extreme("COLL_MIN", false))
	r.Register("COLL_MAX", 1, 1, extreme("COLL_MAX", true))

	quant := func(op string, every bool) eval.Func {
		return func(ctx *eval.Context, args []value.Value) (value.Value, error) {
			if v, done := propagateAbsent(ctx, args); done {
				return v, nil
			}
			elems, err := aggInput(op, args)
			if err != nil {
				return nil, err
			}
			result := every
			sawAbsent := false
			for _, e := range elems {
				e = unwrapAggElem(e)
				if value.IsAbsent(e) {
					sawAbsent = true
					continue
				}
				b, ok := e.(value.Bool)
				if !ok {
					return nil, typeErr(op, "element is "+e.Kind().String())
				}
				if every && !bool(b) {
					return value.False, nil
				}
				if !every && bool(b) {
					return value.True, nil
				}
			}
			if sawAbsent {
				return value.Null, nil
			}
			return value.Bool(result), nil
		}
	}
	r.Register("COLL_EVERY", 1, 1, quant("COLL_EVERY", true))
	r.Register("COLL_ANY", 1, 1, quant("COLL_ANY", false))
	r.Register("COLL_SOME", 1, 1, quant("COLL_SOME", false))

	// ARRAY_AGG materializes a collection as an array, keeping absent
	// elements as NULLs (positional).
	r.Register("COLL_ARRAY_AGG", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		if v, done := propagateAbsent(ctx, args); done {
			return v, nil
		}
		elems, err := aggInput("COLL_ARRAY_AGG", args)
		if err != nil {
			return nil, err
		}
		out := make(value.Array, 0, len(elems))
		for _, e := range elems {
			if e.Kind() == value.KindMissing {
				e = value.Null
			}
			out = append(out, e)
		}
		return out, nil
	})
}

// registerInternal registers the functions the rewriter targets: subquery
// coercions and DISTINCT argument folding.
func (r *Registry) registerInternal() {
	// $COERCE_SCALAR implements SQL's coercion of a (sugar) SELECT
	// subquery in scalar position: a collection of exactly one tuple
	// with one attribute becomes that attribute's value; an empty
	// collection becomes NULL; anything else is a type fault
	// (cardinality violation).
	r.Register("$COERCE_SCALAR", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		elems, ok := value.Elements(args[0])
		if !ok {
			return args[0], nil
		}
		switch len(elems) {
		case 0:
			return value.Null, nil
		case 1:
			t, ok := elems[0].(*value.Tuple)
			if !ok {
				return elems[0], nil
			}
			if t.Len() != 1 {
				return nil, typeErr("scalar subquery", "row has more than one column")
			}
			return t.Fields()[0].Value, nil
		default:
			return nil, typeErr("scalar subquery", "more than one row")
		}
	})
	// $COERCE_COLL turns a sugar SELECT subquery used as an IN operand
	// into the collection of its single column.
	r.Register("$COERCE_COLL", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		elems, ok := value.Elements(args[0])
		if !ok {
			return args[0], nil
		}
		out := make(value.Bag, 0, len(elems))
		for _, e := range elems {
			t, ok := e.(*value.Tuple)
			if !ok {
				out = append(out, e)
				continue
			}
			if t.Len() != 1 {
				return nil, typeErr("IN subquery", "row has more than one column")
			}
			out = append(out, t.Fields()[0].Value)
		}
		return out, nil
	})
	// $MERGE builds the SELECT * output tuple from (name, value) pairs:
	// tuple values splice their attributes in, non-tuple values keep
	// their variable's name. An empty name (from expr.*) requires a
	// tuple; anything else is a type fault (skipped in permissive mode).
	r.Register("$MERGE", 0, -1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		out := value.EmptyTuple()
		for i := 0; i+1 < len(args); i += 2 {
			name, ok := args[i].(value.String)
			if !ok {
				return nil, typeErr("SELECT *", "internal: non-string merge name")
			}
			v := args[i+1]
			if t, ok := v.(*value.Tuple); ok {
				for _, f := range t.Fields() {
					out.Put(f.Name, f.Value)
				}
				continue
			}
			if name == "" {
				if ctx.Mode == eval.StopOnError {
					return nil, typeErr("SELECT expr.*", "expression is "+v.Kind().String()+", not a tuple")
				}
				continue
			}
			out.Put(string(name), v)
		}
		return out, nil
	})
	// $DISTINCT deduplicates a collection by grouping equality; the
	// rewriter wraps aggregate DISTINCT arguments with it.
	r.Register("$DISTINCT", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		elems, ok := value.Elements(args[0])
		if !ok {
			if value.IsAbsent(args[0]) {
				return args[0], nil
			}
			return nil, typeErr("DISTINCT", "argument is "+args[0].Kind().String())
		}
		switch args[0].(type) {
		case value.Array:
			return value.Array(distinct(elems)), nil
		default:
			return value.Bag(distinct(elems)), nil
		}
	})
}
