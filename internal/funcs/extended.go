package funcs

import (
	"math"
	"regexp"
	"strings"
	"sync"

	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

func init() {
	extendedRegistrations = append(extendedRegistrations,
		(*Registry).registerExtendedNumerics,
		(*Registry).registerExtendedStrings,
		(*Registry).registerTupleFunctions,
		(*Registry).registerVariadicExtremes,
	)
}

// extendedRegistrations lets extension files hook registration without
// touching registerAll's body.
var extendedRegistrations []func(*Registry)

func (r *Registry) registerExtendedNumerics() {
	float1 := func(op string, f func(float64) (float64, bool)) eval.Func {
		return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
			x, ok := value.AsFloat(args[0])
			if !ok {
				return nil, typeErr(op, "argument is "+args[0].Kind().String())
			}
			out, ok := f(x)
			if !ok {
				return nil, typeErr(op, "argument out of domain")
			}
			return value.Float(out), nil
		})
	}
	r.Register("EXP", 1, 1, float1("EXP", func(x float64) (float64, bool) { return math.Exp(x), true }))
	r.Register("LN", 1, 1, float1("LN", func(x float64) (float64, bool) {
		if x <= 0 {
			return 0, false
		}
		return math.Log(x), true
	}))
	r.Register("LOG10", 1, 1, float1("LOG10", func(x float64) (float64, bool) {
		if x <= 0 {
			return 0, false
		}
		return math.Log10(x), true
	}))
	r.Register("TRUNC", 1, 1, scalar("TRUNC", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		if i, ok := args[0].(value.Int); ok {
			return i, nil
		}
		f, ok := value.AsFloat(args[0])
		if !ok {
			return nil, typeErr("TRUNC", "argument is "+args[0].Kind().String())
		}
		return value.Float(math.Trunc(f)), nil
	}))
}

func (r *Registry) registerExtendedStrings() {
	r.Register("SPLIT", 2, 2, scalar("SPLIT", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok1 := args[0].(value.String)
		sep, ok2 := args[1].(value.String)
		if !ok1 || !ok2 {
			return nil, typeErr("SPLIT", "arguments must be strings")
		}
		parts := strings.Split(string(s), string(sep))
		out := make(value.Array, len(parts))
		for i, p := range parts {
			out[i] = value.String(p)
		}
		return out, nil
	}))
	r.Register("REVERSE", 1, 1, scalar("REVERSE", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		switch x := args[0].(type) {
		case value.String:
			runes := []rune(string(x))
			for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
				runes[i], runes[j] = runes[j], runes[i]
			}
			return value.String(runes), nil
		case value.Array:
			out := make(value.Array, len(x))
			for i, e := range x {
				out[len(x)-1-i] = e
			}
			return out, nil
		}
		return nil, typeErr("REVERSE", "argument is "+args[0].Kind().String())
	}))
	r.Register("LPAD", 2, 3, padFunc("LPAD", true))
	r.Register("RPAD", 2, 3, padFunc("RPAD", false))
	r.Register("REGEXP_CONTAINS", 2, 2, regexpFunc("REGEXP_CONTAINS",
		func(re *regexp.Regexp, s string) (value.Value, error) {
			return value.Bool(re.MatchString(s)), nil
		}))
	r.Register("REGEXP_EXTRACT", 2, 2, regexpFunc("REGEXP_EXTRACT",
		func(re *regexp.Regexp, s string) (value.Value, error) {
			m := re.FindStringSubmatch(s)
			switch {
			case m == nil:
				return value.Null, nil
			case len(m) > 1:
				return value.String(m[1]), nil
			default:
				return value.String(m[0]), nil
			}
		}))
	r.Register("REGEXP_REPLACE", 3, 3, scalar("REGEXP_REPLACE", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok1 := args[0].(value.String)
		pat, ok2 := args[1].(value.String)
		repl, ok3 := args[2].(value.String)
		if !ok1 || !ok2 || !ok3 {
			return nil, typeErr("REGEXP_REPLACE", "arguments must be strings")
		}
		re, err := compileRegexp(string(pat))
		if err != nil {
			return nil, typeErr("REGEXP_REPLACE", "invalid pattern: "+err.Error())
		}
		return value.String(re.ReplaceAllString(string(s), string(repl))), nil
	}))
}

func padFunc(op string, left bool) eval.Func {
	return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok := args[0].(value.String)
		if !ok {
			return nil, typeErr(op, "first argument is "+args[0].Kind().String())
		}
		n, ok := value.AsInt(args[1])
		if !ok || n < 0 {
			return nil, typeErr(op, "length must be a non-negative integer")
		}
		pad := " "
		if len(args) == 3 {
			p, ok := args[2].(value.String)
			if !ok || len(p) == 0 {
				return nil, typeErr(op, "pad must be a non-empty string")
			}
			pad = string(p)
		}
		runes := []rune(string(s))
		if int64(len(runes)) >= n {
			return value.String(runes[:n]), nil
		}
		fill := []rune(strings.Repeat(pad, int(n)))[:n-int64(len(runes))]
		if left {
			return value.String(string(fill) + string(s)), nil
		}
		return value.String(string(s) + string(fill)), nil
	})
}

// regexpCache memoizes compiled patterns across rows.
var regexpCache sync.Map // string -> *regexp.Regexp

func compileRegexp(pat string) (*regexp.Regexp, error) {
	if re, ok := regexpCache.Load(pat); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, err
	}
	regexpCache.Store(pat, re)
	return re, nil
}

func regexpFunc(op string, apply func(*regexp.Regexp, string) (value.Value, error)) eval.Func {
	return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok1 := args[0].(value.String)
		pat, ok2 := args[1].(value.String)
		if !ok1 || !ok2 {
			return nil, typeErr(op, "arguments must be strings")
		}
		re, err := compileRegexp(string(pat))
		if err != nil {
			return nil, typeErr(op, "invalid pattern: "+err.Error())
		}
		return apply(re, string(s))
	})
}

func (r *Registry) registerTupleFunctions() {
	// OBJECT_MERGE combines tuples left to right (later attributes win).
	r.Register("OBJECT_MERGE", 2, -1, scalar("OBJECT_MERGE", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		out := value.EmptyTuple()
		for _, a := range args {
			t, ok := a.(*value.Tuple)
			if !ok {
				return nil, typeErr("OBJECT_MERGE", "argument is "+a.Kind().String())
			}
			for _, f := range t.Fields() {
				out.Set(f.Name, f.Value)
			}
		}
		return out, nil
	}))
	// OBJECT_REMOVE drops the named attributes.
	r.Register("OBJECT_REMOVE", 2, -1, scalar("OBJECT_REMOVE", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		t, ok := args[0].(*value.Tuple)
		if !ok {
			return nil, typeErr("OBJECT_REMOVE", "first argument is "+args[0].Kind().String())
		}
		drop := map[string]bool{}
		for _, a := range args[1:] {
			name, ok := a.(value.String)
			if !ok {
				return nil, typeErr("OBJECT_REMOVE", "attribute names must be strings")
			}
			drop[string(name)] = true
		}
		out := value.EmptyTuple()
		for _, f := range t.Fields() {
			if !drop[f.Name] {
				out.Put(f.Name, f.Value)
			}
		}
		return out, nil
	}))
	// OBJECT_VALUES mirrors ATTRIBUTE_NAMES.
	r.Register("OBJECT_VALUES", 1, 1, scalar("OBJECT_VALUES", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		t, ok := args[0].(*value.Tuple)
		if !ok {
			return nil, typeErr("OBJECT_VALUES", "argument is "+args[0].Kind().String())
		}
		out := make(value.Array, 0, t.Len())
		for _, f := range t.Fields() {
			out = append(out, f.Value)
		}
		return out, nil
	}))
}

func (r *Registry) registerVariadicExtremes() {
	variadic := func(op string, wantMax bool) eval.Func {
		return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
			best := args[0]
			for _, a := range args[1:] {
				c := value.Compare(a, best)
				if (wantMax && c > 0) || (!wantMax && c < 0) {
					best = a
				}
			}
			return best, nil
		})
	}
	r.Register("GREATEST", 1, -1, variadic("GREATEST", true))
	r.Register("LEAST", 1, -1, variadic("LEAST", false))
}
