package funcs

import (
	"math"
	"testing"

	"sqlpp/internal/value"
)

func TestExtendedNumerics(t *testing.T) {
	ctx := flexible()
	if got := mustCall(t, ctx, "EXP", "0"); got != value.Float(1) {
		t.Errorf("EXP(0) = %s", got)
	}
	ln := mustCall(t, ctx, "LN", "2.718281828459045")
	if math.Abs(float64(ln.(value.Float))-1) > 1e-12 {
		t.Errorf("LN(e) = %s", ln)
	}
	check(t, mustCall(t, ctx, "LOG10", "1000"), "3.0")
	check(t, mustCall(t, ctx, "TRUNC", "2.9"), "2.0")
	check(t, mustCall(t, ctx, "TRUNC", "-2.9"), "-2.0")
	check(t, mustCall(t, ctx, "TRUNC", "7"), "7")
	// Domain faults.
	for _, bad := range [][]string{{"LN", "0"}, {"LN", "-1"}, {"LOG10", "0"}} {
		if _, err := call(t, ctx, bad[0], bad[1]); err == nil {
			t.Errorf("%s(%s) should fault", bad[0], bad[1])
		}
	}
}

func TestExtendedStrings(t *testing.T) {
	ctx := flexible()
	check(t, mustCall(t, ctx, "SPLIT", "'a,b,c'", "','"), "['a', 'b', 'c']")
	check(t, mustCall(t, ctx, "SPLIT", "'abc'", "'x'"), "['abc']")
	check(t, mustCall(t, ctx, "REVERSE", "'abδ'"), "'δba'")
	check(t, mustCall(t, ctx, "REVERSE", "[1, 2, 3]"), "[3, 2, 1]")
	check(t, mustCall(t, ctx, "LPAD", "'7'", "3", "'0'"), "'007'")
	check(t, mustCall(t, ctx, "RPAD", "'ab'", "4"), "'ab  '")
	check(t, mustCall(t, ctx, "LPAD", "'abcdef'", "3"), "'abc'") // truncates
	if _, err := call(t, ctx, "LPAD", "'x'", "-1"); err == nil {
		t.Error("negative pad length should fault")
	}
}

func TestRegexpFunctions(t *testing.T) {
	ctx := flexible()
	check(t, mustCall(t, ctx, "REGEXP_CONTAINS", "'OLAP Security'", "'Sec.*y'"), "true")
	check(t, mustCall(t, ctx, "REGEXP_CONTAINS", "'olap'", "'^X'"), "false")
	check(t, mustCall(t, ctx, "REGEXP_EXTRACT", "'id=42;'", "'id=([0-9]+)'"), "'42'")
	check(t, mustCall(t, ctx, "REGEXP_EXTRACT", "'abc'", "'b'"), "'b'")
	check(t, mustCall(t, ctx, "REGEXP_EXTRACT", "'abc'", "'zz'"), "null")
	check(t, mustCall(t, ctx, "REGEXP_REPLACE", "'a1b2'", "'[0-9]'", "'_'"), "'a_b_'")
	if _, err := call(t, ctx, "REGEXP_CONTAINS", "'x'", "'('"); err == nil {
		t.Error("invalid pattern should fault")
	}
}

func TestTupleFunctions(t *testing.T) {
	ctx := flexible()
	check(t, mustCall(t, ctx, "OBJECT_MERGE", "{'a': 1, 'b': 2}", "{'b': 9, 'c': 3}"),
		"{'a': 1, 'b': 9, 'c': 3}")
	check(t, mustCall(t, ctx, "OBJECT_REMOVE", "{'a': 1, 'b': 2, 'c': 3}", "'b'", "'c'"),
		"{'a': 1}")
	check(t, mustCall(t, ctx, "OBJECT_VALUES", "{'a': 1, 'b': 'x'}"), "[1, 'x']")
	if _, err := call(t, ctx, "OBJECT_MERGE", "{'a': 1}", "5"); err == nil {
		t.Error("merging a non-tuple should fault")
	}
}

func TestGreatestLeast(t *testing.T) {
	ctx := flexible()
	check(t, mustCall(t, ctx, "GREATEST", "1", "3", "2"), "3")
	check(t, mustCall(t, ctx, "LEAST", "1.5", "1", "2"), "1")
	check(t, mustCall(t, ctx, "GREATEST", "'a'", "'c'", "'b'"), "'c'")
	check(t, mustCall(t, ctx, "GREATEST", "1"), "1")
	// Absent propagation applies.
	check(t, mustCall(t, ctx, "GREATEST", "1", "null"), "null")
	check(t, mustCall(t, ctx, "GREATEST", "1", "missing"), "missing")
}
