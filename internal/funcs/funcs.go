// Package funcs is the SQL++ built-in function library: the composable
// COLL_* aggregate functions of the paper's Section V-C, the usual SQL
// scalar functions, and the internal helpers the rewriter targets.
//
// Functions receive their arguments fully evaluated. Absent-value
// propagation follows the paper's rules: a function given a MISSING input
// returns MISSING (flexible mode), except that in SQL-compatibility mode
// an expression that would map NULL to a non-null result maps MISSING the
// same way (the COALESCE exception of §IV-B).
package funcs

import (
	"math"
	"strings"

	"sqlpp/internal/eval"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// Registry resolves function names to implementations. The zero value is
// unusable; use NewRegistry.
type Registry struct {
	byName map[string]*eval.FuncDef
}

// NewRegistry returns a registry populated with every built-in function.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]*eval.FuncDef, 96)}
	r.registerAll()
	return r
}

// LookupFunc implements eval.FuncSource.
func (r *Registry) LookupFunc(name string) (*eval.FuncDef, bool) {
	def, ok := r.byName[strings.ToUpper(name)]
	return def, ok
}

// Register adds or replaces a function definition; it is exported so
// embedders can extend the library.
func (r *Registry) Register(name string, minArgs, maxArgs int, fn eval.Func) {
	name = strings.ToUpper(name)
	r.byName[name] = &eval.FuncDef{Name: name, MinArgs: minArgs, MaxArgs: maxArgs, Fn: fn}
}

// Names returns the registered function names, unsorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}

// typeErr builds a type fault; the evaluator fills in the position and
// applies the permissive-mode policy.
func typeErr(op, detail string) error {
	return &eval.TypeError{Op: op, Detail: detail}
}

// propagateAbsent implements the standard scalar-function rule: if any
// argument is absent the function result is absent (MISSING dominates in
// flexible mode, NULL in compat mode). ok=false means no argument was
// absent and the function body should run.
func propagateAbsent(ctx *eval.Context, args []value.Value) (value.Value, bool) {
	hasMissing, hasNull := false, false
	for _, a := range args {
		switch a.Kind() {
		case value.KindMissing:
			hasMissing = true
		case value.KindNull:
			hasNull = true
		}
	}
	if !hasMissing && !hasNull {
		return nil, false
	}
	if hasMissing && !ctx.Compat {
		return value.Missing, true
	}
	return value.Null, true
}

// scalar wraps a function body with absent propagation.
func scalar(op string, body func(ctx *eval.Context, args []value.Value) (value.Value, error)) eval.Func {
	return func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		if v, done := propagateAbsent(ctx, args); done {
			return v, nil
		}
		return body(ctx, args)
	}
}

func (r *Registry) registerAll() {
	r.registerStrings()
	r.registerNumerics()
	r.registerConditionals()
	r.registerCollections()
	r.registerAggregates()
	r.registerInternal()
	for _, reg := range extendedRegistrations {
		reg(r)
	}
}

func (r *Registry) registerStrings() {
	str1 := func(op string, f func(string) string) eval.Func {
		return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
			s, ok := args[0].(value.String)
			if !ok {
				return nil, typeErr(op, "argument is "+args[0].Kind().String())
			}
			return value.String(f(string(s))), nil
		})
	}
	r.Register("LOWER", 1, 1, str1("LOWER", strings.ToLower))
	r.Register("UPPER", 1, 1, str1("UPPER", strings.ToUpper))
	r.Register("TRIM", 1, 1, str1("TRIM", strings.TrimSpace))
	r.Register("LTRIM", 1, 1, str1("LTRIM", func(s string) string { return strings.TrimLeft(s, " ") }))
	r.Register("RTRIM", 1, 1, str1("RTRIM", func(s string) string { return strings.TrimRight(s, " ") }))

	length := scalar("CHAR_LENGTH", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok := args[0].(value.String)
		if !ok {
			return nil, typeErr("CHAR_LENGTH", "argument is "+args[0].Kind().String())
		}
		return value.Int(int64(len([]rune(string(s))))), nil
	})
	r.Register("CHAR_LENGTH", 1, 1, length)
	r.Register("CHARACTER_LENGTH", 1, 1, length)
	r.Register("LENGTH", 1, 1, length)

	r.Register("SUBSTRING", 2, 3, scalar("SUBSTRING", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok := args[0].(value.String)
		if !ok {
			return nil, typeErr("SUBSTRING", "first argument is "+args[0].Kind().String())
		}
		start, ok := value.AsInt(args[1])
		if !ok {
			return nil, typeErr("SUBSTRING", "start is "+args[1].Kind().String())
		}
		runes := []rune(string(s))
		// SQL 1-based start; values below 1 clamp with length adjustment.
		end := int64(len(runes)) + 1
		if len(args) == 3 {
			n, ok := value.AsInt(args[2])
			if !ok {
				return nil, typeErr("SUBSTRING", "length is "+args[2].Kind().String())
			}
			end = start + n
		}
		if start < 1 {
			start = 1
		}
		if end > int64(len(runes))+1 {
			end = int64(len(runes)) + 1
		}
		if end <= start {
			return value.String(""), nil
		}
		return value.String(string(runes[start-1 : end-1])), nil
	}))

	r.Register("POSITION", 2, 2, scalar("POSITION", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		sub, ok1 := args[0].(value.String)
		s, ok2 := args[1].(value.String)
		if !ok1 || !ok2 {
			return nil, typeErr("POSITION", "arguments must be strings")
		}
		idx := strings.Index(string(s), string(sub))
		if idx < 0 {
			return value.Int(0), nil
		}
		return value.Int(int64(len([]rune(string(s)[:idx])) + 1)), nil
	}))

	r.Register("REPLACE", 3, 3, scalar("REPLACE", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		s, ok1 := args[0].(value.String)
		from, ok2 := args[1].(value.String)
		to, ok3 := args[2].(value.String)
		if !ok1 || !ok2 || !ok3 {
			return nil, typeErr("REPLACE", "arguments must be strings")
		}
		return value.String(strings.ReplaceAll(string(s), string(from), string(to))), nil
	}))

	strPred := func(op string, f func(s, t string) bool) eval.Func {
		return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
			s, ok1 := args[0].(value.String)
			t, ok2 := args[1].(value.String)
			if !ok1 || !ok2 {
				return nil, typeErr(op, "arguments must be strings")
			}
			return value.Bool(f(string(s), string(t))), nil
		})
	}
	r.Register("CONTAINS", 2, 2, strPred("CONTAINS", strings.Contains))
	r.Register("STARTS_WITH", 2, 2, strPred("STARTS_WITH", strings.HasPrefix))
	r.Register("ENDS_WITH", 2, 2, strPred("ENDS_WITH", strings.HasSuffix))
}

func (r *Registry) registerNumerics() {
	num1 := func(op string, fInt func(int64) (value.Value, bool), fFloat func(float64) value.Value) eval.Func {
		return scalar(op, func(_ *eval.Context, args []value.Value) (value.Value, error) {
			if i, ok := args[0].(value.Int); ok && fInt != nil {
				if v, ok := fInt(int64(i)); ok {
					return v, nil
				}
			}
			f, ok := value.AsFloat(args[0])
			if !ok {
				return nil, typeErr(op, "argument is "+args[0].Kind().String())
			}
			return fFloat(f), nil
		})
	}
	r.Register("ABS", 1, 1, num1("ABS",
		func(i int64) (value.Value, bool) {
			if i == math.MinInt64 {
				return nil, false
			}
			if i < 0 {
				return value.Int(-i), true
			}
			return value.Int(i), true
		},
		func(f float64) value.Value { return value.Float(math.Abs(f)) }))
	ceil := num1("CEIL",
		func(i int64) (value.Value, bool) { return value.Int(i), true },
		func(f float64) value.Value { return value.Float(math.Ceil(f)) })
	r.Register("CEIL", 1, 1, ceil)
	r.Register("CEILING", 1, 1, ceil)
	r.Register("FLOOR", 1, 1, num1("FLOOR",
		func(i int64) (value.Value, bool) { return value.Int(i), true },
		func(f float64) value.Value { return value.Float(math.Floor(f)) }))
	r.Register("SQRT", 1, 1, num1("SQRT", nil,
		func(f float64) value.Value { return value.Float(math.Sqrt(f)) }))
	r.Register("SIGN", 1, 1, num1("SIGN",
		func(i int64) (value.Value, bool) {
			switch {
			case i > 0:
				return value.Int(1), true
			case i < 0:
				return value.Int(-1), true
			}
			return value.Int(0), true
		},
		func(f float64) value.Value {
			switch {
			case f > 0:
				return value.Int(1)
			case f < 0:
				return value.Int(-1)
			}
			return value.Int(0)
		}))
	r.Register("ROUND", 1, 2, scalar("ROUND", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		if i, ok := args[0].(value.Int); ok && len(args) == 1 {
			return i, nil
		}
		f, ok := value.AsFloat(args[0])
		if !ok {
			return nil, typeErr("ROUND", "argument is "+args[0].Kind().String())
		}
		digits := int64(0)
		if len(args) == 2 {
			d, ok := value.AsInt(args[1])
			if !ok {
				return nil, typeErr("ROUND", "digits is "+args[1].Kind().String())
			}
			digits = d
		}
		scale := math.Pow(10, float64(digits))
		return value.Float(math.Round(f*scale) / scale), nil
	}))
	r.Register("POWER", 2, 2, scalar("POWER", func(_ *eval.Context, args []value.Value) (value.Value, error) {
		a, ok1 := value.AsFloat(args[0])
		b, ok2 := value.AsFloat(args[1])
		if !ok1 || !ok2 {
			return nil, typeErr("POWER", "arguments must be numeric")
		}
		return value.Float(math.Pow(a, b)), nil
	}))
	r.Register("MOD", 2, 2, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		return eval.Arith(ctx, "%", args[0], args[1], pos0)
	})
}

func (r *Registry) registerConditionals() {
	// COALESCE returns its first non-absent argument. In flexible mode a
	// MISSING argument propagates per §IV-B rule 3; in SQL-compatibility
	// mode MISSING behaves exactly like NULL, the paper's one exception,
	// so COALESCE(MISSING, 2) = 2.
	r.Register("COALESCE", 1, -1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		for _, a := range args {
			switch a.Kind() {
			case value.KindNull:
				continue
			case value.KindMissing:
				if ctx.Compat {
					continue
				}
				return value.Missing, nil
			default:
				return a, nil
			}
		}
		return value.Null, nil
	})
	r.Register("NULLIF", 2, 2, scalar("NULLIF", func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		eq, err := eval.Comparison(ctx, "=", args[0], args[1], pos0)
		if err != nil {
			return nil, err
		}
		if eval.IsTrue(eq) {
			return value.Null, nil
		}
		return args[0], nil
	}))
	// IFMISSING(v, fallback): fallback when v is MISSING (the N1QL
	// idiom); NULL is not replaced.
	r.Register("IFMISSING", 2, 2, func(_ *eval.Context, args []value.Value) (value.Value, error) {
		if args[0].Kind() == value.KindMissing {
			return args[1], nil
		}
		return args[0], nil
	})
	// IFMISSINGORNULL(v, fallback): fallback when v is absent.
	r.Register("IFMISSINGORNULL", 2, 2, func(_ *eval.Context, args []value.Value) (value.Value, error) {
		if value.IsAbsent(args[0]) {
			return args[1], nil
		}
		return args[0], nil
	})
	// TYPE(v) names the dynamic type; never absent-propagates.
	r.Register("TYPE", 1, 1, func(_ *eval.Context, args []value.Value) (value.Value, error) {
		return value.String(args[0].Kind().String()), nil
	})
	r.Register("CAST", 2, 2, castFunc)
}

// pos0 is the zero position used for type faults raised inside function
// bodies; the evaluator substitutes the call-site position.
var pos0 lexer.Pos
