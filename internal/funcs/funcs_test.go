package funcs

import (
	"testing"

	"sqlpp/internal/eval"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func call(t *testing.T, ctx *eval.Context, name string, args ...string) (value.Value, error) {
	t.Helper()
	r := NewRegistry()
	def, ok := r.LookupFunc(name)
	if !ok {
		t.Fatalf("function %s not registered", name)
	}
	vs := make([]value.Value, len(args))
	for i, a := range args {
		vs[i] = sion.MustParse(a)
	}
	return def.Fn(ctx, vs)
}

func mustCall(t *testing.T, ctx *eval.Context, name string, args ...string) value.Value {
	t.Helper()
	v, err := call(t, ctx, name, args...)
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return v
}

func flexible() *eval.Context { return &eval.Context{Mode: eval.Permissive} }
func compat() *eval.Context   { return &eval.Context{Mode: eval.Permissive, Compat: true} }

func check(t *testing.T, got value.Value, want string) {
	t.Helper()
	if !value.Equivalent(got, sion.MustParse(want)) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestStringFunctions(t *testing.T) {
	ctx := flexible()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"LOWER", []string{"'AbC'"}, "'abc'"},
		{"UPPER", []string{"'AbC'"}, "'ABC'"},
		{"TRIM", []string{"'  x  '"}, "'x'"},
		{"LTRIM", []string{"'  x '"}, "'x '"},
		{"RTRIM", []string{"' x  '"}, "' x'"},
		{"CHAR_LENGTH", []string{"'δζ'"}, "2"}, // runes, not bytes
		{"LENGTH", []string{"''"}, "0"},
		{"SUBSTRING", []string{"'hello'", "2"}, "'ello'"},
		{"SUBSTRING", []string{"'hello'", "2", "3"}, "'ell'"},
		{"SUBSTRING", []string{"'hello'", "-1", "3"}, "'h'"},
		{"SUBSTRING", []string{"'hello'", "4", "99"}, "'lo'"},
		{"POSITION", []string{"'ll'", "'hello'"}, "3"},
		{"POSITION", []string{"'zz'", "'hello'"}, "0"},
		{"REPLACE", []string{"'aXbX'", "'X'", "'y'"}, "'aybы'"},
		{"CONTAINS", []string{"'hello'", "'ell'"}, "true"},
		{"STARTS_WITH", []string{"'hello'", "'he'"}, "true"},
		{"ENDS_WITH", []string{"'hello'", "'he'"}, "false"},
	}
	for _, c := range cases {
		if c.name == "REPLACE" {
			got := mustCall(t, ctx, c.name, c.args...)
			check(t, got, "'ayby'")
			continue
		}
		got := mustCall(t, ctx, c.name, c.args...)
		check(t, got, c.want)
	}
	// Absent propagation: NULL in, NULL out; MISSING propagates in
	// flexible mode and behaves like NULL in compat mode.
	check(t, mustCall(t, ctx, "LOWER", "null"), "null")
	check(t, mustCall(t, ctx, "LOWER", "missing"), "missing")
	check(t, mustCall(t, compat(), "LOWER", "missing"), "null")
	// Type fault.
	if _, err := call(t, ctx, "LOWER", "5"); err == nil {
		t.Error("LOWER(5) should be a type fault")
	}
}

func TestNumericFunctions(t *testing.T) {
	ctx := flexible()
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"ABS", []string{"-3"}, "3"},
		{"ABS", []string{"-3.5"}, "3.5"},
		{"CEIL", []string{"1.2"}, "2.0"},
		{"CEILING", []string{"-1.2"}, "-1.0"},
		{"FLOOR", []string{"1.8"}, "1.0"},
		{"FLOOR", []string{"7"}, "7"},
		{"SQRT", []string{"9"}, "3.0"},
		{"SIGN", []string{"-9"}, "-1"},
		{"SIGN", []string{"0"}, "0"},
		{"SIGN", []string{"2.5"}, "1"},
		{"ROUND", []string{"2.5"}, "3.0"},
		{"ROUND", []string{"2.444", "2"}, "2.44"},
		{"ROUND", []string{"7"}, "7"},
		{"POWER", []string{"2", "10"}, "1024.0"},
		{"MOD", []string{"7", "3"}, "1"},
	}
	for _, c := range cases {
		got := mustCall(t, ctx, c.name, c.args...)
		check(t, got, c.want)
	}
	if _, err := call(t, ctx, "SQRT", "'x'"); err == nil {
		t.Error("SQRT('x') should be a type fault")
	}
}

func TestConditionals(t *testing.T) {
	// COALESCE: the §IV-B rule-3 exception applies only in compat mode.
	check(t, mustCall(t, flexible(), "COALESCE", "null", "2"), "2")
	check(t, mustCall(t, flexible(), "COALESCE", "missing", "2"), "missing")
	check(t, mustCall(t, compat(), "COALESCE", "missing", "2"), "2")
	check(t, mustCall(t, flexible(), "COALESCE", "null", "null"), "null")
	check(t, mustCall(t, compat(), "COALESCE", "null", "missing"), "null")

	check(t, mustCall(t, flexible(), "NULLIF", "1", "1"), "null")
	check(t, mustCall(t, flexible(), "NULLIF", "1", "2"), "1")

	check(t, mustCall(t, flexible(), "IFMISSING", "missing", "9"), "9")
	check(t, mustCall(t, flexible(), "IFMISSING", "null", "9"), "null")
	check(t, mustCall(t, flexible(), "IFMISSINGORNULL", "null", "9"), "9")

	check(t, mustCall(t, flexible(), "TYPE", "1"), "'integer'")
	check(t, mustCall(t, flexible(), "TYPE", "missing"), "'missing'")
	check(t, mustCall(t, flexible(), "TYPE", "[1]"), "'array'")
}

func TestCast(t *testing.T) {
	ctx := flexible()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"'42'", "'INT'"}, "42"},
		{[]string{"4.0", "'INT'"}, "4"},
		{[]string{"true", "'INT'"}, "1"},
		{[]string{"'2.5'", "'DOUBLE'"}, "2.5"},
		{[]string{"7", "'FLOAT'"}, "7.0"},
		{[]string{"7", "'STRING'"}, "'7'"},
		{[]string{"2.5", "'VARCHAR'"}, "'2.5'"},
		{[]string{"true", "'TEXT'"}, "'true'"},
		{[]string{"'true'", "'BOOLEAN'"}, "true"},
		{[]string{"0", "'BOOL'"}, "false"},
		{[]string{"null", "'INT'"}, "null"},
	}
	for _, c := range cases {
		got := mustCall(t, ctx, "CAST", c.args...)
		check(t, got, c.want)
	}
	for _, bad := range [][]string{
		{"'x'", "'INT'"},
		{"4.5", "'INT'"},
		{"[1]", "'STRING'"},
		{"1", "'FROB'"},
	} {
		if _, err := call(t, ctx, "CAST", bad...); err == nil {
			t.Errorf("CAST(%v) should fail", bad)
		}
	}
	// CAST(MISSING ...) propagates per mode.
	check(t, mustCall(t, flexible(), "CAST", "missing", "'INT'"), "missing")
	check(t, mustCall(t, compat(), "CAST", "missing", "'INT'"), "null")
}

func TestCollectionFunctions(t *testing.T) {
	ctx := flexible()
	check(t, mustCall(t, ctx, "CARDINALITY", "[1, 2, 3]"), "3")
	check(t, mustCall(t, ctx, "CARDINALITY", "{{1}}"), "1")
	check(t, mustCall(t, ctx, "CARDINALITY", "{'a': 1, 'b': 2}"), "2")
	check(t, mustCall(t, ctx, "ARRAY_LENGTH", "[1, 2]"), "2")
	check(t, mustCall(t, ctx, "ARRAY_CONCAT", "[1]", "[2, 3]"), "[1, 2, 3]")
	check(t, mustCall(t, ctx, "ARRAY_CONTAINS", "[1, 2]", "2.0"), "true")
	check(t, mustCall(t, ctx, "ARRAY_DISTINCT", "[1, 1, 2, 1.0]"), "[1, 2]")
	check(t, mustCall(t, ctx, "TO_ARRAY", "{{2, 1}}"), "[1, 2]")
	check(t, mustCall(t, ctx, "TO_BAG", "[1, 2]"), "{{1, 2}}")
	check(t, mustCall(t, ctx, "TO_ARRAY", "5"), "[5]")
	check(t, mustCall(t, ctx, "ATTRIBUTE_NAMES", "{'a': 1, 'b': 2}"), "['a', 'b']")
	if _, err := call(t, ctx, "ARRAY_LENGTH", "{{1}}"); err == nil {
		t.Error("ARRAY_LENGTH of a bag should be a type fault")
	}
}

func TestAggregates(t *testing.T) {
	ctx := flexible()
	cases := []struct {
		name, arg, want string
	}{
		{"COLL_COUNT", "[1, 2, 3]", "3"},
		{"COLL_COUNT", "[1, null, missing]", "1"}, // absent skipped
		{"COLL_COUNT", "[]", "0"},
		{"COLL_SUM", "[1, 2, 3]", "6"},
		{"COLL_SUM", "[1, 2.5]", "3.5"},
		{"COLL_SUM", "[null, 2]", "2"},
		{"COLL_SUM", "[]", "null"},
		{"COLL_SUM", "[null]", "null"},
		{"COLL_AVG", "[1, 2, 3, 6]", "3.0"},
		{"COLL_AVG", "[null, 4]", "4.0"},
		{"COLL_MIN", "[3, 1, 2]", "1"},
		{"COLL_MAX", "[3, 1, 2]", "3"},
		{"COLL_MIN", "['b', 'a']", "'a'"},
		{"COLL_MAX", "[]", "null"},
		{"COLL_EVERY", "[true, true]", "true"},
		{"COLL_EVERY", "[true, false]", "false"},
		{"COLL_ANY", "[false, true]", "true"},
		{"COLL_SOME", "[false, false]", "false"},
		{"COLL_ARRAY_AGG", "{{1, 2}}", "[1, 2]"},
		// Single-attribute tuples unwrap (the Listing 18 form).
		{"COLL_AVG", "[{'salary': 2}, {'salary': 4}]", "3.0"},
		{"COLL_MAX", "[{'v': 2}, {'v': 4}]", "4"},
	}
	for _, c := range cases {
		got := mustCall(t, ctx, c.name, c.arg)
		check(t, got, c.want)
	}
	// Absent collection propagates; non-collections are type faults.
	check(t, mustCall(t, ctx, "COLL_AVG", "null"), "null")
	check(t, mustCall(t, ctx, "COLL_AVG", "missing"), "missing")
	if _, err := call(t, ctx, "COLL_SUM", "5"); err == nil {
		t.Error("COLL_SUM(5) should be a type fault")
	}
	if _, err := call(t, ctx, "COLL_SUM", "['x']"); err == nil {
		t.Error("COLL_SUM(['x']) should be a type fault")
	}
	if _, err := call(t, ctx, "COLL_EVERY", "[1]"); err == nil {
		t.Error("COLL_EVERY over non-booleans should be a type fault")
	}
}

func TestInternalHelpers(t *testing.T) {
	ctx := flexible()
	// $COERCE_SCALAR: one row, one column -> the value; empty -> NULL.
	check(t, mustCall(t, ctx, "$COERCE_SCALAR", "{{ {'a': 7} }}"), "7")
	check(t, mustCall(t, ctx, "$COERCE_SCALAR", "{{}}"), "null")
	check(t, mustCall(t, ctx, "$COERCE_SCALAR", "{{ 7 }}"), "7")
	if _, err := call(t, ctx, "$COERCE_SCALAR", "{{ {'a': 1}, {'a': 2} }}"); err == nil {
		t.Error("multi-row scalar subquery should fail")
	}
	if _, err := call(t, ctx, "$COERCE_SCALAR", "{{ {'a': 1, 'b': 2} }}"); err == nil {
		t.Error("multi-column scalar subquery should fail")
	}
	// $COERCE_COLL strips single-attribute tuples.
	check(t, mustCall(t, ctx, "$COERCE_COLL", "{{ {'a': 1}, {'a': 2} }}"), "{{1, 2}}")
	// $DISTINCT.
	check(t, mustCall(t, ctx, "$DISTINCT", "{{1, 1, 2}}"), "{{1, 2}}")
	check(t, mustCall(t, ctx, "$DISTINCT", "[2, 2]"), "[2]")
	// $MERGE splices tuples and names scalars.
	check(t, mustCall(t, ctx, "$MERGE", "'e'", "{'a': 1}", "'p'", "7"), "{'a': 1, 'p': 7}")
	check(t, mustCall(t, ctx, "$MERGE", "''", "5"), "{}") // e.* of a non-tuple: skipped
}

func TestRegistryExtension(t *testing.T) {
	r := NewRegistry()
	r.Register("twice", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		return eval.Arith(ctx, "*", args[0], value.Int(2), pos0)
	})
	def, ok := r.LookupFunc("TWICE")
	if !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	v, err := def.Fn(flexible(), []value.Value{value.Int(21)})
	if err != nil || v != value.Int(42) {
		t.Errorf("twice(21) = %v, %v", v, err)
	}
	if len(r.Names()) < 40 {
		t.Errorf("registry suspiciously small: %d functions", len(r.Names()))
	}
}
