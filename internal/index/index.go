// Package index implements secondary indexes over named collections:
// hash indexes for equality probes and ordered indexes for range
// probes, keyed by a value path extracted from each element (`a.b.c`,
// including steps into nested tuples).
//
// Permissive SQL++ semantics shape the whole design. A path extracted
// from a schema-less element can be MISSING (attribute absent, or a
// type fault navigated in permissive mode), NULL, or any type at all —
// and two elements of the same collection routinely disagree. The index
// therefore keeps explicit slots for MISSING and NULL keys outside the
// probe structures (an equality or range predicate over an absent or
// null key can never evaluate to TRUE, so those rows are never
// candidates), and orders heterogeneous keys by the data model's total
// order so a range probe can be restricted to the single comparison
// class the bounds belong to.
//
// An index never answers a predicate by itself. It yields candidate
// positions in ascending element order; the plan layer re-verifies
// every candidate against the original predicate, so indexed and
// scanned executions produce bit-identical results by construction.
//
// Published indexes are immutable: incremental maintenance goes through
// Extended, which returns a copy-on-write successor, so concurrent
// readers of the old version never observe a mutation.
package index

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/value"
)

// Kind selects the index structure.
type Kind uint8

const (
	// Hash supports equality probes only.
	Hash Kind = iota
	// Ordered supports both equality and range probes.
	Ordered
)

// String names the kind.
func (k Kind) String() string {
	if k == Ordered {
		return "ordered"
	}
	return "hash"
}

// ParseKind parses a kind name; the empty string defaults to hash.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "hash":
		return Hash, nil
	case "ordered":
		return Ordered, nil
	}
	return Hash, fmt.Errorf("index: unknown kind %q (want hash or ordered)", s)
}

// Spec declares an index: a name, the collection it covers, the key
// path extracted from each element, and the structure kind.
type Spec struct {
	Name       string
	Collection string
	Path       []string
	Kind       Kind
}

// PathString renders the key path in dotted form.
func (s Spec) PathString() string { return strings.Join(s.Path, ".") }

// Index is an immutable secondary index over one snapshot of a
// collection. Positions are int32 element ordinals in the snapshot,
// kept ascending everywhere so probe results replay in original scan
// order.
type Index struct {
	spec Spec
	src  value.Value // the collection snapshot the positions refer to
	n    int         // elements covered

	// buckets maps the canonical key encoding (value.AppendKey — the
	// engine's grouping equality, under which 1 and 1.0 collide exactly
	// when `=` calls them equal) to ascending positions. Both kinds
	// keep buckets, so equality probes work uniformly.
	buckets map[string][]int32

	// missing and null hold positions whose extracted key was MISSING
	// or NULL. They are never probe candidates; they exist so the index
	// fully accounts for the collection and so diagnostics can report
	// how much of it is unindexable.
	missing []int32
	null    []int32

	// Ordered indexes additionally keep the distinct non-absent keys
	// sorted by value.Compare (the data model's total order), with
	// runs[i] holding the positions for keys[i].
	keys []value.Value
	runs [][]int32
}

// Spec returns the index declaration.
func (ix *Index) Spec() Spec { return ix.spec }

// Source returns the collection snapshot the index was built over.
func (ix *Index) Source() value.Value { return ix.src }

// Len reports how many elements the index covers.
func (ix *Index) Len() int { return ix.n }

// Slots reports the population of the absent-key slots alongside the
// number of distinct probeable keys.
func (ix *Index) Slots() (keys, missing, null int) {
	return len(ix.buckets), len(ix.missing), len(ix.null)
}

// Extract mirrors eval.Navigate's permissive dot-navigation: tuples
// step into the named attribute (absent → MISSING), MISSING and NULL
// propagate through further steps, and navigating into any other type
// is a permissive type fault yielding MISSING. The index key for an
// element must be exactly what the evaluator would compute for the
// same path, or indexed candidates would diverge from scan results.
func Extract(v value.Value, path []string) value.Value {
	for _, name := range path {
		t, ok := v.(*value.Tuple)
		if !ok {
			switch v.Kind() {
			case value.KindMissing:
				return value.Missing
			case value.KindNull:
				return value.Null
			default:
				return value.Missing
			}
		}
		v, _ = t.Get(name)
	}
	return v
}

// Build constructs an index over src, which must be a collection
// (array or bag). gov, when non-nil, is charged per indexed element so
// index construction competes for the same memory budget as query
// evaluation.
//
// governor: every accumulated entry is charged in insertBuild.
func Build(spec Spec, src value.Value, gov *eval.Governor) (*Index, error) {
	if len(spec.Path) == 0 {
		return nil, fmt.Errorf("index %s: empty key path", spec.Name)
	}
	for _, step := range spec.Path {
		if step == "" {
			return nil, fmt.Errorf("index %s: empty step in key path %q", spec.Name, spec.PathString())
		}
	}
	elems, ok := value.Elements(src)
	if !ok {
		return nil, fmt.Errorf("index %s: %s is %v, not a collection", spec.Name, spec.Collection, src.Kind())
	}
	if len(elems) > math.MaxInt32 {
		return nil, fmt.Errorf("index %s: collection %s exceeds %d elements", spec.Name, spec.Collection, math.MaxInt32)
	}
	ix := &Index{spec: spec, src: src, buckets: make(map[string][]int32)}
	var reps map[string]value.Value
	if spec.Kind == Ordered {
		reps = make(map[string]value.Value)
	}
	for i, e := range elems {
		if err := ix.insertBuild(int32(i), e, reps, gov); err != nil {
			return nil, err
		}
	}
	ix.n = len(elems)
	if spec.Kind == Ordered {
		ix.keys = make([]value.Value, 0, len(reps))
		for _, k := range reps {
			ix.keys = append(ix.keys, k)
		}
		sort.Slice(ix.keys, func(i, j int) bool { return value.Compare(ix.keys[i], ix.keys[j]) < 0 })
		ix.runs = make([][]int32, len(ix.keys))
		for i, k := range ix.keys {
			ix.runs[i] = ix.buckets[value.Key(k)]
		}
	}
	return ix, nil
}

// insertBuild files one element during a full build. reps collects a
// representative value per distinct key for ordered indexes.
func (ix *Index) insertBuild(pos int32, elem value.Value, reps map[string]value.Value, gov *eval.Governor) error {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.IndexBuildInsert); err != nil {
			return fmt.Errorf("index %s: build: %w", ix.spec.Name, err)
		}
	}
	key := Extract(elem, ix.spec.Path)
	if gov != nil {
		if err := gov.ChargeValues("index-build", 1, key); err != nil {
			return err
		}
	}
	switch key.Kind() {
	case value.KindMissing:
		ix.missing = append(ix.missing, pos)
	case value.KindNull:
		ix.null = append(ix.null, pos)
	default:
		ks := value.Key(key)
		if reps != nil {
			if _, seen := reps[ks]; !seen {
				reps[ks] = key
			}
		}
		ix.buckets[ks] = append(ix.buckets[ks], pos)
	}
	return nil
}

// Lookup returns the ascending positions whose key is grouping-equal to
// key. An absent (MISSING or NULL) probe key matches nothing: equality
// against an absent value never evaluates to TRUE. The returned slice
// is shared with the index and must not be mutated.
func (ix *Index) Lookup(key value.Value) []int32 {
	if value.IsAbsent(key) {
		return nil
	}
	return ix.buckets[value.Key(key)]
}

// Range returns the ascending positions whose key k satisfies
// lo (<|<=) k (<|<=) hi under the evaluator's ordering semantics. A nil
// bound is unbounded on that side (at least one must be non-nil).
//
// Evaluator ordering comparisons are only TRUE for scalar operands of
// the same comparison class, so the probe is restricted to the bounds'
// class: bounds of two different classes, or a bound of a non-scalar
// class, match nothing. Within the class the data model's total order
// agrees with the evaluator's, so the result is a superset of the rows
// the predicate accepts (re-verification discards the rest).
//
// governor: charged per merged candidate run below.
func (ix *Index) Range(lo, hi value.Value, loIncl, hiIncl bool, gov *eval.Governor) ([]int32, error) {
	if ix.spec.Kind != Ordered {
		return nil, fmt.Errorf("index %s: range probe on hash index", ix.spec.Name)
	}
	var class int
	switch {
	case lo != nil && hi != nil:
		class = comparisonClass(lo)
		if comparisonClass(hi) != class {
			return nil, nil
		}
	case lo != nil:
		class = comparisonClass(lo)
	case hi != nil:
		class = comparisonClass(hi)
	default:
		return nil, fmt.Errorf("index %s: range probe with no bounds", ix.spec.Name)
	}
	if !scalarClass(class) {
		return nil, nil
	}
	// Narrow to the class segment of keys, then to the bound window.
	a := sort.Search(len(ix.keys), func(i int) bool { return comparisonClass(ix.keys[i]) >= class })
	b := a + sort.Search(len(ix.keys)-a, func(i int) bool { return comparisonClass(ix.keys[a+i]) > class })
	if lo != nil {
		a += sort.Search(b-a, func(i int) bool {
			c := value.Compare(ix.keys[a+i], lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	if hi != nil {
		b = a + sort.Search(b-a, func(i int) bool {
			c := value.Compare(ix.keys[a+i], hi)
			if hiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	if a >= b {
		return nil, nil
	}
	var out []int32
	for _, run := range ix.runs[a:b] {
		if gov != nil {
			if err := gov.ChargeValues("index-probe", int64(len(run)), nil); err != nil {
				return nil, err
			}
		}
		out = append(out, run...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Extended returns a new index covering src, which must be the previous
// snapshot with elems appended; the receiver is unchanged. Untouched
// buckets and runs are shared with the receiver (copy-on-write), so an
// append of k elements costs O(k·log n + distinct keys), not a rebuild.
func (ix *Index) Extended(src value.Value, elems []value.Value, gov *eval.Governor) (*Index, error) {
	if ix.n+len(elems) > math.MaxInt32 {
		return nil, fmt.Errorf("index %s: collection %s exceeds %d elements", ix.spec.Name, ix.spec.Collection, math.MaxInt32)
	}
	nx := &Index{
		spec:    ix.spec,
		src:     src,
		n:       ix.n,
		buckets: make(map[string][]int32, len(ix.buckets)),
		missing: ix.missing,
		null:    ix.null,
	}
	for k, run := range ix.buckets {
		nx.buckets[k] = run
	}
	if ix.spec.Kind == Ordered {
		nx.keys = append([]value.Value(nil), ix.keys...)
		nx.runs = append([][]int32(nil), ix.runs...)
	}
	owned := map[string]bool{}
	ownedAbsent := [2]bool{}
	for _, e := range elems {
		if err := nx.insertExtend(int32(nx.n), e, owned, &ownedAbsent, gov); err != nil {
			return nil, err
		}
		nx.n++
	}
	return nx, nil
}

// insertExtend files one appended element copy-on-write: the first
// touch of a bucket, run, or absent slot reallocates it so the base
// index's slices are never appended to in place.
func (nx *Index) insertExtend(pos int32, elem value.Value, owned map[string]bool, ownedAbsent *[2]bool, gov *eval.Governor) error {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.IndexBuildInsert); err != nil {
			return fmt.Errorf("index %s: extend: %w", nx.spec.Name, err)
		}
	}
	key := Extract(elem, nx.spec.Path)
	if gov != nil {
		if err := gov.ChargeValues("index-build", 1, key); err != nil {
			return err
		}
	}
	switch key.Kind() {
	case value.KindMissing:
		if !ownedAbsent[0] {
			nx.missing = append([]int32(nil), nx.missing...)
			ownedAbsent[0] = true
		}
		nx.missing = append(nx.missing, pos)
		return nil
	case value.KindNull:
		if !ownedAbsent[1] {
			nx.null = append([]int32(nil), nx.null...)
			ownedAbsent[1] = true
		}
		nx.null = append(nx.null, pos)
		return nil
	}
	ks := value.Key(key)
	run, existed := nx.buckets[ks]
	if !owned[ks] {
		run = append(append(make([]int32, 0, len(run)+1), run...), pos)
		owned[ks] = true
	} else {
		run = append(run, pos)
	}
	nx.buckets[ks] = run
	if nx.spec.Kind != Ordered {
		return nil
	}
	if existed {
		// The ordered run for this key must track the bucket: both
		// views share the probeable positions.
		i := sort.Search(len(nx.keys), func(i int) bool { return value.Compare(nx.keys[i], key) >= 0 })
		for ; i < len(nx.keys); i++ {
			if value.Key(nx.keys[i]) == ks {
				nx.runs[i] = run
				return nil
			}
			if value.Compare(nx.keys[i], key) != 0 {
				break
			}
		}
		return fmt.Errorf("index %s: internal: bucket %q missing from ordered runs", nx.spec.Name, ks)
	}
	i := sort.Search(len(nx.keys), func(i int) bool { return value.Compare(nx.keys[i], key) >= 0 })
	nx.keys = append(nx.keys, nil)
	copy(nx.keys[i+1:], nx.keys[i:])
	nx.keys[i] = key
	nx.runs = append(nx.runs, nil)
	copy(nx.runs[i+1:], nx.runs[i:])
	nx.runs[i] = run
	return nil
}

// comparisonClass buckets a value by the data model's comparison class
// (the same ranking value.Compare orders classes by). Values in
// different classes never satisfy an ordering comparison.
func comparisonClass(v value.Value) int {
	switch v.Kind() {
	case value.KindMissing:
		return 0
	case value.KindNull:
		return 1
	case value.KindBool:
		return 2
	case value.KindInt, value.KindFloat:
		return 3
	case value.KindString:
		return 4
	case value.KindBytes:
		return 5
	case value.KindArray:
		return 6
	case value.KindTuple:
		return 7
	default:
		return 8
	}
}

// scalarClass reports whether ordering comparisons can be TRUE for
// operands of the class: the evaluator only orders scalars.
func scalarClass(c int) bool { return c >= 2 && c <= 5 }
