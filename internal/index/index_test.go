package index_test

import (
	"errors"
	"math/rand"
	"testing"

	"sqlpp/internal/eval"
	"sqlpp/internal/index"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

func mustBuild(t *testing.T, spec index.Spec, src value.Value) *index.Index {
	t.Helper()
	ix, err := index.Build(spec, src, nil)
	if err != nil {
		t.Fatalf("Build(%v): %v", spec, err)
	}
	return ix
}

func positionsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bruteEq returns the ascending positions whose extracted key is
// grouping-equal to key (and not MISSING/NULL).
func bruteEq(elems []value.Value, path []string, key value.Value) []int32 {
	var out []int32
	want := value.Key(key)
	for i, e := range elems {
		k := index.Extract(e, path)
		if k.Kind() == value.KindMissing || k.Kind() == value.KindNull {
			continue
		}
		if value.Key(k) == want {
			out = append(out, int32(i))
		}
	}
	return out
}

// TestExtractMirrorsNavigation pins the key extractor to permissive
// dot-navigation semantics.
func TestExtractMirrorsNavigation(t *testing.T) {
	tup := sion.MustParse(`{'a': {'b': 3}, 'n': null, 's': 'x'}`)
	cases := []struct {
		path []string
		want value.Value
	}{
		{[]string{"a", "b"}, value.Int(3)},
		{[]string{"a", "zz"}, value.Missing}, // absent attribute
		{[]string{"a", "zz", "deep"}, value.Missing},
		{[]string{"n"}, value.Null},
		{[]string{"n", "b"}, value.Null},    // NULL propagates
		{[]string{"s", "b"}, value.Missing}, // type fault → MISSING
		{[]string{"zz"}, value.Missing},
	}
	for _, tc := range cases {
		got := index.Extract(tup, tc.path)
		if !value.Equivalent(got, tc.want) {
			t.Errorf("Extract(%v) = %s, want %s", tc.path, got, tc.want)
		}
	}
}

// TestBuildSlotAccounting: every element lands in exactly one of the
// keyed buckets, the MISSING slot, or the NULL slot.
func TestBuildSlotAccounting(t *testing.T) {
	src := sion.MustParse(`{{
	  {'id': 1}, {'id': 1.0}, {'id': 'one'}, {'id': null}, {'x': 9}, {'id': [1,2]}
	}}`)
	ix := mustBuild(t, index.Spec{Name: "ix", Collection: "c", Path: []string{"id"}}, src)
	if ix.Len() != 6 {
		t.Fatalf("Len = %d, want 6", ix.Len())
	}
	keys, missing, null := ix.Slots()
	// 1 and 1.0 collide under grouping equality; 'one' and [1,2] are
	// distinct keys; null and the absent attribute fill the slots.
	if keys != 3 || missing != 1 || null != 1 {
		t.Errorf("Slots = (%d,%d,%d), want (3,1,1)", keys, missing, null)
	}
	if got := ix.Lookup(value.Int(1)); !positionsEqual(got, []int32{0, 1}) {
		t.Errorf("Lookup(1) = %v, want [0 1] (1 and 1.0 grouping-equal)", got)
	}
	if got := ix.Lookup(value.Float(1)); !positionsEqual(got, []int32{0, 1}) {
		t.Errorf("Lookup(1.0) = %v, want [0 1]", got)
	}
	if got := ix.Lookup(value.String("one")); !positionsEqual(got, []int32{2}) {
		t.Errorf("Lookup('one') = %v, want [2]", got)
	}
	if got := ix.Lookup(value.String("absent")); got != nil {
		t.Errorf("Lookup(absent key) = %v, want nil", got)
	}
	// Absent keys are never probe candidates.
	if got := ix.Lookup(value.Null); got != nil {
		t.Errorf("Lookup(null) = %v, want nil", got)
	}
	if got := ix.Lookup(value.Missing); got != nil {
		t.Errorf("Lookup(missing) = %v, want nil", got)
	}
}

// TestBuildNestedPathAndArraySource: nested key paths over an array
// source; positions are the array ordinals.
func TestBuildNestedPathAndArraySource(t *testing.T) {
	src := sion.MustParse(`[
	  {'addr': {'zip': 92697}},
	  {'addr': {'zip': 10001}},
	  {'addr': {'city': 'nyc'}},
	  {'addr': {'zip': 92697}}
	]`)
	ix := mustBuild(t, index.Spec{Name: "ix", Collection: "c", Path: []string{"addr", "zip"}, Kind: index.Ordered}, src)
	if got := ix.Lookup(value.Int(92697)); !positionsEqual(got, []int32{0, 3}) {
		t.Errorf("Lookup(92697) = %v, want [0 3]", got)
	}
	_, missing, _ := func() (int, int, int) { k, m, n := ix.Slots(); return k, m, n }()
	if missing != 1 {
		t.Errorf("missing slot = %d, want 1 (element without zip)", missing)
	}
}

// TestBuildRejectsNonCollections: scalars and tuples are not indexable
// sources.
func TestBuildRejectsNonCollections(t *testing.T) {
	for _, src := range []string{`1`, `'s'`, `{'a': 1}`} {
		_, err := index.Build(index.Spec{Name: "ix", Collection: "c", Path: []string{"a"}}, sion.MustParse(src), nil)
		if err == nil {
			t.Errorf("Build over %s: want error, got nil", src)
		}
	}
	_, err := index.Build(index.Spec{Name: "ix", Collection: "c", Path: nil}, sion.MustParse(`{{}}`), nil)
	if err == nil {
		t.Error("Build with empty path: want error, got nil")
	}
}

// TestRangeAgainstBruteForce sweeps randomized range probes over a
// heterogeneous ordered index and cross-checks every candidate set
// against a brute-force scan restricted to the bound's comparison
// class (the evaluator's own range semantics: ordering comparisons
// are only TRUE within one class).
func TestRangeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var elems []value.Value
	for i := 0; i < 400; i++ {
		var key value.Value
		switch rng.Intn(6) {
		case 0:
			key = value.Int(int64(rng.Intn(40)))
		case 1:
			key = value.Float(float64(rng.Intn(40)) + 0.5)
		case 2:
			key = value.String(string(rune('a' + rng.Intn(26))))
		case 3:
			key = value.Null
		case 4:
			key = value.Bool(rng.Intn(2) == 0)
		default:
			key = value.Missing
		}
		t0 := value.EmptyTuple()
		t0.Put("pos", value.Int(int64(i)))
		if key.Kind() != value.KindMissing {
			t0.Put("k", key)
		}
		elems = append(elems, t0)
	}
	src := value.Bag(elems)
	path := []string{"k"}
	ix := mustBuild(t, index.Spec{Name: "ix", Collection: "c", Path: path, Kind: index.Ordered}, src)

	brute := func(lo, hi value.Value, loIncl, hiIncl bool) []int32 {
		var out []int32
		for i, e := range elems {
			k := index.Extract(e, path)
			if k.Kind() == value.KindMissing || k.Kind() == value.KindNull {
				continue
			}
			if lo != nil {
				c := value.Compare(k, lo)
				if c < 0 || (c == 0 && !loIncl) {
					continue
				}
			}
			if hi != nil {
				c := value.Compare(k, hi)
				if c > 0 || (c == 0 && !hiIncl) {
					continue
				}
			}
			out = append(out, int32(i))
		}
		return out
	}

	bound := func() value.Value {
		if rng.Intn(2) == 0 {
			return value.Int(int64(rng.Intn(40)))
		}
		return value.String(string(rune('a' + rng.Intn(26))))
	}
	for trial := 0; trial < 300; trial++ {
		lo, hi := bound(), bound()
		if value.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		loIncl, hiIncl := rng.Intn(2) == 0, rng.Intn(2) == 0
		got, err := ix.Range(lo, hi, loIncl, hiIncl, nil)
		if err != nil {
			t.Fatalf("Range(%s,%s): %v", lo, hi, err)
		}
		if value.Compare(lo, hi) != 0 || comparableClass(lo) == comparableClass(hi) {
			// Mixed-class bounds: the index must return no candidates
			// (the evaluator's range over them is empty too).
			if comparableClass(lo) != comparableClass(hi) {
				if got != nil {
					t.Fatalf("Range(%s,%s) across classes = %v, want nil", lo, hi, got)
				}
				continue
			}
		}
		want := brute(lo, hi, loIncl, hiIncl)
		if !positionsEqual(got, want) {
			t.Fatalf("Range(%s..%s incl %v,%v) = %v, want %v", lo, hi, loIncl, hiIncl, got, want)
		}
	}

	// Equality probes on the same index cross-check the buckets.
	for trial := 0; trial < 100; trial++ {
		k := bound()
		if got, want := ix.Lookup(k), bruteEq(elems, path, k); !positionsEqual(got, want) {
			t.Fatalf("Lookup(%s) = %v, want %v", k, got, want)
		}
	}

	// Range on a hash index is an error, not a wrong answer.
	hash := mustBuild(t, index.Spec{Name: "h", Collection: "c", Path: path}, src)
	if _, err := hash.Range(value.Int(1), value.Int(5), true, true, nil); err == nil {
		t.Error("Range over hash index: want error, got nil")
	}
}

// comparableClass mirrors the comparison classes used by the range
// scan: bools, numbers, and strings order only within their own class.
func comparableClass(v value.Value) int {
	switch v.Kind() {
	case value.KindBool:
		return 1
	case value.KindInt, value.KindFloat:
		return 2
	case value.KindString:
		return 3
	}
	return 0
}

// TestExtendedMatchesFreshBuild: incremental extension over random
// batches must be indistinguishable from rebuilding over the merged
// collection, for both kinds.
func TestExtendedMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n, base int) []value.Value {
		var out []value.Value
		for i := 0; i < n; i++ {
			t0 := value.EmptyTuple()
			switch rng.Intn(5) {
			case 0:
				t0.Put("k", value.Int(int64(rng.Intn(20))))
			case 1:
				t0.Put("k", value.Float(float64(rng.Intn(20))))
			case 2:
				t0.Put("k", value.String(string(rune('a'+rng.Intn(6)))))
			case 3:
				t0.Put("k", value.Null)
			default: // no k attribute → MISSING key
			}
			t0.Put("pos", value.Int(int64(base+i)))
			out = append(out, t0)
		}
		return out
	}

	for _, kind := range []index.Kind{index.Hash, index.Ordered} {
		elems := mk(100, 0)
		src := value.Bag(elems)
		ix := mustBuild(t, index.Spec{Name: "ix", Collection: "c", Path: []string{"k"}, Kind: kind}, src)
		for batch := 0; batch < 5; batch++ {
			add := mk(1+rng.Intn(30), len(elems))
			elems = append(elems, add...)
			merged := value.Bag(elems)
			var err error
			ix, err = ix.Extended(merged, add, nil)
			if err != nil {
				t.Fatalf("%v Extended batch %d: %v", kind, batch, err)
			}
			fresh := mustBuild(t, index.Spec{Name: "ix", Collection: "c", Path: []string{"k"}, Kind: kind}, merged)
			if ix.Len() != fresh.Len() {
				t.Fatalf("%v batch %d: Len %d vs fresh %d", kind, batch, ix.Len(), fresh.Len())
			}
			ik, im, in := ix.Slots()
			fk, fm, fn := fresh.Slots()
			if ik != fk || im != fm || in != fn {
				t.Fatalf("%v batch %d: Slots (%d,%d,%d) vs fresh (%d,%d,%d)", kind, batch, ik, im, in, fk, fm, fn)
			}
			// Every probeable key agrees with a fresh build.
			for i := 0; i < 20; i++ {
				k := value.Int(int64(rng.Intn(20)))
				if !positionsEqual(ix.Lookup(k), fresh.Lookup(k)) {
					t.Fatalf("%v batch %d: Lookup(%s) %v vs fresh %v", kind, batch, k, ix.Lookup(k), fresh.Lookup(k))
				}
			}
			if kind == index.Ordered {
				got, err1 := ix.Range(value.Int(3), value.Int(15), true, false, nil)
				want, err2 := fresh.Range(value.Int(3), value.Int(15), true, false, nil)
				if err1 != nil || err2 != nil {
					t.Fatalf("%v batch %d: Range errs %v %v", kind, batch, err1, err2)
				}
				if !positionsEqual(got, want) {
					t.Fatalf("%v batch %d: Range %v vs fresh %v", kind, batch, got, want)
				}
			}
		}
	}
}

// TestExtendedDoesNotMutateOriginal: the pre-extension snapshot keeps
// answering from its own positions after Extended returns.
func TestExtendedDoesNotMutateOriginal(t *testing.T) {
	src := sion.MustParse(`{{ {'k': 1}, {'k': 2} }}`)
	ix := mustBuild(t, index.Spec{Name: "ix", Collection: "c", Path: []string{"k"}, Kind: index.Ordered}, src)
	add := []value.Value{sion.MustParse(`{'k': 1}`), sion.MustParse(`{'k': 3}`)}
	merged := sion.MustParse(`{{ {'k': 1}, {'k': 2}, {'k': 1}, {'k': 3} }}`)
	nx, err := ix.Extended(merged, add, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(value.Int(1)); !positionsEqual(got, []int32{0}) {
		t.Errorf("original Lookup(1) changed: %v", got)
	}
	if got := nx.Lookup(value.Int(1)); !positionsEqual(got, []int32{0, 2}) {
		t.Errorf("extended Lookup(1) = %v, want [0 2]", got)
	}
	if got := ix.Lookup(value.Int(3)); got != nil {
		t.Errorf("original sees the extension's key: %v", got)
	}
	if r, _ := ix.Range(value.Int(1), value.Int(3), true, true, nil); !positionsEqual(r, []int32{0, 1}) {
		t.Errorf("original Range changed: %v", r)
	}
}

// TestBuildChargesGovernor: index construction competes for the
// materialized-values budget and fails typed when it exceeds it.
func TestBuildChargesGovernor(t *testing.T) {
	var elems []value.Value
	for i := 0; i < 100; i++ {
		t0 := value.EmptyTuple()
		t0.Put("k", value.Int(int64(i)))
		elems = append(elems, t0)
	}
	gov := eval.NewGovernor(eval.Limits{MaxMaterializedValues: 10})
	_, err := index.Build(index.Spec{Name: "ix", Collection: "c", Path: []string{"k"}}, value.Bag(elems), gov)
	var re *eval.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want ResourceError from governed build, got %v", err)
	}
	if re.Site != "index-build" {
		t.Errorf("charge site = %q, want index-build", re.Site)
	}
}
