package lexer_test

import (
	"testing"

	"sqlpp/internal/compat"
	"sqlpp/internal/lexer"
)

// FuzzLexer feeds arbitrary input through the tokenizer. The lexer must
// either tokenize or report a positioned error — never panic — and on
// success every token must carry text drawn from the input (no invented
// or empty lexemes beyond quoted forms, whose quotes are stripped).
//
// The seed corpus is every query of the conformance suite, so mutation
// starts from realistic SQL++ rather than noise.
func FuzzLexer(f *testing.F) {
	for _, c := range compat.Suite() {
		f.Add(c.Query)
	}
	f.Add("SELECT /* unterminated")
	f.Add("'it''s'")
	f.Add("`back`.\"quoted\" -- trailing comment")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexer.Tokenize(src)
		if err != nil {
			return // a positioned error is a fine outcome
		}
		for _, tok := range toks {
			if tok.Type == lexer.EOF {
				t.Fatalf("Tokenize leaked an EOF token in %q", src)
			}
			if tok.Pos.Line < 1 || tok.Pos.Column < 1 {
				t.Fatalf("token %q has impossible position %s", tok.Text, tok.Pos)
			}
		}
	})
}
