// Package lexer tokenizes SQL++ query text.
//
// The token stream follows SQL conventions: keywords are case-insensitive,
// string literals are single-quoted with ” escaping, identifiers may be
// double-quoted or backquoted to preserve case and reserved words, and
// comments are "--" to end of line or "/* ... */".
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Type classifies a token.
type Type uint8

// Token types.
const (
	EOF Type = iota
	Ident
	QuotedIdent
	Keyword
	StringLit
	IntLit
	FloatLit
	Symbol // punctuation and operators
)

var typeNames = [...]string{
	EOF:         "end of input",
	Ident:       "identifier",
	QuotedIdent: "identifier",
	Keyword:     "keyword",
	StringLit:   "string literal",
	IntLit:      "integer literal",
	FloatLit:    "float literal",
	Symbol:      "symbol",
}

// String returns a human-readable name for the token type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "invalid"
}

// Pos is a byte offset with line/column, for error messages.
type Pos struct {
	Offset int
	Line   int
	Column int
}

// String renders the position as "line:column".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// Token is one lexical element.
type Token struct {
	Type Type
	// Text is the canonical text: upper-case for keywords, the unescaped
	// body for string literals and quoted identifiers, the raw text
	// otherwise.
	Text string
	Pos  Pos
}

// Is reports whether the token is the given keyword (upper-case) or
// symbol text.
func (t Token) Is(text string) bool {
	return (t.Type == Keyword || t.Type == Symbol || t.Type == Ident) && t.Text == text
}

// keywords is the SQL++ reserved-word set. Words outside this set lex as
// identifiers even when they play a syntactic role (e.g. function names).
var keywords = map[string]bool{
	"SELECT": true, "VALUE": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "AS": true, "AT": true, "HAVING": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "DISTINCT": true, "ALL": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "ESCAPE": true, "IS": true, "NULL": true,
	"MISSING": true, "TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"OUTER": true, "CROSS": true, "ON": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true,
	"EXISTS": true, "PIVOT": true, "UNPIVOT": true,
	"NULLS": true, "FIRST": true, "LAST": true,
	"UNKNOWN": true, "CAST": true, "WITH": true, "LET": true,
	"OVER": true, "PARTITION": true,
}

// IsKeyword reports whether upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Error is a lexical error with position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg)
}

// Lexer produces tokens from SQL++ source text.
type Lexer struct {
	src    string
	pos    int
	line   int
	column int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, column: 1}
}

// Tokenize lexes the entire input, returning all tokens (excluding EOF).
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if tok.Type == EOF {
			return out, nil
		}
		out = append(out, tok)
	}
}

func (l *Lexer) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) here() Pos {
	return Pos{Offset: l.pos, Line: l.line, Column: l.column}
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.column = 1
		} else {
			l.column++
		}
		l.pos++
	}
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.here()
			l.advance(2)
			for {
				if l.pos >= len(l.src) {
					return l.errf(start, "unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.peekAt(1) == '/' {
					l.advance(2)
					break
				}
				l.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

// multiSymbols are the multi-character operators, longest first.
var multiSymbols = []string{"<<", ">>", "<>", "<=", ">=", "!=", "||"}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.here()
	if l.pos >= len(l.src) {
		return Token{Type: EOF, Pos: pos}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '\'':
		text, err := l.lexQuoted('\'')
		if err != nil {
			return Token{}, err
		}
		return Token{Type: StringLit, Text: text, Pos: pos}, nil
	case c == '"':
		text, err := l.lexQuoted('"')
		if err != nil {
			return Token{}, err
		}
		return Token{Type: QuotedIdent, Text: text, Pos: pos}, nil
	case c == '`':
		text, err := l.lexQuoted('`')
		if err != nil {
			return Token{}, err
		}
		return Token{Type: QuotedIdent, Text: text, Pos: pos}, nil
	case c >= '0' && c <= '9', c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9':
		return l.lexNumber(pos)
	case isIdentStartByte(c):
		return l.lexWord(pos)
	}
	for _, sym := range multiSymbols {
		if strings.HasPrefix(l.src[l.pos:], sym) {
			// "{{" and "}}" are handled by the parser as two symbols; the
			// bag delimiters << and >> lex as one token each.
			l.advance(len(sym))
			return Token{Type: Symbol, Text: sym, Pos: pos}, nil
		}
	}
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', ';', ':', '.', '*', '/', '%',
		'+', '-', '=', '<', '>', '?', '@':
		l.advance(1)
		return Token{Type: Symbol, Text: string(c), Pos: pos}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return Token{}, l.errf(pos, "unexpected character %q", string(r))
}

func isIdentStartByte(c byte) bool {
	return c == '_' || c == '$' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c >= utf8.RuneSelf
}

func isIdentPartRune(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *Lexer) lexWord(pos Pos) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPartRune(r) {
			break
		}
		l.advance(size)
	}
	word := l.src[start:l.pos]
	if word == "" {
		// isIdentStartByte admits every byte >= RuneSelf, but the decoded
		// rune may still not be an identifier rune — an invalid UTF-8
		// sequence decodes to U+FFFD, which IsLetter rejects. Without
		// this check the lexer would return an empty token forever
		// instead of advancing.
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		return Token{}, l.errf(pos, "unexpected character %q", string(r))
	}
	if upper := strings.ToUpper(word); keywords[upper] {
		return Token{Type: Keyword, Text: upper, Pos: pos}, nil
	}
	return Token{Type: Ident, Text: word, Pos: pos}, nil
}

func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.pos
	typ := IntLit
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.advance(1)
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		// A dot not followed by a digit is path navigation (e.g. 1.x is
		// not a number), except the leading-dot case handled in Next.
		if d := l.peekAt(1); d >= '0' && d <= '9' || l.pos == start {
			typ = FloatLit
			l.advance(1)
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance(1)
			}
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peekAt(1)
		if next >= '0' && next <= '9' || ((next == '+' || next == '-') && l.peekAt(2) >= '0' && l.peekAt(2) <= '9') {
			typ = FloatLit
			l.advance(1)
			if c := l.src[l.pos]; c == '+' || c == '-' {
				l.advance(1)
			}
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance(1)
			}
		}
	}
	return Token{Type: typ, Text: l.src[start:l.pos], Pos: pos}, nil
}

// lexQuoted lexes a q-delimited literal with doubled-q escaping and
// returns the unescaped body.
func (l *Lexer) lexQuoted(q byte) (string, error) {
	pos := l.here()
	l.advance(1)
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == q {
			if l.peekAt(1) == q {
				sb.WriteByte(q)
				l.advance(2)
				continue
			}
			l.advance(1)
			return sb.String(), nil
		}
		sb.WriteByte(c)
		l.advance(1)
	}
	return "", l.errf(pos, "unterminated %q-quoted literal", string(q))
}
