package lexer

import (
	"strings"
	"testing"
)

func tok(t Type, text string) Token { return Token{Type: t, Text: text} }

func sameTokens(got, want []Token) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Type != want[i].Type || got[i].Text != want[i].Text {
			return false
		}
	}
	return true
}

func TestTokenizeBasics(t *testing.T) {
	cases := []struct {
		src  string
		want []Token
	}{
		{"SELECT e.name", []Token{tok(Keyword, "SELECT"), tok(Ident, "e"), tok(Symbol, "."), tok(Ident, "name")}},
		{"select From wHeRe", []Token{tok(Keyword, "SELECT"), tok(Keyword, "FROM"), tok(Keyword, "WHERE")}},
		{"'it''s'", []Token{tok(StringLit, "it's")}},
		{`"mixed Case"`, []Token{tok(QuotedIdent, "mixed Case")}},
		{"`tick`", []Token{tok(QuotedIdent, "tick")}},
		{`"with""quote"`, []Token{tok(QuotedIdent, `with"quote`)}},
		{"42 4.5 .5 1e3 2E-4", []Token{tok(IntLit, "42"), tok(FloatLit, "4.5"), tok(FloatLit, ".5"), tok(FloatLit, "1e3"), tok(FloatLit, "2E-4")}},
		{"<= >= <> != || << >>", []Token{tok(Symbol, "<="), tok(Symbol, ">="), tok(Symbol, "<>"), tok(Symbol, "!="), tok(Symbol, "||"), tok(Symbol, "<<"), tok(Symbol, ">>")}},
		{"{{ }}", []Token{tok(Symbol, "{"), tok(Symbol, "{"), tok(Symbol, "}"), tok(Symbol, "}")}},
		{"a_1 $var δelta", []Token{tok(Ident, "a_1"), tok(Ident, "$var"), tok(Ident, "δelta")}},
		{"-- comment\nx", []Token{tok(Ident, "x")}},
		{"/* multi \n line */ y", []Token{tok(Ident, "y")}},
		{"1.x", []Token{tok(IntLit, "1"), tok(Symbol, "."), tok(Ident, "x")}},
		{"a.b[0]", []Token{tok(Ident, "a"), tok(Symbol, "."), tok(Ident, "b"), tok(Symbol, "["), tok(IntLit, "0"), tok(Symbol, "]")}},
		{"e5 1e", []Token{tok(Ident, "e5"), tok(IntLit, "1"), tok(Ident, "e")}},
	}
	for _, c := range cases {
		got, err := Tokenize(c.src)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", c.src, err)
			continue
		}
		if !sameTokens(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("SELECT\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("SELECT pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("x pos = %v, want 2:3", toks[1].Pos)
	}
	if toks[1].Pos.Offset != 9 {
		t.Errorf("x offset = %d, want 9", toks[1].Pos.Offset)
	}
}

func TestLexErrors(t *testing.T) {
	// "ti\x84le" and "€" regress a lexer loop: bytes >= 0x80 enter the
	// identifier path, but when the decoded rune is not a letter (an
	// invalid UTF-8 sequence, a currency symbol) the lexer used to emit
	// an empty token forever instead of erroring.
	cases := []string{"'unterminated", `"open`, "/* open", "#", "ti\x84le", "\x84", "€"}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		} else if !strings.Contains(err.Error(), "syntax error") {
			t.Errorf("Tokenize(%q) error = %v", src, err)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("GROUP") {
		t.Error("reserved words should be keywords in any case")
	}
	if IsKeyword("lower") || IsKeyword("coll_avg") {
		t.Error("function names are not reserved")
	}
}

func TestEOFIsSticky(t *testing.T) {
	lx := New("x")
	if tk, _ := lx.Next(); tk.Type != Ident {
		t.Fatal("first token should be x")
	}
	for i := 0; i < 3; i++ {
		tk, err := lx.Next()
		if err != nil || tk.Type != EOF {
			t.Fatalf("EOF should repeat, got %v, %v", tk, err)
		}
	}
}

func TestTokenIs(t *testing.T) {
	toks, _ := Tokenize("SELECT , name")
	if !toks[0].Is("SELECT") || !toks[1].Is(",") || !toks[2].Is("name") {
		t.Error("Token.Is failed")
	}
	if toks[2].Is("SELECT") {
		t.Error("Token.Is must match text")
	}
}
