package parser

import (
	"testing"

	"sqlpp/internal/ast"
)

var benchQueries = map[string]string{
	"simple": `SELECT e.name FROM hr.emp AS e WHERE e.salary > 100`,
	"listing12": `FROM hr.emp_nest_scalars AS e, e.projects AS p
	              WHERE p LIKE '%Security%'
	              GROUP BY LOWER(p) AS p GROUP AS g
	              SELECT p AS proj_name,
	                     (FROM g AS v SELECT VALUE v.e.name) AS employees`,
	"analytics": `WITH n AS (SELECT t.day AS day, t.sym AS sym,
	                                 SUM(t.amt) AS amount
	                          FROM trades AS t GROUP BY t.day, t.sym)
	              SELECT n.sym AS sym,
	                     SUM(n.amount) OVER (PARTITION BY n.sym ORDER BY n.day) AS running
	              FROM n AS n ORDER BY n.sym LIMIT 100`,
}

func BenchmarkParse(b *testing.B) {
	for name, q := range benchQueries {
		query := q
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Parse(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFormat(b *testing.B) {
	for name, q := range benchQueries {
		tree := MustParse(q)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ast.Format(tree)
			}
		})
	}
}
