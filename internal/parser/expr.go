package parser

import (
	"strconv"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// parseExpr parses a full expression (the OR precedence level).
func (p *parser) parseExpr() (ast.Expr, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at("OR") {
		pos := p.next().Pos
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		b := &ast.Binary{Op: "OR", L: left, R: right}
		setPos(b, pos)
		left = b
	}
	return left, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.at("AND") {
		pos := p.next().Pos
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		b := &ast.Binary{Op: "AND", L: left, R: right}
		setPos(b, pos)
		left = b
	}
	return left, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.at("NOT") {
		pos := p.next().Pos
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		u := &ast.Unary{Op: "NOT", Operand: operand}
		setPos(u, pos)
		return u, nil
	}
	return p.parsePredicate()
}

// comparison operators at the predicate level.
var comparisonOps = []string{"=", "<>", "!=", "<=", ">=", "<", ">"}

// parsePredicate parses comparisons, LIKE, BETWEEN, IN and IS.
func (p *parser) parsePredicate() (ast.Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		// Comparison chain (left-associative, as in SQL).
		matched := false
		for _, op := range comparisonOps {
			if p.at(op) {
				pos := p.next().Pos
				canon := op
				if canon == "!=" {
					canon = "<>"
				}
				// Quantified comparison: op ANY|SOME|ALL (collection).
				if quantAll, isQuant := p.atQuantifier(); isQuant {
					p.next()
					set, err := p.parseConcat()
					if err != nil {
						return nil, err
					}
					qc := &ast.Quantified{Op: canon, All: quantAll, Target: left, Set: set}
					setPos(qc, pos)
					left = qc
					matched = true
					break
				}
				right, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				b := &ast.Binary{Op: canon, L: left, R: right}
				setPos(b, pos)
				left = b
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		negate := false
		if p.at("NOT") && (p.atOffset(1, "LIKE") || p.atOffset(1, "BETWEEN") || p.atOffset(1, "IN")) {
			p.next()
			negate = true
		}
		switch {
		case p.at("LIKE"):
			pos := p.next().Pos
			pattern, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			like := &ast.Like{Target: left, Pattern: pattern, Negate: negate}
			setPos(like, pos)
			if p.accept("ESCAPE") {
				esc, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				like.Escape = esc
			}
			left = like
		case p.at("BETWEEN"):
			pos := p.next().Pos
			lo, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			b := &ast.Between{Target: left, Lo: lo, Hi: hi, Negate: negate}
			setPos(b, pos)
			left = b
		case p.at("IN"):
			pos := p.next().Pos
			in := &ast.In{Target: left, Negate: negate}
			setPos(in, pos)
			set, list, err := p.parseInRHS()
			if err != nil {
				return nil, err
			}
			in.Set, in.List = set, list
			left = in
		case p.at("IS"):
			pos := p.next().Pos
			neg := p.accept("NOT")
			var what string
			switch {
			case p.accept("NULL"):
				what = "NULL"
			case p.accept("MISSING"):
				what = "MISSING"
			case p.accept("UNKNOWN"):
				what = "UNKNOWN"
			default:
				return nil, p.errf(p.peek().Pos, "expected NULL, MISSING, or UNKNOWN after IS")
			}
			is := &ast.Is{Target: left, What: what, Negate: neg}
			setPos(is, pos)
			left = is
		default:
			if negate {
				return nil, p.errf(p.peek().Pos, "expected LIKE, BETWEEN, or IN after NOT")
			}
			return left, nil
		}
	}
}

// atQuantifier reports whether the current token is the ANY/SOME/ALL
// quantifier of a quantified comparison (followed by an operand).
func (p *parser) atQuantifier() (all, ok bool) {
	tok := p.peek()
	switch {
	case tok.Type == lexer.Keyword && tok.Text == "ALL":
		return true, true
	case tok.Type == lexer.Ident && (strings.EqualFold(tok.Text, "ANY") || strings.EqualFold(tok.Text, "SOME")):
		// Only when followed by something that can start an operand —
		// "ANY" alone could be a column named any.
		next := p.peekAt(1)
		return false, next.Is("(") || next.Type == lexer.Ident || next.Type == lexer.QuotedIdent ||
			next.Is("SELECT") || next.Is("FROM") || next.Is("[") || next.Is("<<")
	}
	return false, false
}

// parseInRHS parses the right side of IN: either a parenthesized list of
// expressions, or a single collection-valued expression / subquery.
func (p *parser) parseInRHS() (set ast.Expr, list []ast.Expr, err error) {
	if !p.at("(") {
		set, err = p.parseConcat()
		return set, nil, err
	}
	// "(": subquery, or an expression list. Parse inside the parens.
	p.next()
	if p.atQueryStart() {
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, nil, err
		}
		return q, nil, nil
	}
	first, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	list = []ast.Expr{first}
	for p.accept(",") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		list = append(list, e)
	}
	if _, err := p.expect(")"); err != nil {
		return nil, nil, err
	}
	if len(list) == 1 {
		// "(expr)" could be a parenthesized collection expression; SQL
		// treats a single-element list the same as the element set.
		return nil, list, nil
	}
	return nil, list, nil
}

func (p *parser) parseConcat() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.at("||") {
		pos := p.next().Pos
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		b := &ast.Binary{Op: "||", L: left, R: right}
		setPos(b, pos)
		left = b
	}
	return left, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at("+") || p.at("-") {
		op := p.peek().Text
		pos := p.next().Pos
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		b := &ast.Binary{Op: op, L: left, R: right}
		setPos(b, pos)
		left = b
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at("*") || p.at("/") || p.at("%") {
		op := p.peek().Text
		pos := p.next().Pos
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		b := &ast.Binary{Op: op, L: left, R: right}
		setPos(b, pos)
		left = b
	}
	return left, nil
}

func (p *parser) parseUnary() (ast.Expr, error) {
	switch {
	case p.at("-"):
		pos := p.next().Pos
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &ast.Unary{Op: "-", Operand: operand}
		setPos(u, pos)
		return u, nil
	case p.at("+"):
		p.next()
		return p.parseUnary()
	}
	return p.parsePath()
}

// parsePath parses a primary expression followed by navigation steps:
// ".name" and "[index]". A ".*" suffix is left unconsumed for the SELECT
// item parser.
func (p *parser) parsePath() (ast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(".") && !p.atOffset(1, "*"):
			pos := p.next().Pos
			tok := p.peek()
			var name string
			switch tok.Type {
			case lexer.Ident, lexer.QuotedIdent, lexer.StringLit:
				name = tok.Text
				p.next()
			case lexer.Keyword:
				// Allow non-structural keywords as attribute names
				// (e.g. t.value, t."first").
				name = strings.ToLower(tok.Text)
				p.next()
			default:
				return nil, p.errf(pos, "expected attribute name after '.'")
			}
			fa := &ast.FieldAccess{Base: e, Name: name}
			setPos(fa, pos)
			e = fa
		case p.at("["):
			pos := p.next().Pos
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			ia := &ast.IndexAccess{Base: e, Index: idx}
			setPos(ia, pos)
			e = ia
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	tok := p.peek()
	switch tok.Type {
	case lexer.IntLit:
		p.next()
		v, err := parseIntLit(tok.Text, tok.Pos)
		if err != nil {
			return nil, err
		}
		return literal(v, tok.Pos), nil
	case lexer.FloatLit:
		p.next()
		f, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, p.errf(tok.Pos, "invalid numeric literal %q", tok.Text)
		}
		return literal(value.Float(f), tok.Pos), nil
	case lexer.StringLit:
		p.next()
		return literal(value.String(tok.Text), tok.Pos), nil
	}
	switch {
	case p.at("TRUE"):
		p.next()
		return literal(value.True, tok.Pos), nil
	case p.at("FALSE"):
		p.next()
		return literal(value.False, tok.Pos), nil
	case p.at("NULL"):
		p.next()
		return literal(value.Null, tok.Pos), nil
	case p.at("MISSING"):
		p.next()
		return literal(value.Missing, tok.Pos), nil
	case p.at("CASE"):
		return p.parseCase()
	case p.at("EXISTS"):
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		ex := &ast.Exists{Operand: operand}
		setPos(ex, tok.Pos)
		return ex, nil
	case p.at("CAST"):
		return p.parseCast()
	case p.at("("):
		p.next()
		// parseQueryExpr handles plain expressions too, and admits a set
		// operation whose left arm is the parenthesized expression:
		// ((SELECT ...) UNION ALL (SELECT ...)).
		inner, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.at("{") && p.atOffset(1, "{"):
		return p.parseBagCtor("}", true)
	case p.at("<<"):
		return p.parseBagCtor(">>", false)
	case p.at("{"):
		return p.parseTupleCtor()
	case p.at("["):
		return p.parseArrayCtor()
	case p.at("SELECT"), p.at("FROM"), p.at("PIVOT"):
		// Unparenthesized subquery in expression position; accepted for
		// composability (the paper writes COLL_AVG(SELECT VALUE ...)).
		return p.parseQueryBlock()
	}
	if tok.Type == lexer.Ident || tok.Type == lexer.QuotedIdent {
		p.next()
		if tok.Type == lexer.Ident && p.at("(") {
			call, err := p.parseCall(tok)
			if err != nil {
				return nil, err
			}
			if p.at("OVER") {
				return p.parseWindow(call.(*ast.Call))
			}
			return call, nil
		}
		v := &ast.VarRef{Name: tok.Text}
		setPos(v, tok.Pos)
		return v, nil
	}
	// VALUE and a few other keywords double as function names in some
	// dialects; reject cleanly.
	return nil, p.errf(tok.Pos, "unexpected %s %q in expression", tok.Type, tok.Text)
}

func (p *parser) parseCall(name lexer.Token) (ast.Expr, error) {
	call := &ast.Call{Name: strings.ToUpper(name.Text)}
	setPos(call, name.Pos)
	p.next() // "("
	if p.at("*") && p.atOffset(1, ")") {
		p.next()
		p.next()
		call.Star = true
		return call, nil
	}
	if p.accept(")") {
		return call, nil
	}
	if p.accept("DISTINCT") {
		call.Distinct = true
	}
	for {
		arg, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return call, nil
}

// parseWindow parses "OVER ([PARTITION BY e, ...] [ORDER BY items])"
// applied to fn.
func (p *parser) parseWindow(fn *ast.Call) (ast.Expr, error) {
	pos := p.next().Pos // OVER
	w := &ast.Window{Fn: fn}
	setPos(w, pos)
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if p.accept("PARTITION") {
		if _, err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			w.Spec.PartitionBy = append(w.Spec.PartitionBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.at("ORDER") {
		p.next()
		if _, err := p.expect("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		w.Spec.OrderBy = items
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return w, nil
}

// parseOrderItems parses "expr [ASC|DESC] [NULLS FIRST|LAST], ...".
func (p *parser) parseOrderItems() ([]ast.OrderItem, error) {
	var out []ast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ast.OrderItem{Expr: e}
		if p.accept("DESC") {
			item.Desc = true
		} else {
			p.accept("ASC")
		}
		if p.accept("NULLS") {
			switch {
			case p.accept("FIRST"):
				t := true
				item.NullsFirst = &t
			case p.accept("LAST"):
				f := false
				item.NullsFirst = &f
			default:
				return nil, p.errf(p.peek().Pos, "expected FIRST or LAST after NULLS")
			}
		}
		out = append(out, item)
		if !p.accept(",") {
			return out, nil
		}
	}
}

func (p *parser) parseCase() (ast.Expr, error) {
	pos := p.next().Pos // CASE
	c := &ast.Case{}
	setPos(c, pos)
	if !p.at("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.accept("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.When{Cond: cond, Result: result})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf(p.peek().Pos, "CASE requires at least one WHEN arm")
	}
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseCast parses CAST(expr AS typename) into a CAST call whose second
// argument is the type name as a string literal.
func (p *parser) parseCast() (ast.Expr, error) {
	pos := p.next().Pos // CAST
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("AS"); err != nil {
		return nil, err
	}
	tok := p.peek()
	var typeName string
	switch tok.Type {
	case lexer.Ident, lexer.QuotedIdent, lexer.Keyword:
		typeName = strings.ToUpper(tok.Text)
		p.next()
	default:
		return nil, p.errf(tok.Pos, "expected type name in CAST")
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	call := &ast.Call{Name: "CAST", Args: []ast.Expr{e, literal(value.String(typeName), tok.Pos)}}
	setPos(call, pos)
	return call, nil
}

func (p *parser) parseTupleCtor() (ast.Expr, error) {
	pos := p.next().Pos // "{"
	t := &ast.TupleCtor{}
	setPos(t, pos)
	if p.accept("}") {
		return t, nil
	}
	for {
		nameTok := p.peek()
		var name ast.Expr
		switch nameTok.Type {
		case lexer.StringLit:
			// A string literal immediately followed by ':' is the
			// attribute name; otherwise it starts a name expression
			// ('k' || '1': ...).
			if p.atOffset(1, ":") {
				p.next()
				name = literal(value.String(nameTok.Text), nameTok.Pos)
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				name = e
			}
		case lexer.Ident, lexer.QuotedIdent:
			// Bare attribute name shorthand: {a: 1}. A general
			// expression is also allowed; disambiguate on the ':' that
			// must follow a bare name.
			if p.atOffset(1, ":") {
				p.next()
				name = literal(value.String(nameTok.Text), nameTok.Pos)
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				name = e
			}
		default:
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			name = e
		}
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		t.Fields = append(t.Fields, ast.TupleField{Name: name, Value: v})
		switch {
		case p.accept(","):
		case p.accept("}"):
			return t, nil
		default:
			return nil, p.errf(p.peek().Pos, "expected ',' or '}' in tuple constructor")
		}
	}
}

func (p *parser) parseArrayCtor() (ast.Expr, error) {
	pos := p.next().Pos // "["
	a := &ast.ArrayCtor{}
	setPos(a, pos)
	if p.accept("]") {
		return a, nil
	}
	for {
		e, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		a.Elems = append(a.Elems, e)
		switch {
		case p.accept(","):
		case p.accept("]"):
			return a, nil
		default:
			return nil, p.errf(p.peek().Pos, "expected ',' or ']' in array constructor")
		}
	}
}

// parseBagCtor parses {{...}} (doubled=true, closed by "}}") or <<...>>
// (closed by ">>").
func (p *parser) parseBagCtor(closeSym string, doubled bool) (ast.Expr, error) {
	pos := p.peek().Pos
	if doubled {
		p.next()
		p.next()
	} else {
		p.next()
	}
	b := &ast.BagCtor{}
	setPos(b, pos)
	closeBag := func() bool {
		if doubled {
			if p.at("}") && p.atOffset(1, "}") {
				p.next()
				p.next()
				return true
			}
			return false
		}
		return p.accept(closeSym)
	}
	if closeBag() {
		return b, nil
	}
	for {
		e, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		b.Elems = append(b.Elems, e)
		if p.accept(",") {
			continue
		}
		if closeBag() {
			return b, nil
		}
		return nil, p.errf(p.peek().Pos, "expected ',' or bag terminator")
	}
}
