package parser_test

import (
	"reflect"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/catalog"
	"sqlpp/internal/compat"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sema"
)

// FuzzParse feeds arbitrary input through the full parser. Parsing must
// either produce an AST or a positioned error — never panic — and any
// AST it accepts must survive formatting and re-parsing (the printed
// form is itself valid SQL++).
//
// Seeded with every conformance-suite query so mutation explores the
// grammar's real surface, not just garbage rejection.
func FuzzParse(f *testing.F) {
	for _, c := range compat.Suite() {
		f.Add(c.Query)
	}
	f.Add("SELECT VALUE (FROM g AS v SELECT VALUE v) FROM t AS g")
	f.Add("PIVOT x.v AT x.k FROM t AS x")
	f.Add("SELECT a FROM t ORDER BY a LIMIT 1 OFFSET 2")
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := parser.Parse(src)
		if err != nil {
			return
		}
		printed := ast.Format(tree)
		if _, err := parser.Parse(printed); err != nil {
			t.Fatalf("accepted %q but rejected its own formatting %q: %v", src, printed, err)
		}
	})
}

// FuzzSema pushes every parseable input through the static semantic
// analyzer, raw and (when it resolves against an empty catalog)
// rewritten to Core, in both typing modes. Analysis must never panic,
// and repeated runs over the same tree must return identical
// diagnostics — nondeterministic findings would break the plan cache,
// whose entries bake in the diagnostics computed at compile time.
func FuzzSema(f *testing.F) {
	for _, c := range compat.Suite() {
		f.Add(c.Query)
	}
	f.Add("FROM [1,2] AS x SELECT VALUE y")
	f.Add("FROM [1] AS e GROUP BY e.d AS d SELECT VALUE e.n")
	f.Add("SELECT VALUE 1 + 'a' || 2 FROM [1] AS dead")
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := parser.Parse(src)
		if err != nil {
			return
		}
		for _, strict := range []bool{false, true} {
			opts := sema.Options{StopOnError: strict}
			a := sema.Analyze(tree, opts)
			if b := sema.Analyze(tree, opts); !reflect.DeepEqual(a, b) {
				t.Fatalf("nondeterministic diagnostics for %q (strict=%v):\n%v\n%v", src, strict, a, b)
			}
			core, err := rewrite.Rewrite(tree, rewrite.Options{Names: catalog.New()})
			if err != nil {
				continue
			}
			a = sema.Analyze(core, opts)
			if b := sema.Analyze(core, opts); !reflect.DeepEqual(a, b) {
				t.Fatalf("nondeterministic Core diagnostics for %q (strict=%v):\n%v\n%v", src, strict, a, b)
			}
		}
	})
}
