package parser_test

import (
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/compat"
	"sqlpp/internal/parser"
)

// FuzzParse feeds arbitrary input through the full parser. Parsing must
// either produce an AST or a positioned error — never panic — and any
// AST it accepts must survive formatting and re-parsing (the printed
// form is itself valid SQL++).
//
// Seeded with every conformance-suite query so mutation explores the
// grammar's real surface, not just garbage rejection.
func FuzzParse(f *testing.F) {
	for _, c := range compat.Suite() {
		f.Add(c.Query)
	}
	f.Add("SELECT VALUE (FROM g AS v SELECT VALUE v) FROM t AS g")
	f.Add("PIVOT x.v AT x.k FROM t AS x")
	f.Add("SELECT a FROM t ORDER BY a LIMIT 1 OFFSET 2")
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := parser.Parse(src)
		if err != nil {
			return
		}
		printed := ast.Format(tree)
		if _, err := parser.Parse(printed); err != nil {
			t.Fatalf("accepted %q but rejected its own formatting %q: %v", src, printed, err)
		}
	})
}
