// Package parser turns SQL++ source text into the AST of package ast.
//
// The grammar is SQL with the paper's relaxations: SELECT VALUE, query
// blocks that may put the SELECT clause last, left-correlated FROM items,
// AT ordinal variables, GROUP BY ... GROUP AS, PIVOT and UNPIVOT, bag and
// tuple constructors, and subqueries anywhere an expression is allowed.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/value"
)

// Error is a parse error with position information.
type Error struct {
	Pos lexer.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg)
}

// Parse parses a complete SQL++ query (a query block, set operation, or
// bare expression) and requires that all input is consumed. A trailing
// semicolon is permitted.
func Parse(src string) (ast.Expr, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	if p.at(";") {
		p.next()
	}
	if tok := p.peek(); tok.Type != lexer.EOF {
		return nil, p.errf(tok.Pos, "unexpected %s %q after query", tok.Type, tok.Text)
	}
	return e, nil
}

// MustParse is Parse but panics on error; intended for tests and
// fixtures.
func MustParse(src string) ast.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) errf(pos lexer.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() lexer.Token { return p.peekAt(0) }

func (p *parser) peekAt(n int) lexer.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	end := lexer.Pos{Line: 1, Column: 1}
	if len(p.toks) > 0 {
		end = p.toks[len(p.toks)-1].Pos
	}
	return lexer.Token{Type: lexer.EOF, Pos: end}
}

func (p *parser) next() lexer.Token {
	tok := p.peek()
	if tok.Type != lexer.EOF {
		p.pos++
	}
	return tok
}

// at reports whether the current token is the given keyword or symbol.
func (p *parser) at(text string) bool { return p.atOffset(0, text) }

func (p *parser) atOffset(n int, text string) bool {
	tok := p.peekAt(n)
	return (tok.Type == lexer.Keyword || tok.Type == lexer.Symbol) && tok.Text == text
}

// accept consumes the current token when it matches text.
func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a token matching text or fails.
func (p *parser) expect(text string) (lexer.Token, error) {
	tok := p.peek()
	if !p.at(text) {
		return tok, p.errf(tok.Pos, "expected %q, found %q", text, tok.Text)
	}
	return p.next(), nil
}

// expectIdent consumes an identifier (plain or quoted) and returns its
// name.
func (p *parser) expectIdent(what string) (string, error) {
	tok := p.peek()
	if tok.Type != lexer.Ident && tok.Type != lexer.QuotedIdent {
		return "", p.errf(tok.Pos, "expected %s, found %q", what, tok.Text)
	}
	p.next()
	return tok.Text, nil
}

// atQueryStart reports whether the current token begins a query block.
func (p *parser) atQueryStart() bool {
	return p.at("SELECT") || p.at("FROM") || p.at("PIVOT")
}

// parseQueryExpr parses a query expression: one or more query terms
// combined with UNION/EXCEPT/INTERSECT, or a plain expression.
func (p *parser) parseQueryExpr() (ast.Expr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.at("UNION"):
			op = "UNION"
		case p.at("EXCEPT"):
			op = "EXCEPT"
		case p.at("INTERSECT"):
			op = "INTERSECT"
		default:
			return left, nil
		}
		pos := p.next().Pos
		all := p.accept("ALL")
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &ast.SetOp{Op: op, All: all, L: left, R: right}
		setPos(left, pos)
	}
}

func (p *parser) parseQueryTerm() (ast.Expr, error) {
	if p.at("WITH") {
		return p.parseWith()
	}
	if p.atQueryStart() {
		return p.parseQueryBlock()
	}
	return p.parseExpr()
}

// parseWith parses "WITH name AS (query), ... body".
func (p *parser) parseWith() (ast.Expr, error) {
	pos := p.next().Pos // WITH
	w := &ast.With{}
	setPos(w, pos)
	for {
		namePos := p.peek().Pos
		name, err := p.expectIdent("WITH binding name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("AS"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		w.Bindings = append(w.Bindings, ast.WithBinding{Name: name, NamePos: namePos, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	body, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	w.Body = body
	return w, nil
}

// parseQueryBlock parses an SFW block (SELECT-first or FROM-first) or a
// PIVOT query.
func (p *parser) parseQueryBlock() (ast.Expr, error) {
	switch {
	case p.at("PIVOT"):
		return p.parsePivot()
	case p.at("SELECT"):
		q := &ast.SFW{}
		setPos(q, p.peek().Pos)
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
		if err := p.parseFromTail(q); err != nil {
			return nil, err
		}
		if err := p.parseOrderLimit(q); err != nil {
			return nil, err
		}
		return q, nil
	case p.at("FROM"):
		q := &ast.SFW{SelectLast: true}
		setPos(q, p.peek().Pos)
		if err := p.parseFromTail(q); err != nil {
			return nil, err
		}
		if !p.at("SELECT") {
			return nil, p.errf(p.peek().Pos, "expected SELECT clause to end FROM-first query block")
		}
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
		if err := p.parseOrderLimit(q); err != nil {
			return nil, err
		}
		return q, nil
	}
	return nil, p.errf(p.peek().Pos, "expected query block")
}

// parseFromTail parses FROM, LET, WHERE, GROUP BY and HAVING clauses into
// q, all optional.
func (p *parser) parseFromTail(q *ast.SFW) error {
	if p.at("FROM") {
		p.next()
		items, err := p.parseFromList()
		if err != nil {
			return err
		}
		q.From = items
	}
	for p.at("LET") {
		p.next()
		for {
			namePos := p.peek().Pos
			name, err := p.expectIdent("LET variable")
			if err != nil {
				return err
			}
			if _, err := p.expect("="); err != nil {
				return err
			}
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			q.Lets = append(q.Lets, ast.LetBinding{Name: name, NamePos: namePos, Expr: e})
			if !p.accept(",") {
				break
			}
		}
	}
	if p.at("WHERE") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Where = e
	}
	if p.at("GROUP") {
		g, err := p.parseGroupBy()
		if err != nil {
			return err
		}
		q.GroupBy = g
	}
	if p.at("HAVING") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Having = e
	}
	return nil
}

func (p *parser) parseGroupBy() (*ast.GroupBy, error) {
	pos := p.peek().Pos
	p.next() // GROUP
	if _, err := p.expect("BY"); err != nil {
		return nil, err
	}
	g := &ast.GroupBy{}
	setPos(g, pos)
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		key := ast.GroupKey{Expr: e}
		if p.accept("AS") {
			aliasPos := p.peek().Pos
			alias, err := p.expectIdent("group key alias")
			if err != nil {
				return nil, err
			}
			key.Alias, key.AliasPos = alias, aliasPos
		}
		g.Keys = append(g.Keys, key)
		if !p.accept(",") {
			break
		}
	}
	if p.at("GROUP") && p.atOffset(1, "AS") {
		p.next()
		p.next()
		namePos := p.peek().Pos
		name, err := p.expectIdent("GROUP AS variable")
		if err != nil {
			return nil, err
		}
		g.GroupAs, g.GroupAsPos = name, namePos
	}
	return g, nil
}

// parseOrderLimit parses ORDER BY, LIMIT and OFFSET.
func (p *parser) parseOrderLimit(q *ast.SFW) error {
	if p.at("ORDER") {
		p.next()
		if _, err := p.expect("BY"); err != nil {
			return err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return err
		}
		q.OrderBy = items
	}
	if p.accept("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Limit = e
	}
	if p.accept("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Offset = e
	}
	return nil
}

func (p *parser) parseSelectClause(q *ast.SFW) error {
	if _, err := p.expect("SELECT"); err != nil {
		return err
	}
	if p.accept("DISTINCT") {
		q.Select.Distinct = true
	} else {
		p.accept("ALL")
	}
	if p.accept("VALUE") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Select.Value = e
		return nil
	}
	if p.at("*") {
		p.next()
		q.Select.Star = true
		return nil
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Select.Items = append(q.Select.Items, item)
		if !p.accept(",") {
			break
		}
	}
	return nil
}

func (p *parser) parseSelectItem() (ast.SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	// "expr.*" — the path parser stops before ".*".
	if p.at(".") && p.atOffset(1, "*") {
		p.next()
		p.next()
		return ast.SelectItem{StarOf: e}, nil
	}
	item := ast.SelectItem{Expr: e}
	switch {
	case p.accept("AS"):
		alias, err := p.expectAliasName()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias, item.HasAlias = alias, true
	case p.peek().Type == lexer.Ident || p.peek().Type == lexer.QuotedIdent:
		item.Alias, item.HasAlias = p.next().Text, true
	default:
		item.Alias = implicitAlias(e)
	}
	return item, nil
}

// expectAliasName is like expectIdent but also accepts a string literal
// ("AS 'name'" appears in some dialects) and quoted identifiers.
func (p *parser) expectAliasName() (string, error) {
	tok := p.peek()
	switch tok.Type {
	case lexer.Ident, lexer.QuotedIdent, lexer.StringLit:
		p.next()
		return tok.Text, nil
	}
	return "", p.errf(tok.Pos, "expected alias name, found %q", tok.Text)
}

// implicitAlias derives the output attribute name of an unaliased SELECT
// item: the last path step for variable and navigation expressions, or ""
// (meaning a positional name is assigned later) otherwise.
func implicitAlias(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.VarRef:
		return x.Name
	case *ast.FieldAccess:
		return x.Name
	case *ast.NamedRef:
		parts := strings.Split(x.Name, ".")
		return parts[len(parts)-1]
	}
	return ""
}

// parseFromList parses comma-separated FROM items, each a join chain.
func (p *parser) parseFromList() ([]ast.FromItem, error) {
	var items []ast.FromItem
	for {
		item, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.accept(",") {
			return items, nil
		}
	}
}

func (p *parser) parseJoinChain() (ast.FromItem, error) {
	left, err := p.parseFromUnit()
	if err != nil {
		return nil, err
	}
	for {
		var kind ast.JoinKind
		pos := p.peek().Pos
		switch {
		case p.at("JOIN"):
			p.next()
			kind = ast.JoinInner
		case p.at("INNER") && p.atOffset(1, "JOIN"):
			p.next()
			p.next()
			kind = ast.JoinInner
		case p.at("LEFT"):
			p.next()
			p.accept("OUTER")
			if _, err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinLeft
		case p.at("CROSS") && p.atOffset(1, "JOIN"):
			p.next()
			p.next()
			kind = ast.JoinCross
		default:
			return left, nil
		}
		right, err := p.parseFromUnit()
		if err != nil {
			return nil, err
		}
		join := &ast.FromJoin{Kind: kind, Left: left, Right: right}
		setPos(join, pos)
		if kind != ast.JoinCross {
			onTok, err := p.expect("ON")
			if err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = on
			join.OnPos = onTok.Pos
		}
		left = join
	}
}

func (p *parser) parseFromUnit() (ast.FromItem, error) {
	pos := p.peek().Pos
	if p.accept("UNPIVOT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("AS"); err != nil {
			return nil, err
		}
		valueVar, err := p.expectIdent("UNPIVOT value variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("AT"); err != nil {
			return nil, err
		}
		nameVar, err := p.expectIdent("UNPIVOT name variable")
		if err != nil {
			return nil, err
		}
		u := &ast.FromUnpivot{Expr: e, ValueVar: valueVar, NameVar: nameVar}
		setPos(u, pos)
		return u, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &ast.FromExpr{Expr: e}
	setPos(item, pos)
	switch {
	case p.accept("AS"):
		name, err := p.expectIdent("FROM alias")
		if err != nil {
			return nil, err
		}
		item.As = name
	case p.peek().Type == lexer.Ident || p.peek().Type == lexer.QuotedIdent:
		item.As = p.next().Text
	default:
		item.As = implicitAlias(e)
		if item.As == "" {
			return nil, p.errf(pos, "FROM item requires an AS alias")
		}
	}
	if p.accept("AT") {
		name, err := p.expectIdent("AT ordinal variable")
		if err != nil {
			return nil, err
		}
		item.AtVar = name
	}
	return item, nil
}

func (p *parser) parsePivot() (ast.Expr, error) {
	pos := p.peek().Pos
	p.next() // PIVOT
	valueExpr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("AT"); err != nil {
		return nil, err
	}
	nameExpr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// Reuse the SFW tail machinery via a scratch block.
	scratch := &ast.SFW{}
	if !p.at("FROM") {
		return nil, p.errf(p.peek().Pos, "expected FROM clause in PIVOT query")
	}
	if err := p.parseFromTail(scratch); err != nil {
		return nil, err
	}
	q := &ast.PivotQuery{
		Value:   valueExpr,
		Name:    nameExpr,
		From:    scratch.From,
		Lets:    scratch.Lets,
		Where:   scratch.Where,
		GroupBy: scratch.GroupBy,
		Having:  scratch.Having,
	}
	setPos(q, pos)
	return q, nil
}

// setPos stores pos into any node embedding ast's position record.
func setPos(n ast.Node, pos lexer.Pos) {
	type positioned interface{ SetPos(lexer.Pos) }
	if s, ok := n.(positioned); ok {
		s.SetPos(pos)
	}
}

// literal builds a literal node at pos.
func literal(v value.Value, pos lexer.Pos) *ast.Literal {
	l := &ast.Literal{Val: v}
	setPos(l, pos)
	return l
}

// parseIntLit converts integer literal text, falling back to float on
// overflow.
func parseIntLit(text string, pos lexer.Pos) (value.Value, error) {
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return value.Int(i), nil
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, &Error{Pos: pos, Msg: "invalid numeric literal " + text}
	}
	return value.Float(f), nil
}
