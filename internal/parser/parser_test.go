package parser

import (
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/value"
)

// reformat parses and formats, as a canonical-form check.
func reformat(t *testing.T, src string) string {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return ast.Format(e)
}

// TestParseFormatFixpoint checks that formatting a parsed query yields
// text that re-parses to the identical formatted text (a fixpoint), for
// a broad sample of the grammar.
func TestParseFormatFixpoint(t *testing.T) {
	queries := []string{
		`SELECT e.name AS emp_name, p.name AS proj_name FROM hr.emp AS e, e.projects AS p WHERE p.name LIKE '%Security%'`,
		`SELECT VALUE {'a': 1, 'b': [1, 2], 'c': <<3>>}`,
		`FROM t AS x WHERE x.a > 1 GROUP BY LOWER(x.b) AS b GROUP AS g HAVING COUNT(*) > 2 SELECT b AS b ORDER BY b DESC NULLS LAST LIMIT 10 OFFSET 2`,
		`SELECT * FROM t AS x`,
		`SELECT x.* , 1 AS one FROM t AS x`,
		`SELECT DISTINCT x.a FROM t AS x`,
		`PIVOT sp.price AT sp.symbol FROM prices AS sp WHERE sp.price > 0`,
		`SELECT c."date" AS "date", sym AS symbol FROM closing_prices AS c, UNPIVOT c AS price AT sym`,
		`SELECT a.x FROM t AS a LEFT JOIN u AS b ON a.id = b.id`,
		`SELECT a.x FROM t AS a CROSS JOIN u AS b`,
		`SELECT VALUE CASE WHEN x.a IS NOT NULL THEN 1 ELSE 2 END FROM t AS x`,
		`SELECT VALUE CASE x.k WHEN 1 THEN 'one' END FROM t AS x`,
		`SELECT VALUE x.a BETWEEN 1 AND 10 FROM t AS x`,
		`SELECT VALUE x.a NOT IN (1, 2, 3) FROM t AS x`,
		`SELECT VALUE x.a IN (SELECT VALUE y.b FROM u AS y) FROM t AS x`,
		`SELECT VALUE EXISTS (SELECT VALUE 1 FROM u AS y) FROM t AS x`,
		`SELECT VALUE NOT (x.a OR x.b) AND x.c FROM t AS x`,
		`SELECT VALUE -x.a * (x.b + 2) % 3 FROM t AS x`,
		`SELECT VALUE x.a || '-' || x.b FROM t AS x`,
		`SELECT VALUE t.items[0].name FROM orders AS t`,
		`SELECT VALUE t.items[t.i + 1] FROM orders AS t`,
		`(SELECT VALUE a.x FROM t AS a) UNION ALL (SELECT VALUE b.y FROM u AS b)`,
		`SELECT VALUE x.a FROM t AS x AT i`,
		`SELECT VALUE v FROM t AS x LET v = x.a * 2 WHERE v > 3`,
		`SELECT VALUE x.a IS MISSING FROM t AS x`,
		`SELECT VALUE x.a LIKE '%a\%' ESCAPE '\' FROM t AS x`,
		`SELECT VALUE CAST(x.a AS INT) FROM t AS x`,
		`SELECT VALUE COLL_AVG(SELECT VALUE y.s FROM x.ys AS y) FROM t AS x`,
		`SELECT x.a, ROW_NUMBER() OVER (PARTITION BY x.k ORDER BY x.a DESC) AS rn FROM t AS x`,
		`SELECT VALUE SUM(x.a) OVER (ORDER BY x.b NULLS LAST) FROM t AS x`,
		`WITH c AS (SELECT VALUE x.a FROM t AS x), d AS (SELECT VALUE 1) SELECT VALUE y FROM c AS y`,
		`SELECT VALUE x.a > ALL (SELECT VALUE y.b FROM u AS y) FROM t AS x`,
		`SELECT VALUE x.a = ANY [1, 2] FROM t AS x`,
	}
	for _, q := range queries {
		once := reformat(t, q)
		twice := reformat(t, once)
		if once != twice {
			t.Errorf("format not a fixpoint:\n  src:   %s\n  once:  %s\n  twice: %s", q, once, twice)
		}
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"1 + 2 * 3", "(1 + (2 * 3))"},
		{"1 * 2 + 3", "((1 * 2) + 3)"},
		{"1 - 2 - 3", "((1 - 2) - 3)"},
		{"a = 1 AND b = 2 OR c = 3", "(((a = 1) AND (b = 2)) OR (c = 3))"},
		{"NOT a = 1", "NOT (a = 1)"},
		{"- 2 + 3", "(-2 + 3)"},
		{"'a' || 'b' = 'ab'", "(('a' || 'b') = 'ab')"},
		{"1 < 2 = true", "((1 < 2) = true)"},
		{"1 != 2", "(1 <> 2)"},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := ast.Format(e); got != c.want {
			t.Errorf("Parse(%q) formats to %s, want %s", c.src, got, c.want)
		}
	}
}

func TestSelectLastBlock(t *testing.T) {
	e := MustParse(`FROM t AS x WHERE x.a SELECT VALUE x.b`)
	q, ok := e.(*ast.SFW)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if !q.SelectLast {
		t.Error("SelectLast should be recorded")
	}
	if q.Select.Value == nil {
		t.Error("SELECT VALUE expected")
	}
}

func TestImplicitAliases(t *testing.T) {
	e := MustParse(`SELECT e.name, salary FROM hr.emp AS e`)
	q := e.(*ast.SFW)
	if q.Select.Items[0].Alias != "name" {
		t.Errorf("path item alias = %q, want name", q.Select.Items[0].Alias)
	}
	if q.Select.Items[1].Alias != "salary" {
		t.Errorf("bare item alias = %q, want salary", q.Select.Items[1].Alias)
	}
	// Unaliased FROM path derives the last segment.
	e2 := MustParse(`SELECT VALUE 1 FROM hr.emp`)
	q2 := e2.(*ast.SFW)
	if q2.From[0].(*ast.FromExpr).As != "emp" {
		t.Errorf("implicit FROM alias = %q, want emp", q2.From[0].(*ast.FromExpr).As)
	}
	// Bare alias without AS.
	e3 := MustParse(`SELECT VALUE 1 FROM closing_prices c`)
	q3 := e3.(*ast.SFW)
	if q3.From[0].(*ast.FromExpr).As != "c" {
		t.Errorf("bare FROM alias = %q, want c", q3.From[0].(*ast.FromExpr).As)
	}
}

func TestLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want value.Value
	}{
		{"1", value.Int(1)},
		{"1.5", value.Float(1.5)},
		{"'x'", value.String("x")},
		{"TRUE", value.True},
		{"null", value.Null},
		{"MISSING", value.Missing},
		{"9223372036854775808", value.Float(9.223372036854776e18)}, // int64 overflow
	}
	for _, c := range cases {
		e := MustParse(c.src)
		lit, ok := e.(*ast.Literal)
		if !ok {
			t.Errorf("Parse(%q) = %T, want literal", c.src, e)
			continue
		}
		if !value.DeepEqual(lit.Val, c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.src, lit.Val, c.want)
		}
	}
}

func TestBagConstructors(t *testing.T) {
	for _, src := range []string{"{{1, 2}}", "<<1, 2>>"} {
		e := MustParse(src)
		bag, ok := e.(*ast.BagCtor)
		if !ok || len(bag.Elems) != 2 {
			t.Errorf("Parse(%q) = %#v", src, e)
		}
	}
	if _, ok := MustParse("{{}}").(*ast.BagCtor); !ok {
		t.Error("empty doubled-brace bag should parse")
	}
	// Single braces with name:value is a tuple.
	if _, ok := MustParse("{'a': 1}").(*ast.TupleCtor); !ok {
		t.Error("tuple constructor expected")
	}
}

func TestCountStarAndDistinctArg(t *testing.T) {
	e := MustParse("COUNT(*)")
	c := e.(*ast.Call)
	if !c.Star || c.Name != "COUNT" {
		t.Errorf("COUNT(*) = %+v", c)
	}
	e2 := MustParse("COUNT(DISTINCT x)")
	c2 := e2.(*ast.Call)
	if !c2.Distinct || len(c2.Args) != 1 {
		t.Errorf("COUNT(DISTINCT x) = %+v", c2)
	}
}

func TestGroupByGroupAs(t *testing.T) {
	e := MustParse(`FROM t AS x GROUP BY LOWER(x.p) AS p, x.q GROUP AS g SELECT VALUE p`)
	q := e.(*ast.SFW)
	if q.GroupBy == nil || len(q.GroupBy.Keys) != 2 {
		t.Fatalf("group by = %+v", q.GroupBy)
	}
	if q.GroupBy.Keys[0].Alias != "p" || q.GroupBy.Keys[1].Alias != "" {
		t.Errorf("key aliases = %q, %q", q.GroupBy.Keys[0].Alias, q.GroupBy.Keys[1].Alias)
	}
	if q.GroupBy.GroupAs != "g" {
		t.Errorf("GROUP AS = %q", q.GroupBy.GroupAs)
	}
}

func TestKeywordsAsAttributeNames(t *testing.T) {
	// Keywords after '.' act as attribute names (lower-cased).
	e := MustParse(`SELECT VALUE t.value FROM u AS t`)
	q := e.(*ast.SFW)
	fa := q.Select.Value.(*ast.FieldAccess)
	if fa.Name != "value" {
		t.Errorf("attribute name = %q", fa.Name)
	}
	// Quoted identifiers preserve case and reservation.
	e2 := MustParse(`SELECT VALUE t."DATE" FROM u AS t`)
	fa2 := e2.(*ast.SFW).Select.Value.(*ast.FieldAccess)
	if fa2.Name != "DATE" {
		t.Errorf("quoted attribute name = %q", fa2.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"SELECT",                        // missing items
		"SELECT 1 FROM",                 // missing FROM item
		"FROM t AS x",                   // FROM-first block without SELECT
		"SELECT 1 FROM t AS x WHERE",    // missing condition
		"SELECT 1 extra garbage ,",      // trailing junk
		"SELECT VALUE (1",               // unbalanced paren
		"SELECT VALUE {\"a\" 1}",        // missing colon
		"SELECT VALUE CASE END",         // CASE without WHEN
		"SELECT VALUE x NOT 5",          // NOT without LIKE/BETWEEN/IN
		"SELECT VALUE 1 ORDER BY",       // incomplete ORDER BY
		"SELECT VALUE a.b. FROM t",      // dangling dot
		"PIVOT a.b AT a.c",              // PIVOT without FROM
		"SELECT 1 FROM t AS x GROUP BY", // incomplete GROUP BY
		"SELECT VALUE [1, ",             // unterminated array
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT VALUE x FROM t AS x WHERE !!")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "1:34") {
		t.Errorf("error should carry position 1:34: %v", err)
	}
}

func TestSemicolonTolerated(t *testing.T) {
	if _, err := Parse("SELECT VALUE 1;"); err != nil {
		t.Errorf("trailing semicolon should parse: %v", err)
	}
	if _, err := Parse("SELECT VALUE 1; SELECT VALUE 2"); err == nil {
		t.Error("two statements should not parse as one query")
	}
}

func TestSetOps(t *testing.T) {
	e := MustParse(`SELECT VALUE 1 UNION SELECT VALUE 2 EXCEPT SELECT VALUE 3`)
	top, ok := e.(*ast.SetOp)
	if !ok || top.Op != "EXCEPT" {
		t.Fatalf("top = %#v", e)
	}
	left, ok := top.L.(*ast.SetOp)
	if !ok || left.Op != "UNION" {
		t.Fatalf("set ops should be left-associative, got %#v", top.L)
	}
	e2 := MustParse(`SELECT VALUE 1 UNION ALL SELECT VALUE 2`)
	if !e2.(*ast.SetOp).All {
		t.Error("UNION ALL should set All")
	}
}

func TestPivotQueryShape(t *testing.T) {
	e := MustParse(`PIVOT dp.price AT dp.symbol FROM dates AS dp WHERE dp.price > 0 GROUP BY dp.k AS k`)
	p, ok := e.(*ast.PivotQuery)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if p.Where == nil || p.GroupBy == nil || len(p.From) != 1 {
		t.Errorf("pivot pieces missing: %+v", p)
	}
}
