package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// fragmentPool mixes keywords, symbols, literals, and junk; the parser
// must return an error or a tree for any arrangement — never panic.
var fragmentPool = []string{
	"SELECT", "VALUE", "FROM", "WHERE", "GROUP", "BY", "AS", "AT",
	"HAVING", "ORDER", "LIMIT", "OFFSET", "PIVOT", "UNPIVOT", "CASE",
	"WHEN", "THEN", "ELSE", "END", "AND", "OR", "NOT", "IN", "BETWEEN",
	"LIKE", "IS", "NULL", "MISSING", "UNION", "ALL", "JOIN", "LEFT",
	"ON", "EXISTS", "WITH", "OVER", "PARTITION", "DISTINCT",
	"(", ")", "[", "]", "{", "}", "{{", "}}", "<<", ">>", ",", ".", ";",
	"*", "/", "%", "+", "-", "=", "<>", "<", "<=", ">", ">=", "||", ":",
	"x", "y", "emp", "hr", "'str'", "''", "42", "1.5", "1e3",
	`"quoted id"`, "COUNT", "AVG", "COLL_SUM", "true", "false",
}

func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(24)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragmentPool[r.Intn(len(fragmentPool))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", src, p)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestParserTruncations: every prefix of a complex valid query must fail
// cleanly or parse, never panic or hang.
func TestParserTruncations(t *testing.T) {
	src := `WITH c AS (SELECT VALUE x.a FROM t AS x)
	        SELECT e.name AS n,
	               RANK() OVER (PARTITION BY e.k ORDER BY e.v DESC) AS r,
	               (PIVOT p.v AT p.k FROM e.ps AS p) AS piv
	        FROM hr.emp AS e, c AS cc
	        WHERE e.v BETWEEN 1 AND 10 AND e.name LIKE 'a%' ESCAPE '!'
	        GROUP BY e.k AS k GROUP AS g
	        HAVING COUNT(*) > 1
	        ORDER BY k DESC NULLS LAST LIMIT 5 OFFSET 1`
	if _, err := Parse(src); err != nil {
		t.Fatalf("the full query should parse: %v", err)
	}
	for i := 0; i < len(src); i++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on truncation at %d: %v", i, p)
				}
			}()
			_, _ = Parse(src[:i])
		}()
	}
}

// TestDeepNestingTerminates: heavily nested expressions parse (or error)
// without stack exhaustion at reasonable depths.
func TestDeepNestingTerminates(t *testing.T) {
	depth := 2000
	src := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep parens should parse: %v", err)
	}
	arr := strings.Repeat("[", depth) + "1" + strings.Repeat("]", depth)
	if _, err := Parse(arr); err != nil {
		t.Fatalf("deep arrays should parse: %v", err)
	}
}
