package plan

// Cost-based planning over collection statistics (internal/stats).
//
// Everything here runs at plan time and is advisory: decisions choose
// among physically equivalent strategies (all predicates stay as verify
// filters, reordered joins restore written production order — see
// reorder.go), so a misestimate can cost time but never correctness.
//
// The cost model is deliberately small. For a candidate join order the
// planner walks the steps keeping a running estimated intermediate
// cardinality:
//
//   - a step with an applicable equi-conjunct against already-placed
//     variables executes as a hash probe: cost += buildWeight·rows(t)
//     (building its table) + the current intermediate (probing);
//   - a step with no such link is a nested rescan:
//     cost += intermediate·rows(t) — the quadratic blowup the reorder
//     exists to dodge;
//   - after placing, intermediate ·= rows(t) · Π selectivity of every
//     conjunct that just became applicable. Equality with a sampled
//     literal is exact (small collections are fully sampled); equi-join
//     edges use |L|·|R|/max(NDV_L, NDV_R); ranges use the
//     distinct-value sample; anything else gets the classic 1/3.
//
// Reordering only fires when the written order is expensive in absolute
// terms (reorderMinCost) and the greedy order wins by a real margin
// (reorderGain), so small catalogs and already-good orders keep their
// written plans — and their existing golden explain trees.

import (
	"fmt"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/stats"
	"sqlpp/internal/value"
)

// StatsSource answers plan-time statistics questions; the catalog
// implements it. A nil source (or a nil result for a name) disables
// cost-based decisions and leaves the heuristic plan untouched.
type StatsSource interface {
	StatsFor(name string) *stats.Collection
}

var (
	// reorderMinCost is the estimated written-order cost below which
	// join reordering never fires (vars so tests can lower them).
	reorderMinCost = 4096.0
	// reorderGain is the required written/greedy cost ratio.
	reorderGain = 2.0
	// indexVetoMinRows is the collection size below which a planned
	// index access is always kept (probing tiny collections is free and
	// existing plans stay stable).
	indexVetoMinRows = int64(1024)
	// indexVetoFraction is the estimated selectivity above which a scan
	// beats an index probe (a probe visits candidates out of band and
	// re-verifies; past ~a quarter of the collection the scan's locality
	// wins).
	indexVetoFraction = 0.25
)

const (
	buildWeight = 2.0 // hash-table build cost per row, relative to a probe
	defaultSel  = 1.0 / 3.0
	minSel      = 1e-6
)

// reorderExec is the runtime contract of a reordered FROM chain, stored
// on the physical plan: execution runs the steps in their new order and
// the reorder buffer (reorder.go) restores written production order.
type reorderExec struct {
	// perm maps executed step position -> written step position.
	perm []int
	// newPosOf maps written step position -> executed step position.
	newPosOf []int
	// label names the executed order for notes and EXPLAIN ("s,m,l").
	label string
}

// leafInfo is one reorderable FROM leaf: a plain scan of a named,
// statistics-covered collection.
type leafInfo struct {
	item *ast.FromExpr
	name string // collection name
	vars map[string]bool
	rows float64
	st   *stats.Collection
}

// costConjunct is one WHERE/ON conjunct as the cost model sees it.
type costConjunct struct {
	expr   ast.Expr
	leaves []int   // leaf indices with free variables in the conjunct
	sel    float64 // selectivity when it becomes applicable
	equi   bool    // splits as an equi edge between exactly two leaves
}

// reorderResult is planJoinOrder's verdict: the flattened leaves in
// executed order, ON conjuncts promoted into the pushdown pool, the
// runtime permutation, and the notes describing the decision.
type reorderResult struct {
	items []ast.FromItem
	on    []ast.Expr
	exec  *reorderExec
	notes []string
}

// planJoinOrder decides whether to run the block's FROM chain in a
// cheaper order. It returns nil (leave the written plan alone) unless
// every top-level item flattens to NamedRef scans over statistics-
// covered collections through inner joins, the bindings are distinct,
// and the greedy order beats the written one past both thresholds.
// governor:bounded by the number of FROM items in the query text
func planJoinOrder(q *ast.SFW, o OptOptions, pool []ast.Expr, late map[string]bool) *reorderResult {
	var leaves []*ast.FromExpr
	var on []ast.Expr
	for _, item := range q.From {
		if !flattenInnerJoins(item, &leaves, &on) {
			return nil
		}
	}
	if len(leaves) < 2 {
		return nil
	}
	// Distinct binding names: reordering re-nests scopes, which is only
	// transparent when no step shadows another.
	seen := map[string]bool{}
	for _, l := range leaves {
		for _, v := range ast.ItemVars(l) {
			if v == "" || seen[v] {
				return nil
			}
			seen[v] = true
		}
	}
	infos := make([]leafInfo, len(leaves))
	for i, l := range leaves {
		ref, ok := l.Expr.(*ast.NamedRef)
		if !ok {
			return nil
		}
		st := o.Stats.StatsFor(ref.Name)
		if st == nil {
			return nil
		}
		infos[i] = leafInfo{item: l, name: ref.Name, vars: nameSet(ast.ItemVars(l)), rows: float64(st.Rows()), st: st}
	}
	conj := classifyConjuncts(infos, append(append([]ast.Expr(nil), pool...), on...), late)

	written := make([]int, len(infos))
	for i := range written {
		written[i] = i
	}
	costW, _ := orderCost(infos, conj, written)
	greedy := greedyOrder(infos, conj)
	costG, ests := orderCost(infos, conj, greedy)
	identity := true
	for i, p := range greedy {
		if p != i {
			identity = false
		}
	}
	if identity || costW < reorderMinCost || costG*reorderGain > costW {
		return nil
	}

	items := make([]ast.FromItem, len(greedy))
	labels := make([]string, len(greedy))
	estParts := make([]string, len(greedy))
	newPosOf := make([]int, len(greedy))
	for newPos, writtenPos := range greedy {
		items[newPos] = infos[writtenPos].item
		labels[newPos] = infos[writtenPos].item.As
		estParts[newPos] = fmt.Sprintf("%s=%d", infos[writtenPos].item.As, int64(ests[newPos]))
		newPosOf[writtenPos] = newPos
	}
	label := strings.Join(labels, ",")
	return &reorderResult{
		items: items,
		on:    on,
		exec:  &reorderExec{perm: greedy, newPosOf: newPosOf, label: label},
		notes: []string{
			fmt.Sprintf("join-order(%s cost=%d vs written=%d)", label, int64(costG), int64(costW)),
			fmt.Sprintf("est-rows(%s)", strings.Join(estParts, ",")),
		},
	}
}

// flattenInnerJoins decomposes item into NamedRef scan leaves connected
// by inner joins, collecting the ON conditions' conjuncts. Anything
// else (LEFT joins, unpivots, subquery sources) refuses the flatten.
// governor:bounded by the number of FROM items in the query text
func flattenInnerJoins(item ast.FromItem, leaves *[]*ast.FromExpr, on *[]ast.Expr) bool {
	switch x := item.(type) {
	case *ast.FromExpr:
		if _, ok := x.Expr.(*ast.NamedRef); !ok {
			return false
		}
		*leaves = append(*leaves, x)
		return true
	case *ast.FromJoin:
		if x.Kind != ast.JoinInner || x.On == nil {
			return false
		}
		if !flattenInnerJoins(x.Left, leaves, on) || !flattenInnerJoins(x.Right, leaves, on) {
			return false
		}
		*on = append(*on, conjuncts(x.On)...)
		return true
	}
	return false
}

// classifyConjuncts maps each costable conjunct onto the leaves it
// touches and estimates its selectivity. Conjuncts over LET/window
// names are residual and never costed.
// governor:bounded by the number of WHERE conjuncts in the query text
func classifyConjuncts(infos []leafInfo, pool []ast.Expr, late map[string]bool) []costConjunct {
	var out []costConjunct
	for _, c := range pool {
		fv := ast.FreeVars(c)
		if intersects(fv, late) {
			continue
		}
		cc := costConjunct{expr: c, sel: defaultSel}
		for i := range infos {
			if intersects(fv, infos[i].vars) {
				cc.leaves = append(cc.leaves, i)
			}
		}
		switch len(cc.leaves) {
		case 0:
			continue // pre-filter; no bearing on join order
		case 1:
			cc.sel = localSelectivity(&infos[cc.leaves[0]], c)
		case 2:
			if sel, ok := equiSelectivity(infos, cc.leaves[0], cc.leaves[1], c); ok {
				cc.equi, cc.sel = true, sel
			}
		}
		if cc.sel < minSel {
			cc.sel = minSel
		}
		if cc.sel > 1 {
			cc.sel = 1
		}
		out = append(out, cc)
	}
	return out
}

// localSelectivity estimates a single-leaf filter conjunct.
func localSelectivity(leaf *leafInfo, c ast.Expr) float64 {
	if path, probe := matchEqConjunct(c, leaf.item.As, leaf.vars); path != nil {
		if lit, ok := literalOf(probe); ok {
			if frac, ok := leaf.st.EqFraction(path, lit); ok {
				return frac
			}
		}
		if ndv, ok := leaf.st.NDV(path); ok && ndv > 0 {
			return 1 / ndv
		}
		return defaultSel
	}
	if path, lo, hi, loIncl, hiIncl := matchRangeConjunct(c, leaf.item.As, leaf.vars); path != nil {
		loLit, loOK := literalOf(lo)
		hiLit, hiOK := literalOf(hi)
		if (lo == nil || loOK) && (hi == nil || hiOK) {
			var loV, hiV value.Value
			if loOK {
				loV = loLit
			}
			if hiOK {
				hiV = hiLit
			}
			if frac, ok := leaf.st.RangeFraction(path, loV, hiV, loIncl, hiIncl); ok {
				return frac
			}
		}
	}
	return defaultSel
}

// equiSelectivity estimates an equi-join edge between leaves a and b as
// 1/max(NDV_a, NDV_b) when both sides are key paths over their leaves.
func equiSelectivity(infos []leafInfo, a, b int, c ast.Expr) (float64, bool) {
	eq, ok := c.(*ast.Binary)
	if !ok || eq.Op != "=" {
		return 0, false
	}
	ndv := func(leaf *leafInfo, e ast.Expr) (float64, bool) {
		if path := fieldPath(e, leaf.item.As); path != nil {
			if n, ok := leaf.st.NDV(path); ok {
				return n, true
			}
		}
		return 0, false
	}
	maxNDV := 1.0
	found := false
	for _, side := range []ast.Expr{eq.L, eq.R} {
		for _, li := range []int{a, b} {
			if n, ok := ndv(&infos[li], side); ok {
				found = true
				if n > maxNDV {
					maxNDV = n
				}
			}
		}
	}
	if !found {
		return 0, false
	}
	return 1 / maxNDV, true
}

// literalOf unwraps a constant expression to its value.
func literalOf(e ast.Expr) (value.Value, bool) {
	if l, ok := e.(*ast.Literal); ok {
		return l.Val, true
	}
	return nil, false
}

// orderCost walks one candidate order through the cost model, returning
// the total cost and the estimated intermediate cardinality after each
// step.
// governor:bounded by the number of FROM items in the query text
func orderCost(infos []leafInfo, conj []costConjunct, order []int) (float64, []float64) {
	placed := make([]bool, len(infos))
	used := make([]bool, len(conj))
	inter := 1.0
	cost := 0.0
	ests := make([]float64, len(order))
	for oi, li := range order {
		stepCost, newInter := placeStep(infos, conj, placed, used, li, inter, oi == 0)
		cost += stepCost
		inter = newInter
		ests[oi] = inter
		placed[li] = true
		markUsed(conj, placed, used, li)
	}
	return cost, ests
}

// placeStep prices adding leaf li to the placed set without mutating it.
func placeStep(infos []leafInfo, conj []costConjunct, placed, used []bool, li int, inter float64, first bool) (stepCost, newInter float64) {
	rows := infos[li].rows
	linked := false
	sel := 1.0
	for ci := range conj {
		if used[ci] || !applicableWith(&conj[ci], placed, li) {
			continue
		}
		sel *= conj[ci].sel
		if conj[ci].equi && len(conj[ci].leaves) == 2 && !first {
			linked = true
		}
	}
	effInter := inter
	if effInter < 1 {
		effInter = 1
	}
	if first {
		stepCost = rows
	} else if linked {
		stepCost = buildWeight*rows + effInter
	} else {
		stepCost = effInter * rows
	}
	newInter = inter * rows * sel
	return stepCost, newInter
}

// applicableWith reports whether the conjunct's leaves are all within
// placed ∪ {li}, with li among them.
func applicableWith(c *costConjunct, placed []bool, li int) bool {
	hit := false
	for _, l := range c.leaves {
		if l == li {
			hit = true
			continue
		}
		if !placed[l] {
			return false
		}
	}
	return hit
}

// markUsed retires conjuncts that became applicable when li was placed.
func markUsed(conj []costConjunct, placed []bool, used []bool, li int) {
	for ci := range conj {
		if used[ci] {
			continue
		}
		all := true
		for _, l := range conj[ci].leaves {
			if !placed[l] {
				all = false
				break
			}
		}
		if all {
			used[ci] = true
		}
	}
}

// greedyOrder picks steps smallest-estimated-work-first: at each point
// the leaf minimizing (step cost + resulting intermediate), breaking
// ties toward the written order.
// governor:bounded by the number of FROM items in the query text
func greedyOrder(infos []leafInfo, conj []costConjunct) []int {
	n := len(infos)
	placed := make([]bool, n)
	used := make([]bool, n)
	if len(conj) > 0 {
		used = make([]bool, len(conj))
	}
	inter := 1.0
	var order []int
	for len(order) < n {
		best, bestScore := -1, 0.0
		for li := 0; li < n; li++ {
			if placed[li] {
				continue
			}
			stepCost, newInter := placeStep(infos, conj, placed, used, li, inter, len(order) == 0)
			score := stepCost + newInter
			if best < 0 || score < bestScore {
				best, bestScore = li, score
			}
		}
		_, inter = placeStep(infos, conj, placed, used, best, inter, len(order) == 0)
		placed[best] = true
		markUsed(conj, placed, used, best)
		order = append(order, best)
	}
	return order
}

// annotateEstimates computes best-effort per-step row estimates for the
// final plan (whatever order it ended in) so EXPLAIN ANALYZE can show
// est_rows next to actuals, and records the outer-scan estimate used
// for parallel sizing. Steps without statistics keep estimate -1
// (rendered nowhere).
// governor:bounded by the number of FROM items in the query text
func annotateEstimates(q *ast.SFW, phys *sfwPhys, o OptOptions, itemV []map[string]bool) {
	if o.Stats == nil {
		return
	}
	for i := range phys.steps {
		step := &phys.steps[i]
		x, ref := stepNamedScan(step)
		if x == nil {
			continue
		}
		st := o.Stats.StatsFor(ref.Name)
		if st == nil {
			continue
		}
		rows := st.Rows()
		step.estSrc = rows
		sel := 1.0
		for _, c := range step.filters {
			sel *= localSelectivity(&leafInfo{item: x, name: ref.Name, vars: itemV[i], rows: float64(rows), st: st}, c)
		}
		step.estOut = int64(float64(rows) * sel)
		if h := step.hash; h != nil && h.left == nil {
			// Probe-only comma hash: the step's output is the join of the
			// incoming intermediate with this build side; estimate the
			// build side's contribution via its key NDV.
			step.estOut = rows
		}
		if ia := step.idx; ia != nil {
			ia.estRows = indexProbeEstimate(st, ia)
		}
	}
	// Explicit JOIN steps: estimate build rows and join output where both
	// sides are named scans with statistics.
	for i := range phys.steps {
		step := &phys.steps[i]
		h := step.hash
		if h == nil || h.right == nil {
			continue
		}
		ref, ok := h.right.Expr.(*ast.NamedRef)
		if !ok {
			continue
		}
		bst := o.Stats.StatsFor(ref.Name)
		if bst == nil {
			continue
		}
		h.estBuild = bst.Rows()
		if h.left == nil {
			continue
		}
		lx, lok := h.left.(*ast.FromExpr)
		if !lok {
			continue
		}
		lref, lok := lx.Expr.(*ast.NamedRef)
		if !lok {
			continue
		}
		lst := o.Stats.StatsFor(lref.Name)
		if lst == nil {
			continue
		}
		maxNDV := 1.0
		for j := range h.buildKeys {
			if path := fieldPath(h.buildKeys[j], h.right.As); path != nil {
				if n, ok := bst.NDV(path); ok && n > maxNDV {
					maxNDV = n
				}
			}
			if path := fieldPath(h.probeKeys[j], lx.As); path != nil {
				if n, ok := lst.NDV(path); ok && n > maxNDV {
					maxNDV = n
				}
			}
		}
		h.estOut = int64(float64(lst.Rows()) * float64(bst.Rows()) / maxNDV)
	}
	if phys.parallel {
		if step := &phys.steps[0]; step.estSrc >= 0 {
			phys.scanEst = step.estSrc
		}
	}
}

// stepNamedScan unwraps a step that scans a named collection.
func stepNamedScan(step *fromStep) (*ast.FromExpr, *ast.NamedRef) {
	var x *ast.FromExpr
	if fe, ok := step.item.(*ast.FromExpr); ok {
		x = fe
	} else if step.item == nil && step.hash != nil && step.hash.left == nil {
		x = step.hash.right
	}
	if x == nil {
		return nil, nil
	}
	ref, ok := x.Expr.(*ast.NamedRef)
	if !ok {
		return nil, nil
	}
	return x, ref
}

// indexProbeEstimate prices a planned index access in rows.
func indexProbeEstimate(st *stats.Collection, ia *indexAccess) int64 {
	rows := st.Rows()
	frac := indexAccessFraction(st, ia)
	return int64(float64(rows) * frac)
}

// indexAccessFraction estimates the fraction of the collection an index
// access would return.
func indexAccessFraction(st *stats.Collection, ia *indexAccess) float64 {
	if ia.eq != nil {
		if lit, ok := literalOf(ia.eq); ok {
			if frac, ok := st.EqFraction(ia.path, lit); ok {
				return frac
			}
		}
		if ndv, ok := st.NDV(ia.path); ok && ndv > 0 {
			return 1 / ndv
		}
		return defaultSel
	}
	var lo, hi value.Value
	if l, ok := literalOf(ia.lo); ok {
		lo = l
	} else if ia.lo != nil {
		return defaultSel
	}
	if h, ok := literalOf(ia.hi); ok {
		hi = h
	} else if ia.hi != nil {
		return defaultSel
	}
	if frac, ok := st.RangeFraction(ia.path, lo, hi, ia.loIncl, ia.hiIncl); ok {
		return frac
	}
	return defaultSel
}

// indexWorthIt decides index-vs-scan by estimated selectivity against
// probe cost: on a large collection, an access expected to return more
// than indexVetoFraction of the rows scans instead (the planned access
// is discarded; the pushed filters it came from still apply). Small
// collections always keep their index plans.
func indexWorthIt(src StatsSource, collection string, ia *indexAccess) (keep bool, estRows, rows int64) {
	if src == nil {
		return true, -1, -1
	}
	st := src.StatsFor(collection)
	if st == nil {
		return true, -1, -1
	}
	rows = st.Rows()
	if rows < indexVetoMinRows {
		return true, -1, rows
	}
	frac := indexAccessFraction(st, ia)
	return frac <= indexVetoFraction, int64(frac * float64(rows)), rows
}
