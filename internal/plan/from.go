package plan

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/index"
	"sqlpp/internal/value"
)

// hoistSource evaluates a hoisted (uncorrelated) source once and charges
// its materialization: unlike a streamed scan, a hoisted source is held
// for the lifetime of the block, so its full size counts against the
// governor's materialization budget.
func hoistSource(ctx *eval.Context, outer *eval.Env, expr ast.Expr, srcC eval.CompiledExpr) (value.Value, error) {
	src, err := evalMaybe(ctx, outer, expr, srcC)
	if err != nil {
		return nil, err
	}
	if ctx.Gov != nil {
		n := int64(1)
		switch s := src.(type) {
		case value.Array:
			n = int64(len(s))
		case value.Bag:
			n = int64(len(s))
		}
		if err := ctx.Gov.ChargeValues("hoist", n, src); err != nil {
			return nil, err
		}
	}
	return src, nil
}

// produceFrom streams the binding environments of a FROM clause to k.
// With no FROM items the block evaluates its remaining clauses over a
// single empty binding (SELECT VALUE 1+1 works), matching the functional
// pipeline reading of a query block.
//
// Comma-separated items are correlated cross products: each item's source
// expression is evaluated in the environment produced by the items to its
// left (left correlation, §III).
func produceFrom(ctx *eval.Context, outer *eval.Env, items []ast.FromItem, k emit) error {
	if len(items) == 0 {
		return k(outer.Child())
	}
	return produceItems(ctx, outer, items, 0, k)
}

func produceItems(ctx *eval.Context, env *eval.Env, items []ast.FromItem, i int, k emit) error {
	if i == len(items) {
		return k(env)
	}
	return produceItem(ctx, env, items[i], func(child *eval.Env) error {
		return produceItems(ctx, child, items, i+1, k)
	})
}

// produceItem streams the bindings of a single FROM item, each in a new
// child environment of env.
func produceItem(ctx *eval.Context, env *eval.Env, item ast.FromItem, k emit) error {
	if ctx.Stats != nil {
		n := itemNode(ctx, item)
		inner := k
		k = func(child *eval.Env) error {
			n.AddOut(1)
			return inner(child)
		}
		defer n.Timer()()
	}
	switch x := item.(type) {
	case *ast.FromExpr:
		return produceScan(ctx, env, x, k)
	case *ast.FromUnpivot:
		return produceUnpivot(ctx, env, x, k)
	case *ast.FromJoin:
		return produceJoin(ctx, env, x, k)
	}
	return fmt.Errorf("plan: unknown FROM item %T", item)
}

// produceScan ranges a variable over a source value. SQL++ relaxes the
// SQL rule that sources are collections of tuples: any collection works,
// and its elements bind as-is (§III-A). A non-collection source is a
// single binding in permissive mode and an error in stop-on-error mode;
// a MISSING source produces no bindings.
func produceScan(ctx *eval.Context, env *eval.Env, x *ast.FromExpr, k emit) error {
	src, err := eval.Eval(ctx, env, x.Expr)
	if err != nil {
		return err
	}
	return scanValue(ctx, env, x, src, k)
}

// scanValue binds x's variables over an already-evaluated source value;
// the physical plan reuses it with a hoisted source.
func scanValue(ctx *eval.Context, env *eval.Env, x *ast.FromExpr, src value.Value, k emit) error {
	if ctx.Stats != nil {
		n := itemNode(ctx, x)
		switch s := src.(type) {
		case value.Array:
			n.AddIn(int64(len(s)))
		case value.Bag:
			n.AddIn(int64(len(s)))
		default:
			if src.Kind() != value.KindMissing {
				n.AddIn(1)
			}
		}
	}
	// Scans are the row-production loops of every query block (cross
	// products and joins nest them), so this is where a deadline or
	// cancellation cooperatively stops a runaway query.
	bind := func(v value.Value, ordinal value.Value) error {
		if faultinject.Enabled {
			if err := faultinject.Fire(faultinject.ScanNext); err != nil {
				return err
			}
		}
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		child := env.Child()
		child.Bind(x.As, v)
		if x.AtVar != "" {
			child.Bind(x.AtVar, ordinal)
		}
		return k(child)
	}
	switch s := src.(type) {
	case value.Array:
		for i, v := range s {
			if err := bind(v, value.Int(int64(i))); err != nil {
				return err
			}
		}
		return nil
	case value.Bag:
		// Bags are unordered: AT binds MISSING.
		for _, v := range s {
			if err := bind(v, value.Missing); err != nil {
				return err
			}
		}
		return nil
	default:
		if src.Kind() == value.KindMissing {
			return nil
		}
		if ctx.Mode == eval.StopOnError {
			return &eval.TypeError{Pos: x.Pos(), Op: "FROM", Detail: "source is " + src.Kind().String() + ", not a collection"}
		}
		// Permissive: a non-collection source is a singleton binding.
		return bind(src, value.Missing)
	}
}

// produceUnpivot turns a tuple's attributes into bindings (§VI-A):
// UNPIVOT expr AS v AT n binds v to each attribute value and n to its
// name. In permissive mode a non-tuple source behaves like the tuple
// {'_1': source}; MISSING produces no bindings.
func produceUnpivot(ctx *eval.Context, env *eval.Env, x *ast.FromUnpivot, k emit) error {
	src, err := eval.Eval(ctx, env, x.Expr)
	if err != nil {
		return err
	}
	return unpivotValue(ctx, env, x, src, k)
}

// unpivotValue binds x's variables over an already-evaluated source
// tuple; the physical plan reuses it with a hoisted source.
func unpivotValue(ctx *eval.Context, env *eval.Env, x *ast.FromUnpivot, src value.Value, k emit) error {
	if ctx.Stats != nil {
		n := itemNode(ctx, x)
		if t, ok := src.(*value.Tuple); ok {
			n.AddIn(int64(len(t.Fields())))
		} else if src.Kind() != value.KindMissing {
			n.AddIn(1)
		}
	}
	bind := func(name string, v value.Value) error {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		child := env.Child()
		child.Bind(x.ValueVar, v)
		child.Bind(x.NameVar, value.String(name))
		return k(child)
	}
	switch t := src.(type) {
	case *value.Tuple:
		for _, f := range t.Fields() {
			if err := bind(f.Name, f.Value); err != nil {
				return err
			}
		}
		return nil
	default:
		if src.Kind() == value.KindMissing {
			return nil
		}
		if ctx.Mode == eval.StopOnError {
			return &eval.TypeError{Pos: x.Pos(), Op: "UNPIVOT", Detail: "source is " + src.Kind().String() + ", not a tuple"}
		}
		return bind("_1", src)
	}
}

// produceJoin evaluates an explicit JOIN. The right side is evaluated
// laterally (it may reference left-side variables). LEFT JOIN emits a
// binding with the right side's variables bound to NULL when no right
// binding satisfies the ON condition.
func produceJoin(ctx *eval.Context, env *eval.Env, x *ast.FromJoin, k emit) error {
	var pads *atomic.Int64
	if ctx.Stats != nil && x.Kind == ast.JoinLeft {
		pads = itemNode(ctx, x).Counter("left_pads")
	}
	return produceItem(ctx, env, x.Left, func(left *eval.Env) error {
		matched := false
		err := produceItem(ctx, left, x.Right, func(right *eval.Env) error {
			if x.On != nil {
				cond, err := eval.Eval(ctx, right, x.On)
				if err != nil {
					return err
				}
				if !eval.IsTrue(cond) {
					return nil
				}
			}
			matched = true
			return k(right)
		})
		if err != nil {
			return err
		}
		if !matched && x.Kind == ast.JoinLeft {
			if pads != nil {
				pads.Add(1)
			}
			padded := left.Child()
			for _, name := range ast.ItemVars(x.Right) {
				padded.Bind(name, value.Null)
			}
			return k(padded)
		}
		return nil
	})
}

// physState is the per-invocation runtime of a block's physical plan:
// lazily hoisted sources and hash tables, indexed by step. The lazy
// cells synchronize on sync.Once so the workers of a parallel scan can
// share one physState — whichever binding first needs a hoisted source
// or a hash table builds it, and a source the naive plan would never
// evaluate (empty left side) is still never evaluated.
type physState struct {
	phys    *sfwPhys
	outer   *eval.Env
	sources []lazyValue
	tables  []lazyTable
	idxs    []lazyIndex
	// preFilter and stats are the pre-resolved EXPLAIN ANALYZE nodes and
	// counters, nil when instrumentation is off. Resolving once here
	// keeps the per-row work to nil tests and atomic adds even in
	// parallel workers, which share this physState.
	preFilter *eval.StatsNode
	stats     []stepStats
	// ord, non-nil only under a reordered chain (which is never
	// parallel), records per step the source ordinal of its current
	// binding; the reorder buffer reads it to key each produced row.
	ord []int64
}

// stepStats is one FROM step's pre-resolved instrumentation.
type stepStats struct {
	node   *eval.StatsNode // the step's scan/unpivot/join/hash-join node
	filter *eval.StatsNode // pushed-filter node, nil when no filters
	// hash-join hot counters (nil for non-hash steps).
	candidates *atomic.Int64
	verified   *atomic.Int64
	pads       *atomic.Int64
	// index-probe hot counters (nil unless the step probes an index).
	probes *atomic.Int64
	hits   *atomic.Int64
}

func newPhysState(ctx *eval.Context, phys *sfwPhys, outer *eval.Env) *physState {
	st := &physState{
		phys:    phys,
		outer:   outer,
		sources: make([]lazyValue, len(phys.steps)),
		tables:  make([]lazyTable, len(phys.steps)),
		idxs:    make([]lazyIndex, len(phys.steps)),
	}
	if ctx.Stats != nil {
		parent := statsParent(ctx)
		if len(phys.pre) > 0 {
			st.preFilter = ctx.Stats.Node(parent, phys, "pre", "filter", "pre")
		}
		st.stats = make([]stepStats, len(phys.steps))
		for i := range phys.steps {
			step := &phys.steps[i]
			ss := &st.stats[i]
			if step.hash != nil {
				ss.node = hashNode(ctx, parent, step.hash)
				ss.candidates = ss.node.Counter("candidates")
				ss.verified = ss.node.Counter("verified")
				if step.hash.leftJoin {
					ss.pads = ss.node.Counter("left_pads")
				}
				if step.hash.buildIdx != nil {
					ss.probes = ss.node.Counter("probes")
					ss.hits = ss.node.Counter("hits")
				}
				if step.hash.estBuild >= 0 {
					ss.node.Counter("est_build").Store(step.hash.estBuild)
				}
				if step.hash.estOut >= 0 {
					ss.node.Counter("est_rows").Store(step.hash.estOut)
				}
			} else if step.idx != nil {
				ss.node = indexNode(ctx, parent, step)
				ss.probes = ss.node.Counter("probes")
				ss.hits = ss.node.Counter("hits")
				if step.idx.estRows >= 0 {
					ss.node.Counter("est_rows").Store(step.idx.estRows)
				}
			} else {
				op, label := describeItem(step.item)
				ss.node = ctx.Stats.Node(parent, step.item, "item", op, label)
				if step.estSrc >= 0 {
					ss.node.Counter("est_rows").Store(step.estSrc)
				}
			}
			if len(step.filters) > 0 {
				ss.filter = ctx.Stats.Node(ss.node, step, "filter", "filter", "pushed")
				if step.estOut >= 0 {
					ss.filter.Counter("est_rows").Store(step.estOut)
				}
			}
		}
	}
	return st
}

type lazyValue struct {
	once sync.Once
	val  value.Value
	err  error
}

func (l *lazyValue) get(f func() (value.Value, error)) (value.Value, error) {
	l.once.Do(func() { l.val, l.err = f() })
	return l.val, l.err
}

type lazyTable struct {
	once sync.Once
	tab  *hashTable
	err  error
}

func (l *lazyTable) get(f func() (*hashTable, error)) (*hashTable, error) {
	l.once.Do(func() { l.tab, l.err = f() })
	return l.tab, l.err
}

// produce streams the FROM chain's bindings under the physical plan:
// pre-filters first (once), then the step chain.
func (st *physState) produce(ctx *eval.Context, k emit) error {
	if st.preFilter != nil {
		st.preFilter.AddIn(1)
	}
	ok, err := filtersPass(ctx, st.outer, st.phys.pre, st.phys.preC)
	if err != nil || !ok {
		return err
	}
	if st.preFilter != nil {
		st.preFilter.AddOut(1)
	}
	if st.phys.reorder != nil {
		return st.produceReordered(ctx, k)
	}
	return st.run(ctx, st.outer, 0, k)
}

// run produces step i's bindings over env and forwards each through the
// step's pushed filters to the next step.
func (st *physState) run(ctx *eval.Context, env *eval.Env, i int, k emit) error {
	if i == len(st.phys.steps) {
		return k(env)
	}
	step := &st.phys.steps[i]
	var ss *stepStats
	if st.stats != nil {
		ss = &st.stats[i]
	}
	next := func(child *eval.Env) error {
		if ss != nil && ss.filter != nil {
			ss.filter.AddIn(1)
		}
		ok, err := filtersPass(ctx, child, step.filters, step.filtersC)
		if err != nil || !ok {
			return err
		}
		if ss != nil && ss.filter != nil {
			ss.filter.AddOut(1)
		}
		return st.run(ctx, child, i+1, k)
	}
	if step.hash != nil {
		if step.hash.buildIdx != nil {
			if ix := st.idxs[i].get(func() *index.Index { return resolveIndex(ctx, step.hash.buildIdx) }); ix != nil {
				return st.runIndexJoin(ctx, env, i, step.hash, ix, next)
			}
		}
		return st.runHash(ctx, env, i, step.hash, next)
	}
	if step.idx != nil {
		// A nil resolution (index dropped or redeclared since planning)
		// falls through to the scan paths below — the matched conjuncts
		// are still in step.filters, so only the speed changes.
		if ix := st.idxs[i].get(func() *index.Index { return resolveIndex(ctx, step.idx) }); ix != nil {
			return st.runIndexScan(ctx, env, i, step, ix, next)
		}
	}
	if st.phys.compiled {
		if x, ok := step.item.(*ast.FromExpr); ok {
			return st.runScanFused(ctx, env, i, x, step, ss, next)
		}
	}
	if step.hoist {
		// The hoisted paths bypass produceItem, so the step node's
		// emitted-row count is recorded here.
		emitNext := next
		if ss != nil {
			n := ss.node
			inner := next
			emitNext = func(child *eval.Env) error {
				n.AddOut(1)
				return inner(child)
			}
		}
		switch x := step.item.(type) {
		case *ast.FromExpr:
			src, err := st.sources[i].get(func() (value.Value, error) {
				return hoistSource(ctx, st.outer, x.Expr, step.srcC)
			})
			if err != nil {
				return err
			}
			return scanValue(ctx, env, x, src, emitNext)
		case *ast.FromUnpivot:
			src, err := st.sources[i].get(func() (value.Value, error) {
				return hoistSource(ctx, st.outer, x.Expr, step.srcC)
			})
			if err != nil {
				return err
			}
			return unpivotValue(ctx, env, x, src, emitNext)
		}
	}
	return produceItem(ctx, env, step.item, next)
}

// scanBatch is the row-slice size of the fused compiled scan loop: the
// cancellation poll and the stats row-count charges are amortized to one
// per batch. A power of two a few multiples of the eval pollInterval, so
// batched polling stays on the interpreter's cadence.
const scanBatch = 256

// runScanFused is the batched scan loop of the compiled pipeline,
// replacing produceItem+scanValue (and the hoisted scanValue path) for
// plain FromExpr steps. The source evaluates through its precompiled
// closure (or the shared hoist cell); the element loop then binds,
// filters (inside next), and recurses exactly like the row-at-a-time
// path, but batch-at-a-time: one InterruptedN poll per batch and one
// stats true-up per batch with exact emitted counts. When phys.reuseEnv
// holds, one child Env is allocated per invocation and rebound in place
// per row instead of allocating per row. Observable row order, error
// points, stats totals, and fault-injection sites are identical to the
// interpreted path.
//
// governor: the fused loop materializes nothing — rows stream to next
// and are charged at the pipeline's sinks (rowSink, groupState, hash
// build), exactly as in the row-at-a-time path.
func (st *physState) runScanFused(ctx *eval.Context, env *eval.Env, i int, x *ast.FromExpr, step *fromStep, ss *stepStats, next emit) error {
	var src value.Value
	var err error
	if step.hoist {
		src, err = st.sources[i].get(func() (value.Value, error) {
			return hoistSource(ctx, st.outer, x.Expr, step.srcC)
		})
	} else {
		src, err = evalMaybe(ctx, env, x.Expr, step.srcC)
	}
	if err != nil {
		return err
	}

	var node *eval.StatsNode
	if ss != nil {
		node = ss.node
		if !step.hoist {
			// Hoisted steps have no timer in the interpreted path either
			// (their per-row work is the continuation's); keep that shape.
			defer node.Timer()()
		}
	}

	elems, isColl := value.Elements(src)
	if !isColl {
		// Non-collection sources (singleton bindings, MISSING, strict
		// faults) keep the row-at-a-time edge semantics of scanValue,
		// wrapped with produceItem's emitted-row accounting.
		if st.ord != nil {
			st.ord[i] = 0
		}
		emitNext := next
		if node != nil {
			inner := next
			emitNext = func(child *eval.Env) error {
				node.AddOut(1)
				return inner(child)
			}
		}
		return scanValue(ctx, env, x, src, emitNext)
	}

	if node != nil {
		node.AddIn(int64(len(elems)))
	}
	isArray := src.Kind() == value.KindArray
	reuse := st.phys.reuseEnv
	var child *eval.Env
	for base := 0; base < len(elems); base += scanBatch {
		hi := base + scanBatch
		if hi > len(elems) {
			hi = len(elems)
		}
		if err := ctx.InterruptedN(hi - base); err != nil {
			return err
		}
		emitted := int64(0)
		for j := base; j < hi; j++ {
			if faultinject.Enabled {
				if err := faultinject.Fire(faultinject.ScanNext); err != nil {
					if node != nil {
						node.AddOut(emitted)
					}
					return err
				}
			}
			if child == nil || !reuse {
				child = env.Child()
			}
			if st.ord != nil {
				st.ord[i] = int64(j)
			}
			child.Bind(x.As, elems[j])
			if x.AtVar != "" {
				if isArray {
					child.Bind(x.AtVar, value.Int(int64(j)))
				} else {
					// Bags are unordered: AT binds MISSING.
					child.Bind(x.AtVar, value.Missing)
				}
			}
			emitted++
			if err := next(child); err != nil {
				if node != nil {
					node.AddOut(emitted)
				}
				return err
			}
		}
		if node != nil {
			node.AddOut(emitted)
		}
	}
	return nil
}

// evalFilters evaluates pushed conjuncts; the binding survives only when
// every conjunct is exactly TRUE, the same test WHERE applies.
func evalFilters(ctx *eval.Context, env *eval.Env, filters []ast.Expr) (bool, error) {
	for _, f := range filters {
		cond, err := eval.Eval(ctx, env, f)
		if err != nil {
			return false, err
		}
		if !eval.IsTrue(cond) {
			return false, nil
		}
	}
	return true, nil
}

// filtersPass is evalFilters through the compiled closures when the plan
// carries them, the interpreter otherwise. compiled is nil exactly when
// compilation was off for the block, so the nil test selects the path.
func filtersPass(ctx *eval.Context, env *eval.Env, filters []ast.Expr, compiled []eval.CompiledExpr) (bool, error) {
	if compiled == nil {
		return evalFilters(ctx, env, filters)
	}
	for _, f := range compiled {
		cond, err := f(ctx, env)
		if err != nil {
			return false, err
		}
		if !eval.IsTrue(cond) {
			return false, nil
		}
	}
	return true, nil
}

// evalMaybe evaluates e through its compiled form when available.
func evalMaybe(ctx *eval.Context, env *eval.Env, e ast.Expr, c eval.CompiledExpr) (value.Value, error) {
	if c != nil {
		return c(ctx, env)
	}
	return eval.Eval(ctx, env, e)
}

// compiledAt indexes a compiled slice that may be nil (compilation off).
func compiledAt(cs []eval.CompiledExpr, i int) eval.CompiledExpr {
	if cs == nil {
		return nil
	}
	return cs[i]
}

// groupState materializes GROUP BY groups (§V-B). Each input binding
// contributes its block variables as one content tuple; groups key on
// the canonical encoding of their key values, so NULL and MISSING each
// group on their own (coalesced in SQL compatibility mode), and 1
// groups with 1.0.
type groupState struct {
	ctx     *eval.Context
	outer   *eval.Env
	spec    *ast.GroupBy
	order   []string // insertion order of group keys
	keyVals map[string][]value.Value
	content map[string]value.Bag
	// st is the EXPLAIN ANALYZE node, nil when instrumentation is off.
	// Parallel workers each hold their own groupState but resolve the
	// same keyed node, so rows-in sums across workers and groups-out is
	// recorded once by the merged state's flush.
	st *eval.StatsNode
	// keysC are the compiled grouping-key expressions, set by the plan
	// runner when the block was compiled; nil falls back to interpreting
	// spec.Keys[i].Expr.
	keysC []eval.CompiledExpr
}

func newGroupState(ctx *eval.Context, outer *eval.Env, spec *ast.GroupBy) *groupState {
	g := &groupState{
		ctx:     ctx,
		outer:   outer,
		spec:    spec,
		keyVals: map[string][]value.Value{},
		content: map[string]value.Bag{},
	}
	if ctx.Stats != nil {
		g.st = ctx.Stats.Node(statsParent(ctx), spec, "group", "group-by", "")
	}
	// The implicit single group of aggregate-only queries exists even
	// for empty input (SELECT AVG(x) over nothing yields one NULL row).
	if len(spec.Keys) == 0 {
		g.order = append(g.order, "")
		g.keyVals[""] = nil
		g.content[""] = nil
	}
	return g
}

// add folds one binding environment into its group.
func (g *groupState) add(env *eval.Env) error {
	if err := g.ctx.Interrupted(); err != nil {
		return err
	}
	if g.st != nil {
		g.st.AddIn(1)
	}
	keys := make([]value.Value, len(g.spec.Keys))
	var kb []byte
	for i, key := range g.spec.Keys {
		v, err := evalMaybe(g.ctx, env, key.Expr, compiledAt(g.keysC, i))
		if err != nil {
			return err
		}
		keys[i] = v
		// SQL compatibility mode must not let a query distinguish null
		// from missing (§IV-B): a missing grouping key joins the NULL
		// group instead of forming its own. Only the encoding coalesces;
		// the representative stays MISSING unless some contributor was
		// null (mergeCompatKeys), so an all-missing image keeps
		// missing-style output per the guarantee.
		if g.ctx.Compat && v.Kind() == value.KindMissing {
			v = value.Null
		}
		kb = value.AppendKey(kb, v)
	}
	ks := string(kb)
	if have, ok := g.keyVals[ks]; !ok {
		g.order = append(g.order, ks)
		g.keyVals[ks] = keys
	} else if g.ctx.Compat {
		mergeCompatKeys(have, keys)
	}
	snap := env.SnapshotBelow(g.outer)
	g.content[ks] = append(g.content[ks], snap)
	if g.ctx.Gov != nil {
		if err := g.ctx.Gov.ChargeValues("group-by", 1, snap); err != nil {
			return err
		}
	}
	return checkSize(g.ctx, len(g.content[ks]))
}

// mergeCompatKeys upgrades MISSING representatives to NULL when another
// contributor to the same compat-coalesced group supplied a null key.
// The upgrade is order-independent: the representative is MISSING iff
// every row in the group had the key missing.
func mergeCompatKeys(have, incoming []value.Value) {
	for i, kv := range have {
		if kv.Kind() == value.KindMissing && incoming[i].Kind() != value.KindMissing {
			have[i] = value.Null
		}
	}
}

// flush emits one binding per group: the key aliases plus the GROUP AS
// collection (Listing 14's p/g bindings).
func (g *groupState) flush(k emit) error {
	for _, ks := range g.order {
		if g.st != nil {
			g.st.AddOut(1)
		}
		env := g.outer.Child()
		for i, key := range g.spec.Keys {
			alias := key.Alias
			if alias == "" {
				alias = "$k" + strconv.Itoa(i+1)
			}
			env.Bind(alias, g.keyVals[ks][i])
		}
		if g.spec.GroupAs != "" {
			bag := g.content[ks]
			if bag == nil {
				bag = value.Bag{}
			}
			env.Bind(g.spec.GroupAs, bag)
		}
		if err := k(env); err != nil {
			return err
		}
	}
	return nil
}
