package plan

import (
	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/value"
)

// Hash equi-join runtime. The table is built once per block invocation
// over the uncorrelated side, keyed by the canonical value.AppendKey
// encoding of the build keys, and probed once per left binding. Buckets
// are candidate prefilters only: every candidate pair is re-verified
// with the original predicate, so the observable semantics — numeric
// coercion in '=', NULL/MISSING never matching, LEFT JOIN padding — are
// exactly those of the nested loop it replaces.

// hashTable maps the canonical encoding of the build keys to the
// build-side rows carrying that key.
type hashTable struct {
	buckets map[string][]hashRow
	rows    int
}

// hashRow is one build-side binding: the variables its scan introduced,
// plus the binding's position in the build source's enumeration (seq),
// which the join-reorder buffer uses as this step's ordinal. Bucket
// order preserves it, so candidates stream in source order.
type hashRow struct {
	names []string
	vals  []value.Value
	seq   int64
}

// buildHashTable evaluates the build side once and indexes its bindings.
// Rows whose key contains NULL or MISSING are dropped: '=' with an
// absent operand is never TRUE, so they cannot match any probe (a LEFT
// JOIN pads from the probe side, which is unaffected).
func buildHashTable(ctx *eval.Context, outer *eval.Env, h *hashJoinStep) (*hashTable, error) {
	t := &hashTable{buckets: map[string][]hashRow{}}
	var kb []byte
	var seq int64
	err := produceItem(ctx, outer, h.right, func(renv *eval.Env) error {
		// seq numbers every produced binding, including those dropped for
		// absent keys, so retained rows keep their source positions'
		// relative order.
		mySeq := seq
		seq++
		if faultinject.Enabled {
			if err := faultinject.Fire(faultinject.HashBuildInsert); err != nil {
				return err
			}
		}
		// The build phase is a blocking loop that produces no output rows,
		// so it must poll cancellation itself or a deadline lands only
		// after the whole table is built.
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		kb = kb[:0]
		for j, bk := range h.buildKeys {
			v, err := evalMaybe(ctx, renv, bk, compiledAt(h.buildC, j))
			if err != nil {
				return err
			}
			if value.IsAbsent(v) {
				return nil
			}
			kb = value.AppendKey(kb, v)
		}
		names := renv.Names()
		row := hashRow{names: names, vals: make([]value.Value, len(names)), seq: mySeq}
		for i, n := range names {
			v, _ := renv.Lookup(n)
			row.vals[i] = v
		}
		t.rows++
		if err := checkSize(ctx, t.rows); err != nil {
			return err
		}
		if ctx.Gov != nil {
			if err := ctx.Gov.ChargeBindings("hash-build", row.vals); err != nil {
				return err
			}
		}
		t.buckets[string(kb)] = append(t.buckets[string(kb)], row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// runHash produces the bindings of a hash-join step. When h.left is set
// (JOIN ... ON), the left subtree's bindings probe; otherwise the
// incoming environment itself probes (comma cross product).
func (st *physState) runHash(ctx *eval.Context, env *eval.Env, i int, h *hashJoinStep, k emit) error {
	var ss *stepStats
	if st.stats != nil {
		ss = &st.stats[i]
	}
	probe := func(lenv *eval.Env) error {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		// The table builds on first probe, so a join whose probe side is
		// empty never evaluates the build side — as the nested loop
		// wouldn't.
		tbl, err := st.tables[i].get(func() (*hashTable, error) {
			if ss == nil {
				return buildHashTable(ctx, st.outer, h)
			}
			// The hash node's time is the build; probe work is counted on
			// the probe side's own nodes.
			stop := ss.node.Timer()
			t, err := buildHashTable(ctx, st.outer, h)
			stop()
			if err == nil {
				ss.node.Counter("buckets").Store(int64(len(t.buckets)))
				ss.node.Counter("build_rows").Store(int64(t.rows))
			}
			return t, err
		})
		if err != nil {
			return err
		}
		if ss != nil {
			ss.node.AddIn(1)
		}
		var kb []byte
		absent := false
		for j, pk := range h.probeKeys {
			v, err := evalMaybe(ctx, lenv, pk, compiledAt(h.probeC, j))
			if err != nil {
				return err
			}
			if value.IsAbsent(v) {
				absent = true
				break
			}
			kb = value.AppendKey(kb, v)
		}
		var bucket []hashRow
		if !absent {
			bucket = tbl.buckets[string(kb)]
		}
		matched := false
		for _, row := range bucket {
			if ss != nil {
				ss.candidates.Add(1)
			}
			if st.ord != nil {
				st.ord[i] = row.seq
			}
			cand := lenv.Child()
			for j, n := range row.names {
				cand.Bind(n, row.vals[j])
			}
			ok, err := filtersPass(ctx, cand, h.verify, h.verifyC)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			matched = true
			if ss != nil {
				ss.verified.Add(1)
				ss.node.AddOut(1)
			}
			if err := k(cand); err != nil {
				return err
			}
		}
		if !matched && h.leftJoin {
			if ss != nil {
				ss.pads.Add(1)
				ss.node.AddOut(1)
			}
			padded := lenv.Child()
			for _, n := range h.padVars {
				padded.Bind(n, value.Null)
			}
			return k(padded)
		}
		return nil
	}
	if h.left != nil {
		return produceItem(ctx, env, h.left, probe)
	}
	return probe(env)
}
