package plan

import (
	"testing"

	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// execPhys is exec with the physical optimizer applied and a chosen
// worker count — the optimized counterpart of plan_test.go's exec.
func execPhys(t *testing.T, data map[string]string, query string, strict bool, parallelism int) (value.Value, error) {
	t.Helper()
	cat := catalog.New()
	for name, src := range data {
		if err := cat.Register(name, sion.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: cat})
	if err != nil {
		return nil, err
	}
	mode := eval.Permissive
	if strict {
		mode = eval.StopOnError
	}
	Optimize(core, OptOptions{Mode: mode})
	ctx := &eval.Context{Mode: mode, Names: cat, Funcs: registry, Run: Run, Parallelism: parallelism}
	return Run(ctx, eval.NewEnv(), core)
}

// checkPhysMatchesNaive runs the query both ways and requires
// byte-identical renderings — the optimizer contract.
func checkPhysMatchesNaive(t *testing.T, data map[string]string, query string) {
	t.Helper()
	naive, err := exec(t, data, query, false, false)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	opt, err := execPhys(t, data, query, false, 1)
	if err != nil {
		t.Fatalf("optimized: %v", err)
	}
	if naive.String() != opt.String() {
		t.Errorf("optimized result diverges for %s:\n  naive     %s\n  optimized %s",
			query, naive, opt)
	}
}

// joinData exercises the hash join's semantic edge cases: a NULL key, a
// MISSING key (no deptno attribute), an int key matching a float dept
// number, and duplicate build rows.
var joinData = map[string]string{
	"emp": `{{
		{'id': 1, 'deptno': 10},
		{'id': 2, 'deptno': 20},
		{'id': 3, 'deptno': null},
		{'id': 4},
		{'id': 5, 'deptno': 10},
		{'id': 6, 'deptno': 99}
	}}`,
	"dept": `{{
		{'dno': 10, 'name': 'eng'},
		{'dno': 20.0, 'name': 'ops'},
		{'dno': 20, 'name': 'ops-dup'},
		{'dno': null, 'name': 'limbo'}
	}}`,
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	queries := []string{
		// INNER JOIN: NULL/MISSING keys never match; 20 must find the
		// float 20.0 row (equality coerces numerics).
		`SELECT e.id AS id, d.name AS dept FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`,
		// Keys reversed in the ON condition.
		`SELECT e.id AS id, d.name AS dept FROM emp AS e JOIN dept AS d ON d.dno = e.deptno`,
		// LEFT JOIN: unmatched probe rows pad d with NULL, including the
		// NULL- and MISSING-keyed employees.
		`SELECT e.id AS id, d.name AS dept FROM emp AS e LEFT JOIN dept AS d ON e.deptno = d.dno`,
		// Extra non-equi conjunct rides along in the verification.
		`SELECT e.id AS id, d.name AS dept
		 FROM emp AS e LEFT JOIN dept AS d ON e.deptno = d.dno AND e.id < 5`,
		// Comma cross product with the equi-conjunct in WHERE.
		`SELECT e.id AS id, d.name AS dept FROM emp AS e, dept AS d WHERE e.deptno = d.dno`,
		// Mixed equi and non-equi conjuncts.
		`SELECT e.id AS id, d.name AS dept
		 FROM emp AS e, dept AS d WHERE e.deptno = d.dno AND d.name LIKE 'o%'`,
		// Compound keys: a constructed expression on each side.
		`SELECT e.id AS id FROM emp AS e JOIN dept AS d ON e.deptno + 1 = d.dno + 1`,
	}
	for _, q := range queries {
		checkPhysMatchesNaive(t, joinData, q)
	}
}

func TestHashJoinEmptySides(t *testing.T) {
	empty := map[string]string{
		"emp":  `{{ {'id': 1, 'deptno': 10} }}`,
		"dept": `{{ }}`,
	}
	checkPhysMatchesNaive(t, empty,
		`SELECT e.id AS id, d.name AS dept FROM emp AS e LEFT JOIN dept AS d ON e.deptno = d.dno`)
	checkPhysMatchesNaive(t, map[string]string{"emp": `{{ }}`, "dept": joinData["dept"]},
		`SELECT e.id AS id FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`)
}

// TestHashJoinLazyBuild: with an empty probe side the build side must
// never be evaluated, because the naive nested loop never evaluates it
// either — observable through an error-raising build expression in
// strict mode.
func TestHashJoinLazyBuild(t *testing.T) {
	data := map[string]string{
		"emp":  `{{ }}`,
		"dept": `{{ {'dno': 'x'} }}`,
	}
	// 1 + 'x' is a type error in strict mode, but only if a dept row is
	// ever touched; the empty emp means it never is.
	q := `SELECT e.id AS id
	      FROM emp AS e JOIN (SELECT VALUE {'dno': 1 + d.dno} FROM dept AS d) AS j
	      ON e.deptno = j.dno`
	naive, nerr := exec(t, data, q, false, true)
	opt, oerr := execPhys(t, data, q, true, 1)
	if (nerr == nil) != (oerr == nil) {
		t.Fatalf("error behavior diverges: naive err=%v, optimized err=%v", nerr, oerr)
	}
	if nerr == nil && naive.String() != opt.String() {
		t.Errorf("results diverge:\n  naive     %s\n  optimized %s", naive, opt)
	}
}

func TestHoistedSourceMatchesNaive(t *testing.T) {
	// dept is uncorrelated, so it hoists; the filter is non-equi, so no
	// hash join hides the hoisting path.
	checkPhysMatchesNaive(t, joinData,
		`SELECT e.id AS id, d.name AS dept FROM emp AS e, dept AS d WHERE e.deptno < d.dno`)
	// A correlated inner source must not hoist and still match.
	checkPhysMatchesNaive(t, map[string]string{
		"emp": `{{ {'id': 1, 'kids': [{'k': 1}, {'k': 2}]}, {'id': 2, 'kids': []} }}`,
	}, `SELECT e.id AS id, c.k AS k FROM emp AS e, e.kids AS c`)
}
