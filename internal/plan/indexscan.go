package plan

import (
	"sync"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/index"
	"sqlpp/internal/value"
)

// Secondary-index runtime. A planned indexAccess is only a suggestion:
// the index is resolved by name at first use, against the catalog the
// query actually runs over. If it is gone or no longer matches the plan
// (dropped, redeclared, its collection re-registered as a non-
// collection), the step falls back to the ordinary scan it replaced —
// the matched conjuncts never left the step's filters, so the fallback
// is bit-identical, just slower. Index probes yield candidate positions
// in ascending element order (original scan order) and every candidate
// is re-verified, which is what keeps indexed execution byte-identical
// to naive execution under permissive semantics.

// indexLookup is the optional extension of eval.NameSource through
// which the runtime resolves planned index choices; the catalog
// implements it.
type indexLookup interface {
	LookupIndex(name string) (*index.Index, bool)
}

// lazyIndex resolves an index choice once per block invocation, so all
// probes (and all workers sharing a physState) agree on one snapshot.
type lazyIndex struct {
	once sync.Once
	ix   *index.Index
}

func (l *lazyIndex) get(f func() *index.Index) *index.Index {
	l.once.Do(func() { l.ix = f() })
	return l.ix
}

// resolveIndex binds a planned index choice to the live catalog, or nil
// to fall back to scanning.
func resolveIndex(ctx *eval.Context, ia *indexAccess) *index.Index {
	src, ok := ctx.Names.(indexLookup)
	if !ok {
		return nil
	}
	ix, ok := src.LookupIndex(ia.name)
	if !ok {
		return nil
	}
	sp := ix.Spec()
	if sp.Collection != ia.collection || !samePath(sp.Path, ia.path) {
		return nil
	}
	if (ia.ordered || ia.eq == nil) && sp.Kind != index.Ordered {
		return nil
	}
	return ix
}

// samePath compares key paths step-wise.
func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// probePositions evaluates the access path's probe expressions in env
// and returns the candidate positions. An absent probe key or bound
// matches nothing (equality and ordering against MISSING/NULL are never
// TRUE). An empty index short-circuits before evaluating anything, so a
// query over an empty collection evaluates exactly what the naive scan
// would: nothing.
//
// governor: equality hits charged here; range runs charged in Range.
func probePositions(ctx *eval.Context, env *eval.Env, ia *indexAccess, ix *index.Index) ([]int32, error) {
	if ix.Len() == 0 {
		return nil, nil
	}
	if ia.eq != nil {
		key, err := evalMaybe(ctx, env, ia.eq, ia.eqC)
		if err != nil {
			return nil, err
		}
		pos := ix.Lookup(key)
		if ctx.Gov != nil && len(pos) > 0 {
			if err := ctx.Gov.ChargeValues("index-probe", int64(len(pos)), nil); err != nil {
				return nil, err
			}
		}
		return pos, nil
	}
	var lo, hi value.Value
	if ia.lo != nil {
		v, err := evalMaybe(ctx, env, ia.lo, ia.loC)
		if err != nil {
			return nil, err
		}
		if value.IsAbsent(v) {
			return nil, nil
		}
		lo = v
	}
	if ia.hi != nil {
		v, err := evalMaybe(ctx, env, ia.hi, ia.hiC)
		if err != nil {
			return nil, err
		}
		if value.IsAbsent(v) {
			return nil, nil
		}
		hi = v
	}
	return ix.Range(lo, hi, ia.loIncl, ia.hiIncl, ctx.Gov)
}

// runIndexScan produces a fromStep's bindings from an index probe
// instead of a full scan. k is the step's filter-applying continuation,
// so every candidate is re-verified against the original conjuncts.
func (st *physState) runIndexScan(ctx *eval.Context, env *eval.Env, i int, step *fromStep, ix *index.Index, k emit) error {
	x := step.item.(*ast.FromExpr)
	var ss *stepStats
	if st.stats != nil {
		ss = &st.stats[i]
		ss.probes.Add(1)
		defer ss.node.Timer()()
	}
	positions, err := probePositions(ctx, env, step.idx, ix)
	if err != nil {
		return err
	}
	if ss != nil {
		ss.node.AddIn(int64(len(positions)))
		ss.hits.Add(int64(len(positions)))
	}
	elems, ok := value.Elements(ix.Source())
	if !ok {
		return nil
	}
	isArray := ix.Source().Kind() == value.KindArray
	for _, p := range positions {
		if faultinject.Enabled {
			if err := faultinject.Fire(faultinject.IndexProbeNext); err != nil {
				return err
			}
		}
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if st.ord != nil {
			st.ord[i] = int64(p)
		}
		child := env.Child()
		child.Bind(x.As, elems[p])
		if x.AtVar != "" {
			// AT over an array binds the element's original ordinal — the
			// index preserved positions exactly for this; bags are
			// unordered, so AT binds MISSING as in a scan.
			if isArray {
				child.Bind(x.AtVar, value.Int(int64(p)))
			} else {
				child.Bind(x.AtVar, value.Missing)
			}
		}
		if ss != nil {
			ss.node.AddOut(1)
		}
		if err := k(child); err != nil {
			return err
		}
	}
	return nil
}

// runIndexJoin produces a hash-join step's bindings by probing an
// existing index on the build key instead of building a hash table.
// Verification (the full ON condition) and LEFT JOIN padding are
// exactly runHash's, so the join's observable semantics are unchanged;
// only the build phase disappears.
func (st *physState) runIndexJoin(ctx *eval.Context, env *eval.Env, i int, h *hashJoinStep, ix *index.Index, k emit) error {
	var ss *stepStats
	if st.stats != nil {
		ss = &st.stats[i]
	}
	elems, ok := value.Elements(ix.Source())
	if !ok {
		return nil
	}
	isArray := ix.Source().Kind() == value.KindArray
	x := h.right
	probe := func(lenv *eval.Env) error {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if ss != nil {
			ss.node.AddIn(1)
			ss.probes.Add(1)
		}
		key, err := evalMaybe(ctx, lenv, h.buildIdx.eq, h.buildIdx.eqC)
		if err != nil {
			return err
		}
		positions := ix.Lookup(key)
		if ctx.Gov != nil && len(positions) > 0 {
			if err := ctx.Gov.ChargeValues("index-probe", int64(len(positions)), nil); err != nil {
				return err
			}
		}
		if ss != nil {
			ss.hits.Add(int64(len(positions)))
		}
		matched := false
		for _, p := range positions {
			if faultinject.Enabled {
				if err := faultinject.Fire(faultinject.IndexProbeNext); err != nil {
					return err
				}
			}
			if ss != nil {
				ss.candidates.Add(1)
			}
			cand := lenv.Child()
			cand.Bind(x.As, elems[p])
			if x.AtVar != "" {
				if isArray {
					cand.Bind(x.AtVar, value.Int(int64(p)))
				} else {
					cand.Bind(x.AtVar, value.Missing)
				}
			}
			ok, err := filtersPass(ctx, cand, h.verify, h.verifyC)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			matched = true
			if ss != nil {
				ss.verified.Add(1)
				ss.node.AddOut(1)
			}
			if err := k(cand); err != nil {
				return err
			}
		}
		if !matched && h.leftJoin {
			if ss != nil {
				ss.pads.Add(1)
				ss.node.AddOut(1)
			}
			padded := lenv.Child()
			for _, n := range h.padVars {
				padded.Bind(n, value.Null)
			}
			return k(padded)
		}
		return nil
	}
	if h.left != nil {
		return produceItem(ctx, env, h.left, probe)
	}
	return probe(env)
}
