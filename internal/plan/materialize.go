package plan

import (
	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// runSFWMaterialized executes a query block with a full materialization
// barrier between every clause, in contrast to the streaming pipeline of
// runSFW. Semantics are identical; this executor exists for the
// DESIGN.md ablation quantifying what the streaming pipeline buys
// (no intermediate binding lists, LIMIT pushdown).
func runSFWMaterialized(ctx *eval.Context, outer *eval.Env, q *ast.SFW) (value.Value, error) {
	// FROM: materialize the full binding list.
	var envs []*eval.Env
	err := produceFrom(ctx, outer, q.From, func(env *eval.Env) error {
		envs = append(envs, env)
		if ctx.Gov != nil {
			if err := ctx.Gov.ChargeValues("materialize", 1, nil); err != nil {
				return err
			}
		}
		return checkSize(ctx, len(envs))
	})
	if err != nil {
		return nil, err
	}

	// LET: bind per environment (a clause pass of its own).
	for _, l := range q.Lets {
		for _, env := range envs {
			v, err := eval.Eval(ctx, env, l.Expr)
			if err != nil {
				return nil, err
			}
			env.Bind(l.Name, v)
		}
	}

	// WHERE: materialize the survivors.
	if q.Where != nil {
		kept := envs[:0:0]
		for _, env := range envs {
			cond, err := eval.Eval(ctx, env, q.Where)
			if err != nil {
				return nil, err
			}
			if eval.IsTrue(cond) {
				kept = append(kept, env)
			}
		}
		envs = kept
	}

	// GROUP BY: fold into group bindings.
	if q.GroupBy != nil {
		grouper := newGroupState(ctx, outer, q.GroupBy)
		for _, env := range envs {
			if err := grouper.add(env); err != nil {
				return nil, err
			}
		}
		envs = envs[:0:0]
		if err := grouper.flush(func(env *eval.Env) error {
			envs = append(envs, env)
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// HAVING.
	if q.Having != nil {
		kept := envs[:0:0]
		for _, env := range envs {
			cond, err := eval.Eval(ctx, env, q.Having)
			if err != nil {
				return nil, err
			}
			if eval.IsTrue(cond) {
				kept = append(kept, env)
			}
		}
		envs = kept
	}

	// Window computations.
	if len(q.Windows) > 0 {
		if err := computeWindows(ctx, q.Windows, envs); err != nil {
			return nil, err
		}
	}

	// SELECT VALUE projection (plus DISTINCT), then ORDER/LIMIT/OFFSET.
	limit, offset, err := evalLimitOffset(ctx, outer, q)
	if err != nil {
		return nil, err
	}
	ordered := len(q.OrderBy) > 0
	seen := map[string]bool{}
	var out []value.Value
	var rows []sortRow
	for _, env := range envs {
		v, err := eval.Eval(ctx, env, q.Select.Value)
		if err != nil {
			return nil, err
		}
		if v.Kind() == value.KindMissing {
			if !ordered {
				continue
			}
			v = value.Null
		}
		if q.Select.Distinct {
			k := value.Key(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		if ctx.Gov != nil {
			site := "select"
			if ordered {
				site = "order-by"
			}
			if err := ctx.Gov.ChargeOutput(site, 1, v); err != nil {
				return nil, err
			}
		}
		if ordered {
			keys := make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				kv, err := eval.Eval(ctx, env, o.Expr)
				if err != nil {
					return nil, err
				}
				keys[i] = kv
			}
			rows = append(rows, sortRow{val: v, keys: keys})
			continue
		}
		out = append(out, v)
	}
	if ordered {
		sortRows(rows, q.OrderBy)
		out = make([]value.Value, len(rows))
		for i, r := range rows {
			out[i] = r.val
		}
	}
	out = applyLimitOffset(out, limit, offset)
	if ordered {
		return value.Array(out), nil
	}
	return value.Bag(out), nil
}
