package plan

import (
	"testing"

	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// TestMaterializedEquivalence: both executors must agree on every query
// shape — the ablation compares strategies, not semantics.
func TestMaterializedEquivalence(t *testing.T) {
	data := map[string]string{
		"t": `{{
		  {'k': 'a', 'v': 1, 'xs': [1, 2]},
		  {'k': 'b', 'v': 2, 'xs': []},
		  {'k': 'a', 'v': 3, 'xs': [3]},
		  {'k': null, 'v': 4, 'xs': [4, 5]}
		}}`,
		"u": `{{ {'k': 'a', 'w': 10}, {'k': 'b', 'w': 20} }}`,
	}
	queries := []string{
		`SELECT VALUE r.v FROM t AS r`,
		`SELECT VALUE r.v FROM t AS r WHERE r.v > 1`,
		`SELECT VALUE x FROM t AS r, r.xs AS x`,
		`SELECT r.k AS k, SUM(r.v) AS s FROM t AS r GROUP BY r.k HAVING COUNT(*) >= 1`,
		`SELECT VALUE r.v FROM t AS r ORDER BY r.v DESC LIMIT 2 OFFSET 1`,
		`SELECT DISTINCT r.k AS k FROM t AS r`,
		`SELECT VALUE sq FROM t AS r LET sq = r.v * r.v WHERE sq > 2`,
		`SELECT a.v AS v, b.w AS w FROM t AS a JOIN u AS b ON a.k = b.k`,
		`SELECT r.v AS v, ROW_NUMBER() OVER (ORDER BY r.v) AS rn FROM t AS r`,
		`SELECT COUNT(*) AS n FROM t AS r`,
	}
	for _, q := range queries {
		streaming := runWith(t, data, q, false)
		materialized := runWith(t, data, q, true)
		if !value.Equivalent(streaming, materialized) {
			t.Errorf("executors disagree on %q:\n  streaming    %s\n  materialized %s",
				q, streaming, materialized)
		}
	}
}

func runWith(t *testing.T, data map[string]string, query string, materialize bool) value.Value {
	t.Helper()
	cat := catalog.New()
	for name, src := range data {
		if err := cat.Register(name, sion.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: cat})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &eval.Context{Names: cat, Funcs: registry, Run: Run, MaterializeClauses: materialize}
	v, err := Run(ctx, eval.NewEnv(), core)
	if err != nil {
		t.Fatalf("%q (materialize=%v): %v", query, materialize, err)
	}
	return v
}
