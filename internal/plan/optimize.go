package plan

import (
	"fmt"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
)

// The physical optimization pass. Optimize annotates every query block in
// a rewritten Core tree with an execution strategy that produces the same
// bindings as the naive clause pipeline but cheaper:
//
//   - source hoisting: a FROM item whose source expression has no free
//     variables bound by items to its left is evaluated once per block
//     invocation instead of once per left binding (lazily, so a source
//     that the naive plan would never evaluate is still never evaluated);
//   - hash equi-joins: JOIN ... ON conditions and comma cross products
//     whose pushed WHERE conjuncts contain lhs = rhs terms splitting
//     cleanly across the two sides build a hash table on the uncorrelated
//     side, keyed by value.AppendKey, and probe it instead of looping.
//     Buckets are only candidate prefilters — every candidate is verified
//     with the original predicate, so the equality semantics (numeric
//     coercion, NULL, MISSING, collections) stay bit-identical;
//   - predicate pushdown: WHERE splits into AND-conjuncts, each applied
//     at the earliest point in the FROM chain where its free variables
//     are bound;
//   - parallel outer scans: unordered blocks without LIMIT/OFFSET or
//     window functions mark the outermost scan as partitionable across a
//     worker pool (see parallel.go).
//
// Pushdown and hash joins change which rows a predicate is evaluated on
// (a conjunct may run before its AND-siblings, and non-candidate pairs
// skip the ON condition entirely). In permissive mode that is invisible —
// a mistyped conjunct yields MISSING and just fails the filter — but in
// stop-on-error mode it could change which error surfaces, so those
// rewrites only fire in permissive mode. Hoisting and parallel scans
// preserve the evaluation set exactly and stay enabled in both modes.

// OptOptions configures the optimization pass.
type OptOptions struct {
	// Mode is the engine's typing mode; equality-based rewrites
	// (pushdown, hash joins) require Permissive.
	Mode eval.TypingMode
}

// sfwPhys is the physical plan of one query block, stored in ast.SFW.Phys.
type sfwPhys struct {
	// pre are WHERE conjuncts with no free block variables: evaluated
	// once before any binding is produced; a non-TRUE value empties the
	// block.
	pre []ast.Expr
	// steps mirror q.From; step i produces item i's bindings and applies
	// its pushed conjuncts.
	steps []fromStep
	// residual are WHERE conjuncts that must run in clause position
	// (they reference LET or window names, or pushdown is disabled).
	residual []ast.Expr
	// parallel marks the outermost scan as eligible for partitioned
	// execution.
	parallel bool
}

// fromStep is the physical form of one top-level FROM item.
type fromStep struct {
	// item is the FROM item to produce; nil when hash is a probe-only
	// step (comma-derived hash join: the incoming environment probes).
	item ast.FromItem
	// filters are pushed WHERE conjuncts applied to each binding this
	// step emits.
	filters []ast.Expr
	// hoist marks a FromExpr/FromUnpivot source as uncorrelated: its
	// source expression is evaluated once per block invocation.
	hoist bool
	// hash, when non-nil, replaces the nested-loop production of this
	// item with a hash-table probe.
	hash *hashJoinStep
}

// hashJoinStep describes one hash equi-join.
type hashJoinStep struct {
	// left, when non-nil, is the probe-side FROM item (a JOIN's left
	// subtree); nil means the incoming environment itself probes (comma
	// cross product).
	left ast.FromItem
	// right is the uncorrelated build side.
	right *ast.FromExpr
	// probeKeys/buildKeys are the paired sides of the equi-conjuncts:
	// probeKeys evaluate without right's variables, buildKeys without
	// any earlier block variable.
	probeKeys, buildKeys []ast.Expr
	// verify is evaluated per bucket candidate; all must be TRUE. For a
	// JOIN it is the full ON condition; for a comma product, the
	// equi-conjuncts themselves.
	verify []ast.Expr
	// leftJoin enables the LEFT JOIN null-padding path over padVars.
	leftJoin bool
	padVars  []string
}

// Optimize annotates every query block under root with a physical plan
// and returns human-readable notes describing the rewrites that fired.
// It must run after rewrite (it relies on catalog names being resolved to
// NamedRef) and before the tree is shared across goroutines: annotations
// are written once here and only read during execution.
func Optimize(root ast.Expr, o OptOptions) []string {
	var notes []string
	ast.Inspect(root, func(e ast.Expr) bool {
		q, ok := e.(*ast.SFW)
		if !ok {
			return true
		}
		phys, ns := analyzeSFW(q, o)
		q.Phys = phys
		notes = append(notes, ns...)
		return true
	})
	return notes
}

// analyzeSFW computes the physical plan of one block, or nil when the
// naive pipeline is already optimal (no FROM items).
func analyzeSFW(q *ast.SFW, o OptOptions) (*sfwPhys, []string) {
	if q.Select.Value == nil || len(q.From) == 0 {
		return nil, nil
	}
	permissive := o.Mode == eval.Permissive
	n := len(q.From)

	// Variable sets: per top-level item, and the names WHERE conjuncts
	// may not be pushed past (LET and window bindings happen after FROM).
	itemV := make([]map[string]bool, n)
	for i, item := range q.From {
		itemV[i] = nameSet(ast.ItemVars(item))
	}
	late := map[string]bool{}
	for _, l := range q.Lets {
		late[l.Name] = true
	}
	for _, w := range q.Windows {
		late[w.Name] = true
	}

	phys := &sfwPhys{steps: make([]fromStep, n)}
	for i := range phys.steps {
		phys.steps[i].item = q.From[i]
	}

	// Predicate pushdown: each conjunct runs right after the last item
	// binding one of its free variables.
	pushed := 0
	if q.Where != nil {
		if permissive {
			for _, c := range conjuncts(q.Where) {
				fv := ast.FreeVars(c)
				if intersects(fv, late) {
					phys.residual = append(phys.residual, c)
					continue
				}
				level := -1
				for i := range itemV {
					if intersects(fv, itemV[i]) {
						level = i
					}
				}
				if level < 0 {
					phys.pre = append(phys.pre, c)
					pushed++
				} else {
					phys.steps[level].filters = append(phys.steps[level].filters, c)
					if level < n-1 {
						pushed++
					}
				}
			}
		} else {
			phys.residual = conjuncts(q.Where)
		}
	}

	// Source hoisting: item i's source is uncorrelated when it has no
	// free variable bound by items 0..i-1. The outermost item is
	// evaluated once regardless.
	earlier := map[string]bool{}
	hoisted := 0
	for i, item := range q.From {
		switch x := item.(type) {
		case *ast.FromExpr:
			if i > 0 && !ast.FreeVarsOver(x.Expr, earlier) {
				phys.steps[i].hoist = true
				hoisted++
			}
		case *ast.FromUnpivot:
			if i > 0 && !ast.FreeVarsOver(x.Expr, earlier) {
				phys.steps[i].hoist = true
				hoisted++
			}
		}
		for v := range itemV[i] {
			earlier[v] = true
		}
	}

	// Hash equi-joins.
	hashed := 0
	if permissive {
		earlier = map[string]bool{}
		for i, item := range q.From {
			step := &phys.steps[i]
			switch x := item.(type) {
			case *ast.FromJoin:
				if h := analyzeJoinHash(x, earlier); h != nil {
					step.hash = h
					hashed++
				}
			case *ast.FromExpr:
				// Comma-derived: the uncorrelated right side pairs with
				// the bindings accumulated so far via pushed equi-conjuncts.
				if !step.hoist || len(step.filters) == 0 {
					break
				}
				if h := analyzeCommaHash(x, step, itemV[i], earlier); h != nil {
					step.hash = h
					step.item = nil
					hashed++
				}
			}
			for v := range itemV[i] {
				earlier[v] = true
			}
		}
	}

	// Parallel outer scan: bag output, no LIMIT/OFFSET (their early-stop
	// and slicing need global order), no window functions, and a plain
	// scan as the outermost item. GROUP BY, DISTINCT, and HAVING all
	// merge deterministically (see parallel.go).
	if len(q.OrderBy) == 0 && q.Limit == nil && q.Offset == nil && len(q.Windows) == 0 {
		if _, ok := phys.steps[0].item.(*ast.FromExpr); ok && phys.steps[0].hash == nil {
			phys.parallel = true
		}
	}

	var notes []string
	pos := q.Pos()
	add := func(format string, args ...any) {
		notes = append(notes, fmt.Sprintf("%s at %v", fmt.Sprintf(format, args...), pos))
	}
	if pushed > 0 {
		add("pushdown(%d)", pushed)
	}
	if hoisted > 0 {
		add("hoist(%d)", hoisted)
	}
	if hashed > 0 {
		add("hash-join(%d)", hashed)
	}
	if phys.parallel {
		add("parallel-scan")
	}
	return phys, notes
}

// analyzeJoinHash turns an INNER or LEFT JOIN with an uncorrelated
// FromExpr right side and splittable equi-conjuncts in its ON condition
// into a hash join. earlier is the set of variables bound by items to the
// join's left in the enclosing block.
func analyzeJoinHash(x *ast.FromJoin, earlier map[string]bool) *hashJoinStep {
	if x.Kind != ast.JoinInner && x.Kind != ast.JoinLeft {
		return nil
	}
	if x.On == nil {
		return nil
	}
	right, ok := x.Right.(*ast.FromExpr)
	if !ok {
		return nil
	}
	leftVars := nameSet(ast.ItemVars(x.Left))
	probeSide := union(earlier, leftVars)
	if ast.FreeVarsOver(right.Expr, probeSide) {
		return nil
	}
	rightVars := nameSet(ast.ItemVars(right))
	probeKeys, buildKeys := splitEquiKeys(conjuncts(x.On), rightVars, probeSide)
	if len(probeKeys) == 0 {
		return nil
	}
	return &hashJoinStep{
		left:      x.Left,
		right:     right,
		probeKeys: probeKeys,
		buildKeys: buildKeys,
		// The full ON condition re-verifies every candidate, keeping
		// join semantics exactly those of the nested loop.
		verify:   []ast.Expr{x.On},
		leftJoin: x.Kind == ast.JoinLeft,
		padVars:  ast.ItemVars(right),
	}
}

// analyzeCommaHash turns an uncorrelated comma item with pushed
// equi-conjuncts into a probe-only hash join: the incoming environment
// probes the table built over the item's source.
func analyzeCommaHash(x *ast.FromExpr, step *fromStep, ownVars, earlier map[string]bool) *hashJoinStep {
	var equi []ast.Expr
	var rest []ast.Expr
	var probeKeys, buildKeys []ast.Expr
	for _, c := range step.filters {
		p, b, ok := splitEquiConjunct(c, ownVars, earlier)
		if !ok {
			rest = append(rest, c)
			continue
		}
		equi = append(equi, c)
		probeKeys = append(probeKeys, p)
		buildKeys = append(buildKeys, b)
	}
	if len(equi) == 0 {
		return nil
	}
	step.filters = rest
	return &hashJoinStep{
		right:     x,
		probeKeys: probeKeys,
		buildKeys: buildKeys,
		verify:    equi,
		padVars:   ast.ItemVars(x),
	}
}

// splitEquiKeys extracts the equi-conjuncts of an ON condition: terms
// lhs = rhs where one side avoids the build variables and the other
// avoids the probe variables.
func splitEquiKeys(cs []ast.Expr, buildVars, probeVars map[string]bool) (probeKeys, buildKeys []ast.Expr) {
	for _, c := range cs {
		if p, b, ok := splitEquiConjunct(c, buildVars, probeVars); ok {
			probeKeys = append(probeKeys, p)
			buildKeys = append(buildKeys, b)
		}
	}
	return probeKeys, buildKeys
}

// splitEquiConjunct splits one conjunct of the form lhs = rhs into a
// probe-side key (no build variables free) and a build-side key (no
// probe variables free).
func splitEquiConjunct(c ast.Expr, buildVars, probeVars map[string]bool) (probe, build ast.Expr, ok bool) {
	eq, isBin := c.(*ast.Binary)
	if !isBin || eq.Op != "=" {
		return nil, nil, false
	}
	lFree := ast.FreeVars(eq.L)
	rFree := ast.FreeVars(eq.R)
	if !intersects(lFree, buildVars) && !intersects(rFree, probeVars) {
		return eq.L, eq.R, true
	}
	if !intersects(rFree, buildVars) && !intersects(lFree, probeVars) {
		return eq.R, eq.L, true
	}
	return nil, nil, false
}

// conjuncts flattens nested AND expressions into their conjunct list.
func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []ast.Expr{e}
}

func nameSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

func union(a, b map[string]bool) map[string]bool {
	s := make(map[string]bool, len(a)+len(b))
	for n := range a {
		s[n] = true
	}
	for n := range b {
		s[n] = true
	}
	return s
}

func intersects(a, b map[string]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for n := range a {
		if b[n] {
			return true
		}
	}
	return false
}
