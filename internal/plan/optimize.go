package plan

import (
	"fmt"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
)

// The physical optimization pass. Optimize annotates every query block in
// a rewritten Core tree with an execution strategy that produces the same
// bindings as the naive clause pipeline but cheaper:
//
//   - source hoisting: a FROM item whose source expression has no free
//     variables bound by items to its left is evaluated once per block
//     invocation instead of once per left binding (lazily, so a source
//     that the naive plan would never evaluate is still never evaluated);
//   - hash equi-joins: JOIN ... ON conditions and comma cross products
//     whose pushed WHERE conjuncts contain lhs = rhs terms splitting
//     cleanly across the two sides build a hash table on the uncorrelated
//     side, keyed by value.AppendKey, and probe it instead of looping.
//     Buckets are only candidate prefilters — every candidate is verified
//     with the original predicate, so the equality semantics (numeric
//     coercion, NULL, MISSING, collections) stay bit-identical;
//   - predicate pushdown: WHERE splits into AND-conjuncts, each applied
//     at the earliest point in the FROM chain where its free variables
//     are bound;
//   - parallel outer scans: unordered blocks without LIMIT/OFFSET or
//     window functions mark the outermost scan as partitionable across a
//     worker pool (see parallel.go).
//
// Pushdown and hash joins change which rows a predicate is evaluated on
// (a conjunct may run before its AND-siblings, and non-candidate pairs
// skip the ON condition entirely). In permissive mode that is invisible —
// a mistyped conjunct yields MISSING and just fails the filter — but in
// stop-on-error mode it could change which error surfaces, so those
// rewrites only fire in permissive mode. Hoisting and parallel scans
// preserve the evaluation set exactly and stay enabled in both modes.

// OptOptions configures the optimization pass.
type OptOptions struct {
	// Mode is the engine's typing mode; equality-based rewrites
	// (pushdown, hash joins, index access paths) require Permissive.
	Mode eval.TypingMode
	// Indexes resolves secondary-index availability at plan time; nil
	// disables access-path selection.
	Indexes IndexSource
	// Compat is the engine's SQL-compatibility bit; compiled expressions
	// specialize on it, so it must match the execution Context.
	Compat bool
	// Compile lowers every per-row expression of each block to a closure
	// (internal/eval/compile.go) stored alongside its AST in the
	// physical plan; execution then runs the compiled pipeline. Off,
	// everything evaluates through the tree-walking interpreter.
	Compile bool
	// Funcs resolves function names at compile time; nil leaves calls on
	// the interpreted path.
	Funcs eval.FuncSource
	// Stats resolves per-collection statistics at plan time; nil disables
	// every cost-based decision (join reordering, index vetoes, parallel
	// sizing, est_rows annotations) and keeps the heuristic plan.
	Stats StatsSource
	// Parallelism is the executor's worker budget, used only to size
	// parallel-scan chunks from estimated row counts.
	Parallelism int
}

// IndexSource answers plan-time access-path questions; the catalog
// implements it. needOrdered asks for range-probe capability.
type IndexSource interface {
	IndexFor(collection string, path []string, needOrdered bool) (name string, ok bool)
}

// indexAccess records an access-path choice: probe the named index
// instead of scanning its collection. The matched conjuncts always stay
// in the step's filters (or the join's verify set) — index positions
// are candidate prefilters in original scan order, and every candidate
// is re-verified, so indexed execution is bit-identical to scanning.
// If the index is gone (or changed shape) by execution time, the
// runtime falls back to that ordinary scan.
type indexAccess struct {
	name       string
	collection string
	path       []string
	// ordered requires a range-capable index at runtime.
	ordered bool
	// eq, when non-nil, is the equality probe key, evaluated in the
	// environment incoming to the step (so a correlated key turns the
	// step into an index nested-loop join). When nil, the access is a
	// range probe over lo/hi, of which at least one is set.
	eq             ast.Expr
	lo, hi         ast.Expr
	loIncl, hiIncl bool
	// estRows is the estimated probe result cardinality (-1 unknown),
	// surfaced as est_rows on the EXPLAIN node.
	estRows int64
	// Compiled forms of eq/lo/hi; nil when compilation is off.
	eqC, loC, hiC eval.CompiledExpr
}

// sfwPhys is the physical plan of one query block, stored in ast.SFW.Phys.
type sfwPhys struct {
	// pre are WHERE conjuncts with no free block variables: evaluated
	// once before any binding is produced; a non-TRUE value empties the
	// block.
	pre []ast.Expr
	// steps mirror q.From; step i produces item i's bindings and applies
	// its pushed conjuncts.
	steps []fromStep
	// residual are WHERE conjuncts that must run in clause position
	// (they reference LET or window names, or pushdown is disabled).
	residual []ast.Expr
	// parallel marks the outermost scan as eligible for partitioned
	// execution.
	parallel bool
	// compiled marks the block as carrying closure-compiled forms of its
	// per-row expressions (the *C fields below and on steps); execution
	// prefers them over interpreting the AST.
	compiled bool
	// reuseEnv permits the fused scan loop to reuse one child Env across
	// the rows of a scan, rebinding in place. Safe only when nothing
	// downstream of the pipeline retains row environments; window
	// functions retain them (plan.go windowEnvs), and so does the
	// reorder buffer below.
	reuseEnv bool
	// reorder, when non-nil, runs the steps in a cost-chosen order and
	// buffers bindings so they are consumed in written production order
	// (see reorder.go); set only when every step is an uncorrelated named
	// scan with statistics.
	reorder *reorderExec
	// scanEst is the estimated row count of the outermost scan (-1
	// unknown); chunkHint is the parallel chunk size derived from it (0
	// means use the runtime default).
	scanEst   int64
	chunkHint int
	// Compiled forms of pre/residual, LET sources, HAVING, the SELECT
	// projection, ORDER BY keys, and GROUP BY keys. All nil when
	// compilation is off.
	preC      []eval.CompiledExpr
	residualC []eval.CompiledExpr
	letsC     []eval.CompiledExpr
	havingC   eval.CompiledExpr
	selectC   eval.CompiledExpr
	orderC    []eval.CompiledExpr
	groupC    []eval.CompiledExpr
}

// fromStep is the physical form of one top-level FROM item.
type fromStep struct {
	// item is the FROM item to produce; nil when hash is a probe-only
	// step (comma-derived hash join: the incoming environment probes).
	item ast.FromItem
	// filters are pushed WHERE conjuncts applied to each binding this
	// step emits.
	filters []ast.Expr
	// hoist marks a FromExpr/FromUnpivot source as uncorrelated: its
	// source expression is evaluated once per block invocation.
	hoist bool
	// hash, when non-nil, replaces the nested-loop production of this
	// item with a hash-table probe.
	hash *hashJoinStep
	// idx, when non-nil, replaces the scan of this item's named
	// collection with a secondary-index probe (filters still verify).
	idx *indexAccess
	// estSrc/estOut are the estimated source and post-filter row counts
	// of this step (-1 unknown), surfaced as est_rows on EXPLAIN nodes.
	estSrc, estOut int64
	// Compiled forms of filters and of the item's source expression
	// (FromExpr/FromUnpivot only); nil when compilation is off.
	filtersC []eval.CompiledExpr
	srcC     eval.CompiledExpr
}

// hashJoinStep describes one hash equi-join.
type hashJoinStep struct {
	// left, when non-nil, is the probe-side FROM item (a JOIN's left
	// subtree); nil means the incoming environment itself probes (comma
	// cross product).
	left ast.FromItem
	// right is the uncorrelated build side.
	right *ast.FromExpr
	// probeKeys/buildKeys are the paired sides of the equi-conjuncts:
	// probeKeys evaluate without right's variables, buildKeys without
	// any earlier block variable.
	probeKeys, buildKeys []ast.Expr
	// verify is evaluated per bucket candidate; all must be TRUE. For a
	// JOIN it is the full ON condition; for a comma product, the
	// equi-conjuncts themselves.
	verify []ast.Expr
	// leftJoin enables the LEFT JOIN null-padding path over padVars.
	leftJoin bool
	padVars  []string
	// buildIdx, when non-nil, replaces the build-side hash table with an
	// existing secondary index on the build key (buildIdx.eq holds the
	// paired probe key); verify and padding semantics are unchanged.
	buildIdx *indexAccess
	// estBuild/estOut are the estimated build-side and join-output row
	// counts (-1 unknown), surfaced as est_rows on EXPLAIN nodes.
	estBuild, estOut int64
	// Compiled forms of probeKeys/buildKeys/verify; nil when compilation
	// is off.
	probeC, buildC, verifyC []eval.CompiledExpr
}

// Optimize annotates every query block under root with a physical plan
// and returns human-readable notes describing the rewrites that fired.
// It must run after rewrite (it relies on catalog names being resolved to
// NamedRef) and before the tree is shared across goroutines: annotations
// are written once here and only read during execution.
func Optimize(root ast.Expr, o OptOptions) []string {
	var notes []string
	ast.Inspect(root, func(e ast.Expr) bool {
		q, ok := e.(*ast.SFW)
		if !ok {
			return true
		}
		phys, ns := analyzeSFW(q, o)
		q.Phys = phys
		notes = append(notes, ns...)
		return true
	})
	return notes
}

// analyzeSFW computes the physical plan of one block, or nil when the
// naive pipeline is already optimal (no FROM items).
func analyzeSFW(q *ast.SFW, o OptOptions) (*sfwPhys, []string) {
	if q.Select.Value == nil || len(q.From) == 0 {
		return nil, nil
	}
	permissive := o.Mode == eval.Permissive
	n := len(q.From)

	// Variable sets: per top-level item, and the names WHERE conjuncts
	// may not be pushed past (LET and window bindings happen after FROM).
	itemV := make([]map[string]bool, n)
	for i, item := range q.From {
		itemV[i] = nameSet(ast.ItemVars(item))
	}
	late := map[string]bool{}
	for _, l := range q.Lets {
		late[l.Name] = true
	}
	for _, w := range q.Windows {
		late[w.Name] = true
	}

	phys := &sfwPhys{steps: make([]fromStep, n), scanEst: -1}
	for i := range phys.steps {
		phys.steps[i] = fromStep{item: q.From[i], estSrc: -1, estOut: -1}
	}

	// The conjunct pool pushdown draws from: the WHERE conjuncts, plus —
	// when reordering flattens JOIN chains below — their ON conjuncts.
	var pool []ast.Expr
	if permissive && q.Where != nil {
		pool = conjuncts(q.Where)
	}

	// Cost-based join reordering: when statistics cover every leaf of the
	// FROM chain and the written order is estimated to be expensive, run
	// the steps smallest-estimated-intermediate-first. The runtime
	// buffers bindings and restores written production order
	// (reorder.go), and every predicate stays a verify filter, so
	// results are byte-identical to the written plan.
	var reorderNotes []string
	if permissive && o.Compile && o.Stats != nil {
		if ro := planJoinOrder(q, o, pool, late); ro != nil {
			n = len(ro.items)
			phys.steps = make([]fromStep, n)
			itemV = make([]map[string]bool, n)
			for i, item := range ro.items {
				phys.steps[i] = fromStep{item: item, estSrc: -1, estOut: -1}
				itemV[i] = nameSet(ast.ItemVars(item))
			}
			phys.reorder = ro.exec
			pool = append(pool, ro.on...)
			reorderNotes = ro.notes
		}
	}

	// Predicate pushdown: each conjunct runs right after the last item
	// binding one of its free variables.
	pushed := 0
	if permissive {
		for _, c := range pool {
			fv := ast.FreeVars(c)
			if intersects(fv, late) {
				phys.residual = append(phys.residual, c)
				continue
			}
			level := -1
			for i := range itemV {
				if intersects(fv, itemV[i]) {
					level = i
				}
			}
			if level < 0 {
				phys.pre = append(phys.pre, c)
				pushed++
			} else {
				phys.steps[level].filters = append(phys.steps[level].filters, c)
				if level < n-1 {
					pushed++
				}
			}
		}
	} else if q.Where != nil {
		phys.residual = conjuncts(q.Where)
	}

	// Source hoisting: item i's source is uncorrelated when it has no
	// free variable bound by items 0..i-1. The outermost item is
	// evaluated once regardless.
	earlier := map[string]bool{}
	hoisted := 0
	for i := range phys.steps {
		switch x := phys.steps[i].item.(type) {
		case *ast.FromExpr:
			if i > 0 && !ast.FreeVarsOver(x.Expr, earlier) {
				phys.steps[i].hoist = true
				hoisted++
			}
		case *ast.FromUnpivot:
			if i > 0 && !ast.FreeVarsOver(x.Expr, earlier) {
				phys.steps[i].hoist = true
				hoisted++
			}
		}
		for v := range itemV[i] {
			earlier[v] = true
		}
	}

	// Access-path selection: a FROM item scanning a named collection
	// whose pushed conjuncts include an equality or range over an
	// indexed key path probes the index instead. The conjuncts stay in
	// the step's filters, so every index candidate is re-verified and
	// the rewrite is a pure prefilter. Like pushdown, it only fires in
	// permissive mode (a probe key that would fault under stop-on-error
	// could otherwise be evaluated when the naive plan never reaches it).
	var idxNotes []string
	if permissive && o.Indexes != nil {
		for i := range phys.steps {
			step := &phys.steps[i]
			x, ok := step.item.(*ast.FromExpr)
			if !ok || len(step.filters) == 0 {
				continue
			}
			ref, ok := x.Expr.(*ast.NamedRef)
			if !ok {
				continue
			}
			if ia := chooseIndexAccess(o.Indexes, ref.Name, x, step.filters, itemV[i]); ia != nil {
				// Index-vs-scan by estimated selectivity: on a large
				// collection an access expected to return a big fraction
				// of the rows loses to the scan's locality and is vetoed
				// (the pushed filters it matched still apply).
				if keep, est, rows := indexWorthIt(o.Stats, ref.Name, ia); !keep {
					idxNotes = append(idxNotes, fmt.Sprintf("index-skip(%s est=%d/%d)", ia.name, est, rows))
					continue
				}
				step.idx = ia
				if ia.eq != nil {
					idxNotes = append(idxNotes, fmt.Sprintf("index-eq(%s)", ia.name))
				} else {
					idxNotes = append(idxNotes, fmt.Sprintf("index-range(%s)", ia.name))
				}
			}
		}
	}

	// Hash equi-joins.
	hashed := 0
	if permissive {
		earlier = map[string]bool{}
		for i := range phys.steps {
			step := &phys.steps[i]
			switch x := step.item.(type) {
			case *ast.FromJoin:
				if h := analyzeJoinHash(x, earlier); h != nil {
					step.hash = h
					hashed++
					// An index on a build key replaces the hash table: the
					// probe key hits the prebuilt index, skipping the build.
					if o.Indexes != nil {
						if ia := chooseJoinIndex(o.Indexes, h); ia != nil {
							h.buildIdx = ia
							idxNotes = append(idxNotes, fmt.Sprintf("index-join(%s)", ia.name))
						}
					}
				}
			case *ast.FromExpr:
				// Comma-derived: the uncorrelated right side pairs with
				// the bindings accumulated so far via pushed equi-conjuncts.
				// An index access path already covers the step (and beats
				// a hash table: no build at all).
				if step.idx != nil || !step.hoist || len(step.filters) == 0 {
					break
				}
				if h := analyzeCommaHash(x, step, itemV[i], earlier); h != nil {
					step.hash = h
					step.item = nil
					hashed++
				}
			}
			for v := range itemV[i] {
				earlier[v] = true
			}
		}
	}

	// Parallel outer scan: bag output, no LIMIT/OFFSET (their early-stop
	// and slicing need global order), no window functions, and a plain
	// scan as the outermost item. GROUP BY, DISTINCT, and HAVING all
	// merge deterministically (see parallel.go). Reordered chains buffer
	// and re-sort bindings, which assumes straight-line production.
	if len(q.OrderBy) == 0 && q.Limit == nil && q.Offset == nil && len(q.Windows) == 0 && phys.reorder == nil {
		if _, ok := phys.steps[0].item.(*ast.FromExpr); ok && phys.steps[0].hash == nil && phys.steps[0].idx == nil {
			phys.parallel = true
		}
	}

	// Row estimates for EXPLAIN ANALYZE (est_rows vs actuals) and for the
	// parallel sizing below.
	annotateEstimates(q, phys, o, itemV)
	var estNotes []string
	for i := range phys.steps {
		if h := phys.steps[i].hash; h != nil && h.estBuild >= 0 {
			estNotes = append(estNotes, fmt.Sprintf("build-side(%s est=%d)", h.right.As, h.estBuild))
		}
		if ia := phys.steps[i].idx; ia != nil && ia.estRows >= 0 {
			estNotes = append(estNotes, fmt.Sprintf("index-est(%s rows=%d)", ia.name, ia.estRows))
		}
	}

	// Parallel sizing from row counts: a scan estimated under the
	// partitioning threshold skips the worker pool (its setup would
	// dominate); larger scans get a chunk size dividing the estimate
	// across the worker budget.
	parallelNote := ""
	if phys.parallel {
		parallelNote = "parallel-scan"
		if phys.scanEst >= 0 {
			if phys.scanEst < int64(parallelMinRows) {
				phys.parallel = false
				parallelNote = fmt.Sprintf("parallel-skip(est=%d)", phys.scanEst)
			} else {
				workers := o.Parallelism
				if workers < 1 {
					workers = 1
				}
				chunk := int(phys.scanEst) / workers
				if chunk < parallelMinChunk {
					chunk = parallelMinChunk
				}
				phys.chunkHint = chunk
				parallelNote = fmt.Sprintf("parallel-scan(est=%d chunk=%d)", phys.scanEst, chunk)
			}
		}
	}

	if o.Compile {
		compileSFW(q, phys, eval.CompileOpts{Mode: o.Mode, Compat: o.Compat, Funcs: o.Funcs})
	}
	if phys.reorder != nil {
		// The reorder buffer retains row environments until the chain
		// finishes, so the fused scan must not rebind them in place.
		phys.reuseEnv = false
	}

	var notes []string
	pos := q.Pos()
	add := func(format string, args ...any) {
		notes = append(notes, fmt.Sprintf("%s at %v", fmt.Sprintf(format, args...), pos))
	}
	if pushed > 0 {
		add("pushdown(%d)", pushed)
	}
	if hoisted > 0 {
		add("hoist(%d)", hoisted)
	}
	if hashed > 0 {
		add("hash-join(%d)", hashed)
	}
	for _, n := range idxNotes {
		add("%s", n)
	}
	for _, n := range reorderNotes {
		add("%s", n)
	}
	for _, n := range estNotes {
		add("%s", n)
	}
	if parallelNote != "" {
		add("%s", parallelNote)
	}
	if phys.compiled {
		add("compiled")
	}
	return phys, notes
}

// compileSFW lowers every expression the physical pipeline evaluates per
// row — source expressions, pushed and residual filters, join and index
// keys, LET sources, HAVING, GROUP BY keys, the SELECT projection, and
// ORDER BY keys — to eval closures, once, at plan time. The compiled
// forms ride in the physical plan next to the AST they were lowered
// from; every execution site falls back to interpreting the AST when
// its compiled field is nil, so partially-compiled plans stay correct.
func compileSFW(q *ast.SFW, phys *sfwPhys, co eval.CompileOpts) {
	phys.compiled = true
	phys.reuseEnv = len(q.Windows) == 0
	phys.preC = eval.CompileAll(phys.pre, co)
	phys.residualC = eval.CompileAll(phys.residual, co)
	if len(q.Lets) > 0 {
		phys.letsC = make([]eval.CompiledExpr, len(q.Lets))
		for i, l := range q.Lets {
			phys.letsC[i] = eval.Compile(l.Expr, co)
		}
	}
	phys.havingC = eval.Compile(q.Having, co)
	phys.selectC = eval.Compile(q.Select.Value, co)
	if len(q.OrderBy) > 0 {
		phys.orderC = make([]eval.CompiledExpr, len(q.OrderBy))
		for i, ob := range q.OrderBy {
			phys.orderC[i] = eval.Compile(ob.Expr, co)
		}
	}
	if q.GroupBy != nil && len(q.GroupBy.Keys) > 0 {
		phys.groupC = make([]eval.CompiledExpr, len(q.GroupBy.Keys))
		for i, key := range q.GroupBy.Keys {
			phys.groupC[i] = eval.Compile(key.Expr, co)
		}
	}
	for i := range phys.steps {
		step := &phys.steps[i]
		step.filtersC = eval.CompileAll(step.filters, co)
		switch x := step.item.(type) {
		case *ast.FromExpr:
			step.srcC = eval.Compile(x.Expr, co)
		case *ast.FromUnpivot:
			step.srcC = eval.Compile(x.Expr, co)
		}
		if h := step.hash; h != nil {
			h.probeC = eval.CompileAll(h.probeKeys, co)
			h.buildC = eval.CompileAll(h.buildKeys, co)
			h.verifyC = eval.CompileAll(h.verify, co)
			if h.buildIdx != nil {
				h.buildIdx.eqC = eval.Compile(h.buildIdx.eq, co)
			}
		}
		if ia := step.idx; ia != nil {
			ia.eqC = eval.Compile(ia.eq, co)
			ia.loC = eval.Compile(ia.lo, co)
			ia.hiC = eval.Compile(ia.hi, co)
		}
	}
}

// chooseIndexAccess matches a step's pushed conjuncts against the
// available indexes on its collection. Equality wins over range (a
// bucket probe is the tighter prefilter); among range conjuncts, bounds
// over the same key path combine, and the first path (in conjunct
// order) with an ordered index wins. A matched key expression must be
// free of the step's own variables — it is evaluated once per incoming
// environment, before any binding this step produces.
func chooseIndexAccess(src IndexSource, collection string, x *ast.FromExpr, filters []ast.Expr, ownVars map[string]bool) *indexAccess {
	for _, c := range filters {
		path, probe := matchEqConjunct(c, x.As, ownVars)
		if path == nil {
			continue
		}
		if name, ok := src.IndexFor(collection, path, false); ok {
			return &indexAccess{name: name, collection: collection, path: path, eq: probe, estRows: -1}
		}
	}
	type bounds struct {
		path           []string
		lo, hi         ast.Expr
		loIncl, hiIncl bool
	}
	var order []*bounds
	byPath := map[string]*bounds{}
	for _, c := range filters {
		path, lo, hi, loIncl, hiIncl := matchRangeConjunct(c, x.As, ownVars)
		if path == nil {
			continue
		}
		key := strings.Join(path, "\x00")
		b := byPath[key]
		if b == nil {
			b = &bounds{path: path}
			byPath[key] = b
			order = append(order, b)
		}
		if lo != nil && b.lo == nil {
			b.lo, b.loIncl = lo, loIncl
		}
		if hi != nil && b.hi == nil {
			b.hi, b.hiIncl = hi, hiIncl
		}
	}
	for _, b := range order {
		if name, ok := src.IndexFor(collection, b.path, true); ok {
			return &indexAccess{
				name: name, collection: collection, path: b.path, ordered: true,
				lo: b.lo, hi: b.hi, loIncl: b.loIncl, hiIncl: b.hiIncl, estRows: -1,
			}
		}
	}
	return nil
}

// chooseJoinIndex matches a hash join's build keys against indexes on
// the build-side collection: buildKeys[j] must be a key path over the
// build variable, and the paired probe key becomes the index probe.
func chooseJoinIndex(src IndexSource, h *hashJoinStep) *indexAccess {
	ref, ok := h.right.Expr.(*ast.NamedRef)
	if !ok {
		return nil
	}
	for j, bk := range h.buildKeys {
		path := fieldPath(bk, h.right.As)
		if path == nil {
			continue
		}
		if name, ok := src.IndexFor(ref.Name, path, false); ok {
			return &indexAccess{name: name, collection: ref.Name, path: path, eq: h.probeKeys[j], estRows: -1}
		}
	}
	return nil
}

// matchEqConjunct matches `path = key` (either orientation) where path
// navigates attributes from the step variable and key is free of the
// step's variables.
func matchEqConjunct(c ast.Expr, base string, ownVars map[string]bool) ([]string, ast.Expr) {
	eq, ok := c.(*ast.Binary)
	if !ok || eq.Op != "=" {
		return nil, nil
	}
	if path := fieldPath(eq.L, base); path != nil && !intersects(ast.FreeVars(eq.R), ownVars) {
		return path, eq.R
	}
	if path := fieldPath(eq.R, base); path != nil && !intersects(ast.FreeVars(eq.L), ownVars) {
		return path, eq.L
	}
	return nil, nil
}

// matchRangeConjunct matches one range conjunct over a key path: an
// ordering comparison `path < key` / `key <= path` (either orientation)
// or `path BETWEEN lo AND hi`. Bound expressions must be free of the
// step's variables.
func matchRangeConjunct(c ast.Expr, base string, ownVars map[string]bool) (path []string, lo, hi ast.Expr, loIncl, hiIncl bool) {
	switch x := c.(type) {
	case *ast.Binary:
		var flip func(op string) (string, bool)
		flip = func(op string) (string, bool) {
			switch op {
			case "<":
				return ">", true
			case "<=":
				return ">=", true
			case ">":
				return "<", true
			case ">=":
				return "<=", true
			}
			return "", false
		}
		op := x.Op
		l, r := x.L, x.R
		if _, ok := flip(op); !ok {
			return nil, nil, nil, false, false
		}
		path = fieldPath(l, base)
		if path == nil {
			// `key < path` is `path > key`.
			if path = fieldPath(r, base); path == nil {
				return nil, nil, nil, false, false
			}
			op, _ = flip(op)
			l, r = r, l
		}
		if intersects(ast.FreeVars(r), ownVars) {
			return nil, nil, nil, false, false
		}
		switch op {
		case "<":
			return path, nil, r, false, false
		case "<=":
			return path, nil, r, false, true
		case ">":
			return path, r, nil, false, false
		case ">=":
			return path, r, nil, true, false
		}
	case *ast.Between:
		if x.Negate {
			return nil, nil, nil, false, false
		}
		path = fieldPath(x.Target, base)
		if path == nil {
			return nil, nil, nil, false, false
		}
		if intersects(ast.FreeVars(x.Lo), ownVars) || intersects(ast.FreeVars(x.Hi), ownVars) {
			return nil, nil, nil, false, false
		}
		return path, x.Lo, x.Hi, true, true
	}
	return nil, nil, nil, false, false
}

// fieldPath decomposes a chain of attribute accesses rooted at the
// variable base (`base.a.b.c`) into its path steps, or nil when e is
// anything else.
func fieldPath(e ast.Expr, base string) []string {
	var rev []string
	for {
		switch x := e.(type) {
		case *ast.FieldAccess:
			rev = append(rev, x.Name)
			e = x.Base
		case *ast.VarRef:
			if x.Name != base || len(rev) == 0 {
				return nil
			}
			path := make([]string, len(rev))
			for i, s := range rev {
				path[len(rev)-1-i] = s
			}
			return path
		default:
			return nil
		}
	}
}

// analyzeJoinHash turns an INNER or LEFT JOIN with an uncorrelated
// FromExpr right side and splittable equi-conjuncts in its ON condition
// into a hash join. earlier is the set of variables bound by items to the
// join's left in the enclosing block.
func analyzeJoinHash(x *ast.FromJoin, earlier map[string]bool) *hashJoinStep {
	if x.Kind != ast.JoinInner && x.Kind != ast.JoinLeft {
		return nil
	}
	if x.On == nil {
		return nil
	}
	right, ok := x.Right.(*ast.FromExpr)
	if !ok {
		return nil
	}
	leftVars := nameSet(ast.ItemVars(x.Left))
	probeSide := union(earlier, leftVars)
	if ast.FreeVarsOver(right.Expr, probeSide) {
		return nil
	}
	rightVars := nameSet(ast.ItemVars(right))
	probeKeys, buildKeys := splitEquiKeys(conjuncts(x.On), rightVars, probeSide)
	if len(probeKeys) == 0 {
		return nil
	}
	return &hashJoinStep{
		left:      x.Left,
		right:     right,
		probeKeys: probeKeys,
		buildKeys: buildKeys,
		// The full ON condition re-verifies every candidate, keeping
		// join semantics exactly those of the nested loop.
		verify:   []ast.Expr{x.On},
		leftJoin: x.Kind == ast.JoinLeft,
		padVars:  ast.ItemVars(right),
		estBuild: -1,
		estOut:   -1,
	}
}

// analyzeCommaHash turns an uncorrelated comma item with pushed
// equi-conjuncts into a probe-only hash join: the incoming environment
// probes the table built over the item's source.
func analyzeCommaHash(x *ast.FromExpr, step *fromStep, ownVars, earlier map[string]bool) *hashJoinStep {
	var equi []ast.Expr
	var rest []ast.Expr
	var probeKeys, buildKeys []ast.Expr
	for _, c := range step.filters {
		p, b, ok := splitEquiConjunct(c, ownVars, earlier)
		if !ok {
			rest = append(rest, c)
			continue
		}
		equi = append(equi, c)
		probeKeys = append(probeKeys, p)
		buildKeys = append(buildKeys, b)
	}
	if len(equi) == 0 {
		return nil
	}
	step.filters = rest
	return &hashJoinStep{
		right:     x,
		probeKeys: probeKeys,
		buildKeys: buildKeys,
		verify:    equi,
		padVars:   ast.ItemVars(x),
		estBuild:  -1,
		estOut:    -1,
	}
}

// splitEquiKeys extracts the equi-conjuncts of an ON condition: terms
// lhs = rhs where one side avoids the build variables and the other
// avoids the probe variables.
func splitEquiKeys(cs []ast.Expr, buildVars, probeVars map[string]bool) (probeKeys, buildKeys []ast.Expr) {
	for _, c := range cs {
		if p, b, ok := splitEquiConjunct(c, buildVars, probeVars); ok {
			probeKeys = append(probeKeys, p)
			buildKeys = append(buildKeys, b)
		}
	}
	return probeKeys, buildKeys
}

// splitEquiConjunct splits one conjunct of the form lhs = rhs into a
// probe-side key (no build variables free) and a build-side key (no
// probe variables free).
func splitEquiConjunct(c ast.Expr, buildVars, probeVars map[string]bool) (probe, build ast.Expr, ok bool) {
	eq, isBin := c.(*ast.Binary)
	if !isBin || eq.Op != "=" {
		return nil, nil, false
	}
	lFree := ast.FreeVars(eq.L)
	rFree := ast.FreeVars(eq.R)
	if !intersects(lFree, buildVars) && !intersects(rFree, probeVars) {
		return eq.L, eq.R, true
	}
	if !intersects(rFree, buildVars) && !intersects(lFree, probeVars) {
		return eq.R, eq.L, true
	}
	return nil, nil, false
}

// conjuncts flattens nested AND expressions into their conjunct list.
func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []ast.Expr{e}
}

func nameSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

func union(a, b map[string]bool) map[string]bool {
	s := make(map[string]bool, len(a)+len(b))
	for n := range a {
		s[n] = true
	}
	for n := range b {
		s[n] = true
	}
	return s
}

func intersects(a, b map[string]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for n := range a {
		if b[n] {
			return true
		}
	}
	return false
}
