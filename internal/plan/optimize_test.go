package plan

import (
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
)

// optimizeQuery compiles a query against a catalog holding emp and dept
// and runs the optimization pass, returning the outermost block's
// physical plan and the notes.
func optimizeQuery(t *testing.T, query string, mode eval.TypingMode) (*sfwPhys, []string) {
	t.Helper()
	cat := catalog.New()
	for name, src := range map[string]string{
		"emp":  `{{ {'id': 1, 'deptno': 1, 'projects': [{'name': 'p'}]} }}`,
		"dept": `{{ {'dno': 1, 'budget': 10} }}`,
	} {
		if err := cat.Register(name, sion.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: cat})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	notes := Optimize(core, OptOptions{Mode: mode})
	var phys *sfwPhys
	ast.Inspect(core, func(e ast.Expr) bool {
		if q, ok := e.(*ast.SFW); ok && phys == nil {
			phys, _ = q.Phys.(*sfwPhys)
			return false
		}
		return true
	})
	if phys == nil {
		t.Fatalf("no physical plan annotated for %q", query)
	}
	return phys, notes
}

func hasNote(notes []string, prefix string) bool {
	for _, n := range notes {
		if strings.HasPrefix(n, prefix) {
			return true
		}
	}
	return false
}

func TestOptimizePushdownLevels(t *testing.T) {
	phys, notes := optimizeQuery(t,
		`SELECT e.id FROM emp AS e, dept AS d WHERE e.id > 0 AND d.budget > 2 AND 1 = 1`,
		eval.Permissive)
	if len(phys.pre) != 1 {
		t.Errorf("variable-free conjunct should be a pre filter, got %d", len(phys.pre))
	}
	if len(phys.steps[0].filters) != 1 {
		t.Errorf("e.id > 0 should push to step 0, got %d filters", len(phys.steps[0].filters))
	}
	if len(phys.steps[1].filters) != 1 {
		t.Errorf("d.budget > 2 should land on step 1, got %d filters", len(phys.steps[1].filters))
	}
	if len(phys.residual) != 0 {
		t.Errorf("no conjunct references a LET, residual should be empty, got %d", len(phys.residual))
	}
	if !phys.steps[1].hoist {
		t.Error("uncorrelated dept scan should hoist")
	}
	if !phys.parallel {
		t.Error("unordered block over a plain scan should be parallel-eligible")
	}
	if !hasNote(notes, "pushdown(") || !hasNote(notes, "hoist(") {
		t.Errorf("notes missing pushdown/hoist: %v", notes)
	}
}

func TestOptimizeStrictModeDisablesPushdown(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`SELECT e.id FROM emp AS e, dept AS d WHERE e.id > 0 AND d.budget > 2`,
		eval.StopOnError)
	// Reordering conjuncts could change which error surfaces first in
	// stop-on-error mode, so WHERE stays in clause position…
	if len(phys.residual) != 2 {
		t.Errorf("strict mode should keep all conjuncts residual, got %d", len(phys.residual))
	}
	if len(phys.steps[0].filters)+len(phys.steps[1].filters)+len(phys.pre) != 0 {
		t.Error("strict mode must not push any conjunct")
	}
	// …but hoisting preserves the evaluation set exactly and stays on.
	if !phys.steps[1].hoist {
		t.Error("hoisting is mode-independent and should still fire")
	}
}

func TestOptimizeLetBlocksPushdown(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`FROM emp AS e LET s = e.id WHERE s > 0 SELECT VALUE s`,
		eval.Permissive)
	if len(phys.residual) != 1 {
		t.Errorf("a conjunct over a LET name must stay residual, got %d", len(phys.residual))
	}
}

func TestOptimizeJoinHash(t *testing.T) {
	phys, notes := optimizeQuery(t,
		`SELECT e.id FROM emp AS e JOIN dept AS d ON e.deptno = d.dno`,
		eval.Permissive)
	h := phys.steps[0].hash
	if h == nil {
		t.Fatal("uncorrelated equi-join should hash")
	}
	if h.leftJoin {
		t.Error("INNER JOIN must not pad")
	}
	if len(h.probeKeys) != 1 || len(h.buildKeys) != 1 {
		t.Errorf("want 1 key pair, got %d/%d", len(h.probeKeys), len(h.buildKeys))
	}
	if !hasNote(notes, "hash-join(") {
		t.Errorf("notes missing hash-join: %v", notes)
	}
}

func TestOptimizeLeftJoinHash(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`SELECT e.id FROM emp AS e LEFT JOIN dept AS d ON d.dno = e.deptno`,
		eval.Permissive)
	h := phys.steps[0].hash
	if h == nil {
		t.Fatal("LEFT equi-join should hash")
	}
	if !h.leftJoin {
		t.Error("LEFT JOIN must keep the padding path")
	}
	if len(h.padVars) != 1 || h.padVars[0] != "d" {
		t.Errorf("padVars = %v, want [d]", h.padVars)
	}
}

func TestOptimizeCorrelatedJoinStaysNestedLoop(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`SELECT p FROM emp AS e JOIN e.projects AS p ON p.name = e.id`,
		eval.Permissive)
	if phys.steps[0].hash != nil {
		t.Error("a correlated right side cannot build a shared hash table")
	}
}

func TestOptimizeCommaHash(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`SELECT e.id FROM emp AS e, dept AS d WHERE e.deptno = d.dno AND d.budget > 0`,
		eval.Permissive)
	step := phys.steps[1]
	if step.hash == nil {
		t.Fatal("comma product with a pushed equi-conjunct should hash")
	}
	if step.item != nil {
		t.Error("a comma-derived hash step is probe-only (item must be nil)")
	}
	if len(step.hash.verify) != 1 {
		t.Errorf("the equi-conjunct verifies candidates, got %d", len(step.hash.verify))
	}
	if len(step.filters) != 1 {
		t.Errorf("the non-equi conjunct stays a step filter, got %d", len(step.filters))
	}
}

func TestOptimizeNonEquiJoinStaysNestedLoop(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`SELECT e.id FROM emp AS e JOIN dept AS d ON e.deptno < d.dno`,
		eval.Permissive)
	if phys.steps[0].hash != nil {
		t.Error("a non-equi ON condition has no hashable keys")
	}
}

func TestOptimizeParallelGating(t *testing.T) {
	phys, _ := optimizeQuery(t,
		`SELECT e.id FROM emp AS e LIMIT 1`, eval.Permissive)
	if phys.parallel {
		t.Error("LIMIT needs global order; the block must stay sequential")
	}
	phys, _ = optimizeQuery(t,
		`SELECT e.id FROM emp AS e ORDER BY e.id`, eval.Permissive)
	if phys.parallel {
		t.Error("ORDER BY blocks the parallel scan")
	}
	phys, _ = optimizeQuery(t,
		`SELECT e.id FROM emp AS e GROUP BY e.id`, eval.Permissive)
	if !phys.parallel {
		t.Error("grouped unordered blocks merge deterministically and may parallelize")
	}
}
