package plan

import (
	"sync"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/value"
)

// Parallel outer scan. An unordered block whose outermost FROM item is a
// plain scan partitions the scanned collection into contiguous chunks,
// runs the rest of the pipeline over each chunk in its own worker, and
// merges the per-worker results in chunk order. Because the chunks are
// contiguous and the merge walks them in order, the output is
// byte-identical to sequential execution: group first-appearance order,
// group content order, DISTINCT first occurrences, and row order are all
// the sequential ones. Workers never observe each other's failures; the
// merge reports the first error in chunk order, which is the error the
// sequential plan would have hit.

// parallelMinRows is the smallest outer-scan cardinality worth
// parallelizing: below it, worker startup and merge overhead dominate.
// A variable so tests can lower it.
var parallelMinRows = 1024

// parallelMinChunk bounds how finely the scan is split, so a scan barely
// over the threshold does not fan out into trivial chunks.
const parallelMinChunk = 256

// runSFWParallel executes an eligible block with a partitioned outer
// scan. done reports whether the block was handled; when false the
// caller falls back to sequential execution (the source was not a
// materialized collection, or is too small to be worth it).
//
// governor:charged-at each worker's row sink (plan.go) — the final
// merges only concatenate rows the sinks already charged, with
// checkSize bounding the combined cardinality.
func runSFWParallel(ctx *eval.Context, outer *eval.Env, q *ast.SFW, phys *sfwPhys) (result value.Value, done bool, err error) {
	scan := q.From[0].(*ast.FromExpr)

	// The pre filters and the outer source evaluate exactly once, as in
	// the sequential plan.
	ok, err := filtersPass(ctx, outer, phys.pre, phys.preC)
	if err != nil {
		return nil, true, err
	}
	if !ok {
		if ctx.Stats != nil && len(phys.pre) > 0 {
			ctx.Stats.Node(statsParent(ctx), phys, "pre", "filter", "pre").AddIn(1)
		}
		return value.Bag(nil), true, nil
	}
	src, err := evalMaybe(ctx, outer, scan.Expr, phys.steps[0].srcC)
	if err != nil {
		return nil, true, err
	}
	var elems []value.Value
	isArray := false
	switch s := src.(type) {
	case value.Array:
		elems = s
		isArray = true
	case value.Bag:
		elems = s
	default:
		// MISSING, singleton, or error sources keep the sequential
		// path's handling.
		return nil, false, nil
	}
	if len(elems) < parallelMinRows {
		return nil, false, nil
	}
	// The plan-time chunk hint (statistics row estimate divided across
	// the worker budget) bounds the split below; without statistics the
	// floor is the static minimum chunk.
	minChunk := parallelMinChunk
	if phys.chunkHint > minChunk {
		minChunk = phys.chunkHint
	}
	workers := ctx.Parallelism
	if most := len(elems) / minChunk; workers > most {
		workers = most
	}
	if workers < 2 {
		return nil, false, nil
	}

	// Steps 1..n share one physState: hoisted sources and hash tables
	// build once (under sync.Once) and are read-only afterwards.
	st := newPhysState(ctx, phys, outer)
	filters := phys.steps[0].filters
	filtersC := phys.steps[0].filtersC
	// Each worker owns its chunk's child environment exclusively, so the
	// same per-row reuse the fused sequential scan applies is safe here —
	// one rebindable env per worker, gated on the same window-free check.
	reuse := phys.compiled && phys.reuseEnv

	// EXPLAIN ANALYZE: the workers fold into the same keyed nodes the
	// sequential plan would use; only the counters below are recorded
	// here because the partitioned scan replaces step 0's production.
	var scanNode, filterNode *eval.StatsNode
	if ctx.Stats != nil {
		if st.preFilter != nil {
			st.preFilter.AddIn(1)
			st.preFilter.AddOut(1)
		}
		scanNode = st.stats[0].node
		scanNode.AddIn(int64(len(elems)))
		scanNode.Counter("chunks").Store(int64(workers))
		filterNode = st.stats[0].filter
	}

	type worker struct {
		sink    *rowSink
		grouper *groupState
		err     error
	}
	ws := make([]worker, workers)
	chunk := (len(elems) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(elems) {
			hi = len(elems)
		}
		wctx := ctx.Fork()
		sink := newRowSink(wctx, q, false, -1, 0)
		sink.keepKeys = q.Select.Distinct
		sink.bindCompiled(phys)
		ws[w].sink = sink
		var consume emit
		if q.GroupBy != nil {
			ws[w].grouper = newGroupState(wctx, outer, q.GroupBy)
			if phys.compiled {
				ws[w].grouper.keysC = phys.groupC
			}
			consume = ws[w].grouper.add
		} else {
			consume = havingChain(wctx, q, phys, sink.project)
		}
		consume = preGroupChain(wctx, q, phys, consume)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// A panic anywhere in this worker's pipeline must not kill the
			// process: it becomes the worker's error, and the merge below
			// surfaces it like any other per-chunk failure.
			defer func() {
				if p := recover(); p != nil {
					ws[w].err = wctx.Recovered(p)
				}
			}()
			if faultinject.Enabled {
				if err := faultinject.Fire(faultinject.WorkerStart); err != nil {
					ws[w].err = err
					return
				}
			}
			var child *eval.Env
			for j := lo; j < hi; j++ {
				if err := wctx.Interrupted(); err != nil {
					ws[w].err = err
					return
				}
				if child == nil || !reuse {
					child = outer.Child()
				}
				child.Bind(scan.As, elems[j])
				if scan.AtVar != "" {
					// Bags are unordered: AT binds MISSING.
					ord := value.Missing
					if isArray {
						ord = value.Int(int64(j))
					}
					child.Bind(scan.AtVar, ord)
				}
				if scanNode != nil {
					scanNode.AddOut(1)
					if filterNode != nil {
						filterNode.AddIn(1)
					}
				}
				ok, err := filtersPass(wctx, child, filters, filtersC)
				if err != nil {
					ws[w].err = err
					return
				}
				if !ok {
					continue
				}
				if filterNode != nil {
					filterNode.AddOut(1)
				}
				if err := st.run(wctx, child, 1, consume); err != nil {
					if err == errStop {
						return
					}
					ws[w].err = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for i := range ws {
		if ws[i].err != nil {
			return nil, true, ws[i].err
		}
	}

	if q.GroupBy != nil {
		merged := newGroupState(ctx, outer, q.GroupBy)
		for i := range ws {
			if err := merged.merge(ws[i].grouper); err != nil {
				return nil, true, err
			}
		}
		sink := newRowSink(ctx, q, false, -1, 0)
		sink.bindCompiled(phys)
		if err := merged.flush(havingChain(ctx, q, phys, sink.project)); err != nil && err != errStop {
			return nil, true, err
		}
		return value.Bag(sink.out), true, nil
	}

	if q.Select.Distinct {
		seen := map[string]bool{}
		var out []value.Value
		for i := range ws {
			s := ws[i].sink
			for j, v := range s.out {
				if err := ctx.Interrupted(); err != nil {
					return nil, true, err
				}
				if seen[s.keys[j]] {
					continue
				}
				seen[s.keys[j]] = true
				out = append(out, v)
				if err := checkSize(ctx, len(out)); err != nil {
					return nil, true, err
				}
			}
		}
		if ctx.Stats != nil {
			// The worker sinks each counted their local uniques; the
			// global re-deduplication is the true output cardinality.
			ctx.Stats.Node(statsParent(ctx), q, "distinct", "distinct", "").SetOut(int64(len(out)))
		}
		return value.Bag(out), true, nil
	}

	total := 0
	for i := range ws {
		total += len(ws[i].sink.out)
	}
	if err := checkSize(ctx, total); err != nil {
		return nil, true, err
	}
	out := make([]value.Value, 0, total)
	for i := range ws {
		out = append(out, ws[i].sink.out...)
	}
	return value.Bag(out), true, nil
}

// merge folds another worker's groups into g, preserving g's (chunk
// order) group-appearance order and appending content in chunk order.
//
// governor:charged-at groupState.add (from.go) — every row moved here
// was charged when its worker grouped it; checkSize re-bounds the
// merged group sizes.
func (g *groupState) merge(w *groupState) error {
	for _, ks := range w.order {
		if _, ok := g.content[ks]; !ok {
			g.order = append(g.order, ks)
			g.keyVals[ks] = w.keyVals[ks]
			g.content[ks] = w.content[ks]
		} else {
			if g.ctx.Compat {
				mergeCompatKeys(g.keyVals[ks], w.keyVals[ks])
			}
			g.content[ks] = append(g.content[ks], w.content[ks]...)
		}
		if err := checkSize(g.ctx, len(g.content[ks])); err != nil {
			return err
		}
	}
	return nil
}
