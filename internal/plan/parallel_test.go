package plan

import (
	"fmt"
	"strings"
	"testing"
)

// parallelData builds a SION bag big enough to cross the (lowered)
// parallel threshold, with heterogeneous rows: a dirty string salary
// every 97 rows and a missing title every 13.
func parallelData(n int) map[string]string {
	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		salary := fmt.Sprintf("%d", 50000+(i*7919)%150000)
		if i%97 == 96 {
			salary = `'n/a'`
		}
		if i%13 == 12 {
			fmt.Fprintf(&sb, "{'id': %d, 'deptno': %d, 'salary': %s}", i+1, i%17+1, salary)
		} else {
			fmt.Fprintf(&sb, "{'id': %d, 'deptno': %d, 'salary': %s, 'title': 'T%d'}",
				i+1, i%17+1, salary, i%5)
		}
	}
	sb.WriteString("}}")
	return map[string]string{"emp": sb.String()}
}

// lowerParallelThreshold makes the partitioned scan reachable with
// test-sized data and restores the default afterwards.
func lowerParallelThreshold(t *testing.T, rows int) {
	t.Helper()
	old := parallelMinRows
	parallelMinRows = rows
	t.Cleanup(func() { parallelMinRows = old })
}

func TestParallelScanMatchesSequential(t *testing.T) {
	lowerParallelThreshold(t, 64)
	data := parallelData(1500)
	queries := []string{
		// Plain projection: row order must be the sequential one.
		`SELECT e.id AS id, e.salary AS salary FROM emp AS e WHERE e.deptno < 9`,
		// Grouping: first-appearance group order and per-group content
		// order both merge in chunk order.
		`SELECT e.deptno AS dno, COUNT(*) AS n, SUM(e.salary) AS total
		 FROM emp AS e GROUP BY e.deptno`,
		// HAVING filters merged groups.
		`SELECT e.deptno AS dno, COUNT(*) AS n
		 FROM emp AS e GROUP BY e.deptno HAVING COUNT(*) > 80`,
		// DISTINCT: first occurrences across chunk boundaries.
		`SELECT DISTINCT e.title AS title FROM emp AS e`,
		// GROUP AS carries whole groups through the merge.
		`FROM emp AS e GROUP BY e.deptno AS dno GROUP AS g
		 SELECT dno AS dno, (FROM g AS v SELECT VALUE v.e.id) AS ids`,
		// Aggregation over a hash-joined inner side under the parallel
		// outer scan.
		`SELECT e.id AS id, d.tag AS tag FROM emp AS e, tags AS d WHERE e.deptno = d.dno`,
	}
	data["tags"] = `{{ {'dno': 1, 'tag': 'a'}, {'dno': 2, 'tag': 'b'}, {'dno': 3, 'tag': 'c'} }}`
	for _, q := range queries {
		naive, err := exec(t, data, q, false, false)
		if err != nil {
			t.Fatalf("naive %s: %v", q, err)
		}
		for _, workers := range []int{2, 4, 7} {
			par, err := execPhys(t, data, q, false, workers)
			if err != nil {
				t.Fatalf("parallel(%d) %s: %v", workers, q, err)
			}
			if naive.String() != par.String() {
				t.Errorf("parallel(%d) diverges for %s:\n  sequential %s\n  parallel   %s",
					workers, q, naive, par)
			}
		}
	}
}

// TestParallelStrictModeError: in stop-on-error mode the partitioned
// scan must surface the same error the sequential scan hits first —
// workers scan their chunks in order and the merge takes the first
// failure in chunk order.
func TestParallelStrictModeError(t *testing.T) {
	lowerParallelThreshold(t, 64)
	data := parallelData(1500) // dirty salaries every 97 rows
	q := `SELECT e.id AS id, e.salary * 2 AS double_pay FROM emp AS e`
	_, seqErr := exec(t, data, q, false, true)
	if seqErr == nil {
		t.Fatal("expected the dirty salary to fail in strict mode")
	}
	_, parErr := execPhys(t, data, q, true, 4)
	if parErr == nil {
		t.Fatal("parallel run must fail like the sequential one")
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error diverges:\n  sequential %v\n  parallel   %v", seqErr, parErr)
	}
}

// TestParallelBelowThreshold: small scans must take the sequential path
// (done=false fallback) and still produce correct results.
func TestParallelBelowThreshold(t *testing.T) {
	lowerParallelThreshold(t, 1<<30)
	data := parallelData(200)
	q := `SELECT e.deptno AS dno, COUNT(*) AS n FROM emp AS e GROUP BY e.deptno`
	naive, err := exec(t, data, q, false, false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := execPhys(t, data, q, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	if naive.String() != par.String() {
		t.Errorf("fallback diverges:\n  naive    %s\n  parallel %s", naive, par)
	}
}
