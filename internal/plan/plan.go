// Package plan executes SQL++ Core query blocks as the paper's "pipeline
// of functional clauses" (§V-B): FROM produces variable bindings, WHERE
// filters them, GROUP BY folds them into groups exposed through GROUP AS,
// HAVING filters groups, and SELECT VALUE constructs the output
// collection, with ORDER BY / LIMIT / OFFSET applied last.
//
// The pipeline streams: each clause is a transformation over a stream of
// binding environments, realized push-style, so FROM/WHERE/SELECT queries
// never materialize intermediate collections. GROUP BY and ORDER BY
// materialize by necessity.
//
// Compile queries with package rewrite first; plan assumes SQL++ Core
// form (SELECT VALUE only, aggregates already lowered to COLL_*).
package plan

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// errStop aborts binding production early (LIMIT pushdown).
var errStop = errors.New("plan: stop iteration")

// Run executes a rewritten query expression in env. Install it as
// ctx.Run so nested query blocks inside expressions execute through it.
// Every query-block form passes through here, so this is where the
// governor's nesting-depth budget is enforced: a deeply nested GROUP AS
// or subquery tower fails with a typed ResourceError instead of
// recursing without bound.
func Run(ctx *eval.Context, env *eval.Env, e ast.Expr) (value.Value, error) {
	switch e.(type) {
	case *ast.SFW, *ast.PivotQuery, *ast.SetOp, *ast.With:
	default:
		return eval.Eval(ctx, env, e)
	}
	if ctx.Gov != nil {
		if err := ctx.Gov.CheckDepth(ctx.Depth + 1); err != nil {
			return nil, err
		}
	}
	ctx.Depth++
	v, err := runBlock(ctx, env, e)
	ctx.Depth--
	return v, err
}

// runBlock dispatches one query-block form; Run has already accounted
// for its nesting depth.
func runBlock(ctx *eval.Context, env *eval.Env, e ast.Expr) (value.Value, error) {
	switch q := e.(type) {
	case *ast.SFW:
		return runSFW(ctx, env, q)
	case *ast.PivotQuery:
		return runPivot(ctx, env, q)
	case *ast.SetOp:
		return runSetOp(ctx, env, q)
	case *ast.With:
		child := env.Child()
		for _, b := range q.Bindings {
			v, err := Run(ctx, child, b.Expr)
			if err != nil {
				return nil, err
			}
			child.Bind(b.Name, v)
		}
		return Run(ctx, child, q.Body)
	default:
		return eval.Eval(ctx, env, e)
	}
}

// emit consumes one binding environment; returning an error aborts the
// stream (errStop aborts without failing the query).
type emit func(*eval.Env) error

// rowSink collects a block's projected rows: DISTINCT filtering, ORDER
// BY key evaluation (full sort or bounded top-K heap), LIMIT early-stop,
// and the collection-size guard. The parallel executor runs one sink per
// worker and merges them in chunk order, which is why the sink is a
// struct rather than closure state.
type rowSink struct {
	ctx     *eval.Context
	q       *ast.SFW
	ordered bool
	// stopAt is offset+limit when LIMIT can stop the pipeline early
	// (no ORDER BY, DISTINCT, GROUP BY, or windows); -1 otherwise.
	stopAt int64
	out    []value.Value
	// keys are the canonical DISTINCT keys of out's rows, kept only for
	// parallel workers so the merge can re-deduplicate globally.
	keys     []string
	keepKeys bool
	rows     []sortRow
	top      *topKHeap
	seen     map[string]bool
	keyBuf   []byte
	seq      int
	// gov is the resolved resource governor, nil when ungoverned; like
	// the stats nodes it is resolved once so project() pays a nil test.
	gov *eval.Governor
	// EXPLAIN ANALYZE nodes, nil when instrumentation is off. They are
	// resolved once here so project() pays a nil test per row.
	stDistinct *eval.StatsNode
	stOrder    *eval.StatsNode
	stLimit    *eval.StatsNode
	// Compiled SELECT projection and ORDER BY keys, set via bindCompiled
	// when the block was compiled; nil falls back to the interpreter.
	selectC eval.CompiledExpr
	orderC  []eval.CompiledExpr
}

// bindCompiled points the sink at the block's precompiled projection and
// ORDER BY key closures. A nil or uncompiled phys leaves the sink on the
// interpreted path.
func (s *rowSink) bindCompiled(phys *sfwPhys) {
	if phys == nil || !phys.compiled {
		return
	}
	s.selectC = phys.selectC
	s.orderC = phys.orderC
}

func newRowSink(ctx *eval.Context, q *ast.SFW, ordered bool, limit, offset int64) *rowSink {
	s := &rowSink{ctx: ctx, q: q, ordered: ordered, stopAt: -1, gov: ctx.Gov}
	if q.Select.Distinct {
		s.seen = map[string]bool{}
	}
	if limit >= 0 {
		if ordered {
			// Top-K: ORDER BY ... LIMIT k needs only the offset+limit
			// smallest rows under (sort key, arrival order), which is
			// exactly what a stable full sort would slice off.
			s.top = newTopKHeap(int(offset+limit), q.OrderBy)
		} else if !q.Select.Distinct && q.GroupBy == nil && len(q.Windows) == 0 {
			s.stopAt = offset + limit
		}
	}
	if ctx.Stats != nil {
		parent := statsParent(ctx)
		if q.Select.Distinct {
			s.stDistinct = ctx.Stats.Node(parent, q, "distinct", "distinct", "")
		}
		if ordered {
			op := "order-by"
			if s.top != nil {
				op = "top-k"
			}
			s.stOrder = ctx.Stats.Node(parent, q, "order", op, "")
		}
		if limit >= 0 || offset > 0 {
			s.stLimit = ctx.Stats.Node(parent, q, "limit", "limit", "")
		}
	}
	return s
}

// project evaluates SELECT VALUE for one binding and folds the row in.
func (s *rowSink) project(env *eval.Env) error {
	v, err := evalMaybe(s.ctx, env, s.q.Select.Value, s.selectC)
	if err != nil {
		return err
	}
	if v.Kind() == value.KindMissing {
		// A MISSING output value vanishes from a bag result; in an
		// ordered (array) result it becomes NULL to keep positions,
		// mirroring the bag/array constructors.
		if !s.ordered {
			return nil
		}
		v = value.Null
	}
	var rowKey string
	if s.q.Select.Distinct {
		if s.stDistinct != nil {
			s.stDistinct.AddIn(1)
		}
		s.keyBuf = value.AppendKey(s.keyBuf[:0], v)
		if s.seen[string(s.keyBuf)] {
			return nil
		}
		rowKey = string(s.keyBuf)
		s.seen[rowKey] = true
		if err := checkSize(s.ctx, len(s.seen)); err != nil {
			return err
		}
		if s.gov != nil {
			if err := s.gov.ChargeValues("distinct", 1, nil); err != nil {
				return err
			}
		}
		if s.stDistinct != nil {
			s.stDistinct.AddOut(1)
		}
	}
	if s.ordered {
		// The ORDER BY buffer is a materialization point: poll for
		// cancellation here too, so a deadline is honoured even when the
		// rows arrive from an already-materialized (hoisted) source whose
		// scan no longer polls per element.
		if err := s.ctx.Interrupted(); err != nil {
			return err
		}
		if s.stOrder != nil {
			s.stOrder.AddIn(1)
		}
		keys := make([]value.Value, len(s.q.OrderBy))
		for i, o := range s.q.OrderBy {
			kv, err := evalMaybe(s.ctx, env, o.Expr, compiledAt(s.orderC, i))
			if err != nil {
				return err
			}
			keys[i] = kv
		}
		r := sortRow{val: v, keys: keys, seq: s.seq}
		s.seq++
		if s.top != nil {
			grew := s.top.Len() < s.top.k
			s.top.offer(r)
			if grew && s.gov != nil {
				return s.gov.ChargeOutput("order-by", 1, v)
			}
			return nil
		}
		s.rows = append(s.rows, r)
		if s.gov != nil {
			if err := s.gov.ChargeOutput("order-by", 1, v); err != nil {
				return err
			}
		}
		return checkSize(s.ctx, len(s.rows))
	}
	s.out = append(s.out, v)
	if s.keepKeys {
		s.keys = append(s.keys, rowKey)
	}
	if s.gov != nil {
		if err := s.gov.ChargeOutput("select", 1, v); err != nil {
			return err
		}
	}
	if err := checkSize(s.ctx, len(s.out)); err != nil {
		return err
	}
	if s.stopAt >= 0 && int64(len(s.out)) >= s.stopAt {
		return errStop
	}
	return nil
}

// finish sorts (if ordered) and applies LIMIT/OFFSET, returning the
// block's result collection.
func (s *rowSink) finish(limit, offset int64) value.Value {
	out := s.out
	if s.ordered {
		var stopSort func()
		if s.stOrder != nil {
			stopSort = s.stOrder.Timer()
		}
		rows := s.rows
		if s.top != nil {
			rows = s.top.finish()
			if s.stOrder != nil {
				s.stOrder.Counter("heap_evictions").Store(s.top.evicted)
			}
		} else {
			sortRows(rows, s.q.OrderBy)
		}
		out = make([]value.Value, len(rows))
		for i, r := range rows {
			out[i] = r.val
		}
		if stopSort != nil {
			stopSort()
			s.stOrder.AddOut(int64(len(out)))
		}
	}
	if s.stLimit != nil {
		s.stLimit.AddIn(int64(len(out)))
	}
	out = applyLimitOffset(out, limit, offset)
	if s.stLimit != nil {
		s.stLimit.AddOut(int64(len(out)))
	}
	if s.ordered {
		return value.Array(out)
	}
	return value.Bag(out)
}

// havingChain wraps inner with the HAVING filter.
func havingChain(ctx *eval.Context, q *ast.SFW, phys *sfwPhys, inner emit) emit {
	if q.Having == nil {
		return inner
	}
	var havingC eval.CompiledExpr
	if phys != nil && phys.compiled {
		havingC = phys.havingC
	}
	var st *eval.StatsNode
	if ctx.Stats != nil {
		st = ctx.Stats.Node(statsParent(ctx), q, "having", "filter", "having")
	}
	return func(env *eval.Env) error {
		if st != nil {
			st.AddIn(1)
		}
		cond, err := evalMaybe(ctx, env, q.Having, havingC)
		if err != nil {
			return err
		}
		if !eval.IsTrue(cond) {
			return nil
		}
		if st != nil {
			st.AddOut(1)
		}
		return inner(env)
	}
}

// preGroupChain wraps consume with the block's WHERE (or the optimizer's
// residual conjuncts) and LET clauses, in pipeline order: LETs bind
// first, then WHERE filters.
func preGroupChain(ctx *eval.Context, q *ast.SFW, phys *sfwPhys, consume emit) emit {
	if phys != nil {
		if len(phys.residual) > 0 {
			inner := consume
			residual := phys.residual
			var st *eval.StatsNode
			if ctx.Stats != nil {
				st = ctx.Stats.Node(statsParent(ctx), q, "where", "filter", "residual")
			}
			residualC := phys.residualC
			consume = func(env *eval.Env) error {
				if st != nil {
					st.AddIn(1)
				}
				ok, err := filtersPass(ctx, env, residual, residualC)
				if err != nil || !ok {
					return err
				}
				if st != nil {
					st.AddOut(1)
				}
				return inner(env)
			}
		}
	} else if q.Where != nil {
		inner := consume
		var st *eval.StatsNode
		if ctx.Stats != nil {
			st = ctx.Stats.Node(statsParent(ctx), q, "where", "filter", "where")
		}
		consume = func(env *eval.Env) error {
			if st != nil {
				st.AddIn(1)
			}
			cond, err := eval.Eval(ctx, env, q.Where)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			if st != nil {
				st.AddOut(1)
			}
			return inner(env)
		}
	}
	if len(q.Lets) > 0 {
		inner := consume
		lets := q.Lets
		var letsC []eval.CompiledExpr
		if phys != nil && phys.compiled {
			letsC = phys.letsC
		}
		consume = func(env *eval.Env) error {
			for i, l := range lets {
				v, err := evalMaybe(ctx, env, l.Expr, compiledAt(letsC, i))
				if err != nil {
					return err
				}
				env.Bind(l.Name, v)
			}
			return inner(env)
		}
	}
	return consume
}

// runSFW executes one query block.
func runSFW(ctx *eval.Context, outer *eval.Env, q *ast.SFW) (value.Value, error) {
	// Stamp the block position so a recovered panic can report where the
	// plan was; one field store, no restore — innermost wins.
	ctx.PlanPos = q.Pos()
	if q.Select.Value == nil {
		return nil, fmt.Errorf("plan: query block not in Core form (SELECT sugar not lowered) at %s", q.Pos())
	}
	if ctx.MaterializeClauses {
		return runSFWMaterialized(ctx, outer, q)
	}

	ordered := len(q.OrderBy) > 0
	limit, offset, err := evalLimitOffset(ctx, outer, q)
	if err != nil {
		return nil, err
	}

	phys, _ := q.Phys.(*sfwPhys)

	// EXPLAIN ANALYZE: create this block's node and pre-create its
	// operator skeleton in pipeline order, then make the block the parent
	// for everything (including subqueries) executed while it runs.
	var block *eval.StatsNode
	if ctx.Stats != nil {
		block = ctx.Stats.Node(statsParent(ctx), q, "block", "select", q.Pos().String())
		buildBlockSkeleton(ctx, q, phys, limit, offset, block)
		saved := ctx.StatsParent
		ctx.StatsParent = block
		defer func() { ctx.StatsParent = saved }()
		defer block.Timer()()
	}

	if phys != nil && phys.parallel && ctx.Parallelism > 1 {
		if v, done, err := runSFWParallel(ctx, outer, q, phys); done {
			if block != nil && err == nil {
				block.SetOut(resultLen(v))
			}
			return v, err
		}
	}

	sink := newRowSink(ctx, q, ordered, limit, offset)
	sink.bindCompiled(phys)

	// Window functions force materialization of the post-group bindings:
	// each partition must be complete before any row's value is known.
	var windowEnvs []*eval.Env
	postHaving := sink.project
	if len(q.Windows) > 0 {
		sink.stopAt = -1
		postHaving = func(env *eval.Env) error {
			if err := ctx.Interrupted(); err != nil {
				return err
			}
			windowEnvs = append(windowEnvs, env)
			if ctx.Gov != nil {
				if err := ctx.Gov.ChargeValues("window", 1, nil); err != nil {
					return err
				}
			}
			return checkSize(ctx, len(windowEnvs))
		}
	}

	// postGroup runs HAVING and then projection (or window collection)
	// for a group-output binding.
	postGroup := havingChain(ctx, q, phys, postHaving)

	// The consumer of FROM/WHERE bindings.
	var consume emit
	var grouper *groupState
	if q.GroupBy != nil {
		grouper = newGroupState(ctx, outer, q.GroupBy)
		if phys != nil && phys.compiled {
			grouper.keysC = phys.groupC
		}
		consume = grouper.add
	} else {
		consume = postGroup
	}
	consume = preGroupChain(ctx, q, phys, consume)

	if phys != nil {
		err = newPhysState(ctx, phys, outer).produce(ctx, consume)
	} else {
		err = produceFrom(ctx, outer, q.From, consume)
	}
	if err != nil && err != errStop {
		return nil, err
	}

	if grouper != nil {
		if err := grouper.flush(postGroup); err != nil && err != errStop {
			return nil, err
		}
	}

	if len(q.Windows) > 0 {
		var stopWin func()
		if block != nil {
			wn := ctx.Stats.Node(block, q, "window", "window", "")
			wn.AddIn(int64(len(windowEnvs)))
			wn.AddOut(int64(len(windowEnvs)))
			stopWin = wn.Timer()
		}
		if err := computeWindows(ctx, q.Windows, windowEnvs); err != nil {
			return nil, err
		}
		if stopWin != nil {
			stopWin()
		}
		for _, wenv := range windowEnvs {
			if err := sink.project(wenv); err != nil {
				if err == errStop {
					break
				}
				return nil, err
			}
		}
	}

	res := sink.finish(limit, offset)
	if block != nil {
		block.SetOut(resultLen(res))
	}
	return res, nil
}

// evalLimitOffset evaluates LIMIT and OFFSET in the outer environment.
// limit is -1 when absent.
func evalLimitOffset(ctx *eval.Context, outer *eval.Env, q *ast.SFW) (limit, offset int64, err error) {
	limit = -1
	if q.Limit != nil {
		v, err := eval.Eval(ctx, outer, q.Limit)
		if err != nil {
			return 0, 0, err
		}
		n, ok := value.AsInt(v)
		if !ok || n < 0 {
			return 0, 0, fmt.Errorf("plan: LIMIT must be a non-negative integer, got %s at %s", v, q.Limit.Pos())
		}
		limit = n
	}
	if q.Offset != nil {
		v, err := eval.Eval(ctx, outer, q.Offset)
		if err != nil {
			return 0, 0, err
		}
		n, ok := value.AsInt(v)
		if !ok || n < 0 {
			return 0, 0, fmt.Errorf("plan: OFFSET must be a non-negative integer, got %s at %s", v, q.Offset.Pos())
		}
		offset = n
	}
	return limit, offset, nil
}

func applyLimitOffset(out []value.Value, limit, offset int64) []value.Value {
	if offset > 0 {
		if offset >= int64(len(out)) {
			return nil
		}
		out = out[offset:]
	}
	if limit >= 0 && limit < int64(len(out)) {
		out = out[:limit]
	}
	return out
}

// checkSize enforces the context's collection-size guard.
func checkSize(ctx *eval.Context, n int) error {
	if ctx.MaxCollectionSize > 0 && n > ctx.MaxCollectionSize {
		return fmt.Errorf("plan: intermediate collection exceeds limit of %d values", ctx.MaxCollectionSize)
	}
	return nil
}

type sortRow struct {
	val  value.Value
	keys []value.Value
	// seq is the row's arrival order; the top-K heap breaks sort-key
	// ties on it to reproduce the stable full sort exactly.
	seq int
}

// cmpRows orders two rows by the ORDER BY items using the SQL++ total
// order, honouring DESC and NULLS FIRST/LAST. In the total order the
// absent values sort lowest, which matches SQL's NULLS-FIRST-ascending
// when no modifier is given; an explicit modifier overrides.
func cmpRows(a, b sortRow, items []ast.OrderItem) int {
	for k, o := range items {
		av, bv := a.keys[k], b.keys[k]
		aAbs, bAbs := value.IsAbsent(av), value.IsAbsent(bv)
		if aAbs != bAbs && o.NullsFirst != nil {
			if *o.NullsFirst == aAbs {
				return -1
			}
			return 1
		}
		c := value.Compare(av, bv)
		if c == 0 {
			continue
		}
		if o.Desc {
			return -c
		}
		return c
	}
	return 0
}

// sortRows stably orders rows by the ORDER BY items.
func sortRows(rows []sortRow, items []ast.OrderItem) {
	sort.SliceStable(rows, func(i, j int) bool {
		return cmpRows(rows[i], rows[j], items) < 0
	})
}

// topKHeap keeps the k first rows of the stable ORDER BY order: a
// max-heap under (sort key, arrival order) whose root is the worst row
// kept so far. ORDER BY ... LIMIT then costs O(n log k) time and O(k)
// space instead of materializing and sorting all n rows.
type topKHeap struct {
	k     int
	items []ast.OrderItem
	rows  []sortRow
	// evicted counts root replacements once the heap is full — the rows a
	// full sort would have materialized but the heap discarded.
	evicted int64
}

func newTopKHeap(k int, items []ast.OrderItem) *topKHeap {
	return &topKHeap{k: k, items: items}
}

// before reports whether a precedes b in the final output order.
func (h *topKHeap) before(a, b sortRow) bool {
	c := cmpRows(a, b, h.items)
	return c < 0 || (c == 0 && a.seq < b.seq)
}

func (h *topKHeap) Len() int           { return len(h.rows) }
func (h *topKHeap) Less(i, j int) bool { return h.before(h.rows[j], h.rows[i]) }
func (h *topKHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *topKHeap) Push(x any)         { h.rows = append(h.rows, x.(sortRow)) }
func (h *topKHeap) Pop() any {
	r := h.rows[len(h.rows)-1]
	h.rows = h.rows[:len(h.rows)-1]
	return r
}

// offer folds one row in, keeping only the k output-first rows. A row
// tying the current worst is discarded: its arrival order places it
// after every row already kept.
func (h *topKHeap) offer(r sortRow) {
	if h.k == 0 {
		return
	}
	if len(h.rows) < h.k {
		heap.Push(h, r)
		return
	}
	if h.before(r, h.rows[0]) {
		h.rows[0] = r
		heap.Fix(h, 0)
		h.evicted++
	}
}

// finish returns the kept rows in output order.
func (h *topKHeap) finish() []sortRow {
	rows := h.rows
	sort.Slice(rows, func(i, j int) bool { return h.before(rows[i], rows[j]) })
	return rows
}

// runPivot executes a PIVOT query (§VI-B): the pipeline's bindings each
// contribute one attribute (name, value) to a single constructed tuple.
// Bindings whose name is not a string or whose value is MISSING are
// skipped in permissive mode and are an error in stop-on-error mode.
func runPivot(ctx *eval.Context, outer *eval.Env, q *ast.PivotQuery) (value.Value, error) {
	ctx.PlanPos = q.Pos()
	if ctx.Stats != nil {
		block := ctx.Stats.Node(statsParent(ctx), q, "block", "pivot", q.Pos().String())
		block.AddOut(1)
		saved := ctx.StatsParent
		ctx.StatsParent = block
		defer func() { ctx.StatsParent = saved }()
		defer block.Timer()()
	}
	result := value.EmptyTuple()
	project := func(env *eval.Env) error {
		nameV, err := eval.Eval(ctx, env, q.Name)
		if err != nil {
			return err
		}
		name, ok := nameV.(value.String)
		if !ok {
			if ctx.Mode == eval.StopOnError {
				return &eval.TypeError{Pos: q.Name.Pos(), Op: "PIVOT", Detail: "attribute name is " + nameV.Kind().String()}
			}
			return nil
		}
		v, err := eval.Eval(ctx, env, q.Value)
		if err != nil {
			return err
		}
		result.Put(string(name), v)
		if ctx.Gov != nil {
			return ctx.Gov.ChargeValues("pivot", 1, v)
		}
		return nil
	}
	post := project
	if q.Having != nil {
		inner := post
		post = func(env *eval.Env) error {
			cond, err := eval.Eval(ctx, env, q.Having)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			return inner(env)
		}
	}
	var consume emit
	var grouper *groupState
	if q.GroupBy != nil {
		grouper = newGroupState(ctx, outer, q.GroupBy)
		consume = grouper.add
	} else {
		consume = post
	}
	if q.Where != nil {
		inner := consume
		consume = func(env *eval.Env) error {
			cond, err := eval.Eval(ctx, env, q.Where)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			return inner(env)
		}
	}
	if len(q.Lets) > 0 {
		inner := consume
		lets := q.Lets
		consume = func(env *eval.Env) error {
			for _, l := range lets {
				v, err := eval.Eval(ctx, env, l.Expr)
				if err != nil {
					return err
				}
				env.Bind(l.Name, v)
			}
			return inner(env)
		}
	}
	if err := produceFrom(ctx, outer, q.From, consume); err != nil && err != errStop {
		return nil, err
	}
	if grouper != nil {
		if err := grouper.flush(post); err != nil && err != errStop {
			return nil, err
		}
	}
	return result, nil
}
