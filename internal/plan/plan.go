// Package plan executes SQL++ Core query blocks as the paper's "pipeline
// of functional clauses" (§V-B): FROM produces variable bindings, WHERE
// filters them, GROUP BY folds them into groups exposed through GROUP AS,
// HAVING filters groups, and SELECT VALUE constructs the output
// collection, with ORDER BY / LIMIT / OFFSET applied last.
//
// The pipeline streams: each clause is a transformation over a stream of
// binding environments, realized push-style, so FROM/WHERE/SELECT queries
// never materialize intermediate collections. GROUP BY and ORDER BY
// materialize by necessity.
//
// Compile queries with package rewrite first; plan assumes SQL++ Core
// form (SELECT VALUE only, aggregates already lowered to COLL_*).
package plan

import (
	"errors"
	"fmt"
	"sort"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// errStop aborts binding production early (LIMIT pushdown).
var errStop = errors.New("plan: stop iteration")

// Run executes a rewritten query expression in env. Install it as
// ctx.Run so nested query blocks inside expressions execute through it.
func Run(ctx *eval.Context, env *eval.Env, e ast.Expr) (value.Value, error) {
	switch q := e.(type) {
	case *ast.SFW:
		return runSFW(ctx, env, q)
	case *ast.PivotQuery:
		return runPivot(ctx, env, q)
	case *ast.SetOp:
		return runSetOp(ctx, env, q)
	case *ast.With:
		child := env.Child()
		for _, b := range q.Bindings {
			v, err := Run(ctx, child, b.Expr)
			if err != nil {
				return nil, err
			}
			child.Bind(b.Name, v)
		}
		return Run(ctx, child, q.Body)
	default:
		return eval.Eval(ctx, env, e)
	}
}

// emit consumes one binding environment; returning an error aborts the
// stream (errStop aborts without failing the query).
type emit func(*eval.Env) error

// runSFW executes one query block.
func runSFW(ctx *eval.Context, outer *eval.Env, q *ast.SFW) (value.Value, error) {
	if q.Select.Value == nil {
		return nil, fmt.Errorf("plan: query block not in Core form (SELECT sugar not lowered) at %s", q.Pos())
	}
	if ctx.MaterializeClauses {
		return runSFWMaterialized(ctx, outer, q)
	}

	ordered := len(q.OrderBy) > 0
	limit, offset, err := evalLimitOffset(ctx, outer, q)
	if err != nil {
		return nil, err
	}

	var rows []sortRow
	var out []value.Value
	seen := map[string]bool{} // DISTINCT filter
	produced := 0             // rows collected, for LIMIT pushdown

	// canStopEarly: without ORDER BY or DISTINCT, LIMIT can stop the
	// whole pipeline as soon as enough rows exist.
	canStopEarly := !ordered && !q.Select.Distinct && limit >= 0 && q.GroupBy == nil

	project := func(env *eval.Env) error {
		v, err := eval.Eval(ctx, env, q.Select.Value)
		if err != nil {
			return err
		}
		if v.Kind() == value.KindMissing {
			// A MISSING output value vanishes from a bag result; in an
			// ordered (array) result it becomes NULL to keep positions,
			// mirroring the bag/array constructors.
			if !ordered {
				return nil
			}
			v = value.Null
		}
		if q.Select.Distinct {
			k := value.Key(v)
			if seen[k] {
				return nil
			}
			seen[k] = true
		}
		if ordered {
			keys := make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				kv, err := eval.Eval(ctx, env, o.Expr)
				if err != nil {
					return err
				}
				keys[i] = kv
			}
			rows = append(rows, sortRow{val: v, keys: keys})
			return checkSize(ctx, len(rows))
		}
		out = append(out, v)
		if err := checkSize(ctx, len(out)); err != nil {
			return err
		}
		produced++
		if canStopEarly && int64(produced) >= offset+limit {
			return errStop
		}
		return nil
	}

	// Window functions force materialization of the post-group bindings:
	// each partition must be complete before any row's value is known.
	var windowEnvs []*eval.Env
	postHaving := project
	if len(q.Windows) > 0 {
		canStopEarly = false
		postHaving = func(env *eval.Env) error {
			windowEnvs = append(windowEnvs, env)
			return checkSize(ctx, len(windowEnvs))
		}
	}

	// postGroup runs HAVING and then projection (or window collection)
	// for a group-output binding.
	postGroup := postHaving
	if q.Having != nil {
		inner := postGroup
		postGroup = func(env *eval.Env) error {
			cond, err := eval.Eval(ctx, env, q.Having)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			return inner(env)
		}
	}

	// The consumer of FROM/WHERE bindings.
	var consume emit
	var grouper *groupState
	if q.GroupBy != nil {
		grouper = newGroupState(ctx, outer, q.GroupBy)
		consume = grouper.add
	} else {
		consume = postGroup
	}

	if q.Where != nil {
		inner := consume
		consume = func(env *eval.Env) error {
			cond, err := eval.Eval(ctx, env, q.Where)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			return inner(env)
		}
	}
	if len(q.Lets) > 0 {
		inner := consume
		lets := q.Lets
		consume = func(env *eval.Env) error {
			for _, l := range lets {
				v, err := eval.Eval(ctx, env, l.Expr)
				if err != nil {
					return err
				}
				env.Bind(l.Name, v)
			}
			return inner(env)
		}
	}

	if err := produceFrom(ctx, outer, q.From, consume); err != nil && err != errStop {
		return nil, err
	}

	if grouper != nil {
		if err := grouper.flush(postGroup); err != nil && err != errStop {
			return nil, err
		}
	}

	if len(q.Windows) > 0 {
		if err := computeWindows(ctx, q.Windows, windowEnvs); err != nil {
			return nil, err
		}
		for _, wenv := range windowEnvs {
			if err := project(wenv); err != nil {
				if err == errStop {
					break
				}
				return nil, err
			}
		}
	}

	if ordered {
		sortRows(rows, q.OrderBy)
		out = make([]value.Value, len(rows))
		for i, r := range rows {
			out[i] = r.val
		}
	}

	out = applyLimitOffset(out, limit, offset)
	if ordered {
		return value.Array(out), nil
	}
	return value.Bag(out), nil
}

// evalLimitOffset evaluates LIMIT and OFFSET in the outer environment.
// limit is -1 when absent.
func evalLimitOffset(ctx *eval.Context, outer *eval.Env, q *ast.SFW) (limit, offset int64, err error) {
	limit = -1
	if q.Limit != nil {
		v, err := eval.Eval(ctx, outer, q.Limit)
		if err != nil {
			return 0, 0, err
		}
		n, ok := value.AsInt(v)
		if !ok || n < 0 {
			return 0, 0, fmt.Errorf("plan: LIMIT must be a non-negative integer, got %s at %s", v, q.Limit.Pos())
		}
		limit = n
	}
	if q.Offset != nil {
		v, err := eval.Eval(ctx, outer, q.Offset)
		if err != nil {
			return 0, 0, err
		}
		n, ok := value.AsInt(v)
		if !ok || n < 0 {
			return 0, 0, fmt.Errorf("plan: OFFSET must be a non-negative integer, got %s at %s", v, q.Offset.Pos())
		}
		offset = n
	}
	return limit, offset, nil
}

func applyLimitOffset(out []value.Value, limit, offset int64) []value.Value {
	if offset > 0 {
		if offset >= int64(len(out)) {
			return nil
		}
		out = out[offset:]
	}
	if limit >= 0 && limit < int64(len(out)) {
		out = out[:limit]
	}
	return out
}

// checkSize enforces the context's collection-size guard.
func checkSize(ctx *eval.Context, n int) error {
	if ctx.MaxCollectionSize > 0 && n > ctx.MaxCollectionSize {
		return fmt.Errorf("plan: intermediate collection exceeds limit of %d values", ctx.MaxCollectionSize)
	}
	return nil
}

type sortRow struct {
	val  value.Value
	keys []value.Value
}

// sortRows orders rows by the ORDER BY items using the SQL++ total order,
// honouring DESC and NULLS FIRST/LAST. In the total order the absent
// values sort lowest, which matches SQL's NULLS-FIRST-ascending when no
// modifier is given; an explicit modifier overrides.
func sortRows(rows []sortRow, items []ast.OrderItem) {
	sort.SliceStable(rows, func(i, j int) bool {
		for k, o := range items {
			a, b := rows[i].keys[k], rows[j].keys[k]
			aAbs, bAbs := value.IsAbsent(a), value.IsAbsent(b)
			if aAbs != bAbs && o.NullsFirst != nil {
				if *o.NullsFirst {
					return aAbs
				}
				return bAbs
			}
			c := value.Compare(a, b)
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// runPivot executes a PIVOT query (§VI-B): the pipeline's bindings each
// contribute one attribute (name, value) to a single constructed tuple.
// Bindings whose name is not a string or whose value is MISSING are
// skipped in permissive mode and are an error in stop-on-error mode.
func runPivot(ctx *eval.Context, outer *eval.Env, q *ast.PivotQuery) (value.Value, error) {
	result := value.EmptyTuple()
	project := func(env *eval.Env) error {
		nameV, err := eval.Eval(ctx, env, q.Name)
		if err != nil {
			return err
		}
		name, ok := nameV.(value.String)
		if !ok {
			if ctx.Mode == eval.StopOnError {
				return &eval.TypeError{Pos: q.Name.Pos(), Op: "PIVOT", Detail: "attribute name is " + nameV.Kind().String()}
			}
			return nil
		}
		v, err := eval.Eval(ctx, env, q.Value)
		if err != nil {
			return err
		}
		result.Put(string(name), v)
		return nil
	}
	post := project
	if q.Having != nil {
		inner := post
		post = func(env *eval.Env) error {
			cond, err := eval.Eval(ctx, env, q.Having)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			return inner(env)
		}
	}
	var consume emit
	var grouper *groupState
	if q.GroupBy != nil {
		grouper = newGroupState(ctx, outer, q.GroupBy)
		consume = grouper.add
	} else {
		consume = post
	}
	if q.Where != nil {
		inner := consume
		consume = func(env *eval.Env) error {
			cond, err := eval.Eval(ctx, env, q.Where)
			if err != nil {
				return err
			}
			if !eval.IsTrue(cond) {
				return nil
			}
			return inner(env)
		}
	}
	if len(q.Lets) > 0 {
		inner := consume
		lets := q.Lets
		consume = func(env *eval.Env) error {
			for _, l := range lets {
				v, err := eval.Eval(ctx, env, l.Expr)
				if err != nil {
					return err
				}
				env.Bind(l.Name, v)
			}
			return inner(env)
		}
	}
	if err := produceFrom(ctx, outer, q.From, consume); err != nil && err != errStop {
		return nil, err
	}
	if grouper != nil {
		if err := grouper.flush(post); err != nil && err != errStop {
			return nil, err
		}
	}
	return result, nil
}
