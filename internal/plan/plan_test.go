package plan

import (
	"strings"
	"testing"

	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/funcs"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

var registry = funcs.NewRegistry()

// exec compiles and runs a query over object-notation data.
func exec(t *testing.T, data map[string]string, query string, compatMode, strict bool) (value.Value, error) {
	t.Helper()
	cat := catalog.New()
	for name, src := range data {
		if err := cat.Register(name, sion.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Compat: compatMode, Names: cat})
	if err != nil {
		return nil, err
	}
	mode := eval.Permissive
	if strict {
		mode = eval.StopOnError
	}
	ctx := &eval.Context{Mode: mode, Compat: compatMode, Names: cat, Funcs: registry, Run: Run}
	return Run(ctx, eval.NewEnv(), core)
}

func mustExec(t *testing.T, data map[string]string, query string) value.Value {
	t.Helper()
	v, err := exec(t, data, query, false, false)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return v
}

func checkResult(t *testing.T, got value.Value, want string) {
	t.Helper()
	w := sion.MustParse(want)
	if !value.Equivalent(got, w) {
		t.Errorf("result mismatch:\n  got  %s\n  want %s", got, w)
	}
}

func TestFromScanShapes(t *testing.T) {
	cases := []struct {
		name  string
		data  map[string]string
		query string
		want  string
	}{
		{
			"bag", map[string]string{"t": "{{1, 2}}"},
			"SELECT VALUE x FROM t AS x", "{{1, 2}}",
		},
		{
			"array", map[string]string{"t": "[1, 2]"},
			"SELECT VALUE x FROM t AS x", "{{1, 2}}",
		},
		{
			"scalar-singleton", map[string]string{"t": "5"},
			"SELECT VALUE x FROM t AS x", "{{5}}",
		},
		{
			"tuple-singleton", map[string]string{"t": "{'a': 1}"},
			"SELECT VALUE x.a FROM t AS x", "{{1}}",
		},
		{
			"null-singleton", map[string]string{"t": "null"},
			"SELECT VALUE x FROM t AS x", "{{null}}",
		},
		{
			"missing-source-is-empty", map[string]string{"t": "{'a': 1}"},
			"SELECT VALUE y FROM t.nope AS y", "{{}}",
		},
		{
			"no-from", map[string]string{},
			"SELECT VALUE 1 + 1", "{{2}}",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkResult(t, mustExec(t, c.data, c.query), c.want)
		})
	}
}

func TestFromScanStrict(t *testing.T) {
	// A non-collection source is an error in stop-on-error mode.
	_, err := exec(t, map[string]string{"t": "5"}, "SELECT VALUE x FROM t AS x", false, true)
	if err == nil {
		t.Error("scalar FROM source should error in strict mode")
	}
}

func TestAtOrdinals(t *testing.T) {
	got := mustExec(t, map[string]string{"t": "['a', 'b']"},
		"SELECT VALUE [i, v] FROM t AS v AT i")
	checkResult(t, got, "{{[0, 'a'], [1, 'b']}}")
	// Bags have no order: AT binds MISSING, and the array constructor
	// papers it over with null.
	got2 := mustExec(t, map[string]string{"t": "{{'a'}}"},
		"SELECT VALUE [i, v] FROM t AS v AT i")
	checkResult(t, got2, "{{[null, 'a']}}")
}

func TestLeftCorrelation(t *testing.T) {
	data := map[string]string{"t": `{{ {'xs': [1, 2], 'k': 10}, {'xs': [], 'k': 20}, {'xs': [3], 'k': 30} }}`}
	got := mustExec(t, data, "SELECT VALUE r.k + x FROM t AS r, r.xs AS x")
	checkResult(t, got, "{{11, 12, 33}}")
}

func TestJoins(t *testing.T) {
	data := map[string]string{
		"a": `{{ {'id': 1}, {'id': 2}, {'id': 3} }}`,
		"b": `{{ {'aid': 1, 'v': 'x'}, {'aid': 1, 'v': 'y'}, {'aid': 3, 'v': 'z'} }}`,
	}
	inner := mustExec(t, data, `
		SELECT x.id, y.v FROM a AS x JOIN b AS y ON x.id = y.aid`)
	checkResult(t, inner, `{{ {'id':1,'v':'x'}, {'id':1,'v':'y'}, {'id':3,'v':'z'} }}`)

	left := mustExec(t, data, `
		SELECT x.id, y.v FROM a AS x LEFT JOIN b AS y ON x.id = y.aid`)
	checkResult(t, left, `{{ {'id':1,'v':'x'}, {'id':1,'v':'y'}, {'id':2,'v':null}, {'id':3,'v':'z'} }}`)

	cross := mustExec(t, data, `
		SELECT VALUE [x.id, y.aid] FROM a AS x CROSS JOIN b AS y WHERE x.id = 2 AND y.aid = 3`)
	checkResult(t, cross, `{{ [2, 3] }}`)
}

func TestGroupByClasses(t *testing.T) {
	// NULL keys share a group; MISSING keys form their own; 1 and 1.0
	// group together.
	data := map[string]string{"t": `{{
	  {'k': 1, 'v': 1}, {'k': 1.0, 'v': 2},
	  {'k': null, 'v': 3}, {'k': null, 'v': 4},
	  {'v': 5}, {'v': 6},
	  {'k': 'x', 'v': 7}
	}}`}
	got := mustExec(t, data, `
		FROM t AS r GROUP BY r.k AS k GROUP AS g
		SELECT VALUE COLL_COUNT(SELECT VALUE x.r.v FROM g AS x)`)
	checkResult(t, got, "{{2, 2, 2, 1}}")
}

func TestImplicitSingleGroupOnEmptyInput(t *testing.T) {
	data := map[string]string{"t": "{{}}"}
	// Aggregates over empty input yield one row (SQL semantics) ...
	got := mustExec(t, data, "SELECT COUNT(*) AS n, SUM(r.v) AS s FROM t AS r")
	checkResult(t, got, "{{ {'n': 0, 's': null} }}")
	// ... but a grouped query yields no rows.
	got2 := mustExec(t, data, "SELECT COUNT(*) AS n FROM t AS r GROUP BY r.k")
	checkResult(t, got2, "{{}}")
}

func TestHavingWithoutAggregates(t *testing.T) {
	data := map[string]string{"t": `{{ {'k': 1}, {'k': 2} }}`}
	got := mustExec(t, data, `FROM t AS r GROUP BY r.k AS k HAVING k > 1 SELECT VALUE k`)
	checkResult(t, got, "{{2}}")
}

func TestOrderByLimitOffset(t *testing.T) {
	data := map[string]string{"t": `{{ {'v': 3}, {'v': 1}, {'v': null}, {'v': 2} }}`}
	got := mustExec(t, data, "SELECT VALUE r.v FROM t AS r ORDER BY r.v")
	checkResult(t, got, "[null, 1, 2, 3]")

	desc := mustExec(t, data, "SELECT VALUE r.v FROM t AS r ORDER BY r.v DESC")
	checkResult(t, desc, "[3, 2, 1, null]")

	nullsLast := mustExec(t, data, "SELECT VALUE r.v FROM t AS r ORDER BY r.v ASC NULLS LAST")
	checkResult(t, nullsLast, "[1, 2, 3, null]")

	limited := mustExec(t, data, "SELECT VALUE r.v FROM t AS r ORDER BY r.v NULLS LAST LIMIT 2 OFFSET 1")
	checkResult(t, limited, "[2, 3]")

	// LIMIT without ORDER BY stops the pipeline early and returns a bag.
	bagLimited := mustExec(t, data, "SELECT VALUE r.v FROM t AS r LIMIT 2")
	if elems, ok := value.Elements(bagLimited); !ok || len(elems) != 2 {
		t.Errorf("LIMIT 2 = %s", bagLimited)
	}
	if bagLimited.Kind() != value.KindBag {
		t.Errorf("un-ordered result should stay a bag, got %s", bagLimited.Kind())
	}

	// Offset past the end.
	empty := mustExec(t, data, "SELECT VALUE r.v FROM t AS r LIMIT 2 OFFSET 10")
	checkResult(t, empty, "{{}}")

	// Negative / non-integer limits are errors.
	if _, err := exec(t, data, "SELECT VALUE r.v FROM t AS r LIMIT -1", false, false); err == nil {
		t.Error("negative LIMIT should error")
	}
	if _, err := exec(t, data, "SELECT VALUE r.v FROM t AS r LIMIT 'x'", false, false); err == nil {
		t.Error("string LIMIT should error")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	data := map[string]string{"t": `{{
	  {'a': 1, 'b': 'y'}, {'a': 1, 'b': 'x'}, {'a': 0, 'b': 'z'}
	}}`}
	got := mustExec(t, data, "SELECT VALUE [r.a, r.b] FROM t AS r ORDER BY r.a DESC, r.b ASC")
	checkResult(t, got, "[[1, 'x'], [1, 'y'], [0, 'z']]")
}

func TestDistinct(t *testing.T) {
	data := map[string]string{"t": "{{1, 1.0, 2, 2, 'a', 'a'}}"}
	got := mustExec(t, data, "SELECT DISTINCT VALUE x FROM t AS x")
	checkResult(t, got, "{{1, 2, 'a'}}")
}

func TestUnpivotShapes(t *testing.T) {
	got := mustExec(t, map[string]string{"t": `{{ {'a': 1, 'b': 2} }}`},
		`SELECT VALUE {'n': n, 'v': v} FROM t AS r, UNPIVOT r AS v AT n`)
	checkResult(t, got, `{{ {'n':'a','v':1}, {'n':'b','v':2} }}`)
	// Duplicate attribute names unpivot into separate bindings.
	dup := value.EmptyTuple()
	dup.Put("a", value.Int(1))
	dup.Put("a", value.Int(2))
	cat := catalog.New()
	if err := cat.Register("t", value.Bag{dup}); err != nil {
		t.Fatal(err)
	}
	tree := parser.MustParse(`SELECT VALUE v FROM t AS r, UNPIVOT r AS v AT n`)
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: cat})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &eval.Context{Names: cat, Funcs: registry, Run: Run}
	v, err := Run(ctx, eval.NewEnv(), core)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, v, "{{1, 2}}")
}

func TestPivotSkipsBadNames(t *testing.T) {
	data := map[string]string{"t": `{{
	  {'k': 'a', 'v': 1}, {'k': 2, 'v': 2}, {'k': 'c', 'v': 3}
	}}`}
	got := mustExec(t, data, "PIVOT r.v AT r.k FROM t AS r")
	checkResult(t, got, "{'a': 1, 'c': 3}")
	// Strict mode errors on the non-string attribute name instead.
	if _, err := exec(t, data, "PIVOT r.v AT r.k FROM t AS r", false, true); err == nil {
		t.Error("strict PIVOT over a non-string name should error")
	}
}

func TestPivotWithWhereAndGroup(t *testing.T) {
	data := map[string]string{"t": `{{
	  {'k': 'a', 'v': 1}, {'k': 'a', 'v': 3}, {'k': 'b', 'v': 5}
	}}`}
	// Aggregate per group, HAVING filters out 'b' (one row only).
	got := mustExec(t, data, `
		PIVOT SUM(r.v) AT k2
		FROM t AS r
		GROUP BY r.k AS k2
		HAVING COUNT(*) > 1`)
	checkResult(t, got, "{'a': 4}")
	// WHERE before grouping.
	got2 := mustExec(t, data, `
		PIVOT SUM(r.v) AT k2
		FROM t AS r
		WHERE r.v < 5
		GROUP BY r.k AS k2`)
	checkResult(t, got2, "{'a': 4}")
}

func TestSetOps(t *testing.T) {
	data := map[string]string{
		"a": "{{1, 2, 2, 3}}",
		"b": "{{2, 3, 3, 4}}",
	}
	cases := []struct {
		query, want string
	}{
		{"(SELECT VALUE x FROM a AS x) UNION (SELECT VALUE y FROM b AS y)", "{{1, 2, 3, 4}}"},
		{"(SELECT VALUE x FROM a AS x) UNION ALL (SELECT VALUE y FROM b AS y)", "{{1, 2, 2, 3, 2, 3, 3, 4}}"},
		{"(SELECT VALUE x FROM a AS x) INTERSECT (SELECT VALUE y FROM b AS y)", "{{2, 3}}"},
		{"(SELECT VALUE x FROM a AS x) INTERSECT ALL (SELECT VALUE y FROM b AS y)", "{{2, 3}}"},
		{"(SELECT VALUE x FROM a AS x) EXCEPT (SELECT VALUE y FROM b AS y)", "{{1}}"},
		{"(SELECT VALUE x FROM a AS x) EXCEPT ALL (SELECT VALUE y FROM b AS y)", "{{1, 2}}"},
	}
	for _, c := range cases {
		got := mustExec(t, data, c.query)
		checkResult(t, got, c.want)
	}
}

func TestLetBindings(t *testing.T) {
	data := map[string]string{"t": `{{ {'a': 2}, {'a': 5} }}`}
	got := mustExec(t, data, `
		SELECT VALUE sq FROM t AS r LET sq = r.a * r.a WHERE sq > 5`)
	checkResult(t, got, "{{25}}")
}

func TestCorrelatedSubqueryInSelect(t *testing.T) {
	data := map[string]string{
		"dept": `{{ {'no': 1}, {'no': 2} }}`,
		"emp":  `{{ {'d': 1, 'n': 'a'}, {'d': 1, 'n': 'b'}, {'d': 2, 'n': 'c'} }}`,
	}
	got := mustExec(t, data, `
		SELECT d.no AS no,
		       (SELECT VALUE e.n FROM emp AS e WHERE e.d = d.no) AS names
		FROM dept AS d`)
	checkResult(t, got, `{{ {'no':1,'names':{{'a','b'}}}, {'no':2,'names':{{'c'}}} }}`)
}

func TestMaxCollectionSizeGuard(t *testing.T) {
	cat := catalog.New()
	big := make(value.Bag, 100)
	for i := range big {
		big[i] = value.Int(int64(i))
	}
	if err := cat.Register("t", big); err != nil {
		t.Fatal(err)
	}
	tree := parser.MustParse("SELECT VALUE x FROM t AS x")
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: cat})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &eval.Context{Names: cat, Funcs: registry, Run: Run, MaxCollectionSize: 10}
	_, err = Run(ctx, eval.NewEnv(), core)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("size guard should trip, got %v", err)
	}
}

func TestStrictModeAbortsPipeline(t *testing.T) {
	data := map[string]string{"t": `{{ {'x': 1}, {'x': 'bad'}, {'x': 3} }}`}
	v, err := exec(t, data, "SELECT VALUE 2 * r.x FROM t AS r", false, true)
	if err == nil {
		t.Fatalf("strict mode should abort, got %s", v)
	}
	if _, ok := err.(*eval.TypeError); !ok {
		t.Errorf("error should be a *eval.TypeError, got %T", err)
	}
}

// TestDeepComposition chains the paper's operators through one another:
// pivot of a grouped unpivot, unnesting a pivoted tuple, and GROUP AS
// over the output of GROUP AS — composability (§I tenet 4) end to end.
func TestDeepComposition(t *testing.T) {
	data := map[string]string{
		"wide": `{{
		  {'date': 'd1', 'amzn': 10, 'goog': 20},
		  {'date': 'd2', 'amzn': 30, 'goog': 40}
		}}`,
	}
	// Unpivot -> group -> pivot back: totals per symbol as one tuple.
	roundTrip := mustExec(t, data, `
		PIVOT total AT sym2
		FROM (SELECT sym AS sym2, SUM(price) AS total
		      FROM wide AS c, UNPIVOT c AS price AT sym
		      WHERE NOT sym = 'date'
		      GROUP BY sym) AS g`)
	checkResult(t, roundTrip, `{'amzn': 40, 'goog': 60}`)

	// Unnest the attributes of a pivoted tuple produced by a subquery.
	unnested := mustExec(t, data, `
		SELECT VALUE {'sym': n, 'total': v}
		FROM (PIVOT total AT sym2
		      FROM (SELECT sym AS sym2, SUM(price) AS total
		            FROM wide AS c, UNPIVOT c AS price AT sym
		            WHERE NOT sym = 'date'
		            GROUP BY sym) AS g) AS piv,
		     UNPIVOT piv AS v AT n`)
	checkResult(t, unnested, `{{ {'sym':'amzn','total':40}, {'sym':'goog','total':60} }}`)

	// GROUP AS over the output of GROUP AS: group days by parity of
	// their amzn price, carrying each day's full group.
	nestedGroups := mustExec(t, data, `
		FROM (FROM wide AS c, UNPIVOT c AS price AT sym
		      WHERE NOT sym = 'date'
		      GROUP BY c."date" AS d GROUP AS per_day
		      SELECT VALUE {'d': d, 'n': COLL_COUNT(per_day)}) AS day_row
		GROUP BY day_row.n AS n GROUP AS g
		SELECT n AS syms_per_day, COLL_COUNT(g) AS days`)
	checkResult(t, nestedGroups, `{{ {'syms_per_day': 2, 'days': 2} }}`)
}
