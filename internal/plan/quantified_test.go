package plan

import "testing"

func TestQuantifiedComparisons(t *testing.T) {
	data := map[string]string{
		"dept":   `{{ {'no': 1, 'budget': 500}, {'no': 2, 'budget': 900}, {'no': 3, 'budget': 250} }}`,
		"limits": `{{ 300, 600 }}`,
	}
	cases := []struct {
		name, query, want string
	}{
		{
			"gt-all",
			`SELECT VALUE d.no FROM dept AS d WHERE d.budget > ALL (SELECT VALUE l FROM limits AS l)`,
			"{{2}}",
		},
		{
			"gt-any",
			`SELECT VALUE d.no FROM dept AS d WHERE d.budget > ANY (SELECT VALUE l FROM limits AS l)`,
			"{{1, 2}}",
		},
		{
			"eq-any-collection",
			`SELECT VALUE d.no FROM dept AS d WHERE d.budget = ANY [500, 250]`,
			"{{1, 3}}",
		},
		{
			"all-over-empty-is-true",
			`SELECT VALUE d.no FROM dept AS d WHERE d.budget > ALL (SELECT VALUE l FROM limits AS l WHERE l > 9999)`,
			"{{1, 2, 3}}",
		},
		{
			"any-over-empty-is-false",
			`SELECT VALUE d.no FROM dept AS d WHERE d.budget > SOME (SELECT VALUE l FROM limits AS l WHERE l > 9999)`,
			"{{}}",
		},
		{
			"ne-all-is-not-in",
			`SELECT VALUE d.budget FROM dept AS d WHERE d.budget <> ALL [500, 900]`,
			"{{250}}",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkResult(t, mustExec(t, data, c.query), c.want)
		})
	}
	// Unknowns: a NULL in the set keeps ALL from being TRUE.
	nullData := map[string]string{"t": `{{ {'v': 5} }}`, "s": `{{ 1, null }}`}
	got := mustExec(t, nullData, `SELECT VALUE r.v FROM t AS r WHERE r.v > ALL (SELECT VALUE x FROM s AS x)`)
	checkResult(t, got, "{{}}")
	// But ANY finds the definite match regardless of the NULL.
	got2 := mustExec(t, nullData, `SELECT VALUE r.v FROM t AS r WHERE r.v > ANY (SELECT VALUE x FROM s AS x)`)
	checkResult(t, got2, "{{5}}")
	// Non-collection RHS is a type fault.
	if _, err := exec(t, nullData, `SELECT VALUE r.v FROM t AS r WHERE r.v > ALL 5`, false, true); err == nil {
		t.Error("non-collection quantifier operand should error in strict mode")
	}
}

func TestQuantifiedCompatCoercion(t *testing.T) {
	// In compat mode, a sugar SELECT subquery under a quantifier coerces
	// to its single column.
	data := map[string]string{
		"dept":   `{{ {'no': 1, 'budget': 500}, {'no': 2, 'budget': 900} }}`,
		"limits": `{{ {'lim': 600} }}`,
	}
	v, err := exec(t, data, `
		SELECT VALUE d.no FROM dept AS d
		WHERE d.budget > ALL (SELECT l.lim FROM limits AS l)`, true, false)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, v, "{{2}}")
}
