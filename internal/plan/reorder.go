package plan

// Runtime of cost-based join reordering. The planner (cost.go) may run a
// FROM chain's steps in a cheaper order than written; SQL++ comma joins
// are left-correlated nested loops whose output order is observable
// (bags render in production order, GROUP AS content accumulates in it),
// so the reordered chain cannot just stream. Instead each produced
// binding is buffered with its ordinal vector — the element position
// every step's binding came from, rearranged into written step order —
// and the buffer is replayed in ascending ordinal order, which is
// exactly the order the written nested loop would have produced.
//
// The binding environments are also re-nested: execution builds scope
// chains in executed order, but GROUP AS snapshots (Env.SnapshotBelow)
// and any later lookup observe nesting order, so each buffered
// environment is rebuilt (Env.RechainBelow, sharing the scopes' binding
// storage) with the written nesting restored.
//
// The buffer holds the full join result before anything downstream
// runs; that is the price of byte-identity, charged to the governor at
// the "join-order" site and bounded by checkSize like any other
// materialization. The planner only reorders when the written order is
// estimated to be expensive enough that the buffered plan still wins.

import (
	"sort"

	"sqlpp/internal/eval"
)

// reorderedRow is one buffered binding: its written-order ordinal vector
// and its re-nested environment.
type reorderedRow struct {
	key []int64
	env *eval.Env
}

// produceReordered runs the reordered step chain, buffering and
// re-sorting its bindings into written production order before emitting
// them to k.
func (st *physState) produceReordered(ctx *eval.Context, k emit) error {
	ro := st.phys.reorder
	n := len(st.phys.steps)
	st.ord = make([]int64, n)
	var node *eval.StatsNode
	if ctx.Stats != nil {
		node = ctx.Stats.Node(statsParent(ctx), st.phys, "reorder", "join-order", ro.label)
	}
	var rows []reorderedRow
	var err error
	func() {
		if node != nil {
			defer node.Timer()()
		}
		err = st.run(ctx, st.outer, 0, func(env *eval.Env) error {
			if node != nil {
				node.AddIn(1)
			}
			key := make([]int64, n)
			for w := 0; w < n; w++ {
				key[w] = st.ord[ro.newPosOf[w]]
			}
			rows = append(rows, reorderedRow{key: key, env: env.RechainBelow(st.outer, ro.newPosOf)})
			if ctx.Gov != nil {
				if err := ctx.Gov.ChargeBindings("join-order", nil); err != nil {
					return err
				}
			}
			return checkSize(ctx, len(rows))
		})
	}()
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		ka, kb := rows[a].key, rows[b].key
		for w := range ka {
			if ka[w] != kb[w] {
				return ka[w] < kb[w]
			}
		}
		return false
	})
	for i := range rows {
		if node != nil {
			node.AddOut(1)
		}
		if err := k(rows[i].env); err != nil {
			return err
		}
	}
	return nil
}
