package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"sqlpp/internal/catalog"
	"sqlpp/internal/eval"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// execRobust runs query through the physical optimizer with a chosen
// cancellation context and governor limits — the harness for the
// robustness tests.
func execRobust(t *testing.T, data map[string]string, query string, parallelism int, ctx0 context.Context, lim eval.Limits) (value.Value, error) {
	t.Helper()
	cat := catalog.New()
	for name, src := range data {
		if err := cat.Register(name, sion.MustParse(src)); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	core, err := rewrite.Rewrite(tree, rewrite.Options{Names: cat})
	if err != nil {
		return nil, err
	}
	Optimize(core, OptOptions{Mode: eval.Permissive})
	ec := &eval.Context{Mode: eval.Permissive, Names: cat, Funcs: registry, Run: Run, Parallelism: parallelism}
	if ctx0 != nil && ctx0.Done() != nil {
		ec.Ctx = ctx0
	}
	ec.Gov = eval.NewGovernor(lim)
	return Run(ec, eval.NewEnv(), core)
}

// rowsSION builds a bag of n {'id': i, 'k': i % mod} tuples.
func rowsSION(n, mod int) string {
	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'id': %d, 'k': %d}", i, i%mod)
	}
	sb.WriteString("}}")
	return sb.String()
}

// TestWorkerPanicContained: a panic inside a parallel-scan worker must
// surface as that query's *PanicError — not kill the process, not leak
// the other workers.
func TestWorkerPanicContained(t *testing.T) {
	registry.Register("PANIC_AT_1400", 1, 1, func(ctx *eval.Context, args []value.Value) (value.Value, error) {
		if n, ok := args[0].(value.Int); ok && int64(n) == 1400 {
			panic("injected worker panic")
		}
		return args[0], nil
	})
	lowerParallelThreshold(t, 64)
	data := parallelData(1500)
	before := runtime.NumGoroutine()
	_, err := execRobust(t, data, `SELECT VALUE PANIC_AT_1400(e.id) FROM emp AS e`, 4, nil, eval.Limits{})
	var pe *eval.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError from the worker, got %v", err)
	}
	if !strings.Contains(pe.Error(), "injected worker panic") {
		t.Errorf("panic value lost: %q", pe.Error())
	}
	// All workers must have exited: the failed query may not leak
	// goroutines (give the runtime a moment to reap them).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestDeadlineDuringHashBuild: a deadline that fires while the hash
// join is building over a 100k-row side must stop the build promptly —
// the blocking build loop polls cancellation itself (it produces no
// output rows, so the output-path polls never run).
func TestDeadlineDuringHashBuild(t *testing.T) {
	data := map[string]string{
		"small": rowsSION(8, 8),
		"big":   rowsSION(100_000, 1000),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := execRobust(t, data,
		`SELECT s.id AS sid, b.id AS bid FROM small AS s, big AS b WHERE s.k = b.k`,
		1, ctx, eval.Limits{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline honoured too slowly: %v", elapsed)
	}
}

// TestGovernorChargesHashBuild: the build side's materialization charges
// the values budget at the hash-build site.
func TestGovernorChargesHashBuild(t *testing.T) {
	data := map[string]string{
		"small": rowsSION(4, 4),
		"big":   rowsSION(2000, 50),
	}
	_, err := execRobust(t, data,
		`SELECT s.id AS sid, b.id AS bid FROM small AS s, big AS b WHERE s.k = b.k`,
		1, nil, eval.Limits{MaxMaterializedValues: 100})
	var re *eval.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want ResourceError, got %v", err)
	}
	if re.Kind != eval.ResourceValues || re.Site != "hash-build" {
		t.Errorf("want materialized-values at hash-build, got %s at %s", re.Kind, re.Site)
	}
}

// TestGovernorDeadlineDuringOrderBy: ORDER BY materialization both
// polls the deadline and charges the output budget.
func TestGovernorOrderByCharges(t *testing.T) {
	data := map[string]string{"big": rowsSION(5000, 97)}
	_, err := execRobust(t, data,
		`SELECT VALUE b.id FROM big AS b ORDER BY b.k`,
		1, nil, eval.Limits{MaxOutputRows: 100})
	var re *eval.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want ResourceError, got %v", err)
	}
	if re.Kind != eval.ResourceRows || re.Site != "order-by" {
		t.Errorf("want output-rows at order-by, got %s at %s", re.Kind, re.Site)
	}
}

// TestGovernorTopKBounded: ORDER BY ... LIMIT k charges only the heap's
// bounded growth, so a tight row budget still admits top-k over a large
// scan.
func TestGovernorTopKBounded(t *testing.T) {
	data := map[string]string{"big": rowsSION(5000, 97)}
	v, err := execRobust(t, data,
		`SELECT VALUE b.id FROM big AS b ORDER BY b.k LIMIT 10`,
		1, nil, eval.Limits{MaxOutputRows: 100})
	if err != nil {
		t.Fatalf("top-k must fit a 100-row budget: %v", err)
	}
	if els, _ := value.Elements(v); len(els) != 10 {
		t.Errorf("want 10 rows, got %d", len(els))
	}
}

// TestGovernorSharedAcrossWorkers: parallel workers fork the context but
// share the governor, so budgets hold across the whole scan.
func TestGovernorSharedAcrossWorkers(t *testing.T) {
	lowerParallelThreshold(t, 64)
	data := parallelData(1500)
	_, err := execRobust(t, data, `SELECT e.id AS id FROM emp AS e`, 4, nil,
		eval.Limits{MaxOutputRows: 200})
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceRows {
		t.Fatalf("want output-rows error across workers, got %v", err)
	}
}

// TestGovernorUnlimitedIdentical: a governor with generous budgets must
// not change any result relative to an ungoverned run.
func TestGovernorUnlimitedIdentical(t *testing.T) {
	lowerParallelThreshold(t, 64)
	data := parallelData(1500)
	data["tags"] = `{{ {'dno': 1, 'tag': 'a'}, {'dno': 2, 'tag': 'b'} }}`
	queries := []string{
		`SELECT e.deptno AS dno, COUNT(*) AS n FROM emp AS e GROUP BY e.deptno`,
		`SELECT DISTINCT e.title AS title FROM emp AS e`,
		`SELECT e.id AS id, d.tag AS tag FROM emp AS e, tags AS d WHERE e.deptno = d.dno`,
		`SELECT VALUE e.id FROM emp AS e ORDER BY e.salary LIMIT 25`,
	}
	generous := eval.Limits{
		MaxOutputRows:         1 << 40,
		MaxMaterializedValues: 1 << 40,
		MaxMaterializedBytes:  1 << 50,
		MaxDepth:              1 << 20,
		MaxWallTime:           time.Hour,
	}
	for _, q := range queries {
		plain, err := execRobust(t, data, q, 4, nil, eval.Limits{})
		if err != nil {
			t.Fatalf("plain %s: %v", q, err)
		}
		gov, err := execRobust(t, data, q, 4, nil, generous)
		if err != nil {
			t.Fatalf("governed %s: %v", q, err)
		}
		if plain.String() != gov.String() {
			t.Errorf("governed result diverges for %s:\n  plain    %s\n  governed %s", q, plain, gov)
		}
	}
}
