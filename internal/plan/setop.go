package plan

import (
	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// runSetOp evaluates UNION/INTERSECT/EXCEPT over two collection-valued
// query expressions with SQL bag semantics: the ALL variants keep
// multiplicities (INTERSECT ALL keeps the minimum count, EXCEPT ALL
// subtracts counts), the plain variants deduplicate.
func runSetOp(ctx *eval.Context, env *eval.Env, q *ast.SetOp) (value.Value, error) {
	var node *eval.StatsNode
	if ctx.Stats != nil {
		op := q.Op
		if q.All {
			op += " ALL"
		}
		node = ctx.Stats.Node(statsParent(ctx), q, "setop", "set-op", op)
		saved := ctx.StatsParent
		ctx.StatsParent = node
		defer func() { ctx.StatsParent = saved }()
		defer node.Timer()()
	}
	lv, err := Run(ctx, env, q.L)
	if err != nil {
		return nil, err
	}
	rv, err := Run(ctx, env, q.R)
	if err != nil {
		return nil, err
	}
	left, lok := value.Elements(lv)
	right, rok := value.Elements(rv)
	if !lok || !rok {
		if ctx.Mode == eval.StopOnError {
			return nil, &eval.TypeError{Pos: q.Pos(), Op: q.Op, Detail: "operands must be collections"}
		}
		return value.Missing, nil
	}
	if node != nil {
		node.AddIn(int64(len(left) + len(right)))
	}
	// Both inputs are fully materialized before the operator combines
	// them, so their combined size is charged as intermediate state.
	if ctx.Gov != nil {
		if err := ctx.Gov.ChargeValues("set-op", int64(len(left)), lv); err != nil {
			return nil, err
		}
		if err := ctx.Gov.ChargeValues("set-op", int64(len(right)), rv); err != nil {
			return nil, err
		}
	}
	done := func(out value.Bag) (value.Value, error) {
		if node != nil {
			node.AddOut(int64(len(out)))
		}
		return out, nil
	}
	switch q.Op {
	case "UNION":
		out := make(value.Bag, 0, len(left)+len(right))
		out = append(out, left...)
		out = append(out, right...)
		if !q.All {
			out = dedupe(out)
		}
		return done(out)
	case "INTERSECT":
		counts := countByKey(right)
		var out value.Bag
		for _, v := range left {
			k := value.Key(v)
			if counts[k] > 0 {
				counts[k]--
				out = append(out, v)
			}
		}
		if !q.All {
			out = dedupe(out)
		}
		return done(out)
	case "EXCEPT":
		counts := countByKey(right)
		var out value.Bag
		for _, v := range left {
			k := value.Key(v)
			if counts[k] > 0 {
				if q.All {
					counts[k]--
					continue
				}
				continue
			}
			out = append(out, v)
		}
		if !q.All {
			out = dedupe(out)
		}
		return done(out)
	}
	return nil, &eval.TypeError{Pos: q.Pos(), Op: q.Op, Detail: "unknown set operation"}
}

func countByKey(vs []value.Value) map[string]int {
	m := make(map[string]int, len(vs))
	for _, v := range vs {
		m[value.Key(v)]++
	}
	return m
}

// dedupe returns vs with duplicates (by canonical key) removed,
// preserving first-occurrence order.
//
// governor:bounded — the output is a subset of vs, which evalSetOp
// charged (ChargeValues) before materializing either side.
func dedupe(vs value.Bag) value.Bag {
	seen := make(map[string]bool, len(vs))
	out := vs[:0:0]
	for _, v := range vs {
		k := value.Key(v)
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}
