package plan

import (
	"sqlpp/internal/eval"
)

// Scatter-gather EXPLAIN ANALYZE composition. A sharded query has no
// single operator tree: each shard ran its own plan and the coordinator
// ran a merge plan over the partials. ScatterStats assembles those
// pieces into one synthetic tree in the same StatsSnapshot vocabulary
// the renderer and the HTTP API already speak:
//
//	scatter-gather group(orders) [shards=4 missing=1 retries=2]
//	├── shard s0 … per-shard attempt counters + its local plan tree
//	├── …
//	└── merge … the coordinator's merge plan tree
//
// Failed shards stay in the tree with a failed=1 counter and no
// children, so a partial-policy result shows exactly which slice of the
// data is absent.

// ShardStat is one shard's contribution to a scatter, as observed by
// the coordinator's fault-tolerance layer.
type ShardStat struct {
	// Name identifies the shard executor.
	Name string
	// Rows is how many partial rows the shard contributed.
	Rows int64
	// Attempts, Retries, Hedges count the executions the coordinator
	// issued for this shard during the query.
	Attempts int64
	Retries  int64
	Hedges   int64
	// Failed marks a shard that stayed down after retries (present in
	// the tree under the partial policy).
	Failed bool
	// Tree is the shard-local EXPLAIN ANALYZE tree, when the transport
	// carried one.
	Tree *eval.StatsSnapshot
}

// ScatterStats assembles the composite stats tree for one scatter:
// class and collection label the root, shards become one child each,
// and the coordinator's merge (or gather re-execution) tree is the
// final child.
//
// governor:bounded by the shard count (one node per shard, plan-time)
func ScatterStats(class, collection string, shards []ShardStat, missing []string, merge *eval.StatsSnapshot) *eval.StatsSnapshot {
	root := &eval.StatsSnapshot{
		Op:    "scatter-gather",
		Label: class + "(" + collection + ")",
		Counters: map[string]int64{
			"shards":         int64(len(shards)),
			"missing_shards": int64(len(missing)),
		},
	}
	for _, s := range shards {
		child := &eval.StatsSnapshot{
			Op:      "shard",
			Label:   s.Name,
			RowsOut: s.Rows,
			Counters: map[string]int64{
				"attempts": s.Attempts,
				"retries":  s.Retries,
				"hedges":   s.Hedges,
			},
		}
		if s.Failed {
			child.Counters["failed"] = 1
		}
		if s.Tree != nil {
			child.Children = append(child.Children, s.Tree)
		}
		root.Counters["retries"] += s.Retries
		root.Counters["hedges"] += s.Hedges
		if !s.Failed {
			root.RowsIn += s.Rows
		}
		root.Children = append(root.Children, child)
	}
	if merge != nil {
		root.RowsOut = merge.RowsOut
		root.Children = append(root.Children, &eval.StatsSnapshot{
			Op:       "merge",
			Label:    class,
			RowsIn:   root.RowsIn,
			RowsOut:  merge.RowsOut,
			Children: []*eval.StatsSnapshot{merge},
		})
	}
	return root
}
