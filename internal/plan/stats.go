package plan

import (
	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// EXPLAIN ANALYZE plumbing for the plan package. Stats nodes are keyed
// in the sink by (plan pointer, role), so every execution site that
// touches an operator — sequential, hoisted, or one worker of a
// parallel scan — lands on the same node and accumulates into it.
//
// runSFW eagerly creates a block's operator skeleton in pipeline order
// before any row is produced. That fixes the child order of the tree
// (golden-testable even under parallel execution, where lazy creation
// order would race) and means the execution-time lookups below are
// always hits whose parent argument is ignored.
//
// Reported wall times are inclusive: the pipeline is push-style, so an
// operator's continuation runs everything downstream of it, and a timed
// span around a FROM step covers the work it feeds. The block node's
// time is the end-to-end time of the block.

// statsParent is the node new operators attach under: the enclosing
// block's node, or the sink root for the top-level expression. Callers
// must have checked ctx.Stats != nil.
func statsParent(ctx *eval.Context) *eval.StatsNode {
	if ctx.StatsParent != nil {
		return ctx.StatsParent
	}
	return ctx.Stats.Root
}

// describeItem names a FROM item for the tree.
func describeItem(item ast.FromItem) (op, label string) {
	switch x := item.(type) {
	case *ast.FromExpr:
		return "scan", x.As
	case *ast.FromUnpivot:
		return "unpivot", x.ValueVar
	case *ast.FromJoin:
		if x.Kind == ast.JoinLeft {
			return "join", "left"
		}
		return "join", "inner"
	}
	return "from", ""
}

// itemNode resolves a FROM item's node. Skeleton-covered items hit; a
// miss (PIVOT blocks are not skeletonized) creates the node under the
// current block.
func itemNode(ctx *eval.Context, item ast.FromItem) *eval.StatsNode {
	op, label := describeItem(item)
	return ctx.Stats.Node(statsParent(ctx), item, "item", op, label)
}

// itemSkeleton creates a FROM item's node under parent, recursing into
// join subtrees so a join's inputs nest under the join node.
func itemSkeleton(ctx *eval.Context, parent *eval.StatsNode, item ast.FromItem) *eval.StatsNode {
	op, label := describeItem(item)
	n := ctx.Stats.Node(parent, item, "item", op, label)
	if j, ok := item.(*ast.FromJoin); ok {
		itemSkeleton(ctx, n, j.Left)
		itemSkeleton(ctx, n, j.Right)
	}
	return n
}

// hashNode resolves a hash-join step's node. A join whose build side is
// served by a secondary index reports as index_join, labeled with the
// join kind and the index name.
func hashNode(ctx *eval.Context, parent *eval.StatsNode, h *hashJoinStep) *eval.StatsNode {
	kind := "inner"
	if h.leftJoin {
		kind = "left"
	}
	if h.buildIdx != nil {
		return ctx.Stats.Node(parent, h, "hash", "index_join", kind+" "+h.buildIdx.name)
	}
	return ctx.Stats.Node(parent, h, "hash", "hash-join", kind)
}

// indexNode resolves an index-probing fromStep's node. It is keyed like
// an ordinary item node, so a runtime fallback to scanning accumulates
// into the same operator block.
func indexNode(ctx *eval.Context, parent *eval.StatsNode, step *fromStep) *eval.StatsNode {
	op := "index_probe"
	if step.idx.eq == nil {
		op = "index_range"
	}
	return ctx.Stats.Node(parent, step.item, "item", op, step.idx.name)
}

// buildBlockSkeleton pre-creates the block's operator nodes in pipeline
// order: FROM steps (with pushed filters as their children), residual
// WHERE, GROUP BY, HAVING, windows, DISTINCT, ORDER BY / top-K, LIMIT.
// Callers must have checked ctx.Stats != nil.
func buildBlockSkeleton(ctx *eval.Context, q *ast.SFW, phys *sfwPhys, limit, offset int64, block *eval.StatsNode) {
	if phys != nil {
		if len(phys.pre) > 0 {
			ctx.Stats.Node(block, phys, "pre", "filter", "pre")
		}
		stepParent := block
		if phys.reorder != nil {
			// The reordered steps nest under the join-order buffer that
			// restores their written production order.
			stepParent = ctx.Stats.Node(block, phys, "reorder", "join-order", phys.reorder.label)
		}
		for i := range phys.steps {
			step := &phys.steps[i]
			var n *eval.StatsNode
			if step.hash != nil {
				n = hashNode(ctx, stepParent, step.hash)
				if step.hash.left != nil {
					itemSkeleton(ctx, n, step.hash.left)
				}
				if step.hash.buildIdx == nil {
					itemSkeleton(ctx, n, step.hash.right)
				}
			} else if step.idx != nil {
				n = indexNode(ctx, stepParent, step)
			} else {
				n = itemSkeleton(ctx, stepParent, step.item)
				if step.hoist {
					n.Counter("hoisted").Store(1)
				}
			}
			if len(step.filters) > 0 {
				ctx.Stats.Node(n, step, "filter", "filter", "pushed")
			}
		}
		if len(phys.residual) > 0 {
			ctx.Stats.Node(block, q, "where", "filter", "residual")
		}
	} else {
		for _, item := range q.From {
			itemSkeleton(ctx, block, item)
		}
		if q.Where != nil {
			ctx.Stats.Node(block, q, "where", "filter", "where")
		}
	}
	if q.GroupBy != nil {
		ctx.Stats.Node(block, q.GroupBy, "group", "group-by", "")
	}
	if q.Having != nil {
		ctx.Stats.Node(block, q, "having", "filter", "having")
	}
	if len(q.Windows) > 0 {
		ctx.Stats.Node(block, q, "window", "window", "")
	}
	if q.Select.Distinct {
		ctx.Stats.Node(block, q, "distinct", "distinct", "")
	}
	if len(q.OrderBy) > 0 {
		op := "order-by"
		if limit >= 0 {
			op = "top-k"
		}
		ctx.Stats.Node(block, q, "order", op, "")
	}
	if limit >= 0 || offset > 0 {
		ctx.Stats.Node(block, q, "limit", "limit", "")
	}
}

// resultLen is the cardinality a block node reports as rows out.
func resultLen(v value.Value) int64 {
	switch s := v.(type) {
	case value.Array:
		return int64(len(s))
	case value.Bag:
		return int64(len(s))
	}
	return 1
}
