package plan

import (
	"fmt"
	"strings"
	"testing"

	"sqlpp/internal/value"
)

// topkData: 200 rows, sort keys deliberately full of ties (k = id % 10)
// so the bounded heap's tie-breaking is observable against the stable
// full sort.
func topkData() map[string]string {
	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'id': %d, 'k': %d}", i+1, i%10)
	}
	// A NULL and a MISSING sort key exercise the absent-ordering arms.
	sb.WriteString(",{'id': 201, 'k': null},{'id': 202}")
	sb.WriteString("}}")
	return map[string]string{"t": sb.String()}
}

// TestTopKMatchesFullSort checks the bounded-heap path (ORDER BY with
// LIMIT) against the full stable sort sliced by hand: identical rows in
// identical order, ties resolved by arrival order in both.
func TestTopKMatchesFullSort(t *testing.T) {
	data := topkData()
	orders := []string{
		`ORDER BY r.k`,
		`ORDER BY r.k DESC`,
		`ORDER BY r.k NULLS FIRST`,
		`ORDER BY r.k DESC, r.id DESC`,
	}
	limits := []struct{ limit, offset int }{
		{1, 0}, {7, 0}, {7, 3}, {25, 190}, {500, 0}, {0, 0}, {3, 500},
	}
	for _, ord := range orders {
		full, err := exec(t, data, `SELECT VALUE r.id FROM t AS r `+ord, false, false)
		if err != nil {
			t.Fatal(err)
		}
		all, ok := full.(value.Array)
		if !ok {
			t.Fatalf("ordered query should yield an array, got %T", full)
		}
		for _, lo := range limits {
			q := fmt.Sprintf(`SELECT VALUE r.id FROM t AS r %s LIMIT %d OFFSET %d`,
				ord, lo.limit, lo.offset)
			got, err := exec(t, data, q, false, false)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			start := lo.offset
			if start > len(all) {
				start = len(all)
			}
			end := start + lo.limit
			if end > len(all) {
				end = len(all)
			}
			want := value.Array(all[start:end])
			if got.String() != want.String() {
				t.Errorf("%s:\n  got  %s\n  want %s", q, got, want)
			}
		}
	}
}

// TestTopKOffsetOnly: OFFSET without LIMIT cannot bound the heap and
// must still slice the full ordering correctly.
func TestTopKOffsetOnly(t *testing.T) {
	data := topkData()
	full, err := exec(t, data, `SELECT VALUE r.id FROM t AS r ORDER BY r.k, r.id`, false, false)
	if err != nil {
		t.Fatal(err)
	}
	all := full.(value.Array)
	got, err := exec(t, data, `SELECT VALUE r.id FROM t AS r ORDER BY r.k, r.id OFFSET 195`, false, false)
	if err != nil {
		t.Fatal(err)
	}
	want := value.Array(all[195:])
	if got.String() != want.String() {
		t.Errorf("OFFSET without LIMIT:\n  got  %s\n  want %s", got, want)
	}
}
