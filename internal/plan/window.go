package plan

import (
	"fmt"
	"sort"

	"sqlpp/internal/ast"
	"sqlpp/internal/eval"
	"sqlpp/internal/value"
)

// computeWindows evaluates each lowered window computation over the
// materialized binding environments, binding its fresh variable into
// every environment.
//
// Semantics follow SQL's defaults: PARTITION BY splits the bindings by
// grouping equality of the partition keys; ORDER BY orders within each
// partition (SQL++ total order); ranking functions require the order,
// and aggregate window functions compute over the whole partition when
// unordered and as running aggregates over peer groups (RANGE UNBOUNDED
// PRECEDING .. CURRENT ROW) when ordered.
func computeWindows(ctx *eval.Context, windows []ast.NamedWindow, envs []*eval.Env) error {
	for i := range windows {
		if err := computeWindow(ctx, &windows[i], envs); err != nil {
			return err
		}
	}
	return nil
}

// windowRow is one binding with its evaluated order keys.
type windowRow struct {
	env  *eval.Env
	keys []value.Value
}

// computeWindow partitions the block's rows by the window's PARTITION
// BY keys and computes the window function within each partition.
//
// governor:charged-at the window materialization loop (plan.go), which
// charges every env before it reaches here; partitioning only
// redistributes those charged rows.
func computeWindow(ctx *eval.Context, w *ast.NamedWindow, envs []*eval.Env) error {
	// Partition.
	partitions := map[string][]*eval.Env{}
	var order []string
	for _, env := range envs {
		var kb []byte
		for _, pe := range w.Spec.PartitionBy {
			v, err := eval.Eval(ctx, env, pe)
			if err != nil {
				return err
			}
			kb = value.AppendKey(kb, v)
		}
		ks := string(kb)
		if _, ok := partitions[ks]; !ok {
			order = append(order, ks)
		}
		partitions[ks] = append(partitions[ks], env)
	}
	for _, ks := range order {
		if err := computePartition(ctx, w, partitions[ks]); err != nil {
			return err
		}
	}
	return nil
}

func computePartition(ctx *eval.Context, w *ast.NamedWindow, part []*eval.Env) error {
	rows := make([]windowRow, len(part))
	for i, env := range part {
		rows[i] = windowRow{env: env}
		if len(w.Spec.OrderBy) > 0 {
			keys := make([]value.Value, len(w.Spec.OrderBy))
			for k, o := range w.Spec.OrderBy {
				v, err := eval.Eval(ctx, env, o.Expr)
				if err != nil {
					return err
				}
				keys[k] = v
			}
			rows[i].keys = keys
		}
	}
	if len(w.Spec.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			return compareOrderKeys(rows[i].keys, rows[j].keys, w.Spec.OrderBy) < 0
		})
	}
	switch w.Fn.Name {
	case "ROW_NUMBER":
		for i, r := range rows {
			r.env.Bind(w.Name, value.Int(int64(i+1)))
		}
		return nil
	case "RANK", "DENSE_RANK":
		dense := w.Fn.Name == "DENSE_RANK"
		rank, denseRank := int64(0), int64(0)
		for i, r := range rows {
			if i == 0 || compareOrderKeys(rows[i-1].keys, r.keys, w.Spec.OrderBy) != 0 {
				rank = int64(i + 1)
				denseRank++
			}
			if dense {
				r.env.Bind(w.Name, value.Int(denseRank))
			} else {
				r.env.Bind(w.Name, value.Int(rank))
			}
		}
		return nil
	case "LAG", "LEAD":
		return computeLagLead(ctx, w, rows)
	case "SUM", "AVG", "MIN", "MAX", "COUNT":
		return computeWindowAggregate(ctx, w, rows)
	}
	return fmt.Errorf("plan: unsupported window function %s", w.Fn.Name)
}

// compareOrderKeys compares two order-key vectors under the items'
// DESC/NULLS modifiers.
func compareOrderKeys(a, b []value.Value, items []ast.OrderItem) int {
	for k, o := range items {
		av, bv := a[k], b[k]
		aAbs, bAbs := value.IsAbsent(av), value.IsAbsent(bv)
		if aAbs != bAbs && o.NullsFirst != nil {
			if *o.NullsFirst == aAbs {
				return -1
			}
			return 1
		}
		c := value.Compare(av, bv)
		if c == 0 {
			continue
		}
		if o.Desc {
			return -c
		}
		return c
	}
	return 0
}

// computeLagLead binds the argument of a neighbouring row, offset
// positions before (LAG) or after (LEAD), with an optional default.
func computeLagLead(ctx *eval.Context, w *ast.NamedWindow, rows []windowRow) error {
	offset := int64(1)
	if len(w.Fn.Args) >= 2 {
		v, err := eval.Eval(ctx, rows[0].env, w.Fn.Args[1])
		if err != nil {
			return err
		}
		n, ok := value.AsInt(v)
		if !ok || n < 0 {
			return fmt.Errorf("plan: %s offset must be a non-negative integer", w.Fn.Name)
		}
		offset = n
	}
	if w.Fn.Name == "LAG" {
		offset = -offset
	}
	for i, r := range rows {
		j := i + int(offset)
		var out value.Value
		if j >= 0 && j < len(rows) {
			v, err := eval.Eval(ctx, rows[j].env, w.Fn.Args[0])
			if err != nil {
				return err
			}
			out = v
		} else if len(w.Fn.Args) >= 3 {
			v, err := eval.Eval(ctx, r.env, w.Fn.Args[2])
			if err != nil {
				return err
			}
			out = v
		} else {
			out = value.Null
		}
		r.env.Bind(w.Name, out)
	}
	return nil
}

// computeWindowAggregate computes SUM/AVG/MIN/MAX/COUNT over the
// partition: one value for all rows when unordered, a running aggregate
// over peer groups when ordered.
//
// governor:bounded — the argument buffers never exceed the partition
// size, and every partition row was charged at window materialization.
func computeWindowAggregate(ctx *eval.Context, w *ast.NamedWindow, rows []windowRow) error {
	collName := "COLL_" + w.Fn.Name
	def, ok := ctx.Funcs.LookupFunc(collName)
	if !ok {
		return fmt.Errorf("plan: missing aggregate %s for window function", collName)
	}
	argOf := func(r windowRow) (value.Value, error) {
		if w.Fn.Star {
			return value.Int(1), nil
		}
		return eval.Eval(ctx, r.env, w.Fn.Args[0])
	}
	aggregate := func(prefix []value.Value) (value.Value, error) {
		if w.Fn.Star && w.Fn.Name == "COUNT" {
			return value.Int(int64(len(prefix))), nil
		}
		return def.Fn(ctx, []value.Value{value.Bag(prefix)})
	}
	if len(w.Spec.OrderBy) == 0 {
		all := make([]value.Value, 0, len(rows))
		for _, r := range rows {
			v, err := argOf(r)
			if err != nil {
				return err
			}
			all = append(all, v)
		}
		total, err := aggregate(all)
		if err != nil {
			return err
		}
		for _, r := range rows {
			r.env.Bind(w.Name, total)
		}
		return nil
	}
	// Running aggregate: rows with equal order keys (peers) share the
	// value of their group's closing prefix.
	prefix := make([]value.Value, 0, len(rows))
	i := 0
	for i < len(rows) {
		j := i
		for j < len(rows) && compareOrderKeys(rows[i].keys, rows[j].keys, w.Spec.OrderBy) == 0 {
			v, err := argOf(rows[j])
			if err != nil {
				return err
			}
			prefix = append(prefix, v)
			j++
		}
		val, err := aggregate(prefix)
		if err != nil {
			return err
		}
		for k := i; k < j; k++ {
			rows[k].env.Bind(w.Name, val)
		}
		i = j
	}
	return nil
}
