package plan

import (
	"testing"
)

var salesData = map[string]string{"sales": `{{
  {'region': 'east', 'rep': 'a', 'amount': 100},
  {'region': 'east', 'rep': 'b', 'amount': 300},
  {'region': 'east', 'rep': 'c', 'amount': 200},
  {'region': 'west', 'rep': 'd', 'amount': 500},
  {'region': 'west', 'rep': 'e', 'amount': 500},
  {'region': 'west', 'rep': 'f', 'amount': 400}
}}`}

func TestRowNumber(t *testing.T) {
	got := mustExec(t, salesData, `
		SELECT s.rep AS rep,
		       ROW_NUMBER() OVER (PARTITION BY s.region ORDER BY s.amount DESC) AS rn
		FROM sales AS s`)
	checkResult(t, got, `{{
	  {'rep': 'a', 'rn': 3}, {'rep': 'b', 'rn': 1}, {'rep': 'c', 'rn': 2},
	  {'rep': 'd', 'rn': 1}, {'rep': 'e', 'rn': 2}, {'rep': 'f', 'rn': 3}
	}}`)
}

func TestRankAndDenseRank(t *testing.T) {
	got := mustExec(t, salesData, `
		SELECT s.rep AS rep,
		       RANK() OVER (PARTITION BY s.region ORDER BY s.amount DESC) AS r,
		       DENSE_RANK() OVER (PARTITION BY s.region ORDER BY s.amount DESC) AS dr
		FROM sales AS s
		WHERE s.region = 'west'`)
	checkResult(t, got, `{{
	  {'rep': 'd', 'r': 1, 'dr': 1},
	  {'rep': 'e', 'r': 1, 'dr': 1},
	  {'rep': 'f', 'r': 3, 'dr': 2}
	}}`)
}

func TestWindowAggregates(t *testing.T) {
	// Whole-partition aggregate (no ORDER BY in the spec).
	got := mustExec(t, salesData, `
		SELECT s.rep AS rep,
		       SUM(s.amount) OVER (PARTITION BY s.region) AS region_total,
		       COUNT(*) OVER (PARTITION BY s.region) AS region_n
		FROM sales AS s
		WHERE s.region = 'east'`)
	checkResult(t, got, `{{
	  {'rep': 'a', 'region_total': 600, 'region_n': 3},
	  {'rep': 'b', 'region_total': 600, 'region_n': 3},
	  {'rep': 'c', 'region_total': 600, 'region_n': 3}
	}}`)
}

func TestRunningAggregate(t *testing.T) {
	got := mustExec(t, salesData, `
		SELECT s.rep AS rep,
		       SUM(s.amount) OVER (PARTITION BY s.region ORDER BY s.amount) AS running
		FROM sales AS s
		WHERE s.region = 'east'`)
	checkResult(t, got, `{{
	  {'rep': 'a', 'running': 100},
	  {'rep': 'c', 'running': 300},
	  {'rep': 'b', 'running': 600}
	}}`)
	// Peers (tied order keys) share the closing value of their group.
	peers := mustExec(t, salesData, `
		SELECT s.rep AS rep,
		       SUM(s.amount) OVER (PARTITION BY s.region ORDER BY s.amount) AS running
		FROM sales AS s
		WHERE s.region = 'west'`)
	checkResult(t, peers, `{{
	  {'rep': 'f', 'running': 400},
	  {'rep': 'd', 'running': 1400},
	  {'rep': 'e', 'running': 1400}
	}}`)
}

func TestLagLead(t *testing.T) {
	got := mustExec(t, salesData, `
		SELECT s.rep AS rep,
		       LAG(s.rep) OVER (ORDER BY s.amount) AS prev,
		       LEAD(s.rep, 1, 'none') OVER (ORDER BY s.amount) AS next
		FROM sales AS s
		WHERE s.region = 'east'`)
	checkResult(t, got, `{{
	  {'rep': 'a', 'prev': null, 'next': 'c'},
	  {'rep': 'c', 'prev': 'a', 'next': 'b'},
	  {'rep': 'b', 'prev': 'c', 'next': 'none'}
	}}`)
}

func TestWindowOverGroupedQuery(t *testing.T) {
	// Windows compose with GROUP BY: rank regions by their totals.
	got := mustExec(t, salesData, `
		SELECT region AS region, total AS total,
		       RANK() OVER (ORDER BY total DESC) AS r
		FROM (SELECT s.region AS region, SUM(s.amount) AS total
		      FROM sales AS s GROUP BY s.region) AS g2`)
	checkResult(t, got, `{{
	  {'region': 'west', 'total': 1400, 'r': 1},
	  {'region': 'east', 'total': 600, 'r': 2}
	}}`)
	// And directly in the SELECT of a grouped block.
	direct := mustExec(t, salesData, `
		SELECT region AS region,
		       RANK() OVER (ORDER BY SUM(s.amount) DESC) AS r
		FROM sales AS s GROUP BY s.region AS region`)
	checkResult(t, direct, `{{
	  {'region': 'west', 'r': 1},
	  {'region': 'east', 'r': 2}
	}}`)
}

func TestWindowInOrderBy(t *testing.T) {
	got := mustExec(t, salesData, `
		SELECT VALUE s.rep FROM sales AS s
		WHERE s.region = 'east'
		ORDER BY ROW_NUMBER() OVER (ORDER BY s.amount DESC)`)
	checkResult(t, got, `['b', 'c', 'a']`)
}

func TestWindowErrors(t *testing.T) {
	// Unsupported window function.
	if _, err := exec(t, salesData, `
		SELECT FROBNICATE() OVER (ORDER BY s.amount) AS x FROM sales AS s`, false, false); err == nil {
		t.Error("unsupported window function should be a compile error")
	}
	// Window outside a query block's SELECT/ORDER BY.
	if _, err := exec(t, salesData, `
		SELECT VALUE s.rep FROM sales AS s WHERE ROW_NUMBER() OVER (ORDER BY s.amount) > 1`, false, false); err == nil {
		t.Error("window in WHERE should be a compile error")
	}
}

func TestWithClause(t *testing.T) {
	got := mustExec(t, salesData, `
		WITH east AS (SELECT VALUE s FROM sales AS s WHERE s.region = 'east'),
		     total AS (SELECT VALUE SUM(e.amount) FROM east AS e)
		SELECT e.rep AS rep FROM east AS e, total AS tt WHERE e.amount * 2 >= tt`)
	checkResult(t, got, `{{ {'rep': 'b'} }}`)
}

func TestWithShadowsCatalog(t *testing.T) {
	got := mustExec(t, salesData, `
		WITH sales AS ({{ {'amount': 1} }})
		SELECT VALUE s.amount FROM sales AS s`)
	checkResult(t, got, `{{1}}`)
}

func TestWindowInHavingIsError(t *testing.T) {
	if _, err := exec(t, salesData, `
		SELECT s.region AS region FROM sales AS s GROUP BY s.region
		HAVING RANK() OVER (ORDER BY s.region) > 0`, false, false); err == nil {
		t.Error("window function in HAVING should be a compile error")
	}
	if _, err := exec(t, salesData, `
		SELECT VALUE s.rep FROM sales AS s
		WHERE 1 = ROW_NUMBER() OVER (ORDER BY s.amount)`, false, false); err == nil {
		t.Error("window function in WHERE should be a compile error")
	}
}
