package rewrite

import (
	"regexp"
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
)

// TestAggregateArgumentShapes drives the block-variable substitution
// through every expression form an aggregate argument can take: each
// reference to a pre-group variable must re-root through the group
// element variable.
func TestAggregateArgumentShapes(t *testing.T) {
	cases := []struct {
		name string
		agg  string
		want []string // fragments that must appear in the Core form
	}{
		{"arith", `SUM(e.a + e.b * 2)`, []string{".e.a", ".e.b"}},
		{"case", `SUM(CASE WHEN e.a > 1 THEN e.b ELSE 0 END)`, []string{".e.a", ".e.b"}},
		{"in-list", `COUNT(CASE WHEN e.a IN (1, e.b) THEN 1 ELSE 0 END)`, []string{".e.a", ".e.b"}},
		{"like", `COUNT(CASE WHEN e.s LIKE '%x%' THEN 1 END)`, []string{".e.s"}},
		{"between", `COUNT(CASE WHEN e.a BETWEEN e.lo AND e.hi THEN 1 END)`, []string{".e.lo", ".e.hi"}},
		{"is", `COUNT(CASE WHEN e.a IS NOT NULL THEN 1 END)`, []string{".e.a"}},
		{"index", `SUM(e.xs[0])`, []string{".e.xs[0]"}},
		{"tuple-ctor", `COUNT(CASE WHEN {'v': e.a}.v = 1 THEN 1 END)`, []string{".e.a"}},
		{"array-ctor", `MIN([e.a, e.b][0])`, []string{".e.a"}},
		{"bag-ctor", `MIN(COLL_MIN(<<e.a>>))`, []string{".e.a"}},
		{"exists", `COUNT(CASE WHEN EXISTS e.xs THEN 1 END)`, []string{".e.xs"}},
		{"concat-unary", `MAX(-e.a)`, []string{".e.a"}},
		{"call", `SUM(ABS(e.a))`, []string{".e.a"}},
		{"nested-subquery", `SUM(COLL_SUM(SELECT VALUE x FROM e.xs AS x))`, []string{".e.xs"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := `SELECT e.k, ` + c.agg + ` AS agg FROM t AS e GROUP BY e.k`
			tree := parser.MustParse(q)
			out, err := Rewrite(tree, Options{Names: nameSet{"t": true}})
			if err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			core := ast.Format(out)
			for _, frag := range c.want {
				// Every wanted fragment must appear re-rooted through a
				// fresh group-element variable: $giN<frag>.
				re := regexp.MustCompile(`\$gi\d+` + regexp.QuoteMeta(frag))
				if !re.MatchString(core) {
					t.Errorf("expected %q rooted through $gi in: %s", frag, core)
				}
			}
			// Inside the synthesized aggregate subquery, no bare block
			// variable reference may survive (every e.x is $giN.e.x).
			if m := regexp.MustCompile(`[^.\w]e\.`).FindAllStringIndex(core, -1); m != nil {
				// The only legitimate bare references are in the outer
				// FROM/GROUP BY clauses, which precede "COLL_".
				aggStart := strings.Index(core, "COLL_")
				aggEnd := strings.LastIndex(core, "FROM t AS e")
				for _, loc := range m {
					if loc[0] > aggStart && loc[0] < aggEnd {
						t.Errorf("unsubstituted block variable inside aggregate at %d: %s", loc[0], core)
					}
				}
			}
		})
	}
}
