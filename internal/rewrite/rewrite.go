// Package rewrite lowers parsed SQL++ onto the SQL++ Core and resolves
// names.
//
// The paper defines SQL itself as "syntactic sugar" rewritings over a
// fully composable SQL++ Core (§I). This package implements those
// rewritings:
//
//   - SELECT e1 AS a1, ... => SELECT VALUE {a1: e1, ...} (§V-A)
//   - SQL aggregate functions over groups => composable COLL_* functions
//     applied to subqueries over the GROUP AS collection (§V-C)
//   - implicit single-group aggregation (SELECT AVG(x) with no GROUP BY)
//   - group-key references in SELECT/HAVING/ORDER BY => key aliases
//   - SQL-compatibility coercion of sugar subqueries in scalar and IN
//     positions (§V-A), enabled by the compatibility flag
//   - dotted identifier chains => catalog named values (hr.emp)
//   - unqualified attribute references => qualified paths when a single
//     range variable (or a schema) disambiguates them
//
// Rewriting mutates and returns the given tree; parse a fresh tree per
// rewrite.
package rewrite

import (
	"fmt"
	"strings"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
)

// NameSet reports which dotted names exist in the catalog.
type NameSet interface {
	HasName(name string) bool
}

// AttrOracle optionally reports whether the collection behind a FROM
// variable is known (via schema) to define an attribute; used to
// disambiguate unqualified names when several range variables are in
// scope. May be nil.
type AttrOracle interface {
	// VarHasAttr reports whether the range variable (identified by the
	// formatted source expression of its FROM item) is known to carry
	// the attribute. The second result is false when nothing is known.
	VarHasAttr(sourceFmt, attr string) (has, known bool)
}

// Options configures a rewrite.
type Options struct {
	// Compat enables the SQL-compatibility rewritings (subquery
	// coercion). Sugar lowering and aggregate rewriting happen in both
	// modes, as the paper defines SQL clauses as sugar over Core.
	Compat bool
	// Names is the catalog name set; may be nil (no named values).
	Names NameSet
	// Schema is the optional attribute oracle; may be nil.
	Schema AttrOracle
	// Params are external parameter names treated as bound variables;
	// the executor supplies their values in the root environment.
	Params []string
}

// Error is a compile-time rewriting/resolution error.
type Error struct {
	Pos lexer.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("compile error at %s: %s", e.Pos, e.Msg)
}

// sqlAggregates maps SQL aggregate function names to their composable
// COLL_* Core equivalents (§V-C).
var sqlAggregates = map[string]string{
	"AVG":       "COLL_AVG",
	"SUM":       "COLL_SUM",
	"MIN":       "COLL_MIN",
	"MAX":       "COLL_MAX",
	"COUNT":     "COLL_COUNT",
	"EVERY":     "COLL_EVERY",
	"ANY":       "COLL_ANY",
	"SOME":      "COLL_SOME",
	"ARRAY_AGG": "COLL_ARRAY_AGG",
}

// IsSQLAggregate reports whether name (upper-case) is a SQL aggregate
// function subject to the Core rewriting.
func IsSQLAggregate(name string) bool {
	_, ok := sqlAggregates[name]
	return ok
}

// scope tracks names visible during resolution.
type scope struct {
	parent *scope
	names  map[string]bool
	// order lists the names bound in this scope, in binding order; the
	// SELECT * lowering iterates it.
	order []string
	// rangeVars are the FROM variables of this block scope, in order;
	// used for implicit qualification of unresolved names.
	rangeVars []string
	// rangeSrc maps each range variable to the formatted source
	// expression of its FROM item, for the schema oracle.
	rangeSrc map[string]string
	isBlock  bool
}

func newScope(parent *scope, isBlock bool) *scope {
	return &scope{parent: parent, names: map[string]bool{}, rangeSrc: map[string]string{}, isBlock: isBlock}
}

// bindOrdered binds a plain variable in this scope.
func (s *scope) bindOrdered(name string) {
	if !s.names[name] {
		s.order = append(s.order, name)
	}
	s.names[name] = true
}

// bindRangeOrdered binds a FROM range variable, recording its source for
// the schema oracle.
func (s *scope) bindRangeOrdered(name, sourceFmt string) {
	s.bindOrdered(name)
	s.rangeVars = append(s.rangeVars, name)
	s.rangeSrc[name] = sourceFmt
}

func (s *scope) has(name string) bool {
	for c := s; c != nil; c = c.parent {
		if c.names[name] {
			return true
		}
	}
	return false
}

// innermostBlock returns the nearest enclosing block scope (possibly s
// itself).
func (s *scope) innermostBlock() *scope {
	for c := s; c != nil; c = c.parent {
		if c.isBlock {
			return c
		}
	}
	return nil
}

// rewriter carries options through the pass.
type rewriter struct {
	opts Options
	gen  int // generator for synthesized variable names
}

// Rewrite lowers and resolves a parsed query. The returned expression is
// the same tree, mutated.
func Rewrite(e ast.Expr, opts Options) (ast.Expr, error) {
	rw := &rewriter{opts: opts}
	root := newScope(nil, false)
	for _, p := range opts.Params {
		root.bindOrdered(p)
	}
	return rw.expr(e, root)
}

func (rw *rewriter) fresh(prefix string) string {
	rw.gen++
	return fmt.Sprintf("$%s%d", prefix, rw.gen)
}

// expr rewrites an expression in the given scope.
func (rw *rewriter) expr(e ast.Expr, sc *scope) (ast.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *ast.Literal, *ast.NamedRef:
		return e, nil
	case *ast.VarRef:
		return rw.resolveChain(e, sc)
	case *ast.FieldAccess:
		return rw.resolveChain(e, sc)
	case *ast.IndexAccess:
		// The base may still be a dotted catalog chain.
		base, err := rw.expr(x.Base, sc)
		if err != nil {
			return nil, err
		}
		x.Base = base
		idx, err := rw.coerced(x.Index, sc, "$COERCE_SCALAR")
		if err != nil {
			return nil, err
		}
		x.Index = idx
		return x, nil
	case *ast.Unary:
		op, err := rw.coerced(x.Operand, sc, "$COERCE_SCALAR")
		if err != nil {
			return nil, err
		}
		x.Operand = op
		return x, nil
	case *ast.Binary:
		l, err := rw.coerced(x.L, sc, "$COERCE_SCALAR")
		if err != nil {
			return nil, err
		}
		r, err := rw.coerced(x.R, sc, "$COERCE_SCALAR")
		if err != nil {
			return nil, err
		}
		x.L, x.R = l, r
		return x, nil
	case *ast.Like:
		if err := rw.coerceInto(&x.Target, sc); err != nil {
			return nil, err
		}
		if err := rw.coerceInto(&x.Pattern, sc); err != nil {
			return nil, err
		}
		if x.Escape != nil {
			if err := rw.coerceInto(&x.Escape, sc); err != nil {
				return nil, err
			}
		}
		return x, nil
	case *ast.Between:
		if err := rw.coerceInto(&x.Target, sc); err != nil {
			return nil, err
		}
		if err := rw.coerceInto(&x.Lo, sc); err != nil {
			return nil, err
		}
		if err := rw.coerceInto(&x.Hi, sc); err != nil {
			return nil, err
		}
		return x, nil
	case *ast.In:
		if err := rw.coerceInto(&x.Target, sc); err != nil {
			return nil, err
		}
		for i := range x.List {
			if err := rw.coerceInto(&x.List[i], sc); err != nil {
				return nil, err
			}
		}
		if x.Set != nil {
			set, err := rw.coerced(x.Set, sc, "$COERCE_COLL")
			if err != nil {
				return nil, err
			}
			x.Set = set
		}
		return x, nil
	case *ast.Is:
		t, err := rw.expr(x.Target, sc)
		if err != nil {
			return nil, err
		}
		x.Target = t
		return x, nil
	case *ast.Quantified:
		if err := rw.coerceInto(&x.Target, sc); err != nil {
			return nil, err
		}
		set, err := rw.coerced(x.Set, sc, "$COERCE_COLL")
		if err != nil {
			return nil, err
		}
		x.Set = set
		return x, nil
	case *ast.Case:
		if x.Operand != nil {
			if err := rw.coerceInto(&x.Operand, sc); err != nil {
				return nil, err
			}
		}
		for i := range x.Whens {
			if err := rw.coerceInto(&x.Whens[i].Cond, sc); err != nil {
				return nil, err
			}
			if err := rw.coerceInto(&x.Whens[i].Result, sc); err != nil {
				return nil, err
			}
		}
		if x.Else != nil {
			if err := rw.coerceInto(&x.Else, sc); err != nil {
				return nil, err
			}
		}
		return x, nil
	case *ast.Call:
		return rw.call(x, sc)
	case *ast.TupleCtor:
		for i := range x.Fields {
			n, err := rw.expr(x.Fields[i].Name, sc)
			if err != nil {
				return nil, err
			}
			x.Fields[i].Name = n
			if err := rw.coerceInto(&x.Fields[i].Value, sc); err != nil {
				return nil, err
			}
		}
		return x, nil
	case *ast.ArrayCtor:
		for i := range x.Elems {
			el, err := rw.expr(x.Elems[i], sc)
			if err != nil {
				return nil, err
			}
			x.Elems[i] = el
		}
		return x, nil
	case *ast.BagCtor:
		for i := range x.Elems {
			el, err := rw.expr(x.Elems[i], sc)
			if err != nil {
				return nil, err
			}
			x.Elems[i] = el
		}
		return x, nil
	case *ast.Exists:
		op, err := rw.expr(x.Operand, sc)
		if err != nil {
			return nil, err
		}
		x.Operand = op
		return x, nil
	case *ast.SFW:
		return rw.sfw(x, sc)
	case *ast.PivotQuery:
		return rw.pivot(x, sc)
	case *ast.With:
		inner := newScope(sc, false)
		for i := range x.Bindings {
			e, err := rw.expr(x.Bindings[i].Expr, inner)
			if err != nil {
				return nil, err
			}
			x.Bindings[i].Expr = e
			inner.bindOrdered(x.Bindings[i].Name)
		}
		body, err := rw.expr(x.Body, inner)
		if err != nil {
			return nil, err
		}
		x.Body = body
		return x, nil
	case *ast.Window:
		return nil, &Error{Pos: x.Pos(), Msg: "window functions are only allowed in the SELECT and ORDER BY clauses of a query block"}
	case *ast.SetOp:
		l, err := rw.expr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := rw.expr(x.R, sc)
		if err != nil {
			return nil, err
		}
		x.L, x.R = l, r
		return x, nil
	}
	return nil, fmt.Errorf("rewrite: unknown expression node %T", e)
}

// call rewrites a function call. Stray SQL aggregates (outside any query
// block or grouped context) are a compile error, caught here because
// grouped blocks rewrite their aggregates before resolution reaches them.
func (rw *rewriter) call(x *ast.Call, sc *scope) (ast.Expr, error) {
	if IsSQLAggregate(x.Name) {
		return nil, &Error{Pos: x.Pos(), Msg: fmt.Sprintf(
			"aggregate function %s is only allowed in the SELECT, HAVING, or ORDER BY clause of a query block", x.Name)}
	}
	coerceArgs := !strings.HasPrefix(x.Name, "COLL_") && !strings.HasPrefix(x.Name, "$")
	for i := range x.Args {
		var err error
		if coerceArgs {
			err = rw.coerceInto(&x.Args[i], sc)
		} else {
			x.Args[i], err = rw.expr(x.Args[i], sc)
		}
		if err != nil {
			return nil, err
		}
	}
	return x, nil
}

// coerced rewrites child and, in SQL-compatibility mode, wraps it with
// the named coercion when it is a sugar-SELECT subquery (§V-A: the
// context of a SQL subquery designates scalar or collection coercion;
// SELECT VALUE is never coerced).
func (rw *rewriter) coerced(child ast.Expr, sc *scope, coercion string) (ast.Expr, error) {
	wrap := rw.opts.Compat && isSugarSubquery(child)
	out, err := rw.expr(child, sc)
	if err != nil {
		return nil, err
	}
	if wrap {
		c := &ast.Call{Name: coercion, Args: []ast.Expr{out}}
		c.SetPos(child.Pos())
		return c, nil
	}
	return out, nil
}

func (rw *rewriter) coerceInto(slot *ast.Expr, sc *scope) error {
	out, err := rw.coerced(*slot, sc, "$COERCE_SCALAR")
	if err != nil {
		return err
	}
	*slot = out
	return nil
}

// isSugarSubquery reports whether e is a query block written with the
// SQL SELECT-list (or SELECT *) form rather than SELECT VALUE.
func isSugarSubquery(e ast.Expr) bool {
	q, ok := e.(*ast.SFW)
	return ok && q.Select.Value == nil
}

// resolveChain resolves a VarRef or a FieldAccess chain headed by a
// VarRef: scope variables win, then the longest dotted catalog name, then
// implicit qualification by the block's single range variable (or by
// schema knowledge).
func (rw *rewriter) resolveChain(e ast.Expr, sc *scope) (ast.Expr, error) {
	head, steps := splitChain(e)
	if head == nil {
		// The chain bottoms out in a non-VarRef base (e.g. a subquery or
		// constructor); rewrite the base and re-attach the steps.
		fa := e.(*ast.FieldAccess)
		base, err := rw.expr(fa.Base, sc)
		if err != nil {
			return nil, err
		}
		fa.Base = base
		return fa, nil
	}
	if sc.has(head.Name) {
		return e, nil // bound variable; navigation applies dynamically
	}
	// Longest dotted prefix registered in the catalog.
	if rw.opts.Names != nil {
		parts := append([]string{head.Name}, steps...)
		for n := len(parts); n >= 1; n-- {
			dotted := strings.Join(parts[:n], ".")
			if rw.opts.Names.HasName(dotted) {
				ref := &ast.NamedRef{Name: dotted}
				ref.SetPos(head.Pos())
				return attachSteps(ref, parts[n:], e), nil
			}
		}
	}
	// Implicit qualification against the innermost block's range vars.
	if blk := sc.innermostBlock(); blk != nil && len(blk.rangeVars) > 0 {
		candidates := blk.rangeVars
		if len(candidates) > 1 && rw.opts.Schema != nil {
			var matches []string
			for _, v := range candidates {
				if has, known := rw.opts.Schema.VarHasAttr(blk.rangeSrc[v], head.Name); known && has {
					matches = append(matches, v)
				}
			}
			if len(matches) > 0 {
				candidates = matches
			}
		}
		if len(candidates) == 1 {
			v := &ast.VarRef{Name: candidates[0]}
			v.SetPos(head.Pos())
			qualified := &ast.FieldAccess{Base: v, Name: head.Name}
			qualified.SetPos(head.Pos())
			return attachSteps(qualified, steps, e), nil
		}
		return nil, &Error{Pos: head.Pos(), Msg: fmt.Sprintf(
			"ambiguous name %q: qualify it with one of the range variables %v", head.Name, candidates)}
	}
	return nil, &Error{Pos: head.Pos(), Msg: fmt.Sprintf("unresolved name %q", head.Name)}
}

// splitChain decomposes a pure FieldAccess chain into its VarRef head and
// the attribute steps; head is nil when the base is not a VarRef.
func splitChain(e ast.Expr) (*ast.VarRef, []string) {
	var steps []string
	for {
		switch x := e.(type) {
		case *ast.VarRef:
			// steps were collected innermost-last; reverse.
			for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
				steps[i], steps[j] = steps[j], steps[i]
			}
			return x, steps
		case *ast.FieldAccess:
			steps = append(steps, x.Name)
			e = x.Base
		default:
			return nil, nil
		}
	}
}

// attachSteps rebuilds FieldAccess steps on top of base; orig supplies
// positions.
func attachSteps(base ast.Expr, steps []string, orig ast.Expr) ast.Expr {
	out := base
	for _, s := range steps {
		fa := &ast.FieldAccess{Base: out, Name: s}
		fa.SetPos(orig.Pos())
		out = fa
	}
	return out
}
