package rewrite

import (
	"strings"
	"testing"

	"sqlpp/internal/ast"
	"sqlpp/internal/parser"
)

// nameSet is a static catalog for tests.
type nameSet map[string]bool

func (n nameSet) HasName(name string) bool { return n[name] }

// attrOracle is a static schema oracle.
type attrOracle map[string]map[string]bool

func (o attrOracle) VarHasAttr(src, attr string) (bool, bool) {
	attrs, ok := o[src]
	if !ok {
		return false, false
	}
	has, known := attrs[attr]
	return has, known
}

func rewriteQuery(t *testing.T, src string, opts Options) (string, error) {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	out, err := Rewrite(tree, opts)
	if err != nil {
		return "", err
	}
	return ast.Format(out), nil
}

func mustRewrite(t *testing.T, src string, opts Options) string {
	t.Helper()
	got, err := rewriteQuery(t, src, opts)
	if err != nil {
		t.Fatalf("rewrite %q: %v", src, err)
	}
	return got
}

var hrNames = nameSet{"hr.emp": true, "t": true, "u": true}

func TestSelectSugarLowering(t *testing.T) {
	got := mustRewrite(t, "SELECT e.name AS n, e.id FROM hr.emp AS e", Options{Names: hrNames})
	want := "(SELECT VALUE {'n': e.name, 'id': e.id} FROM hr.emp AS e)"
	if got != want {
		t.Errorf("lowered to %s, want %s", got, want)
	}
}

func TestPositionalNames(t *testing.T) {
	got := mustRewrite(t, "SELECT e.a + 1, e.b FROM t AS e", Options{Names: hrNames})
	if !strings.Contains(got, "'_1': (e.a + 1)") {
		t.Errorf("unaliased computed item should get a positional name: %s", got)
	}
}

func TestNamedValueResolution(t *testing.T) {
	// Longest dotted prefix wins; trailing steps stay navigation.
	names := nameSet{"hr.emp": true, "hr": true}
	got := mustRewrite(t, "SELECT VALUE 1 FROM hr.emp.history AS h", Options{Names: names})
	if !strings.Contains(got, "hr.emp.history AS h") {
		t.Errorf("resolution result: %s", got)
	}
	tree := parser.MustParse("SELECT VALUE 1 FROM hr.emp.history AS h")
	out, err := Rewrite(tree, Options{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	from := out.(*ast.SFW).From[0].(*ast.FromExpr)
	fa, ok := from.Expr.(*ast.FieldAccess)
	if !ok {
		t.Fatalf("FROM expr is %T, want FieldAccess over NamedRef", from.Expr)
	}
	ref, ok := fa.Base.(*ast.NamedRef)
	if !ok || ref.Name != "hr.emp" {
		t.Errorf("base = %#v, want NamedRef hr.emp", fa.Base)
	}
}

func TestScopeShadowsCatalog(t *testing.T) {
	// A FROM alias named like a catalog value shadows it.
	tree := parser.MustParse("SELECT VALUE t.a FROM u AS t")
	out, err := Rewrite(tree, Options{Names: hrNames})
	if err != nil {
		t.Fatal(err)
	}
	val := out.(*ast.SFW).Select.Value.(*ast.FieldAccess)
	if _, ok := val.Base.(*ast.VarRef); !ok {
		t.Errorf("t should resolve to the range variable, got %T", val.Base)
	}
}

func TestImplicitQualification(t *testing.T) {
	got := mustRewrite(t, "SELECT name FROM t WHERE salary > 10", Options{Names: hrNames})
	if !strings.Contains(got, "t.name") || !strings.Contains(got, "t.salary") {
		t.Errorf("unqualified names should qualify against the single range variable: %s", got)
	}
}

func TestAmbiguousQualification(t *testing.T) {
	_, err := rewriteQuery(t, "SELECT name FROM t AS a, u AS b", Options{Names: hrNames})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("two range variables without schema should be ambiguous, got %v", err)
	}
}

func TestSchemaDisambiguation(t *testing.T) {
	oracle := attrOracle{
		"t": {"name": true},
		"u": {"name": false},
	}
	got, err := rewriteQuery(t, "SELECT name FROM t AS a, u AS b",
		Options{Names: hrNames, Schema: oracle})
	if err != nil {
		t.Fatalf("schema should disambiguate: %v", err)
	}
	if !strings.Contains(got, "a.name") {
		t.Errorf("name should qualify to a (schema says t has it): %s", got)
	}
}

func TestUnresolvedName(t *testing.T) {
	_, err := rewriteQuery(t, "SELECT VALUE nowhere", Options{Names: hrNames})
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("want unresolved-name error, got %v", err)
	}
}

func TestAggregateRewriting(t *testing.T) {
	got := mustRewrite(t, `
		SELECT e.deptno, AVG(e.salary) AS avgsal
		FROM hr.emp AS e GROUP BY e.deptno`, Options{Names: hrNames})
	for _, frag := range []string{"COLL_AVG(", "SELECT VALUE", ".e.salary", "GROUP AS"} {
		if !strings.Contains(got, frag) {
			t.Errorf("rewriting should contain %q: %s", frag, got)
		}
	}
	// The group key reference becomes the key alias.
	if !strings.Contains(got, "'deptno': deptno") {
		t.Errorf("group key should be replaced by its alias: %s", got)
	}
}

func TestCountStarRewriting(t *testing.T) {
	got := mustRewrite(t, "SELECT COUNT(*) AS n FROM t AS e", Options{Names: hrNames})
	if !strings.Contains(got, "COLL_COUNT(") {
		t.Errorf("COUNT(*) should lower to COLL_COUNT over the group: %s", got)
	}
	// Implicit single group: a GROUP BY with no keys is synthesized.
	tree := parser.MustParse("SELECT COUNT(*) AS n FROM t AS e")
	out, err := Rewrite(tree, Options{Names: hrNames})
	if err != nil {
		t.Fatal(err)
	}
	q := out.(*ast.SFW)
	if q.GroupBy == nil || len(q.GroupBy.Keys) != 0 || q.GroupBy.GroupAs == "" {
		t.Errorf("implicit grouping not synthesized: %+v", q.GroupBy)
	}
}

func TestDistinctAggregate(t *testing.T) {
	got := mustRewrite(t, "SELECT COUNT(DISTINCT e.d) AS n FROM t AS e", Options{Names: hrNames})
	if !strings.Contains(got, "$DISTINCT(") {
		t.Errorf("DISTINCT aggregate argument should wrap with $DISTINCT: %s", got)
	}
}

func TestHavingAndOrderByAggregates(t *testing.T) {
	got := mustRewrite(t, `
		SELECT e.k FROM t AS e GROUP BY e.k
		HAVING COUNT(*) > 1
		ORDER BY SUM(e.v) DESC`, Options{Names: hrNames})
	if !strings.Contains(got, "COLL_COUNT(") || !strings.Contains(got, "COLL_SUM(") {
		t.Errorf("HAVING/ORDER BY aggregates should rewrite: %s", got)
	}
}

func TestStrayAggregateIsError(t *testing.T) {
	_, err := rewriteQuery(t, "SELECT VALUE AVG(x.s) FROM t AS x WHERE SUM(x.s) > 1", Options{Names: hrNames})
	if err == nil {
		t.Error("aggregate in WHERE should be a compile error")
	}
}

func TestOrderByAliasSubstitution(t *testing.T) {
	got := mustRewrite(t, `
		SELECT e.v * 2 AS dbl FROM t AS e ORDER BY dbl`, Options{Names: hrNames})
	if !strings.Contains(got, "ORDER BY (e.v * 2)") {
		t.Errorf("ORDER BY alias should substitute the item expression: %s", got)
	}
}

func TestCompatCoercionWrapping(t *testing.T) {
	// Sugar subquery in scalar position wraps only in compat mode.
	src := "SELECT VALUE 1 + (SELECT u2.a FROM u AS u2) FROM t AS x"
	core := mustRewrite(t, src, Options{Names: hrNames})
	if strings.Contains(core, "$COERCE_SCALAR") {
		t.Errorf("core mode must not coerce: %s", core)
	}
	compatForm := mustRewrite(t, src, Options{Names: hrNames, Compat: true})
	if !strings.Contains(compatForm, "$COERCE_SCALAR(") {
		t.Errorf("compat mode should coerce scalar subqueries: %s", compatForm)
	}
	// IN subqueries coerce to collections.
	inSrc := "SELECT VALUE x.a IN (SELECT u2.a FROM u AS u2) FROM t AS x"
	inForm := mustRewrite(t, inSrc, Options{Names: hrNames, Compat: true})
	if !strings.Contains(inForm, "$COERCE_COLL(") {
		t.Errorf("compat IN subquery should coerce to a collection: %s", inForm)
	}
	// SELECT VALUE subqueries never coerce.
	sv := "SELECT VALUE 1 + (SELECT VALUE u2.a FROM u AS u2) FROM t AS x"
	svForm := mustRewrite(t, sv, Options{Names: hrNames, Compat: true})
	if strings.Contains(svForm, "$COERCE") {
		t.Errorf("SELECT VALUE subquery must not coerce: %s", svForm)
	}
	// COLL_* arguments are exempt.
	coll := "SELECT VALUE COLL_AVG(SELECT u2.a FROM u AS u2) FROM t AS x"
	collForm := mustRewrite(t, coll, Options{Names: hrNames, Compat: true})
	if strings.Contains(collForm, "$COERCE") {
		t.Errorf("COLL_* arguments must not coerce: %s", collForm)
	}
}

func TestSelectStarLowering(t *testing.T) {
	got := mustRewrite(t, "SELECT * FROM t AS a, u AS b", Options{Names: hrNames})
	if !strings.Contains(got, "$MERGE('a', a, 'b', b)") {
		t.Errorf("SELECT * should lower to $MERGE over the block variables: %s", got)
	}
	star := mustRewrite(t, "SELECT a.*, 1 AS one FROM t AS a", Options{Names: hrNames})
	if !strings.Contains(star, "$MERGE('', a, 'one', 1)") {
		t.Errorf("a.* should lower to a $MERGE part: %s", star)
	}
}

func TestFromAliasRequired(t *testing.T) {
	// (SELECT ...) as a FROM source has no derivable alias.
	_, err := rewriteQuery(t, "SELECT VALUE x FROM (SELECT VALUE 1) x2, (SELECT VALUE 2) AS x", Options{Names: hrNames})
	if err != nil {
		t.Fatalf("aliased subquery sources should work: %v", err)
	}
}

func TestGroupKeyImplicitAlias(t *testing.T) {
	tree := parser.MustParse("SELECT e.deptno FROM t AS e GROUP BY e.deptno")
	out, err := Rewrite(tree, Options{Names: hrNames})
	if err != nil {
		t.Fatal(err)
	}
	q := out.(*ast.SFW)
	if q.GroupBy.Keys[0].Alias != "deptno" {
		t.Errorf("implicit group key alias = %q, want deptno", q.GroupBy.Keys[0].Alias)
	}
	// Opaque keys get synthetic aliases.
	tree2 := parser.MustParse("SELECT VALUE 1 FROM t AS e GROUP BY e.a + 1")
	out2, err := Rewrite(tree2, Options{Names: hrNames})
	if err != nil {
		t.Fatal(err)
	}
	if alias := out2.(*ast.SFW).GroupBy.Keys[0].Alias; !strings.HasPrefix(alias, "$k") {
		t.Errorf("synthetic alias = %q", alias)
	}
}

func TestLeftCorrelationScoping(t *testing.T) {
	// e is visible to the second FROM item but not vice versa.
	if _, err := rewriteQuery(t, "SELECT VALUE p FROM t AS e, e.projects AS p", Options{Names: hrNames}); err != nil {
		t.Errorf("left correlation should resolve: %v", err)
	}
	if _, err := rewriteQuery(t, "SELECT VALUE p FROM p.projects AS e, t AS p", Options{Names: hrNames}); err == nil {
		t.Error("right-to-left correlation should not resolve")
	}
}

func TestCorrelatedSubqueryScoping(t *testing.T) {
	// Outer variables are visible inside subqueries.
	src := "SELECT VALUE (SELECT VALUE u2.a FROM u AS u2 WHERE u2.a = x.a) FROM t AS x"
	if _, err := rewriteQuery(t, src, Options{Names: hrNames}); err != nil {
		t.Errorf("correlation into subquery should resolve: %v", err)
	}
	// Post-group, pre-group block variables are no longer in scope.
	bad := "SELECT e.v FROM t AS e GROUP BY e.k"
	if _, err := rewriteQuery(t, bad, Options{Names: hrNames}); err == nil {
		t.Error("referencing a non-key column after GROUP BY should fail to resolve")
	}
}
