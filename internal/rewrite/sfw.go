package rewrite

import (
	"fmt"
	"strconv"

	"sqlpp/internal/ast"
	"sqlpp/internal/value"
)

// sfw rewrites a query block: FROM-chain resolution with left
// correlation, implicit and explicit grouping, aggregate rewriting onto
// COLL_* functions, and lowering of the SQL SELECT list onto SELECT
// VALUE.
func (rw *rewriter) sfw(q *ast.SFW, outer *scope) (ast.Expr, error) {
	substituteOrderAliases(q)

	blk := newScope(outer, true)
	for _, f := range q.From {
		if err := rw.fromItem(f, blk); err != nil {
			return nil, err
		}
	}
	for i := range q.Lets {
		e, err := rw.expr(q.Lets[i].Expr, blk)
		if err != nil {
			return nil, err
		}
		q.Lets[i].Expr = e
		blk.bindOrdered(q.Lets[i].Name)
	}
	if q.Where != nil {
		if err := rw.coerceInto(&q.Where, blk); err != nil {
			return nil, err
		}
	}

	// SQL implicit grouping: aggregates with no GROUP BY form a single
	// group over the whole input.
	if q.GroupBy == nil && (selectHasAggregate(&q.Select) || hasShallowAggregate(q.Having) || orderHasAggregate(q.OrderBy)) {
		q.GroupBy = &ast.GroupBy{}
	}

	post := blk
	var tf *groupTransform
	if q.GroupBy != nil {
		var err error
		post, tf, err = rw.prepareGroup(q.GroupBy, blk, outer)
		if err != nil {
			return nil, err
		}
	}

	if q.Having != nil {
		if tf != nil {
			q.Having = tf.apply(q.Having)
		}
		if err := rw.coerceInto(&q.Having, post); err != nil {
			return nil, err
		}
	}

	if err := rw.lowerSelect(q, post, tf); err != nil {
		return nil, err
	}

	for i := range q.OrderBy {
		if tf != nil {
			q.OrderBy[i].Expr = tf.apply(q.OrderBy[i].Expr)
		}
		lifted, err := rw.liftWindows(q, q.OrderBy[i].Expr, post)
		if err != nil {
			return nil, err
		}
		q.OrderBy[i].Expr = lifted
		if err := rw.coerceInto(&q.OrderBy[i].Expr, post); err != nil {
			return nil, err
		}
	}
	if q.Limit != nil {
		e, err := rw.expr(q.Limit, outer)
		if err != nil {
			return nil, err
		}
		q.Limit = e
	}
	if q.Offset != nil {
		e, err := rw.expr(q.Offset, outer)
		if err != nil {
			return nil, err
		}
		q.Offset = e
	}
	return q, nil
}

// fromItem resolves one FROM item, binding its variables into blk so that
// later items see them (left correlation, §III).
func (rw *rewriter) fromItem(f ast.FromItem, blk *scope) error {
	switch x := f.(type) {
	case *ast.FromExpr:
		e, err := rw.expr(x.Expr, blk)
		if err != nil {
			return err
		}
		x.Expr = e
		if x.As == "" {
			return &Error{Pos: x.Pos(), Msg: "FROM item requires an alias"}
		}
		blk.bindRangeOrdered(x.As, ast.Format(e))
		if x.AtVar != "" {
			blk.bindOrdered(x.AtVar)
		}
		return nil
	case *ast.FromUnpivot:
		e, err := rw.expr(x.Expr, blk)
		if err != nil {
			return err
		}
		x.Expr = e
		blk.bindOrdered(x.ValueVar)
		blk.bindOrdered(x.NameVar)
		return nil
	case *ast.FromJoin:
		if err := rw.fromItem(x.Left, blk); err != nil {
			return err
		}
		if err := rw.fromItem(x.Right, blk); err != nil {
			return err
		}
		if x.On != nil {
			if err := rw.coerceInto(&x.On, blk); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("rewrite: unknown FROM item %T", f)
}

// prepareGroup resolves the GROUP BY keys, assigns aliases, synthesizes
// the GROUP AS variable when absent, and returns the post-group scope and
// the transform to apply to SELECT/HAVING/ORDER BY expressions.
func (rw *rewriter) prepareGroup(g *ast.GroupBy, blk, outer *scope) (*scope, *groupTransform, error) {
	tf := &groupTransform{
		rw:        rw,
		keyAlias:  map[string]string{},
		blockVars: map[string]bool{},
	}
	for _, v := range blk.order {
		tf.blockVars[v] = true
	}
	for i := range g.Keys {
		rawFmt := ast.Format(g.Keys[i].Expr)
		e, err := rw.expr(g.Keys[i].Expr, blk)
		if err != nil {
			return nil, nil, err
		}
		g.Keys[i].Expr = e
		if g.Keys[i].Alias == "" {
			if a := implicitKeyAlias(e); a != "" {
				g.Keys[i].Alias = a
			} else {
				g.Keys[i].Alias = "$k" + strconv.Itoa(i+1)
			}
		}
		tf.keyAlias[rawFmt] = g.Keys[i].Alias
		// The resolved form also matches, so key expressions referenced
		// through an unqualified name line up after qualification.
		tf.keyAlias[ast.Format(e)] = g.Keys[i].Alias
	}
	if g.GroupAs == "" {
		g.GroupAs = rw.fresh("g")
	}
	tf.groupAs = g.GroupAs

	post := newScope(outer, true)
	for _, k := range g.Keys {
		post.bindOrdered(k.Alias)
	}
	post.bindOrdered(g.GroupAs)
	return post, tf, nil
}

// implicitKeyAlias derives the SQL-style alias of an unaliased group key.
func implicitKeyAlias(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.VarRef:
		return x.Name
	case *ast.FieldAccess:
		return x.Name
	}
	return ""
}

// groupTransform rewrites post-group expressions: group-key occurrences
// become key-alias references, and SQL aggregate calls become COLL_*
// applications over the GROUP AS collection (§V-C).
type groupTransform struct {
	rw        *rewriter
	keyAlias  map[string]string // formatted key expression -> alias
	blockVars map[string]bool
	groupAs   string
}

// apply transforms e in place (returning the replacement).
func (tf *groupTransform) apply(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if alias, ok := tf.keyAlias[ast.Format(e)]; ok {
		v := &ast.VarRef{Name: alias}
		v.SetPos(e.Pos())
		return v
	}
	if call, ok := e.(*ast.Call); ok {
		if collName, isAgg := sqlAggregates[call.Name]; isAgg {
			return tf.rewriteAggregate(call, collName)
		}
	}
	// Recurse into children, but not into nested query blocks: they have
	// their own scopes and their own grouping.
	switch x := e.(type) {
	case *ast.SFW, *ast.PivotQuery, *ast.SetOp:
		return e
	case *ast.FieldAccess:
		x.Base = tf.apply(x.Base)
	case *ast.IndexAccess:
		x.Base = tf.apply(x.Base)
		x.Index = tf.apply(x.Index)
	case *ast.Unary:
		x.Operand = tf.apply(x.Operand)
	case *ast.Binary:
		x.L = tf.apply(x.L)
		x.R = tf.apply(x.R)
	case *ast.Like:
		x.Target = tf.apply(x.Target)
		x.Pattern = tf.apply(x.Pattern)
		x.Escape = tf.apply(x.Escape)
	case *ast.Between:
		x.Target = tf.apply(x.Target)
		x.Lo = tf.apply(x.Lo)
		x.Hi = tf.apply(x.Hi)
	case *ast.In:
		x.Target = tf.apply(x.Target)
		for i := range x.List {
			x.List[i] = tf.apply(x.List[i])
		}
		x.Set = tf.apply(x.Set)
	case *ast.Is:
		x.Target = tf.apply(x.Target)
	case *ast.Quantified:
		x.Target = tf.apply(x.Target)
		x.Set = tf.apply(x.Set)
	case *ast.Case:
		x.Operand = tf.apply(x.Operand)
		for i := range x.Whens {
			x.Whens[i].Cond = tf.apply(x.Whens[i].Cond)
			x.Whens[i].Result = tf.apply(x.Whens[i].Result)
		}
		x.Else = tf.apply(x.Else)
	case *ast.Call:
		for i := range x.Args {
			x.Args[i] = tf.apply(x.Args[i])
		}
	case *ast.TupleCtor:
		for i := range x.Fields {
			x.Fields[i].Name = tf.apply(x.Fields[i].Name)
			x.Fields[i].Value = tf.apply(x.Fields[i].Value)
		}
	case *ast.ArrayCtor:
		for i := range x.Elems {
			x.Elems[i] = tf.apply(x.Elems[i])
		}
	case *ast.BagCtor:
		for i := range x.Elems {
			x.Elems[i] = tf.apply(x.Elems[i])
		}
	case *ast.Exists:
		x.Operand = tf.apply(x.Operand)
	case *ast.Window:
		// A window function applies over the post-group bindings; its
		// argument and specification may reference group keys.
		for i := range x.Fn.Args {
			x.Fn.Args[i] = tf.apply(x.Fn.Args[i])
		}
		for i := range x.Spec.PartitionBy {
			x.Spec.PartitionBy[i] = tf.apply(x.Spec.PartitionBy[i])
		}
		for i := range x.Spec.OrderBy {
			x.Spec.OrderBy[i].Expr = tf.apply(x.Spec.OrderBy[i].Expr)
		}
	}
	return e
}

// rewriteAggregate lowers AGG(arg) to
//
//	COLL_AGG(SELECT VALUE arg' FROM groupAs AS $gi)
//
// where arg' replaces each block variable v with $gi.v — the paper's
// conceptual materialization of the group followed by a composable
// aggregate (§V-C, Listings 15–18). COUNT(*) becomes COLL_COUNT over the
// group collection itself.
func (tf *groupTransform) rewriteAggregate(call *ast.Call, collName string) ast.Expr {
	groupRef := &ast.VarRef{Name: tf.groupAs}
	groupRef.SetPos(call.Pos())
	if call.Star {
		out := &ast.Call{Name: "COLL_COUNT", Args: []ast.Expr{groupRef}}
		out.SetPos(call.Pos())
		return out
	}
	if len(call.Args) == 0 {
		// Zero-arg aggregate (e.g. COUNT() without *): leave the call
		// untouched so evaluation reports its usual arity error; apply
		// has no error channel of its own.
		return call
	}
	gi := tf.rw.fresh("gi")
	arg := substituteBlockVars(call.Args[0], tf.blockVars, gi)
	inner := &ast.SFW{
		Select: ast.SelectClause{Value: arg},
		From: []ast.FromItem{
			&ast.FromExpr{Expr: groupRef, As: gi},
		},
	}
	inner.SetPos(call.Pos())
	var collArg ast.Expr = inner
	if call.Distinct {
		d := &ast.Call{Name: "$DISTINCT", Args: []ast.Expr{inner}}
		d.SetPos(call.Pos())
		collArg = d
	}
	out := &ast.Call{Name: collName, Args: []ast.Expr{collArg}}
	out.SetPos(call.Pos())
	return out
}

// substituteBlockVars replaces references to pre-group block variables
// with navigation through the group element variable gi. It descends the
// whole subtree, including nested blocks (an aggregate argument may
// contain a correlated subquery over the group element).
func substituteBlockVars(e ast.Expr, blockVars map[string]bool, gi string) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.VarRef:
		if blockVars[x.Name] {
			base := &ast.VarRef{Name: gi}
			base.SetPos(x.Pos())
			fa := &ast.FieldAccess{Base: base, Name: x.Name}
			fa.SetPos(x.Pos())
			return fa
		}
		return x
	case *ast.FieldAccess:
		x.Base = substituteBlockVars(x.Base, blockVars, gi)
		return x
	case *ast.IndexAccess:
		x.Base = substituteBlockVars(x.Base, blockVars, gi)
		x.Index = substituteBlockVars(x.Index, blockVars, gi)
		return x
	case *ast.Unary:
		x.Operand = substituteBlockVars(x.Operand, blockVars, gi)
		return x
	case *ast.Binary:
		x.L = substituteBlockVars(x.L, blockVars, gi)
		x.R = substituteBlockVars(x.R, blockVars, gi)
		return x
	case *ast.Like:
		x.Target = substituteBlockVars(x.Target, blockVars, gi)
		x.Pattern = substituteBlockVars(x.Pattern, blockVars, gi)
		x.Escape = substituteBlockVars(x.Escape, blockVars, gi)
		return x
	case *ast.Between:
		x.Target = substituteBlockVars(x.Target, blockVars, gi)
		x.Lo = substituteBlockVars(x.Lo, blockVars, gi)
		x.Hi = substituteBlockVars(x.Hi, blockVars, gi)
		return x
	case *ast.In:
		x.Target = substituteBlockVars(x.Target, blockVars, gi)
		for i := range x.List {
			x.List[i] = substituteBlockVars(x.List[i], blockVars, gi)
		}
		x.Set = substituteBlockVars(x.Set, blockVars, gi)
		return x
	case *ast.Is:
		x.Target = substituteBlockVars(x.Target, blockVars, gi)
		return x
	case *ast.Quantified:
		x.Target = substituteBlockVars(x.Target, blockVars, gi)
		x.Set = substituteBlockVars(x.Set, blockVars, gi)
		return x
	case *ast.Case:
		x.Operand = substituteBlockVars(x.Operand, blockVars, gi)
		for i := range x.Whens {
			x.Whens[i].Cond = substituteBlockVars(x.Whens[i].Cond, blockVars, gi)
			x.Whens[i].Result = substituteBlockVars(x.Whens[i].Result, blockVars, gi)
		}
		x.Else = substituteBlockVars(x.Else, blockVars, gi)
		return x
	case *ast.Call:
		for i := range x.Args {
			x.Args[i] = substituteBlockVars(x.Args[i], blockVars, gi)
		}
		return x
	case *ast.TupleCtor:
		for i := range x.Fields {
			x.Fields[i].Name = substituteBlockVars(x.Fields[i].Name, blockVars, gi)
			x.Fields[i].Value = substituteBlockVars(x.Fields[i].Value, blockVars, gi)
		}
		return x
	case *ast.ArrayCtor:
		for i := range x.Elems {
			x.Elems[i] = substituteBlockVars(x.Elems[i], blockVars, gi)
		}
		return x
	case *ast.BagCtor:
		for i := range x.Elems {
			x.Elems[i] = substituteBlockVars(x.Elems[i], blockVars, gi)
		}
		return x
	case *ast.Exists:
		x.Operand = substituteBlockVars(x.Operand, blockVars, gi)
		return x
	case *ast.SFW:
		// Nested blocks may be correlated with the group; substitute
		// free occurrences there too. (Shadowing by an inner FROM alias
		// of the same name is not tracked; the resolver reports the
		// resulting ambiguity.)
		for _, f := range x.From {
			substituteBlockVarsFrom(f, blockVars, gi)
		}
		for i := range x.Lets {
			x.Lets[i].Expr = substituteBlockVars(x.Lets[i].Expr, blockVars, gi)
		}
		x.Where = substituteBlockVars(x.Where, blockVars, gi)
		x.Select.Value = substituteBlockVars(x.Select.Value, blockVars, gi)
		for i := range x.Select.Items {
			x.Select.Items[i].Expr = substituteBlockVars(x.Select.Items[i].Expr, blockVars, gi)
			x.Select.Items[i].StarOf = substituteBlockVars(x.Select.Items[i].StarOf, blockVars, gi)
		}
		x.Having = substituteBlockVars(x.Having, blockVars, gi)
		for i := range x.OrderBy {
			x.OrderBy[i].Expr = substituteBlockVars(x.OrderBy[i].Expr, blockVars, gi)
		}
		return x
	default:
		return e
	}
}

func substituteBlockVarsFrom(f ast.FromItem, blockVars map[string]bool, gi string) {
	switch x := f.(type) {
	case *ast.FromExpr:
		x.Expr = substituteBlockVars(x.Expr, blockVars, gi)
	case *ast.FromUnpivot:
		x.Expr = substituteBlockVars(x.Expr, blockVars, gi)
	case *ast.FromJoin:
		substituteBlockVarsFrom(x.Left, blockVars, gi)
		substituteBlockVarsFrom(x.Right, blockVars, gi)
		x.On = substituteBlockVars(x.On, blockVars, gi)
	}
}

// selectHasAggregate reports whether the SELECT clause contains a shallow
// SQL aggregate call.
func selectHasAggregate(s *ast.SelectClause) bool {
	if hasShallowAggregate(s.Value) {
		return true
	}
	for _, it := range s.Items {
		if hasShallowAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func orderHasAggregate(items []ast.OrderItem) bool {
	for _, o := range items {
		if hasShallowAggregate(o.Expr) {
			return true
		}
	}
	return false
}

// hasShallowAggregate reports whether e contains a SQL aggregate call
// without descending into nested query blocks.
func hasShallowAggregate(e ast.Expr) bool {
	found := false
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		if e == nil || found {
			return
		}
		switch x := e.(type) {
		case *ast.SFW, *ast.PivotQuery, *ast.SetOp:
			return
		case *ast.Call:
			if IsSQLAggregate(x.Name) {
				found = true
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.FieldAccess:
			walk(x.Base)
		case *ast.IndexAccess:
			walk(x.Base)
			walk(x.Index)
		case *ast.Unary:
			walk(x.Operand)
		case *ast.Binary:
			walk(x.L)
			walk(x.R)
		case *ast.Like:
			walk(x.Target)
			walk(x.Pattern)
			walk(x.Escape)
		case *ast.Between:
			walk(x.Target)
			walk(x.Lo)
			walk(x.Hi)
		case *ast.In:
			walk(x.Target)
			for _, l := range x.List {
				walk(l)
			}
			walk(x.Set)
		case *ast.Is:
			walk(x.Target)
		case *ast.Quantified:
			walk(x.Target)
			walk(x.Set)
		case *ast.Case:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			walk(x.Else)
		case *ast.TupleCtor:
			for _, f := range x.Fields {
				walk(f.Name)
				walk(f.Value)
			}
		case *ast.ArrayCtor:
			for _, el := range x.Elems {
				walk(el)
			}
		case *ast.BagCtor:
			for _, el := range x.Elems {
				walk(el)
			}
		case *ast.Exists:
			walk(x.Operand)
		}
	}
	walk(e)
	return found
}

// substituteOrderAliases replaces a bare ORDER BY reference to a SELECT
// item alias with a clone of that item's expression (SQL allows ordering
// by output column names).
func substituteOrderAliases(q *ast.SFW) {
	if len(q.OrderBy) == 0 || len(q.Select.Items) == 0 {
		return
	}
	byAlias := map[string]ast.Expr{}
	for _, it := range q.Select.Items {
		if it.Alias != "" && it.Expr != nil {
			byAlias[it.Alias] = it.Expr
		}
	}
	for i := range q.OrderBy {
		if v, ok := q.OrderBy[i].Expr.(*ast.VarRef); ok {
			if src, ok := byAlias[v.Name]; ok {
				q.OrderBy[i].Expr = ast.CloneExpr(src)
			}
		}
	}
}

// lowerSelect rewrites the SELECT clause onto SELECT VALUE (§V-A):
//
//	SELECT e1 AS a1, ..., en AS an  =>  SELECT VALUE {a1: e1, ..., an: en}
//	SELECT *                        =>  SELECT VALUE $MERGE(name/value...)
//
// lifts window applications onto named per-binding computations, and
// resolves the resulting value expression in the post-group scope.
func (rw *rewriter) lowerSelect(q *ast.SFW, post *scope, tf *groupTransform) error {
	finish := func() error {
		lifted, err := rw.liftWindows(q, q.Select.Value, post)
		if err != nil {
			return err
		}
		q.Select.Value = lifted
		return rw.coerceInto(&q.Select.Value, post)
	}
	switch {
	case q.Select.Value != nil:
		if tf != nil {
			q.Select.Value = tf.apply(q.Select.Value)
		}
		return finish()
	case q.Select.Star:
		merge := &ast.Call{Name: "$MERGE"}
		merge.SetPos(q.Pos())
		for _, v := range post.order {
			nameLit := &ast.Literal{Val: value.String(v)}
			nameLit.SetPos(q.Pos())
			ref := &ast.VarRef{Name: v}
			ref.SetPos(q.Pos())
			merge.Args = append(merge.Args, nameLit, ref)
		}
		q.Select.Value = merge
		q.Select.Star = false
		return finish()
	default:
		hasStarOf := false
		for _, it := range q.Select.Items {
			if it.StarOf != nil {
				hasStarOf = true
				break
			}
		}
		var valueExpr ast.Expr
		if !hasStarOf {
			ctor := &ast.TupleCtor{}
			ctor.SetPos(q.Pos())
			for i, it := range q.Select.Items {
				name := it.Alias
				if name == "" {
					name = "_" + strconv.Itoa(i+1)
				}
				nameLit := &ast.Literal{Val: value.String(name)}
				nameLit.SetPos(q.Pos())
				e := it.Expr
				if tf != nil {
					e = tf.apply(e)
				}
				ctor.Fields = append(ctor.Fields, ast.TupleField{Name: nameLit, Value: e})
			}
			valueExpr = ctor
		} else {
			merge := &ast.Call{Name: "$MERGE"}
			merge.SetPos(q.Pos())
			for i, it := range q.Select.Items {
				if it.StarOf != nil {
					e := it.StarOf
					if tf != nil {
						e = tf.apply(e)
					}
					empty := &ast.Literal{Val: value.String("")}
					empty.SetPos(q.Pos())
					merge.Args = append(merge.Args, empty, e)
					continue
				}
				name := it.Alias
				if name == "" {
					name = "_" + strconv.Itoa(i+1)
				}
				nameLit := &ast.Literal{Val: value.String(name)}
				nameLit.SetPos(q.Pos())
				e := it.Expr
				if tf != nil {
					e = tf.apply(e)
				}
				merge.Args = append(merge.Args, nameLit, e)
			}
			valueExpr = merge
		}
		q.Select.Items = nil
		q.Select.Value = valueExpr
		return finish()
	}
}

// pivot rewrites a PIVOT query; it shares the FROM/WHERE/GROUP machinery
// of query blocks, with the value and name expressions in place of a
// SELECT clause.
func (rw *rewriter) pivot(q *ast.PivotQuery, outer *scope) (ast.Expr, error) {
	blk := newScope(outer, true)
	for _, f := range q.From {
		if err := rw.fromItem(f, blk); err != nil {
			return nil, err
		}
	}
	for i := range q.Lets {
		e, err := rw.expr(q.Lets[i].Expr, blk)
		if err != nil {
			return nil, err
		}
		q.Lets[i].Expr = e
		blk.bindOrdered(q.Lets[i].Name)
	}
	if q.Where != nil {
		if err := rw.coerceInto(&q.Where, blk); err != nil {
			return nil, err
		}
	}
	post := blk
	var tf *groupTransform
	if q.GroupBy != nil {
		var err error
		post, tf, err = rw.prepareGroup(q.GroupBy, blk, outer)
		if err != nil {
			return nil, err
		}
	}
	if q.Having != nil {
		if tf != nil {
			q.Having = tf.apply(q.Having)
		}
		if err := rw.coerceInto(&q.Having, post); err != nil {
			return nil, err
		}
	}
	if tf != nil {
		q.Value = tf.apply(q.Value)
		q.Name = tf.apply(q.Name)
	}
	if err := rw.coerceInto(&q.Value, post); err != nil {
		return nil, err
	}
	if err := rw.coerceInto(&q.Name, post); err != nil {
		return nil, err
	}
	return q, nil
}
