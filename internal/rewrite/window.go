package rewrite

import (
	"strings"

	"sqlpp/internal/ast"
)

// windowFunctions is the supported OVER function set: the ranking
// functions, positional LAG/LEAD, and the SQL aggregates applied as
// running/partition aggregates.
var windowFunctions = map[string]bool{
	"ROW_NUMBER": true, "RANK": true, "DENSE_RANK": true,
	"LAG": true, "LEAD": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "COUNT": true,
}

// IsWindowFunction reports whether name can head an OVER application.
func IsWindowFunction(name string) bool {
	return windowFunctions[strings.ToUpper(name)]
}

// liftWindows replaces every window application in e (not descending
// into nested query blocks) with a fresh variable reference, resolving
// the window's argument and specification expressions in sc and
// appending the lowered computation to q.Windows. The plan computes the
// variables after grouping and before projection (§V-B: window functions
// compose with SQL++ unchanged).
func (rw *rewriter) liftWindows(q *ast.SFW, e ast.Expr, sc *scope) (ast.Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *ast.Window:
		if !IsWindowFunction(x.Fn.Name) {
			return nil, &Error{Pos: x.Pos(), Msg: "unsupported window function " + x.Fn.Name}
		}
		for i := range x.Fn.Args {
			arg, err := rw.expr(x.Fn.Args[i], sc)
			if err != nil {
				return nil, err
			}
			x.Fn.Args[i] = arg
		}
		for i := range x.Spec.PartitionBy {
			pe, err := rw.expr(x.Spec.PartitionBy[i], sc)
			if err != nil {
				return nil, err
			}
			x.Spec.PartitionBy[i] = pe
		}
		for i := range x.Spec.OrderBy {
			oe, err := rw.expr(x.Spec.OrderBy[i].Expr, sc)
			if err != nil {
				return nil, err
			}
			x.Spec.OrderBy[i].Expr = oe
		}
		name := rw.fresh("w")
		q.Windows = append(q.Windows, ast.NamedWindow{Name: name, Pos: x.Pos(), Fn: x.Fn, Spec: x.Spec})
		sc.bindOrdered(name)
		ref := &ast.VarRef{Name: name}
		ref.SetPos(x.Pos())
		return ref, nil
	case *ast.SFW, *ast.PivotQuery, *ast.SetOp, *ast.With,
		*ast.Literal, *ast.VarRef, *ast.NamedRef:
		return e, nil
	case *ast.FieldAccess:
		return rw.liftInto(q, sc, e, &x.Base)
	case *ast.IndexAccess:
		return rw.liftInto(q, sc, e, &x.Base, &x.Index)
	case *ast.Unary:
		return rw.liftInto(q, sc, e, &x.Operand)
	case *ast.Binary:
		return rw.liftInto(q, sc, e, &x.L, &x.R)
	case *ast.Like:
		return rw.liftInto(q, sc, e, &x.Target, &x.Pattern, &x.Escape)
	case *ast.Between:
		return rw.liftInto(q, sc, e, &x.Target, &x.Lo, &x.Hi)
	case *ast.In:
		slots := []*ast.Expr{&x.Target}
		for i := range x.List {
			slots = append(slots, &x.List[i])
		}
		slots = append(slots, &x.Set)
		return rw.liftSlots(q, sc, slots, e)
	case *ast.Is:
		return rw.liftInto(q, sc, e, &x.Target)
	case *ast.Quantified:
		return rw.liftInto(q, sc, e, &x.Target, &x.Set)
	case *ast.Case:
		slots := []*ast.Expr{&x.Operand}
		for i := range x.Whens {
			slots = append(slots, &x.Whens[i].Cond, &x.Whens[i].Result)
		}
		slots = append(slots, &x.Else)
		return rw.liftSlots(q, sc, slots, e)
	case *ast.Call:
		slots := make([]*ast.Expr, len(x.Args))
		for i := range x.Args {
			slots[i] = &x.Args[i]
		}
		return rw.liftSlots(q, sc, slots, e)
	case *ast.TupleCtor:
		var slots []*ast.Expr
		for i := range x.Fields {
			slots = append(slots, &x.Fields[i].Name, &x.Fields[i].Value)
		}
		return rw.liftSlots(q, sc, slots, e)
	case *ast.ArrayCtor:
		slots := make([]*ast.Expr, len(x.Elems))
		for i := range x.Elems {
			slots[i] = &x.Elems[i]
		}
		return rw.liftSlots(q, sc, slots, e)
	case *ast.BagCtor:
		slots := make([]*ast.Expr, len(x.Elems))
		for i := range x.Elems {
			slots[i] = &x.Elems[i]
		}
		return rw.liftSlots(q, sc, slots, e)
	case *ast.Exists:
		return rw.liftInto(q, sc, e, &x.Operand)
	}
	return e, nil
}

// liftInto lifts windows inside the given expression slots of node.
func (rw *rewriter) liftInto(q *ast.SFW, sc *scope, node ast.Expr, slots ...*ast.Expr) (ast.Expr, error) {
	return rw.liftSlots(q, sc, slots, node)
}

func (rw *rewriter) liftSlots(q *ast.SFW, sc *scope, slots []*ast.Expr, node ast.Expr) (ast.Expr, error) {
	for _, slot := range slots {
		if slot == nil || *slot == nil {
			continue
		}
		out, err := rw.liftWindows(q, *slot, sc)
		if err != nil {
			return nil, err
		}
		*slot = out
	}
	return node, nil
}
