// Package sema is the static semantic analyzer. It runs at prepare
// time, between the rewrite to SQL++ Core and planning, over the Core
// tree — after name resolution, so every VarRef references a block
// binding (or declared parameter) and every catalog reference is a
// NamedRef.
//
// The analyzer produces diagnostics in two severities, mirroring the
// paper's two typing modes (§VI):
//
//   - Error: the finding is a fault the stop-on-error mode would abort
//     on at runtime (arithmetic over provably non-numeric operands,
//     ordering between incompatible types, navigation into a scalar,
//     indexing a bag, a COLL_* aggregate over a non-collection), or a
//     scope violation that faults in every mode (an undefined variable,
//     a post-GROUP BY reference to an ungrouped binding).
//   - Warning: the dynamic semantics absorb the finding — in permissive
//     mode type faults quietly yield MISSING, and navigation into an
//     attribute a closed schema proves absent yields MISSING in both
//     modes — or it is scope hygiene (unused bindings, shadowing) that
//     never changes a result.
//
// In permissive mode every type-fault finding is therefore downgraded
// to a warning: the query runs, the analyzer explains which expressions
// are statically guaranteed to produce MISSING. Analysis is advisory by
// default and enforcing only when a caller opts in (Options.Vet on the
// engine), per the paper's query-stability tenet: imposing a schema must
// never reject a working query unless the user asked for vetting.
package sema

import (
	"fmt"
	"sort"

	"sqlpp/internal/ast"
	"sqlpp/internal/lexer"
	"sqlpp/internal/types"
)

// Severity grades a diagnostic.
type Severity int

// Severities, ordered so that the more severe compares greater.
const (
	Warning Severity = iota
	Error
)

// String renders the severity for diagnostics output.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalText implements encoding.TextMarshaler so diagnostics render
// as "error"/"warning" in the HTTP API's JSON.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText is MarshalText's inverse, so API clients can decode
// diagnostics back into the typed form.
func (s *Severity) UnmarshalText(text []byte) error {
	switch string(text) {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("sema: unknown severity %q", text)
	}
	return nil
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      lexer.Pos `json:"-"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	Severity Severity  `json:"severity"`
	Code     string    `json:"code"`
	Msg      string    `json:"message"`
}

// String renders the diagnostic in the conventional
// line:col: severity[code]: message shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Msg)
}

// Diagnostic codes produced by the scope pass. Type-inference findings
// reuse the types.ProblemCode constants verbatim.
const (
	CodeUndefined = "undefined"      // reference to a variable no scope binds
	CodeUngrouped = "ungrouped"      // post-GROUP BY reference to a pre-group binding
	CodeUnused    = "unused-binding" // FROM/LET/WITH binding never referenced
	CodeShadow    = "shadowed"       // binding hides an outer binding of the same name
)

// Options configures an analysis run.
type Options struct {
	// StopOnError selects the strict typing mode: type-fault findings
	// become errors instead of warnings.
	StopOnError bool
	// Schema supplies declared types for catalog names; nil means no
	// schema is imposed, which disables schema-dependent findings but
	// keeps literal-driven type checks and all scope checks.
	Schema *types.Schema
	// Params are declared external parameter names, bound in the
	// outermost scope exactly as rewrite binds them.
	Params []string
}

// Analyze statically checks a Core-form query and returns its
// diagnostics sorted by position (then severity, code, message), with
// exact duplicates removed. The output is deterministic: the same tree
// and options always produce the same slice. A nil expression has no
// diagnostics.
func Analyze(core ast.Expr, opts Options) []Diagnostic {
	if core == nil {
		return nil
	}
	a := &analyzer{opts: opts}
	a.scopeCheck(core)
	a.typeCheck(core)
	return finish(a.diags)
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

type analyzer struct {
	opts  Options
	diags []Diagnostic
}

func (a *analyzer) report(pos lexer.Pos, sev Severity, code, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Pos:      pos,
		Line:     pos.Line,
		Column:   pos.Column,
		Severity: sev,
		Code:     code,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// typeCheck runs the schema-aware abstract type inference of package
// types and maps each finding onto a severity: type faults are errors in
// stop-on-error mode and warnings in permissive mode; guaranteed-MISSING
// findings are warnings in both modes, because navigation into an absent
// attribute is not a fault under the paper's semantics.
func (a *analyzer) typeCheck(core ast.Expr) {
	schema := a.opts.Schema
	if schema == nil {
		schema = types.NewSchema()
	}
	for _, p := range types.CheckQuery(core, schema) {
		sev := Warning
		if a.opts.StopOnError && p.Code.IsTypeFault() {
			sev = Error
		}
		a.report(p.Pos, sev, string(p.Code), "%s", p.Msg)
	}
}

// finish sorts and deduplicates diagnostics for deterministic output.
func finish(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
