package sema

import (
	"reflect"
	"strings"
	"testing"

	"sqlpp/internal/catalog"
	"sqlpp/internal/parser"
	"sqlpp/internal/rewrite"
	"sqlpp/internal/sion"
	"sqlpp/internal/types"
)

// analyzeRaw parses without rewriting — for scope tests whose queries
// reference only their own bindings, so no resolution is needed.
func analyzeRaw(t *testing.T, query string, opts Options) []Diagnostic {
	t.Helper()
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(tree, opts)
}

// analyzeCore parses and rewrites against a catalog of object-notation
// data, the engine's actual prepare pipeline.
func analyzeCore(t *testing.T, data map[string]string, query string, compat bool, opts Options) []Diagnostic {
	t.Helper()
	cat := catalog.New()
	for name, src := range data {
		v, err := sion.Parse(src)
		if err != nil {
			t.Fatalf("data %s: %v", name, err)
		}
		if err := cat.Register(name, v); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := parser.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ropts := rewrite.Options{Compat: compat, Names: cat}
	if opts.Schema != nil {
		ropts.Schema = opts.Schema
	}
	core, err := rewrite.Rewrite(tree, ropts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return Analyze(core, opts)
}

func hasCode(diags []Diagnostic, code string) bool {
	for _, d := range diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

func findCode(diags []Diagnostic, code string) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Code == code {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func TestUndefinedVariable(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1,2] AS y SELECT VALUE x`, Options{})
	d, ok := findCode(diags, CodeUndefined)
	if !ok {
		t.Fatalf("want undefined diagnostic, got %v", diags)
	}
	if d.Severity != Error {
		t.Fatalf("undefined variable must be an error, got %v", d.Severity)
	}
	if !strings.Contains(d.Msg, `"x"`) {
		t.Fatalf("message should name the variable: %q", d.Msg)
	}
}

func TestParamsAreBound(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1,2] AS y SELECT VALUE y + $min`, Options{Params: []string{"$min"}})
	if hasCode(diags, CodeUndefined) {
		t.Fatalf("declared parameter reported undefined: %v", diags)
	}
}

func TestUnusedBinding(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1,2] AS x SELECT VALUE 1`, Options{})
	d, ok := findCode(diags, CodeUnused)
	if !ok {
		t.Fatalf("want unused-binding diagnostic, got %v", diags)
	}
	if d.Severity != Warning {
		t.Fatalf("unused binding must be a warning, got %v", d.Severity)
	}
	if d.Line != 1 || d.Column == 0 {
		t.Fatalf("diagnostic should carry the binding position, got %d:%d", d.Line, d.Column)
	}
}

func TestUnusedLetBinding(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1] AS x LET dead = x + 1 SELECT VALUE x`, Options{})
	d, ok := findCode(diags, CodeUnused)
	if !ok {
		t.Fatalf("want unused LET diagnostic, got %v", diags)
	}
	if !strings.Contains(d.Msg, "LET") || !strings.Contains(d.Msg, `"dead"`) {
		t.Fatalf("message should name the LET binding: %q", d.Msg)
	}
}

func TestUsedBindingsClean(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1,2] AS x LET y = x * 2 SELECT VALUE y`, Options{})
	if hasCode(diags, CodeUnused) {
		t.Fatalf("all bindings used, got %v", diags)
	}
}

func TestGroupByExemptsUnused(t *testing.T) {
	// The grouping captures every pre-group binding into group content,
	// so "unused" is not provable for blocks with GROUP BY.
	diags := analyzeRaw(t,
		`FROM [{'d':'a'},{'d':'b'}] AS e GROUP BY e.d AS dept GROUP AS g SELECT VALUE dept`,
		Options{})
	if hasCode(diags, CodeUnused) {
		t.Fatalf("grouped block must not warn unused, got %v", diags)
	}
}

func TestShadowing(t *testing.T) {
	diags := analyzeRaw(t,
		`FROM [[1],[2]] AS x SELECT VALUE (FROM x AS x SELECT VALUE x)`,
		Options{})
	d, ok := findCode(diags, CodeShadow)
	if !ok {
		t.Fatalf("want shadowed diagnostic, got %v", diags)
	}
	if d.Severity != Warning {
		t.Fatalf("shadowing must be a warning, got %v", d.Severity)
	}
}

func TestUngroupedReference(t *testing.T) {
	diags := analyzeRaw(t,
		`FROM [{'d':'a','n':1}] AS e GROUP BY e.d AS dept SELECT VALUE e.n`,
		Options{})
	d, ok := findCode(diags, CodeUngrouped)
	if !ok {
		t.Fatalf("want ungrouped diagnostic, got %v", diags)
	}
	if d.Severity != Error {
		t.Fatalf("ungrouped reference must be an error, got %v", d.Severity)
	}
}

func TestTypeFaultSeveritySplit(t *testing.T) {
	const query = `FROM [1,2] AS x SELECT VALUE x + 'oops'`
	perm := analyzeRaw(t, query, Options{})
	d, ok := findCode(perm, string(types.CodeNonNumeric))
	if !ok {
		t.Fatalf("want non-numeric diagnostic, got %v", perm)
	}
	if d.Severity != Warning {
		t.Fatalf("permissive mode: type fault must be a warning (runtime yields MISSING), got %v", d.Severity)
	}
	strict := analyzeRaw(t, query, Options{StopOnError: true})
	d, ok = findCode(strict, string(types.CodeNonNumeric))
	if !ok {
		t.Fatalf("want non-numeric diagnostic, got %v", strict)
	}
	if d.Severity != Error {
		t.Fatalf("stop-on-error mode: type fault must be an error (runtime aborts), got %v", d.Severity)
	}
}

func TestGuaranteedMissingIsWarningInBothModes(t *testing.T) {
	// Navigation into an attribute a closed schema proves absent yields
	// MISSING in both modes — it is never a fault (§IV: tuples navigate,
	// absent attributes give MISSING).
	schema := types.NewSchema()
	if _, err := schema.DeclareDDL(`CREATE TABLE emp (id INT, name STRING);`); err != nil {
		t.Fatal(err)
	}
	data := map[string]string{"emp": `{{ {'id':1,'name':'Ada'} }}`}
	for _, strict := range []bool{false, true} {
		diags := analyzeCore(t, data, `SELECT VALUE e.nope FROM emp AS e`, false,
			Options{StopOnError: strict, Schema: schema})
		d, ok := findCode(diags, string(types.CodeClosedMiss))
		if !ok {
			t.Fatalf("strict=%v: want closed-miss diagnostic, got %v", strict, diags)
		}
		if d.Severity != Warning {
			t.Fatalf("strict=%v: guaranteed MISSING must stay a warning, got %v", strict, d.Severity)
		}
	}
}

func TestSchemaTypedNavigationFault(t *testing.T) {
	// With a schema the analyzer knows e.name is a STRING, so arithmetic
	// over it is a provable fault.
	schema := types.NewSchema()
	if _, err := schema.DeclareDDL(`CREATE TABLE emp (id INT, name STRING);`); err != nil {
		t.Fatal(err)
	}
	data := map[string]string{"emp": `{{ {'id':1,'name':'Ada'} }}`}
	diags := analyzeCore(t, data, `SELECT VALUE 2 * e.name FROM emp AS e`, false,
		Options{StopOnError: true, Schema: schema})
	d, ok := findCode(diags, string(types.CodeNonNumeric))
	if !ok {
		t.Fatalf("want non-numeric diagnostic, got %v", diags)
	}
	if d.Severity != Error {
		t.Fatalf("strict arithmetic fault must be an error, got %v", d.Severity)
	}
}

func TestCollAggregateOverScalar(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1] AS x SELECT VALUE COLL_SUM(42)`, Options{StopOnError: true})
	d, ok := findCode(diags, string(types.CodeNonCollection))
	if !ok {
		t.Fatalf("want non-collection diagnostic, got %v", diags)
	}
	if d.Severity != Error {
		t.Fatalf("COLL_* over scalar must be an error in strict mode, got %v", d.Severity)
	}
}

func TestCleanQueryNoDiagnostics(t *testing.T) {
	data := map[string]string{"emp": `{{ {'id':1,'name':'Ada','salary':120} }}`}
	diags := analyzeCore(t, data,
		`SELECT e.name AS name FROM emp AS e WHERE e.salary > 100`, false,
		Options{StopOnError: true})
	if len(diags) != 0 {
		t.Fatalf("clean query should have no diagnostics, got %v", diags)
	}
}

func TestDeterministicAndSorted(t *testing.T) {
	const query = `FROM [1] AS dead1, [2] AS dead2 SELECT VALUE 1 + 'a' || 2`
	a := analyzeRaw(t, query, Options{StopOnError: true})
	b := analyzeRaw(t, query, Options{StopOnError: true})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("analysis not deterministic:\n%v\n%v", a, b)
	}
	for i := 1; i < len(a); i++ {
		p, q := a[i-1], a[i]
		if p.Line > q.Line || (p.Line == q.Line && p.Column > q.Column) {
			t.Fatalf("diagnostics not position-sorted: %v before %v", p, q)
		}
	}
	if len(a) < 2 {
		t.Fatalf("expected multiple diagnostics, got %v", a)
	}
}

func TestNilExpr(t *testing.T) {
	if diags := Analyze(nil, Options{}); diags != nil {
		t.Fatalf("nil expression: want nil diagnostics, got %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	diags := analyzeRaw(t, `FROM [1] AS x SELECT VALUE 1`, Options{})
	if len(diags) == 0 {
		t.Fatal("want a diagnostic")
	}
	s := diags[0].String()
	if !strings.Contains(s, "warning[unused-binding]") {
		t.Fatalf("rendered diagnostic missing severity/code: %q", s)
	}
}

func TestWindowAndWithScopes(t *testing.T) {
	// WITH bindings and lowered window names resolve without noise.
	data := map[string]string{"t": `{{ {'g':'a','v':1}, {'g':'a','v':2}, {'g':'b','v':3} }}`}
	diags := analyzeCore(t, data,
		`WITH big AS (SELECT VALUE r.v FROM t AS r)
		 SELECT x AS x, ROW_NUMBER() OVER (ORDER BY x) AS rn FROM big AS x`, false,
		Options{})
	for _, d := range diags {
		if d.Code == CodeUndefined || d.Code == CodeUnused {
			t.Fatalf("unexpected diagnostic on window/WITH query: %v", d)
		}
	}
}
