package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/server"
)

type explainReply struct {
	Result json.RawMessage `json:"result"`
	Cached bool            `json:"cached"`
	Stats  *sqlpp.OpStats  `json:"stats"`
	Error  string          `json:"error"`
}

func postExplain(t *testing.T, base, body string) (int, explainReply) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out explainReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return resp.StatusCode, out
}

// TestExplainOption: "explain": "analyze" returns the same result plus a
// stats tree whose redacted rendering matches the CLI's golden shape,
// and the per-operator totals surface on /metrics.
func TestExplainOption(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "emp", "sion", `{{
	  {'id': 1, 'name': 'Ada', 'salary': 120},
	  {'id': 2, 'name': 'Bob', 'salary': 95},
	  {'id': 3, 'name': 'Cyd', 'salary': 140}
	}}`)

	plainReq := `{"query": "SELECT e.name AS n FROM emp AS e WHERE e.salary > 100", "format": "sion"}`
	explainReq := `{"query": "SELECT e.name AS n FROM emp AS e WHERE e.salary > 100", "format": "sion", "explain": "analyze"}`

	status, plain := postExplain(t, ts.URL, plainReq)
	if status != http.StatusOK {
		t.Fatalf("plain query: status %d (%s)", status, plain.Error)
	}
	if plain.Stats != nil {
		t.Error("uninstrumented request returned a stats tree")
	}

	status, inst := postExplain(t, ts.URL, explainReq)
	if status != http.StatusOK {
		t.Fatalf("explain query: status %d (%s)", status, inst.Error)
	}
	if string(plain.Result) != string(inst.Result) {
		t.Errorf("explain changed the result:\n  plain   %s\n  explain %s", plain.Result, inst.Result)
	}
	if inst.Stats == nil {
		t.Fatal("explain request returned no stats tree")
	}
	want := `query in=0 out=0
  select(1:1) in=0 out=2
    scan(e) in=3 out=3 est_rows=3
      filter(pushed) in=3 out=2 est_rows=2
`
	if got := inst.Stats.Render(true); got != want {
		t.Errorf("stats tree mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, line := range []string{
		"sqlpp_op_scan_rows_in_total 3",
		"sqlpp_op_scan_rows_out_total 3",
		"sqlpp_op_filter_rows_out_total 2",
		"sqlpp_op_select_observations_total 1",
	} {
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics missing %q:\n%s", line, metrics)
		}
	}
}

// TestExplainCacheKeyed: instrumented and plain requests for the same
// query compile to distinct cache entries, and repeating an explain
// request hits its entry while still returning fresh stats.
func TestExplainCacheKeyed(t *testing.T) {
	svc, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "t", "sion", `{{ {'a': 1}, {'a': 2} }}`)

	plainReq := `{"query": "SELECT VALUE r.a FROM t AS r", "format": "sion"}`
	explainReq := `{"query": "SELECT VALUE r.a FROM t AS r", "format": "sion", "explain": "analyze"}`

	if status, out := postExplain(t, ts.URL, plainReq); status != http.StatusOK {
		t.Fatalf("plain: status %d (%s)", status, out.Error)
	}
	if status, out := postExplain(t, ts.URL, explainReq); status != http.StatusOK {
		t.Fatalf("explain: status %d (%s)", status, out.Error)
	} else if out.Cached {
		t.Error("first explain request claims a cache hit — explain must not share the plain entry")
	}
	if svc.Cache().Len() != 2 {
		t.Errorf("cache entries = %d, want 2 (plain and explain keyed apart)", svc.Cache().Len())
	}
	status, again := postExplain(t, ts.URL, explainReq)
	if status != http.StatusOK {
		t.Fatalf("explain again: status %d (%s)", status, again.Error)
	}
	if !again.Cached {
		t.Error("second explain request missed the cache")
	}
	if again.Stats == nil {
		t.Error("cached explain execution returned no stats tree")
	}
}

// TestExplainBadMode: an unknown explain mode is a 400, not a silent
// fallback.
func TestExplainBadMode(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	status, out := postExplain(t, ts.URL, `{"query": "SELECT VALUE 1", "explain": "verbose"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	if !strings.Contains(out.Error, "explain") {
		t.Errorf("error %q does not mention explain", out.Error)
	}
}
