package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"sqlpp"
	"sqlpp/internal/datafmt"
	"sqlpp/internal/faultinject"
	"sqlpp/internal/sion"
	"sqlpp/internal/value"
)

// queryRequest is the body of POST /v1/query.
type queryRequest struct {
	// Query is the SQL++ text.
	Query string `json:"query"`
	// Params supplies parameterized-query bindings by name; JSON values
	// convert to SQL++ values (objects to tuples, arrays to arrays).
	Params map[string]any `json:"params,omitempty"`
	// Options overrides the engine's per-session toggles for this
	// request only. Absent fields keep the server's defaults.
	Options *queryOptions `json:"options,omitempty"`
	// TimeoutMS bounds execution; 0 means the server default, and the
	// server's MaxTimeout caps it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Format selects the result encoding: "json" (default), "sion"
	// (the paper's object notation, lossless for MISSING), or "pretty".
	Format string `json:"format,omitempty"`
	// Explain set to "analyze" executes the query with per-operator
	// instrumentation and returns the stats tree in the response's
	// "stats" field. The result is identical to an uninstrumented run.
	Explain string `json:"explain,omitempty"`
	// Vet runs the static semantic analyzer over the compiled query and
	// returns its findings in the response's "diagnostics" field.
	// Error-severity findings (provable type faults under strict mode)
	// reject the query at compile time; the rejection carries the
	// diagnostics. Warnings never block execution.
	Vet bool `json:"vet,omitempty"`
	// OnFailure selects the coordinator's partial-failure policy for
	// this request: "fail" (default) surfaces a shard failure as an
	// error, "partial" answers from the surviving shards and annotates
	// the response with "missing_shards". Ignored outside coordinator
	// mode.
	OnFailure string `json:"on_failure,omitempty"`
}

type queryOptions struct {
	Compat             *bool `json:"compat,omitempty"`
	Strict             *bool `json:"strict,omitempty"`
	MaxCollectionSize  *int  `json:"max_collection_size,omitempty"`
	MaterializeClauses *bool `json:"materialize_clauses,omitempty"`
	// DisableOptimizer skips the physical optimization pass for this
	// request; Parallelism bounds the parallel-scan worker pool (0 =
	// GOMAXPROCS, 1 = sequential).
	DisableOptimizer *bool `json:"disable_optimizer,omitempty"`
	// NoCompile disables the closure-compilation pass for this request;
	// expressions evaluate through the tree-walking interpreter instead.
	NoCompile *bool `json:"no_compile,omitempty"`
	// NoStats disables statistics-driven planning for this request; the
	// optimizer falls back to its heuristics (written join order, right
	// build side, fixed parallel chunks).
	NoStats     *bool `json:"no_stats,omitempty"`
	Parallelism *int  `json:"parallelism,omitempty"`
	// MaxRows / MaxBytes set this request's governor budgets for output
	// rows and materialized bytes. The server's own caps clamp both: a
	// request may tighten the budget below the cap but never exceed it.
	MaxRows  *int64 `json:"max_rows,omitempty"`
	MaxBytes *int64 `json:"max_bytes,omitempty"`
}

// queryResponse is the body of a successful POST /v1/query.
type queryResponse struct {
	// Result is the query result: raw JSON for format "json", a JSON
	// string holding the rendered text for "sion"/"pretty".
	Result json.RawMessage `json:"result"`
	// Cached reports whether the plan came from the cache.
	Cached bool `json:"cached"`
	// ElapsedUS is the server-side latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Plan notes the physical optimizations applied to the query, one
	// entry per rewrite that fired; absent when none did.
	Plan []string `json:"plan,omitempty"`
	// Stats is the EXPLAIN ANALYZE operator tree, present only when the
	// request set "explain": "analyze".
	Stats *sqlpp.OpStats `json:"stats,omitempty"`
	// Diagnostics are the static analyzer's findings, present only when
	// the request set "vet": true.
	Diagnostics []sqlpp.Diagnostic `json:"diagnostics,omitempty"`
	// Class is the scatter class that ran in coordinator mode: local,
	// group, topk, concat, or gather.
	Class string `json:"class,omitempty"`
	// Sharded names the sharded collection that drove a coordinator-mode
	// scatter.
	Sharded string `json:"sharded,omitempty"`
	// MissingShards lists the shards absent from a partial-policy
	// result, in shard order.
	MissingShards []string `json:"missing_shards,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Resource is present when the error is a governor budget violation,
	// so clients can distinguish "query too expensive" from "query
	// wrong" and react programmatically (page, tighten, or give up).
	Resource *resourceDetail `json:"resource,omitempty"`
	// Diagnostics are the analyzer findings behind a vet rejection.
	Diagnostics []sqlpp.Diagnostic `json:"diagnostics,omitempty"`
}

// resourceDetail is the machine-readable body of a ResourceError.
type resourceDetail struct {
	Kind     string `json:"kind"`
	Site     string `json:"site"`
	Limit    int64  `json:"limit"`
	Observed int64  `json:"observed"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.Errors.Add(1)
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleQuery runs one query: decode → admission gate → plan cache →
// execute under deadline → encode.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)

	// A draining server refuses new queries outright; in-flight ones
	// finish inside the shutdown drain window.
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Query == "" {
		s.fail(w, http.StatusBadRequest, "missing \"query\"")
		return
	}
	explain := false
	switch req.Explain {
	case "":
	case "analyze":
		explain = true
	default:
		s.fail(w, http.StatusBadRequest, "unknown explain mode %q (want \"analyze\")", req.Explain)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// The gate bounds executing queries. Waiting is bounded twice over:
	// by the request's own deadline and by MaxQueueWait, so a saturated
	// server sheds load with an explicit backpressure signal instead of
	// queueing without bound.
	ok, shed := s.acquire(ctx)
	if !ok {
		if shed {
			// The hint scales with the queue depth, so clients (and the
			// shard coordinator's backoff) wait longer the deeper the
			// backlog.
			w.Header().Set("Retry-After", retryAfter(s.retryAfterHint()))
			s.fail(w, http.StatusTooManyRequests, "server at capacity: gave up after queueing %s", s.cfg.MaxQueueWait)
			return
		}
		s.fail(w, http.StatusServiceUnavailable, "server at capacity: %v", ctx.Err())
		return
	}
	defer s.release()

	params, paramNames, err := convertParams(req.Params)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	engine := s.engine
	opts := engine.Options()
	if req.Options != nil {
		if req.Options.Compat != nil {
			opts.Compat = *req.Options.Compat
		}
		if req.Options.Strict != nil {
			opts.StopOnError = *req.Options.Strict
		}
		if req.Options.MaxCollectionSize != nil {
			opts.MaxCollectionSize = *req.Options.MaxCollectionSize
		}
		if req.Options.MaterializeClauses != nil {
			opts.MaterializeClauses = *req.Options.MaterializeClauses
		}
		if req.Options.DisableOptimizer != nil {
			opts.DisableOptimizer = *req.Options.DisableOptimizer
		}
		if req.Options.NoCompile != nil {
			opts.NoCompile = *req.Options.NoCompile
		}
		if req.Options.NoStats != nil {
			opts.NoStats = *req.Options.NoStats
		}
		if req.Options.Parallelism != nil {
			opts.Parallelism = *req.Options.Parallelism
		}
		if req.Options.MaxRows != nil {
			opts.Limits.MaxOutputRows = *req.Options.MaxRows
		}
		if req.Options.MaxBytes != nil {
			opts.Limits.MaxMaterializedBytes = *req.Options.MaxBytes
		}
	}
	// Server-wide caps clamp the request's budgets: a request may
	// tighten a budget below the cap but never widen past it, and the
	// caps apply even to requests that named no budget at all.
	opts.Limits.MaxOutputRows = clampLimit(opts.Limits.MaxOutputRows, s.cfg.MaxOutputRows)
	opts.Limits.MaxMaterializedBytes = clampLimit(opts.Limits.MaxMaterializedBytes, s.cfg.MaxMaterializedBytes)
	if opts != s.engine.Options() {
		engine = s.engine.WithOptions(opts)
	}

	// Coordinator mode routes through the scatter-gather layer; its
	// scatter-plan cache replaces the server's prepared-plan cache.
	if s.coord != nil {
		s.handleShardedQuery(ctx, w, req, opts, params, explain)
		return
	}

	// Vetting changes Prepare's behavior (error-severity findings reject
	// the query), so it is part of the engine options and thereby of the
	// plan-cache key fingerprint.
	if req.Vet && !opts.Vet {
		opts.Vet = true
		engine = s.engine.WithOptions(opts)
	}

	start := time.Now()
	// The explain marker is part of the cache key so instrumented and
	// plain requests for the same text keep distinct hit/miss accounting
	// even though the compiled plans are interchangeable.
	var extras []string
	if explain {
		extras = append(extras, "explain=analyze")
	}
	plan, cached, err := s.plan(engine, opts, req.Query, paramNames, extras...)
	if err != nil {
		var ve *sqlpp.VetError
		if errors.As(err, &ve) {
			s.metrics.Errors.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{
				Error:       err.Error(),
				Diagnostics: ve.Diagnostics,
			})
			return
		}
		s.fail(w, http.StatusBadRequest, "compile: %v", err)
		return
	}

	var diags []sqlpp.Diagnostic
	if req.Vet {
		if plan.Params != nil {
			diags = plan.Params.Diagnostics()
		} else {
			diags = plan.Prepared.Diagnostics()
		}
		for _, d := range diags {
			if d.Severity == sqlpp.SevWarning {
				s.metrics.VetWarnings.Add(1)
			}
		}
	}

	var result value.Value
	var stats *sqlpp.OpStats
	switch {
	case plan.Params != nil && explain:
		result, stats, err = plan.Params.ExplainAnalyze(ctx, params)
	case plan.Params != nil:
		result, err = plan.Params.ExecContext(ctx, params)
	case explain:
		result, stats, err = plan.Prepared.ExplainAnalyze(ctx)
	default:
		result, err = plan.Prepared.ExecContext(ctx)
	}
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.Timeouts.Add(1)
			s.fail(w, http.StatusGatewayTimeout, "query exceeded its deadline after %s: %v", elapsed.Round(time.Millisecond), err)
			return
		}
		var re *sqlpp.ResourceError
		if errors.As(err, &re) {
			s.metrics.Governed.Add(1)
			s.metrics.Errors.Add(1)
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
				Error: re.Error(),
				Resource: &resourceDetail{
					Kind:     string(re.Kind),
					Site:     re.Site,
					Limit:    re.Limit,
					Observed: re.Observed,
				},
			})
			return
		}
		var pe *sqlpp.PanicError
		if errors.As(err, &pe) {
			// A recovered panic is the engine's bug, not the client's:
			// report 500, count it, and keep serving — containment means
			// one query failed, not the process.
			s.metrics.Panics.Add(1)
			s.fail(w, http.StatusInternalServerError, "execute: %v", err)
			return
		}
		s.fail(w, http.StatusUnprocessableEntity, "execute: %v", err)
		return
	}
	s.metrics.Observe(elapsed)
	if stats != nil {
		s.metrics.ObserveOps(stats)
	}

	raw, err := encodeResult(result, req.Format)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "encode result: %v", err)
		return
	}
	var notes []string
	if plan.Params != nil {
		notes = plan.Params.PlanNotes()
	} else {
		notes = plan.Prepared.PlanNotes()
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Result:      raw,
		Cached:      cached,
		ElapsedUS:   elapsed.Microseconds(),
		Plan:        notes,
		Stats:       stats,
		Diagnostics: diags,
	})
}

// clampLimit applies a server-wide cap to a request-supplied budget:
// with no cap the request's value stands (negatives normalize to
// unlimited); with a cap, "unlimited" and anything above the cap clamp
// down to it.
func clampLimit(req, cap int64) int64 {
	if req < 0 {
		req = 0
	}
	if cap > 0 && (req == 0 || req > cap) {
		return cap
	}
	return req
}

// retryAfter renders a duration as a whole-seconds Retry-After value,
// rounding up so clients never retry early.
func retryAfter(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// plan fetches a compiled plan from the cache or compiles and caches
// one. Concurrent misses on the same key may compile twice; the loser's
// Put simply refreshes the entry, which is sound because plans are
// immutable and interchangeable.
func (s *Server) plan(engine *sqlpp.Engine, opts sqlpp.Options, query string, paramNames []string, extras ...string) (Plan, bool, error) {
	if faultinject.Enabled {
		if err := faultinject.Fire(faultinject.PlanCacheGet); err != nil {
			return Plan{}, false, err
		}
	}
	// Index DDL changes what the optimizer may choose without changing
	// the query text, so the catalog epoch is part of every fingerprint:
	// a plan compiled before CREATE INDEX cannot survive it.
	extras = append(extras, "epoch="+strconv.FormatInt(engine.IndexEpoch(), 10))
	key := CacheKey(opts, paramNames, query, extras...)
	if p, ok := s.cache.Get(key); ok {
		return p, true, nil
	}
	var p Plan
	if len(paramNames) > 0 {
		pp, err := engine.PrepareParams(query, paramNames...)
		if err != nil {
			return Plan{}, false, err
		}
		p = Plan{Params: pp}
	} else {
		prep, err := engine.Prepare(query)
		if err != nil {
			return Plan{}, false, err
		}
		p = Plan{Prepared: prep}
	}
	s.cache.Put(key, p)
	return p, false, nil
}

// convertParams maps the request's JSON parameters to SQL++ values,
// returning the sorted name list used in the cache key.
func convertParams(in map[string]any) (map[string]value.Value, []string, error) {
	if len(in) == 0 {
		return nil, nil, nil
	}
	out := make(map[string]value.Value, len(in))
	names := make([]string, 0, len(in))
	for name, raw := range in {
		v, err := jsonToValue(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("param %q: %w", name, err)
		}
		out[name] = v
		names = append(names, name)
	}
	sort.Strings(names)
	return out, names, nil
}

// jsonToValue converts a decoded JSON value (with json.Number for
// numbers) to the engine's value model. Object attributes are emitted
// in sorted key order so conversion is deterministic.
func jsonToValue(x any) (value.Value, error) {
	switch v := x.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.Bool(v), nil
	case string:
		return value.String(v), nil
	case json.Number:
		if i, err := v.Int64(); err == nil {
			return value.Int(i), nil
		}
		f, err := v.Float64()
		if err != nil {
			return nil, fmt.Errorf("bad number %q", v.String())
		}
		return value.Float(f), nil
	case []any:
		out := make(value.Array, 0, len(v))
		for _, el := range v {
			ev, err := jsonToValue(el)
			if err != nil {
				return nil, err
			}
			out = append(out, ev)
		}
		return out, nil
	case map[string]any:
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		t := value.EmptyTuple()
		for _, k := range keys {
			ev, err := jsonToValue(v[k])
			if err != nil {
				return nil, err
			}
			t.Put(k, ev)
		}
		return t, nil
	}
	return nil, fmt.Errorf("unsupported JSON value %T", x)
}

// encodeResult renders a query result in the requested format as a raw
// JSON fragment for the response body.
func encodeResult(v value.Value, format string) (json.RawMessage, error) {
	switch format {
	case "", "json":
		s, err := datafmt.JSONString(v)
		if err != nil {
			return nil, err
		}
		return json.RawMessage(s), nil
	case "sion":
		return json.Marshal(v.String())
	case "pretty":
		return json.Marshal(value.Pretty(v))
	}
	return nil, fmt.Errorf("unknown result format %q (want json, sion, or pretty)", format)
}

// handleIngest loads a request body into the catalog under the path's
// collection name. The format comes from ?format= or the Content-Type;
// SION is the default, matching the paper's notation.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		s.fail(w, http.StatusBadRequest, "missing collection name")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = formatFromContentType(r.Header.Get("Content-Type"))
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	var err error
	if faultinject.Enabled {
		err = faultinject.Fire(faultinject.IngestDecode)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "ingest %s: %v", name, err)
		return
	}
	if r.URL.Query().Get("mode") == "append" {
		// Appends extend the collection's secondary indexes incrementally
		// instead of rebuilding them; only SION bodies are supported.
		if format != "sion" && format != "" {
			s.fail(w, http.StatusBadRequest, "append mode supports only the sion format")
			return
		}
		var data []byte
		if data, err = io.ReadAll(body); err == nil {
			err = s.engine.AppendSION(name, string(data))
		}
		if err != nil {
			s.fail(w, http.StatusBadRequest, "append %s: %v", name, err)
			return
		}
		s.cache.Purge()
		s.metrics.Ingests.Add(1)
		count := -1
		if v, ok := s.engine.Lookup(name); ok {
			if els, ok := value.Elements(v); ok {
				count = len(els)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"name": name, "count": count})
		return
	}
	switch format {
	case "sion", "":
		var data []byte
		if data, err = io.ReadAll(body); err == nil {
			var v value.Value
			if v, err = sion.Parse(string(data)); err == nil {
				err = s.engine.Register(name, v)
			}
		}
	case "json":
		err = s.engine.RegisterJSON(name, body)
	case "jsonl", "ndjson":
		err = s.engine.RegisterJSONLines(name, body)
	case "csv":
		err = s.engine.RegisterCSV(name, body)
	case "cbor":
		var data []byte
		if data, err = io.ReadAll(body); err == nil {
			err = s.engine.RegisterCBOR(name, data)
		}
	default:
		s.fail(w, http.StatusBadRequest, "unknown format %q (want sion, json, jsonl, csv, or cbor)", format)
		return
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "ingest %s: %v", name, err)
		return
	}

	// Compiled plans bake in name resolution against the catalog's name
	// set, so any registration invalidates them.
	s.cache.Purge()
	s.metrics.Ingests.Add(1)

	count := -1
	if v, ok := s.engine.Lookup(name); ok {
		if els, ok := value.Elements(v); ok {
			count = len(els)
		} else {
			count = 1
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "count": count})
}

func formatFromContentType(ct string) string {
	switch {
	case ct == "application/json" || ct == "text/json":
		return "json"
	case ct == "application/x-ndjson" || ct == "application/jsonl":
		return "jsonl"
	case ct == "text/csv":
		return "csv"
	case ct == "application/cbor":
		return "cbor"
	}
	return "sion"
}

// handleCollections lists the registered names and namespaces.
func (s *Server) handleCollections(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"collections": s.engine.Names()})
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"collections": len(s.engine.Names()),
		"uptime_s":    int64(time.Since(s.started).Seconds()),
	})
}

// handleReadyz is the readiness probe. Unlike /healthz (alive at all),
// it reports whether the server should receive new traffic: false while
// draining for shutdown and while the admission queue is saturated, so
// load balancers route around a busy or departing instance.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	waiting := s.waiting.Load()
	status := http.StatusOK
	state := "ready"
	switch {
	case draining:
		status = http.StatusServiceUnavailable
		state = "draining"
	case waiting > 0:
		status = http.StatusServiceUnavailable
		state = "saturated"
	}
	body := map[string]any{
		"draining": draining,
		"waiting":  waiting,
		"inflight": s.inflight.Load(),
	}
	// Coordinator mode folds the fleet in: the probe aggregates shard
	// readiness under the partial-failure policy (fail-fast needs every
	// shard, partial needs one) so load balancers route around a
	// coordinator whose fleet cannot answer.
	if s.coord != nil {
		ready, states, unready := s.shardReadiness(r.Context())
		body["shards"] = states
		if len(unready) > 0 {
			body["unready_shards"] = unready
		}
		if !ready && status == http.StatusOK {
			status = http.StatusServiceUnavailable
			state = "shards-unready"
		}
	}
	body["status"] = state
	writeJSON(w, status, body)
}

// handleMetrics renders the plain-text counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.WriteTo(w, s.cache.Hits(), s.cache.Misses(), s.cache.Len(), s.inflight.Load(), s.waiting.Load(), s.draining.Load())
	if s.coord != nil {
		s.writeShardMetrics(w)
	}
}
