package server

import (
	"encoding/json"
	"net/http"
)

// Index admin endpoints. Index DDL is cheap relative to queries, so the
// handlers take the simple route to plan-cache coherence: purge on any
// create/drop. The catalog epoch folded into every plan fingerprint
// (see plan) already guarantees stale plans cannot be served; the purge
// just reclaims their memory promptly.

// indexRequest is the POST /v1/indexes body.
type indexRequest struct {
	Name       string `json:"name"`
	Collection string `json:"collection"`
	// Path is the dotted key path extracted from each element, e.g.
	// "addr.zip".
	Path string `json:"path"`
	// Kind is "hash" (default) or "ordered".
	Kind string `json:"kind"`
}

// handleIndexCreate builds and installs a secondary index.
func (s *Server) handleIndexCreate(w http.ResponseWriter, r *http.Request) {
	var req indexRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad index request: %v", err)
		return
	}
	if req.Name == "" || req.Collection == "" || req.Path == "" {
		s.fail(w, http.StatusBadRequest, "index request needs name, collection, and path")
		return
	}
	if err := s.engine.CreateIndex(req.Name, req.Collection, req.Path, req.Kind); err != nil {
		s.fail(w, http.StatusBadRequest, "create index: %v", err)
		return
	}
	s.cache.Purge()
	for _, info := range s.engine.Indexes() {
		if info.Name == req.Name {
			writeJSON(w, http.StatusCreated, info)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name})
}

// handleIndexDrop removes a secondary index by name.
func (s *Server) handleIndexDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.engine.DropIndex(name) {
		s.fail(w, http.StatusNotFound, "unknown index %q", name)
		return
	}
	s.cache.Purge()
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "dropped": true})
}

// handleIndexList lists the declared indexes.
func (s *Server) handleIndexList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"indexes": s.engine.Indexes()})
}
