package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sqlpp"
	"sqlpp/internal/server"
	"sqlpp/internal/value"
)

// indexAdmin drives the index endpoints and decodes replies.
func createIndex(t *testing.T, base string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/indexes", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode create-index reply: %v", err)
	}
	return resp.StatusCode, out
}

func dropIndex(t *testing.T, base, name string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/indexes/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func hasNote(notes []string, substr string) bool {
	for _, n := range notes {
		if strings.Contains(n, substr) {
			return true
		}
	}
	return false
}

// TestIndexDDLReplansCachedQueries is the plan-cache coherence
// regression: a query planned and cached before an index exists must
// be replanned — not served stale from the cache — after the index is
// created, and replanned again after the index is dropped. The catalog
// epoch folded into the plan fingerprint is what forces the miss.
func TestIndexDDLReplansCachedQueries(t *testing.T) {
	_, ts := newTestServer(t, &sqlpp.Options{Parallelism: 1}, server.Config{})

	var sb strings.Builder
	sb.WriteString("{{")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "{'id': %d, 'grp': %d}", i, i%10)
	}
	sb.WriteString("}}")
	ingest(t, ts.URL, "rows", "sion", sb.String())

	req := `{"query": "SELECT VALUE r.grp FROM rows AS r WHERE r.id = 42", "format": "sion"}`
	want := value.Bag{value.Int(42 % 10)}

	// Prepare-and-cache before any index exists.
	status, first := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("first query: status %d (%s)", status, first.Error)
	}
	if first.Cached {
		t.Error("first execution claims a cache hit")
	}
	if hasNote(first.Plan, "index-eq") {
		t.Errorf("pre-index plan already mentions an index: %v", first.Plan)
	}
	status, second := postQuery(t, ts.URL, req)
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("second query should hit the cache: status %d cached %v", status, second.Cached)
	}

	// DDL: the cached plan must not survive the index create.
	status, created := createIndex(t, ts.URL, `{"name": "ix_id", "collection": "rows", "path": "id", "kind": "hash"}`)
	if status != http.StatusCreated {
		t.Fatalf("create index: status %d (%v)", status, created)
	}
	status, third := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-create query: status %d (%s)", status, third.Error)
	}
	if third.Cached {
		t.Error("query after index create served the stale pre-index plan")
	}
	if !hasNote(third.Plan, "index-eq(ix_id)") {
		t.Errorf("replanned query does not use the new index: %v", third.Plan)
	}
	if got := sionResult(t, third.Result); !value.Equivalent(want, got) {
		t.Errorf("indexed result mismatch: got %s want %s", got, want)
	}

	// The replanned entry caches normally until the next DDL.
	if _, again := postQuery(t, ts.URL, req); !again.Cached {
		t.Error("replanned query did not re-enter the cache")
	}

	// Drop: the indexed plan must not survive either.
	if status := dropIndex(t, ts.URL, "ix_id"); status != http.StatusOK {
		t.Fatalf("drop index: status %d", status)
	}
	status, fourth := postQuery(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("post-drop query: status %d (%s)", status, fourth.Error)
	}
	if fourth.Cached {
		t.Error("query after index drop served the stale indexed plan")
	}
	if hasNote(fourth.Plan, "index-eq") {
		t.Errorf("post-drop plan still mentions the dropped index: %v", fourth.Plan)
	}
	if got := sionResult(t, fourth.Result); !value.Equivalent(want, got) {
		t.Errorf("post-drop result mismatch: got %s want %s", got, want)
	}
}

// TestIndexAdminEndpoints covers the admin surface: list reflects
// creates and drops, bad requests are rejected, and dropping an
// unknown index is a 404.
func TestIndexAdminEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil, server.Config{})
	ingest(t, ts.URL, "rows", "sion", `{{ {'id': 1}, {'id': 2}, {'id': null}, {'x': 9} }}`)

	if status, _ := createIndex(t, ts.URL, `{"name": "ix", "collection": "rows", "path": "id", "kind": "ordered"}`); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	// Duplicate name and unknown collection are client errors.
	if status, _ := createIndex(t, ts.URL, `{"name": "ix", "collection": "rows", "path": "id"}`); status != http.StatusBadRequest {
		t.Errorf("duplicate create: status %d, want 400", status)
	}
	if status, _ := createIndex(t, ts.URL, `{"name": "ix2", "collection": "nope", "path": "id"}`); status != http.StatusBadRequest {
		t.Errorf("unknown collection: status %d, want 400", status)
	}
	if status, _ := createIndex(t, ts.URL, `{"collection": "rows", "path": "id"}`); status != http.StatusBadRequest {
		t.Errorf("missing name: status %d, want 400", status)
	}

	resp, err := http.Get(ts.URL + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Indexes []sqlpp.IndexInfo `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list.Indexes) != 1 {
		t.Fatalf("list: got %d indexes, want 1", len(list.Indexes))
	}
	info := list.Indexes[0]
	if info.Name != "ix" || info.Collection != "rows" || info.Path != "id" || info.Kind != "ordered" {
		t.Errorf("list entry mismatch: %+v", info)
	}
	// 4 elements: ids 1 and 2 keyed, one null slot, one missing slot.
	if info.Entries != 4 || info.Keys != 2 || info.Null != 1 || info.Missing != 1 {
		t.Errorf("slot accounting mismatch: %+v", info)
	}

	if status := dropIndex(t, ts.URL, "ix"); status != http.StatusOK {
		t.Errorf("drop: status %d", status)
	}
	if status := dropIndex(t, ts.URL, "ix"); status != http.StatusNotFound {
		t.Errorf("double drop: status %d, want 404", status)
	}
}
