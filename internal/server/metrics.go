package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlpp"
)

// Metrics aggregates the service counters exposed at GET /metrics. All
// counters are monotonic and lock-free; the latency percentiles come
// from a fixed ring of recent observations so they track current load
// rather than the process lifetime.
type Metrics struct {
	Requests atomic.Uint64 // query requests received
	Errors   atomic.Uint64 // query requests that failed (any status >= 400)
	Timeouts atomic.Uint64 // queries stopped by deadline or client cancel
	Rejected atomic.Uint64 // requests whose own deadline fired while queued
	Shed     atomic.Uint64 // requests shed after the bounded queue wait (429)
	Governed atomic.Uint64 // queries aborted by a governor resource budget
	Panics   atomic.Uint64 // recovered query panics (contained, served 500)
	Ingests  atomic.Uint64 // collection ingests accepted

	// VetWarnings counts warning-severity diagnostics returned to
	// clients that requested static analysis ("vet": true). A climbing
	// rate flags a workload drifting toward queries that silently
	// produce MISSING.
	VetWarnings atomic.Uint64

	lat latencyRing

	// ops aggregates EXPLAIN ANALYZE trees by operator type: every
	// instrumented query's per-operator rows and times fold into these
	// running totals, exposed as sqlpp_op_* gauges.
	opMu sync.Mutex
	ops  map[string]*opAgg
}

// opAgg is one operator type's running totals across instrumented
// queries.
type opAgg struct {
	observations int64 // operator nodes folded in
	rowsIn       int64
	rowsOut      int64
	timeNS       int64
}

// Observe records one successful query's end-to-end latency.
func (m *Metrics) Observe(d time.Duration) { m.lat.observe(d) }

// ObserveOps folds an EXPLAIN ANALYZE tree into the per-operator
// totals.
func (m *Metrics) ObserveOps(root *sqlpp.OpStats) {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	if m.ops == nil {
		m.ops = map[string]*opAgg{}
	}
	root.Walk(func(s *sqlpp.OpStats) {
		a := m.ops[s.Op]
		if a == nil {
			a = &opAgg{}
			m.ops[s.Op] = a
		}
		a.observations++
		a.rowsIn += s.RowsIn
		a.rowsOut += s.RowsOut
		a.timeNS += s.TimeNS
	})
}

// ringSize is the latency window: large enough for stable p99 under
// load, small enough that one burst ages out quickly.
const ringSize = 1024

type latencyRing struct {
	mu  sync.Mutex
	buf [ringSize]time.Duration
	n   int // filled slots, saturates at ringSize
	idx int // next write position
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.idx] = d
	r.idx = (r.idx + 1) % ringSize
	if r.n < ringSize {
		r.n++
	}
	r.mu.Unlock()
}

// percentiles returns the requested quantiles (in [0,1]) over the
// window using nearest-rank on a sorted snapshot; zeros when nothing
// has been observed yet.
func (r *latencyRing) percentiles(qs ...float64) []time.Duration {
	r.mu.Lock()
	snap := make([]time.Duration, r.n)
	copy(snap, r.buf[:r.n])
	r.mu.Unlock()

	out := make([]time.Duration, len(qs))
	if len(snap) == 0 {
		return out
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	for i, q := range qs {
		k := int(q * float64(len(snap)))
		if k >= len(snap) {
			k = len(snap) - 1
		}
		out[i] = snap[k]
	}
	return out
}

// WriteTo renders the counters in the plain-text `name value` format
// (one gauge per line, Prometheus-style naming) together with the
// cache and gate gauges supplied by the server.
func (m *Metrics) WriteTo(w io.Writer, cacheHits, cacheMisses uint64, cacheEntries int, inflight, waiting int64, draining bool) {
	p := m.lat.percentiles(0.50, 0.95, 0.99)
	fmt.Fprintf(w, "sqlpp_requests_total %d\n", m.Requests.Load())
	fmt.Fprintf(w, "sqlpp_errors_total %d\n", m.Errors.Load())
	fmt.Fprintf(w, "sqlpp_timeouts_total %d\n", m.Timeouts.Load())
	fmt.Fprintf(w, "sqlpp_rejected_total %d\n", m.Rejected.Load())
	fmt.Fprintf(w, "sqlpp_shed_total %d\n", m.Shed.Load())
	fmt.Fprintf(w, "sqlpp_governed_total %d\n", m.Governed.Load())
	fmt.Fprintf(w, "sqlpp_panics_total %d\n", m.Panics.Load())
	fmt.Fprintf(w, "sqlpp_ingests_total %d\n", m.Ingests.Load())
	fmt.Fprintf(w, "sqlpp_vet_warnings_total %d\n", m.VetWarnings.Load())
	fmt.Fprintf(w, "sqlpp_plan_cache_hits_total %d\n", cacheHits)
	fmt.Fprintf(w, "sqlpp_plan_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintf(w, "sqlpp_plan_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(w, "sqlpp_inflight_queries %d\n", inflight)
	fmt.Fprintf(w, "sqlpp_waiting_queries %d\n", waiting)
	// queue_depth aliases waiting_queries under the name the
	// backpressure docs use: the admission-gate backlog that drives the
	// dynamic Retry-After hint.
	fmt.Fprintf(w, "sqlpp_queue_depth %d\n", waiting)
	drainingGauge := 0
	if draining {
		drainingGauge = 1
	}
	fmt.Fprintf(w, "sqlpp_draining %d\n", drainingGauge)
	fmt.Fprintf(w, "sqlpp_latency_p50_us %d\n", p[0].Microseconds())
	fmt.Fprintf(w, "sqlpp_latency_p95_us %d\n", p[1].Microseconds())
	fmt.Fprintf(w, "sqlpp_latency_p99_us %d\n", p[2].Microseconds())

	m.opMu.Lock()
	names := make([]string, 0, len(m.ops))
	for name := range m.ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := m.ops[name]
		id := strings.ReplaceAll(name, "-", "_")
		fmt.Fprintf(w, "sqlpp_op_%s_observations_total %d\n", id, a.observations)
		fmt.Fprintf(w, "sqlpp_op_%s_rows_in_total %d\n", id, a.rowsIn)
		fmt.Fprintf(w, "sqlpp_op_%s_rows_out_total %d\n", id, a.rowsOut)
		fmt.Fprintf(w, "sqlpp_op_%s_time_us_total %d\n", id, a.timeNS/1000)
	}
	m.opMu.Unlock()
}
