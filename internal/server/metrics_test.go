package server

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyRingPercentiles(t *testing.T) {
	var r latencyRing
	if p := r.percentiles(0.5); p[0] != 0 {
		t.Errorf("empty ring p50 = %v, want 0", p[0])
	}
	// 1..100ms: p50 ≈ 51ms, p95 ≈ 96ms, p99 ≈ 100ms (nearest rank).
	for i := 1; i <= 100; i++ {
		r.observe(time.Duration(i) * time.Millisecond)
	}
	p := r.percentiles(0.50, 0.95, 0.99)
	if p[0] < 50*time.Millisecond || p[0] > 52*time.Millisecond {
		t.Errorf("p50 = %v", p[0])
	}
	if p[1] < 95*time.Millisecond || p[1] > 97*time.Millisecond {
		t.Errorf("p95 = %v", p[1])
	}
	if p[2] < 99*time.Millisecond || p[2] > 100*time.Millisecond {
		t.Errorf("p99 = %v", p[2])
	}
}

func TestLatencyRingWraps(t *testing.T) {
	var r latencyRing
	// Overfill the ring; only the newest ringSize observations remain.
	for i := 0; i < ringSize+500; i++ {
		r.observe(time.Duration(i) * time.Microsecond)
	}
	if r.n != ringSize {
		t.Fatalf("fill count = %d, want %d", r.n, ringSize)
	}
	p := r.percentiles(0.0)
	if p[0] < 500*time.Microsecond {
		t.Errorf("minimum %v predates the window (old entries not overwritten)", p[0])
	}
}

func TestMetricsRender(t *testing.T) {
	var m Metrics
	m.Requests.Add(3)
	m.Errors.Add(1)
	m.Observe(2 * time.Millisecond)

	var sb strings.Builder
	m.WriteTo(&sb, 5, 7, 2, 1, 0, false)
	out := sb.String()
	for _, want := range []string{
		"sqlpp_requests_total 3",
		"sqlpp_errors_total 1",
		"sqlpp_plan_cache_hits_total 5",
		"sqlpp_plan_cache_misses_total 7",
		"sqlpp_plan_cache_entries 2",
		"sqlpp_inflight_queries 1",
		"sqlpp_latency_p50_us 2000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
