package server

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sqlpp"
)

// Plan is one cached compilation: a plain prepared query or a
// parameterized one, depending on whether the request supplied params.
// Exactly one of the two fields is set. Both kinds are immutable after
// compilation and safe for concurrent execution, so a cache hit can be
// executed without copying.
type Plan struct {
	Prepared *sqlpp.Prepared
	Params   *sqlpp.PreparedParams
}

// PlanCache is a concurrency-safe LRU cache of compiled plans keyed by
// (options fingerprint, parameter names, query text). A hit skips
// lexing, parsing, rewriting to Core, and name resolution — the entire
// compile phase — which is the dominant per-request cost for the small
// repeated queries a programmatic API serves.
//
// The cache must be purged whenever the catalog's name set changes:
// compiled plans bake in name resolution (dotted identifiers
// disambiguate against the registered names), so registering or
// dropping a collection can change what a query text means.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	index map[string]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheEntry struct {
	key  string
	plan Plan
}

// NewPlanCache returns a cache holding up to capacity plans. A
// capacity <= 0 disables caching: every Get misses and Put is a no-op.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{
		cap:   capacity,
		ll:    list.New(),
		index: make(map[string]*list.Element),
	}
}

// CacheKey fingerprints everything that feeds compilation: the engine
// options that change the rewrite (Compat alters the Core form, the
// rest alter execution), the declared parameter names, and the query
// text itself. Extras are additional request attributes folded into the
// key — the explain mode, which distinguishes instrumented requests'
// cache accounting.
func CacheKey(opts sqlpp.Options, paramNames []string, query string, extras ...string) string {
	var sb strings.Builder
	sb.Grow(len(query) + 32)
	sb.WriteByte('c')
	sb.WriteString(strconv.FormatBool(opts.Compat))
	sb.WriteByte('s')
	sb.WriteString(strconv.FormatBool(opts.StopOnError))
	sb.WriteByte('m')
	sb.WriteString(strconv.Itoa(opts.MaxCollectionSize))
	sb.WriteByte('z')
	sb.WriteString(strconv.FormatBool(opts.MaterializeClauses))
	sb.WriteByte('o')
	sb.WriteString(strconv.FormatBool(opts.DisableOptimizer))
	// NoCompile changes the physical plan (compiled closures vs the
	// interpreter), so compiled and interpreted plans of the same text are
	// distinct cache entries.
	sb.WriteByte('k')
	sb.WriteString(strconv.FormatBool(opts.NoCompile))
	// NoStats changes which physical plan the optimizer picks (join
	// order, index choices, parallel sizing), so statistics-driven and
	// heuristic plans of the same text are distinct cache entries.
	sb.WriteByte('S')
	sb.WriteString(strconv.FormatBool(opts.NoStats))
	sb.WriteByte('w')
	sb.WriteString(strconv.Itoa(opts.Parallelism))
	// Vet changes Prepare's outcome (error-severity diagnostics reject
	// the query) and whether diagnostics are computed, so vetted and
	// unvetted compilations of the same text are distinct plans.
	sb.WriteByte('V')
	sb.WriteString(strconv.FormatBool(opts.Vet))
	// A Prepared bakes in its engine and therefore its Limits (like
	// MaxCollectionSize above), so every budget field must distinguish
	// cache entries — a cached plan must never execute under another
	// request's budgets.
	sb.WriteByte('r')
	sb.WriteString(strconv.FormatInt(opts.Limits.MaxOutputRows, 10))
	sb.WriteByte('v')
	sb.WriteString(strconv.FormatInt(opts.Limits.MaxMaterializedValues, 10))
	sb.WriteByte('b')
	sb.WriteString(strconv.FormatInt(opts.Limits.MaxMaterializedBytes, 10))
	sb.WriteByte('d')
	sb.WriteString(strconv.Itoa(opts.Limits.MaxDepth))
	sb.WriteByte('t')
	sb.WriteString(strconv.FormatInt(int64(opts.Limits.MaxWallTime), 10))
	if len(paramNames) > 0 {
		names := append([]string(nil), paramNames...)
		sort.Strings(names)
		for _, n := range names {
			sb.WriteByte('p')
			sb.WriteString(n)
		}
	}
	for _, x := range extras {
		sb.WriteByte('x')
		sb.WriteString(x)
	}
	sb.WriteByte(0)
	sb.WriteString(query)
	return sb.String()
}

// Get returns the cached plan for key, marking it most recently used.
func (c *PlanCache) Get(key string) (Plan, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return Plan{}, false
	}
	c.mu.Lock()
	el, ok := c.index[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Plan{}, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).plan, true
}

// Put inserts (or refreshes) a plan, evicting the least recently used
// entry when the cache is full.
func (c *PlanCache) Put(key string, p Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value.(*cacheEntry).plan = p
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(&cacheEntry{key: key, plan: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(*cacheEntry).key)
	}
}

// Purge drops every cached plan; counters are preserved. Call it after
// any catalog mutation.
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.index)
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits reports the lifetime hit count.
func (c *PlanCache) Hits() uint64 { return c.hits.Load() }

// Misses reports the lifetime miss count.
func (c *PlanCache) Misses() uint64 { return c.misses.Load() }
