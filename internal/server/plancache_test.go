package server_test

import (
	"fmt"
	"sync"
	"testing"

	"sqlpp"
	"sqlpp/internal/server"
)

func preparedPlan(t *testing.T, db *sqlpp.Engine, q string) server.Plan {
	t.Helper()
	p, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	return server.Plan{Prepared: p}
}

func TestPlanCacheLRU(t *testing.T) {
	db := sqlpp.New(nil)
	c := server.NewPlanCache(2)
	opts := db.Options()

	keys := make([]string, 3)
	for i := range keys {
		q := fmt.Sprintf("SELECT VALUE %d", i)
		keys[i] = server.CacheKey(opts, nil, q)
		c.Put(keys[i], preparedPlan(t, db, q))
	}
	// Capacity 2: key 0 was evicted, 1 and 2 remain.
	if _, ok := c.Get(keys[0]); ok {
		t.Error("oldest entry survived past capacity")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Error("entry 1 missing")
	}
	// Touch 1, then insert a new entry: 2 is now the LRU victim.
	c.Put(server.CacheKey(opts, nil, "SELECT VALUE 99"), preparedPlan(t, db, "SELECT VALUE 99"))
	if _, ok := c.Get(keys[2]); ok {
		t.Error("LRU victim survived")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Error("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}

	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after purge = %d, want 0", c.Len())
	}
	if hits, misses := c.Hits(), c.Misses(); hits == 0 || misses == 0 {
		t.Errorf("counters not tracked: hits=%d misses=%d", hits, misses)
	}
}

func TestPlanCacheKeyPartitions(t *testing.T) {
	q := "SELECT VALUE 1"
	base := server.CacheKey(sqlpp.Options{}, nil, q)
	distinct := []string{
		server.CacheKey(sqlpp.Options{Compat: true}, nil, q),
		server.CacheKey(sqlpp.Options{StopOnError: true}, nil, q),
		server.CacheKey(sqlpp.Options{MaxCollectionSize: 10}, nil, q),
		server.CacheKey(sqlpp.Options{MaterializeClauses: true}, nil, q),
		server.CacheKey(sqlpp.Options{NoCompile: true}, nil, q),
		server.CacheKey(sqlpp.Options{}, []string{"$p"}, q),
		server.CacheKey(sqlpp.Options{}, nil, "SELECT VALUE 2"),
	}
	seen := map[string]bool{base: true}
	for i, k := range distinct {
		if seen[k] {
			t.Errorf("variant %d collides with an earlier key", i)
		}
		seen[k] = true
	}
	// Parameter order must not matter.
	a := server.CacheKey(sqlpp.Options{}, []string{"$a", "$b"}, q)
	b := server.CacheKey(sqlpp.Options{}, []string{"$b", "$a"}, q)
	if a != b {
		t.Error("cache key depends on parameter order")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := sqlpp.New(nil)
	c := server.NewPlanCache(-1)
	key := server.CacheKey(db.Options(), nil, "SELECT VALUE 1")
	c.Put(key, preparedPlan(t, db, "SELECT VALUE 1"))
	if _, ok := c.Get(key); ok {
		t.Error("disabled cache returned a plan")
	}
	if c.Len() != 0 {
		t.Errorf("disabled cache holds %d entries", c.Len())
	}
}

// TestPlanCacheConcurrent hammers Get/Put/Purge from many goroutines;
// meaningful under -race.
func TestPlanCacheConcurrent(t *testing.T) {
	db := sqlpp.New(nil)
	c := server.NewPlanCache(8)
	opts := db.Options()

	plans := make([]server.Plan, 16)
	keys := make([]string, 16)
	for i := range plans {
		q := fmt.Sprintf("SELECT VALUE %d", i)
		plans[i] = preparedPlan(t, db, q)
		keys[i] = server.CacheKey(opts, nil, q)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (seed + i) % len(keys)
				if p, ok := c.Get(keys[k]); ok {
					if _, err := p.Prepared.Exec(); err != nil {
						t.Error(err)
						return
					}
				} else {
					c.Put(keys[k], plans[k])
				}
				if i%97 == 0 {
					c.Purge()
				}
			}
		}(w)
	}
	wg.Wait()
}
