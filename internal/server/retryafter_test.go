package server

import (
	"testing"
	"time"

	"sqlpp"
)

// TestRetryAfterHintScalesWithQueueDepth checks the dynamic shed hint:
// deeper admission backlog yields a longer Retry-After, capped at four
// queue waits.
func TestRetryAfterHintScalesWithQueueDepth(t *testing.T) {
	s := New(sqlpp.New(nil), Config{MaxQueueWait: 2 * time.Second})
	idle := s.retryAfterHint()
	if idle != time.Second {
		t.Fatalf("idle hint = %v, want half the queue wait", idle)
	}
	s.waiting.Store(4)
	backed := s.retryAfterHint()
	if backed <= idle {
		t.Fatalf("hint did not grow with queue depth: %v <= %v", backed, idle)
	}
	s.waiting.Store(1000)
	if capped := s.retryAfterHint(); capped != 8*time.Second {
		t.Fatalf("deep-queue hint = %v, want the 4× cap", capped)
	}
}
