// Package server implements the SQL++ query service: a concurrent HTTP
// JSON API over an embedded Engine. It is the network face of the
// engine's Options/Prepared surface — requests compile through an LRU
// prepared-plan cache, execute under a bounded-concurrency admission
// gate with per-request deadlines, and the deadlines reach the plan's
// row-production loops through the engine's cooperative cancellation,
// so a runaway cross join stops instead of pinning a worker.
//
// Endpoints:
//
//	POST /v1/query               run a query
//	                             body: {"query", "params", "options", "timeout_ms", "format"}
//	POST /v1/collections/{name}  ingest a collection (?format=sion|json|jsonl|csv|cbor;
//	                             ?mode=append extends it and its indexes incrementally)
//	GET  /v1/collections         list registered collections
//	POST /v1/indexes             create a secondary index
//	                             body: {"name", "collection", "path", "kind"}
//	DELETE /v1/indexes/{name}    drop a secondary index
//	GET  /v1/indexes             list secondary indexes
//	GET  /healthz                liveness probe
//	GET  /metrics                plain-text counters and latency percentiles
package server

import (
	"context"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"sqlpp"
	"sqlpp/internal/shard"
)

// Config tunes the service. The zero value selects the defaults noted
// on each field.
type Config struct {
	// MaxConcurrent bounds queries executing at once; excess requests
	// wait at the gate until a slot frees or their deadline fires.
	// Default: 4 × GOMAXPROCS.
	MaxConcurrent int
	// DefaultTimeout applies when a request names no timeout_ms.
	// Default: 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. Default: 5m.
	MaxTimeout time.Duration
	// PlanCacheSize is the number of compiled plans kept; <= -1
	// disables the cache. Default (0): 256.
	PlanCacheSize int
	// MaxBodyBytes caps request bodies (ingest payloads dominate).
	// Default: 32 MiB.
	MaxBodyBytes int64
	// MaxQueueWait bounds how long a request may wait at the admission
	// gate before the server sheds it with 429 + Retry-After. Waiting
	// also ends early if the request's own deadline fires. Default: 2s.
	MaxQueueWait time.Duration
	// MaxOutputRows is the server-wide cap on a query's output-row
	// budget: requests asking for more (or for no limit) are clamped down
	// to it. 0 leaves the budget to the request/engine. See the governor
	// (eval.Limits) for the budget semantics.
	MaxOutputRows int64
	// MaxMaterializedBytes is the server-wide cap on a query's
	// materialized-bytes budget, clamped like MaxOutputRows.
	MaxMaterializedBytes int64
	// Coordinator, when non-nil, switches the server into coordinator
	// mode: queries route through the scatter-gather coordinator (whose
	// engine should be the server's engine), /readyz aggregates shard
	// readiness under the partial-failure policy, and /metrics exports
	// the per-shard fault-tolerance counters.
	Coordinator *shard.Coordinator
}

func (c *Config) fillDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 2 * time.Second
	}
}

// Server is the HTTP query service. Create one with New; it implements
// http.Handler.
type Server struct {
	engine   *sqlpp.Engine
	cfg      Config
	coord    *shard.Coordinator
	cache    *PlanCache
	metrics  Metrics
	gate     chan struct{}
	inflight atomic.Int64
	// waiting counts requests blocked at the admission gate; a non-zero
	// value marks the queue as saturated for the readiness probe.
	waiting atomic.Int64
	// draining flips when shutdown begins: readiness goes false so load
	// balancers stop routing here, while in-flight queries finish.
	draining atomic.Bool
	started  time.Time
	mux      *http.ServeMux
}

// New builds a Server over engine. The engine's catalog is shared:
// values registered on it before or after New are visible to queries,
// and ingests through the API are visible to direct engine use.
func New(engine *sqlpp.Engine, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		engine:  engine,
		cfg:     cfg,
		coord:   cfg.Coordinator,
		cache:   NewPlanCache(cfg.PlanCacheSize),
		gate:    make(chan struct{}, cfg.MaxConcurrent),
		started: time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/collections/{name}", s.handleIngest)
	s.mux.HandleFunc("GET /v1/collections", s.handleCollections)
	s.mux.HandleFunc("POST /v1/indexes", s.handleIndexCreate)
	s.mux.HandleFunc("DELETE /v1/indexes/{name}", s.handleIndexDrop)
	s.mux.HandleFunc("GET /v1/indexes", s.handleIndexList)
	s.mux.HandleFunc("GET /v1/stats", s.handleStatsList)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the plan cache (tests and metrics).
func (s *Server) Cache() *PlanCache { return s.cache }

// Metrics exposes the service counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Engine returns the underlying engine.
func (s *Server) Engine() *sqlpp.Engine { return s.engine }

// BeginShutdown flips the server into draining mode: the readiness
// probe starts failing (so load balancers stop routing here) and new
// queries are refused with 503, while queries already executing run to
// completion. Call it before http.Server.Shutdown so the drain window
// empties instead of filling.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// Draining reports whether BeginShutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Waiting reports the number of requests queued at the admission gate.
func (s *Server) Waiting() int64 { return s.waiting.Load() }

// acquire claims an execution slot. A free slot is claimed immediately;
// otherwise the request queues for at most MaxQueueWait (or until its
// own deadline fires, whichever is sooner). It returns (false, true)
// when the bounded wait expired — the load-shedding signal the handler
// turns into 429 + Retry-After — and (false, false) when the request's
// context fired first.
func (s *Server) acquire(ctx context.Context) (ok, shed bool) {
	select {
	case s.gate <- struct{}{}:
		s.inflight.Add(1)
		return true, false
	default:
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	t := time.NewTimer(s.cfg.MaxQueueWait)
	defer t.Stop()
	select {
	case s.gate <- struct{}{}:
		s.inflight.Add(1)
		return true, false
	case <-t.C:
		s.metrics.Shed.Add(1)
		return false, true
	case <-ctx.Done():
		s.metrics.Rejected.Add(1)
		return false, false
	}
}

// retryAfterHint scales the shed hint with the current queue depth: an
// idle queue suggests retrying after half the queue wait, each waiting
// request adds half that again, and the hint caps at four queue waits.
// Deeper backlog means a stronger hint, and the coordinator's retry
// loop honors it as a floor under its jittered backoff, so a saturated
// data node sees its retry traffic spread out instead of stampeding.
func (s *Server) retryAfterHint() time.Duration {
	base := s.cfg.MaxQueueWait / 2
	if base < time.Second {
		base = time.Second
	}
	d := base + time.Duration(s.waiting.Load())*base/2
	if max := 4 * s.cfg.MaxQueueWait; d > max {
		d = max
	}
	return d
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.gate
}
